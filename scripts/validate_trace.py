#!/usr/bin/env python3
"""Validates telemetry artifacts exported by the benches.

Usage:
    validate_trace.py TRACE.json [--metrics METRICS.jsonl] [--bench BENCH.json]

Checks (stdlib only, so it runs anywhere CI does):
  * the Chrome trace parses as JSON, has a non-empty `traceEvents` list,
    every event carries a well-formed `ph`/`pid`/`tid`/`ts`, timestamps are
    non-negative and non-decreasing, and complete events have `dur` >= 0
    (overlap on a track is legal: queued commands' wait spans and in-flight
    host requests genuinely overlap in time);
  * every span's `cat` is one of the categories the simulator emits
    (KNOWN_CATEGORIES below — includes the integrity layer's
    `integrity_recovered`/`integrity_unrecovered` spans under "policy" and
    the array's `read_repair` spans under "array"). Unknown categories are
    a *warning* by default so new instrumentation doesn't hard-break older
    checkouts of this script; `--strict` promotes them to errors for CI
    runs where the script and the binaries are from the same commit;
  * every metrics JSONL line parses and carries the expected type fields,
    with histogram bin counts summing to their `total`;
  * the BENCH json's per-cell latency breakdown sums to the read-response
    total within 1e-9 relative error, and shares sum to 1.
Exit code 0 iff everything holds.
"""

import argparse
import json
import sys

VALID_PHASES = {"M", "X", "i"}

# Span categories the simulator's telemetry layer emits today:
#   sim     — simulator lifecycle (mount, crash, power-loss)
#   request — host request lifetimes
#   read    — per-read latency breakdown attempts
#   chip    — chip occupancy / queued commands
#   ftl     — GC, refresh, migration, relocation maintenance
#   policy  — read-policy maintenance, incl. integrity_recovered /
#             integrity_unrecovered adjudication spans
#   array   — host-array request lifetimes and read_repair spans
KNOWN_CATEGORIES = {"sim", "request", "read", "chip", "ftl", "policy",
                    "array"}


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path, strict=False):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")

    last_ts = None
    counts = {"M": 0, "X": 0, "i": 0}
    unknown_cats = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            fail(f"{path}: event {i} has bad ph {ph!r}")
        counts[ph] += 1
        if not isinstance(ev.get("pid"), int):
            fail(f"{path}: event {i} has bad pid")
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name"):
                fail(f"{path}: metadata event {i} has bad name")
            continue
        if not isinstance(ev.get("tid"), int):
            fail(f"{path}: event {i} has bad tid")
        cat = ev.get("cat")
        if cat not in KNOWN_CATEGORIES:
            if strict:
                fail(f"{path}: event {i} ({ev.get('name')!r}) has unknown "
                     f"category {cat!r}")
            unknown_cats[cat] = unknown_cats.get(cat, 0) + 1
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{path}: event {i} has bad ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(f"{path}: event {i} ts {ts} < previous {last_ts}")
        last_ts = ts
        if ph == "i":
            if ev.get("s") != "t":
                fail(f"{path}: instant event {i} lacks thread scope")
            continue
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(f"{path}: X event {i} has bad dur {dur!r}")
    if counts["X"] == 0:
        fail(f"{path}: no complete (X) events")
    for cat, n in sorted(unknown_cats.items(), key=repr):
        print(f"WARN: {path}: {n} events with unknown category {cat!r} "
              f"(not in {sorted(KNOWN_CATEGORIES)}; --strict makes this an "
              f"error)", file=sys.stderr)
    print(f"OK: {path}: {len(events)} events "
          f"(M={counts['M']}, X={counts['X']}, i={counts['i']})")


def validate_metrics(path):
    lines = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: not JSON ({e})")
            kind = obj.get("type")
            if kind not in ("counter", "gauge", "histogram"):
                fail(f"{path}:{lineno}: bad type {kind!r}")
            if not obj.get("name"):
                fail(f"{path}:{lineno}: missing name")
            if kind == "histogram":
                if sum(obj["counts"]) != obj["total"]:
                    fail(f"{path}:{lineno}: counts do not sum to total")
            elif not isinstance(obj.get("value"), (int, float)):
                fail(f"{path}:{lineno}: bad value")
    if lines == 0:
        fail(f"{path}: empty")
    print(f"OK: {path}: {lines} metric lines")


def validate_bench(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        fail(f"{path}: cells missing or empty")
    for cell in cells:
        label = f"{cell['workload']}/{cell['scheme']}"
        total = cell["read_total_s"]
        breakdown = sum(cell["breakdown_s"].values())
        if total > 0 and abs(breakdown / total - 1.0) > 1e-9:
            fail(f"{path}: {label}: breakdown {breakdown} vs read total "
                 f"{total} (rel err {abs(breakdown / total - 1.0):.3e})")
        shares = sum(cell["breakdown_share"].values())
        if abs(shares - 1.0) > 1e-9:
            fail(f"{path}: {label}: breakdown shares sum to {shares}")
        if cell["read_p99_s"] < cell["read_mean_s"] * 0.5:
            fail(f"{path}: {label}: p99 implausibly below mean")
    print(f"OK: {path}: {len(cells)} cells, breakdown identity holds")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON")
    parser.add_argument("--metrics", help="metrics JSONL")
    parser.add_argument("--bench", help="BENCH_*.json summary")
    parser.add_argument("--strict", action="store_true",
                        help="treat unknown span categories as errors "
                             "(default: warn)")
    args = parser.parse_args()
    validate_trace(args.trace, strict=args.strict)
    if args.metrics:
        validate_metrics(args.metrics)
    if args.bench:
        validate_bench(args.bench)


if __name__ == "__main__":
    main()
