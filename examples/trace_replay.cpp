// Replay a block trace — one of the built-in synthetic workloads or a CSV
// file — through the SSD simulator under any of the four §6.2 schemes.
//
// Usage:
//   trace_replay [workload|csv-path] [scheme] [pe_cycles] [requests]
//     workload : fin-2 web-1 web-2 prj-1 prj-2 win-1 win-2 (default fin-2)
//     scheme   : baseline ldpc-in-ssd leveladjust flexlevel (default flexlevel)
//     pe_cycles: pre-aged wear level (default 6000)
//     requests : trims the synthetic trace (default: workload preset)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "reliability/ber_model.h"
#include "ssd/simulator.h"
#include "trace/workloads.h"

namespace {

using namespace flex;

std::optional<trace::Workload> parse_workload(const std::string& name) {
  for (const auto w : trace::kAllWorkloads) {
    if (trace::workload_name(w) == name) return w;
  }
  return std::nullopt;
}

std::optional<ssd::Scheme> parse_scheme(const std::string& name) {
  if (name == "baseline") return ssd::Scheme::kBaseline;
  if (name == "ldpc-in-ssd") return ssd::Scheme::kLdpcInSsd;
  if (name == "leveladjust") return ssd::Scheme::kLevelAdjustOnly;
  if (name == "flexlevel") return ssd::Scheme::kFlexLevel;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string source = argc > 1 ? argv[1] : "fin-2";
  const std::string scheme_name = argc > 2 ? argv[2] : "flexlevel";
  const int pe_cycles = argc > 3 ? std::atoi(argv[3]) : 6000;
  const std::uint64_t request_cap =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;

  const auto scheme = parse_scheme(scheme_name);
  if (!scheme) {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme_name.c_str());
    return 1;
  }

  // Load or synthesize the trace.
  std::vector<trace::Request> requests;
  std::uint64_t footprint = 0;
  if (const auto workload = parse_workload(source)) {
    trace::WorkloadParams params = trace::workload_params(*workload);
    if (request_cap > 0) params.requests = request_cap;
    requests = trace::generate(params, 2015);
    footprint = params.footprint_pages;
  } else {
    std::ifstream file(source);
    if (!file) {
      std::fprintf(stderr, "cannot open trace file or workload '%s'\n",
                   source.c_str());
      return 1;
    }
    requests = trace::read_csv(file);
    footprint = trace::summarize(requests).max_lpn + 1;
    if (request_cap > 0 && requests.size() > request_cap) {
      requests.resize(request_cap);
    }
  }
  const trace::TraceSummary summary = trace::summarize(requests);
  std::printf("trace: %llu requests, %.0f%% reads, footprint %llu pages\n",
              static_cast<unsigned long long>(summary.requests),
              100.0 * summary.read_fraction(),
              static_cast<unsigned long long>(footprint));

  // Build the drive (scaled geometry, Table 6 timing).
  Rng rng(7);
  const reliability::BerEngine::Config mc{
      .wordlines = 64, .bitlines = 256, .rounds = 4, .coupling = {}};
  const reliability::GrayMapper gray;
  const flexlevel::ReduceCodeMapper reduce;
  const reliability::BerModel normal(nand::LevelConfig::baseline_mlc(), gray,
                                     reliability::RetentionModel{}, mc, rng);
  const reliability::BerModel reduced(
      flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
      reliability::RetentionModel{}, mc, rng);

  ssd::SsdConfig cfg;
  cfg.scheme = *scheme;
  cfg.ftl.spec.blocks_per_chip = 896;
  cfg.ftl.spec.chips = 8;
  cfg.ftl.initial_pe_cycles = static_cast<std::uint32_t>(pe_cycles);
  cfg.access_eval.pool_capacity_pages = cfg.ftl.spec.total_pages() / 4;
  cfg.access_eval.hotness = {.filter_count = 4,
                             .bits_per_filter = 1 << 18,
                             .hashes = 2,
                             .window_accesses = 16'384};
  // Builder: a bad configuration (e.g. hand-edited geometry) reports its
  // Status message instead of asserting deep inside the constructor.
  auto built =
      ssd::SsdSimulator::Builder(normal, reduced).config(cfg).Build();
  if (!built.ok()) {
    std::fprintf(stderr, "invalid drive configuration: %s\n",
                 built.status().to_string().c_str());
    return 1;
  }
  ssd::SsdSimulator& sim = **built;
  sim.prefill(footprint);
  sim.run_segment(requests);
  const ssd::SsdResults& results = sim.results();

  std::printf("\nscheme: %s @ P/E %d\n", ssd::scheme_name(*scheme).c_str(),
              pe_cycles);
  std::printf("  mean response    : %.0f us (reads %.0f us, writes %.0f us)\n",
              results.all_response.mean() * 1e6,
              results.read_response.mean() * 1e6,
              results.write_response.mean() * 1e6);
  std::printf("  read p50 / p99   : %.0f / %.0f us\n",
              results.read_latency_hist.quantile(0.5) * 1e6,
              results.read_latency_hist.quantile(0.99) * 1e6);
  std::printf("  max response     : %.1f ms\n",
              results.all_response.max() * 1e3);
  std::printf("  buffer hits      : %llu\n",
              static_cast<unsigned long long>(results.buffer_hits));
  std::printf("  NAND writes      : %llu (WAF %.2f)\n",
              static_cast<unsigned long long>(results.ftl.nand_writes),
              results.ftl.write_amplification());
  std::printf("  NAND erases      : %llu\n",
              static_cast<unsigned long long>(results.ftl.nand_erases));
  std::printf("  migrations       : %llu to reduced, %llu back\n",
              static_cast<unsigned long long>(results.migrations_to_reduced),
              static_cast<unsigned long long>(results.migrations_to_normal));
  std::printf("  sensing levels   :");
  for (std::size_t l = 0; l < results.sensing_level_reads.size(); ++l) {
    if (results.sensing_level_reads[l] > 0) {
      std::printf(" %zu:%llu", l,
                  static_cast<unsigned long long>(
                      results.sensing_level_reads[l]));
    }
  }
  std::printf("\n");
  return 0;
}
