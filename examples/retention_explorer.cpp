// Retention explorer: how wear and data age push a drive into soft sensing,
// and what the reduced state buys — a command-line view of Tables 4 and 5.
//
// Usage: retention_explorer [pe_cycles...]   (default: 3000 4500 6000)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "reliability/ber_model.h"
#include "reliability/sensing_solver.h"
#include "ssd/latency_model.h"

int main(int argc, char** argv) {
  using namespace flex;

  std::vector<int> pe_points;
  for (int i = 1; i < argc; ++i) pe_points.push_back(std::atoi(argv[i]));
  if (pe_points.empty()) pe_points = {3000, 4500, 6000};

  Rng rng(3);
  const reliability::BerEngine::Config mc{
      .wordlines = 64, .bitlines = 256, .rounds = 4, .coupling = {}};
  const reliability::GrayMapper gray;
  const flexlevel::ReduceCodeMapper reduce;
  const reliability::BerModel normal(nand::LevelConfig::baseline_mlc(), gray,
                                     reliability::RetentionModel{}, mc, rng);
  const reliability::BerModel reduced(
      flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
      reliability::RetentionModel{}, mc, rng);
  const reliability::SensingRequirement ladder;
  const ssd::LatencyModel latency;

  const std::vector<std::pair<const char*, Hours>> ages = {
      {"fresh", 0.0},     {"1 day", kDay},    {"2 days", 2 * kDay},
      {"1 week", kWeek},  {"2 weeks", 2 * kWeek}, {"1 month", kMonth}};

  for (const int pe : pe_points) {
    std::printf("=== P/E %d ===\n", pe);
    TablePrinter table({"age", "normal BER", "levels", "read us",
                        "reduced BER", "levels", "read us", "speedup"});
    for (const auto& [label, age] : ages) {
      const double nb = normal.total_ber(pe, age);
      const double rb = reduced.total_ber(pe, age);
      const int nl = ladder.required_levels(nb);
      const int rl = ladder.required_levels(rb);
      const double nt = to_micros(latency.read_latency({.required_levels = nl}, ladder));
      const double rt = to_micros(latency.read_latency({.required_levels = rl}, ladder));
      char speedup[16];
      std::snprintf(speedup, sizeof(speedup), "%.2fx", nt / rt);
      table.add_row({label, TablePrinter::num(nb), std::to_string(nl),
                     TablePrinter::num(nt, 3), TablePrinter::num(rb),
                     std::to_string(rl), TablePrinter::num(rt, 3), speedup});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf("The reduced state holds the sensing requirement at zero "
              "across the whole sweep —\nthe device-level effect AccessEval "
              "rations out to the data that needs it.\n");
  return 0;
}
