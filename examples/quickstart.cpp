// Quickstart: the FlexLevel pipeline in ~60 lines.
//
// 1. Model a worn, aged MLC cell population and measure its raw BER.
// 2. Ask the sensing solver how many extra LDPC sensing levels a read
//    needs, and what that costs in latency.
// 3. Switch the cells to FlexLevel's reduced state (NUNMA 3 + ReduceCode)
//    and watch the soft-sensing requirement — and the latency — collapse.
#include <cstdio>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "reliability/ber_model.h"
#include "reliability/sensing_solver.h"
#include "ssd/latency_model.h"

int main() {
  using namespace flex;

  Rng rng(42);
  const int pe_cycles = 6000;     // a heavily cycled drive
  const Hours age = kWeek;        // data written a week ago

  // --- 1. Baseline MLC cell (4 V_th levels, Gray code) -------------------
  const reliability::GrayMapper gray;
  const reliability::BerModel baseline(
      nand::LevelConfig::baseline_mlc(), gray, reliability::RetentionModel{},
      {.wordlines = 64, .bitlines = 256, .rounds = 4, .coupling = {}}, rng);
  const double baseline_ber = baseline.total_ber(pe_cycles, age);

  // --- 2. Sensing requirement and read latency ---------------------------
  const reliability::SensingRequirement ladder;
  const ssd::LatencyModel latency;
  const int baseline_levels = ladder.required_levels(baseline_ber);
  std::printf("baseline MLC   @ P/E %d, %.0f days old:\n", pe_cycles,
              age / kDay);
  std::printf("  raw BER              : %.3e\n", baseline_ber);
  std::printf("  extra sensing levels : %d\n", baseline_levels);
  std::printf("  progressive read     : %.0f us\n\n",
              to_micros(latency.read_latency({.required_levels = baseline_levels}, ladder)));

  // --- 3. FlexLevel reduced state (3 levels, ReduceCode, NUNMA 3) --------
  const flexlevel::ReduceCodeMapper reduce;
  const reliability::BerModel reduced(
      flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
      reliability::RetentionModel{},
      {.wordlines = 64, .bitlines = 256, .rounds = 4, .coupling = {}}, rng);
  const double reduced_ber = reduced.total_ber(pe_cycles, age);
  const int reduced_levels = ladder.required_levels(reduced_ber);
  std::printf("reduced state  @ same wear and age:\n");
  std::printf("  raw BER              : %.3e\n", reduced_ber);
  std::printf("  extra sensing levels : %d\n", reduced_levels);
  std::printf("  progressive read     : %.0f us\n\n",
              to_micros(latency.read_latency({.required_levels = reduced_levels}, ladder)));

  const double speedup =
      static_cast<double>(latency.read_latency({.required_levels = baseline_levels}, ladder)) /
      static_cast<double>(latency.read_latency({.required_levels = reduced_levels}, ladder));
  std::printf("FlexLevel read speedup on this data: %.2fx\n", speedup);
  std::printf("Cost: reduced pages store 3 bits per 2 cells (25%% density "
              "loss),\nwhich is why AccessEval applies this only to "
              "high-LDPC-overhead data.\n");
  return 0;
}
