// ECC explorer: why 2Xnm NAND needs soft-decision LDPC (paper §1).
//
// Sweeps the raw BER and pits three codes of comparable rate against each
// other on real encode/decode runs:
//   * BCH(1023, ~rate 8/9)          — the 3Xnm workhorse, hard decision;
//   * QC-LDPC rate 8/9, hard input  — LDPC with 0 extra sensing levels;
//   * QC-LDPC rate 8/9, 6 levels    — deep soft sensing.
#include <cstdio>
#include <vector>

#include "bch/bch.h"
#include "common/rng.h"
#include "common/table.h"
#include "ldpc/channel.h"
#include "ldpc/decoder.h"
#include "ldpc/encoder.h"
#include "ldpc/qc_code.h"

namespace {

using namespace flex;

double bch_success_rate(const bch::BchCode& code, double ber, int trials,
                        Rng& rng) {
  int ok = 0;
  std::vector<std::uint8_t> message(static_cast<std::size_t>(code.k()));
  for (int t = 0; t < trials; ++t) {
    for (auto& b : message) b = static_cast<std::uint8_t>(rng.below(2));
    const auto clean = code.encode(message);
    auto noisy = clean;
    for (auto& bit : noisy) {
      if (rng.chance(ber)) bit ^= 1;
    }
    const auto result = code.decode(noisy);
    if (result.success && noisy == clean) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

double ldpc_success_rate(const ldpc::QcLdpcCode& code,
                         const ldpc::Encoder& encoder,
                         const ldpc::Decoder& decoder, double ber, int levels,
                         int trials, Rng& rng) {
  const ldpc::SensingChannel channel(ber, levels);
  int ok = 0;
  std::vector<std::uint8_t> message(static_cast<std::size_t>(code.k()));
  for (int t = 0; t < trials; ++t) {
    for (auto& b : message) b = static_cast<std::uint8_t>(rng.below(2));
    const auto cw = encoder.encode(message);
    const auto llrs = channel.transmit(cw, rng);
    const auto result = decoder.decode(llrs);
    if (result.success && result.bits == cw) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

}  // namespace

int main() {
  Rng rng(1);
  // BCH over GF(2^10): n = 1023, t = 12 -> k = 903, rate ~0.88.
  const bch::BchCode bch_code(10, 12);
  std::printf("BCH(%d, %d) t=%d rate %.3f   vs   QC-LDPC(%d, %d) rate %.3f\n\n",
              bch_code.n(), bch_code.k(), bch_code.t(), bch_code.rate(),
              36864, 32768, 8.0 / 9.0);

  const ldpc::QcLdpcCode ldpc_code = ldpc::QcLdpcCode::paper_code();
  const ldpc::Encoder encoder(ldpc_code);
  const ldpc::Decoder decoder(ldpc_code);

  TablePrinter table({"raw BER", "BCH t=12", "LDPC hard", "LDPC 6-level"});
  for (const double ber : {1e-3, 3e-3, 5e-3, 8e-3, 1.2e-2, 1.8e-2}) {
    table.add_row(
        {TablePrinter::num(ber),
         TablePrinter::num(bch_success_rate(bch_code, ber, 40, rng), 2),
         TablePrinter::num(
             ldpc_success_rate(ldpc_code, encoder, decoder, ber, 0, 8, rng),
             2),
         TablePrinter::num(
             ldpc_success_rate(ldpc_code, encoder, decoder, ber, 6, 8, rng),
             2)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: 1.0 = every block decoded. BCH dies first; hard LDPC "
      "survives to ~4e-3;\nsoft sensing extends LDPC well past 1e-2 — at "
      "the price of the extra sensing levels\nwhose latency FlexLevel "
      "attacks.\n");
  return 0;
}
