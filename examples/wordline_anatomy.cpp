// Anatomy of a reduced-state wordline (paper Fig. 3, Tables 1 & 2).
//
// Walks one 16-bitline wordline through the two-step program algorithm,
// prints the resulting cell levels next to their ReduceCode pairs, then
// injects single-level distortions and shows which page bits they damage.
#include <cstdio>

#include "common/rng.h"
#include "flexlevel/page_layout.h"
#include "flexlevel/reduce_code.h"

using namespace flex;
using flexlevel::ReducedPageKind;

namespace {

void print_bits(const char* label, const std::vector<std::uint8_t>& bits) {
  std::printf("%-12s", label);
  for (const auto b : bits) std::printf(" %d", b);
  std::printf("\n");
}

void print_levels(const flexlevel::ReducedWordline& wl) {
  std::printf("bitline     ");
  for (int b = 0; b < wl.bitlines(); ++b) std::printf(" %d", b % 10);
  std::printf("\ncell level  ");
  for (int b = 0; b < wl.bitlines(); ++b) {
    std::printf(" %d", wl.cell_level(b));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Rng rng(2015);
  flexlevel::ReducedWordline wl(16);
  std::printf("A reduced-state wordline: %d bitlines -> %d ReduceCode pairs "
              "-> 3 pages x %d bits\n",
              wl.bitlines(), wl.pairs(), wl.page_bits());
  std::printf("(even pairs carry the lower page's LSBs, odd pairs the middle "
              "page's,\n and every pair contributes one MSB to the upper "
              "page)\n\n");

  auto random_page = [&] {
    std::vector<std::uint8_t> bits(
        static_cast<std::size_t>(wl.page_bits()));
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
    return bits;
  };
  const auto lower = random_page();
  const auto middle = random_page();
  const auto upper = random_page();

  std::printf("-- step 1: program the LSB pages (V_th 0 -> 0/1) --\n");
  wl.program_lower(lower);
  wl.program_middle(middle);
  print_bits("lower bits", lower);
  print_bits("middle bits", middle);
  print_levels(wl);

  std::printf("\n-- step 2: program the upper page (Table 2 transitions, "
              "all bitlines selected) --\n");
  wl.program_upper(upper);
  print_bits("upper bits", upper);
  print_levels(wl);

  std::printf("\n-- read-back check --\n");
  print_bits("lower", wl.read(ReducedPageKind::kLower));
  print_bits("middle", wl.read(ReducedPageKind::kMiddle));
  print_bits("upper", wl.read(ReducedPageKind::kUpper));

  std::printf("\n-- single-level distortions (ReduceCode damage control) --\n");
  for (const int victim : {0, 5, 10}) {
    flexlevel::ReducedWordline copy = wl;
    const int level = copy.cell_level(victim);
    const int moved = level > 0 ? level - 1 : level + 1;
    copy.set_cell_level(victim, moved);
    int damaged = 0;
    for (const auto page : {ReducedPageKind::kLower, ReducedPageKind::kMiddle,
                            ReducedPageKind::kUpper}) {
      const auto original = wl.read(page);
      const auto noisy = copy.read(page);
      for (std::size_t i = 0; i < original.size(); ++i) {
        if (original[i] != noisy[i]) ++damaged;
      }
    }
    std::printf("  bitline %2d: level %d -> %d  =>  %d bit flip(s) across "
                "all three pages\n",
                victim, level, moved, damaged);
  }
  std::printf("\nTable 1's mapping keeps almost every single-level distortion "
              "at one bit flip\n(the exceptions are pinned down in "
              "tests/flexlevel/reduce_code_test.cc).\n");
  return 0;
}
