#include "bch/bch.h"

#include <algorithm>
#include <set>

#include "common/assert.h"

namespace flex::bch {

using gf::Field;
using gf::Poly;

namespace {

// Generator polynomial: lcm of the minimal polynomials of alpha^1..alpha^2t.
// Minimal polynomials are products over cyclotomic cosets {i, 2i, 4i, ...}
// mod (2^m - 1); their coefficients always land in GF(2).
Poly build_generator(const Field& f, int t) {
  const std::uint32_t n = f.order();
  std::set<std::uint32_t> covered;
  Poly gen = Poly::one();
  for (std::uint32_t i = 1; i <= 2u * static_cast<std::uint32_t>(t); ++i) {
    if (covered.contains(i % n)) continue;
    Poly min_poly = Poly::one();
    std::uint32_t j = i % n;
    do {
      covered.insert(j);
      // multiply by (x + alpha^j)
      const Poly factor(
          std::vector<Field::Element>{f.alpha_pow(j), 1});
      min_poly = Poly::mul(f, min_poly, factor);
      j = (2 * j) % n;
    } while (j != i % n);
    for (const auto c : min_poly.coeffs()) {
      FLEX_ASSERT(c == 0 || c == 1);  // minimal polys are binary
    }
    gen = Poly::mul(f, gen, min_poly);
  }
  return gen;
}

}  // namespace

BchCode::BchCode(int m, int t, int shorten)
    : field_(m), t_(t), shorten_(shorten) {
  FLEX_EXPECTS(t >= 1);
  FLEX_EXPECTS(shorten >= 0);
  n_full_ = static_cast<int>(field_.order());
  generator_ = build_generator(field_, t);
  k_full_ = n_full_ - generator_.degree();
  FLEX_EXPECTS(k_full_ - shorten_ > 0);
}

std::vector<std::uint8_t> BchCode::encode(
    std::span<const std::uint8_t> message) const {
  FLEX_EXPECTS(static_cast<int>(message.size()) == k());
  const int p = parity_bits();
  // Systematic LFSR division: remainder of x^p * m(x) by g(x), processing
  // message coefficients from the highest power down.
  std::vector<std::uint8_t> reg(static_cast<std::size_t>(p), 0);
  const auto& g = generator_.coeffs();
  for (int i = k() - 1; i >= 0; --i) {
    const std::uint8_t feedback =
        static_cast<std::uint8_t>((message[static_cast<std::size_t>(i)] & 1) ^
                                  reg[static_cast<std::size_t>(p - 1)]);
    for (int j = p - 1; j >= 1; --j) {
      reg[static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(
          reg[static_cast<std::size_t>(j - 1)] ^
          (feedback & static_cast<std::uint8_t>(g[static_cast<std::size_t>(j)])));
    }
    reg[0] = static_cast<std::uint8_t>(feedback &
                                       static_cast<std::uint8_t>(g[0]));
  }
  std::vector<std::uint8_t> out(static_cast<std::size_t>(n()));
  std::copy(message.begin(), message.end(), out.begin());
  std::copy(reg.begin(), reg.end(),
            out.begin() + static_cast<std::ptrdiff_t>(k()));
  return out;
}

std::vector<Field::Element> BchCode::syndromes(
    std::span<const std::uint8_t> word) const {
  // Layout: word[0..k-1] = message at poly positions p..p+k-1,
  //         word[k..n-1] = parity at poly positions 0..p-1.
  const int p = parity_bits();
  std::vector<Field::Element> s(static_cast<std::size_t>(2 * t_), 0);
  for (int idx = 0; idx < n(); ++idx) {
    if (!(word[static_cast<std::size_t>(idx)] & 1)) continue;
    const int pos = idx < k() ? p + idx : idx - k();
    for (int i = 0; i < 2 * t_; ++i) {
      s[static_cast<std::size_t>(i)] = Field::add(
          s[static_cast<std::size_t>(i)],
          field_.alpha_pow(static_cast<std::int64_t>(i + 1) * pos));
    }
  }
  return s;
}

bool BchCode::is_codeword(std::span<const std::uint8_t> word) const {
  FLEX_EXPECTS(static_cast<int>(word.size()) == n());
  const auto s = syndromes(word);
  return std::all_of(s.begin(), s.end(), [](auto x) { return x == 0; });
}

DecodeResult BchCode::decode(std::span<std::uint8_t> word) const {
  FLEX_EXPECTS(static_cast<int>(word.size()) == n());
  const auto s = syndromes(word);
  if (std::all_of(s.begin(), s.end(), [](auto x) { return x == 0; })) {
    return {.success = true, .corrected_bits = 0};
  }

  // Berlekamp-Massey: find the shortest LFSR (error locator sigma) that
  // generates the syndrome sequence.
  Poly sigma = Poly::one();
  Poly prev = Poly::one();
  int len = 0;
  Field::Element prev_discrepancy = 1;
  int shift = 1;
  for (int iter = 0; iter < 2 * t_; ++iter) {
    Field::Element d = s[static_cast<std::size_t>(iter)];
    for (int i = 1; i <= len; ++i) {
      d = Field::add(d, field_.mul(sigma.coeff(static_cast<std::size_t>(i)),
                                   s[static_cast<std::size_t>(iter - i)]));
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    const Poly correction = Poly::mul(
        field_,
        Poly::monomial(field_.div(d, prev_discrepancy),
                       static_cast<std::size_t>(shift)),
        prev);
    const Poly next = Poly::add(sigma, correction);
    if (2 * len <= iter) {
      prev = sigma;
      prev_discrepancy = d;
      len = iter + 1 - len;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = next;
  }
  if (sigma.degree() > t_ || sigma.degree() != len) {
    return {};  // more errors than the design distance supports
  }

  // Chien search over all polynomial positions of the *full* code; roots in
  // the shortened (removed) region mean the error pattern is uncorrectable.
  const int p = parity_bits();
  std::vector<int> error_positions;
  for (int pos = 0; pos < n_full_; ++pos) {
    const Field::Element x = field_.alpha_pow(-pos);
    if (sigma.eval(field_, x) == 0) error_positions.push_back(pos);
  }
  if (static_cast<int>(error_positions.size()) != sigma.degree()) {
    return {};
  }
  for (const int pos : error_positions) {
    if (pos >= p + k()) return {};  // falls in the shortened region
  }
  for (const int pos : error_positions) {
    const int idx = pos >= p ? pos - p : pos + k();
    word[static_cast<std::size_t>(idx)] ^= 1;
  }
  return {.success = true,
          .corrected_bits = static_cast<int>(error_positions.size())};
}

}  // namespace flex::bch
