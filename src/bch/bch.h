// Binary narrow-sense BCH codec.
//
// This is the hard-decision ECC that guarded 3Xnm NAND (paper §1); the
// benches use it as the latency/correction-capability reference point that
// motivates LDPC — and therefore FlexLevel — at 2Xnm error rates.
//
// Construction: GF(2^m), generator = lcm of the minimal polynomials of
// alpha^1 .. alpha^2t. Encoding is systematic. Decoding is
// syndromes -> Berlekamp-Massey -> Chien search.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gf/gf2m.h"
#include "gf/poly.h"

namespace flex::bch {

/// Outcome of a decode attempt. `success == false` means the decoder
/// detected more errors than it can correct (the word is left unchanged).
struct DecodeResult {
  bool success = false;
  int corrected_bits = 0;
};

class BchCode {
 public:
  /// Narrow-sense binary BCH over GF(2^m) correcting `t` errors, shortened
  /// by `shorten` information bits. Requires 3 <= m <= 16, t >= 1 and the
  /// resulting k() > 0.
  BchCode(int m, int t, int shorten = 0);

  /// Codeword length after shortening.
  int n() const { return n_full_ - shorten_; }
  /// Message length after shortening.
  int k() const { return k_full_ - shorten_; }
  int parity_bits() const { return n_full_ - k_full_; }
  int t() const { return t_; }
  /// Code rate k/n.
  double rate() const { return static_cast<double>(k()) / n(); }
  const gf::Poly& generator() const { return generator_; }

  /// Systematic encode: returns [message | parity], one bit per byte.
  /// `message.size()` must equal k().
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> message) const;

  /// Corrects `word` in place (size n()). Returns failure and leaves the
  /// word unchanged when more than t errors are detected.
  DecodeResult decode(std::span<std::uint8_t> word) const;

  /// True iff `word` is a codeword (all syndromes zero).
  bool is_codeword(std::span<const std::uint8_t> word) const;

 private:
  std::vector<gf::Field::Element> syndromes(
      std::span<const std::uint8_t> word) const;

  gf::Field field_;
  int t_;
  int shorten_;
  int n_full_;
  int k_full_;
  gf::Poly generator_;
};

}  // namespace flex::bch
