// Deterministic NAND fault injection.
//
// Real 2Xnm MLC deployments live with grown defects: program-status
// failures, erase failures, and whole blocks that go bad in service (Cai
// et al., HPCA'15 describe remapping-based recovery as standard controller
// practice). This module decides *when* those faults strike; the FTL's
// bad-block management and the read policy's recovery ladder decide what
// happens next.
//
// Determinism contract: every decision is a pure hash of (run seed, fault
// kind, operation identity) — no internal state, no RNG stream. Each NAND
// operation has a naturally unique identity (a page slot is programmed
// once per erase generation of its block, a block is erased once per
// generation, allocated once per generation), so the same seed gives the
// same fault pattern whatever the call order, and a `--jobs N` bench sweep
// is bit-identical to a serial one. Enabling faults perturbs no other
// random stream: the simulator's Rng sequence (prefill ages,
// preconditioning) is untouched.
#pragma once

#include <cstdint>

namespace flex::faults {

/// Fault-injection knobs, nested in SsdConfig like ReadDisturbConfig.
/// Everything is off by default: with `enabled == false` the injector is
/// never constructed and every seed figure is reproduced bit-identically.
struct FaultConfig {
  bool enabled = false;
  /// Probability a page program reports a program-status failure. The FTL
  /// re-drives the write to a fresh frontier page and retires the block.
  double program_fail_rate = 0.0;
  /// Probability a block erase fails; the block is retired (its valid
  /// pages were already relocated by the reclaim that issued the erase).
  double erase_fail_rate = 0.0;
  /// Probability a block turns out to be a grown defect when it is next
  /// allocated as a write frontier; it is retired before any program.
  double grown_defect_rate = 0.0;
  /// Probability the recovery ladder's deepest-sensing re-read rescues an
  /// uncorrectable read; otherwise the read is declared lost
  /// (SsdResults::data_loss_reads).
  double read_retry_rescue = 0.9;
  /// Graceful degradation of the ReducedCell pool: every retired block
  /// costs physical over-provisioning, so FlexLevel shrinks the pool by
  /// `pages_per_block * f / (1 - f)` logical pages per retired block
  /// (f = reduced_capacity_factor) — the shrink that keeps effective OP
  /// constant. Set false to let the pool ride the shrinking OP instead.
  bool shrink_pool_on_retirement = true;
  /// Power-loss injection: when enabled, every event-queue boundary is a
  /// candidate crash point, adjudicated per event ordinal at `crash_rate`.
  /// Crash granularity is the event boundary — an event's callback runs to
  /// completion (so multi-page FTL sequences issued inside one event, e.g.
  /// a retirement relocation chain, are atomic with respect to power loss;
  /// what can be torn is anything still pending in the queue).
  bool crash_enabled = false;
  /// Per-event-boundary crash probability. Like every other fault it is a
  /// stateless hash, so crash-off runs are byte-identical by construction.
  double crash_rate = 0.0;
  /// Folded into the crash hash so a harness can sweep many distinct crash
  /// points for one workload seed without perturbing any other fault or
  /// RNG decision (those hash over different kinds / identities).
  std::uint64_t crash_salt = 0;
  // Silent-data-corruption kinds (only meaningful with
  // SsdConfig::integrity on — without payload seals nothing in the stack
  // could observe them, so Validate() rejects arming them integrity-off).
  /// Probability a read returns wrong bytes with a confident ECC status
  /// (post-ECC flip — retention/disturb errors that escape the code).
  /// Transient: adjudicated per read, so the recovery ladder's
  /// deepest-sensing re-read of the same cells gets clean data.
  double silent_corruption_rate = 0.0;
  /// Probability a page program lands its data+seal on some *other*
  /// physical page while reporting success at the intended one.
  /// Persistent: the intended page never holds the sealed payload, so no
  /// re-read of it can help — only a replica (or repair) can.
  double misdirected_write_rate = 0.0;
  /// Probability a GC/wear-leveling/refresh relocation program writes the
  /// *previous* generation of the page's payload under the fresh seal
  /// (controller DMA raced the host overwrite). Persistent, like a
  /// misdirected write, but the stale bytes carry a valid-looking page.
  double torn_relocation_rate = 0.0;
};

class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, std::uint64_t seed);

  const FaultConfig& config() const { return config_; }

  /// Does the program of page `ppn` in erase generation `erase_count` of
  /// its block report a program-status failure?
  bool program_fails(std::uint64_t ppn, std::uint32_t erase_count) const;

  /// Does the erase ending generation `erase_count` of `block` fail?
  bool erase_fails(std::uint32_t block, std::uint32_t erase_count) const;

  /// Is `block`, allocated in generation `erase_count`, a grown defect?
  bool grown_defect(std::uint32_t block, std::uint32_t erase_count) const;

  /// Does the deepest-sensing re-read of `ppn` rescue an uncorrectable
  /// read? `block_reads` (the block's read count at this read) makes the
  /// identity unique per read of the page.
  bool read_retry_rescues(std::uint64_t ppn, std::uint64_t block_reads) const;

  /// Does the drive lose power at the event-queue boundary just before
  /// event `event_ordinal` fires? Hashed over (seed, kCrash, ordinal,
  /// crash_salt): deterministic per ordinal, independent of every other
  /// fault decision, and disjoint salts select disjoint crash points.
  bool crash_at(std::uint64_t event_ordinal) const;

  /// Does *this* read of `ppn` deliver silently corrupted bytes?
  /// `block_reads` is the block's read count at the read (same uniqueness
  /// trick as read_retry_rescues) — a re-read at a later count rolls a
  /// fresh decision, which is what makes the corruption transient.
  bool silent_corruption(std::uint64_t ppn, std::uint64_t block_reads) const;

  /// Is the program of `ppn` in erase generation `erase_count` misdirected
  /// (data written elsewhere, success reported here)?
  bool misdirected_write(std::uint64_t ppn, std::uint32_t erase_count) const;

  /// Does the relocation program of `ppn` in generation `erase_count` tear
  /// (stale payload generation under the fresh seal)?
  bool torn_relocation(std::uint64_t ppn, std::uint32_t erase_count) const;

 private:
  /// Uniform [0, 1) from the op identity — the whole injector is this hash.
  double roll(std::uint64_t kind, std::uint64_t a, std::uint64_t b) const;

  FaultConfig config_;
  std::uint64_t seed_;
};

}  // namespace flex::faults
