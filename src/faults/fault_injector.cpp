#include "faults/fault_injector.h"

#include "common/assert.h"

namespace flex::faults {
namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mix, the same primitive
/// Rng uses for seeding. Applied over a running combination of the inputs
/// it gives each (seed, kind, a, b) tuple an independent uniform output.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  FLEX_EXPECTS(config_.program_fail_rate >= 0.0 &&
               config_.program_fail_rate <= 1.0);
  FLEX_EXPECTS(config_.erase_fail_rate >= 0.0 &&
               config_.erase_fail_rate <= 1.0);
  FLEX_EXPECTS(config_.grown_defect_rate >= 0.0 &&
               config_.grown_defect_rate <= 1.0);
  FLEX_EXPECTS(config_.read_retry_rescue >= 0.0 &&
               config_.read_retry_rescue <= 1.0);
  FLEX_EXPECTS(config_.crash_rate >= 0.0 && config_.crash_rate <= 1.0);
  FLEX_EXPECTS(config_.silent_corruption_rate >= 0.0 &&
               config_.silent_corruption_rate <= 1.0);
  FLEX_EXPECTS(config_.misdirected_write_rate >= 0.0 &&
               config_.misdirected_write_rate <= 1.0);
  FLEX_EXPECTS(config_.torn_relocation_rate >= 0.0 &&
               config_.torn_relocation_rate <= 1.0);
}

double FaultInjector::roll(std::uint64_t kind, std::uint64_t a,
                           std::uint64_t b) const {
  std::uint64_t h = mix(seed_ ^ mix(kind));
  h = mix(h ^ a);
  h = mix(h ^ b);
  // Top 53 bits -> [0, 1), the standard uniform-double construction.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::program_fails(std::uint64_t ppn,
                                  std::uint32_t erase_count) const {
  return roll(1, ppn, erase_count) < config_.program_fail_rate;
}

bool FaultInjector::erase_fails(std::uint32_t block,
                                std::uint32_t erase_count) const {
  return roll(2, block, erase_count) < config_.erase_fail_rate;
}

bool FaultInjector::grown_defect(std::uint32_t block,
                                 std::uint32_t erase_count) const {
  return roll(3, block, erase_count) < config_.grown_defect_rate;
}

bool FaultInjector::read_retry_rescues(std::uint64_t ppn,
                                       std::uint64_t block_reads) const {
  return roll(4, ppn, block_reads) < config_.read_retry_rescue;
}

bool FaultInjector::crash_at(std::uint64_t event_ordinal) const {
  if (!config_.crash_enabled) return false;
  return roll(5, event_ordinal, config_.crash_salt) < config_.crash_rate;
}

bool FaultInjector::silent_corruption(std::uint64_t ppn,
                                      std::uint64_t block_reads) const {
  return roll(6, ppn, block_reads) < config_.silent_corruption_rate;
}

bool FaultInjector::misdirected_write(std::uint64_t ppn,
                                      std::uint32_t erase_count) const {
  return roll(7, ppn, erase_count) < config_.misdirected_write_rate;
}

bool FaultInjector::torn_relocation(std::uint64_t ppn,
                                    std::uint32_t erase_count) const {
  return roll(8, ppn, erase_count) < config_.torn_relocation_rate;
}

}  // namespace flex::faults
