#include "ldpc/qc_code.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"
#include "common/rng.h"

namespace flex::ldpc {

QcLdpcCode::QcLdpcCode(int rows_base, int cols_base, int z,
                       int info_column_weight, std::uint64_t seed)
    : rows_base_(rows_base), cols_base_(cols_base), z_(z) {
  FLEX_EXPECTS(rows_base >= 2);
  FLEX_EXPECTS(cols_base > rows_base);
  FLEX_EXPECTS(z >= 2);
  FLEX_EXPECTS(info_column_weight >= 2 && info_column_weight <= rows_base);
  base_shift_.assign(static_cast<std::size_t>(rows_base * cols_base), -1);
  build_info_part(info_column_weight, seed);
  build_parity_part();
  expand();
}

QcLdpcCode QcLdpcCode::paper_code() {
  // rate (72-8)/72 = 8/9; k = 64*512 = 32768 bits = 4 KB.
  return QcLdpcCode(8, 72, 512, 4);
}

QcLdpcCode QcLdpcCode::test_code() { return QcLdpcCode(4, 12, 32, 3); }

int QcLdpcCode::shift_at(int base_row, int base_col) const {
  FLEX_EXPECTS(base_row >= 0 && base_row < rows_base_);
  FLEX_EXPECTS(base_col >= 0 && base_col < cols_base_);
  return base_shift_[static_cast<std::size_t>(base_row * cols_base_ +
                                              base_col)];
}

void QcLdpcCode::build_info_part(int info_column_weight, std::uint64_t seed) {
  Rng rng(seed);
  const int info_cols = cols_base_ - rows_base_;
  std::vector<int> rows_pool(static_cast<std::size_t>(rows_base_));
  std::iota(rows_pool.begin(), rows_pool.end(), 0);
  for (int c = 0; c < info_cols; ++c) {
    // Choose `info_column_weight` distinct rows by partial Fisher-Yates,
    // rotating the start so row weights stay balanced.
    for (int i = 0; i < info_column_weight; ++i) {
      const auto j = static_cast<std::size_t>(
          rng.range(i, rows_base_ - 1));
      std::swap(rows_pool[static_cast<std::size_t>(i)], rows_pool[j]);
      const int r = rows_pool[static_cast<std::size_t>(i)];
      base_shift_[static_cast<std::size_t>(r * cols_base_ + c)] =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(z_)));
    }
  }

  // 4-cycle repair: for every column pair sharing two rows, the circulant
  // shifts must not satisfy s(r1,c1)-s(r2,c1) == s(r1,c2)-s(r2,c2) (mod Z).
  auto shift = [&](int r, int c) {
    return base_shift_[static_cast<std::size_t>(r * cols_base_ + c)];
  };
  for (int pass = 0; pass < 32; ++pass) {
    bool any = false;
    for (int c1 = 0; c1 < info_cols; ++c1) {
      for (int c2 = c1 + 1; c2 < info_cols; ++c2) {
        for (int r1 = 0; r1 < rows_base_; ++r1) {
          if (shift(r1, c1) < 0 || shift(r1, c2) < 0) continue;
          for (int r2 = r1 + 1; r2 < rows_base_; ++r2) {
            if (shift(r2, c1) < 0 || shift(r2, c2) < 0) continue;
            const int lhs =
                ((shift(r1, c1) - shift(r2, c1)) % z_ + z_) % z_;
            const int rhs =
                ((shift(r1, c2) - shift(r2, c2)) % z_ + z_) % z_;
            if (lhs == rhs) {
              base_shift_[static_cast<std::size_t>(r1 * cols_base_ + c2)] =
                  static_cast<int>(rng.below(static_cast<std::uint64_t>(z_)));
              any = true;
            }
          }
        }
      }
    }
    if (!any) break;
  }
}

void QcLdpcCode::build_parity_part() {
  const int first_parity = cols_base_ - rows_base_;
  const int special_row = rows_base_ / 2;
  // Column 0 of the parity part: shifts {1, ..., 0 at special_row, ..., 1}.
  // Summing all block rows then cancels everything except P^0 * p0, which
  // gives the linear-time encoder its starting point.
  auto set = [&](int r, int c, int s) {
    base_shift_[static_cast<std::size_t>(r * cols_base_ + c)] = s;
  };
  set(0, first_parity, 1 % z_);
  set(special_row, first_parity, 0);
  set(rows_base_ - 1, first_parity, 1 % z_);
  // Dual diagonal: parity column j (j >= 1) pairs rows j-1 and j, shift 0.
  for (int j = 1; j < rows_base_; ++j) {
    set(j - 1, first_parity + j, 0);
    set(j, first_parity + j, 0);
  }
}

void QcLdpcCode::expand() {
  entries_.clear();
  for (int r = 0; r < rows_base_; ++r) {
    for (int c = 0; c < cols_base_; ++c) {
      const int s = base_shift_[static_cast<std::size_t>(r * cols_base_ + c)];
      if (s >= 0) entries_.push_back({.row = r, .col = c, .shift = s});
    }
  }
  rows_.assign(static_cast<std::size_t>(m()), {});
  for (const auto& e : entries_) {
    for (int i = 0; i < z_; ++i) {
      const int row = e.row * z_ + i;
      const int col = e.col * z_ + (i + e.shift) % z_;
      rows_[static_cast<std::size_t>(row)].push_back(col);
    }
  }
  for (auto& row : rows_) std::sort(row.begin(), row.end());
}

bool QcLdpcCode::check(const std::vector<std::uint8_t>& word) const {
  FLEX_EXPECTS(static_cast<int>(word.size()) == n());
  for (const auto& row : rows_) {
    std::uint8_t parity = 0;
    for (const auto col : row) {
      parity ^= static_cast<std::uint8_t>(word[static_cast<std::size_t>(col)] &
                                          1);
    }
    if (parity != 0) return false;
  }
  return true;
}

int QcLdpcCode::residual_four_cycles() const {
  auto shift = [&](int r, int c) {
    return base_shift_[static_cast<std::size_t>(r * cols_base_ + c)];
  };
  const int info_cols = cols_base_ - rows_base_;
  int count = 0;
  for (int c1 = 0; c1 < info_cols; ++c1) {
    for (int c2 = c1 + 1; c2 < info_cols; ++c2) {
      for (int r1 = 0; r1 < rows_base_; ++r1) {
        if (shift(r1, c1) < 0 || shift(r1, c2) < 0) continue;
        for (int r2 = r1 + 1; r2 < rows_base_; ++r2) {
          if (shift(r2, c1) < 0 || shift(r2, c2) < 0) continue;
          const int lhs = ((shift(r1, c1) - shift(r2, c1)) % z_ + z_) % z_;
          const int rhs = ((shift(r1, c2) - shift(r2, c2)) % z_ + z_) % z_;
          if (lhs == rhs) ++count;
        }
      }
    }
  }
  return count;
}

}  // namespace flex::ldpc
