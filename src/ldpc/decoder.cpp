#include "ldpc/decoder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"

namespace flex::ldpc {

Decoder::Decoder(const QcLdpcCode& code) : Decoder(code, Options{}) {}

Decoder::Decoder(const QcLdpcCode& code, Options options)
    : code_(code), options_(options) {
  FLEX_EXPECTS(options_.max_iterations >= 1);
  FLEX_EXPECTS(options_.normalization > 0.0f && options_.normalization <= 1.0f);
  const auto& rows = code_.row_adjacency();
  row_offsets_.reserve(rows.size() + 1);
  row_offsets_.push_back(0);
  for (const auto& row : rows) {
    for (const auto col : row) col_index_.push_back(col);
    row_offsets_.push_back(static_cast<std::int32_t>(col_index_.size()));
  }
}

DecodeResult Decoder::decode(std::span<const float> llr) const {
  FLEX_EXPECTS(static_cast<int>(llr.size()) == code_.n());
  const auto n = static_cast<std::size_t>(code_.n());
  const auto m = static_cast<std::size_t>(code_.m());

  std::vector<float> posterior(llr.begin(), llr.end());
  std::vector<float> check_msg(col_index_.size(), 0.0f);

  DecodeResult result;
  result.bits.assign(n, 0);

  auto satisfied = [&]() {
    for (std::size_t r = 0; r < m; ++r) {
      std::uint8_t parity = 0;
      for (auto e = row_offsets_[r]; e < row_offsets_[r + 1]; ++e) {
        parity ^= static_cast<std::uint8_t>(
            posterior[static_cast<std::size_t>(col_index_[static_cast<std::size_t>(e)])] < 0.0f);
      }
      if (parity) return false;
    }
    return true;
  };

  // phi(x) = -log(tanh(x/2)), its own inverse; the numerically robust form
  // of the sum-product check update. Inputs are clamped away from 0 and
  // infinity so the transform stays finite.
  const auto phi = [](float x) {
    const float clamped = std::clamp(x, 1e-6f, 30.0f);
    return -std::log(std::tanh(clamped * 0.5f));
  };

  int iter = 0;
  bool ok = satisfied();
  while (!ok && iter < options_.max_iterations) {
    ++iter;
    // Layered (row-serial) schedule: each check row consumes the freshest
    // posteriors, which roughly halves the iterations flooding would need.
    for (std::size_t r = 0; r < m; ++r) {
      const auto begin = static_cast<std::size_t>(row_offsets_[r]);
      const auto end = static_cast<std::size_t>(row_offsets_[r + 1]);
      if (options_.algorithm == Algorithm::kSumProduct) {
        // Exact belief propagation via the phi transform: the outgoing
        // magnitude is phi(sum of phi over the other edges).
        float phi_sum = 0.0f;
        std::uint32_t sign_bits = 0;
        for (std::size_t e = begin; e < end; ++e) {
          const auto col = static_cast<std::size_t>(col_index_[e]);
          const float extrinsic = posterior[col] - check_msg[e];
          check_msg[e] = extrinsic;  // stash for the second pass
          if (extrinsic < 0.0f) sign_bits ^= 1u;
          phi_sum += phi(std::fabs(extrinsic));
        }
        for (std::size_t e = begin; e < end; ++e) {
          const auto col = static_cast<std::size_t>(col_index_[e]);
          const float extrinsic = check_msg[e];
          const float mag = phi(phi_sum - phi(std::fabs(extrinsic)));
          const bool negative =
              ((sign_bits ^ (extrinsic < 0.0f ? 1u : 0u)) & 1u) != 0;
          const float msg = negative ? -mag : mag;
          check_msg[e] = msg;
          posterior[col] = extrinsic + msg;
        }
      } else {
        // Normalized min-sum.
        float min1 = std::numeric_limits<float>::max();
        float min2 = std::numeric_limits<float>::max();
        std::size_t min1_edge = begin;
        std::uint32_t sign_bits = 0;
        for (std::size_t e = begin; e < end; ++e) {
          const auto col = static_cast<std::size_t>(col_index_[e]);
          const float extrinsic = posterior[col] - check_msg[e];
          // Stash the extrinsic in check_msg for the second pass.
          check_msg[e] = extrinsic;
          const float mag = std::fabs(extrinsic);
          if (extrinsic < 0.0f) sign_bits ^= 1u;
          if (mag < min1) {
            min2 = min1;
            min1 = mag;
            min1_edge = e;
          } else if (mag < min2) {
            min2 = mag;
          }
        }
        for (std::size_t e = begin; e < end; ++e) {
          const auto col = static_cast<std::size_t>(col_index_[e]);
          const float extrinsic = check_msg[e];
          const float mag = (e == min1_edge) ? min2 : min1;
          const bool negative =
              ((sign_bits ^ (extrinsic < 0.0f ? 1u : 0u)) & 1u) != 0;
          const float msg =
              options_.normalization * (negative ? -mag : mag);
          check_msg[e] = msg;
          posterior[col] = extrinsic + msg;
        }
      }
    }
    ok = satisfied();
  }

  for (std::size_t i = 0; i < n; ++i) {
    result.bits[i] = posterior[i] < 0.0f ? 1 : 0;
  }
  result.success = ok;
  result.iterations = iter;
  return result;
}

}  // namespace flex::ldpc
