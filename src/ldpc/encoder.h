// Linear-time QC-LDPC encoder exploiting the dual-diagonal parity part.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ldpc/qc_code.h"

namespace flex::ldpc {

class Encoder {
 public:
  explicit Encoder(const QcLdpcCode& code);

  /// Systematic encode: `message` has k() bits (one per byte); the returned
  /// codeword is [message | parity], n() bits.
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> message) const;

 private:
  // Accumulates circulant-rotated `block` (Z bits) into `acc`.
  void accumulate_rotated(std::span<const std::uint8_t> block, int shift,
                          std::span<std::uint8_t> acc) const;

  const QcLdpcCode& code_;
};

}  // namespace flex::ldpc
