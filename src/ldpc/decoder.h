// Normalized min-sum LDPC decoder (layered schedule, early termination).
//
// The decoder consumes per-bit LLRs — produced by the sensing channel model
// in channel.h — so the same code path handles hard-decision input
// (two-level LLRs) and any number of extra soft-sensing levels, exactly the
// knob the paper's latency analysis turns.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ldpc/qc_code.h"

namespace flex::ldpc {

struct DecodeResult {
  bool success = false;     ///< all parity checks satisfied
  int iterations = 0;       ///< layered iterations actually executed
  std::vector<std::uint8_t> bits;  ///< hard decisions, size n()
};

class Decoder {
 public:
  /// Check-node update rule.
  enum class Algorithm {
    /// Normalized min-sum: the hardware-friendly approximation every SSD
    /// controller ships; slightly weaker than belief propagation.
    kMinSum,
    /// Sum-product (exact belief propagation in the tanh domain): the
    /// reference decoder, ~0.2-0.4 dB stronger, used here to bound how
    /// much of the sensing ladder's margin is decoder-dependent.
    kSumProduct,
  };

  struct Options {
    int max_iterations = 30;
    /// Min-sum normalization factor; 0.75 is the standard choice for
    /// column-weight-4 codes. Ignored by kSumProduct.
    float normalization = 0.75f;
    Algorithm algorithm = Algorithm::kMinSum;
  };

  explicit Decoder(const QcLdpcCode& code);
  Decoder(const QcLdpcCode& code, Options options);

  /// Decodes from channel LLRs (positive = bit 0 more likely). Size must be
  /// n(). Deterministic; reusable across calls (scratch is recycled).
  DecodeResult decode(std::span<const float> llr) const;

  const QcLdpcCode& code() const { return code_; }

 private:
  const QcLdpcCode& code_;
  Options options_;
  // Flattened CSR over check rows.
  std::vector<std::int32_t> row_offsets_;
  std::vector<std::int32_t> col_index_;
};

}  // namespace flex::ldpc
