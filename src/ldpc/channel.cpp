#include "ldpc/channel.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <mutex>
#include <utility>

#include "common/assert.h"
#include "common/normal.h"

namespace flex::ldpc {
namespace {

/// P(observation in (lo, hi] | signal mean) for +/-1 signaling with noise
/// sigma.
double region_prob(double lo, double hi, double mean, double sigma) {
  return normal_cdf((hi - mean) / sigma) - normal_cdf((lo - mean) / sigma);
}

/// Mutual information of the quantized binary-input AWGN channel with
/// equiprobable inputs: I(X; R) = sum_r sum_x p(x) p(r|x) log2(p(r|x)/p(r)).
double quantized_mi(const std::vector<double>& boundaries, double sigma) {
  const double inf = std::numeric_limits<double>::infinity();
  double mi = 0.0;
  for (std::size_t r = 0; r <= boundaries.size(); ++r) {
    const double lo = r == 0 ? -inf : boundaries[r - 1];
    const double hi = r == boundaries.size() ? inf : boundaries[r];
    const double p_plus = region_prob(lo, hi, +1.0, sigma);
    const double p_minus = region_prob(lo, hi, -1.0, sigma);
    const double p_r = 0.5 * (p_plus + p_minus);
    if (p_r <= 0.0) continue;
    if (p_plus > 0.0) mi += 0.5 * p_plus * std::log2(p_plus / p_r);
    if (p_minus > 0.0) mi += 0.5 * p_minus * std::log2(p_minus / p_r);
  }
  return mi;
}

/// The seed model's uniform placement: hard reference at 0, offsets
/// alternating +d, -d, +2d, ... tiling (-T, T) with T = 1.5 sigma. Shared
/// by the kUniform constructor path and the optimizer's starting point.
std::vector<double> uniform_boundaries(double sigma, int extra_levels) {
  std::vector<double> boundaries;
  boundaries.push_back(0.0);
  const double t = 1.5 * sigma;
  const double step = 2.0 * t / (extra_levels + 2);
  for (int i = 1; i <= extra_levels; ++i) {
    const int k = (i + 1) / 2;
    boundaries.push_back(i % 2 == 1 ? k * step : -k * step);
  }
  std::sort(boundaries.begin(), boundaries.end());
  return boundaries;
}

/// Coordinate-wise golden-section ascent of the quantized-channel MI over
/// the boundary positions, keeping the hard reference at 0 fixed. MI is
/// smooth and unimodal in each boundary between its neighbours, so a few
/// sweeps converge to placement noise far below the MI resolution the
/// ladder calibration cares about. Fully deterministic (fixed iteration
/// counts, no data-dependent termination).
std::vector<double> optimize_boundaries(double sigma, int extra_levels) {
  std::vector<double> b = uniform_boundaries(sigma, extra_levels);
  if (extra_levels == 0) return b;  // only the immovable hard reference
  constexpr double kGolden = 0.6180339887498949;
  constexpr int kSweeps = 6;
  constexpr int kSectionSteps = 48;
  const double span = 6.0 * sigma;
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (b[i] == 0.0) continue;  // the hard reference never moves
      const double gap = 1e-6 * sigma;
      double lo = i == 0 ? -span : b[i - 1] + gap;
      double hi = i + 1 == b.size() ? span : b[i + 1] - gap;
      const auto eval = [&](double x) {
        b[i] = x;
        return quantized_mi(b, sigma);
      };
      double x1 = hi - kGolden * (hi - lo);
      double x2 = lo + kGolden * (hi - lo);
      double f1 = eval(x1);
      double f2 = eval(x2);
      for (int it = 0; it < kSectionSteps; ++it) {
        if (f1 < f2) {
          lo = x1;
          x1 = x2;
          f1 = f2;
          x2 = lo + kGolden * (hi - lo);
          f2 = eval(x2);
        } else {
          hi = x2;
          x2 = x1;
          f2 = f1;
          x1 = hi - kGolden * (hi - lo);
          f1 = eval(x1);
        }
      }
      b[i] = f1 > f2 ? x1 : x2;
    }
  }
  FLEX_ENSURES(std::is_sorted(b.begin(), b.end()));
  return b;
}

// The (BER bucket, level count) placement table. 16 log-spaced buckets per
// decade from 1e-5: fine enough that the placement optimized for a
// bucket's geometric centre is second-order-close to the per-BER optimum
// (the MI gradient vanishes at the optimum), coarse enough that the table
// stays tiny and every run — regardless of thread count or call order —
// computes the identical entries.
constexpr double kBucketFloorBer = 1e-5;
constexpr double kBucketsPerDecade = 16.0;

std::uint64_t mi_bucket_of(double raw_ber) {
  const double clamped = std::max(raw_ber, kBucketFloorBer);
  const double idx =
      std::floor(std::log10(clamped / kBucketFloorBer) * kBucketsPerDecade);
  return static_cast<std::uint64_t>(std::max(idx, 0.0));
}

double mi_bucket_center(std::uint64_t bucket) {
  const double ber = kBucketFloorBer * std::pow(10.0, (static_cast<double>(bucket) + 0.5) /
                                                          kBucketsPerDecade);
  return std::min(ber, 0.45);
}

}  // namespace

std::vector<double> mi_sensing_boundaries(double raw_ber, int extra_levels) {
  FLEX_EXPECTS(raw_ber > 0.0 && raw_ber < 0.5);
  FLEX_EXPECTS(extra_levels >= 0);
  const std::uint64_t key =
      (mi_bucket_of(raw_ber) << 8) | static_cast<std::uint64_t>(extra_levels);
  static std::mutex mutex;
  static std::map<std::uint64_t, std::vector<double>>* table =
      new std::map<std::uint64_t, std::vector<double>>();
  std::lock_guard<std::mutex> lock(mutex);
  auto it = table->find(key);
  if (it == table->end()) {
    const double center = mi_bucket_center(mi_bucket_of(raw_ber));
    const double sigma = -1.0 / normal_quantile(center);
    it = table->emplace(key, optimize_boundaries(sigma, extra_levels)).first;
  }
  return it->second;
}

SensingChannel::SensingChannel(double raw_ber, int extra_levels)
    : SensingChannel(raw_ber, extra_levels, QuantizerKind::kUniform) {}

SensingChannel::SensingChannel(double raw_ber, int extra_levels,
                               QuantizerKind quantizer)
    : raw_ber_(raw_ber), extra_levels_(extra_levels), quantizer_(quantizer) {
  FLEX_EXPECTS(raw_ber > 0.0 && raw_ber < 0.5);
  FLEX_EXPECTS(extra_levels >= 0);
  // Hard-decision error rate of +/-1 signaling: p = Q(1/sigma).
  sigma_ = -1.0 / normal_quantile(raw_ber);

  // Sensing boundaries: the hard reference at 0 is always present; each
  // extra level adds one more threshold bracketing it (+d, -d, +2d, -2d,
  // ...), mirroring how flash soft sensing strobes offsets around the
  // nominal read reference.
  boundaries_ = quantizer == QuantizerKind::kMiOptimized
                    ? mi_sensing_boundaries(raw_ber, extra_levels)
                    : uniform_boundaries(sigma_, extra_levels);

  // Region LLRs: log P(region | bit 0 -> +1) / P(region | bit 1 -> -1).
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r <= boundaries_.size(); ++r) {
    const double lo = r == 0 ? -inf : boundaries_[r - 1];
    const double hi = r == boundaries_.size() ? inf : boundaries_[r];
    const double p_plus = std::max(region_prob(lo, hi, +1.0, sigma_), 1e-300);
    const double p_minus = std::max(region_prob(lo, hi, -1.0, sigma_), 1e-300);
    // Clamp so saturated regions stay finite for the min-sum arithmetic.
    const double llr = std::clamp(std::log(p_plus / p_minus), -30.0, 30.0);
    region_llr_.push_back(static_cast<float>(llr));
  }
  FLEX_ENSURES(std::is_sorted(region_llr_.begin(), region_llr_.end()));
}

double SensingChannel::mutual_information() const {
  return quantized_mi(boundaries_, sigma_);
}

int SensingChannel::region_of(double y) const {
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), y);
  return static_cast<int>(it - boundaries_.begin());
}

void SensingChannel::transmit(std::span<const std::uint8_t> bits, Rng& rng,
                              std::vector<float>& out) const {
  out.resize(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const double mean = (bits[i] & 1) ? -1.0 : 1.0;
    const double y = rng.normal(mean, sigma_);
    out[i] = region_llr_[static_cast<std::size_t>(region_of(y))];
  }
}

std::vector<float> SensingChannel::transmit(
    std::span<const std::uint8_t> bits, Rng& rng) const {
  std::vector<float> llr;
  transmit(bits, rng, llr);
  return llr;
}

}  // namespace flex::ldpc
