#include "ldpc/channel.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "common/normal.h"

namespace flex::ldpc {

SensingChannel::SensingChannel(double raw_ber, int extra_levels)
    : raw_ber_(raw_ber), extra_levels_(extra_levels) {
  FLEX_EXPECTS(raw_ber > 0.0 && raw_ber < 0.5);
  FLEX_EXPECTS(extra_levels >= 0);
  // Hard-decision error rate of +/-1 signaling: p = Q(1/sigma).
  sigma_ = -1.0 / normal_quantile(raw_ber);

  // Sensing boundaries: the hard reference at 0 is always present; each
  // extra level adds one more threshold bracketing it (+d, -d, +2d, -2d,
  // ...), mirroring how flash soft sensing strobes offsets around the
  // nominal read reference. The offsets tile (-T, T) with T = 1.5 sigma.
  boundaries_.push_back(0.0);
  const double t = 1.5 * sigma_;
  const double step = 2.0 * t / (extra_levels + 2);
  for (int i = 1; i <= extra_levels; ++i) {
    const int k = (i + 1) / 2;
    boundaries_.push_back(i % 2 == 1 ? k * step : -k * step);
  }
  std::sort(boundaries_.begin(), boundaries_.end());

  // Region LLRs: log P(region | bit 0 -> +1) / P(region | bit 1 -> -1).
  const auto prob = [&](double lo, double hi, double mean) {
    return normal_cdf((hi - mean) / sigma_) - normal_cdf((lo - mean) / sigma_);
  };
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r <= boundaries_.size(); ++r) {
    const double lo = r == 0 ? -inf : boundaries_[r - 1];
    const double hi = r == boundaries_.size() ? inf : boundaries_[r];
    const double p_plus = std::max(prob(lo, hi, +1.0), 1e-300);
    const double p_minus = std::max(prob(lo, hi, -1.0), 1e-300);
    // Clamp so saturated regions stay finite for the min-sum arithmetic.
    const double llr = std::clamp(std::log(p_plus / p_minus), -30.0, 30.0);
    region_llr_.push_back(static_cast<float>(llr));
  }
  FLEX_ENSURES(std::is_sorted(region_llr_.begin(), region_llr_.end()));
}

int SensingChannel::region_of(double y) const {
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), y);
  return static_cast<int>(it - boundaries_.begin());
}

std::vector<float> SensingChannel::transmit(
    std::span<const std::uint8_t> bits, Rng& rng) const {
  std::vector<float> llr(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const double mean = (bits[i] & 1) ? -1.0 : 1.0;
    const double y = rng.normal(mean, sigma_);
    llr[i] = region_llr_[static_cast<std::size_t>(region_of(y))];
  }
  return llr;
}

}  // namespace flex::ldpc
