#include "ldpc/encoder.h"

#include "common/assert.h"

namespace flex::ldpc {

Encoder::Encoder(const QcLdpcCode& code) : code_(code) {}

void Encoder::accumulate_rotated(std::span<const std::uint8_t> block,
                                 int shift,
                                 std::span<std::uint8_t> acc) const {
  const int z = code_.z();
  // Circulant P^s maps bit position (i + s) mod Z of the variable block into
  // check row i, matching the expansion rule in QcLdpcCode::expand.
  for (int i = 0; i < z; ++i) {
    acc[static_cast<std::size_t>(i)] ^=
        block[static_cast<std::size_t>((i + shift) % z)];
  }
}

std::vector<std::uint8_t> Encoder::encode(
    std::span<const std::uint8_t> message) const {
  FLEX_EXPECTS(static_cast<int>(message.size()) == code_.k());
  const int z = code_.z();
  const int mb = code_.rows_base();
  const int kb = code_.cols_base() - mb;
  const int first_parity = kb;

  // u[r] = sum over information columns of P^shift * s_col, per block row.
  std::vector<std::vector<std::uint8_t>> u(
      static_cast<std::size_t>(mb),
      std::vector<std::uint8_t>(static_cast<std::size_t>(z), 0));
  for (int r = 0; r < mb; ++r) {
    for (int c = 0; c < kb; ++c) {
      const int s = code_.shift_at(r, c);
      if (s < 0) continue;
      accumulate_rotated(message.subspan(static_cast<std::size_t>(c * z),
                                         static_cast<std::size_t>(z)),
                         s, u[static_cast<std::size_t>(r)]);
    }
  }

  // p0 = sum of all u[r]: the dual-diagonal terms cancel pairwise and the
  // column-0 shifts {1, 0, 1} collapse to P^0.
  std::vector<std::uint8_t> p0(static_cast<std::size_t>(z), 0);
  for (const auto& ur : u) {
    for (int i = 0; i < z; ++i) {
      p0[static_cast<std::size_t>(i)] ^= ur[static_cast<std::size_t>(i)];
    }
  }

  std::vector<std::uint8_t> codeword(static_cast<std::size_t>(code_.n()), 0);
  std::copy(message.begin(), message.end(), codeword.begin());
  auto parity_block = [&](int j) {
    return std::span<std::uint8_t>(codeword).subspan(
        static_cast<std::size_t>((first_parity + j) * z),
        static_cast<std::size_t>(z));
  };
  std::copy(p0.begin(), p0.end(), parity_block(0).begin());

  // Forward substitution: row r gives p_{r+1} = u_r + [col0 at r] + p_r.
  std::vector<std::uint8_t> prev(static_cast<std::size_t>(z), 0);
  for (int r = 0; r + 1 < mb; ++r) {
    std::vector<std::uint8_t> next = u[static_cast<std::size_t>(r)];
    const int s0 = code_.shift_at(r, first_parity);
    if (s0 >= 0) {
      accumulate_rotated(p0, s0, next);
    }
    if (r >= 1) {
      for (int i = 0; i < z; ++i) {
        next[static_cast<std::size_t>(i)] ^= prev[static_cast<std::size_t>(i)];
      }
    }
    std::copy(next.begin(), next.end(), parity_block(r + 1).begin());
    prev = std::move(next);
  }

  FLEX_ENSURES(code_.check(codeword));
  return codeword;
}

}  // namespace flex::ldpc
