// Soft-sensing channel model: raw BER + extra sensing levels -> LLRs.
//
// NAND soft sensing re-reads a page with additional reference voltages; each
// extra level adds one quantization boundary around the nominal read
// reference. We model the per-bit channel as binary-input AWGN whose
// hard-decision error rate equals the cell raw BER (the standard equivalent-
// channel abstraction used by LDPC-in-SSD [2] and Dong et al. [4]), then
// quantize the observation with the sensing boundaries and hand the decoder
// the exact LLR of each quantization region. Zero extra levels therefore
// degrade to a binary symmetric channel, and each added level recovers part
// of the soft information — which is precisely the latency/capability
// trade-off FlexLevel manipulates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace flex::ldpc {

class SensingChannel {
 public:
  /// `raw_ber` in (0, 0.5); `extra_levels >= 0` additional sensing levels
  /// beyond the single hard-decision reference.
  SensingChannel(double raw_ber, int extra_levels);

  double raw_ber() const { return raw_ber_; }
  int extra_levels() const { return extra_levels_; }
  /// Number of distinguishable output regions (= extra_levels + 2).
  int regions() const { return static_cast<int>(region_llr_.size()); }
  /// Equivalent AWGN noise sigma for the +/-1 signaling.
  double sigma() const { return sigma_; }

  /// LLR assigned to each region, ordered from most-negative observation.
  const std::vector<float>& region_llrs() const { return region_llr_; }

  /// Transmits `bits` (one per byte) and produces the quantized-region LLR
  /// for each. Positive LLR favours bit 0.
  std::vector<float> transmit(std::span<const std::uint8_t> bits,
                              Rng& rng) const;

  /// The region index an observation `y` falls into.
  int region_of(double y) const;

  /// Fraction of bits whose *hard* decision (sign of region LLR) is wrong —
  /// equals raw_ber by construction; exposed for tests.
  double hard_error_rate() const { return raw_ber_; }

 private:
  double raw_ber_;
  int extra_levels_;
  double sigma_;
  std::vector<double> boundaries_;  // ascending quantization thresholds
  std::vector<float> region_llr_;
};

}  // namespace flex::ldpc
