// Soft-sensing channel model: raw BER + extra sensing levels -> LLRs.
//
// NAND soft sensing re-reads a page with additional reference voltages; each
// extra level adds one quantization boundary around the nominal read
// reference. We model the per-bit channel as binary-input AWGN whose
// hard-decision error rate equals the cell raw BER (the standard equivalent-
// channel abstraction used by LDPC-in-SSD [2] and Dong et al. [4]), then
// quantize the observation with the sensing boundaries and hand the decoder
// the exact LLR of each quantization region. Zero extra levels therefore
// degrade to a binary symmetric channel, and each added level recovers part
// of the soft information — which is precisely the latency/capability
// trade-off FlexLevel manipulates.
//
// Boundary placement is a quantizer design choice:
//  * kUniform — the seed model: offsets tile (-1.5 sigma, 1.5 sigma)
//    uniformly around the hard reference;
//  * kMiOptimized — place the offsets to maximize the mutual information
//    of the quantized channel ("Mutual-Information Optimized Quantization
//    for LDPC Decoding", PAPERS.md): the same sensing budget keeps more of
//    the soft information, so the same ladder step corrects a higher raw
//    BER. Placements come from a precomputed deterministic table keyed by
//    (BER bucket, level count).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace flex::ldpc {

/// Sensing-boundary placement strategy (see file comment).
enum class QuantizerKind { kUniform, kMiOptimized };

/// MI-optimized boundary placements for `extra_levels` offsets around the
/// hard reference at raw BER `raw_ber`. Deterministic: the optimization
/// runs once per (BER bucket, level count) — 16 log-spaced buckets per
/// decade — and is cached process-wide, so every caller (any thread, any
/// call order) sees the identical placement. The hard reference at 0 is
/// always included and never moves (the threshold estimator owns its
/// position).
std::vector<double> mi_sensing_boundaries(double raw_ber, int extra_levels);

class SensingChannel {
 public:
  /// `raw_ber` in (0, 0.5); `extra_levels >= 0` additional sensing levels
  /// beyond the single hard-decision reference.
  SensingChannel(double raw_ber, int extra_levels);

  /// Same, with an explicit boundary-placement strategy; the two-argument
  /// constructor is kUniform.
  SensingChannel(double raw_ber, int extra_levels, QuantizerKind quantizer);

  double raw_ber() const { return raw_ber_; }
  int extra_levels() const { return extra_levels_; }
  /// Number of distinguishable output regions (= extra_levels + 2).
  int regions() const { return static_cast<int>(region_llr_.size()); }
  /// Equivalent AWGN noise sigma for the +/-1 signaling.
  double sigma() const { return sigma_; }
  QuantizerKind quantizer() const { return quantizer_; }

  /// LLR assigned to each region, ordered from most-negative observation.
  const std::vector<float>& region_llrs() const { return region_llr_; }

  /// Mutual information (bits per channel use) between the equiprobable
  /// channel input and the quantized region output — the quantity the
  /// kMiOptimized placement maximizes, and the density-evolution proxy for
  /// how high a raw BER a fixed-rate LDPC code can still decode.
  double mutual_information() const;

  /// Transmits `bits` (one per byte) and produces the quantized-region LLR
  /// for each. Positive LLR favours bit 0.
  std::vector<float> transmit(std::span<const std::uint8_t> bits,
                              Rng& rng) const;

  /// Caller-pooled transmit: overwrites `out` (resized to bits.size()),
  /// reusing its capacity so an in-loop caller allocates nothing in steady
  /// state. Identical output to the allocating overload.
  void transmit(std::span<const std::uint8_t> bits, Rng& rng,
                std::vector<float>& out) const;

  /// The region index an observation `y` falls into.
  int region_of(double y) const;

  /// Fraction of bits whose *hard* decision (sign of region LLR) is wrong —
  /// equals raw_ber by construction; exposed for tests.
  double hard_error_rate() const { return raw_ber_; }

 private:
  double raw_ber_;
  int extra_levels_;
  QuantizerKind quantizer_;
  double sigma_;
  std::vector<double> boundaries_;  // ascending quantization thresholds
  std::vector<float> region_llr_;
};

}  // namespace flex::ldpc
