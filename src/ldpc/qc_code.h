// Quasi-cyclic LDPC code construction.
//
// The paper applies a rate-8/9 LDPC code to each 4 KB data block. We build
// a QC code with an 802.11n-style dual-diagonal parity structure so the
// encoder runs in linear time, and pseudo-random circulant shifts in the
// information part with a 4-cycle repair pass (short cycles are what hurt
// min-sum at the BERs the paper cares about).
#pragma once

#include <cstdint>
#include <vector>

namespace flex::ldpc {

/// One circulant block of the base matrix: rotation `shift` of the ZxZ
/// identity, or the zero block when `shift < 0`.
struct BaseEntry {
  int row = 0;
  int col = 0;
  int shift = -1;
};

/// A QC-LDPC code: base matrix of size `rows_base x cols_base` expanded by
/// circulant size `z`. Codeword layout is [information | parity].
class QcLdpcCode {
 public:
  /// Builds a code with `cols_base - rows_base` information block-columns.
  /// Every information column has weight `info_column_weight`; the parity
  /// part is dual-diagonal. `seed` fixes the pseudo-random shift pattern.
  QcLdpcCode(int rows_base, int cols_base, int z, int info_column_weight,
             std::uint64_t seed = 0x5EED);

  /// The paper's code: rate 8/9 over one 4 KB block (k = 32768 bits,
  /// n = 36864, base 8 x 72, Z = 512).
  static QcLdpcCode paper_code();

  /// A small code for unit tests (base 4 x 12, Z = 32: n=384, k=256).
  static QcLdpcCode test_code();

  int n() const { return cols_base_ * z_; }
  int k() const { return (cols_base_ - rows_base_) * z_; }
  int m() const { return rows_base_ * z_; }
  int z() const { return z_; }
  int rows_base() const { return rows_base_; }
  int cols_base() const { return cols_base_; }
  double rate() const { return static_cast<double>(k()) / n(); }

  /// All nonzero circulant blocks.
  const std::vector<BaseEntry>& base_entries() const { return entries_; }

  /// Expanded parity-check structure, rows-major: for each of the m() check
  /// rows, the sorted list of participating columns.
  const std::vector<std::vector<std::int32_t>>& row_adjacency() const {
    return rows_;
  }

  /// Shift of the base entry at (row, col 0 of parity part... ) — helper
  /// for the encoder: returns shift at base position or -1.
  int shift_at(int base_row, int base_col) const;

  /// True iff H * word == 0 (word is one bit per byte, size n()).
  bool check(const std::vector<std::uint8_t>& word) const;

  /// Number of base-graph 4-cycles remaining after repair (0 in practice;
  /// exposed for tests/ablation).
  int residual_four_cycles() const;

 private:
  void build_info_part(int info_column_weight, std::uint64_t seed);
  void build_parity_part();
  void expand();

  int rows_base_;
  int cols_base_;
  int z_;
  std::vector<BaseEntry> entries_;
  std::vector<std::vector<std::int32_t>> rows_;
  // dense base-shift lookup, -1 when absent
  std::vector<int> base_shift_;
};

}  // namespace flex::ldpc
