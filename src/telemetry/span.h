// Per-request latency-breakdown spans in *simulated* time.
//
// A Span is one completed interval (or instant event, dur == 0) on a
// track. Tracks mirror the Chrome trace-event model: `pid` is the process
// track (one per experiment cell in a bench sweep) and `tid` the thread
// track within it (one per chip, plus the host and FTL-maintenance
// tracks). Name/category/arg-key strings are static-lifetime C strings:
// spans are recorded on simulation hot paths and must not allocate per
// event beyond the vector push.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace flex::telemetry {

/// Thread-track ids within a cell's process track. Chips occupy
/// [0, chips); these synthetic tracks sit far above any real chip count.
constexpr std::int32_t kHostTrack = 1000;  ///< host request lifetimes
constexpr std::int32_t kFtlTrack = 1001;   ///< GC / refresh / migrations

struct Span {
  const char* name = "";
  const char* cat = "";
  std::int32_t pid = 0;
  std::int32_t tid = 0;
  SimTime start = 0;  ///< ns of simulated time
  Duration dur = 0;   ///< ns; 0 = instant event
  /// Up to two numeric args, exported into the Chrome "args" object when
  /// the key is non-null.
  const char* arg0_key = nullptr;
  double arg0 = 0.0;
  const char* arg1_key = nullptr;
  double arg1 = 0.0;
};

/// Append-only span sink. Recording order is preserved; the exporter
/// stable-sorts by start time, so spans recorded parent-before-child at
/// the same instant keep their nesting order.
class SpanRecorder {
 public:
  void record(const Span& span) { spans_.push_back(span); }
  const std::vector<Span>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  void clear() { spans_.clear(); }

 private:
  std::vector<Span> spans_;
};

}  // namespace flex::telemetry
