#include "telemetry/metrics.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/assert.h"

namespace flex::telemetry {

// "%.17g" prints noise digits for most values; try increasing precision
// until the representation round-trips.
std::string format_double(double v) {
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) break;
  }
  return buf;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, data] : other.histograms) {
    auto [it, inserted] = histograms.try_emplace(name, data);
    if (inserted) continue;
    HistogramData& mine = it->second;
    FLEX_EXPECTS(mine.spec == data.spec);
    FLEX_ASSERT(mine.counts.size() == data.counts.size());
    for (std::size_t i = 0; i < mine.counts.size(); ++i) {
      mine.counts[i] += data.counts[i];
    }
    mine.total += data.total;
  }
}

void MetricsSnapshot::write_jsonl(std::ostream& out,
                                  std::string_view line_prefix) const {
  for (const auto& [name, value] : counters) {
    out << '{' << line_prefix << "\"type\":\"counter\",\"name\":\"" << name
        << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, value] : gauges) {
    out << '{' << line_prefix << "\"type\":\"gauge\",\"name\":\"" << name
        << "\",\"value\":" << format_double(value) << "}\n";
  }
  for (const auto& [name, data] : histograms) {
    out << '{' << line_prefix << "\"type\":\"histogram\",\"name\":\"" << name
        << "\",\"lo\":" << format_double(data.spec.lo)
        << ",\"hi\":" << format_double(data.spec.hi)
        << ",\"log\":" << (data.spec.log_spaced ? "true" : "false")
        << ",\"total\":" << data.total << ",\"counts\":[";
    for (std::size_t i = 0; i < data.counts.size(); ++i) {
      if (i > 0) out << ',';
      out << data.counts[i];
    }
    out << "]}\n";
  }
}

std::string MetricsSnapshot::to_jsonl() const {
  std::ostringstream out;
  write_jsonl(out);
  return out.str();
}

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const HistogramSpec& spec) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    FLEX_EXPECTS(it->second.spec == spec);
    return it->second.hist;
  }
  return histograms_
      .emplace(std::string(name), HistEntry{spec, spec.make()})
      .first->second.hist;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c.value);
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g.value);
  for (const auto& [name, entry] : histograms_) {
    HistogramData data;
    data.spec = entry.spec;
    data.total = entry.hist.total();
    data.counts.reserve(entry.hist.bins());
    for (std::size_t i = 0; i < entry.hist.bins(); ++i) {
      data.counts.push_back(entry.hist.bin_count(i));
    }
    snap.histograms.emplace(name, std::move(data));
  }
  return snap;
}

void MetricsRegistry::zero() {
  for (auto& [name, c] : counters_) c.value = 0;
  for (auto& [name, g] : gauges_) g.value = 0.0;
  for (auto& [name, entry] : histograms_) entry.hist = entry.spec.make();
}

}  // namespace flex::telemetry
