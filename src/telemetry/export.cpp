#include "telemetry/export.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>

namespace flex::telemetry {
namespace {

/// ts/dur in microseconds at nanosecond resolution: SimTime is integral
/// ns, so three decimals are exact.
void write_micros(std::ostream& out, std::int64_t ns) {
  const bool negative = ns < 0;
  const std::int64_t magnitude = negative ? -ns : ns;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%lld.%03lld", negative ? "-" : "",
                static_cast<long long>(magnitude / 1000),
                static_cast<long long>(magnitude % 1000));
  out << buf;
}

void write_args(std::ostream& out, const Span& span) {
  if (!span.arg0_key && !span.arg1_key) return;
  out << ",\"args\":{";
  bool first = true;
  char buf[40];
  for (const auto& [key, value] :
       {std::pair{span.arg0_key, span.arg0},
        std::pair{span.arg1_key, span.arg1}}) {
    if (!key) continue;
    if (!first) out << ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << '"' << json_escape(key) << "\":" << buf;
  }
  out << '}';
}

void write_metadata(std::ostream& out, const TrackLabel& label) {
  out << "{\"ph\":\"M\",\"pid\":" << label.pid;
  if (label.thread) out << ",\"tid\":" << label.tid;
  out << ",\"name\":\"" << (label.thread ? "thread_name" : "process_name")
      << "\",\"args\":{\"name\":\"" << json_escape(label.name) << "\"}}";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& out, const std::vector<Span>& spans,
                        const std::vector<TrackLabel>& labels) {
  // Sort by simulated start time; stable so same-instant spans keep
  // recording order (parents were recorded before their children).
  std::vector<const Span*> ordered;
  ordered.reserve(spans.size());
  for (const Span& span : spans) ordered.push_back(&span);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Span* a, const Span* b) {
                     return a->start < b->start;
                   });

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TrackLabel& label : labels) {
    if (!first) out << ",";
    first = false;
    out << "\n";
    write_metadata(out, label);
  }
  for (const Span* span : ordered) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"ph\":\"" << (span->dur > 0 ? 'X' : 'i') << "\",\"pid\":"
        << span->pid << ",\"tid\":" << span->tid << ",\"ts\":";
    write_micros(out, span->start);
    if (span->dur > 0) {
      out << ",\"dur\":";
      write_micros(out, span->dur);
    } else {
      out << ",\"s\":\"t\"";  // instant event, thread scope
    }
    out << ",\"name\":\"" << json_escape(span->name) << "\",\"cat\":\""
        << json_escape(span->cat) << '"';
    write_args(out, *span);
    out << '}';
  }
  out << "\n]}\n";
}

void write_chrome_trace(std::ostream& out, const std::vector<Span>& spans) {
  std::set<std::pair<std::int32_t, std::int32_t>> tracks;
  for (const Span& span : spans) tracks.emplace(span.pid, span.tid);
  std::vector<TrackLabel> labels;
  for (const auto& [pid, tid] : tracks) {
    TrackLabel label{.pid = pid, .tid = tid, .thread = true};
    if (tid == kHostTrack) {
      label.name = "host";
    } else if (tid == kFtlTrack) {
      label.name = "ftl";
    } else {
      label.name = "chip " + std::to_string(tid);
    }
    labels.push_back(std::move(label));
  }
  write_chrome_trace(out, spans, labels);
}

void write_metrics_jsonl(std::ostream& out, std::string_view cell_label,
                         const MetricsSnapshot& snapshot) {
  std::string prefix = "\"cell\":\"";
  prefix += json_escape(cell_label);
  prefix += "\",";
  snapshot.write_jsonl(out, prefix);
}

}  // namespace flex::telemetry
