// Exporters: Chrome trace-event JSON (loads in chrome://tracing and
// Perfetto) and JSONL metrics dumps.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace flex::telemetry {

/// Escapes `s` for use inside a JSON string literal (backslash, quote,
/// and control characters; everything else passes through byte-wise).
std::string json_escape(std::string_view s);

/// Human-readable names for trace tracks, emitted as Chrome "M" metadata
/// events. `thread == false` names the process `pid`; otherwise the
/// thread `(pid, tid)`.
struct TrackLabel {
  std::int32_t pid = 0;
  std::int32_t tid = 0;
  bool thread = false;
  std::string name;
};

/// Writes `{"traceEvents":[...]}`: metadata first, then spans as complete
/// ("X") or instant ("i") events in non-decreasing `ts` order (stable with
/// respect to recording order, so same-instant parents precede their
/// children). `ts`/`dur` are microseconds of simulated time, printed at
/// nanosecond resolution.
void write_chrome_trace(std::ostream& out, const std::vector<Span>& spans,
                        const std::vector<TrackLabel>& labels);

/// write_chrome_trace with default "chip N" / "host" / "ftl" thread labels
/// derived from the tids present, for single-process traces.
void write_chrome_trace(std::ostream& out, const std::vector<Span>& spans);

/// One metric per line (see MetricsSnapshot::write_jsonl), each object
/// tagged with `"cell":<label>` so multi-cell dumps stay distinguishable.
void write_metrics_jsonl(std::ostream& out, std::string_view cell_label,
                         const MetricsSnapshot& snapshot);

}  // namespace flex::telemetry
