// Deterministic metrics registry for the telemetry subsystem.
//
// Components bind *handles* (stable references to a counter/gauge/
// histogram) once, at attach time, so the per-event cost of an enabled
// metric is one integer increment — and the cost of a *disabled* one is a
// single null-pointer check at the instrumentation site (the null-sink
// fast path; see telemetry.h).
//
// Snapshots are ordered maps, so serialising one is deterministic, and
// merging shards in a fixed order (the bench harness folds cells in index
// order) gives bit-identical results whatever thread count produced them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"

namespace flex::telemetry {

/// Shortest decimal representation of `v` that parses back to exactly the
/// same double — deterministic, locale-free JSON number formatting.
std::string format_double(double v);

/// Binning of a registry histogram, kept as plain data so snapshots can be
/// compared and merged without a live Histogram.
struct HistogramSpec {
  double lo = 0.0;
  double hi = 1.0;
  std::size_t bins = 1;
  bool log_spaced = false;

  Histogram make() const {
    return log_spaced ? Histogram::log_spaced(lo, hi, bins)
                      : Histogram(lo, hi, bins);
  }
  bool operator==(const HistogramSpec&) const = default;
};

struct HistogramData {
  HistogramSpec spec;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;

  bool operator==(const HistogramData&) const = default;
};

/// Value-type snapshot of a registry. Merge is associative: counters and
/// gauges add, histograms add bin-wise (specs must match).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  void merge(const MetricsSnapshot& other);
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// One JSON object per line, counters then gauges then histograms, each
  /// alphabetical — byte-deterministic for identical snapshots.
  /// `line_prefix` is inserted verbatim after each opening brace (callers
  /// use it to tag every line with its experiment cell).
  void write_jsonl(std::ostream& out, std::string_view line_prefix = {}) const;
  std::string to_jsonl() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

class MetricsRegistry {
 public:
  struct Counter {
    std::uint64_t value = 0;
  };
  struct Gauge {
    double value = 0.0;
  };

  /// Get-or-create. The returned reference is stable for the registry's
  /// lifetime (map nodes never move), so hot paths bind once and bump a
  /// plain integer thereafter.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Get-or-create; an existing histogram must have been created with the
  /// same spec.
  Histogram& histogram(std::string_view name, const HistogramSpec& spec);

  MetricsSnapshot snapshot() const;
  /// Zeroes every value in place; handles stay valid. Used to scope
  /// metrics to a measurement window (warmup vs measured pass).
  void zero();

 private:
  struct HistEntry {
    HistogramSpec spec;
    Histogram hist;
  };

  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, HistEntry, std::less<>> histograms_;
};

}  // namespace flex::telemetry
