// Telemetry context: one MetricsRegistry + one SpanRecorder per simulator.
//
// The zero-overhead-when-disabled contract: every component holds a
// `Telemetry*` that defaults to nullptr, and every instrumentation site
// guards on that single pointer (plus `tracer()` for spans, which are
// opt-in separately because traces are big). With telemetry detached the
// whole subsystem costs one predicted-not-taken branch per site and
// allocates nothing; simulation results are bit-identical with and
// without a context attached, because instrumentation only observes.
#pragma once

#include <cstdint>

#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace flex::telemetry {

struct Telemetry {
  MetricsRegistry metrics;
  /// Chrome-trace process id stamped on every span this context records
  /// (the bench harness assigns one per experiment cell).
  std::int32_t pid = 0;
  /// Span recording is opt-in on top of metrics.
  bool trace = false;
  SpanRecorder spans;

  SpanRecorder* tracer() { return trace ? &spans : nullptr; }
};

}  // namespace flex::telemetry
