#include "host/array.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/assert.h"

namespace flex::host {
namespace {

/// Golden-ratio seed stride: drive d runs the template seed + d * phi, so
/// sibling drives draw independent prefill-age/preconditioning streams
/// while drive 0 keeps the template seed bit-for-bit (the 1-drive
/// identity).
constexpr std::uint64_t kSeedStride = 0x9E3779B97F4A7C15ULL;

Status validate_drive_config(const ssd::SsdConfig& drive,
                             const std::string& who) {
  if (Status s = drive.Validate(); !s.ok()) return s;
  if (drive.qos.enabled) {
    return Status::InvalidArgument(
        who + ".qos.enabled is unsupported in an array: the host layer "
              "owns queueing above the drive (queue pairs + interconnect); "
              "drive-level QoS mode would double-queue every command");
  }
  if (drive.faults.crash_enabled) {
    return Status::InvalidArgument(
        who + ".faults.crash_enabled is unsupported in an array: the "
              "shared kernel's drain loop is owned by the host layer, not "
              "the drive's crash-armed loop");
  }
  return Status::Ok();
}

std::vector<std::unique_ptr<ssd::SsdSimulator>> build_drives(
    const ArrayConfig& config, const reliability::BerModel& normal,
    const reliability::BerModel& reduced, ssd::EventQueue& kernel) {
  std::vector<std::unique_ptr<ssd::SsdSimulator>> drives;
  drives.reserve(config.drives);
  for (std::uint32_t d = 0; d < config.drives; ++d) {
    ssd::SsdConfig cfg =
        config.drive_overrides.empty() ? config.drive
                                       : config.drive_overrides[d];
    if (config.drive_overrides.empty()) cfg.seed += d * kSeedStride;
    drives.push_back(
        std::make_unique<ssd::SsdSimulator>(cfg, normal, reduced, &kernel));
  }
  return drives;
}

}  // namespace

Status ArrayConfig::Validate() const {
  if (drives < 1 || drives > 1024) {
    return Status::OutOfRange("array.drives must be in [1, 1024]");
  }
  if (replication_factor > drives) {
    return Status::InvalidArgument(
        "array.replication_factor exceeds the drive count: there are not "
        "enough drives to hold that many copies");
  }
  if (replication_factor < 1 || drives % replication_factor != 0) {
    return Status::InvalidArgument(
        "array.replication_factor must be >= 1 and divide array.drives "
        "(drives are partitioned into equal replica groups)");
  }
  if (stripe_pages < 1) {
    return Status::OutOfRange("array.stripe_pages must be >= 1");
  }
  if (tenants < 1 || tenants > 65'535) {
    return Status::OutOfRange("array.tenants must be in [1, 65535]");
  }
  if (replica_policy != ReplicaPolicy::kRoundRobin &&
      replication_factor == 1) {
    return Status::InvalidArgument(
        "array.replica_policy is set but replication_factor is 1: with a "
        "single copy there is nothing to steer — raise the replication "
        "factor or keep the round-robin default");
  }
  if (access_eval_scope == AccessEvalScope::kGlobal) {
    if (replication_factor == 1) {
      return Status::InvalidArgument(
          "array.access_eval_scope = kGlobal with replication_factor 1: "
          "there are no sibling replicas to feed — the global scope would "
          "be silently identical to per-drive");
    }
    if (drive.scheme != ssd::Scheme::kFlexLevel) {
      return Status::InvalidArgument(
          "array.access_eval_scope = kGlobal requires the FlexLevel "
          "scheme: no other scheme consumes AccessEval statistics");
    }
  }
  const QueuePairConfig& qp = queue_pair;
  if (qp.queue_pairs < 1 || qp.queue_pairs > 65'536) {
    return Status::OutOfRange(
        "array.queue_pair.queue_pairs must be in [1, 65536]");
  }
  if (qp.sq_depth < 1 || qp.cq_depth < 1) {
    return Status::OutOfRange(
        "array.queue_pair.sq_depth and cq_depth must be >= 1");
  }
  if (qp.doorbell_latency < 0 || qp.completion_latency < 0) {
    return Status::OutOfRange(
        "array.queue_pair doorbell/completion latencies must be >= 0");
  }
  if (!qp.qp_weights.empty()) {
    if (qp.arbitration != Arbitration::kWeighted) {
      return Status::InvalidArgument(
          "array.queue_pair.qp_weights are set but arbitration is "
          "round-robin: the weights would be silently ignored — switch to "
          "kWeighted or clear them");
    }
    if (qp.qp_weights.size() != qp.queue_pairs) {
      return Status::InvalidArgument(
          "array.queue_pair.qp_weights must be empty or have exactly "
          "queue_pairs entries");
    }
    for (const double w : qp.qp_weights) {
      if (!(w > 0.0)) {
        return Status::OutOfRange(
            "array.queue_pair.qp_weights must all be > 0");
      }
    }
  }
  if (interconnect.requesters < 1 || interconnect.requesters > 256) {
    return Status::OutOfRange(
        "array.interconnect.requesters must be in [1, 256]");
  }
  for (const auto& [name, link] :
       {std::pair{"requester_link", interconnect.requester_link},
        std::pair{"switch_fabric", interconnect.switch_fabric},
        std::pair{"drive_link", interconnect.drive_link}}) {
    if (link.latency < 0) {
      return Status::OutOfRange(std::string("array.interconnect.") + name +
                                ".latency must be >= 0");
    }
  }
  if (interconnect.command_bytes < 1) {
    return Status::OutOfRange(
        "array.interconnect.command_bytes must be >= 1");
  }
  if (Status s = validate_drive_config(drive, "array.drive"); !s.ok()) {
    return s;
  }
  if (!drive_overrides.empty()) {
    if (drive_overrides.size() != drives) {
      return Status::InvalidArgument(
          "array.drive_overrides must be empty or have exactly "
          "array.drives entries");
    }
    for (std::size_t d = 0; d < drive_overrides.size(); ++d) {
      const ssd::SsdConfig& o = drive_overrides[d];
      const std::string who =
          "array.drive_overrides[" + std::to_string(d) + "]";
      if (Status s = validate_drive_config(o, who); !s.ok()) return s;
      // Striping math requires every drive to expose the same logical
      // capacity: same geometry, same over-provisioning, same reduced-
      // capacity squeeze. Aging heterogeneity (initial P/E, prefill ages)
      // is welcome; capacity heterogeneity breaks the bijection.
      const auto& spec = o.ftl.spec;
      const auto& tmpl = drive.ftl.spec;
      if (spec.page_size_bytes != tmpl.page_size_bytes ||
          spec.pages_per_block != tmpl.pages_per_block ||
          spec.blocks_per_chip != tmpl.blocks_per_chip ||
          spec.chips != tmpl.chips ||
          o.ftl.over_provisioning != drive.ftl.over_provisioning ||
          o.ftl.reduced_capacity_factor !=
              drive.ftl.reduced_capacity_factor) {
        return Status::InvalidArgument(
            who + " geometry/capacity mismatches the template drive: a "
                  "striped volume needs identical logical capacity on "
                  "every drive");
      }
    }
  }
  return Status::Ok();
}

ArraySimulator::ArraySimulator(const ArrayConfig& config,
                               const reliability::BerModel& normal,
                               const reliability::BerModel& reduced)
    : config_(config),
      drives_(build_drives(config_, normal, reduced, kernel_)),
      volume_({.drives = config_.drives,
               .replication_factor = config_.replication_factor,
               .stripe_pages = config_.stripe_pages,
               .drive_pages = drives_[0]->ftl().logical_pages()}),
      interconnect_(config_.interconnect, config_.drives),
      page_bytes_(config_.drive.ftl.spec.page_size_bytes) {
  qps_.reserve(config_.drives);
  for (std::uint32_t d = 0; d < config_.drives; ++d) {
    qps_.push_back(std::make_unique<QueuePairSet>(
        config_.queue_pair, kernel_, static_cast<Transport&>(*this),
        static_cast<Dispatcher&>(*this)));
  }
  replica_rr_.assign(volume_.groups(), 0);
  replica_reads_.assign(config_.drives, 0);
  results_.tenant.assign(config_.tenants, ssd::TenantStats{});
  results_.qp.resize(config_.drives);
  results_.drive.resize(config_.drives);
  results_.requester_link.resize(config_.interconnect.requesters);
  results_.drive_link.resize(config_.drives);
  results_.replica_reads.assign(config_.drives, 0);
}

StatusOr<std::unique_ptr<ArraySimulator>> ArraySimulator::Builder::Build()
    const {
  if (Status status = config_.Validate(); !status.ok()) return status;
  auto array = std::unique_ptr<ArraySimulator>(
      new ArraySimulator(config_, normal_, reduced_));
  if (telemetry_ != nullptr) array->attach_telemetry(telemetry_);
  return array;
}

void ArraySimulator::attach_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  kernel_.attach_telemetry(telemetry);
  if (!telemetry_) {
    requests_metric_ = nullptr;
    reads_metric_ = nullptr;
    writes_metric_ = nullptr;
    commands_metric_ = nullptr;
    observe_metric_ = nullptr;
    failover_metric_ = nullptr;
    repair_metric_ = nullptr;
    return;
  }
  telemetry::MetricsRegistry& registry = telemetry_->metrics;
  requests_metric_ = &registry.counter("array.requests");
  reads_metric_ = &registry.counter("array.reads");
  writes_metric_ = &registry.counter("array.writes");
  commands_metric_ = &registry.counter("array.commands");
  observe_metric_ = &registry.counter("array.observe_feeds");
  failover_metric_ = &registry.counter("array.integrity_failovers");
  repair_metric_ = &registry.counter("array.read_repairs");
}

void ArraySimulator::prefill(std::uint64_t host_pages) {
  FLEX_EXPECTS(host_pages <= volume_.logical_pages());
  // Batch the per-group page counts into one prefill call per drive,
  // then fill the drives in parallel: a drive's prefill is synchronous
  // FTL work on its own RNG stream — it schedules no shared-kernel
  // events and touches no sibling state — so the fan-out is
  // byte-identical to the sequential loop while an N-drive array fills
  // in ~1/N the wall-clock.
  std::vector<std::uint64_t> per_drive(drives(), 0);
  for (std::uint32_t g = 0; g < volume_.groups(); ++g) {
    const std::uint64_t pages = volume_.prefill_pages(g, host_pages);
    for (std::uint32_t r = 0; r < volume_.replicas(); ++r) {
      per_drive[volume_.drive_of(g, r)] = pages;
    }
  }
  const auto hw = std::thread::hardware_concurrency();
  const std::uint32_t workers =
      std::min<std::uint32_t>(drives(), hw > 0 ? hw : 1);
  if (workers <= 1) {
    for (std::uint32_t d = 0; d < drives(); ++d) {
      drives_[d]->prefill(per_drive[d]);
    }
    return;
  }
  std::atomic<std::uint32_t> next{0};
  auto worker = [&] {
    for (std::uint32_t d = next.fetch_add(1); d < drives();
         d = next.fetch_add(1)) {
      drives_[d]->prefill(per_drive[d]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::uint32_t t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();
}

std::uint32_t ArraySimulator::pick_replica(std::uint32_t group,
                                           std::uint64_t dlpn) {
  const std::uint32_t replicas = volume_.replicas();
  if (replicas == 1) return volume_.drive_of(group, 0);
  switch (config_.replica_policy) {
    case ReplicaPolicy::kRoundRobin: {
      const std::uint32_t r = replica_rr_[group]++ % replicas;
      return volume_.drive_of(group, r);
    }
    case ReplicaPolicy::kShortestQueue: {
      std::uint32_t best = volume_.drive_of(group, 0);
      for (std::uint32_t r = 1; r < replicas; ++r) {
        const std::uint32_t d = volume_.drive_of(group, r);
        if (qps_[d]->outstanding() < qps_[best]->outstanding()) best = d;
      }
      return best;
    }
    case ReplicaPolicy::kDisturbAware: {
      // Lowest disturb pressure on the backing block; ties fall back to
      // the shorter queue, then the lower index — all deterministic.
      std::uint32_t best = volume_.drive_of(group, 0);
      std::uint64_t best_reads = drives_[best]->block_read_count(dlpn);
      for (std::uint32_t r = 1; r < replicas; ++r) {
        const std::uint32_t d = volume_.drive_of(group, r);
        const std::uint64_t reads = drives_[d]->block_read_count(dlpn);
        if (reads < best_reads ||
            (reads == best_reads &&
             qps_[d]->outstanding() < qps_[best]->outstanding())) {
          best = d;
          best_reads = reads;
        }
      }
      return best;
    }
  }
  FLEX_ASSERT(false && "unreachable");
  return 0;
}

void ArraySimulator::submit_command(std::uint64_t slot, std::uint32_t drive,
                                    const VolumeMapper::Extent& extent,
                                    SimTime now) {
  const ArrayRequest& req = requests_[slot];
  const std::uint64_t payload =
      static_cast<std::uint64_t>(extent.pages) * page_bytes_;
  const std::uint32_t capsule = config_.interconnect.command_bytes;
  HostCommand cmd{
      .request_slot = slot,
      .drive = drive,
      .lpn = extent.dlpn,
      .pages = extent.pages,
      .is_write = req.is_write,
      .tenant = req.tenant,
      .priority = 0,
      .requester = req.requester,
      .qp = req.tenant % config_.queue_pair.queue_pairs,
      .submit_bytes = capsule + (req.is_write ? payload : 0),
      .complete_bytes = capsule + (req.is_write ? 0 : payload)};
  ++requests_[slot].outstanding;
  if (telemetry_) ++commands_metric_->value;
  qps_[drive]->submit(cmd, now);
}

void ArraySimulator::submit_request(const trace::Request& request,
                                    SimTime now) {
  std::uint64_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = requests_.size();
    requests_.emplace_back();
  }
  const auto tenant = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(request.tenant, config_.tenants - 1));
  requests_[slot] = ArrayRequest{
      .arrival = now,
      .lpn = request.lpn,
      .pages = request.pages,
      .tenant = tenant,
      .requester = static_cast<std::uint8_t>(
          request.requester % config_.interconnect.requesters),
      .is_write = request.is_write,
      .outstanding = 1};  // issue guard against same-time completion
  record_queue_.push_back(slot);

  volume_.split(request.lpn, request.pages, extent_scratch_);
  for (const VolumeMapper::Extent& extent : extent_scratch_) {
    if (request.is_write) {
      for (std::uint32_t r = 0; r < volume_.replicas(); ++r) {
        submit_command(slot, volume_.drive_of(extent.group, r), extent,
                       now);
      }
    } else {
      const std::uint32_t drive = pick_replica(extent.group, extent.dlpn);
      if (volume_.replicas() > 1) ++replica_reads_[drive];
      submit_command(slot, drive, extent, now);
    }
  }
  --requests_[slot].outstanding;  // release the issue guard
  drain_finalized();
}

SimTime ArraySimulator::deliver_command(const HostCommand& cmd,
                                        SimTime now) {
  return interconnect_.to_drive(cmd.requester, cmd.drive, cmd.submit_bytes,
                                now);
}

SimTime ArraySimulator::deliver_completion(const HostCommand& cmd,
                                           SimTime now) {
  return interconnect_.to_host(cmd.drive, cmd.requester, cmd.complete_bytes,
                               now);
}

Duration ArraySimulator::dispatch(const HostCommand& cmd, SimTime now) {
  const trace::Request req{.arrival = now,
                           .is_write = cmd.is_write,
                           .lpn = cmd.lpn,
                           .pages = cmd.pages,
                           .tenant = cmd.tenant,
                           .priority = cmd.priority,
                           .requester = cmd.requester};
  Duration service = drives_[cmd.drive]->service_external(req, now);
  if (!cmd.is_write && volume_.replicas() > 1 &&
      !drives_[cmd.drive]->integrity_failed_lpns().empty()) {
    repair_scratch_ = drives_[cmd.drive]->integrity_failed_lpns();
    service += recover_corrupt_pages(cmd, repair_scratch_, now);
  }
  if (!cmd.is_write &&
      config_.access_eval_scope == AccessEvalScope::kGlobal) {
    // Feed the replicated read's access statistics to the sibling copies:
    // every replica sees the array-wide pattern, not its 1/R sample.
    const std::uint32_t group = cmd.drive / volume_.replicas();
    for (std::uint32_t r = 0; r < volume_.replicas(); ++r) {
      const std::uint32_t sibling = volume_.drive_of(group, r);
      if (sibling == cmd.drive) continue;
      for (std::uint32_t i = 0; i < cmd.pages; ++i) {
        drives_[sibling]->observe_read_access(cmd.lpn + i, now);
        ++observe_feeds_;
      }
      if (telemetry_) observe_metric_->value += cmd.pages;
    }
  }
  return service;
}

Duration ArraySimulator::recover_corrupt_pages(
    const HostCommand& cmd, const std::vector<std::uint64_t>& lpns,
    SimTime now) {
  Duration extra = 0;
  const std::uint32_t group = cmd.drive / volume_.replicas();
  for (const std::uint64_t dlpn : lpns) {
    ++integrity_failovers_;
    if (telemetry_) ++failover_metric_->value;
    const Duration before = extra;
    bool repaired = false;
    // Siblings in drive order — deterministic, like every other fan-out.
    for (std::uint32_t r = 0; r < volume_.replicas() && !repaired; ++r) {
      const std::uint32_t sibling = volume_.drive_of(group, r);
      if (sibling == cmd.drive) continue;
      const trace::Request retry{
          .arrival = now,
          .is_write = false,
          .lpn = dlpn,
          .pages = 1,
          .tenant = cmd.tenant,
          .priority = cmd.priority,
          .requester = cmd.requester};
      extra += drives_[sibling]->service_external(retry, now);
      // A sibling whose own copy is persistently corrupt cannot donate;
      // try the next one (transient mismatches were cured in-drive).
      if (!drives_[sibling]->integrity_failed_lpns().empty()) continue;
      drives_[cmd.drive]->repair_page(dlpn, now);
      ++read_repairs_;
      repaired = true;
      if (telemetry_) {
        ++repair_metric_->value;
        if (telemetry::SpanRecorder* tracer = telemetry_->tracer()) {
          tracer->record({.name = "read_repair",
                          .cat = "array",
                          .pid = telemetry_->pid,
                          .tid = telemetry::kHostTrack,
                          .start = now,
                          .dur = extra - before,
                          .arg0_key = "lpn",
                          .arg0 = static_cast<double>(dlpn),
                          .arg1_key = "drive",
                          .arg1 = static_cast<double>(cmd.drive)});
        }
      }
    }
  }
  return extra;
}

void ArraySimulator::complete(const HostCommand& cmd,
                              const CommandTiming& timing) {
  ArrayRequest& req = requests_[cmd.request_slot];
  const Duration response = timing.done - req.arrival;
  if (response > req.response || req.response == 0) {
    req.response = response;
    req.slowest =
        HostBreakdown{.submit = timing.doorbell - timing.submitted,
                      .queue = timing.fetched - timing.doorbell,
                      .drive = timing.service_end - timing.fetched,
                      .completion = timing.done - timing.service_end};
  }
  FLEX_ASSERT(req.outstanding > 0);
  if (--req.outstanding == 0) drain_finalized();
}

void ArraySimulator::drain_finalized() {
  while (!record_queue_.empty() &&
         requests_[record_queue_.front()].outstanding == 0) {
    finalize(record_queue_.front());
    record_queue_.pop_front();
  }
}

void ArraySimulator::finalize(std::uint64_t slot) {
  const ArrayRequest req = requests_[slot];
  free_slots_.push_back(slot);
  const double seconds = to_seconds(req.response);
  results_.all_response.add(seconds);
  ssd::TenantStats& tstats = results_.tenant[req.tenant];
  if (req.is_write) {
    results_.write_response.add(seconds);
    tstats.write_response.add(seconds);
  } else {
    results_.read_response.add(seconds);
    results_.read_latency_hist.add(seconds);
    results_.read_breakdown.submit += req.slowest.submit;
    results_.read_breakdown.queue += req.slowest.queue;
    results_.read_breakdown.drive += req.slowest.drive;
    results_.read_breakdown.completion += req.slowest.completion;
    tstats.read_response.add(seconds);
    tstats.read_latency_hist.add(seconds);
  }
  if (telemetry_) {
    ++requests_metric_->value;
    if (req.is_write) {
      ++writes_metric_->value;
    } else {
      ++reads_metric_->value;
    }
    if (telemetry::SpanRecorder* tracer = telemetry_->tracer()) {
      tracer->record({.name = req.is_write ? "write" : "read",
                      .cat = "array",
                      .pid = telemetry_->pid,
                      .tid = telemetry::kHostTrack,
                      .start = req.arrival,
                      .dur = req.response,
                      .arg0_key = "lpn",
                      .arg0 = static_cast<double>(req.lpn),
                      .arg1_key = "tenant",
                      .arg1 = static_cast<double>(req.tenant)});
    }
  }
}

void ArraySimulator::run_segment(const std::vector<trace::Request>& requests) {
  for (const auto& request : requests) {
    kernel_.schedule(request.arrival, [this, &request](SimTime now) {
      submit_request(request, now);
    });
  }
  kernel_.run_all();
  collect_results();
}

void ArraySimulator::pump_open_loop() {
  if (open_loop_remaining_ == 0) return;
  const std::optional<trace::Request> request = open_loop_source_->next();
  if (!request.has_value()) return;
  --open_loop_remaining_;
  open_loop_next_ = *request;
  const SimTime when = std::max(request->arrival, kernel_.now());
  kernel_.schedule(when, [this](SimTime now) {
    const trace::Request current = open_loop_next_;
    pump_open_loop();
    submit_request(current, now);
  });
}

void ArraySimulator::run_open_loop(trace::RequestSource& source,
                                   std::uint64_t max_requests) {
  open_loop_source_ = &source;
  open_loop_remaining_ = max_requests == 0
                             ? std::numeric_limits<std::uint64_t>::max()
                             : max_requests;
  pump_open_loop();
  kernel_.run_all();
  collect_results();
  open_loop_source_ = nullptr;
}

void ArraySimulator::collect_results() {
  for (std::uint32_t d = 0; d < drives(); ++d) {
    drives_[d]->collect_results();
    results_.drive[d] = drives_[d]->results();
    results_.qp[d] = qps_[d]->stats();
    results_.drive_link[d] = interconnect_.drive_stats(d);
    results_.replica_reads[d] = replica_reads_[d];
  }
  for (std::uint32_t r = 0; r < config_.interconnect.requesters; ++r) {
    results_.requester_link[r] = interconnect_.requester_stats(r);
  }
  results_.switch_fabric = interconnect_.switch_stats();
  results_.observe_feeds = observe_feeds_;
  results_.integrity_failovers = integrity_failovers_;
  results_.read_repairs = read_repairs_;
  results_.window = kernel_.now() - window_start_;
}

void ArraySimulator::reset_measurements() {
  const std::vector<ssd::TenantStats> tenants(config_.tenants,
                                              ssd::TenantStats{});
  const std::vector<ssd::SsdResults> drive_results(drives());
  results_ = ArrayResults{};
  results_.tenant = tenants;
  results_.drive = drive_results;
  results_.qp.resize(drives());
  results_.requester_link.resize(config_.interconnect.requesters);
  results_.drive_link.resize(drives());
  results_.replica_reads.assign(drives(), 0);
  for (std::uint32_t d = 0; d < drives(); ++d) {
    drives_[d]->reset_measurements();
    qps_[d]->reset_stats();
  }
  interconnect_.reset_stats();
  std::fill(replica_reads_.begin(), replica_reads_.end(), 0);
  observe_feeds_ = 0;
  integrity_failovers_ = 0;
  read_repairs_ = 0;
  window_start_ = kernel_.now();
  if (telemetry_) {
    telemetry_->metrics.zero();
    telemetry_->spans.clear();
  }
}

}  // namespace flex::host
