#include "host/volume.h"

#include <algorithm>

#include "common/assert.h"

namespace flex::host {

VolumeMapper::VolumeMapper(const VolumeConfig& config) : config_(config) {
  FLEX_EXPECTS(config_.drives >= 1);
  FLEX_EXPECTS(config_.replication_factor >= 1 &&
               config_.replication_factor <= config_.drives);
  FLEX_EXPECTS(config_.drives % config_.replication_factor == 0);
  FLEX_EXPECTS(config_.stripe_pages >= 1);
  FLEX_EXPECTS(config_.drive_pages >= 1);
  groups_ = config_.drives / config_.replication_factor;
  logical_pages_ = config_.drive_pages * groups_;
}

VolumeMapper::Location VolumeMapper::locate(std::uint64_t host_lpn) const {
  FLEX_EXPECTS(host_lpn < logical_pages_);
  const std::uint64_t stripe = host_lpn / config_.stripe_pages;
  return {.group = static_cast<std::uint32_t>(stripe % groups_),
          .dlpn = (stripe / groups_) * config_.stripe_pages +
                  host_lpn % config_.stripe_pages};
}

std::uint64_t VolumeMapper::host_lpn(const Location& loc) const {
  const std::uint64_t row = loc.dlpn / config_.stripe_pages;
  return (row * groups_ + loc.group) * config_.stripe_pages +
         loc.dlpn % config_.stripe_pages;
}

void VolumeMapper::split(std::uint64_t lpn, std::uint32_t pages,
                         std::vector<Extent>& out) const {
  out.clear();
  std::uint64_t h = lpn % logical_pages_;
  std::uint32_t remaining = pages;
  while (remaining > 0) {
    const Location loc = locate(h);
    // A run ends at the stripe-unit boundary or the volume end, whichever
    // comes first; within it, host and drive addresses advance together.
    const std::uint64_t to_stripe_end =
        config_.stripe_pages - h % config_.stripe_pages;
    const std::uint64_t to_volume_end = logical_pages_ - h;
    const auto run = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        remaining, std::min(to_stripe_end, to_volume_end)));
    if (!out.empty() && out.back().group == loc.group &&
        out.back().dlpn + out.back().pages == loc.dlpn) {
      out.back().pages += run;
    } else {
      out.push_back({.group = loc.group, .dlpn = loc.dlpn, .pages = run});
    }
    remaining -= run;
    h = (h + run) % logical_pages_;
  }
}

std::uint64_t VolumeMapper::prefill_pages(std::uint32_t group,
                                          std::uint64_t host_pages) const {
  FLEX_EXPECTS(group < groups_);
  FLEX_EXPECTS(host_pages <= logical_pages_);
  const std::uint64_t row_pages = config_.stripe_pages * groups_;
  const std::uint64_t full_rows = host_pages / row_pages;
  const std::uint64_t tail = host_pages % row_pages;
  const std::uint64_t group_start = group * config_.stripe_pages;
  const std::uint64_t tail_in_group =
      tail <= group_start
          ? 0
          : std::min(tail - group_start, config_.stripe_pages);
  return full_rows * config_.stripe_pages + tail_in_group;
}

}  // namespace flex::host
