// Host interconnect: requesters -> switch -> per-drive links, each a
// store-and-forward occupancy resource with configurable propagation
// latency and bandwidth. Transfers reserve each hop in sequence at
// submission time (the same immediate-reservation style as the legacy
// ChipScheduler), so host-side transfer contention is modelled — two
// requesters hammering one drive serialise on its downlink — without any
// event machinery of its own.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace flex::host {

struct LinkSpec {
  /// Propagation + framing cost per message.
  Duration latency = 1 * kMicrosecond;
  /// Payload bandwidth; <= 0 models an infinitely fast link (latency
  /// only), which is what the 1-drive byte-identity configuration uses.
  double gb_per_s = 8.0;
};

struct InterconnectConfig {
  /// Host ports submitting into the switch (requests carry a requester
  /// index; tenants pin to ports via workload::TenantSpec::requester).
  std::uint32_t requesters = 1;
  LinkSpec requester_link;  ///< port -> switch, one per requester
  LinkSpec switch_fabric;   ///< the switch crossbar, shared
  LinkSpec drive_link;      ///< switch -> drive, one per drive
  /// NVMe-ish command/completion capsule size (submission of a read, the
  /// completion of a write): what moves when no page payload does.
  std::uint32_t command_bytes = 64;
};

struct LinkStats {
  Duration busy = 0;
  std::uint64_t transfers = 0;

  double utilization(Duration elapsed) const {
    return elapsed <= 0 ? 0.0
                        : static_cast<double>(busy) /
                              static_cast<double>(elapsed);
  }
};

class Interconnect {
 public:
  Interconnect(const InterconnectConfig& config, std::uint32_t drives);

  /// Store-and-forward delivery of `bytes` from requester `r` to drive
  /// `d`, starting no earlier than `now`; returns the arrival time at the
  /// drive. Each hop is reserved in sequence and held for the full
  /// message.
  SimTime to_drive(std::uint32_t requester, std::uint32_t drive,
                   std::uint64_t bytes, SimTime now);
  /// The reverse path (completion + read payload back to the host).
  SimTime to_host(std::uint32_t drive, std::uint32_t requester,
                  std::uint64_t bytes, SimTime now);

  const LinkStats& requester_stats(std::uint32_t r) const {
    return requester_[r].stats;
  }
  const LinkStats& drive_stats(std::uint32_t d) const {
    return drive_[d].stats;
  }
  const LinkStats& switch_stats() const { return switch_.stats; }
  void reset_stats();

 private:
  struct Port {
    SimTime free_at = 0;
    LinkStats stats;
  };

  SimTime hop(Port& port, const LinkSpec& spec, std::uint64_t bytes,
              SimTime now);

  InterconnectConfig config_;
  std::vector<Port> requester_;
  std::vector<Port> drive_;
  Port switch_;
};

}  // namespace flex::host
