// NVMe-like submission/completion queue pairs for one drive.
//
// Lifecycle of a command (all times on the shared deterministic kernel):
//   submit()            host claims an SQ slot (or backlogs when the SQ is
//                       full), then the submission capsule crosses the
//                       interconnect (Transport::deliver_command);
//   doorbell            the capsule lands in the drive's SQ; the
//                       controller's fetch unit serialises slot fetches at
//                       `doorbell_latency` apiece, arbitrating across
//                       queue pairs (round-robin or smooth weighted
//                       round-robin);
//   dispatch            at fetch completion the command enters the drive
//                       (Dispatcher::dispatch returns its service time);
//   completion          when service ends, a CQ entry posts (bounded
//                       cq_depth: a full CQ stalls the posting until the
//                       host frees a slot), crosses back
//                       (Transport::deliver_completion), and the host
//                       consumes it `completion_latency` later, serialised
//                       per queue pair — freeing the SQ slot and pulling
//                       the backlog.
//
// Zero-latency fast path: any stage whose event time equals the current
// simulated time runs inline instead of through the kernel, so a
// zero-cost host configuration services commands synchronously at
// arrival — exactly the single-drive simulator's timeline, which is what
// makes the 1-drive array byte-identical to the bare SsdSimulator.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/units.h"
#include "ssd/event_queue.h"

namespace flex::host {

enum class Arbitration {
  kRoundRobin,
  /// Smooth weighted round-robin over queue pairs (qp_weights).
  kWeighted,
};

struct QueuePairConfig {
  std::uint32_t queue_pairs = 1;
  std::uint32_t sq_depth = 64;
  std::uint32_t cq_depth = 64;
  /// Controller fetch cost per doorbell'd command (serialised).
  Duration doorbell_latency = 1 * kMicrosecond;
  /// Host CQE processing cost (serialised per queue pair).
  Duration completion_latency = 1 * kMicrosecond;
  Arbitration arbitration = Arbitration::kRoundRobin;
  /// kWeighted: one weight per queue pair (empty = all 1.0).
  std::vector<double> qp_weights;
};

/// One host command against one drive, as the queue pair carries it.
struct HostCommand {
  std::uint64_t request_slot = 0;  ///< array request this belongs to
  std::uint32_t drive = 0;
  std::uint64_t lpn = 0;           ///< drive-local LPN
  std::uint32_t pages = 1;
  bool is_write = false;
  std::uint16_t tenant = 0;
  std::uint8_t priority = 0;
  std::uint8_t requester = 0;
  std::uint32_t qp = 0;
  /// Interconnect payloads: the submission capsule (writes carry data
  /// down) and the completion capsule (reads carry data up).
  std::uint64_t submit_bytes = 0;
  std::uint64_t complete_bytes = 0;
};

/// Stage timestamps of a completed command; consecutive differences are
/// the host-layer latency decomposition (submitted -> doorbell: transfer;
/// doorbell -> fetched: SQ wait + fetch; fetched -> service_end: drive;
/// service_end -> done: completion path).
struct CommandTiming {
  SimTime submitted = 0;
  SimTime doorbell = 0;
  SimTime fetched = 0;
  SimTime service_end = 0;
  SimTime done = 0;
};

struct QueuePairStats {
  std::uint64_t submitted = 0;
  std::uint64_t fetched = 0;
  /// Commands that found the SQ full and waited in the host backlog.
  std::uint64_t backlogged = 0;
  /// Completions that found the CQ full and stalled.
  std::uint64_t cq_stalls = 0;
  std::uint64_t sq_high_water = 0;
  std::uint64_t backlog_high_water = 0;
};

class QueuePairSet {
 public:
  /// Interconnect hooks (implemented by the array over Interconnect).
  class Transport {
   public:
    virtual ~Transport() = default;
    /// Delivers the submission capsule; returns its arrival (doorbell)
    /// time at the drive.
    virtual SimTime deliver_command(const HostCommand& cmd, SimTime now) = 0;
    /// Delivers the completion capsule; returns its arrival at the host.
    virtual SimTime deliver_completion(const HostCommand& cmd,
                                       SimTime now) = 0;
  };

  /// Drive-side hooks.
  class Dispatcher {
   public:
    virtual ~Dispatcher() = default;
    /// Command enters the drive at `now`; returns its service duration.
    virtual Duration dispatch(const HostCommand& cmd, SimTime now) = 0;
    /// CQE consumed by the host: the command is finished end to end.
    virtual void complete(const HostCommand& cmd,
                          const CommandTiming& timing) = 0;
  };

  QueuePairSet(const QueuePairConfig& config, ssd::EventQueue& kernel,
               Transport& transport, Dispatcher& dispatcher);

  /// Submits `cmd` (cmd.qp must be < queue_pairs) at `now`.
  void submit(const HostCommand& cmd, SimTime now);

  /// Commands submitted but not yet consumed (SQ occupancy + backlog,
  /// summed over queue pairs) — the shortest-queue replica signal.
  std::uint64_t outstanding() const { return outstanding_; }

  const QueuePairStats& stats() const { return stats_; }
  void reset_stats() { stats_ = QueuePairStats{}; }

 private:
  struct Slot {
    HostCommand cmd;
    CommandTiming timing;
  };

  struct QueuePair {
    std::uint32_t sq_used = 0;
    std::uint32_t cq_used = 0;
    std::deque<std::uint32_t> backlog;  ///< host-side, SQ full
    std::deque<std::uint32_t> ready;    ///< doorbell'd, awaiting fetch
    std::deque<std::uint32_t> cq_wait;  ///< service done, CQ full
    SimTime host_free_at = 0;           ///< host CQE processing serialiser
  };

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  /// Runs `member(slot)` inline when `when == kernel.now()` (the
  /// zero-latency fast path), otherwise schedules it.
  template <void (QueuePairSet::*member)(std::uint32_t, SimTime)>
  void schedule_or_run(SimTime when, std::uint32_t slot);

  void begin_submission(std::uint32_t slot, SimTime now);
  void on_doorbell(std::uint32_t slot, SimTime now);
  void try_fetch(SimTime now);
  std::uint32_t arbitrate();
  void on_fetched(std::uint32_t slot, SimTime now);
  void on_service_done(std::uint32_t slot, SimTime now);
  void post_completion(std::uint32_t slot, SimTime now);
  void on_consumed(std::uint32_t slot, SimTime now);

  QueuePairConfig config_;
  ssd::EventQueue& kernel_;
  Transport& transport_;
  Dispatcher& dispatcher_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<QueuePair> qps_;
  bool fetch_busy_ = false;
  std::uint32_t fetching_slot_ = 0;
  std::uint32_t rr_next_ = 0;
  /// Smooth weighted round-robin credit per queue pair.
  std::vector<double> wrr_credit_;
  std::uint64_t outstanding_ = 0;
  QueuePairStats stats_;
};

}  // namespace flex::host
