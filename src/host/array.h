// Multi-SSD array simulator: N SsdSimulator drives composed under one
// shared deterministic event kernel, behind NVMe-like queue pairs, a
// requesters -> switch -> drive interconnect, and a striped/replicated
// volume.
//
// Request path: a host request splits into per-group extents
// (VolumeMapper); reads pick one replica per extent (round-robin,
// shortest-queue, or disturb-aware steering), writes fan out to every
// replica. Each resulting command runs the queue-pair lifecycle
// (queue_pair.h) and enters its drive through
// SsdSimulator::service_external on the shared kernel — the drive's chip
// occupancy, FTL mutations, GC, and per-drive stats land exactly as on a
// bare drive. A request completes when its slowest command's completion
// is consumed.
//
// Determinism contract: one kernel orders every event across drives by
// (time, sequence); all fan-out state (replica round-robin, queue-pair
// arbitration, per-drive RNG seeds derived from the template seed) is
// deterministic, so array runs are byte-identical across --jobs fan-out
// like every other bench in this repo. A 1-drive array with the zero-cost
// host profile (zero link/doorbell/completion latency, infinite
// bandwidth) is byte-identical to the bare SsdSimulator on the same
// trace: every queue-pair stage runs inline at arrival time.
//
// AccessEval scope: kPerDrive leaves each drive's FlexLevel hotness
// statistics to the reads it physically serves — replication *dilutes*
// the signal R-ways. kGlobal feeds each replicated read's access update
// to the sibling replicas too (SsdSimulator::observe_read_access), so all
// copies converge on the array-wide hotness view; the ablation in
// bench/array_scale measures what that buys.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"
#include "host/interconnect.h"
#include "host/queue_pair.h"
#include "host/volume.h"
#include "ssd/event_queue.h"
#include "ssd/simulator.h"
#include "telemetry/telemetry.h"
#include "trace/trace.h"

namespace flex::host {

/// Which replica serves a read in a replicated group.
enum class ReplicaPolicy {
  kRoundRobin,
  /// Fewest outstanding queue-pair commands (tie: lowest drive index).
  kShortestQueue,
  /// Lowest read count on the block backing the page — steers reads away
  /// from disturb-hot blocks, spreading read-disturb pressure across
  /// copies (tie: shortest queue, then lowest index).
  kDisturbAware,
};

/// Where FlexLevel's AccessEval learns from (see file header).
enum class AccessEvalScope { kPerDrive, kGlobal };

struct ArrayConfig {
  std::uint32_t drives = 1;
  /// Copies of every page; drives % replication_factor == 0. 1 = RAID-0,
  /// drives = N-way mirror, between = RAID-10.
  std::uint32_t replication_factor = 1;
  std::uint64_t stripe_pages = 64;
  ReplicaPolicy replica_policy = ReplicaPolicy::kRoundRobin;
  AccessEvalScope access_eval_scope = AccessEvalScope::kPerDrive;
  /// Tenant slots for array-level per-tenant stats (requests clamp).
  std::uint32_t tenants = 1;
  QueuePairConfig queue_pair;
  InterconnectConfig interconnect;
  /// Template drive configuration; drive d runs it with seed + d * phi
  /// (d = 0 keeps the template seed — part of the 1-drive identity).
  ssd::SsdConfig drive;
  /// Optional per-drive configurations (empty = replicate the template);
  /// must agree on geometry/capacity — heterogeneous aging (initial P/E,
  /// prefill ages) is fine, mismatched striping math is not.
  std::vector<ssd::SsdConfig> drive_overrides;

  Status Validate() const;
};

/// Host-side latency decomposition of a read request's slowest command
/// (integer ns; components sum to the response exactly): submission
/// transfer (incl. host backlog), SQ wait + fetch, drive service, and the
/// completion path back.
struct HostBreakdown {
  Duration submit = 0;
  Duration queue = 0;
  Duration drive = 0;
  Duration completion = 0;

  Duration total() const { return submit + queue + drive + completion; }
  bool operator==(const HostBreakdown&) const = default;
};

struct ArrayResults {
  RunningStats read_response;   ///< seconds, end-to-end at the host
  RunningStats write_response;  ///< seconds
  RunningStats all_response;    ///< seconds
  Histogram read_latency_hist = Histogram::log_spaced(1e-6, 1.0, 480);
  HostBreakdown read_breakdown;
  /// Per-tenant array-level response stats (p99 isolation).
  std::vector<ssd::TenantStats> tenant;
  /// Per-drive results snapshot (drive-local latencies, FTL deltas, chip
  /// stats, pool occupancy — everything SsdResults carries).
  std::vector<ssd::SsdResults> drive;
  /// Per-drive queue-pair counters.
  std::vector<QueuePairStats> qp;
  /// Link occupancy (utilization = busy / window).
  std::vector<LinkStats> requester_link;
  std::vector<LinkStats> drive_link;
  LinkStats switch_fabric;
  /// Reads steered to each drive by replica selection (replicated groups
  /// only; striped commands count on their only possible drive).
  std::vector<std::uint64_t> replica_reads;
  /// Sibling hotness notifications under AccessEvalScope::kGlobal (pages).
  std::uint64_t observe_feeds = 0;
  /// Persistent integrity failures a replicated read failed over to a
  /// sibling copy for (SsdConfig::integrity on; page granularity).
  std::uint64_t integrity_failovers = 0;
  /// ... of which a clean sibling copy was found and written back to the
  /// corrupt drive (read-repair). The gap to integrity_failovers counts
  /// pages where every replica was corrupt.
  std::uint64_t read_repairs = 0;
  /// Simulated time spanned by the measured window (throughput divisor).
  Duration window = 0;
  /// Host wall-clock seconds, stamped by the bench harness (never in
  /// stdout; see SsdResults::wall_seconds).
  double wall_seconds = 0;
};

class ArraySimulator : private QueuePairSet::Transport,
                       private QueuePairSet::Dispatcher {
 public:
  /// Validated construction (the only way to build one).
  ///
  ///   auto array = ArraySimulator::Builder(normal, reduced)
  ///                    .config(cfg)
  ///                    .telemetry(&telemetry)  // optional
  ///                    .Build();
  class Builder {
   public:
    Builder(const reliability::BerModel& normal,
            const reliability::BerModel& reduced)
        : normal_(normal), reduced_(reduced) {}

    Builder& config(ArrayConfig config) {
      config_ = std::move(config);
      return *this;
    }
    Builder& telemetry(telemetry::Telemetry* telemetry) {
      telemetry_ = telemetry;
      return *this;
    }

    StatusOr<std::unique_ptr<ArraySimulator>> Build() const;

   private:
    const reliability::BerModel& normal_;
    const reliability::BerModel& reduced_;
    ArrayConfig config_;
    telemetry::Telemetry* telemetry_ = nullptr;
  };

  /// Sequentially fills the first `host_pages` of the volume (every
  /// replica of each touched group page), aged per the drive config.
  void prefill(std::uint64_t host_pages);

  /// Runs a trace segment against the array; results accumulate.
  void run_segment(const std::vector<trace::Request>& requests);

  /// Open-loop run from a RequestSource (see SsdSimulator::run_open_loop).
  void run_open_loop(trace::RequestSource& source,
                     std::uint64_t max_requests = 0);

  const ArrayResults& results() const { return results_; }

  /// Clears accumulated measurements on the array and every drive and
  /// restarts the throughput window — warmup/measure separation.
  void reset_measurements();

  /// Array logical capacity in pages.
  std::uint64_t logical_pages() const { return volume_.logical_pages(); }
  const VolumeMapper& volume() const { return volume_; }
  std::uint32_t drives() const {
    return static_cast<std::uint32_t>(drives_.size());
  }
  const ssd::SsdSimulator& drive(std::uint32_t d) const {
    return *drives_[d];
  }

  /// Host-level metrics/spans; drive-level internals are not attached (N
  /// drives would collide on one registry's counter names).
  void attach_telemetry(telemetry::Telemetry* telemetry);

 private:
  struct ArrayRequest {
    SimTime arrival = 0;
    std::uint64_t lpn = 0;
    std::uint32_t pages = 1;
    std::uint16_t tenant = 0;
    std::uint8_t requester = 0;
    bool is_write = false;
    std::uint32_t outstanding = 0;  ///< commands in flight + issue guard
    Duration response = 0;          ///< slowest command, end to end
    HostBreakdown slowest;
  };

  ArraySimulator(const ArrayConfig& config,
                 const reliability::BerModel& normal,
                 const reliability::BerModel& reduced);

  // QueuePairSet::Transport
  SimTime deliver_command(const HostCommand& cmd, SimTime now) override;
  SimTime deliver_completion(const HostCommand& cmd, SimTime now) override;
  // QueuePairSet::Dispatcher
  Duration dispatch(const HostCommand& cmd, SimTime now) override;
  void complete(const HostCommand& cmd,
                const CommandTiming& timing) override;

  void submit_request(const trace::Request& request, SimTime now);
  std::uint32_t pick_replica(std::uint32_t group, std::uint64_t dlpn);
  void submit_command(std::uint64_t slot, std::uint32_t drive,
                      const VolumeMapper::Extent& extent, SimTime now);
  /// Records completed requests from the head of record_queue_ — stats
  /// accumulate in *arrival* order even though requests complete out of
  /// order, so array-level means are independent of completion
  /// interleavings (and bit-identical to the bare simulator's in the
  /// 1-drive zero-cost configuration).
  void drain_finalized();
  void finalize(std::uint64_t slot);
  void pump_open_loop();
  /// Replica failover + read-repair for the persistent integrity failures
  /// a read command just surfaced: re-reads each corrupt page from
  /// sibling replicas (host-visible — returned Duration adds to the
  /// command's service) and schedules a repair rewrite on the corrupt
  /// drive when a clean copy exists (background — not host-visible).
  Duration recover_corrupt_pages(const HostCommand& cmd,
                                 const std::vector<std::uint64_t>& lpns,
                                 SimTime now);
  void collect_results();

  ArrayConfig config_;
  ssd::EventQueue kernel_;
  /// Declared before volume_: the per-drive logical capacity the volume
  /// math needs comes from the first drive's FTL.
  std::vector<std::unique_ptr<ssd::SsdSimulator>> drives_;
  VolumeMapper volume_;
  std::vector<std::unique_ptr<QueuePairSet>> qps_;
  Interconnect interconnect_;
  std::uint64_t page_bytes_;
  /// Request slot pool + free list (steady state allocates nothing).
  std::vector<ArrayRequest> requests_;
  std::vector<std::uint64_t> free_slots_;
  /// In-flight slots in arrival order; the stat-recording reorder buffer.
  std::deque<std::uint64_t> record_queue_;
  /// Reused split() output buffer.
  std::vector<VolumeMapper::Extent> extent_scratch_;
  /// Per-group round-robin replica cursor.
  std::vector<std::uint32_t> replica_rr_;
  std::vector<std::uint64_t> replica_reads_;
  std::uint64_t observe_feeds_ = 0;
  std::uint64_t integrity_failovers_ = 0;
  std::uint64_t read_repairs_ = 0;
  /// Copied-out failed-lpn list (the drive's scratch is invalidated by
  /// the next service_external call).
  std::vector<std::uint64_t> repair_scratch_;
  SimTime window_start_ = 0;
  ArrayResults results_;
  /// Open-loop pump state (mirrors SsdSimulator's).
  trace::RequestSource* open_loop_source_ = nullptr;
  trace::Request open_loop_next_;
  std::uint64_t open_loop_remaining_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::MetricsRegistry::Counter* requests_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* reads_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* writes_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* commands_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* observe_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* failover_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* repair_metric_ = nullptr;
};

}  // namespace flex::host
