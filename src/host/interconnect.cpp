#include "host/interconnect.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace flex::host {
namespace {

Duration transfer_time(const LinkSpec& spec, std::uint64_t bytes) {
  if (!(spec.gb_per_s > 0.0)) return spec.latency;
  // ns per byte at `gb_per_s` GB/s (decimal GB): 1 / gb_per_s.
  return spec.latency +
         static_cast<Duration>(std::llround(
             static_cast<double>(bytes) / spec.gb_per_s));
}

}  // namespace

Interconnect::Interconnect(const InterconnectConfig& config,
                           std::uint32_t drives)
    : config_(config) {
  FLEX_EXPECTS(config_.requesters >= 1);
  requester_.assign(config_.requesters, Port{});
  drive_.assign(drives, Port{});
}

SimTime Interconnect::hop(Port& port, const LinkSpec& spec,
                          std::uint64_t bytes, SimTime now) {
  const SimTime start = std::max(now, port.free_at);
  const Duration dur = transfer_time(spec, bytes);
  port.free_at = start + dur;
  port.stats.busy += dur;
  ++port.stats.transfers;
  return start + dur;
}

SimTime Interconnect::to_drive(std::uint32_t requester, std::uint32_t drive,
                               std::uint64_t bytes, SimTime now) {
  FLEX_EXPECTS(requester < requester_.size() && drive < drive_.size());
  SimTime t = hop(requester_[requester], config_.requester_link, bytes, now);
  t = hop(switch_, config_.switch_fabric, bytes, t);
  return hop(drive_[drive], config_.drive_link, bytes, t);
}

SimTime Interconnect::to_host(std::uint32_t drive, std::uint32_t requester,
                              std::uint64_t bytes, SimTime now) {
  FLEX_EXPECTS(requester < requester_.size() && drive < drive_.size());
  SimTime t = hop(drive_[drive], config_.drive_link, bytes, now);
  t = hop(switch_, config_.switch_fabric, bytes, t);
  return hop(requester_[requester], config_.requester_link, bytes, t);
}

void Interconnect::reset_stats() {
  for (Port& p : requester_) p.stats = LinkStats{};
  for (Port& p : drive_) p.stats = LinkStats{};
  switch_.stats = LinkStats{};
}

}  // namespace flex::host
