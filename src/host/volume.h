// Volume layer: host LPN -> (replica group, drive-LPN) address math for a
// striped + replicated array (RAID-0 / RAID-1 / RAID-10).
//
// The N drives are partitioned into G = N / R replica groups of R drives
// each; every group's members hold identical data. Host addresses stripe
// across groups in `stripe_pages` units:
//
//   group(h) = (h / S) % G
//   dlpn(h)  = (h / (S * G)) * S + h % S      (stripe row * S + offset)
//
// which is a bijection between [0, G * drive_pages) and
// {(g, dlpn)}: R = 1 is pure RAID-0, R = N is an N-way mirror, anything
// between is RAID-10. For a fixed group, ascending host addresses map to
// ascending *contiguous* drive-LPNs starting at 0 — so a sequential host
// prefill is a sequential per-drive prefill (prefill_pages()).
#pragma once

#include <cstdint>
#include <vector>

namespace flex::host {

struct VolumeConfig {
  std::uint32_t drives = 1;
  /// Copies of each page (drives % replication_factor must be 0).
  std::uint32_t replication_factor = 1;
  /// Stripe unit in pages.
  std::uint64_t stripe_pages = 64;
  /// Per-drive logical capacity (ftl::PageMappingFtl::logical_pages()).
  std::uint64_t drive_pages = 0;
};

class VolumeMapper {
 public:
  /// The caller (ArrayConfig::Validate) has checked divisibility/ranges.
  explicit VolumeMapper(const VolumeConfig& config);

  struct Location {
    std::uint32_t group = 0;
    std::uint64_t dlpn = 0;

    bool operator==(const Location&) const = default;
  };

  /// One contiguous per-group run of a (possibly wrapping) host request.
  struct Extent {
    std::uint32_t group = 0;
    std::uint64_t dlpn = 0;
    std::uint32_t pages = 0;
  };

  std::uint32_t groups() const { return groups_; }
  std::uint32_t replicas() const { return config_.replication_factor; }
  /// Array logical capacity: G * per-drive capacity.
  std::uint64_t logical_pages() const { return logical_pages_; }

  Location locate(std::uint64_t host_lpn) const;
  /// Inverse of locate(): locate(host_lpn(loc)) == loc.
  std::uint64_t host_lpn(const Location& loc) const;

  /// Drive index of `replica` (in [0, R)) of `group`.
  std::uint32_t drive_of(std::uint32_t group, std::uint32_t replica) const {
    return group * config_.replication_factor + replica;
  }

  /// Splits [lpn, lpn + pages) — wrapping modulo logical_pages(), the same
  /// folding the single-drive simulator applies — into per-group extents,
  /// merging runs that stay contiguous on one group (a 1-group volume
  /// always yields a single extent per wrap segment). Appends to `out`
  /// (cleared first).
  void split(std::uint64_t lpn, std::uint32_t pages,
             std::vector<Extent>& out) const;

  /// Number of drive-LPNs a sequential host prefill of [0, host_pages)
  /// touches on `group` — they are exactly [0, prefill_pages), so
  /// SsdSimulator::prefill(prefill_pages) reproduces the volume fill.
  std::uint64_t prefill_pages(std::uint32_t group,
                              std::uint64_t host_pages) const;

 private:
  VolumeConfig config_;
  std::uint32_t groups_;
  std::uint64_t logical_pages_;
};

}  // namespace flex::host
