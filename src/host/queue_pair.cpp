#include "host/queue_pair.h"

#include <algorithm>
#include <limits>

#include "common/assert.h"

namespace flex::host {
namespace {

constexpr std::uint32_t kNoQp = std::numeric_limits<std::uint32_t>::max();

}  // namespace

QueuePairSet::QueuePairSet(const QueuePairConfig& config,
                           ssd::EventQueue& kernel, Transport& transport,
                           Dispatcher& dispatcher)
    : config_(config),
      kernel_(kernel),
      transport_(transport),
      dispatcher_(dispatcher) {
  FLEX_EXPECTS(config_.queue_pairs >= 1);
  FLEX_EXPECTS(config_.sq_depth >= 1 && config_.cq_depth >= 1);
  FLEX_EXPECTS(config_.qp_weights.empty() ||
               config_.qp_weights.size() == config_.queue_pairs);
  qps_.assign(config_.queue_pairs, QueuePair{});
  wrr_credit_.assign(config_.queue_pairs, 0.0);
}

std::uint32_t QueuePairSet::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  return slot;
}

void QueuePairSet::free_slot(std::uint32_t slot) {
  free_slots_.push_back(slot);
}

template <void (QueuePairSet::*member)(std::uint32_t, SimTime)>
void QueuePairSet::schedule_or_run(SimTime when, std::uint32_t slot) {
  FLEX_ASSERT(when >= kernel_.now());
  if (when == kernel_.now()) {
    // Zero-latency fast path: run inline so a zero-cost host layer keeps
    // the bare simulator's synchronous-at-arrival service order.
    (this->*member)(slot, when);
    return;
  }
  kernel_.schedule(when, [this, slot](SimTime now) {
    (this->*member)(slot, now);
  });
}

void QueuePairSet::submit(const HostCommand& cmd, SimTime now) {
  FLEX_EXPECTS(cmd.qp < config_.queue_pairs);
  const std::uint32_t slot = alloc_slot();
  slots_[slot].cmd = cmd;
  slots_[slot].timing = CommandTiming{.submitted = now};
  ++stats_.submitted;
  ++outstanding_;
  QueuePair& qp = qps_[cmd.qp];
  if (qp.sq_used >= config_.sq_depth) {
    qp.backlog.push_back(slot);
    ++stats_.backlogged;
    stats_.backlog_high_water =
        std::max<std::uint64_t>(stats_.backlog_high_water, qp.backlog.size());
    return;
  }
  begin_submission(slot, now);
}

void QueuePairSet::begin_submission(std::uint32_t slot, SimTime now) {
  QueuePair& qp = qps_[slots_[slot].cmd.qp];
  ++qp.sq_used;
  stats_.sq_high_water =
      std::max<std::uint64_t>(stats_.sq_high_water, qp.sq_used);
  const SimTime doorbell =
      transport_.deliver_command(slots_[slot].cmd, now);
  schedule_or_run<&QueuePairSet::on_doorbell>(doorbell, slot);
}

void QueuePairSet::on_doorbell(std::uint32_t slot, SimTime now) {
  slots_[slot].timing.doorbell = now;
  qps_[slots_[slot].cmd.qp].ready.push_back(slot);
  try_fetch(now);
}

std::uint32_t QueuePairSet::arbitrate() {
  const std::uint32_t n = config_.queue_pairs;
  if (config_.arbitration == Arbitration::kRoundRobin) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t qp = (rr_next_ + i) % n;
      if (!qps_[qp].ready.empty()) {
        rr_next_ = (qp + 1) % n;
        return qp;
      }
    }
    return kNoQp;
  }
  // Smooth weighted round-robin: every active (non-empty) queue pair earns
  // its weight in credit; the richest serves and pays back the round's
  // total — over time each active pair serves in weight proportion.
  double total = 0.0;
  std::uint32_t best = kNoQp;
  for (std::uint32_t qp = 0; qp < n; ++qp) {
    if (qps_[qp].ready.empty()) continue;
    const double w =
        config_.qp_weights.empty() ? 1.0 : config_.qp_weights[qp];
    wrr_credit_[qp] += w;
    total += w;
    if (best == kNoQp || wrr_credit_[qp] > wrr_credit_[best]) best = qp;
  }
  if (best != kNoQp) wrr_credit_[best] -= total;
  return best;
}

void QueuePairSet::try_fetch(SimTime now) {
  if (fetch_busy_) return;
  const std::uint32_t qp = arbitrate();
  if (qp == kNoQp) return;
  fetch_busy_ = true;
  fetching_slot_ = qps_[qp].ready.front();
  qps_[qp].ready.pop_front();
  schedule_or_run<&QueuePairSet::on_fetched>(now + config_.doorbell_latency,
                                             fetching_slot_);
}

void QueuePairSet::on_fetched(std::uint32_t slot, SimTime now) {
  fetch_busy_ = false;
  ++stats_.fetched;
  slots_[slot].timing.fetched = now;
  const Duration service = dispatcher_.dispatch(slots_[slot].cmd, now);
  FLEX_ASSERT(service >= 0);
  slots_[slot].timing.service_end = now + service;
  schedule_or_run<&QueuePairSet::on_service_done>(now + service, slot);
  try_fetch(now);
}

void QueuePairSet::on_service_done(std::uint32_t slot, SimTime now) {
  QueuePair& qp = qps_[slots_[slot].cmd.qp];
  if (qp.cq_used >= config_.cq_depth) {
    qp.cq_wait.push_back(slot);
    ++stats_.cq_stalls;
    return;
  }
  ++qp.cq_used;
  post_completion(slot, now);
}

void QueuePairSet::post_completion(std::uint32_t slot, SimTime now) {
  QueuePair& qp = qps_[slots_[slot].cmd.qp];
  const SimTime host_arrival =
      transport_.deliver_completion(slots_[slot].cmd, now);
  const SimTime processed =
      std::max(host_arrival, qp.host_free_at) + config_.completion_latency;
  qp.host_free_at = processed;
  schedule_or_run<&QueuePairSet::on_consumed>(processed, slot);
}

void QueuePairSet::on_consumed(std::uint32_t slot, SimTime now) {
  slots_[slot].timing.done = now;
  const HostCommand cmd = slots_[slot].cmd;
  const CommandTiming timing = slots_[slot].timing;
  QueuePair& qp = qps_[cmd.qp];
  FLEX_ASSERT(qp.cq_used > 0 && qp.sq_used > 0 && outstanding_ > 0);
  --qp.cq_used;
  --qp.sq_used;
  --outstanding_;
  free_slot(slot);
  dispatcher_.complete(cmd, timing);
  // The freed CQ slot admits a stalled completion, the freed SQ slot pulls
  // the host backlog — in that order, deterministically.
  if (!qp.cq_wait.empty()) {
    const std::uint32_t waiting = qp.cq_wait.front();
    qp.cq_wait.pop_front();
    ++qp.cq_used;
    post_completion(waiting, now);
  }
  if (!qp.backlog.empty() && qp.sq_used < config_.sq_depth) {
    const std::uint32_t next = qp.backlog.front();
    qp.backlog.pop_front();
    begin_submission(next, now);
  }
}

}  // namespace flex::host
