// Endurance / lifetime model for Fig. 7(c).
//
// FlexLevel's extra erases only occur once the raw BER is high enough to
// trigger soft sensing — Table 5 puts that past ~4000 P/E cycles on an
// 8000-cycle-rated MLC part. Lifetime is therefore a two-phase integral:
// the first `activation_fraction` of the erase budget is consumed at the
// unmodified rate, the remainder at `erase_increase` times that rate.
#pragma once

namespace flex::ssd {

struct LifetimeParams {
  /// Fraction of the endurance budget consumed before FlexLevel activates
  /// (paper: 4000 of 8000 rated cycles).
  double activation_fraction = 0.5;
};

/// Relative drive lifetime versus the reference system, given the measured
/// erase-count ratio (>= 1) while the scheme is active. 1.0 = no loss.
double lifetime_factor(double erase_increase,
                       LifetimeParams params = LifetimeParams{});

}  // namespace flex::ssd
