#include "ssd/simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <utility>

#include "common/assert.h"

namespace flex::ssd {
namespace {

/// Constructor-path enforcement of SsdConfig::Validate(): the legacy
/// constructor cannot return a Status, so a violation aborts — with the
/// offending field named on stderr, not a bare assert three layers down.
/// Builder::Build() validates first and returns the Status instead.
SsdConfig validated(SsdConfig config) {
  const Status status = config.Validate();
  if (!status.ok()) {
    std::fprintf(stderr, "invalid SsdConfig: %s\n",
                 status.to_string().c_str());
    std::abort();
  }
  return config;
}

/// The FTL's integrity knobs live on SsdConfig (with the run seed); this
/// folds them into the FtlConfig the ftl_ member is built from.
ftl::FtlConfig with_integrity(ftl::FtlConfig ftl, const SsdConfig& config) {
  ftl.integrity = config.integrity.enabled;
  ftl.integrity_seed = config.seed;
  ftl.integrity_payload_words = config.integrity.payload_words;
  return ftl;
}

}  // namespace

std::string scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBaseline:
      return "baseline";
    case Scheme::kLdpcInSsd:
      return "LDPC-in-SSD";
    case Scheme::kLevelAdjustOnly:
      return "LevelAdjust-only";
    case Scheme::kFlexLevel:
      return "LevelAdjust+AccessEval";
  }
  FLEX_ASSERT(false && "unreachable");
  return {};
}

Status SsdConfig::Validate() const {
  if (!(ftl.over_provisioning > 0.0 && ftl.over_provisioning < 1.0)) {
    return Status::OutOfRange("ftl.over_provisioning must be in (0, 1)");
  }
  if (!(ftl.reduced_capacity_factor > 0.0 &&
        ftl.reduced_capacity_factor <= 1.0)) {
    return Status::OutOfRange(
        "ftl.reduced_capacity_factor must be in (0, 1]");
  }
  if (ftl.gc_low_watermark < 2) {
    return Status::OutOfRange("ftl.gc_low_watermark must be >= 2");
  }
  const std::uint64_t total_blocks =
      static_cast<std::uint64_t>(ftl.spec.chips) * ftl.spec.blocks_per_chip;
  if (total_blocks <= static_cast<std::uint64_t>(ftl.gc_low_watermark) * 4) {
    return Status::FailedPrecondition(
        "drive too small: chips * blocks_per_chip must exceed "
        "4 * ftl.gc_low_watermark");
  }
  if (write_buffer_pages < 1) {
    return Status::OutOfRange("write_buffer_pages must be >= 1");
  }
  if (write_buffer_flush_batch < 1 ||
      write_buffer_flush_batch > write_buffer_pages) {
    return Status::OutOfRange(
        "write_buffer_flush_batch must be in [1, write_buffer_pages]");
  }
  if (!(min_prefill_age > 0.0)) {
    return Status::OutOfRange("min_prefill_age must be > 0");
  }
  if (!(max_prefill_age >= min_prefill_age)) {
    return Status::InvalidArgument(
        "max_prefill_age must be >= min_prefill_age");
  }
  if (prefill_extent_pages < 1) {
    return Status::OutOfRange("prefill_extent_pages must be >= 1");
  }
  if (!(precondition_passes >= 0.0)) {
    return Status::OutOfRange("precondition_passes must be >= 0");
  }
  if (!(baseline_retention_spec > 0.0)) {
    return Status::OutOfRange("baseline_retention_spec must be > 0");
  }
  if (scheme == Scheme::kFlexLevel) {
    if (access_eval.pool_capacity_pages < 1) {
      return Status::OutOfRange(
          "access_eval.pool_capacity_pages must be >= 1");
    }
    if (access_eval.pool_capacity_pages > ftl.spec.total_pages()) {
      return Status::InvalidArgument(
          "access_eval.pool_capacity_pages exceeds the drive's physical "
          "pages");
    }
    if (access_eval.freq_levels < 1 || access_eval.sensing_buckets < 1) {
      return Status::OutOfRange(
          "access_eval.freq_levels and sensing_buckets must be >= 1");
    }
  }
  if (read_disturb.refresh_threshold > 0 && !read_disturb.enabled) {
    return Status::InvalidArgument(
        "read_disturb.refresh_threshold is set but read_disturb.enabled is "
        "false: refresh would scrub blocks that never pay a disturb "
        "penalty");
  }
  const struct {
    const char* name;
    double value;
  } rates[] = {
      {"faults.program_fail_rate", faults.program_fail_rate},
      {"faults.erase_fail_rate", faults.erase_fail_rate},
      {"faults.grown_defect_rate", faults.grown_defect_rate},
      {"faults.read_retry_rescue", faults.read_retry_rescue},
      {"faults.crash_rate", faults.crash_rate},
      {"faults.silent_corruption_rate", faults.silent_corruption_rate},
      {"faults.misdirected_write_rate", faults.misdirected_write_rate},
      {"faults.torn_relocation_rate", faults.torn_relocation_rate},
  };
  for (const auto& rate : rates) {
    if (!(rate.value >= 0.0 && rate.value <= 1.0)) {
      return Status::OutOfRange(std::string(rate.name) +
                                " must be in [0, 1]");
    }
  }
  if (integrity.enabled && integrity.payload_words < 1) {
    return Status::OutOfRange("integrity.payload_words must be >= 1");
  }
  if (!integrity.enabled && faults.enabled &&
      (faults.silent_corruption_rate > 0.0 ||
       faults.misdirected_write_rate > 0.0 ||
       faults.torn_relocation_rate > 0.0)) {
    return Status::InvalidArgument(
        "silent-data corruption rates are armed but integrity.enabled is "
        "false: without payload seals the corruptions are undetectable by "
        "construction — enable integrity or clear the rates");
  }
  if (faults.crash_enabled && !faults.enabled) {
    return Status::InvalidArgument(
        "faults.crash_enabled is set but faults.enabled is false: the "
        "injector that adjudicates crash points is only constructed when "
        "fault injection is on");
  }
  if (faults.crash_enabled &&
      durability.policy == DurabilityPolicy::kWriteBack) {
    return Status::InvalidArgument(
        "faults.crash_enabled with DurabilityPolicy::kWriteBack: the write "
        "buffer acknowledges writes that a crash then silently loses — "
        "pick kFua or kFlushBarrier so acknowledged means recoverable");
  }
  if (durability.policy == DurabilityPolicy::kFlushBarrier &&
      durability.flush_barrier_interval < 1) {
    return Status::OutOfRange(
        "durability.flush_barrier_interval must be >= 1");
  }
  if (qos.enabled) {
    if (qos.tenants < 1) {
      return Status::OutOfRange("qos.tenants must be >= 1");
    }
    if (!qos.tenant_weights.empty() &&
        qos.tenant_weights.size() != qos.tenants) {
      return Status::InvalidArgument(
          "qos.tenant_weights must be empty or have exactly qos.tenants "
          "entries");
    }
    for (const double w : qos.tenant_weights) {
      if (!(w > 0.0)) {
        return Status::OutOfRange("qos.tenant_weights must all be > 0");
      }
    }
    if (qos.read_deadline <= 0 || qos.write_deadline <= 0 ||
        qos.background_deadline <= 0) {
      return Status::OutOfRange("qos deadline budgets must be > 0");
    }
    if (qos.fair_share_slack < 0) {
      return Status::OutOfRange("qos.fair_share_slack must be >= 0");
    }
    if (qos.write_admission_dirty_watermark > write_buffer_pages) {
      return Status::InvalidArgument(
          "qos.write_admission_dirty_watermark exceeds write_buffer_pages: "
          "the watermark could never trip");
    }
    if (faults.crash_enabled) {
      return Status::InvalidArgument(
          "qos.enabled with faults.crash_enabled is unsupported: queued "
          "QoS command state is not modelled by the crash-recovery "
          "machinery");
    }
  } else if (qos.tenants != 1 || !qos.tenant_weights.empty() ||
             qos.admission_max_outstanding != 0 ||
             qos.write_admission_dirty_watermark != 0 ||
             qos.gc_throttle_queue_depth != 0 || qos.slo_read_admission) {
    return Status::InvalidArgument(
        "qos knobs are set but qos.enabled is false: the legacy path "
        "ignores them silently — enable QoS mode or clear the knobs");
  }
  const bool channel_armed =
      channel.adaptive_thresholds ||
      channel.quantizer != reliability::ChannelQuantizer::kUniform ||
      channel.decode_latency != reliability::DecodeLatencyMode::kTable;
  if (!channel.enabled && channel_armed) {
    return Status::InvalidArgument(
        "channel knobs are armed (adaptive_thresholds / quantizer / "
        "decode_latency) but channel.enabled is false: the static path "
        "ignores them silently — enable the channel or clear the knobs");
  }
  if (channel.enabled && !channel_armed) {
    return Status::InvalidArgument(
        "channel.enabled with every feature off would change nothing: arm "
        "adaptive_thresholds, an MI quantizer, or measured decode latency "
        "— or disable the channel");
  }
  if (channel.enabled) {
    if (!(channel.tracking_gain > 0.0 && channel.tracking_gain <= 1.0)) {
      return Status::OutOfRange("channel.tracking_gain must be in (0, 1]");
    }
    if (channel.calibrate_interval < 1) {
      return Status::OutOfRange("channel.calibrate_interval must be >= 1");
    }
    if (channel.calibration_trials < 1) {
      return Status::OutOfRange("channel.calibration_trials must be >= 1");
    }
  }
  return Status::Ok();
}

SsdSimulator::SsdSimulator(SsdConfig config,
                           const reliability::BerModel& normal,
                           const reliability::BerModel& reduced)
    : SsdSimulator(std::move(config), normal, reduced, nullptr) {}

SsdSimulator::SsdSimulator(SsdConfig config,
                           const reliability::BerModel& normal,
                           const reliability::BerModel& reduced,
                           EventQueue* kernel)
    : config_(validated(std::move(config))),
      normal_model_(normal),
      reduced_model_(reduced),
      channel_({.config = config_.channel,
                .disturb_enabled = config_.read_disturb.enabled,
                .disturb = config_.read_disturb.model,
                .pages_per_block = config_.ftl.spec.pages_per_block,
                .physical_blocks =
                    static_cast<std::uint64_t>(config_.ftl.spec.chips) *
                    config_.ftl.spec.blocks_per_chip},
               normal_model_, reduced_model_),
      ftl_(with_integrity(config_.ftl, config_)),
      buffer_(config_.write_buffer_pages, config_.write_buffer_flush_batch),
      events_(kernel != nullptr ? *kernel : own_events_),
      external_kernel_(kernel != nullptr),
      scheduler_(config_.ftl.spec.chips, events_),
      injector_(config_.faults.enabled
                    ? std::make_unique<faults::FaultInjector>(config_.faults,
                                                              config_.seed)
                    : nullptr),
      policy_(make_read_policy(config_, config_.latency, channel_.ladder(),
                               normal_model_,
                               ftl_.physical_blocks() *
                                   config_.ftl.spec.pages_per_block,
                               ftl_, injector_.get())),
      rng_(config_.seed) {
  ftl_.attach_fault_injector(injector_.get());
  durable_version_.assign(ftl_.logical_pages(), 0);
  integrity_mode_ = config_.integrity.enabled;
  if (config_.channel.enabled &&
      config_.channel.decode_latency ==
          reliability::DecodeLatencyMode::kMeasured) {
    config_.latency.measured_decode = channel_.measured_decode_times(
        config_.latency.decode_per_iteration, config_.latency.decode_overhead);
  }
  qos_mode_ = config_.qos.enabled;
  tenant_count_ = qos_mode_ ? config_.qos.tenants : 1;
  if (qos_mode_) {
    scheduler_.enable_qos(
        {.policy = config_.qos.policy,
         .read_deadline = config_.qos.read_deadline,
         .write_deadline = config_.qos.write_deadline,
         .background_deadline = config_.qos.background_deadline,
         .tenant_weights = config_.qos.tenant_weights,
         .fair_share_slack = config_.qos.fair_share_slack,
         .gc_throttle_queue_depth = config_.qos.gc_throttle_queue_depth},
        this);
    qos_outstanding_.assign(tenant_count_, 0);
    if (config_.qos.slo_read_admission) {
      // Conservative worst-case page service: the full progressive ladder
      // walk to the deepest step (an upper bound on every scheme's read
      // cost), plus the deepest-sensing recovery re-read when fault
      // injection can trigger one.
      const int deepest = channel_.ladder().steps().back().extra_levels;
      slo_service_estimate_ = config_.latency.read_latency(
          {.required_levels = deepest}, channel_.ladder());
      if (injector_ != nullptr) {
        slo_service_estimate_ += config_.latency.read_fixed(deepest);
      }
      slo_extra_.assign(config_.ftl.spec.chips, 0);
    }
  }
  clear_results();
}

void SsdSimulator::clear_results() {
  results_ = SsdResults{};
  results_.sensing_level_reads.assign(
      static_cast<std::size_t>(channel_.ladder().steps().back().extra_levels) +
          1,
      0);
  results_.tenant.assign(tenant_count_, TenantStats{});
}

void SsdSimulator::reset_measurements() {
  clear_results();
  prefill_stats_ = ftl_.stats();
  scheduler_.reset_stats();
  policy_->reset_stats();
  // Slots still in flight across the reset stay counted in the new
  // window's high-water mark.
  qos_slots_high_water_ = qos_requests_.size() - qos_free_slots_.size();
  if (telemetry_) {
    telemetry_->metrics.zero();
    telemetry_->spans.clear();
  }
}

void SsdSimulator::attach_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  events_.attach_telemetry(telemetry);
  scheduler_.attach_telemetry(telemetry);
  ftl_.attach_telemetry(telemetry);
  policy_->attach_telemetry(telemetry);
  if (!telemetry_) {
    requests_metric_ = nullptr;
    reads_metric_ = nullptr;
    writes_metric_ = nullptr;
    buffer_hits_metric_ = nullptr;
    unmapped_metric_ = nullptr;
    uncorrectable_metric_ = nullptr;
    acked_metric_ = nullptr;
    durable_metric_ = nullptr;
    crashes_metric_ = nullptr;
    integrity_verified_metric_ = nullptr;
    integrity_mismatch_metric_ = nullptr;
    tenant_reads_metrics_.clear();
    tenant_writes_metrics_.clear();
    tenant_rejected_metrics_.clear();
    read_latency_us_hist_ = nullptr;
    return;
  }
  telemetry::MetricsRegistry& registry = telemetry_->metrics;
  requests_metric_ = &registry.counter("ssd.requests");
  reads_metric_ = &registry.counter("ssd.reads");
  writes_metric_ = &registry.counter("ssd.writes");
  buffer_hits_metric_ = &registry.counter("ssd.buffer_hits");
  unmapped_metric_ = &registry.counter("ssd.unmapped_reads");
  uncorrectable_metric_ = &registry.counter("ssd.uncorrectable_reads");
  acked_metric_ = &registry.counter("ssd.writes_acked");
  durable_metric_ = &registry.counter("ssd.writes_durable");
  crashes_metric_ = &registry.counter("ssd.crashes");
  integrity_verified_metric_ =
      &registry.counter("ssd.integrity_verified_reads");
  integrity_mismatch_metric_ =
      &registry.counter("ssd.integrity_mismatch_reads");
  tenant_reads_metrics_.clear();
  tenant_writes_metrics_.clear();
  tenant_rejected_metrics_.clear();
  for (std::uint32_t i = 0; i < tenant_count_; ++i) {
    const std::string prefix = "tenant." + std::to_string(i) + ".";
    tenant_reads_metrics_.push_back(&registry.counter(prefix + "reads"));
    tenant_writes_metrics_.push_back(&registry.counter(prefix + "writes"));
    tenant_rejected_metrics_.push_back(
        &registry.counter(prefix + "rejected"));
  }
  read_latency_us_hist_ = &registry.histogram(
      "ssd.read_latency_us",
      telemetry::HistogramSpec{
          .lo = 1.0, .hi = 1e6, .bins = 240, .log_spaced = true});
}

void SsdSimulator::prefill(std::uint64_t pages) {
  FLEX_EXPECTS(pages <= ftl_.logical_pages());
  const ftl::PageMode mode = policy_->prefill_mode();
  const double log_min = std::log(config_.min_prefill_age);
  const double log_max = std::log(config_.max_prefill_age);
  FLEX_EXPECTS(config_.prefill_extent_pages >= 1);
  Hours age = config_.max_prefill_age;
  static_birth_.assign(pages, 0);
  for (std::uint64_t lpn = 0; lpn < pages; ++lpn) {
    if (lpn % config_.prefill_extent_pages == 0) {
      age = std::exp(rng_.uniform(log_min, log_max));
    }
    const auto birth = static_cast<SimTime>(-age * 3600.0 * 1e9);
    static_birth_[lpn] = birth;
    ftl_.write(lpn, mode, birth);
    // Prefilled data is on NAND by definition: durable as written.
    mark_durable(lpn);
  }
  // Preconditioning: historical random overwrites that scatter invalid
  // pages across blocks, so measurement starts from GC steady state
  // instead of the artificially clean freshly-filled layout.
  const auto overwrites = static_cast<std::uint64_t>(
      config_.precondition_passes * static_cast<double>(pages));
  for (std::uint64_t i = 0; i < overwrites; ++i) {
    const Hours overwrite_age = std::exp(rng_.uniform(log_min, log_max));
    const std::uint64_t lpn = rng_.below(pages);
    ftl_.write(lpn, mode,
               static_cast<SimTime>(-overwrite_age * 3600.0 * 1e9));
    mark_durable(lpn);
  }
  prefill_stats_ = ftl_.stats();
}

int SsdSimulator::required_levels_cached(bool reduced, std::uint32_t pe,
                                         Hours age, std::uint64_t ppn,
                                         std::uint64_t block_reads,
                                         bool* correctable) {
  const auto assessment =
      channel_.assess(reduced, pe, age, ppn, block_reads);
  if (correctable != nullptr) *correctable = assessment.correctable;
  return assessment.required_levels;
}

std::pair<bool, bool> SsdSimulator::verify_read_page(
    std::uint64_t lpn, const ftl::PageInfo& info) {
  if (!integrity_mode_) return {true, false};
  const ftl::SealVerdict verdict =
      ftl_.verify_page(lpn, info.ppn, info.block_reads);
  ++results_.integrity_verified_reads;
  if (telemetry_) ++integrity_verified_metric_->value;
  if (verdict.delivered_bad && !verdict.flagged) {
    // The only way here is a genuine CRC64 collision between two distinct
    // payload generations — the event the integrity bench asserts never
    // happens.
    ++results_.integrity_undetected_reads;
  }
  if (!verdict.flagged) return {true, false};
  ++results_.integrity_mismatch_reads;
  if (telemetry_) ++integrity_mismatch_metric_->value;
  if (verdict.persistent && external_kernel_) {
    // Hand the unservable lpn to the array layer for replica failover.
    integrity_failed_lpns_.push_back(lpn);
  }
  return {false, verdict.persistent};
}

SsdSimulator::PageService SsdSimulator::service_read_page(std::uint64_t lpn,
                                                          SimTime now) {
  if (buffer_.contains(lpn)) {
    ++results_.buffer_hits;
    if (telemetry_) ++buffer_hits_metric_->value;
    return {.response = config_.latency.buffer_latency,
            .buffer = config_.latency.buffer_latency};
  }
  const auto info = ftl_.lookup(lpn);
  if (!info.has_value()) {
    // Read of never-written data: served from the mapping table alone.
    ++results_.unmapped_reads;
    if (telemetry_) ++unmapped_metric_->value;
    return {.response = config_.latency.buffer_latency,
            .buffer = config_.latency.buffer_latency};
  }

  const SimTime birth =
      config_.age_model == AgeModel::kStaticPerLba &&
              lpn < static_birth_.size()
          ? static_birth_[lpn]
          : info->write_time;
  const Hours age = static_cast<double>(now - birth) / (3600.0 * 1e9);
  const bool reduced = info->mode == ftl::PageMode::kReduced;
  bool correctable = true;
  const int required =
      required_levels_cached(reduced, info->pe_cycles, std::max(age, 0.0),
                             info->ppn, info->block_reads, &correctable);
  if (!correctable) {
    ++results_.uncorrectable_reads;
    if (telemetry_) ++uncorrectable_metric_->value;
  }
  ++results_.sensing_level_reads[static_cast<std::size_t>(required)];
  const auto [integrity_ok, integrity_persistent] =
      verify_read_page(lpn, *info);

  const ReadContext ctx{.lpn = lpn,
                        .ppn = info->ppn,
                        .required_levels = required,
                        .block_reads = info->block_reads,
                        .correctable = correctable,
                        .integrity_ok = integrity_ok,
                        .integrity_persistent = integrity_persistent,
                        .now = now};
  telemetry::SpanRecorder* tracer =
      telemetry_ ? telemetry_->tracer() : nullptr;
  attempts_scratch_.clear();
  if (tracer) {
    // Must run before read_cost: the hint policy updates its per-page
    // memory there, and trace_attempts reproduces the pre-update walk.
    policy_->trace_attempts(ctx, attempts_scratch_);
  }
  const std::vector<ReadAttempt>& attempts = attempts_scratch_;
  const ReadCost cost = policy_->read_cost(ctx);
  const SimTime completion =
      scheduler_.submit(scheduler_.chip_of(info->ppn), now,
                        ChipCommand{.channel = cost.channel,
                                    .die = cost.die,
                                    .controller = cost.controller},
                        "read");
  const SimTime start = completion - cost.total();
  if (tracer) {
    // Child spans partition [start, completion] attempt by attempt; they
    // are recorded after the scheduler's enclosing "read" span, so the
    // exporter's stable sort keeps parent-before-child nesting.
    const auto tid =
        static_cast<std::int32_t>(scheduler_.chip_of(info->ppn));
    SimTime cursor = start;
    for (std::size_t round = 0; round < attempts.size(); ++round) {
      const ReadAttempt& attempt = attempts[round];
      const auto levels = static_cast<double>(attempt.levels);
      for (const auto& [name, dur] :
           {std::pair{"sense", attempt.cost.die},
            std::pair{"xfer", attempt.cost.channel},
            std::pair{"decode", attempt.cost.controller}}) {
        if (dur <= 0) continue;
        tracer->record({.name = name,
                        .cat = "read",
                        .pid = telemetry_->pid,
                        .tid = tid,
                        .start = cursor,
                        .dur = dur,
                        .arg0_key = "levels",
                        .arg0 = levels,
                        .arg1_key = "round",
                        .arg1 = static_cast<double>(round)});
        cursor += dur;
      }
    }
  }
  // This read's own pass-voltage stress lands on the block before any
  // post-read maintenance (RefreshPolicy) inspects the counter.
  ftl_.record_read(info->ppn);
  policy_->on_read_complete(ctx);
  return {.response = completion - now,
          .wait = start - now,
          .sense = cost.die,
          .transfer = cost.channel,
          .decode = cost.controller};
}

void SsdSimulator::mark_durable(std::uint64_t lpn) {
  durable_version_[lpn] = ftl_.data_version(lpn);
}

void SsdSimulator::flush_victim(std::uint64_t lpn, SimTime now) {
  const ftl::WriteResult result =
      ftl_.write(lpn, policy_->write_mode(lpn), now);
  if (qos_mode_) {
    scheduler_.submit_background_qos(now, result, config_.latency);
  } else {
    scheduler_.submit_background(now, result, config_.latency);
  }
  mark_durable(lpn);
  ++results_.writes_durable;
  if (telemetry_) ++durable_metric_->value;
}

Duration SsdSimulator::service_write_page(std::uint64_t lpn, SimTime now) {
  ++results_.writes_acked;
  if (telemetry_) ++acked_metric_->value;
  if (config_.durability.policy == DurabilityPolicy::kFua) {
    // Force-unit-access: program before acknowledging, then keep the page
    // cached (clean) for reads. The ack carries the program latency — the
    // price of making "acknowledged" mean "durable" per write.
    const ftl::WriteResult result =
        ftl_.write(lpn, policy_->write_mode(lpn), now);
    scheduler_.submit_background(now, result, config_.latency);
    mark_durable(lpn);
    ++results_.writes_durable;
    if (telemetry_) ++durable_metric_->value;
    for (const std::uint64_t victim : buffer_.insert_clean(lpn)) {
      flush_victim(victim, now);
    }
    return config_.latency.buffer_latency + config_.latency.program();
  }
  const std::vector<std::uint64_t>& flush = buffer_.write(lpn);
  // Write-back semantics: the host write completes at buffer insertion;
  // evicted pages flush to NAND in the background, where their program and
  // GC time occupies the chips and delays subsequent reads — which is
  // exactly how the over-provisioning squeeze of reduced-state storage
  // surfaces in the paper's Fig. 6(a).
  for (const std::uint64_t victim : flush) {
    flush_victim(victim, now);
  }
  if (config_.durability.policy == DurabilityPolicy::kFlushBarrier &&
      ++acked_since_barrier_ >= config_.durability.flush_barrier_interval) {
    acked_since_barrier_ = 0;
    flush_barrier_at(now);
  }
  return config_.latency.buffer_latency;
}

void SsdSimulator::flush_barrier_at(SimTime now) {
  for (const std::uint64_t lpn : buffer_.flush_barrier()) {
    flush_victim(lpn, now);
  }
}

void SsdSimulator::flush_barrier() {
  FLEX_EXPECTS(!crashed_);
  flush_barrier_at(events_.now());
}

void SsdSimulator::power_loss() {
  FLEX_EXPECTS(!crashed_);
  crashed_ = true;
  crash_ordinal_ = events_.fired();
  const SimTime now = events_.now();
  // Order matters for the accounting: drop the pending events first (their
  // completions will never run), then capture what the DRAM loses.
  events_.drop_pending();
  results_.dirty_buffer_pages = buffer_.power_loss();
  scheduler_.power_loss(now);
  // In-flight QoS requests vanish with their queued commands.
  qos_requests_.clear();
  qos_free_slots_.clear();
  std::fill(qos_outstanding_.begin(), qos_outstanding_.end(), 0);
  ++results_.crashes;
  if (telemetry_) {
    ++crashes_metric_->value;
    if (telemetry::SpanRecorder* tracer = telemetry_->tracer()) {
      tracer->record({.name = "power_loss",
                      .cat = "sim",
                      .pid = telemetry_->pid,
                      .tid = telemetry::kHostTrack,
                      .start = now,
                      .dur = 0});
    }
  }
}

ftl::MountReport SsdSimulator::mount() {
  const SimTime now = events_.now();
  const ftl::MountReport report = ftl_.Mount(
      {.reseed_read_count = config_.read_disturb.refresh_threshold});
  // Replay the recovered ReducedCell membership (and pool budget) through
  // the read policy before any post-mount read consults it.
  policy_->on_mount(report, now);
  // Mount cost: one summary read per physical block plus one spare-area
  // read per programmed page. Charged to the mount ledger and a span, not
  // injected into the request timeline — mount happens at power-on,
  // before host traffic.
  const Duration duration =
      static_cast<Duration>(static_cast<std::uint64_t>(
                                ftl_.physical_blocks()) +
                            report.pages_scanned) *
      config_.latency.oob_scan_per_page;
  results_.mount_time += duration;
  if (telemetry_) {
    if (telemetry::SpanRecorder* tracer = telemetry_->tracer()) {
      tracer->record({.name = "mount",
                      .cat = "sim",
                      .pid = telemetry_->pid,
                      .tid = telemetry::kHostTrack,
                      .start = now,
                      .dur = duration});
    }
  }
  // Mount() reset the FTL's cumulative stats, so the delta baseline
  // restarts from zero too.
  prefill_stats_ = ftl::FtlStats{};
  crashed_ = false;
  acked_since_barrier_ = 0;
  return report;
}

void SsdSimulator::record_request_stats(bool is_write, std::uint16_t tenant,
                                        Duration response,
                                        const PageService& slowest,
                                        SimTime arrival, std::uint64_t lpn,
                                        std::uint32_t pages) {
  const double seconds = to_seconds(response);
  results_.all_response.add(seconds);
  if (is_write) {
    results_.write_response.add(seconds);
  } else {
    results_.read_response.add(seconds);
    results_.read_latency_hist.add(seconds);
    results_.read_breakdown.queue_wait += slowest.wait;
    results_.read_breakdown.sensing += slowest.sense;
    results_.read_breakdown.transfer += slowest.transfer;
    results_.read_breakdown.decode += slowest.decode;
    results_.read_breakdown.buffer += slowest.buffer;
    if (response > 0) {
      const auto total = static_cast<double>(response);
      results_.wait_share_hist.add(slowest.wait / total);
      results_.sensing_share_hist.add(slowest.sense / total);
      results_.transfer_share_hist.add(slowest.transfer / total);
      results_.decode_share_hist.add(slowest.decode / total);
    }
  }
  TenantStats& tstats = results_.tenant[tenant];
  if (is_write) {
    tstats.write_response.add(seconds);
  } else {
    tstats.read_response.add(seconds);
    tstats.read_latency_hist.add(seconds);
  }
  if (telemetry_) {
    ++requests_metric_->value;
    if (is_write) {
      ++writes_metric_->value;
      ++tenant_writes_metrics_[tenant]->value;
    } else {
      ++reads_metric_->value;
      ++tenant_reads_metrics_[tenant]->value;
      read_latency_us_hist_->add(seconds * 1e6);
    }
    if (telemetry::SpanRecorder* tracer = telemetry_->tracer()) {
      tracer->record({.name = is_write ? "write" : "read",
                      .cat = "request",
                      .pid = telemetry_->pid,
                      .tid = telemetry::kHostTrack,
                      .start = arrival,
                      .dur = response,
                      .arg0_key = "lpn",
                      .arg0 = static_cast<double>(lpn),
                      .arg1_key = "pages",
                      .arg1 = static_cast<double>(pages)});
    }
  }
}

Duration SsdSimulator::service_request(const trace::Request& request,
                                       SimTime now) {
  if (qos_mode_) {
    service_request_qos(request, now);
    return 0;
  }
  const std::uint64_t logical = ftl_.logical_pages();
  Duration response = 0;
  // Pages of one request are served concurrently on their chips; the
  // request completes with its slowest page. The first slowest page (ties
  // broken by page order) supplies the read's latency decomposition.
  PageService slowest;
  for (std::uint32_t i = 0; i < request.pages; ++i) {
    const std::uint64_t lpn = (request.lpn + i) % logical;
    if (request.is_write) {
      response = std::max(response, service_write_page(lpn, now));
    } else {
      const PageService page = service_read_page(lpn, now);
      if (page.response > slowest.response) slowest = page;
    }
  }
  if (!request.is_write) response = slowest.response;
  record_request_stats(request.is_write, tenant_of(request), response,
                       slowest, now, request.lpn, request.pages);
  return response;
}

Duration SsdSimulator::service_external(const trace::Request& request,
                                        SimTime now) {
  FLEX_EXPECTS(external_kernel_ && !qos_mode_ && !crashed_);
  integrity_failed_lpns_.clear();
  return service_request(request, now);
}

void SsdSimulator::repair_page(std::uint64_t lpn, SimTime now) {
  FLEX_EXPECTS(integrity_mode_);
  const ftl::WriteResult result = ftl_.repair(lpn, now);
  // The rewrite (and any GC it triggered) occupies the chips as
  // background work, exactly like a buffer flush.
  scheduler_.submit_background(now, result, config_.latency);
}

bool SsdSimulator::page_verifies(std::uint64_t lpn) const {
  FLEX_EXPECTS(integrity_mode_);
  if (buffer_.contains(lpn)) return true;
  const auto info = ftl_.lookup(lpn);
  if (!info.has_value()) return true;
  const ftl::DataAudit audit = ftl_.audit_data(lpn, ftl_.data_version(lpn));
  return audit.seal_ok && audit.payload_ok;
}

void SsdSimulator::observe_read_access(std::uint64_t lpn, SimTime now) {
  if (buffer_.contains(lpn)) return;
  const auto info = ftl_.lookup(lpn);
  if (!info.has_value()) return;
  const SimTime birth =
      config_.age_model == AgeModel::kStaticPerLba &&
              lpn < static_birth_.size()
          ? static_birth_[lpn]
          : info->write_time;
  const Hours age = static_cast<double>(now - birth) / (3600.0 * 1e9);
  const bool reduced = info->mode == ftl::PageMode::kReduced;
  bool correctable = true;
  const int required =
      required_levels_cached(reduced, info->pe_cycles, std::max(age, 0.0),
                             info->ppn, info->block_reads, &correctable);
  // Pure access-statistics update: no scheduler occupancy, no disturb
  // stress (ftl_.record_read is skipped — the sibling never touched its
  // NAND), no uncorrectable/sensing-histogram accounting. Migrations the
  // policy decides here are real FTL work, exactly as they would be had
  // the read landed on this replica.
  policy_->on_read_complete({.lpn = lpn,
                             .ppn = info->ppn,
                             .required_levels = required,
                             .block_reads = info->block_reads,
                             .correctable = correctable,
                             .now = now});
}

std::uint64_t SsdSimulator::block_read_count(std::uint64_t lpn) const {
  const auto info = ftl_.lookup(lpn);
  return info.has_value() ? info->block_reads : 0;
}

void SsdSimulator::service_request_qos(const trace::Request& request,
                                       SimTime now) {
  const std::uint16_t tenant = tenant_of(request);
  if (config_.qos.admission_max_outstanding > 0 &&
      qos_outstanding_[tenant] >= config_.qos.admission_max_outstanding) {
    // Rejected before any FTL mutation: admission control is what bounds
    // both queue memory and drive-state divergence under overload.
    ++results_.tenant[tenant].admission_rejected;
    ++results_.admission_rejected;
    if (telemetry_) ++tenant_rejected_metrics_[tenant]->value;
    return;
  }
  if (!request.is_write && config_.qos.slo_read_admission &&
      !slo_admit_read(request, now)) {
    // Predicted deadline miss: rejected before any slot or FTL mutation,
    // like the queue-depth cap above.
    ++results_.tenant[tenant].admission_rejected;
    ++results_.admission_rejected;
    ++results_.slo_rejected;
    if (telemetry_) ++tenant_rejected_metrics_[tenant]->value;
    return;
  }
  std::uint64_t slot;
  if (!qos_free_slots_.empty()) {
    slot = qos_free_slots_.back();
    qos_free_slots_.pop_back();
  } else {
    slot = qos_requests_.size();
    qos_requests_.emplace_back();
  }
  qos_requests_[slot] = QosRequest{.arrival = now,
                                   .lpn = request.lpn,
                                   .pages = request.pages,
                                   .tenant = tenant,
                                   .is_write = request.is_write,
                                   .outstanding = 1};  // issue guard
  ++qos_outstanding_[tenant];
  qos_slots_high_water_ =
      std::max<std::uint64_t>(qos_slots_high_water_,
                              qos_requests_.size() - qos_free_slots_.size());

  const std::uint64_t logical = ftl_.logical_pages();
  for (std::uint32_t i = 0; i < request.pages; ++i) {
    const std::uint64_t lpn = (request.lpn + i) % logical;
    if (request.is_write) {
      issue_write_page_qos(lpn, slot, request.priority, now);
    } else {
      issue_read_page_qos(lpn, slot, request.priority, now);
    }
  }
  // Drop the issue guard; a request whose pages all resolved
  // synchronously (buffer hits, buffered writes) finalizes here.
  if (--qos_requests_[slot].outstanding == 0) finalize_qos(slot, now);
}

bool SsdSimulator::slo_admit_read(const trace::Request& request,
                                  SimTime now) {
  // The same priority tightening the dispatcher applies when it assigns
  // the queued command's deadline (chip_scheduler submit_qos).
  const Duration budget =
      config_.qos.read_deadline / (1 + request.priority);
  if (config_.latency.buffer_latency > budget) return false;
  const std::uint64_t logical = ftl_.logical_pages();
  bool admit = true;
  for (std::uint32_t i = 0; i < request.pages; ++i) {
    const std::uint64_t lpn = (request.lpn + i) % logical;
    // Buffer hits and unmapped reads are DRAM-served: no chip backlog.
    if (buffer_.contains(lpn)) continue;
    const auto info = ftl_.lookup(lpn);
    if (!info.has_value()) continue;
    const std::size_t chip = scheduler_.chip_of(info->ppn);
    const Duration predicted = scheduler_.qos_backlog(chip, now) +
                               slo_extra_[chip] + slo_service_estimate_;
    if (predicted > budget) {
      admit = false;
      break;
    }
    if (slo_extra_[chip] == 0) {
      slo_touched_.push_back(static_cast<std::uint32_t>(chip));
    }
    slo_extra_[chip] += slo_service_estimate_;
  }
  for (const std::uint32_t chip : slo_touched_) slo_extra_[chip] = 0;
  slo_touched_.clear();
  return admit;
}

void SsdSimulator::issue_read_page_qos(std::uint64_t lpn, std::uint64_t slot,
                                       std::uint8_t priority, SimTime now) {
  QosRequest& st = qos_requests_[slot];
  if (buffer_.contains(lpn)) {
    ++results_.buffer_hits;
    if (telemetry_) ++buffer_hits_metric_->value;
    const PageService page{.response = config_.latency.buffer_latency,
                           .buffer = config_.latency.buffer_latency};
    if (page.response > st.slowest.response) st.slowest = page;
    return;
  }
  const auto info = ftl_.lookup(lpn);
  if (!info.has_value()) {
    ++results_.unmapped_reads;
    if (telemetry_) ++unmapped_metric_->value;
    const PageService page{.response = config_.latency.buffer_latency,
                           .buffer = config_.latency.buffer_latency};
    if (page.response > st.slowest.response) st.slowest = page;
    return;
  }

  const SimTime birth =
      config_.age_model == AgeModel::kStaticPerLba &&
              lpn < static_birth_.size()
          ? static_birth_[lpn]
          : info->write_time;
  const Hours age = static_cast<double>(now - birth) / (3600.0 * 1e9);
  const bool reduced = info->mode == ftl::PageMode::kReduced;
  bool correctable = true;
  const int required =
      required_levels_cached(reduced, info->pe_cycles, std::max(age, 0.0),
                             info->ppn, info->block_reads, &correctable);
  if (!correctable) {
    ++results_.uncorrectable_reads;
    if (telemetry_) ++uncorrectable_metric_->value;
  }
  ++results_.sensing_level_reads[static_cast<std::size_t>(required)];
  const auto [integrity_ok, integrity_persistent] =
      verify_read_page(lpn, *info);

  const ReadContext ctx{.lpn = lpn,
                        .ppn = info->ppn,
                        .required_levels = required,
                        .block_reads = info->block_reads,
                        .correctable = correctable,
                        .integrity_ok = integrity_ok,
                        .integrity_persistent = integrity_persistent,
                        .now = now};
  // The whole read cost (progressive ladder, recovery re-read) is
  // computed at arrival and travels with the queued command; per-attempt
  // child spans are not recorded in QoS mode because the service start is
  // unknown until dispatch (the chip-level "read" span still is).
  const ReadCost cost = policy_->read_cost(ctx);
  ++st.outstanding;
  scheduler_.submit_qos(scheduler_.chip_of(info->ppn), now,
                        ChipCommand{.channel = cost.channel,
                                    .die = cost.die,
                                    .controller = cost.controller},
                        QosClass::kRead, st.tenant, priority, slot, "read");
  // FTL state mutations stay synchronous at arrival (identical drive-state
  // trajectory under every dispatch policy); a refresh scrub triggered by
  // this read queues its relocation train as throttleable background work.
  const std::uint64_t before_moves = ftl_.stats().refresh_page_moves;
  const std::uint64_t before_runs = ftl_.stats().refresh_runs;
  ftl_.record_read(info->ppn);
  policy_->on_read_complete(ctx);
  const std::uint64_t moves =
      ftl_.stats().refresh_page_moves - before_moves;
  const std::uint64_t erases = ftl_.stats().refresh_runs - before_runs;
  if (moves + erases > 0) {
    scheduler_.submit_maintenance_qos(now, moves, erases, config_.latency);
  }
}

void SsdSimulator::issue_write_page_qos(std::uint64_t lpn,
                                        std::uint64_t slot,
                                        std::uint8_t priority, SimTime now) {
  QosRequest& st = qos_requests_[slot];
  ++results_.writes_acked;
  if (telemetry_) ++acked_metric_->value;
  // Write admission: past the dirty watermark (or always, under kFua) the
  // page programs through to NAND as a *queued* host command — the ack
  // waits for the program, which is the back-pressure that keeps the
  // dirty set bounded under sustained write overload.
  const bool write_through =
      config_.durability.policy == DurabilityPolicy::kFua ||
      (config_.qos.write_admission_dirty_watermark > 0 &&
       buffer_.dirty_pages() >= config_.qos.write_admission_dirty_watermark);
  if (write_through) {
    const ftl::WriteResult result =
        ftl_.write(lpn, policy_->write_mode(lpn), now);
    ++st.outstanding;
    scheduler_.submit_qos(scheduler_.chip_of(result.ppn), now,
                          ChipCommand{.die = config_.latency.program()},
                          QosClass::kWrite, st.tenant, priority, slot,
                          "program");
    const std::uint64_t moves =
        result.page_programs > 0 ? result.page_programs - 1 : 0;
    if (moves + result.erases > 0) {
      scheduler_.submit_maintenance_qos(now, moves, result.erases,
                                        config_.latency);
    }
    mark_durable(lpn);
    ++results_.writes_durable;
    if (telemetry_) ++durable_metric_->value;
    for (const std::uint64_t victim : buffer_.insert_clean(lpn)) {
      flush_victim(victim, now);
    }
    return;
  }
  const std::vector<std::uint64_t>& flush = buffer_.write(lpn);
  for (const std::uint64_t victim : flush) {
    flush_victim(victim, now);
  }
  if (config_.durability.policy == DurabilityPolicy::kFlushBarrier &&
      ++acked_since_barrier_ >= config_.durability.flush_barrier_interval) {
    acked_since_barrier_ = 0;
    flush_barrier_at(now);
  }
  st.write_response =
      std::max(st.write_response, config_.latency.buffer_latency);
}

void SsdSimulator::on_qos_complete(const QosCompletion& done) {
  QosRequest& st = qos_requests_[done.tag];
  if (st.is_write) {
    // Buffer insertion precedes the program, as under kFua.
    st.write_response =
        std::max(st.write_response, done.completion - done.arrival +
                                        config_.latency.buffer_latency);
  } else {
    // Commands are queued at request arrival, so wait + occupancy spans
    // [arrival, completion] exactly and the breakdown identity holds.
    const PageService page{.response = done.completion - done.arrival,
                           .wait = done.start - done.arrival,
                           .sense = done.cmd.die,
                           .transfer = done.cmd.channel,
                           .decode = done.cmd.controller};
    if (page.response > st.slowest.response) st.slowest = page;
  }
  FLEX_ASSERT(st.outstanding > 0);
  if (--st.outstanding == 0) finalize_qos(done.tag, done.completion);
}

void SsdSimulator::finalize_qos(std::uint64_t slot, SimTime completion) {
  (void)completion;  // response latencies are measured per page
  const QosRequest st = qos_requests_[slot];
  qos_free_slots_.push_back(slot);
  FLEX_ASSERT(qos_outstanding_[st.tenant] > 0);
  --qos_outstanding_[st.tenant];
  const Duration response =
      st.is_write ? st.write_response : st.slowest.response;
  record_request_stats(st.is_write, st.tenant, response, st.slowest,
                       st.arrival, st.lpn, st.pages);
}

void SsdSimulator::drain_events() {
  if (injector_ != nullptr && config_.faults.crash_enabled) {
    // Crash-armed dispatch: adjudicate power loss at every event-queue
    // boundary. The injector hashes (seed, ordinal, salt) statelessly —
    // no RNG is consumed, so a crash-off run of the same config stays
    // byte-identical. Event callbacks are atomic with respect to power
    // loss: a multi-page FTL sequence inside one event cannot be torn,
    // but everything still pending in the queue is lost.
    while (!events_.empty()) {
      if (injector_->crash_at(events_.fired())) {
        power_loss();
        break;
      }
      events_.run_next();
    }
  } else {
    events_.run_all();
  }
}

void SsdSimulator::run_segment(const std::vector<trace::Request>& requests) {
  // A crashed simulator refuses work until mount(): requests against a
  // powered-off drive would silently vanish.
  FLEX_EXPECTS(!external_kernel_);
  if (crashed_) return;
  // Arrival events dispatch through the deterministic kernel: equal-time
  // arrivals keep trace order via the queue's sequence tie-breaking.
  for (const auto& request : requests) {
    events_.schedule(request.arrival, [this, &request](SimTime now) {
      service_request(request, now);
    });
  }
  drain_events();
  collect_results();
}

void SsdSimulator::pump_open_loop() {
  if (open_loop_remaining_ == 0) return;
  const std::optional<trace::Request> request = open_loop_source_->next();
  if (!request.has_value()) return;
  --open_loop_remaining_;
  open_loop_next_ = *request;
  // Scheduling in the past would run the kernel clock backwards (the
  // queue fires events in (when, seq) order, not wall order); an arrival
  // the source stamped before `now` is served immediately instead.
  const SimTime when = std::max(request->arrival, events_.now());
  events_.schedule(when, [this](SimTime now) {
    // Copy out, then pump: the successor arrival overwrites the slot.
    const trace::Request current = open_loop_next_;
    pump_open_loop();
    service_request(current, now);
  });
}

void SsdSimulator::run_open_loop(trace::RequestSource& source,
                                 std::uint64_t max_requests) {
  FLEX_EXPECTS(!external_kernel_);
  if (crashed_) return;
  open_loop_source_ = &source;
  open_loop_remaining_ = max_requests == 0
                             ? std::numeric_limits<std::uint64_t>::max()
                             : max_requests;
  // Exactly one arrival event is pending at any time: each arrival
  // schedules its successor when it fires, so the event queue holds the
  // in-flight completions plus a single arrival — open-loop pressure
  // without a materialised trace.
  pump_open_loop();
  drain_events();
  collect_results();
  open_loop_source_ = nullptr;
}

void SsdSimulator::collect_results() {
  const ReadPolicyStats policy_stats = policy_->stats();
  results_.migrations_to_reduced = policy_stats.migrations_to_reduced;
  results_.migrations_to_normal = policy_stats.migrations_to_normal;
  results_.refresh_blocks = policy_stats.refresh_blocks;
  results_.refresh_page_moves = policy_stats.refresh_page_moves;
  results_.pool_pages = policy_stats.pool_pages;
  results_.pool_capacity_pages = policy_stats.pool_capacity_pages;
  results_.recovered_reads = policy_stats.recovered_reads;
  results_.data_loss_reads = policy_stats.data_loss_reads;
  results_.integrity_recovered_reads = policy_stats.integrity_recovered_reads;
  results_.integrity_unrecovered_reads =
      policy_stats.integrity_unrecovered_reads;
  results_.retired_blocks = ftl_.retired_block_count();
  results_.chip_stats = scheduler_.stats();
  // Report trace-phase FTL activity only.
  const ftl::FtlStats& total = ftl_.stats();
  results_.ftl.host_writes = total.host_writes - prefill_stats_.host_writes;
  results_.ftl.nand_writes = total.nand_writes - prefill_stats_.nand_writes;
  results_.ftl.nand_erases = total.nand_erases - prefill_stats_.nand_erases;
  results_.ftl.gc_runs = total.gc_runs - prefill_stats_.gc_runs;
  results_.ftl.gc_page_moves =
      total.gc_page_moves - prefill_stats_.gc_page_moves;
  results_.ftl.mode_migrations =
      total.mode_migrations - prefill_stats_.mode_migrations;
  results_.ftl.refresh_runs = total.refresh_runs - prefill_stats_.refresh_runs;
  results_.ftl.refresh_page_moves =
      total.refresh_page_moves - prefill_stats_.refresh_page_moves;
  results_.ftl.program_fails =
      total.program_fails - prefill_stats_.program_fails;
  results_.ftl.erase_fails = total.erase_fails - prefill_stats_.erase_fails;
  results_.ftl.grown_defects =
      total.grown_defects - prefill_stats_.grown_defects;
  results_.ftl.retired_blocks =
      total.retired_blocks - prefill_stats_.retired_blocks;
  results_.ftl.retire_page_moves =
      total.retire_page_moves - prefill_stats_.retire_page_moves;
  results_.ftl.mounts = total.mounts - prefill_stats_.mounts;
  results_.ftl.mount_pages_scanned =
      total.mount_pages_scanned - prefill_stats_.mount_pages_scanned;
  results_.ftl.mount_mappings_recovered =
      total.mount_mappings_recovered - prefill_stats_.mount_mappings_recovered;
  results_.ftl.mount_stale_records =
      total.mount_stale_records - prefill_stats_.mount_stale_records;
  results_.ftl.misdirected_writes =
      total.misdirected_writes - prefill_stats_.misdirected_writes;
  results_.ftl.torn_relocations =
      total.torn_relocations - prefill_stats_.torn_relocations;
  results_.ftl.repair_writes = total.repair_writes - prefill_stats_.repair_writes;
  results_.qos_request_slots_high_water = qos_slots_high_water_;
  results_.qos_pending_high_water = scheduler_.qos_pending_high_water();
  results_.background_deferrals = scheduler_.qos_background_deferrals();
  results_.fairness_overrides = scheduler_.qos_fairness_overrides();
  // The crash path captured the gauge at the instant of power loss.
  if (!crashed_) results_.dirty_buffer_pages = buffer_.dirty_pages();
  if (telemetry_) {
    results_.metrics = telemetry_->metrics.snapshot();
    results_.spans = telemetry_->spans.spans();
  }
}

SsdResults SsdSimulator::run(const std::vector<trace::Request>& requests) {
  run_segment(requests);
  return results_;
}

StatusOr<std::unique_ptr<SsdSimulator>> SsdSimulator::Builder::Build() const {
  if (Status status = config_.Validate(); !status.ok()) return status;
  auto simulator = std::unique_ptr<SsdSimulator>(
      new SsdSimulator(config_, normal_, reduced_, kernel_));
  if (telemetry_ != nullptr) simulator->attach_telemetry(telemetry_);
  return simulator;
}

}  // namespace flex::ssd
