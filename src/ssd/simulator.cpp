#include "ssd/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace flex::ssd {

std::string scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBaseline:
      return "baseline";
    case Scheme::kLdpcInSsd:
      return "LDPC-in-SSD";
    case Scheme::kLevelAdjustOnly:
      return "LevelAdjust-only";
    case Scheme::kFlexLevel:
      return "LevelAdjust+AccessEval";
  }
  FLEX_ASSERT(false && "unreachable");
  return {};
}

SsdSimulator::SsdSimulator(SsdConfig config,
                           const reliability::BerModel& normal,
                           const reliability::BerModel& reduced)
    : config_(config),
      normal_model_(normal),
      reduced_model_(reduced),
      ftl_(config.ftl),
      buffer_(config.write_buffer_pages, config.write_buffer_flush_batch),
      access_eval_(config.access_eval),
      chip_free_(config.ftl.spec.chips, 0),
      rng_(config.seed) {
  if (config_.sensing_hint) {
    page_hint_.assign(ftl_.physical_blocks() *
                          config_.ftl.spec.pages_per_block,
                      0);
  }
  FLEX_EXPECTS(config_.min_prefill_age > 0.0);
  FLEX_EXPECTS(config_.max_prefill_age >= config_.min_prefill_age);
  // The baseline controller cannot tell fresh pages from stale ones, so it
  // provisions every read for the worst case it was qualified against:
  // the pre-aged wear level at the rated retention age.
  baseline_fixed_levels_ = ladder_.required_levels(normal_model_.total_ber(
      static_cast<int>(config_.ftl.initial_pe_cycles),
      config_.baseline_retention_spec));
  results_.sensing_level_reads.assign(
      static_cast<std::size_t>(ladder_.steps().back().extra_levels) + 1, 0);
}

void SsdSimulator::reset_measurements() {
  results_ = SsdResults{};
  results_.sensing_level_reads.assign(
      static_cast<std::size_t>(ladder_.steps().back().extra_levels) + 1, 0);
  prefill_stats_ = ftl_.stats();
}

void SsdSimulator::prefill(std::uint64_t pages) {
  FLEX_EXPECTS(pages <= ftl_.logical_pages());
  const ftl::PageMode mode = config_.scheme == Scheme::kLevelAdjustOnly
                                 ? ftl::PageMode::kReduced
                                 : ftl::PageMode::kNormal;
  const double log_min = std::log(config_.min_prefill_age);
  const double log_max = std::log(config_.max_prefill_age);
  FLEX_EXPECTS(config_.prefill_extent_pages >= 1);
  Hours age = config_.max_prefill_age;
  static_birth_.assign(pages, 0);
  for (std::uint64_t lpn = 0; lpn < pages; ++lpn) {
    if (lpn % config_.prefill_extent_pages == 0) {
      age = std::exp(rng_.uniform(log_min, log_max));
    }
    const auto birth = static_cast<SimTime>(-age * 3600.0 * 1e9);
    static_birth_[lpn] = birth;
    ftl_.write(lpn, mode, birth);
  }
  // Preconditioning: historical random overwrites that scatter invalid
  // pages across blocks, so measurement starts from GC steady state
  // instead of the artificially clean freshly-filled layout.
  const auto overwrites = static_cast<std::uint64_t>(
      config_.precondition_passes * static_cast<double>(pages));
  for (std::uint64_t i = 0; i < overwrites; ++i) {
    const Hours overwrite_age = std::exp(rng_.uniform(log_min, log_max));
    ftl_.write(rng_.below(pages), mode,
               static_cast<SimTime>(-overwrite_age * 3600.0 * 1e9));
  }
  prefill_stats_ = ftl_.stats();
}

int SsdSimulator::required_levels_cached(bool reduced, std::uint32_t pe,
                                         Hours age, bool* correctable) {
  // ~1.5% age resolution per bucket: far finer than the ladder's BER steps.
  const auto bucket = static_cast<std::uint64_t>(
      age <= 0.0 ? 0 : 1 + std::llround(48.0 * std::log2(1.0 + age)));
  const std::uint64_t key = (static_cast<std::uint64_t>(pe) << 16) | bucket;
  auto& cache = level_cache_[reduced ? 1 : 0];
  if (const auto it = cache.find(key); it != cache.end()) {
    *correctable = (it->second & 0x100) != 0;
    return it->second & 0xFF;
  }
  const reliability::BerModel& model =
      reduced ? reduced_model_ : normal_model_;
  bool ok = true;
  const int levels = ladder_.required_levels(
      model.total_ber(static_cast<int>(pe), age), &ok);
  cache.emplace(key, levels | (ok ? 0x100 : 0));
  *correctable = ok;
  return levels;
}

std::size_t SsdSimulator::chip_of(std::uint64_t ppn) const {
  // Page-level channel striping (superblock layout): consecutive pages of
  // a block land on different chips, so flush bursts and GC relocation
  // trains parallelise across the array instead of serialising behind one
  // write frontier.
  return static_cast<std::size_t>(ppn % config_.ftl.spec.chips);
}

SimTime SsdSimulator::occupy(std::size_t chip, SimTime arrival,
                             Duration busy) {
  const SimTime start = std::max(arrival, chip_free_[chip]);
  chip_free_[chip] = start + busy;
  return start + busy;
}

ftl::PageMode SsdSimulator::write_mode_for(std::uint64_t lpn) const {
  switch (config_.scheme) {
    case Scheme::kLevelAdjustOnly:
      return ftl::PageMode::kReduced;
    case Scheme::kFlexLevel:
      return access_eval_.is_reduced(lpn) ? ftl::PageMode::kReduced
                                          : ftl::PageMode::kNormal;
    case Scheme::kBaseline:
    case Scheme::kLdpcInSsd:
      return ftl::PageMode::kNormal;
  }
  FLEX_ASSERT(false && "unreachable");
  return ftl::PageMode::kNormal;
}

Duration SsdSimulator::write_cost(const ftl::WriteResult& result) const {
  // GC relocations read the victim page before reprogramming it.
  const std::uint64_t gc_reads =
      result.page_programs > 0 ? result.page_programs - 1 : 0;
  return static_cast<Duration>(result.page_programs) *
             config_.latency.program() +
         static_cast<Duration>(result.erases) * config_.latency.erase() +
         static_cast<Duration>(gc_reads) * config_.latency.spec.read_latency;
}

void SsdSimulator::schedule_background(SimTime now,
                                       const ftl::WriteResult& result) {
  occupy(chip_of(result.ppn), now, config_.latency.program());
  const std::uint64_t moves =
      result.page_programs > 0 ? result.page_programs - 1 : 0;
  const std::size_t chips = chip_free_.size();
  for (std::uint64_t i = 0; i < moves; ++i) {
    next_background_chip_ = (next_background_chip_ + 1) % chips;
    occupy(next_background_chip_, now,
           config_.latency.program() + config_.latency.spec.read_latency);
  }
  for (std::uint64_t i = 0; i < result.erases; ++i) {
    next_background_chip_ = (next_background_chip_ + 1) % chips;
    occupy(next_background_chip_, now, config_.latency.erase());
  }
}

Duration SsdSimulator::service_read_page(std::uint64_t lpn, SimTime now) {
  if (buffer_.contains(lpn)) {
    ++results_.buffer_hits;
    return config_.latency.buffer_latency;
  }
  const auto info = ftl_.lookup(lpn);
  if (!info.has_value()) {
    // Read of never-written data: served from the mapping table alone.
    ++results_.unmapped_reads;
    return config_.latency.buffer_latency;
  }

  const SimTime birth =
      config_.age_model == AgeModel::kStaticPerLba &&
              lpn < static_birth_.size()
          ? static_birth_[lpn]
          : info->write_time;
  const Hours age = static_cast<double>(now - birth) / (3600.0 * 1e9);
  const bool reduced = info->mode == ftl::PageMode::kReduced;
  bool correctable = true;
  const int required = required_levels_cached(
      reduced, info->pe_cycles, std::max(age, 0.0), &correctable);
  if (!correctable) ++results_.uncorrectable_reads;
  ++results_.sensing_level_reads[static_cast<std::size_t>(required)];

  Duration busy;
  if (config_.scheme == Scheme::kBaseline) {
    busy = config_.latency.read_fixed(
        std::max(required, baseline_fixed_levels_));
  } else if (config_.sensing_hint) {
    const auto page = static_cast<std::size_t>(info->ppn);
    busy = config_.latency.read_progressive_from(page_hint_[page], required,
                                                 ladder_);
    page_hint_[page] = static_cast<std::int8_t>(required);
  } else {
    busy = config_.latency.read_progressive(required, ladder_);
  }
  const SimTime completion = occupy(chip_of(info->ppn), now, busy);

  if (config_.scheme == Scheme::kFlexLevel) {
    const flexlevel::AccessDecision decision =
        access_eval_.on_read(lpn, required);
    // Migrations are deferrable single-page maintenance: the controller
    // runs them in idle gaps with program-suspend, so they do not add to
    // host-visible latency. Their NAND work still lands in the FTL
    // statistics, which is where Fig. 7's write/erase/lifetime costs come
    // from. (Buffer flushes, by contrast, are deadline work and do contend
    // with reads — see service_write_page.)
    if (decision.migrate_to_reduced) {
      ftl_.migrate(lpn, ftl::PageMode::kReduced, now);
      ++results_.migrations_to_reduced;
    }
    if (decision.evicted.has_value()) {
      ftl_.migrate(*decision.evicted, ftl::PageMode::kNormal, now);
      ++results_.migrations_to_normal;
    }
  }
  return completion - now;
}

Duration SsdSimulator::service_write_page(std::uint64_t lpn, SimTime now) {
  const std::vector<std::uint64_t> flush = buffer_.write(lpn);
  // Write-back semantics: the host write completes at buffer insertion;
  // evicted pages flush to NAND in the background, where their program and
  // GC time occupies the chips and delays subsequent reads — which is
  // exactly how the over-provisioning squeeze of reduced-state storage
  // surfaces in the paper's Fig. 6(a).
  for (const std::uint64_t victim : flush) {
    const ftl::WriteResult result =
        ftl_.write(victim, write_mode_for(victim), now);
    schedule_background(now, result);
  }
  return config_.latency.buffer_latency;
}

SsdResults SsdSimulator::run(const std::vector<trace::Request>& requests) {
  const std::uint64_t logical = ftl_.logical_pages();
  for (const auto& request : requests) {
    const SimTime arrival = request.arrival;
    Duration response = 0;
    for (std::uint32_t i = 0; i < request.pages; ++i) {
      const std::uint64_t lpn = (request.lpn + i) % logical;
      const Duration page_response =
          request.is_write ? service_write_page(lpn, arrival)
                           : service_read_page(lpn, arrival);
      // Pages of one request are served concurrently on their chips; the
      // request completes with its slowest page.
      response = std::max(response, page_response);
    }
    const double seconds = to_seconds(response);
    results_.all_response.add(seconds);
    if (request.is_write) {
      results_.write_response.add(seconds);
    } else {
      results_.read_response.add(seconds);
      results_.read_latency_hist.add(seconds);
    }
  }

  results_.pool_pages = access_eval_.pool_size();
  // Report trace-phase FTL activity only.
  const ftl::FtlStats& total = ftl_.stats();
  results_.ftl.host_writes = total.host_writes - prefill_stats_.host_writes;
  results_.ftl.nand_writes = total.nand_writes - prefill_stats_.nand_writes;
  results_.ftl.nand_erases = total.nand_erases - prefill_stats_.nand_erases;
  results_.ftl.gc_runs = total.gc_runs - prefill_stats_.gc_runs;
  results_.ftl.gc_page_moves =
      total.gc_page_moves - prefill_stats_.gc_page_moves;
  results_.ftl.mode_migrations =
      total.mode_migrations - prefill_stats_.mode_migrations;
  return results_;
}

}  // namespace flex::ssd
