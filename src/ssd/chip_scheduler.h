// Per-chip NAND command scheduling.
//
// Each chip serialises its commands: a command issued while the chip is
// busy queues behind the in-flight work (FIFO, as in a real per-die command
// queue). Occupancy is decomposed into channel-transfer time (the bus),
// die-busy time (array sensing / program / erase) and controller time
// (LDPC decode) so utilisation can be attributed per resource, and the
// scheduler keeps per-chip queue-depth and wait accounting that surfaces
// in SsdResults. Completion events are posted to the simulator's
// EventQueue, which is where the in-flight gauge (and hence observed queue
// depth) is maintained.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "ftl/page_mapping.h"
#include "ssd/event_queue.h"
#include "ssd/latency_model.h"

namespace flex::ssd {

/// One NAND command's occupancy, split by resource. The chip is held for
/// the sum (channel, die and controller work of one command do not overlap
/// with each other — only commands on *different* chips overlap).
struct ChipCommand {
  Duration channel = 0;     ///< bus transfer
  Duration die = 0;         ///< array busy (tR / tPROG / tBERS)
  Duration controller = 0;  ///< ECC decode and similar controller work

  Duration total() const { return channel + die + controller; }
};

/// Per-chip counters accumulated between reset_stats() calls.
struct ChipStats {
  std::uint64_t commands = 0;
  /// Commands that found the chip busy and had to wait.
  std::uint64_t queued_commands = 0;
  /// Total time commands spent waiting for the chip (ns).
  Duration wait_time = 0;
  Duration channel_busy = 0;
  Duration die_busy = 0;
  Duration controller_busy = 0;
  /// Highest number of simultaneously outstanding commands observed.
  std::uint64_t max_queue_depth = 0;

  Duration busy_time() const {
    return channel_busy + die_busy + controller_busy;
  }
  /// Busy fraction over an observation window of `elapsed` ns.
  double utilization(Duration elapsed) const {
    return elapsed <= 0 ? 0.0
                        : static_cast<double>(busy_time()) /
                              static_cast<double>(elapsed);
  }

  bool operator==(const ChipStats&) const = default;
};

/// Dispatch policy for QoS mode (see ChipScheduler::enable_qos).
enum class QosPolicy {
  /// Strict arrival order across tenants and classes (the control arm).
  kFifo,
  /// Earliest-deadline-first with a weighted-fair override: when the
  /// spread of tenant virtual service times exceeds fair_share_slack the
  /// most-behind tenant dispatches next regardless of deadline order.
  kDeadline,
};

/// Deadline class of a queued command. Host reads and write-through
/// programs charge the issuing tenant's fair share; background work
/// (buffer flushes, GC trains, refresh scrubs) is throttleable.
enum class QosClass : std::uint8_t { kRead = 0, kWrite = 1, kBackground = 2 };

struct QosSchedulerConfig {
  QosPolicy policy = QosPolicy::kFifo;
  /// Per-class deadline budgets: a command queued at `t` with priority `p`
  /// carries the absolute deadline `t + budget / (1 + p)`. Deadlines are
  /// scheduling targets, not guarantees — an overloaded chip serves
  /// expired commands in deadline order, which is what keeps EDF
  /// starvation-free (every waiting command's deadline eventually becomes
  /// the minimum).
  Duration read_deadline = 2 * kMillisecond;
  Duration write_deadline = 10 * kMillisecond;
  Duration background_deadline = 50 * kMillisecond;
  /// Fair-share weights indexed by tenant; tenants past the end (and an
  /// empty vector) weigh 1.
  std::vector<double> tenant_weights;
  /// kDeadline only: virtual-time spread that triggers the weighted-fair
  /// override (ns of weighted service).
  Duration fair_share_slack = 5 * kMillisecond;
  /// Defer eligible background commands while at least this many host
  /// commands wait on the same chip (0 disables throttling). A deferred
  /// command becomes eligible again when its own deadline expires, so
  /// maintenance can be delayed but never starved.
  std::uint64_t gc_throttle_queue_depth = 0;
};

/// Completion record delivered to the QosSink when a tagged command
/// finishes service. `start - arrival` is the queue wait; the ChipCommand
/// carries the die/channel/controller split for latency attribution.
struct QosCompletion {
  std::uint64_t tag = 0;
  std::size_t chip = 0;
  SimTime arrival = 0;
  SimTime start = 0;
  SimTime completion = 0;
  ChipCommand cmd;
};

/// Receives tagged command completions in QoS mode (the simulator).
class QosSink {
 public:
  virtual ~QosSink() = default;
  virtual void on_qos_complete(const QosCompletion& done) = 0;
};

class ChipScheduler {
 public:
  ChipScheduler(std::size_t chips, EventQueue& events);

  /// Tag for fire-and-forget commands (no sink notification).
  static constexpr std::uint64_t kNoTag = ~0ULL;

  std::size_t chips() const { return free_at_.size(); }

  /// Chip owning a physical page. Page-level channel striping (superblock
  /// layout): consecutive pages of a block land on different chips, so
  /// flush bursts and GC relocation trains parallelise across the array
  /// instead of serialising behind one write frontier.
  std::size_t chip_of(std::uint64_t ppn) const { return ppn % chips(); }

  /// Issues one command to `chip` no earlier than `arrival`; returns its
  /// completion time. Commands on one chip serialise in issue order. `op`
  /// names the command on the chip's trace track when tracing is enabled
  /// (static-lifetime string; unused otherwise).
  SimTime submit(std::size_t chip, SimTime arrival, const ChipCommand& cmd,
                 const char* op = "cmd");

  /// Schedules a flush/GC write result's NAND operations: the host program
  /// on its own chip, each GC relocation and erase on the next chip
  /// round-robin, so background trains parallelise instead of stalling the
  /// whole array.
  void submit_background(SimTime now, const ftl::WriteResult& result,
                         const LatencyModel& latency);

  /// Earliest time `chip` can start new work.
  SimTime free_at(std::size_t chip) const { return free_at_[chip]; }

  /// Switches the scheduler into QoS mode: commands submitted through
  /// submit_qos()/submit_background_qos() queue per chip and dispatch by
  /// `config.policy` instead of the legacy immediate-reservation path.
  /// Legacy submit() keeps working (and stays byte-identical) when QoS
  /// mode is never enabled. `sink` (may be null) receives completions of
  /// tagged commands.
  void enable_qos(const QosSchedulerConfig& config, QosSink* sink);
  bool qos_enabled() const { return qos_enabled_; }

  /// Queues one command on `chip` (QoS mode only). The deadline is
  /// assigned here from the class budget and `priority`; completion of a
  /// tagged command is reported to the sink. Returns the command's
  /// sequence number (FIFO rank, used by tests).
  std::uint64_t submit_qos(std::size_t chip, SimTime now,
                           const ChipCommand& cmd, QosClass klass,
                           std::uint16_t tenant, std::uint8_t priority,
                           std::uint64_t tag, const char* op = "cmd");

  /// QoS-mode analogue of submit_background(): the flush/GC program train
  /// of one write result, all queued as throttleable background work.
  void submit_background_qos(SimTime now, const ftl::WriteResult& result,
                             const LatencyModel& latency);

  /// Background maintenance without a host program: GC byproducts of a
  /// write-through host program, refresh-scrub relocation trains.
  void submit_maintenance_qos(SimTime now, std::uint64_t moves,
                              std::uint64_t erases,
                              const LatencyModel& latency);

  /// Total outstanding service time on `chip` at `now` (QoS mode): the
  /// active command's remaining occupancy plus the summed occupancy of
  /// every queued command. Under kFifo this is exactly the wait a command
  /// enqueued at `now` will see before starting service — the predictor
  /// behind latency-SLO admission control. 0 when QoS mode is off.
  Duration qos_backlog(std::size_t chip, SimTime now) const;

  /// Highest total number of commands queued-but-not-in-service across
  /// all chips since the last reset_stats() — the bounded-queue-memory
  /// witness for the overload tests.
  std::uint64_t qos_pending_high_water() const {
    return qos_pending_high_water_;
  }
  /// Background commands bypassed by at least one dispatch decision while
  /// the host queue exceeded gc_throttle_queue_depth.
  std::uint64_t qos_background_deferrals() const {
    return qos_background_deferrals_;
  }
  /// Dispatches where the weighted-fair override preempted deadline order.
  std::uint64_t qos_fairness_overrides() const {
    return qos_fairness_overrides_;
  }

  /// Power loss at `now`: in-flight commands vanish (their completion
  /// events were dropped from the queue, so the in-flight gauges would
  /// otherwise leak) and every chip is idle at power-on.
  void power_loss(SimTime now);

  const std::vector<ChipStats>& stats() const { return stats_; }
  /// Clears the counters but keeps chip occupancy and in-flight state —
  /// used by SsdSimulator::reset_measurements between warmup and measure.
  void reset_stats();

  /// Binds command/wait metrics and enables per-chip trace spans (see
  /// telemetry.h for the null-sink contract); nullptr detaches.
  void attach_telemetry(telemetry::Telemetry* telemetry);

 private:
  /// One queued command in QoS mode.
  struct QosPending {
    ChipCommand cmd;
    SimTime arrival = 0;
    SimTime deadline = 0;
    std::uint64_t seq = 0;
    std::uint64_t tag = kNoTag;
    std::uint16_t tenant = 0;
    QosClass klass = QosClass::kBackground;
    const char* op = "cmd";
  };

  Duration qos_class_budget(QosClass klass) const;
  double qos_tenant_weight(std::uint16_t tenant) const;
  /// Picks the next queue index to dispatch on `chip` at `now` per the
  /// configured policy; the queue must be non-empty.
  std::size_t qos_pick_index(std::size_t chip, SimTime now);
  void qos_start_service(std::size_t chip, SimTime start,
                         const QosPending& entry);
  void qos_complete(std::size_t chip, SimTime now);
  void bind_qos_metrics();

  EventQueue& events_;
  std::vector<SimTime> free_at_;
  std::vector<std::uint64_t> in_flight_;
  std::vector<ChipStats> stats_;
  std::size_t next_background_chip_ = 0;

  bool qos_enabled_ = false;
  QosSchedulerConfig qos_config_;
  QosSink* qos_sink_ = nullptr;
  std::vector<std::vector<QosPending>> qos_queue_;  ///< per chip
  std::vector<char> qos_busy_;                      ///< per chip
  std::vector<QosPending> qos_active_;              ///< per chip, if busy
  std::vector<SimTime> qos_active_start_;           ///< per chip, if busy
  /// Weighted virtual service time per tenant (ns / weight), host classes
  /// only — the weighted-fair ledger.
  std::vector<double> qos_virtual_;
  std::uint64_t qos_seq_ = 0;
  std::uint64_t qos_pending_total_ = 0;  ///< queued, not in service
  std::uint64_t qos_pending_high_water_ = 0;
  std::uint64_t qos_background_deferrals_ = 0;
  std::uint64_t qos_fairness_overrides_ = 0;

  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::MetricsRegistry::Counter* commands_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* queued_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* qos_deferrals_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* qos_overrides_metric_ = nullptr;
  Histogram* wait_hist_ = nullptr;
};

}  // namespace flex::ssd
