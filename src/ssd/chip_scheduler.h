// Per-chip NAND command scheduling.
//
// Each chip serialises its commands: a command issued while the chip is
// busy queues behind the in-flight work (FIFO, as in a real per-die command
// queue). Occupancy is decomposed into channel-transfer time (the bus),
// die-busy time (array sensing / program / erase) and controller time
// (LDPC decode) so utilisation can be attributed per resource, and the
// scheduler keeps per-chip queue-depth and wait accounting that surfaces
// in SsdResults. Completion events are posted to the simulator's
// EventQueue, which is where the in-flight gauge (and hence observed queue
// depth) is maintained.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "ftl/page_mapping.h"
#include "ssd/event_queue.h"
#include "ssd/latency_model.h"

namespace flex::ssd {

/// One NAND command's occupancy, split by resource. The chip is held for
/// the sum (channel, die and controller work of one command do not overlap
/// with each other — only commands on *different* chips overlap).
struct ChipCommand {
  Duration channel = 0;     ///< bus transfer
  Duration die = 0;         ///< array busy (tR / tPROG / tBERS)
  Duration controller = 0;  ///< ECC decode and similar controller work

  Duration total() const { return channel + die + controller; }
};

/// Per-chip counters accumulated between reset_stats() calls.
struct ChipStats {
  std::uint64_t commands = 0;
  /// Commands that found the chip busy and had to wait.
  std::uint64_t queued_commands = 0;
  /// Total time commands spent waiting for the chip (ns).
  Duration wait_time = 0;
  Duration channel_busy = 0;
  Duration die_busy = 0;
  Duration controller_busy = 0;
  /// Highest number of simultaneously outstanding commands observed.
  std::uint64_t max_queue_depth = 0;

  Duration busy_time() const {
    return channel_busy + die_busy + controller_busy;
  }
  /// Busy fraction over an observation window of `elapsed` ns.
  double utilization(Duration elapsed) const {
    return elapsed <= 0 ? 0.0
                        : static_cast<double>(busy_time()) /
                              static_cast<double>(elapsed);
  }

  bool operator==(const ChipStats&) const = default;
};

class ChipScheduler {
 public:
  ChipScheduler(std::size_t chips, EventQueue& events);

  std::size_t chips() const { return free_at_.size(); }

  /// Chip owning a physical page. Page-level channel striping (superblock
  /// layout): consecutive pages of a block land on different chips, so
  /// flush bursts and GC relocation trains parallelise across the array
  /// instead of serialising behind one write frontier.
  std::size_t chip_of(std::uint64_t ppn) const { return ppn % chips(); }

  /// Issues one command to `chip` no earlier than `arrival`; returns its
  /// completion time. Commands on one chip serialise in issue order. `op`
  /// names the command on the chip's trace track when tracing is enabled
  /// (static-lifetime string; unused otherwise).
  SimTime submit(std::size_t chip, SimTime arrival, const ChipCommand& cmd,
                 const char* op = "cmd");

  /// Schedules a flush/GC write result's NAND operations: the host program
  /// on its own chip, each GC relocation and erase on the next chip
  /// round-robin, so background trains parallelise instead of stalling the
  /// whole array.
  void submit_background(SimTime now, const ftl::WriteResult& result,
                         const LatencyModel& latency);

  /// Earliest time `chip` can start new work.
  SimTime free_at(std::size_t chip) const { return free_at_[chip]; }

  /// Power loss at `now`: in-flight commands vanish (their completion
  /// events were dropped from the queue, so the in-flight gauges would
  /// otherwise leak) and every chip is idle at power-on.
  void power_loss(SimTime now);

  const std::vector<ChipStats>& stats() const { return stats_; }
  /// Clears the counters but keeps chip occupancy and in-flight state —
  /// used by SsdSimulator::reset_measurements between warmup and measure.
  void reset_stats();

  /// Binds command/wait metrics and enables per-chip trace spans (see
  /// telemetry.h for the null-sink contract); nullptr detaches.
  void attach_telemetry(telemetry::Telemetry* telemetry);

 private:
  EventQueue& events_;
  std::vector<SimTime> free_at_;
  std::vector<std::uint64_t> in_flight_;
  std::vector<ChipStats> stats_;
  std::size_t next_background_chip_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::MetricsRegistry::Counter* commands_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* queued_metric_ = nullptr;
  Histogram* wait_hist_ = nullptr;
};

}  // namespace flex::ssd
