// Read/write latency accounting for LDPC-equipped NAND.
//
// A hard read costs one sense + one transfer + one decode. Every extra
// soft-sensing level adds a partial re-sense and the transfer of the extra
// soft bits, and the decoder runs longer on degraded input — the latency
// anatomy of [1, 2] that the paper's Fig. 6 rests on. Two controller
// policies are modelled:
//  * fixed: one attempt at a predetermined level count (the paper's
//    baseline, which must provision for the worst case), and
//  * progressive: start hard, escalate along the sensing ladder after each
//    decode failure (LDPC-in-SSD [2]).
#pragma once

#include <vector>

#include "common/units.h"
#include "nand/geometry.h"
#include "reliability/sensing_solver.h"

namespace flex::ssd {

/// A read's cost split by the resource that pays it: die (array sensing),
/// channel (data transfer) and controller (LDPC decode). The ChipScheduler
/// occupies the chip for the sum but attributes utilisation per resource.
struct ReadCost {
  Duration die = 0;
  Duration channel = 0;
  Duration controller = 0;

  Duration total() const { return die + channel + controller; }
};

/// One decode attempt of a (possibly progressive) read, for telemetry:
/// `levels` is the sensing depth the decode ran at and `cost` the
/// *incremental* occupancy of this attempt (the first attempt carries the
/// base sense and transfer). Summed over a read's attempts, the costs
/// reproduce the closed-form ReadCost exactly — both are integer ns.
struct ReadAttempt {
  int levels = 0;
  ReadCost cost;
};

struct LatencyModel {
  nand::NandSpec spec;

  /// Additional array sensing per extra level (a soft strobe is a partial
  /// tR: the string is already precharged).
  Duration extra_sense_per_level = 35 * kMicrosecond;
  /// Soft-bit transfer per extra level (the LLR payload grows with levels).
  Duration extra_transfer_per_level = 20 * kMicrosecond;
  /// Min-sum decode on clean hard input.
  Duration decode_base = 10 * kMicrosecond;
  /// Decode-time growth per extra level in use (more iterations).
  Duration decode_per_level = 8 * kMicrosecond;
  /// DRAM service for write-buffer hits.
  Duration buffer_latency = 5 * kMicrosecond;
  /// Power-on mount: reading one page's OOB spare area during the
  /// recovery scan. A spare-area read skips most of the page transfer, so
  /// it is far below a full page read; mount time is (roughly) this times
  /// the programmed pages plus one summary read per block.
  Duration oob_scan_per_page = 4 * kMicrosecond;

  /// One read attempt with `levels` extra sensing levels, start to finish.
  ReadCost read_fixed_cost(int levels) const;
  Duration read_fixed(int levels) const { return read_fixed_cost(levels).total(); }

  /// Progressive ladder read that ends at `required_levels`: every ladder
  /// step below it is a failed attempt whose sensing/transfer work is
  /// incremental but whose decode time is paid in full.
  ReadCost read_progressive_cost(
      int required_levels,
      const reliability::SensingRequirement& ladder) const;
  Duration read_progressive(int required_levels,
                            const reliability::SensingRequirement& ladder)
      const {
    return read_progressive_cost(required_levels, ladder).total();
  }

  /// Progressive read that *starts* at `start_levels` (a remembered
  /// per-block hint, as in LDPC-in-SSD's fine-grained scheme): the first
  /// attempt senses start_levels at once; escalation continues up the
  /// ladder if `required_levels` is higher. A hint above the requirement
  /// wastes some sensing but saves the failed-decode retries.
  ReadCost read_progressive_from_cost(
      int start_levels, int required_levels,
      const reliability::SensingRequirement& ladder) const;
  Duration read_progressive_from(
      int start_levels, int required_levels,
      const reliability::SensingRequirement& ladder) const {
    return read_progressive_from_cost(start_levels, required_levels, ladder)
        .total();
  }

  /// Per-attempt decomposition of read_progressive_from_cost, appended to
  /// `out`: one entry per decode attempt, mirroring that routine's ladder
  /// walk step for step, so the appended costs sum exactly to the closed
  /// form. Appends (never clears) so policy decorators can stack attempts
  /// into one caller-pooled vector.
  void read_progressive_attempts(int start_levels, int required_levels,
                                 const reliability::SensingRequirement& ladder,
                                 std::vector<ReadAttempt>& out) const;

  /// Page program / block erase passthroughs (Table 6).
  Duration program() const { return spec.program_latency; }
  Duration erase() const { return spec.erase_latency; }
};

}  // namespace flex::ssd
