// Read/write latency accounting for LDPC-equipped NAND.
//
// A hard read costs one sense + one transfer + one decode. Every extra
// soft-sensing level adds a partial re-sense and the transfer of the extra
// soft bits, and the decoder runs longer on degraded input — the latency
// anatomy of [1, 2] that the paper's Fig. 6 rests on. Two controller
// policies are modelled:
//  * fixed: one attempt at a predetermined level count (the paper's
//    baseline, which must provision for the worst case), and
//  * progressive: start hard, escalate along the sensing ladder after each
//    decode failure (LDPC-in-SSD [2]) — described by a ReadPlan.
#pragma once

#include <algorithm>
#include <vector>

#include "common/units.h"
#include "nand/geometry.h"
#include "reliability/sensing_solver.h"

namespace flex::ssd {

/// A read's cost split by the resource that pays it: die (array sensing),
/// channel (data transfer) and controller (LDPC decode). The ChipScheduler
/// occupies the chip for the sum but attributes utilisation per resource.
struct ReadCost {
  Duration die = 0;
  Duration channel = 0;
  Duration controller = 0;

  Duration total() const { return die + channel + controller; }
};

/// One decode attempt of a (possibly progressive) read, for telemetry:
/// `levels` is the sensing depth the decode ran at and `cost` the
/// *incremental* occupancy of this attempt (the first attempt carries the
/// base sense and transfer). Summed over a read's attempts, the costs
/// reproduce the closed-form ReadCost exactly — both are integer ns.
struct ReadAttempt {
  int levels = 0;
  ReadCost cost;
};

/// Everything that determines a progressive read's ladder walk: the first
/// attempt senses `start_levels` at once (0 = plain hard-first read; a
/// remembered per-block hint under LDPC-in-SSD's fine-grained scheme [2]),
/// then escalation continues up the ladder until a step reaches
/// `required_levels`. A start above the requirement wastes some sensing
/// but saves the failed-decode retries.
struct ReadPlan {
  int start_levels = 0;
  int required_levels = 0;
};

struct LatencyModel {
  nand::NandSpec spec;

  /// Additional array sensing per extra level (a soft strobe is a partial
  /// tR: the string is already precharged).
  Duration extra_sense_per_level = 35 * kMicrosecond;
  /// Soft-bit transfer per extra level (the LLR payload grows with levels).
  Duration extra_transfer_per_level = 20 * kMicrosecond;
  /// Min-sum decode on clean hard input.
  Duration decode_base = 10 * kMicrosecond;
  /// Decode-time growth per extra level in use (more iterations).
  Duration decode_per_level = 8 * kMicrosecond;
  /// DRAM service for write-buffer hits.
  Duration buffer_latency = 5 * kMicrosecond;
  /// Power-on mount: reading one page's OOB spare area during the
  /// recovery scan. A spare-area read skips most of the page transfer, so
  /// it is far below a full page read; mount time is (roughly) this times
  /// the programmed pages plus one summary read per block.
  Duration oob_scan_per_page = 4 * kMicrosecond;

  /// Decoder-measured latency mode (reliability::ReadChannel): decode
  /// duration per extra-level count, indexed by level, replacing the
  /// `decode_base + levels * decode_per_level` table. Empty (the default)
  /// keeps the table — the byte-identical seed path. Installed by the
  /// simulator from measured min-sum iteration counts; levels past the
  /// last entry clamp to it.
  std::vector<Duration> measured_decode;
  /// Conversion constants for measured decode: controller time per min-sum
  /// iteration, and the fixed per-attempt overhead (LLR load + syndrome
  /// check setup). Only read when measured_decode is being built.
  Duration decode_per_iteration = 3 * kMicrosecond;
  Duration decode_overhead = 4 * kMicrosecond;

  /// Controller time of one decode attempt at `levels` extra levels.
  Duration decode_time(int levels) const {
    if (!measured_decode.empty()) {
      const auto i = std::min<std::size_t>(
          static_cast<std::size_t>(levels), measured_decode.size() - 1);
      return measured_decode[i];
    }
    return decode_base + levels * decode_per_level;
  }

  /// One read attempt with `levels` extra sensing levels, start to finish.
  ReadCost read_fixed_cost(int levels) const;
  Duration read_fixed(int levels) const { return read_fixed_cost(levels).total(); }

  /// Progressive ladder read described by `plan`: every ladder step below
  /// the requirement is a failed attempt whose sensing/transfer work is
  /// incremental but whose decode time is paid in full. When even the
  /// deepest step falls short the walk ends there (the caller accounts the
  /// uncorrectable event separately).
  ReadCost read_cost(const ReadPlan& plan,
                     const reliability::SensingRequirement& ladder) const;
  Duration read_latency(const ReadPlan& plan,
                        const reliability::SensingRequirement& ladder) const {
    return read_cost(plan, ladder).total();
  }

  /// Per-attempt decomposition of read_cost, appended to `out`: one entry
  /// per decode attempt, mirroring the same ladder walk step for step, so
  /// the appended costs sum exactly to the closed form. Appends (never
  /// clears) so policy decorators can stack attempts into one
  /// caller-pooled vector.
  void read_attempts(const ReadPlan& plan,
                     const reliability::SensingRequirement& ladder,
                     std::vector<ReadAttempt>& out) const;

  /// Page program / block erase passthroughs (Table 6).
  Duration program() const { return spec.program_latency; }
  Duration erase() const { return spec.erase_latency; }
};

}  // namespace flex::ssd
