#include "ssd/chip_scheduler.h"

#include <algorithm>

#include "common/assert.h"

namespace flex::ssd {

ChipScheduler::ChipScheduler(std::size_t chips, EventQueue& events)
    : events_(events), free_at_(chips, 0), in_flight_(chips, 0),
      stats_(chips) {
  FLEX_EXPECTS(chips >= 1);
}

SimTime ChipScheduler::submit(std::size_t chip, SimTime arrival,
                              const ChipCommand& cmd) {
  FLEX_EXPECTS(chip < chips());
  const SimTime start = std::max(arrival, free_at_[chip]);
  const SimTime completion = start + cmd.total();
  free_at_[chip] = completion;

  ChipStats& stats = stats_[chip];
  ++stats.commands;
  if (start > arrival) {
    ++stats.queued_commands;
    stats.wait_time += start - arrival;
  }
  stats.channel_busy += cmd.channel;
  stats.die_busy += cmd.die;
  stats.controller_busy += cmd.controller;

  ++in_flight_[chip];
  stats.max_queue_depth = std::max(stats.max_queue_depth, in_flight_[chip]);
  events_.schedule(completion,
                   [this, chip](SimTime) { --in_flight_[chip]; });
  return completion;
}

void ChipScheduler::submit_background(SimTime now,
                                      const ftl::WriteResult& result,
                                      const LatencyModel& latency) {
  // The host program lands on the chip that owns its physical page.
  submit(chip_of(result.ppn), now, ChipCommand{.die = latency.program()});
  // GC relocations read the victim page before reprogramming it.
  const std::uint64_t moves =
      result.page_programs > 0 ? result.page_programs - 1 : 0;
  for (std::uint64_t i = 0; i < moves; ++i) {
    next_background_chip_ = (next_background_chip_ + 1) % chips();
    submit(next_background_chip_, now,
           ChipCommand{.die = latency.program() +
                              latency.spec.read_latency});
  }
  for (std::uint64_t i = 0; i < result.erases; ++i) {
    next_background_chip_ = (next_background_chip_ + 1) % chips();
    submit(next_background_chip_, now,
           ChipCommand{.die = latency.erase()});
  }
}

void ChipScheduler::reset_stats() {
  std::fill(stats_.begin(), stats_.end(), ChipStats{});
}

}  // namespace flex::ssd
