#include "ssd/chip_scheduler.h"

#include <algorithm>

#include "common/assert.h"

namespace flex::ssd {

ChipScheduler::ChipScheduler(std::size_t chips, EventQueue& events)
    : events_(events), free_at_(chips, 0), in_flight_(chips, 0),
      stats_(chips) {
  FLEX_EXPECTS(chips >= 1);
}

SimTime ChipScheduler::submit(std::size_t chip, SimTime arrival,
                              const ChipCommand& cmd, const char* op) {
  FLEX_EXPECTS(chip < chips());
  const SimTime start = std::max(arrival, free_at_[chip]);
  const SimTime completion = start + cmd.total();
  free_at_[chip] = completion;

  ChipStats& stats = stats_[chip];
  ++stats.commands;
  if (start > arrival) {
    ++stats.queued_commands;
    stats.wait_time += start - arrival;
  }
  stats.channel_busy += cmd.channel;
  stats.die_busy += cmd.die;
  stats.controller_busy += cmd.controller;

  if (telemetry_) {
    ++commands_metric_->value;
    if (start > arrival) {
      ++queued_metric_->value;
      wait_hist_->add(static_cast<double>(start - arrival) / 1000.0);
    }
    if (telemetry::SpanRecorder* tracer = telemetry_->tracer()) {
      const auto tid = static_cast<std::int32_t>(chip);
      if (start > arrival) {
        tracer->record({.name = "wait",
                        .cat = "chip",
                        .pid = telemetry_->pid,
                        .tid = tid,
                        .start = arrival,
                        .dur = start - arrival});
      }
      tracer->record({.name = op,
                      .cat = "chip",
                      .pid = telemetry_->pid,
                      .tid = tid,
                      .start = start,
                      .dur = cmd.total()});
    }
  }

  ++in_flight_[chip];
  stats.max_queue_depth = std::max(stats.max_queue_depth, in_flight_[chip]);
  events_.schedule(completion,
                   [this, chip](SimTime) { --in_flight_[chip]; });
  return completion;
}

void ChipScheduler::submit_background(SimTime now,
                                      const ftl::WriteResult& result,
                                      const LatencyModel& latency) {
  // The host program lands on the chip that owns its physical page.
  submit(chip_of(result.ppn), now, ChipCommand{.die = latency.program()},
         "program");
  // GC relocations read the victim page before reprogramming it.
  const std::uint64_t moves =
      result.page_programs > 0 ? result.page_programs - 1 : 0;
  for (std::uint64_t i = 0; i < moves; ++i) {
    next_background_chip_ = (next_background_chip_ + 1) % chips();
    submit(next_background_chip_, now,
           ChipCommand{.die = latency.program() +
                              latency.spec.read_latency},
           "gc_move");
  }
  for (std::uint64_t i = 0; i < result.erases; ++i) {
    next_background_chip_ = (next_background_chip_ + 1) % chips();
    submit(next_background_chip_, now,
           ChipCommand{.die = latency.erase()}, "erase");
  }
}

void ChipScheduler::enable_qos(const QosSchedulerConfig& config,
                               QosSink* sink) {
  qos_enabled_ = true;
  qos_config_ = config;
  qos_sink_ = sink;
  qos_queue_.assign(chips(), {});
  qos_busy_.assign(chips(), 0);
  qos_active_.assign(chips(), QosPending{});
  qos_active_start_.assign(chips(), 0);
  qos_virtual_.clear();
  bind_qos_metrics();
}

Duration ChipScheduler::qos_class_budget(QosClass klass) const {
  switch (klass) {
    case QosClass::kRead:
      return qos_config_.read_deadline;
    case QosClass::kWrite:
      return qos_config_.write_deadline;
    case QosClass::kBackground:
      return qos_config_.background_deadline;
  }
  return qos_config_.background_deadline;
}

double ChipScheduler::qos_tenant_weight(std::uint16_t tenant) const {
  if (tenant < qos_config_.tenant_weights.size()) {
    return qos_config_.tenant_weights[tenant];
  }
  return 1.0;
}

std::uint64_t ChipScheduler::submit_qos(std::size_t chip, SimTime now,
                                        const ChipCommand& cmd,
                                        QosClass klass, std::uint16_t tenant,
                                        std::uint8_t priority,
                                        std::uint64_t tag, const char* op) {
  FLEX_EXPECTS(qos_enabled_);
  FLEX_EXPECTS(chip < chips());
  if (tenant >= qos_virtual_.size()) qos_virtual_.resize(tenant + 1, 0.0);

  QosPending entry;
  entry.cmd = cmd;
  entry.arrival = now;
  entry.deadline = now + qos_class_budget(klass) / (1 + priority);
  entry.seq = qos_seq_++;
  entry.tag = tag;
  entry.tenant = tenant;
  entry.klass = klass;
  entry.op = op;

  ChipStats& stats = stats_[chip];
  ++stats.commands;
  if (telemetry_) ++commands_metric_->value;
  ++in_flight_[chip];
  stats.max_queue_depth = std::max(stats.max_queue_depth, in_flight_[chip]);

  if (!qos_busy_[chip]) {
    qos_start_service(chip, now, entry);
  } else {
    qos_queue_[chip].push_back(entry);
    ++qos_pending_total_;
    qos_pending_high_water_ =
        std::max(qos_pending_high_water_, qos_pending_total_);
  }
  return entry.seq;
}

Duration ChipScheduler::qos_backlog(std::size_t chip, SimTime now) const {
  if (!qos_enabled_) return 0;
  FLEX_EXPECTS(chip < chips());
  Duration backlog = 0;
  if (qos_busy_[chip] && free_at_[chip] > now) {
    backlog += free_at_[chip] - now;
  }
  for (const QosPending& entry : qos_queue_[chip]) {
    backlog += entry.cmd.total();
  }
  return backlog;
}

void ChipScheduler::qos_start_service(std::size_t chip, SimTime start,
                                      const QosPending& entry) {
  qos_busy_[chip] = 1;
  qos_active_[chip] = entry;
  qos_active_start_[chip] = start;
  const SimTime completion = start + entry.cmd.total();
  free_at_[chip] = completion;

  ChipStats& stats = stats_[chip];
  if (start > entry.arrival) {
    ++stats.queued_commands;
    stats.wait_time += start - entry.arrival;
  }
  stats.channel_busy += entry.cmd.channel;
  stats.die_busy += entry.cmd.die;
  stats.controller_busy += entry.cmd.controller;

  if (telemetry_) {
    if (start > entry.arrival) {
      ++queued_metric_->value;
      wait_hist_->add(static_cast<double>(start - entry.arrival) / 1000.0);
    }
    if (telemetry::SpanRecorder* tracer = telemetry_->tracer()) {
      const auto tid = static_cast<std::int32_t>(chip);
      if (start > entry.arrival) {
        tracer->record({.name = "wait",
                        .cat = "chip",
                        .pid = telemetry_->pid,
                        .tid = tid,
                        .start = entry.arrival,
                        .dur = start - entry.arrival});
      }
      tracer->record({.name = entry.op,
                      .cat = "chip",
                      .pid = telemetry_->pid,
                      .tid = tid,
                      .start = start,
                      .dur = entry.cmd.total()});
    }
  }

  events_.schedule(completion,
                   [this, chip](SimTime t) { qos_complete(chip, t); });
}

std::size_t ChipScheduler::qos_pick_index(std::size_t chip, SimTime now) {
  std::vector<QosPending>& queue = qos_queue_[chip];
  FLEX_EXPECTS(!queue.empty());

  // GC/refresh throttling: while the host backlog on this chip is at or
  // past the threshold, un-expired background commands are ineligible.
  // The host count guarantees an eligible entry exists whenever the
  // throttle is active.
  std::uint64_t host_waiting = 0;
  for (const QosPending& e : queue) {
    if (e.klass != QosClass::kBackground) ++host_waiting;
  }
  const bool throttle = qos_config_.gc_throttle_queue_depth > 0 &&
                        host_waiting >= qos_config_.gc_throttle_queue_depth;
  bool deferred_any = false;
  const auto eligible = [&](const QosPending& e) {
    if (throttle && e.klass == QosClass::kBackground && now < e.deadline) {
      deferred_any = true;
      return false;
    }
    return true;
  };

  std::size_t best = queue.size();
  if (qos_config_.policy == QosPolicy::kFifo) {
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (!eligible(queue[i])) continue;
      if (best == queue.size() || queue[i].seq < queue[best].seq) best = i;
    }
  } else {
    // Weighted-fair override: if some tenant with eligible host work has
    // fallen more than fair_share_slack of weighted service behind the
    // most-served such tenant, dispatch from the most-behind tenant. The
    // override self-limits — serving the lagging tenant raises its
    // virtual time until the spread closes and EDF order resumes.
    double min_v = 0.0, max_v = 0.0;
    std::uint16_t min_tenant = 0;
    bool have_host = false;
    for (const QosPending& e : queue) {
      if (e.klass == QosClass::kBackground || !eligible(e)) continue;
      const double v = qos_virtual_[e.tenant];
      if (!have_host || v < min_v ||
          (v == min_v && e.tenant < min_tenant)) {
        min_v = v;
        min_tenant = e.tenant;
      }
      if (!have_host || v > max_v) max_v = v;
      have_host = true;
    }
    const bool fairness_override =
        have_host &&
        max_v - min_v > static_cast<double>(qos_config_.fair_share_slack);
    if (fairness_override) {
      ++qos_fairness_overrides_;
      if (telemetry_) ++qos_overrides_metric_->value;
    }
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const QosPending& e = queue[i];
      if (!eligible(e)) continue;
      if (fairness_override &&
          (e.klass == QosClass::kBackground || e.tenant != min_tenant)) {
        continue;
      }
      if (best == queue.size()) {
        best = i;
        continue;
      }
      const QosPending& b = queue[best];
      if (e.deadline < b.deadline ||
          (e.deadline == b.deadline && e.seq < b.seq)) {
        best = i;
      }
    }
  }
  if (deferred_any) {
    ++qos_background_deferrals_;
    if (telemetry_) ++qos_deferrals_metric_->value;
  }
  FLEX_ENSURES(best < queue.size());
  return best;
}

void ChipScheduler::qos_complete(std::size_t chip, SimTime now) {
  --in_flight_[chip];
  const QosPending done = qos_active_[chip];
  const SimTime start = qos_active_start_[chip];
  qos_busy_[chip] = 0;

  if (done.klass != QosClass::kBackground) {
    qos_virtual_[done.tenant] += static_cast<double>(done.cmd.total()) /
                                 qos_tenant_weight(done.tenant);
  }

  // Dispatch the successor before notifying the sink so a re-entrant
  // submit from the sink queues behind it instead of jumping the line.
  std::vector<QosPending>& queue = qos_queue_[chip];
  if (!queue.empty()) {
    const std::size_t idx = qos_pick_index(chip, now);
    const QosPending next = queue[idx];
    queue[idx] = queue.back();
    queue.pop_back();
    --qos_pending_total_;
    qos_start_service(chip, now, next);
  }

  if (qos_sink_ && done.tag != kNoTag) {
    qos_sink_->on_qos_complete({.tag = done.tag,
                                .chip = chip,
                                .arrival = done.arrival,
                                .start = start,
                                .completion = now,
                                .cmd = done.cmd});
  }
}

void ChipScheduler::submit_background_qos(SimTime now,
                                          const ftl::WriteResult& result,
                                          const LatencyModel& latency) {
  submit_qos(chip_of(result.ppn), now, ChipCommand{.die = latency.program()},
             QosClass::kBackground, 0, 0, kNoTag, "program");
  const std::uint64_t moves =
      result.page_programs > 0 ? result.page_programs - 1 : 0;
  submit_maintenance_qos(now, moves, result.erases, latency);
}

void ChipScheduler::submit_maintenance_qos(SimTime now, std::uint64_t moves,
                                           std::uint64_t erases,
                                           const LatencyModel& latency) {
  for (std::uint64_t i = 0; i < moves; ++i) {
    next_background_chip_ = (next_background_chip_ + 1) % chips();
    submit_qos(next_background_chip_, now,
               ChipCommand{.die = latency.program() +
                                  latency.spec.read_latency},
               QosClass::kBackground, 0, 0, kNoTag, "gc_move");
  }
  for (std::uint64_t i = 0; i < erases; ++i) {
    next_background_chip_ = (next_background_chip_ + 1) % chips();
    submit_qos(next_background_chip_, now,
               ChipCommand{.die = latency.erase()}, QosClass::kBackground, 0,
               0, kNoTag, "erase");
  }
}

void ChipScheduler::power_loss(SimTime now) {
  std::fill(free_at_.begin(), free_at_.end(), now);
  std::fill(in_flight_.begin(), in_flight_.end(), 0);
  if (qos_enabled_) {
    for (std::vector<QosPending>& q : qos_queue_) q.clear();
    std::fill(qos_busy_.begin(), qos_busy_.end(), 0);
    std::fill(qos_virtual_.begin(), qos_virtual_.end(), 0.0);
    qos_pending_total_ = 0;
  }
}

void ChipScheduler::reset_stats() {
  std::fill(stats_.begin(), stats_.end(), ChipStats{});
  qos_pending_high_water_ = qos_pending_total_;
  qos_background_deferrals_ = 0;
  qos_fairness_overrides_ = 0;
}

void ChipScheduler::attach_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (!telemetry_) {
    commands_metric_ = nullptr;
    queued_metric_ = nullptr;
    qos_deferrals_metric_ = nullptr;
    qos_overrides_metric_ = nullptr;
    wait_hist_ = nullptr;
    return;
  }
  commands_metric_ = &telemetry_->metrics.counter("chip.commands");
  queued_metric_ = &telemetry_->metrics.counter("chip.queued_commands");
  // Queueing waits span sub-µs bus gaps to ms-scale GC trains; log bins
  // keep relative resolution across the whole range (values in µs).
  wait_hist_ = &telemetry_->metrics.histogram(
      "chip.wait_us",
      telemetry::HistogramSpec{
          .lo = 1e-2, .hi = 1e6, .bins = 160, .log_spaced = true});
  bind_qos_metrics();
}

void ChipScheduler::bind_qos_metrics() {
  // QoS counters exist only when QoS mode is on, so legacy metric
  // snapshots (the pinned golden set) are unaffected. enable_qos() and
  // attach_telemetry() both land here because either order is legal.
  if (!telemetry_ || !qos_enabled_) return;
  qos_deferrals_metric_ =
      &telemetry_->metrics.counter("sched.qos_background_deferrals");
  qos_overrides_metric_ =
      &telemetry_->metrics.counter("sched.qos_fairness_overrides");
}

}  // namespace flex::ssd
