#include "ssd/chip_scheduler.h"

#include <algorithm>

#include "common/assert.h"

namespace flex::ssd {

ChipScheduler::ChipScheduler(std::size_t chips, EventQueue& events)
    : events_(events), free_at_(chips, 0), in_flight_(chips, 0),
      stats_(chips) {
  FLEX_EXPECTS(chips >= 1);
}

SimTime ChipScheduler::submit(std::size_t chip, SimTime arrival,
                              const ChipCommand& cmd, const char* op) {
  FLEX_EXPECTS(chip < chips());
  const SimTime start = std::max(arrival, free_at_[chip]);
  const SimTime completion = start + cmd.total();
  free_at_[chip] = completion;

  ChipStats& stats = stats_[chip];
  ++stats.commands;
  if (start > arrival) {
    ++stats.queued_commands;
    stats.wait_time += start - arrival;
  }
  stats.channel_busy += cmd.channel;
  stats.die_busy += cmd.die;
  stats.controller_busy += cmd.controller;

  if (telemetry_) {
    ++commands_metric_->value;
    if (start > arrival) {
      ++queued_metric_->value;
      wait_hist_->add(static_cast<double>(start - arrival) / 1000.0);
    }
    if (telemetry::SpanRecorder* tracer = telemetry_->tracer()) {
      const auto tid = static_cast<std::int32_t>(chip);
      if (start > arrival) {
        tracer->record({.name = "wait",
                        .cat = "chip",
                        .pid = telemetry_->pid,
                        .tid = tid,
                        .start = arrival,
                        .dur = start - arrival});
      }
      tracer->record({.name = op,
                      .cat = "chip",
                      .pid = telemetry_->pid,
                      .tid = tid,
                      .start = start,
                      .dur = cmd.total()});
    }
  }

  ++in_flight_[chip];
  stats.max_queue_depth = std::max(stats.max_queue_depth, in_flight_[chip]);
  events_.schedule(completion,
                   [this, chip](SimTime) { --in_flight_[chip]; });
  return completion;
}

void ChipScheduler::submit_background(SimTime now,
                                      const ftl::WriteResult& result,
                                      const LatencyModel& latency) {
  // The host program lands on the chip that owns its physical page.
  submit(chip_of(result.ppn), now, ChipCommand{.die = latency.program()},
         "program");
  // GC relocations read the victim page before reprogramming it.
  const std::uint64_t moves =
      result.page_programs > 0 ? result.page_programs - 1 : 0;
  for (std::uint64_t i = 0; i < moves; ++i) {
    next_background_chip_ = (next_background_chip_ + 1) % chips();
    submit(next_background_chip_, now,
           ChipCommand{.die = latency.program() +
                              latency.spec.read_latency},
           "gc_move");
  }
  for (std::uint64_t i = 0; i < result.erases; ++i) {
    next_background_chip_ = (next_background_chip_ + 1) % chips();
    submit(next_background_chip_, now,
           ChipCommand{.die = latency.erase()}, "erase");
  }
}

void ChipScheduler::power_loss(SimTime now) {
  std::fill(free_at_.begin(), free_at_.end(), now);
  std::fill(in_flight_.begin(), in_flight_.end(), 0);
}

void ChipScheduler::reset_stats() {
  std::fill(stats_.begin(), stats_.end(), ChipStats{});
}

void ChipScheduler::attach_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (!telemetry_) {
    commands_metric_ = nullptr;
    queued_metric_ = nullptr;
    wait_hist_ = nullptr;
    return;
  }
  commands_metric_ = &telemetry_->metrics.counter("chip.commands");
  queued_metric_ = &telemetry_->metrics.counter("chip.queued_commands");
  // Queueing waits span sub-µs bus gaps to ms-scale GC trains; log bins
  // keep relative resolution across the whole range (values in µs).
  wait_hist_ = &telemetry_->metrics.histogram(
      "chip.wait_us",
      telemetry::HistogramSpec{
          .lo = 1e-2, .hi = 1e6, .bins = 160, .log_spaced = true});
}

}  // namespace flex::ssd
