// Read-path policy strategies for the SSD simulator (the §6.2 schemes).
//
// The simulator core is scheme-agnostic: it resolves a read to a physical
// page, derives the page's sensing requirement from wear and age, and asks
// its ReadPolicy (chosen ONCE, at construction) two questions — what does
// this NAND read cost, and what maintenance follows it. The four §6.2
// systems become four strategies:
//   * fixed worst-case        — kBaseline: one attempt provisioned for the
//                               rated-retention worst case;
//   * progressive             — kLdpcInSsd: ladder retry from a hard read;
//   * progressive with hint   — any progressive scheme with
//                               SsdConfig::sensing_hint: start the ladder
//                               at the page's last known depth;
//   * FlexLevel with migration— kFlexLevel: a progressive read plus the
//                               AccessEval controller, whose pool
//                               migrations run behind this boundary.
// Orthogonal maintenance decorates a scheme policy the same way FlexLevel
// decorates progressive: RefreshPolicy (read-disturb-aware scrub) wraps
// any of the four schemes when SsdConfig::read_disturb asks for it. New
// policies (adaptive read thresholds…) drop in here without touching the
// core.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/fault_injector.h"
#include "ftl/page_mapping.h"
#include "reliability/ber_model.h"
#include "reliability/sensing_solver.h"
#include "ssd/latency_model.h"
#include "telemetry/telemetry.h"

namespace flex::ssd {

struct SsdConfig;  // simulator.h; broken cycle — the factory takes it.

/// Everything a policy may consult about one resolved read.
struct ReadContext {
  std::uint64_t lpn = 0;
  std::uint64_t ppn = 0;
  /// Extra soft-sensing levels this page's raw BER requires.
  int required_levels = 0;
  /// Pass-voltage stress events the containing block had accumulated
  /// before this read (the disturb term already folded into
  /// `required_levels`).
  std::uint64_t block_reads = 0;
  /// False when even the deepest ladder step cannot decode the page's raw
  /// BER. `required_levels` is then clamped to the deepest step, and the
  /// RecoveryPolicy decorator (fault injection on) charges and adjudicates
  /// the recovery re-read.
  bool correctable = true;
  /// False when read-back seal verification flagged an integrity mismatch
  /// (SsdConfig::integrity on): the RecoveryPolicy charges the same
  /// deepest-sensing re-read it charges uncorrectable reads.
  bool integrity_ok = true;
  /// With `integrity_ok` false: the mismatch is in the cells (misdirected
  /// write / torn relocation), so the re-read cannot cure it — only a
  /// replica failover or repair rewrite can.
  bool integrity_persistent = false;
  SimTime now = 0;
};

/// Counters a policy accumulates (zero for policies without maintenance).
struct ReadPolicyStats {
  std::uint64_t migrations_to_reduced = 0;
  std::uint64_t migrations_to_normal = 0;
  /// ReducedCell pool occupancy right now (gauge, not a counter).
  std::uint64_t pool_pages = 0;
  /// ReducedCell pool budget right now (gauge). Equals the configured
  /// capacity until block retirements shrink it (fault injection with
  /// shrink_pool_on_retirement); zero for non-FlexLevel schemes.
  std::uint64_t pool_capacity_pages = 0;
  /// Blocks scrubbed by the read-disturb refresh decorator, and the valid
  /// pages those scrubs relocated (counters).
  std::uint64_t refresh_blocks = 0;
  std::uint64_t refresh_page_moves = 0;
  /// Uncorrectable reads the recovery ladder's deepest-sensing re-read
  /// rescued, and those it could not (declared data loss). Counters;
  /// nonzero only under the RecoveryPolicy decorator (fault injection).
  std::uint64_t recovered_reads = 0;
  std::uint64_t data_loss_reads = 0;
  /// Integrity mismatches the deepest-sensing re-read cured (transient
  /// post-ECC flips) vs. those it could not (persistent medium faults —
  /// handed to the array's replica failover when one exists). Counters;
  /// nonzero only under RecoveryPolicy with SsdConfig::integrity on.
  std::uint64_t integrity_recovered_reads = 0;
  std::uint64_t integrity_unrecovered_reads = 0;
};

class ReadPolicy {
 public:
  virtual ~ReadPolicy() = default;

  /// Cost of the NAND read(s) that retrieve this page.
  virtual ReadCost read_cost(const ReadContext& ctx) = 0;

  /// Post-read maintenance (e.g. AccessEval migrations). Runs after the
  /// read has been scheduled; deferrable work that must not add to
  /// host-visible latency belongs here.
  virtual void on_read_complete(const ReadContext& ctx) { (void)ctx; }

  /// Storage mode for a host write of `lpn`.
  virtual ftl::PageMode write_mode(std::uint64_t lpn) const {
    (void)lpn;
    return ftl::PageMode::kNormal;
  }

  /// Storage mode for prefill / preconditioning writes.
  virtual ftl::PageMode prefill_mode() const {
    return ftl::PageMode::kNormal;
  }

  /// Power-on recovery notification: the FTL just rebuilt its state from
  /// the medium and everything the policy keeps in controller DRAM
  /// (sensing hints, hotness history, pool LRU) is gone. Policies rebuild
  /// what the report carries durably (ReducedCell membership) and forget
  /// the rest; decorators forward to their inner policy.
  virtual void on_mount(const ftl::MountReport& report, SimTime now) {
    (void)report;
    (void)now;
  }

  virtual ReadPolicyStats stats() const { return {}; }
  /// Clears counters (not gauges or learned state) between measurement
  /// windows.
  virtual void reset_stats() {}

  /// The decode attempts read_cost(ctx) *would* charge, for latency-
  /// breakdown tracing, appended to `out` (a caller-pooled scratch vector —
  /// the tracing hot path reuses one allocation across reads). Must not
  /// mutate policy state (it is called before read_cost on the same
  /// context); decorators forward to their scheme policy. The appended
  /// attempt costs sum exactly to read_cost's ReadCost.
  virtual void trace_attempts(const ReadContext& ctx,
                              std::vector<ReadAttempt>& out) const {
    (void)ctx;
    (void)out;
  }

  /// Binds maintenance counters/gauges and enables maintenance spans (see
  /// telemetry.h for the null-sink contract); nullptr detaches. Decorators
  /// forward to their inner policy.
  virtual void attach_telemetry(telemetry::Telemetry* telemetry) {
    (void)telemetry;
  }
};

/// Builds the policy for `config.scheme` (the only place scheme is
/// inspected on the read path). `physical_pages` sizes the sensing-hint
/// table; `ftl` receives FlexLevel's migrations. A non-null `injector`
/// (fault injection on) wraps the stack in the RecoveryPolicy decorator,
/// which charges a deepest-sensing re-read for uncorrectable reads and
/// lets the injector decide whether it rescues the data.
std::unique_ptr<ReadPolicy> make_read_policy(
    const SsdConfig& config, const LatencyModel& latency,
    const reliability::SensingRequirement& ladder,
    const reliability::BerModel& normal_model, std::uint64_t physical_pages,
    ftl::PageMappingFtl& ftl, const faults::FaultInjector* injector);

}  // namespace flex::ssd
