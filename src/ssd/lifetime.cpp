#include "ssd/lifetime.h"

#include "common/assert.h"

namespace flex::ssd {

double lifetime_factor(double erase_increase, LifetimeParams params) {
  FLEX_EXPECTS(erase_increase >= 1.0);
  FLEX_EXPECTS(params.activation_fraction >= 0.0 &&
               params.activation_fraction <= 1.0);
  // Time to exhaust the budget: phase 1 at rate 1, phase 2 at the inflated
  // rate; normalised by the unmodified lifetime.
  return params.activation_fraction +
         (1.0 - params.activation_fraction) / erase_increase;
}

}  // namespace flex::ssd
