#include "ssd/latency_model.h"

#include "common/assert.h"

namespace flex::ssd {

Duration LatencyModel::read_fixed(int levels) const {
  FLEX_EXPECTS(levels >= 0);
  return spec.read_latency + spec.page_transfer_latency +
         levels * (extra_sense_per_level + extra_transfer_per_level) +
         decode_base + levels * decode_per_level;
}

Duration LatencyModel::read_progressive(
    int required_levels,
    const reliability::SensingRequirement& ladder) const {
  return read_progressive_from(0, required_levels, ladder);
}

Duration LatencyModel::read_progressive_from(
    int start_levels, int required_levels,
    const reliability::SensingRequirement& ladder) const {
  FLEX_EXPECTS(start_levels >= 0);
  FLEX_EXPECTS(required_levels >= 0);
  Duration total = spec.read_latency + spec.page_transfer_latency;
  int sensed = 0;
  for (const auto& step : ladder.steps()) {
    if (step.extra_levels < start_levels) continue;
    // Escalation re-senses only the new reference voltages and transfers
    // only the new soft bits.
    const int delta = step.extra_levels - sensed;
    FLEX_ASSERT(delta >= 0);
    total += delta * (extra_sense_per_level + extra_transfer_per_level);
    sensed = step.extra_levels;
    // Decode attempt at this step (full price whether it succeeds or not).
    total += decode_base + sensed * decode_per_level;
    if (sensed >= required_levels) return total;
  }
  // Even the deepest read fails to satisfy `required_levels`: the
  // controller has exhausted the ladder (treated as the deepest read; the
  // caller accounts the uncorrectable event separately).
  return total;
}

}  // namespace flex::ssd
