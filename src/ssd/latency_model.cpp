#include "ssd/latency_model.h"

#include "common/assert.h"

namespace flex::ssd {

ReadCost LatencyModel::read_fixed_cost(int levels) const {
  FLEX_EXPECTS(levels >= 0);
  return ReadCost{
      .die = spec.read_latency + levels * extra_sense_per_level,
      .channel = spec.page_transfer_latency +
                 levels * extra_transfer_per_level,
      .controller = decode_base + levels * decode_per_level,
  };
}

ReadCost LatencyModel::read_progressive_cost(
    int required_levels,
    const reliability::SensingRequirement& ladder) const {
  return read_progressive_from_cost(0, required_levels, ladder);
}

ReadCost LatencyModel::read_progressive_from_cost(
    int start_levels, int required_levels,
    const reliability::SensingRequirement& ladder) const {
  FLEX_EXPECTS(start_levels >= 0);
  FLEX_EXPECTS(required_levels >= 0);
  ReadCost cost{.die = spec.read_latency,
                .channel = spec.page_transfer_latency,
                .controller = 0};
  int sensed = 0;
  for (const auto& step : ladder.steps()) {
    if (step.extra_levels < start_levels) continue;
    // Escalation re-senses only the new reference voltages and transfers
    // only the new soft bits.
    const int delta = step.extra_levels - sensed;
    FLEX_ASSERT(delta >= 0);
    cost.die += delta * extra_sense_per_level;
    cost.channel += delta * extra_transfer_per_level;
    sensed = step.extra_levels;
    // Decode attempt at this step (full price whether it succeeds or not).
    cost.controller += decode_base + sensed * decode_per_level;
    if (sensed >= required_levels) return cost;
  }
  // Even the deepest read fails to satisfy `required_levels`: the
  // controller has exhausted the ladder (treated as the deepest read; the
  // caller accounts the uncorrectable event separately).
  return cost;
}

void LatencyModel::read_progressive_attempts(
    int start_levels, int required_levels,
    const reliability::SensingRequirement& ladder,
    std::vector<ReadAttempt>& out) const {
  FLEX_EXPECTS(start_levels >= 0);
  FLEX_EXPECTS(required_levels >= 0);
  bool first = true;
  int sensed = 0;
  for (const auto& step : ladder.steps()) {
    if (step.extra_levels < start_levels) continue;
    const int delta = step.extra_levels - sensed;
    FLEX_ASSERT(delta >= 0);
    ReadAttempt attempt;
    attempt.levels = step.extra_levels;
    attempt.cost.die = delta * extra_sense_per_level;
    attempt.cost.channel = delta * extra_transfer_per_level;
    if (first) {
      attempt.cost.die += spec.read_latency;
      attempt.cost.channel += spec.page_transfer_latency;
      first = false;
    }
    sensed = step.extra_levels;
    attempt.cost.controller = decode_base + sensed * decode_per_level;
    out.push_back(attempt);
    if (sensed >= required_levels) return;
  }
  if (first) {
    // Every ladder step sits below start_levels: read_progressive_from_cost
    // charges the base sense/transfer and no decode; mirror that.
    out.push_back(
        ReadAttempt{.levels = start_levels,
                    .cost = {.die = spec.read_latency,
                             .channel = spec.page_transfer_latency}});
  }
}

}  // namespace flex::ssd
