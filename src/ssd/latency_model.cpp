#include "ssd/latency_model.h"

#include "common/assert.h"

namespace flex::ssd {
namespace {

/// The one progressive ladder walk behind read_cost and read_attempts.
/// Invokes `attempt(first, levels, delta)` once per decode attempt —
/// `delta` new reference voltages sensed incrementally, `levels` the depth
/// the decode runs at — and returns false when every ladder step sits
/// below plan.start_levels (the read still pays its base sense/transfer,
/// but no decode runs).
template <typename Attempt>
bool walk_ladder(const ReadPlan& plan,
                 const reliability::SensingRequirement& ladder,
                 Attempt&& attempt) {
  FLEX_EXPECTS(plan.start_levels >= 0);
  FLEX_EXPECTS(plan.required_levels >= 0);
  bool first = true;
  int sensed = 0;
  for (const auto& step : ladder.steps()) {
    if (step.extra_levels < plan.start_levels) continue;
    // Escalation re-senses only the new reference voltages and transfers
    // only the new soft bits.
    const int delta = step.extra_levels - sensed;
    FLEX_ASSERT(delta >= 0);
    sensed = step.extra_levels;
    attempt(first, sensed, delta);
    first = false;
    // Decode at this step succeeds; deeper steps never run. When even the
    // deepest step falls short the walk ends there too.
    if (sensed >= plan.required_levels) break;
  }
  return !first;
}

}  // namespace

ReadCost LatencyModel::read_fixed_cost(int levels) const {
  FLEX_EXPECTS(levels >= 0);
  return ReadCost{
      .die = spec.read_latency + levels * extra_sense_per_level,
      .channel = spec.page_transfer_latency +
                 levels * extra_transfer_per_level,
      .controller = decode_time(levels),
  };
}

ReadCost LatencyModel::read_cost(
    const ReadPlan& plan,
    const reliability::SensingRequirement& ladder) const {
  ReadCost cost{.die = spec.read_latency,
                .channel = spec.page_transfer_latency,
                .controller = 0};
  walk_ladder(plan, ladder, [&](bool, int levels, int delta) {
    cost.die += delta * extra_sense_per_level;
    cost.channel += delta * extra_transfer_per_level;
    // Decode attempt at this step (full price whether it succeeds or not).
    cost.controller += decode_time(levels);
  });
  return cost;
}

void LatencyModel::read_attempts(
    const ReadPlan& plan, const reliability::SensingRequirement& ladder,
    std::vector<ReadAttempt>& out) const {
  const bool any_attempt =
      walk_ladder(plan, ladder, [&](bool first, int levels, int delta) {
        ReadAttempt attempt;
        attempt.levels = levels;
        attempt.cost.die = delta * extra_sense_per_level;
        attempt.cost.channel = delta * extra_transfer_per_level;
        if (first) {
          attempt.cost.die += spec.read_latency;
          attempt.cost.channel += spec.page_transfer_latency;
        }
        attempt.cost.controller = decode_time(levels);
        out.push_back(attempt);
      });
  if (!any_attempt) {
    // Every ladder step sits below start_levels: read_cost charges the
    // base sense/transfer and no decode; mirror that.
    out.push_back(
        ReadAttempt{.levels = plan.start_levels,
                    .cost = {.die = spec.read_latency,
                             .channel = spec.page_transfer_latency}});
  }
}

}  // namespace flex::ssd
