#include "ssd/read_policy.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "flexlevel/access_eval.h"
#include "ssd/simulator.h"

namespace flex::ssd {
namespace {

/// kBaseline: the controller cannot tell fresh pages from stale ones, so
/// every read is provisioned for the worst case it was qualified against —
/// the pre-aged wear level at the rated retention age.
class FixedWorstCasePolicy final : public ReadPolicy {
 public:
  FixedWorstCasePolicy(const LatencyModel& latency, int fixed_levels)
      : latency_(latency), fixed_levels_(fixed_levels) {}

  ReadCost read_cost(const ReadContext& ctx) override {
    return latency_.read_fixed_cost(
        std::max(ctx.required_levels, fixed_levels_));
  }

  void trace_attempts(const ReadContext& ctx,
                      std::vector<ReadAttempt>& out) const override {
    const int levels = std::max(ctx.required_levels, fixed_levels_);
    out.push_back(ReadAttempt{.levels = levels,
                              .cost = latency_.read_fixed_cost(levels)});
  }

 private:
  const LatencyModel& latency_;
  int fixed_levels_;
};

/// kLdpcInSsd / kLevelAdjustOnly: ladder retry from a hard read. The
/// storage mode parameterises LevelAdjust-only (whole drive reduced)
/// without a separate class.
class ProgressivePolicy : public ReadPolicy {
 public:
  ProgressivePolicy(const LatencyModel& latency,
                    const reliability::SensingRequirement& ladder,
                    ftl::PageMode storage_mode)
      : latency_(latency), ladder_(ladder), storage_mode_(storage_mode) {}

  ReadCost read_cost(const ReadContext& ctx) override {
    return latency_.read_cost({.required_levels = ctx.required_levels},
                              ladder_);
  }

  void trace_attempts(const ReadContext& ctx,
                      std::vector<ReadAttempt>& out) const override {
    latency_.read_attempts({.required_levels = ctx.required_levels}, ladder_,
                           out);
  }

  ftl::PageMode write_mode(std::uint64_t) const override {
    return storage_mode_;
  }
  ftl::PageMode prefill_mode() const override { return storage_mode_; }

 protected:
  const LatencyModel& latency_;
  const reliability::SensingRequirement& ladder_;

 private:
  ftl::PageMode storage_mode_;
};

/// Progressive retry with per-page retry-level memorization (LDPC-in-SSD's
/// fine-grained scheme [2]): start the ladder at the physical page's last
/// required depth.
class ProgressiveHintPolicy final : public ProgressivePolicy {
 public:
  ProgressiveHintPolicy(const LatencyModel& latency,
                        const reliability::SensingRequirement& ladder,
                        ftl::PageMode storage_mode,
                        std::uint64_t physical_pages)
      : ProgressivePolicy(latency, ladder, storage_mode),
        hint_(physical_pages, 0) {}

  ReadCost read_cost(const ReadContext& ctx) override {
    const auto page = static_cast<std::size_t>(ctx.ppn);
    const ReadCost cost = latency_.read_cost(
        {.start_levels = hint_[page], .required_levels = ctx.required_levels},
        ladder_);
    hint_[page] = static_cast<std::int8_t>(ctx.required_levels);
    return cost;
  }

  void trace_attempts(const ReadContext& ctx,
                      std::vector<ReadAttempt>& out) const override {
    // Reads the hint but must not update it: the simulator calls this
    // before read_cost, which performs the update.
    latency_.read_attempts(
        {.start_levels = hint_[static_cast<std::size_t>(ctx.ppn)],
         .required_levels = ctx.required_levels},
        ladder_, out);
  }

  void on_mount(const ftl::MountReport&, SimTime) override {
    // The memorized depths are controller DRAM; the ladder restarts from
    // hard reads and re-learns.
    std::fill(hint_.begin(), hint_.end(), 0);
  }

 private:
  std::vector<std::int8_t> hint_;
};

/// kFlexLevel: a progressive read (plain or hinted — `inner`) plus the
/// AccessEval controller. Migrations are deferrable single-page
/// maintenance: the controller runs them in idle gaps with
/// program-suspend, so they do not add to host-visible latency. Their NAND
/// work still lands in the FTL statistics, which is where Fig. 7's
/// write/erase/lifetime costs come from. (Buffer flushes, by contrast, are
/// deadline work and do contend with reads — see the simulator's write
/// path.)
class FlexLevelPolicy final : public ReadPolicy {
 public:
  /// `pool_shrink_per_retired_block` > 0 enables graceful degradation
  /// under fault injection: each block the FTL retires costs
  /// pages_per_block physical pages of over-provisioning, so the
  /// ReducedCell budget shrinks by pages_per_block * f / (1 - f) logical
  /// pages (f = reduced_capacity_factor) — the shrink that hands exactly
  /// the lost physical margin back to GC.
  FlexLevelPolicy(std::unique_ptr<ReadPolicy> inner,
                  const flexlevel::AccessEval::Config& access_eval,
                  ftl::PageMappingFtl& ftl,
                  std::uint64_t pool_shrink_per_retired_block)
      : inner_(std::move(inner)),
        access_eval_(access_eval),
        ftl_(ftl),
        base_pool_capacity_(access_eval.pool_capacity_pages),
        pool_shrink_per_block_(pool_shrink_per_retired_block) {}

  ReadCost read_cost(const ReadContext& ctx) override {
    return inner_->read_cost(ctx);
  }

  void trace_attempts(const ReadContext& ctx,
                      std::vector<ReadAttempt>& out) const override {
    inner_->trace_attempts(ctx, out);
  }

  void on_read_complete(const ReadContext& ctx) override {
    // Give retired over-provisioning back before this read can admit new
    // pool pages against a stale budget.
    if (pool_shrink_per_block_ > 0 &&
        ftl_.retired_block_count() != last_retired_) {
      shrink_pool(ctx.now);
    }
    const flexlevel::AccessDecision decision =
        access_eval_.on_read(ctx.lpn, ctx.required_levels);
    if (decision.migrate_to_reduced) {
      ftl_.migrate(ctx.lpn, ftl::PageMode::kReduced, ctx.now);
      ++migrations_to_reduced_;
      record_migration(ctx.now, "migrate_to_reduced", ctx.lpn,
                       to_reduced_metric_);
    }
    if (decision.evicted.has_value()) {
      ftl_.migrate(*decision.evicted, ftl::PageMode::kNormal, ctx.now);
      ++migrations_to_normal_;
      record_migration(ctx.now, "migrate_to_normal", *decision.evicted,
                       to_normal_metric_);
    }
    if (telemetry_) {
      pool_gauge_->value = static_cast<double>(access_eval_.pool_size());
    }
  }

  void attach_telemetry(telemetry::Telemetry* telemetry) override {
    inner_->attach_telemetry(telemetry);
    telemetry_ = telemetry;
    if (!telemetry_) {
      to_reduced_metric_ = nullptr;
      to_normal_metric_ = nullptr;
      pool_gauge_ = nullptr;
      return;
    }
    to_reduced_metric_ =
        &telemetry_->metrics.counter("policy.migrations_to_reduced");
    to_normal_metric_ =
        &telemetry_->metrics.counter("policy.migrations_to_normal");
    pool_gauge_ = &telemetry_->metrics.gauge("policy.pool_pages");
  }

  ftl::PageMode write_mode(std::uint64_t lpn) const override {
    return access_eval_.is_reduced(lpn) ? ftl::PageMode::kReduced
                                        : ftl::PageMode::kNormal;
  }

  void on_mount(const ftl::MountReport& report, SimTime now) override {
    inner_->on_mount(report, now);
    // Re-derive the shrunk budget from the recovered retirement ledger
    // before re-admitting survivors against a stale (too large) one.
    if (pool_shrink_per_block_ > 0) {
      last_retired_ = ftl_.retired_block_count();
      const std::uint64_t penalty =
          static_cast<std::uint64_t>(last_retired_) * pool_shrink_per_block_;
      access_eval_.shrink_capacity(
          base_pool_capacity_ > penalty ? base_pool_capacity_ - penalty : 0);
    }
    // The pool membership is durable (each member's data sits in a
    // reduced-state page, flagged in its OOB record); LRU order and
    // hotness are not, so rebuild_pool re-registers the survivors with
    // conservative recency. Overflow — possible when a crash preempted a
    // shrink's eviction migrations — goes back to normal cells.
    for (const std::uint64_t lpn :
         access_eval_.rebuild_pool(report.reduced_lpns)) {
      ftl_.migrate(lpn, ftl::PageMode::kNormal, now);
      ++migrations_to_normal_;
      record_migration(now, "migrate_to_normal", lpn, to_normal_metric_);
    }
    if (telemetry_) {
      pool_gauge_->value = static_cast<double>(access_eval_.pool_size());
    }
  }

  ReadPolicyStats stats() const override {
    return {.migrations_to_reduced = migrations_to_reduced_,
            .migrations_to_normal = migrations_to_normal_,
            .pool_pages = access_eval_.pool_size(),
            .pool_capacity_pages = access_eval_.pool_capacity()};
  }

  void reset_stats() override {
    migrations_to_reduced_ = 0;
    migrations_to_normal_ = 0;
  }

 private:
  void shrink_pool(SimTime now) {
    last_retired_ = ftl_.retired_block_count();
    const std::uint64_t penalty =
        static_cast<std::uint64_t>(last_retired_) * pool_shrink_per_block_;
    const std::uint64_t target =
        base_pool_capacity_ > penalty ? base_pool_capacity_ - penalty : 0;
    for (const std::uint64_t lpn : access_eval_.shrink_capacity(target)) {
      ftl_.migrate(lpn, ftl::PageMode::kNormal, now);
      ++migrations_to_normal_;
      record_migration(now, "migrate_to_normal", lpn, to_normal_metric_);
    }
  }

  void record_migration(SimTime now, const char* name, std::uint64_t lpn,
                        telemetry::MetricsRegistry::Counter* metric) {
    if (!telemetry_) return;
    ++metric->value;
    if (telemetry::SpanRecorder* tracer = telemetry_->tracer()) {
      tracer->record({.name = name,
                      .cat = "policy",
                      .pid = telemetry_->pid,
                      .tid = telemetry::kFtlTrack,
                      .start = now,
                      .arg0_key = "lpn",
                      .arg0 = static_cast<double>(lpn)});
    }
  }

  std::unique_ptr<ReadPolicy> inner_;
  flexlevel::AccessEval access_eval_;
  ftl::PageMappingFtl& ftl_;
  std::uint64_t base_pool_capacity_;
  std::uint64_t pool_shrink_per_block_;
  std::uint32_t last_retired_ = 0;
  std::uint64_t migrations_to_reduced_ = 0;
  std::uint64_t migrations_to_normal_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::MetricsRegistry::Counter* to_reduced_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* to_normal_metric_ = nullptr;
  telemetry::MetricsRegistry::Gauge* pool_gauge_ = nullptr;
};

/// Read-disturb-aware refresh (scrub) decorator: once the block under a
/// completed read has accumulated `threshold` reads since its last erase,
/// its valid pages are relocated to fresh cells and the block erased,
/// zeroing the disturb term for all of them. Like FlexLevel's migrations,
/// the scrub is deferrable single-block maintenance the controller runs in
/// idle gaps — it must not add host-visible latency, so its NAND work
/// lands only in the FTL statistics (endurance cost), never on the chip
/// queues of the triggering read. Wraps any scheme policy.
class RefreshPolicy final : public ReadPolicy {
 public:
  RefreshPolicy(std::unique_ptr<ReadPolicy> inner, std::uint64_t threshold,
                ftl::PageMappingFtl& ftl)
      : inner_(std::move(inner)), threshold_(threshold), ftl_(ftl) {
    FLEX_EXPECTS(threshold_ > 0);
  }

  ReadCost read_cost(const ReadContext& ctx) override {
    return inner_->read_cost(ctx);
  }

  void trace_attempts(const ReadContext& ctx,
                      std::vector<ReadAttempt>& out) const override {
    inner_->trace_attempts(ctx, out);
  }

  void on_read_complete(const ReadContext& ctx) override {
    // Inner maintenance first: a FlexLevel migration may move the *data*,
    // but the stressed block (and its read counter) stays where it is.
    inner_->on_read_complete(ctx);
    if (ftl_.block_read_count(ctx.ppn) < threshold_) return;
    if (const auto scrub = ftl_.refresh_block(ctx.ppn, ctx.now)) {
      ++refresh_blocks_;
      refresh_page_moves_ += scrub->pages_moved;
      if (telemetry_) {
        ++refresh_blocks_metric_->value;
        refresh_moves_metric_->value += scrub->pages_moved;
        if (telemetry::SpanRecorder* tracer = telemetry_->tracer()) {
          tracer->record({.name = "refresh",
                          .cat = "policy",
                          .pid = telemetry_->pid,
                          .tid = telemetry::kFtlTrack,
                          .start = ctx.now,
                          .arg0_key = "pages_moved",
                          .arg0 =
                              static_cast<double>(scrub->pages_moved)});
        }
      }
    }
  }

  void attach_telemetry(telemetry::Telemetry* telemetry) override {
    inner_->attach_telemetry(telemetry);
    telemetry_ = telemetry;
    if (!telemetry_) {
      refresh_blocks_metric_ = nullptr;
      refresh_moves_metric_ = nullptr;
      return;
    }
    refresh_blocks_metric_ =
        &telemetry_->metrics.counter("policy.refresh_blocks");
    refresh_moves_metric_ =
        &telemetry_->metrics.counter("policy.refresh_page_moves");
  }

  ftl::PageMode write_mode(std::uint64_t lpn) const override {
    return inner_->write_mode(lpn);
  }
  ftl::PageMode prefill_mode() const override {
    return inner_->prefill_mode();
  }
  void on_mount(const ftl::MountReport& report, SimTime now) override {
    inner_->on_mount(report, now);
  }

  ReadPolicyStats stats() const override {
    ReadPolicyStats stats = inner_->stats();
    stats.refresh_blocks = refresh_blocks_;
    stats.refresh_page_moves = refresh_page_moves_;
    return stats;
  }

  void reset_stats() override {
    inner_->reset_stats();
    refresh_blocks_ = 0;
    refresh_page_moves_ = 0;
  }

 private:
  std::unique_ptr<ReadPolicy> inner_;
  std::uint64_t threshold_;
  ftl::PageMappingFtl& ftl_;
  std::uint64_t refresh_blocks_ = 0;
  std::uint64_t refresh_page_moves_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::MetricsRegistry::Counter* refresh_blocks_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* refresh_moves_metric_ = nullptr;
};

/// Uncorrectable-read recovery ladder (fault injection on): when even the
/// deepest progressive step cannot decode a page (ctx.correctable false),
/// a real controller does not give up — it re-reads at the deepest sensing
/// depth with tuned thresholds (the "read-retry" ladder of production
/// firmware). The re-read is host-visible latency, so unlike migrations
/// and scrubs its cost lands on the read itself; whether it rescues the
/// data is the injector's (deterministic) call. Unrescued reads are
/// declared data loss and counted — the drive keeps serving. Outermost
/// decorator, wrapping refresh and the scheme policy.
class RecoveryPolicy final : public ReadPolicy {
 public:
  RecoveryPolicy(std::unique_ptr<ReadPolicy> inner,
                 const LatencyModel& latency,
                 const reliability::SensingRequirement& ladder,
                 const faults::FaultInjector& injector)
      : inner_(std::move(inner)),
        latency_(latency),
        max_levels_(ladder.steps().back().extra_levels),
        injector_(injector) {}

  ReadCost read_cost(const ReadContext& ctx) override {
    ReadCost cost = inner_->read_cost(ctx);
    // One deepest-sensing re-read serves both recovery triggers: an
    // undecodable page and a flagged integrity mismatch (the firmware
    // retries the read either way before escalating).
    if (!ctx.correctable || !ctx.integrity_ok) {
      const ReadCost retry = latency_.read_fixed_cost(max_levels_);
      cost.die += retry.die;
      cost.channel += retry.channel;
      cost.controller += retry.controller;
    }
    return cost;
  }

  void trace_attempts(const ReadContext& ctx,
                      std::vector<ReadAttempt>& out) const override {
    inner_->trace_attempts(ctx, out);
    if (!ctx.correctable || !ctx.integrity_ok) {
      out.push_back(ReadAttempt{
          .levels = max_levels_, .cost = latency_.read_fixed_cost(max_levels_)});
    }
  }

  void on_read_complete(const ReadContext& ctx) override {
    inner_->on_read_complete(ctx);
    if (!ctx.integrity_ok) {
      // A transient post-ECC flip is gone on the re-read of the same
      // cells; a persistent medium fault (misdirected write, torn
      // relocation) survives any number of re-reads.
      const bool cured = !ctx.integrity_persistent;
      if (cured) {
        ++integrity_recovered_reads_;
      } else {
        ++integrity_unrecovered_reads_;
      }
      if (telemetry_) {
        ++(cured ? integrity_recovered_metric_ : integrity_unrecovered_metric_)
              ->value;
        if (telemetry::SpanRecorder* tracer = telemetry_->tracer()) {
          tracer->record(
              {.name = cured ? "integrity_recovered" : "integrity_unrecovered",
               .cat = "policy",
               .pid = telemetry_->pid,
               .tid = telemetry::kFtlTrack,
               .start = ctx.now,
               .arg0_key = "lpn",
               .arg0 = static_cast<double>(ctx.lpn)});
        }
      }
    }
    if (ctx.correctable) return;
    const bool rescued = injector_.read_retry_rescues(ctx.ppn, ctx.block_reads);
    if (rescued) {
      ++recovered_reads_;
    } else {
      ++data_loss_reads_;
    }
    if (telemetry_) {
      ++(rescued ? recovered_metric_ : data_loss_metric_)->value;
      if (telemetry::SpanRecorder* tracer = telemetry_->tracer()) {
        tracer->record({.name = rescued ? "read_recovered" : "read_data_loss",
                        .cat = "policy",
                        .pid = telemetry_->pid,
                        .tid = telemetry::kFtlTrack,
                        .start = ctx.now,
                        .arg0_key = "lpn",
                        .arg0 = static_cast<double>(ctx.lpn)});
      }
    }
  }

  void attach_telemetry(telemetry::Telemetry* telemetry) override {
    inner_->attach_telemetry(telemetry);
    telemetry_ = telemetry;
    if (!telemetry_) {
      recovered_metric_ = nullptr;
      data_loss_metric_ = nullptr;
      integrity_recovered_metric_ = nullptr;
      integrity_unrecovered_metric_ = nullptr;
      return;
    }
    recovered_metric_ = &telemetry_->metrics.counter("policy.recovered_reads");
    data_loss_metric_ = &telemetry_->metrics.counter("policy.data_loss_reads");
    integrity_recovered_metric_ =
        &telemetry_->metrics.counter("policy.integrity_recovered_reads");
    integrity_unrecovered_metric_ =
        &telemetry_->metrics.counter("policy.integrity_unrecovered_reads");
  }

  ftl::PageMode write_mode(std::uint64_t lpn) const override {
    return inner_->write_mode(lpn);
  }
  ftl::PageMode prefill_mode() const override {
    return inner_->prefill_mode();
  }
  void on_mount(const ftl::MountReport& report, SimTime now) override {
    inner_->on_mount(report, now);
  }

  ReadPolicyStats stats() const override {
    ReadPolicyStats stats = inner_->stats();
    stats.recovered_reads = recovered_reads_;
    stats.data_loss_reads = data_loss_reads_;
    stats.integrity_recovered_reads = integrity_recovered_reads_;
    stats.integrity_unrecovered_reads = integrity_unrecovered_reads_;
    return stats;
  }

  void reset_stats() override {
    inner_->reset_stats();
    recovered_reads_ = 0;
    data_loss_reads_ = 0;
    integrity_recovered_reads_ = 0;
    integrity_unrecovered_reads_ = 0;
  }

 private:
  std::unique_ptr<ReadPolicy> inner_;
  const LatencyModel& latency_;
  int max_levels_;
  const faults::FaultInjector& injector_;
  std::uint64_t recovered_reads_ = 0;
  std::uint64_t data_loss_reads_ = 0;
  std::uint64_t integrity_recovered_reads_ = 0;
  std::uint64_t integrity_unrecovered_reads_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::MetricsRegistry::Counter* recovered_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* data_loss_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* integrity_recovered_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* integrity_unrecovered_metric_ =
      nullptr;
};

std::unique_ptr<ReadPolicy> make_progressive(
    const SsdConfig& config, const LatencyModel& latency,
    const reliability::SensingRequirement& ladder, ftl::PageMode mode,
    std::uint64_t physical_pages) {
  if (config.sensing_hint) {
    return std::make_unique<ProgressiveHintPolicy>(latency, ladder, mode,
                                                   physical_pages);
  }
  return std::make_unique<ProgressivePolicy>(latency, ladder, mode);
}

std::unique_ptr<ReadPolicy> make_scheme_policy(
    const SsdConfig& config, const LatencyModel& latency,
    const reliability::SensingRequirement& ladder,
    const reliability::BerModel& normal_model, std::uint64_t physical_pages,
    ftl::PageMappingFtl& ftl, const faults::FaultInjector* injector) {
  switch (config.scheme) {
    case Scheme::kBaseline: {
      const int fixed_levels = ladder.required_levels(normal_model.total_ber(
          static_cast<int>(config.ftl.initial_pe_cycles),
          config.baseline_retention_spec));
      return std::make_unique<FixedWorstCasePolicy>(latency, fixed_levels);
    }
    case Scheme::kLdpcInSsd:
      return make_progressive(config, latency, ladder,
                              ftl::PageMode::kNormal, physical_pages);
    case Scheme::kLevelAdjustOnly:
      return make_progressive(config, latency, ladder,
                              ftl::PageMode::kReduced, physical_pages);
    case Scheme::kFlexLevel: {
      std::uint64_t shrink_per_block = 0;
      if (injector != nullptr &&
          injector->config().shrink_pool_on_retirement &&
          config.ftl.reduced_capacity_factor < 1.0) {
        const double f = config.ftl.reduced_capacity_factor;
        shrink_per_block = static_cast<std::uint64_t>(std::llround(
            config.ftl.spec.pages_per_block * f / (1.0 - f)));
      }
      return std::make_unique<FlexLevelPolicy>(
          make_progressive(config, latency, ladder, ftl::PageMode::kNormal,
                           physical_pages),
          config.access_eval, ftl, shrink_per_block);
    }
  }
  FLEX_ASSERT(false && "unreachable");
  return nullptr;
}

}  // namespace

std::unique_ptr<ReadPolicy> make_read_policy(
    const SsdConfig& config, const LatencyModel& latency,
    const reliability::SensingRequirement& ladder,
    const reliability::BerModel& normal_model, std::uint64_t physical_pages,
    ftl::PageMappingFtl& ftl, const faults::FaultInjector* injector) {
  std::unique_ptr<ReadPolicy> policy = make_scheme_policy(
      config, latency, ladder, normal_model, physical_pages, ftl, injector);
  if (config.read_disturb.refresh_threshold > 0) {
    policy = std::make_unique<RefreshPolicy>(
        std::move(policy), config.read_disturb.refresh_threshold, ftl);
  }
  if (injector != nullptr) {
    policy = std::make_unique<RecoveryPolicy>(std::move(policy), latency,
                                              ladder, *injector);
  }
  return policy;
}

}  // namespace flex::ssd
