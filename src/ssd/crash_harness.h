// Workload → crash → mount → verify, as a reusable harness.
//
// One run of `run_crash_point` drives a configured simulator through a
// trace with deterministic crash injection armed, pulls the cord at the
// end of the trace if the injector never fired (every run crashes exactly
// once), mounts, and checks the three durability invariants the OOB
// recovery path promises:
//   1. no acknowledged-durable write is lost — every entry of the
//      simulator's durable-version ledger is present, at that exact
//      version, in the mounted FTL;
//   2. no LPN is double-mapped — at most one physical page claims any
//      logical page after recovery;
//   3. the retired-block ledger survives — every block retired before the
//      crash is still retired after mount.
// plus the FTL's own structural cross-checks (check_consistency()).
//
// Crash points are swept by `crash_salt`: the injector hashes
// (seed, event ordinal, salt), so distinct salts pick distinct event-queue
// boundaries while everything else about the run stays byte-identical.
// Used by tests/ssd/crash_consistency_test and bench/ablation_crash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "reliability/ber_model.h"
#include "ssd/simulator.h"
#include "trace/trace.h"

namespace flex::ssd {

/// Outcome of one workload → crash → mount → verify cycle.
struct CrashVerdict {
  /// Did the injector fire mid-trace? (false: the end-of-trace cord pull
  /// supplied the crash, so the run still exercises recovery.)
  bool crashed_mid_trace = false;
  /// EventQueue::fired() at the power-loss boundary.
  std::uint64_t crash_ordinal = 0;
  std::uint64_t writes_acked = 0;    ///< host page writes acknowledged
  std::uint64_t writes_durable = 0;  ///< ... of which programmed to NAND
  /// Dirty buffer pages lost at the crash (acked, never programmed —
  /// bounded by the durability policy, never "durable" by the ledger).
  std::uint64_t dirty_lost = 0;
  /// Invariant 1 violations: ledger entries missing or at the wrong
  /// version after mount. Must be 0.
  std::uint64_t lost_acknowledged = 0;
  /// Invariant 2 violations: LPNs claimed by >1 physical page. Must be
  /// empty.
  std::vector<std::uint64_t> double_mapped;
  /// Invariant 3: pre-crash retired blocks ⊆ post-mount retired blocks.
  bool retired_ledger_ok = true;
  /// PageMappingFtl::check_consistency() after mount.
  bool consistent = true;
  std::string consistency_message;
  std::uint64_t stale_records = 0;  ///< superseded OOB records skipped
  Duration mount_time = 0;          ///< simulated OOB-scan cost
  ftl::MountReport report;
  /// Data-integrity audit over the mounted medium (SsdConfig::integrity
  /// on; all zero otherwise): every durable-ledger entry's payload is
  /// re-derived and checked against its seal. A corrupt payload under a
  /// mismatching seal is *detected* (the read path would flag it); a
  /// corrupt payload under a seal that still verifies is *undetected* —
  /// the one failure mode the end-to-end design exists to rule out.
  std::uint64_t data_checked = 0;
  std::uint64_t data_corrupt_detected = 0;
  std::uint64_t data_corrupt_undetected = 0;

  bool ok() const {
    return lost_acknowledged == 0 && double_mapped.empty() &&
           retired_ledger_ok && consistent && data_corrupt_undetected == 0;
  }
};

/// Runs `config` (crash injection must be armed via config.faults) over
/// `requests` with the given crash salt, then crash → mount → verify.
/// `prefill_pages` fills the drive before the trace as the benches do.
CrashVerdict run_crash_point(SsdConfig config,
                             const std::vector<trace::Request>& requests,
                             std::uint64_t crash_salt,
                             std::uint64_t prefill_pages,
                             const reliability::BerModel& normal,
                             const reliability::BerModel& reduced);

}  // namespace flex::ssd
