// Trace-driven SSD simulator (the FlashSim-equivalent of §6.2) with the
// four §6.2 storage systems:
//   kBaseline        — plain soft-decision LDPC, worst-case fixed sensing;
//   kLdpcInSsd       — progressive sensing retry (Zhao et al. [2]);
//   kLevelAdjustOnly — the whole drive in reduced state (no AccessEval);
//   kFlexLevel       — LevelAdjust + AccessEval (the paper's system).
//
// The simulator is a thin conductor over composable layers:
//   * EventQueue     — deterministic discrete-event kernel (stable
//                      sequence-number tie-breaking: identical seeds give
//                      bit-identical results);
//   * ChipScheduler  — per-chip command queues with channel/die/controller
//                      occupancy split and queue-depth accounting;
//   * ReadPolicy     — the scheme's read path (fixed worst-case,
//                      progressive, progressive-with-hint, FlexLevel with
//                      AccessEval migrations), chosen once at construction
//                      so no scheme branch survives in the per-read path;
//   * FTL + write buffer + BerModels — data placement, wear, and the
//                      per-read sensing requirement from age and P/E.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/flat_hash_map.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"
#include "faults/fault_injector.h"
#include "flexlevel/access_eval.h"
#include "ftl/page_mapping.h"
#include "ftl/write_buffer.h"
#include "reliability/ber_model.h"
#include "reliability/read_channel.h"
#include "reliability/read_disturb.h"
#include "reliability/sensing_solver.h"
#include "ssd/chip_scheduler.h"
#include "ssd/event_queue.h"
#include "ssd/latency_model.h"
#include "ssd/read_policy.h"
#include "telemetry/telemetry.h"
#include "trace/trace.h"

namespace flex::ssd {

enum class Scheme { kBaseline, kLdpcInSsd, kLevelAdjustOnly, kFlexLevel };

std::string scheme_name(Scheme scheme);

/// How a page's retention age is determined at read time.
enum class AgeModel {
  /// Age = now - last program of that page: rewritten/relocated data is
  /// fresh. The physically faithful model.
  kPhysical,
  /// Each LBA keeps the age its data was assigned at prefill (advancing
  /// with simulated time); device-level rewrites and relocations do not
  /// reset it. This matches the paper's evaluation, whose per-read BER
  /// depends only on P/E count and the storage-time axis of Tables 4/5 —
  /// not on FTL write recency.
  kStaticPerLba,
};

/// Read-disturb modelling knobs. Off by default: the paper's evaluation
/// has no disturb term, and every seed figure (Fig. 6/7, Tables 4/5) is
/// reproduced with it off, bit-identically.
struct ReadDisturbConfig {
  /// Adds the per-block disturb BER term (reliability/read_disturb) to
  /// every NAND read's sensing requirement.
  bool enabled = false;
  reliability::ReadDisturbModel::Params model;
  /// Block read count at which the RefreshPolicy decorator scrubs the
  /// block (relocate valid pages, erase). 0 disables refresh; enabling
  /// refresh without `enabled` scrubs blocks that never pay a latency
  /// penalty, which is legal but pointless.
  std::uint64_t refresh_threshold = 0;
};

/// When is a host write acknowledged relative to being durable on NAND?
enum class DurabilityPolicy {
  /// Acknowledge at buffer insertion (the paper's write-back buffer).
  /// Fastest, and fine for the paper's figures — but acknowledged writes
  /// sitting in DRAM are lost on power loss, so Validate() rejects this
  /// policy when crash injection is armed.
  kWriteBack,
  /// Force-unit-access: every host write programs through to NAND before
  /// acknowledging (the page stays cached clean for reads). The ack is
  /// the durability point.
  kFua,
  /// Write-back, plus a flush barrier every `flush_barrier_interval`
  /// acknowledged host page writes: bounded loss window at write-back ack
  /// latency (fsync-style batching).
  kFlushBarrier,
};

struct DurabilityConfig {
  DurabilityPolicy policy = DurabilityPolicy::kWriteBack;
  /// kFlushBarrier: acknowledged host page writes between barriers (>= 1).
  std::uint64_t flush_barrier_interval = 1024;
};

/// Multi-tenant QoS mode. Off by default — the legacy path (synchronous
/// chip reservation, single implicit tenant) reproduces every seed figure
/// bit-identically. When enabled, host NAND commands queue per chip and
/// dispatch by the configured policy (see chip_scheduler.h), request
/// latencies become event-driven (a request completes when its slowest
/// queued command completes), and per-tenant response stats land in
/// SsdResults::tenant. FTL state mutations (placement, GC, hotness,
/// disturb counters) stay synchronous at arrival time, so FIFO and
/// deadline policies walk the *identical* drive-state trajectory and
/// differ only in queueing — which is exactly what makes the policy
/// ablation a controlled experiment.
struct QosConfig {
  bool enabled = false;
  QosPolicy policy = QosPolicy::kDeadline;
  /// Number of tenants; requests carry a tenant index (clamped here).
  std::uint32_t tenants = 1;
  /// Fair-share weights, empty (all 1) or exactly `tenants` entries.
  std::vector<double> tenant_weights;
  /// Per-class deadline budgets (see QosSchedulerConfig).
  Duration read_deadline = 2 * kMillisecond;
  Duration write_deadline = 10 * kMillisecond;
  Duration background_deadline = 50 * kMillisecond;
  Duration fair_share_slack = 5 * kMillisecond;
  /// Defer background work while this many host commands wait on the same
  /// chip (0 = off); deferral ends when the background deadline expires.
  std::uint64_t gc_throttle_queue_depth = 0;
  /// Admission control: reject a request outright when its tenant already
  /// has this many requests in flight (0 = off). Rejection happens before
  /// any FTL mutation and bounds queue memory under overload.
  std::uint64_t admission_max_outstanding = 0;
  /// Write admission: at or above this many dirty buffer pages, host
  /// writes switch to queued write-through (ack at program completion)
  /// instead of buffering — back-pressure instead of unbounded dirtying.
  /// 0 = off. Must be <= write_buffer_pages.
  std::uint64_t write_admission_dirty_watermark = 0;
  /// Latency-SLO admission: reject a read when its *predicted* completion
  /// would miss the tenant's deadline budget — current chip backlog plus a
  /// conservative worst-case service estimate, evaluated per page before
  /// any slot or FTL mutation. The budget is read_deadline tightened by
  /// priority exactly as the dispatcher tightens it (deadline / (1 +
  /// priority)), so admission and scheduling agree on what "on time"
  /// means. Under kFifo the predictor is exact (wait == backlog at
  /// enqueue), making "admitted implies met deadline" a checkable
  /// property; under kDeadline it is a conservative heuristic.
  bool slo_read_admission = false;
};

/// End-to-end data integrity. Off by default — the FTL then moves pure
/// metadata and every seed figure is reproduced bit-identically. On,
/// every page program carries a deterministic synthetic payload identity
/// and a CRC64 seal {lpn, version, crc} (ftl/page_mapping SealRecord),
/// and every NAND read-back recomputes the delivered bytes' CRC and
/// cross-checks it against the seal and the durable-version ledger —
/// raising an integrity mismatch (distinct from uncorrectable) that the
/// RecoveryPolicy answers with a deepest-sensing re-read and, at the
/// array layer, replica failover + read-repair. The silent-corruption
/// fault kinds (faults.silent_corruption_rate / misdirected_write_rate /
/// torn_relocation_rate) require this to be on: without seals they would
/// be undetectable by construction (Validate() enforces it).
struct IntegrityConfig {
  bool enabled = false;
  /// 8-byte payload words per modeled page body. More words model larger
  /// pages; the CRC cost is O(words) per program/verify.
  std::uint32_t payload_words = 8;
};

struct SsdConfig {
  Scheme scheme = Scheme::kLdpcInSsd;
  ftl::FtlConfig ftl;
  LatencyModel latency;
  flexlevel::AccessEval::Config access_eval;
  /// Write buffer sized as a capacity fraction of the drive (the paper's
  /// 64 MB on 256 GB is ~0.025% of capacity); absolute pages.
  std::uint64_t write_buffer_pages = 128;
  std::uint64_t write_buffer_flush_batch = 32;
  /// Pre-filled data carries a log-uniform age in
  /// [min_prefill_age, max_prefill_age] — a drive in the field holds a mix
  /// of fresh and stale data, which is what progressive sensing exploits.
  /// Ages are drawn per extent of `prefill_extent_pages` consecutive LPNs:
  /// data written together (files, database segments) shares its age.
  Hours min_prefill_age = 1.0;
  Hours max_prefill_age = kWeek;
  std::uint64_t prefill_extent_pages = 64;
  /// Preconditioning: random overwrites issued after the sequential fill
  /// (as a multiple of the prefilled pages), putting the FTL's
  /// valid/invalid mix — and therefore GC — into steady state before
  /// measurement. 0 leaves the drive freshly filled.
  double precondition_passes = 0.0;
  /// Retention age the *baseline* controller is qualified for: it cannot
  /// tell pages apart, so every read is provisioned for this worst case
  /// (JEDEC-style rated retention).
  Hours baseline_retention_spec = kMonth;
  AgeModel age_model = AgeModel::kPhysical;
  /// Remember the last successful sensing depth per physical page and
  /// start the progressive ladder there (LDPC-in-SSD's fine-grained
  /// retry-level memorization [2]). Applies to every progressive-read
  /// scheme; the baseline's fixed read is unaffected.
  bool sensing_hint = false;
  ReadDisturbConfig read_disturb;
  /// The channel<->decoder closed loop (adaptive per-block read
  /// thresholds, MI-optimized sensing placement, decoder-measured decode
  /// latency) behind the reliability::ReadChannel facade. Off by default:
  /// every seed figure is reproduced bit-identically with the channel
  /// features disabled.
  reliability::ReadChannelConfig channel;
  /// Fault injection (program/erase failures, grown defects) and the
  /// recovery machinery it exercises. Off by default: every seed figure is
  /// reproduced bit-identically with faults disabled.
  faults::FaultConfig faults;
  /// Write-acknowledgement durability semantics. Default write-back
  /// reproduces every seed figure bit-identically; crash injection
  /// (faults.crash_enabled) requires kFua or kFlushBarrier.
  DurabilityConfig durability;
  /// Multi-tenant QoS scheduling; off by default (bit-identical legacy
  /// path). Incompatible with crash injection.
  QosConfig qos;
  /// End-to-end data integrity; off by default (bit-identical path).
  IntegrityConfig integrity;
  std::uint64_t seed = 0x5EED;

  /// Range- and consistency-checks the whole configuration. The simulator
  /// constructor enforces this (abort with the message on violation);
  /// SsdSimulator::Builder returns the Status instead, so front-ends can
  /// surface it and exit cleanly.
  Status Validate() const;
};

/// Where read-response time went, summed over the measured window
/// (integer ns, so the identity holds exactly): each read request
/// contributes its slowest page's decomposition, and the five components
/// sum to that page's response — total() equals the read_response sum.
struct ReadBreakdown {
  Duration queue_wait = 0;  ///< waiting for the chip to go idle
  Duration sensing = 0;     ///< array busy (tR + soft strobes)
  Duration transfer = 0;    ///< channel transfer (page + soft bits)
  Duration decode = 0;      ///< LDPC decode attempts
  Duration buffer = 0;      ///< DRAM service (buffer hits, unmapped reads)

  Duration total() const {
    return queue_wait + sensing + transfer + decode + buffer;
  }
  bool operator==(const ReadBreakdown&) const = default;
};

/// Per-tenant response accounting (always at least one slot; requests of
/// out-of-range tenants fold into the last slot).
struct TenantStats {
  RunningStats read_response;   ///< seconds
  RunningStats write_response;  ///< seconds
  Histogram read_latency_hist = Histogram::log_spaced(1e-6, 1.0, 480);
  /// Requests rejected by admission control before any FTL mutation.
  std::uint64_t admission_rejected = 0;
};

struct SsdResults {
  RunningStats read_response;   ///< seconds
  RunningStats write_response;  ///< seconds
  RunningStats all_response;    ///< seconds
  /// Read-response distribution (seconds) for tail latency: use
  /// read_latency_hist.quantile(0.99) etc. Log-spaced from 1 µs to 1 s
  /// (80 bins per decade) so the far tail keeps relative resolution
  /// instead of saturating a linear grid's edge bin.
  Histogram read_latency_hist = Histogram::log_spaced(1e-6, 1.0, 480);
  /// Component sums of read-response time (see ReadBreakdown).
  ReadBreakdown read_breakdown;
  /// Per-request component shares (component / response, in [0, 1]), one
  /// sample per read request — the shape behind the breakdown sums.
  Histogram wait_share_hist{0.0, 1.0, 50};
  Histogram sensing_share_hist{0.0, 1.0, 50};
  Histogram transfer_share_hist{0.0, 1.0, 50};
  Histogram decode_share_hist{0.0, 1.0, 50};
  ftl::FtlStats ftl;            ///< trace-phase deltas (prefill excluded)
  std::uint64_t buffer_hits = 0;
  std::uint64_t unmapped_reads = 0;
  std::uint64_t uncorrectable_reads = 0;
  std::uint64_t migrations_to_reduced = 0;
  std::uint64_t migrations_to_normal = 0;
  /// Read-disturb scrubs in the measured window (RefreshPolicy only).
  std::uint64_t refresh_blocks = 0;
  std::uint64_t refresh_page_moves = 0;
  /// ReducedCell pool occupancy at the end of the run (FlexLevel only).
  std::uint64_t pool_pages = 0;
  /// ReducedCell pool budget at the end of the run (gauge; FlexLevel
  /// only). Starts at the configured capacity and shrinks as block
  /// retirements spend the physical headroom backing it.
  std::uint64_t pool_capacity_pages = 0;
  /// Recovery ladder outcomes for uncorrectable reads (fault injection
  /// only): rescued by the deepest-sensing re-read vs. declared data loss.
  std::uint64_t recovered_reads = 0;
  std::uint64_t data_loss_reads = 0;
  /// End-to-end integrity verification (SsdConfig::integrity on): NAND
  /// reads whose seal was verified; reads flagged as integrity mismatch;
  /// mismatches the recovery re-read cured (transient flips) vs. not
  /// (persistent medium faults — replica failover territory); and reads
  /// that delivered wrong bytes *without* being flagged (possible only
  /// through a genuine CRC64 collision — the zero-undetected invariant).
  std::uint64_t integrity_verified_reads = 0;
  std::uint64_t integrity_mismatch_reads = 0;
  std::uint64_t integrity_recovered_reads = 0;
  std::uint64_t integrity_unrecovered_reads = 0;
  std::uint64_t integrity_undetected_reads = 0;
  /// Durability accounting: host page writes acknowledged vs. programmed
  /// to NAND (durable). Under kWriteBack the difference rides in DRAM —
  /// exactly what a crash loses; dirty_buffer_pages is that gauge at the
  /// end of the window (captured at the crash point if one fired).
  std::uint64_t writes_acked = 0;
  std::uint64_t writes_durable = 0;
  std::uint64_t dirty_buffer_pages = 0;
  /// Power-loss events in the window, and the simulated time the mounts
  /// spent scanning OOB (also exported as a telemetry span per mount).
  std::uint64_t crashes = 0;
  Duration mount_time = 0;
  /// Blocks out of service at the end of the run (gauge; fault injection
  /// only — includes retirements during prefill/preconditioning).
  std::uint64_t retired_blocks = 0;
  /// Per-tenant response stats, sized max(1, qos.tenants); the legacy
  /// path records into it too (requests default to tenant 0), so single-
  /// tenant runs read identically from either view.
  std::vector<TenantStats> tenant;
  /// Requests rejected by admission control (sum over tenants).
  std::uint64_t admission_rejected = 0;
  /// Subset of admission_rejected due to predicted-deadline-miss SLO
  /// admission (qos.slo_read_admission).
  std::uint64_t slo_rejected = 0;
  /// QoS-mode gauges for the bounded-queue-memory invariant: high-water
  /// marks of in-flight request slots and of queued-but-not-in-service
  /// chip commands since the last reset_measurements().
  std::uint64_t qos_request_slots_high_water = 0;
  std::uint64_t qos_pending_high_water = 0;
  /// Dispatch decisions that deferred background work / overrode deadline
  /// order for fairness (QoS mode only).
  std::uint64_t background_deferrals = 0;
  std::uint64_t fairness_overrides = 0;
  /// Distribution of extra sensing levels over NAND reads.
  std::vector<std::uint64_t> sensing_level_reads;
  /// Per-chip command / queue-depth / occupancy counters for the measured
  /// window (see ChipStats).
  std::vector<ChipStats> chip_stats;
  /// Snapshot of the attached telemetry context's metrics at run() end;
  /// empty when no context was attached.
  telemetry::MetricsSnapshot metrics;
  /// Spans recorded by the attached context (empty unless tracing).
  std::vector<telemetry::Span> spans;
  /// Host wall-clock seconds of the run that produced these results,
  /// stamped by the bench harness (always zero inside the simulator).
  /// Machine noise, not simulation state: it lands in BENCH_*.json but
  /// never in stdout, so the byte-identical --jobs contract only covers
  /// deterministic fields.
  double wall_seconds = 0;
};

class SsdSimulator : private QosSink {
 public:
  /// The BerModels are shared (they are expensive to build); `normal` maps
  /// the 4-level baseline cell, `reduced` the NUNMA reduced cell.
  /// Aborts (with the Status message on stderr) when `config` fails
  /// SsdConfig::Validate(); use Builder to get the Status instead.
  SsdSimulator(SsdConfig config, const reliability::BerModel& normal,
               const reliability::BerModel& reduced);

  /// External-kernel construction: the drive schedules all of its events
  /// on `kernel` instead of an internal queue, so a host layer can compose
  /// several drives under one deterministic clock. The caller owns the
  /// kernel and is responsible for draining it; run_segment()/run()/
  /// run_open_loop() are disallowed in this mode (the host drives the
  /// simulation via service_external() and drains the shared kernel).
  /// A null `kernel` is identical to the legacy constructor.
  SsdSimulator(SsdConfig config, const reliability::BerModel& normal,
               const reliability::BerModel& reduced, EventQueue* kernel);

  /// Validated construction: fuses configuration, validation, and
  /// telemetry attachment into one path that reports bad configurations
  /// as a Status instead of aborting mid-constructor.
  ///
  ///   auto sim = SsdSimulator::Builder(normal, reduced)
  ///                  .config(cfg)
  ///                  .telemetry(&telemetry)  // optional
  ///                  .Build();
  ///   if (!sim.ok()) { /* surface sim.status().message() */ }
  class Builder {
   public:
    Builder(const reliability::BerModel& normal,
            const reliability::BerModel& reduced)
        : normal_(normal), reduced_(reduced) {}

    Builder& config(SsdConfig config) {
      config_ = std::move(config);
      return *this;
    }
    Builder& telemetry(telemetry::Telemetry* telemetry) {
      telemetry_ = telemetry;
      return *this;
    }
    /// Shared external event kernel (see the external-kernel constructor);
    /// nullptr (the default) keeps the drive's own queue.
    Builder& kernel(EventQueue* kernel) {
      kernel_ = kernel;
      return *this;
    }

    /// Validates, then constructs (a unique_ptr: the simulator holds
    /// reference members and is not movable).
    StatusOr<std::unique_ptr<SsdSimulator>> Build() const;

   private:
    const reliability::BerModel& normal_;
    const reliability::BerModel& reduced_;
    SsdConfig config_;
    telemetry::Telemetry* telemetry_ = nullptr;
    EventQueue* kernel_ = nullptr;
  };

  /// Fills `pages` logical pages with data aged log-uniformly over
  /// [min_prefill_age, max_prefill_age].
  void prefill(std::uint64_t pages);

  /// Runs a trace segment; results accumulate across calls (and are
  /// readable without a copy via results()).
  void run_segment(const std::vector<trace::Request>& requests);

  /// run_segment plus a copy of the accumulated results, for callers that
  /// want a self-contained snapshot.
  SsdResults run(const std::vector<trace::Request>& requests);

  /// Open-loop run: draws arrivals from `source` one at a time through a
  /// self-rescheduling arrival event (no pre-materialised trace), until
  /// the source is exhausted or `max_requests` have been drawn (0 = until
  /// exhaustion). Arrivals in the past are clamped to the current
  /// simulated time, so a source resumed across calls stays monotone.
  /// Results accumulate exactly as with run_segment().
  void run_open_loop(trace::RequestSource& source,
                     std::uint64_t max_requests = 0);

  /// Host-layer service entry (external-kernel mode): serves one request
  /// at simulated time `now` through the legacy synchronous path and
  /// returns its response latency. Chip occupancy, FTL mutations, and
  /// per-drive stats land exactly as under run_segment(); the caller owns
  /// draining the shared kernel afterwards. Requires a drive built with an
  /// external kernel and qos.enabled == false (the array layer does its
  /// own queueing above the drive).
  Duration service_external(const trace::Request& request, SimTime now);

  /// Out-of-band hotness feed for array-global AccessEval: runs the read
  /// policy's access-statistics update (Bloom hotness, HLO classification,
  /// a possible ReducedCell migration) for `lpn` as if it had been read at
  /// `now`, with zero latency cost and no disturb/wear side effects. This
  /// is how replica siblings of a drive that served a replicated read
  /// learn the array-wide access pattern. No-op for unmapped or buffered
  /// pages.
  void observe_read_access(std::uint64_t lpn, SimTime now);

  /// Accumulated read count of the block currently backing `lpn` (0 when
  /// unmapped) — the disturb-pressure signal the array's disturb-aware
  /// replica steering spreads across copies.
  std::uint64_t block_read_count(std::uint64_t lpn) const;

  /// LPNs whose reads in the *last* service_external() call hit a
  /// persistent integrity failure (misdirected write / torn relocation —
  /// the re-read could not cure them). External-kernel mode only; the
  /// array layer consults this right after dispatching a read command to
  /// drive replica failover + read-repair. Cleared at every
  /// service_external() entry.
  const std::vector<std::uint64_t>& integrity_failed_lpns() const {
    return integrity_failed_lpns_;
  }

  /// Read-repair write-back (array layer): rewrites `lpn` with fresh
  /// current-generation payload + seal (ftl::PageMappingFtl::repair) and
  /// schedules the program as background chip work. Requires
  /// SsdConfig::integrity on and a mapped, unbuffered lpn.
  void repair_page(std::uint64_t lpn, SimTime now);

  /// Does `lpn`'s mapped copy currently verify clean at the medium level
  /// (no transient roll)? Array read-repair uses it to decide whether a
  /// repair pass converged. True for buffered/unmapped lpns (DRAM-served
  /// reads bypass NAND seals entirely).
  bool page_verifies(std::uint64_t lpn) const;

  /// Is `lpn` currently dirty in the controller write buffer? Mirror
  /// audits skip version comparison for buffered pages: flush timing is
  /// drive-local, so sibling replicas legitimately disagree on how much
  /// of the same acknowledged write stream has reached NAND.
  bool page_buffered(std::uint64_t lpn) const {
    return buffer_.contains(lpn);
  }

  /// Folds policy/FTL/scheduler counters into results_ (the shared tail
  /// of run_segment and run_open_loop). Public so an external-kernel host
  /// can snapshot per-drive results after draining the shared kernel.
  void collect_results();

  /// Measurements accumulated since the last reset_measurements() —
  /// borrowed, valid until the next run_segment()/run() call mutates it.
  const SsdResults& results() const { return results_; }

  /// Clears accumulated measurements (response stats, counters, FTL deltas,
  /// chip counters) while keeping all simulator state — call between a
  /// warmup pass and the measured pass to observe steady-state behaviour.
  void reset_measurements();

  /// Drains every dirty write-buffer page to NAND at the current simulated
  /// time (fsync). Acked-but-volatile writes become durable; a no-op when
  /// the buffer is clean.
  void flush_barrier();

  /// Power loss at the current simulated time: pending events are dropped
  /// (in-flight NAND work and unserviced requests vanish), dirty buffer
  /// pages are lost, and the simulator refuses further run_segment() work
  /// until mount(). Called by the crash-armed run loop when the injector
  /// picks an event boundary, and callable directly to model a cord pull
  /// at end of trace.
  void power_loss();

  /// Power-on after power_loss(): rebuilds the FTL from OOB metadata
  /// (ftl::PageMappingFtl::Mount), replays the recovered ReducedCell
  /// membership through the read policy, and charges the OOB scan time to
  /// results().mount_time (and a "mount" telemetry span). Also legal on a
  /// non-crashed simulator (clean remount). Clears the crashed() latch.
  ftl::MountReport mount();

  /// True after power_loss() until the next mount().
  bool crashed() const { return crashed_; }
  /// Event ordinal (EventQueue::fired()) at which the last power loss hit.
  std::uint64_t crash_event_ordinal() const { return crash_ordinal_; }

  /// Durability ledger: durable_versions()[lpn] is the per-LPN write
  /// version (ftl::PageMappingFtl::data_version numbering) of the last
  /// write to `lpn` that was *programmed to NAND*; 0 if never durable.
  /// The crash harness checks it against the mounted FTL: every entry
  /// here must survive a crash+mount.
  const std::vector<std::uint64_t>& durable_versions() const {
    return durable_version_;
  }

  const ftl::PageMappingFtl& ftl() const { return ftl_; }
  const ChipScheduler& scheduler() const { return scheduler_; }

  /// Attaches a telemetry context to every layer (event kernel, chip
  /// scheduler, FTL, read policy, and the simulator's own counters);
  /// nullptr detaches. Instrumentation only observes: results are
  /// bit-identical with and without a context attached (see telemetry.h).
  void attach_telemetry(telemetry::Telemetry* telemetry);

 private:
  /// One page read's response and its component decomposition (integer
  /// ns; the components sum to `response` exactly).
  struct PageService {
    Duration response = 0;
    Duration wait = 0;      ///< chip-queue wait
    Duration sense = 0;     ///< die busy
    Duration transfer = 0;  ///< channel busy
    Duration decode = 0;    ///< controller busy
    Duration buffer = 0;    ///< DRAM service (buffer hit / unmapped)
  };

  /// One in-flight request in QoS mode: slot-pooled so the steady state
  /// allocates nothing; `tag` handed to the scheduler is the slot index.
  struct QosRequest {
    SimTime arrival = 0;
    std::uint64_t lpn = 0;
    std::uint32_t pages = 1;
    std::uint16_t tenant = 0;
    bool is_write = false;
    /// Queued chip commands still outstanding, plus an issue guard held
    /// while the request's pages are being issued (so a synchronous
    /// completion cannot finalize a half-issued request).
    std::uint32_t outstanding = 0;
    PageService slowest;          ///< reads: slowest page's decomposition
    Duration write_response = 0;  ///< writes: slowest page ack latency
  };

  Duration service_request(const trace::Request& request, SimTime now);
  void service_request_qos(const trace::Request& request, SimTime now);
  /// SLO admission predicate (qos.slo_read_admission): true when every
  /// page of this read is predicted to meet its deadline budget.
  bool slo_admit_read(const trace::Request& request, SimTime now);
  void issue_read_page_qos(std::uint64_t lpn, std::uint64_t slot,
                           std::uint8_t priority, SimTime now);
  void issue_write_page_qos(std::uint64_t lpn, std::uint64_t slot,
                            std::uint8_t priority, SimTime now);
  void on_qos_complete(const QosCompletion& done) override;
  void finalize_qos(std::uint64_t slot, SimTime completion);
  /// Shared stat-recording tail of both service paths.
  void record_request_stats(bool is_write, std::uint16_t tenant,
                            Duration response, const PageService& slowest,
                            SimTime arrival, std::uint64_t lpn,
                            std::uint32_t pages);
  std::uint16_t tenant_of(const trace::Request& request) const {
    return static_cast<std::uint16_t>(
        std::min<std::uint32_t>(request.tenant, tenant_count_ - 1));
  }
  /// Schedules the next open-loop arrival from open_loop_source_.
  void pump_open_loop();
  /// Runs the event queue dry (crash-armed when injection is on).
  void drain_events();
  PageService service_read_page(std::uint64_t lpn, SimTime now);
  Duration service_write_page(std::uint64_t lpn, SimTime now);
  /// Shared read-back verification hook of both read paths (no-op values
  /// when integrity is off): counts verified/mismatch/undetected reads
  /// and records persistent failures for the array layer. Returns the
  /// (integrity_ok, integrity_persistent) pair for the ReadContext.
  std::pair<bool, bool> verify_read_page(std::uint64_t lpn,
                                         const ftl::PageInfo& info);
  /// Programs one buffered page to NAND and records it durable.
  void flush_victim(std::uint64_t lpn, SimTime now);
  /// Marks lpn's *current* FTL version as the durable one.
  void mark_durable(std::uint64_t lpn);
  void flush_barrier_at(SimTime now);
  /// Resets `results_` to empty, with `sensing_level_reads` sized to the
  /// ladder (shared by the constructor and reset_measurements()).
  void clear_results();
  /// Sensing requirement of one read — a thin delegation to
  /// channel_.assess() (which owns the BER cache, the disturb models, and
  /// the threshold-tracking state).
  int required_levels_cached(bool reduced, std::uint32_t pe, Hours age,
                             std::uint64_t ppn, std::uint64_t block_reads,
                             bool* correctable);

  SsdConfig config_;
  const reliability::BerModel& normal_model_;
  const reliability::BerModel& reduced_model_;
  /// The channel<->decoder seam: BER composition (wear/age cache +
  /// disturb), sensing ladder, threshold tracking, decode calibration.
  /// Declared before policy_ (construction order: the policy captures the
  /// ladder reference).
  reliability::ReadChannel channel_;
  ftl::PageMappingFtl ftl_;
  ftl::WriteBuffer buffer_;
  /// The drive's own kernel, idle when an external kernel is supplied;
  /// events_ binds to one or the other at construction so every use site
  /// is oblivious to the mode.
  EventQueue own_events_;
  EventQueue& events_;
  const bool external_kernel_ = false;
  ChipScheduler scheduler_;
  /// Null unless config_.faults.enabled; attached to ftl_ and the read
  /// policy's recovery decorator. Declared before policy_ (construction
  /// order: the policy captures the pointer).
  std::unique_ptr<faults::FaultInjector> injector_;
  std::unique_ptr<ReadPolicy> policy_;
  /// Per-LBA data birth time for AgeModel::kStaticPerLba (prefill only).
  std::vector<SimTime> static_birth_;
  Rng rng_;
  SsdResults results_;
  /// Pooled per-read attempt scratch for latency-breakdown tracing; reused
  /// across reads so the tracing path stops allocating per request.
  std::vector<ReadAttempt> attempts_scratch_;
  ftl::FtlStats prefill_stats_;
  /// Per-LPN durable version ledger (see durable_versions()).
  std::vector<std::uint64_t> durable_version_;
  bool crashed_ = false;
  std::uint64_t crash_ordinal_ = 0;
  /// config_.integrity.enabled, hoisted for the read hot path.
  bool integrity_mode_ = false;
  /// Persistent integrity failures of the last service_external() call
  /// (see integrity_failed_lpns()).
  std::vector<std::uint64_t> integrity_failed_lpns_;
  /// kFlushBarrier: acked host page writes since the last barrier.
  std::uint64_t acked_since_barrier_ = 0;
  /// QoS mode (config_.qos.enabled) state: request slot pool + free list,
  /// per-tenant in-flight counts for admission control, and the slot
  /// high-water gauge.
  bool qos_mode_ = false;
  std::uint32_t tenant_count_ = 1;
  /// SLO admission (qos.slo_read_admission): conservative worst-case
  /// per-page service estimate (full progressive ladder walk, plus the
  /// recovery re-read when fault injection is armed), and per-chip scratch
  /// accumulating the estimates of pages admitted earlier in the *same*
  /// request (slo_touched_ lists the dirtied entries for O(pages) reset).
  Duration slo_service_estimate_ = 0;
  std::vector<Duration> slo_extra_;
  std::vector<std::uint32_t> slo_touched_;
  std::vector<QosRequest> qos_requests_;
  std::vector<std::uint64_t> qos_free_slots_;
  std::vector<std::uint64_t> qos_outstanding_;
  std::uint64_t qos_slots_high_water_ = 0;
  /// Open-loop pump state: the prefetched next request and how many more
  /// the current run_open_loop() call may draw.
  trace::RequestSource* open_loop_source_ = nullptr;
  trace::Request open_loop_next_;
  std::uint64_t open_loop_remaining_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::MetricsRegistry::Counter* requests_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* reads_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* writes_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* buffer_hits_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* unmapped_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* uncorrectable_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* acked_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* durable_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* crashes_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* integrity_verified_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* integrity_mismatch_metric_ = nullptr;
  /// Per-tenant counters (tenant.<i>.reads/.writes/.rejected), sized
  /// tenant_count_ when telemetry is attached.
  std::vector<telemetry::MetricsRegistry::Counter*> tenant_reads_metrics_;
  std::vector<telemetry::MetricsRegistry::Counter*> tenant_writes_metrics_;
  std::vector<telemetry::MetricsRegistry::Counter*> tenant_rejected_metrics_;
  Histogram* read_latency_us_hist_ = nullptr;
};

}  // namespace flex::ssd
