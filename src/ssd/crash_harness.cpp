#include "ssd/crash_harness.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace flex::ssd {

CrashVerdict run_crash_point(SsdConfig config,
                             const std::vector<trace::Request>& requests,
                             std::uint64_t crash_salt,
                             std::uint64_t prefill_pages,
                             const reliability::BerModel& normal,
                             const reliability::BerModel& reduced) {
  config.faults.crash_salt = crash_salt;
  const bool integrity = config.integrity.enabled;
  SsdSimulator sim(std::move(config), normal, reduced);
  sim.prefill(prefill_pages);
  sim.run_segment(requests);

  CrashVerdict verdict;
  verdict.crashed_mid_trace = sim.crashed();
  // A salt whose hash never crosses the rate threshold mid-trace still
  // exercises recovery: pull the cord at the end of the trace.
  if (!sim.crashed()) sim.power_loss();
  verdict.crash_ordinal = sim.crash_event_ordinal();
  verdict.writes_acked = sim.results().writes_acked;
  verdict.writes_durable = sim.results().writes_durable;
  verdict.dirty_lost = sim.results().dirty_buffer_pages;

  // Snapshot the pre-mount ground truth the invariants are checked
  // against. The durable ledger is maintained by the simulator outside
  // the FTL, so Mount() cannot "recover" it into agreement by accident.
  const std::vector<std::uint32_t> retired_before =
      sim.ftl().retired_block_ids();
  const std::vector<std::uint64_t> ledger = sim.durable_versions();

  verdict.report = sim.mount();
  verdict.stale_records = verdict.report.stale_records;
  verdict.mount_time = sim.results().mount_time;

  const ftl::PageMappingFtl& ftl = sim.ftl();
  // Invariant 1: every acknowledged-durable write survives at its exact
  // version (relocations preserve the version, so newer is as wrong as
  // missing).
  for (std::uint64_t lpn = 0; lpn < ledger.size(); ++lpn) {
    if (ledger[lpn] == 0) continue;
    if (!ftl.lookup(lpn).has_value() ||
        ftl.data_version(lpn) != ledger[lpn]) {
      ++verdict.lost_acknowledged;
    }
  }
  // Data audit: for every surviving ledger entry, re-derive the payload
  // the host was promised and compare it (and its seal) against what the
  // medium actually holds. A crash may legitimately lose unacknowledged
  // data; it must never *silently* corrupt acknowledged data.
  if (integrity) {
    for (std::uint64_t lpn = 0; lpn < ledger.size(); ++lpn) {
      if (ledger[lpn] == 0) continue;
      if (!ftl.lookup(lpn).has_value() ||
          ftl.data_version(lpn) != ledger[lpn]) {
        continue;  // already counted under lost_acknowledged
      }
      const ftl::DataAudit audit = ftl.audit_data(lpn, ledger[lpn]);
      ++verdict.data_checked;
      if (!audit.payload_ok) {
        if (audit.seal_ok) {
          ++verdict.data_corrupt_undetected;
        } else {
          ++verdict.data_corrupt_detected;
        }
      }
    }
  }
  // Invariant 2: recovery resolved every OOB conflict to one winner.
  verdict.double_mapped = ftl.double_mapped_lpns();
  // Invariant 3: block retirement is durable (summary pages survive).
  const std::vector<std::uint32_t> retired_after = ftl.retired_block_ids();
  verdict.retired_ledger_ok =
      std::includes(retired_after.begin(), retired_after.end(),
                    retired_before.begin(), retired_before.end());
  // Structural self-checks of the rebuilt FTL.
  const Status status = ftl.check_consistency();
  verdict.consistent = status.ok();
  if (!status.ok()) verdict.consistency_message = status.message();
  return verdict;
}

}  // namespace flex::ssd
