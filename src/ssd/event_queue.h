// Deterministic discrete-event kernel for the SSD simulator.
//
// A time-ordered priority queue of callbacks with stable sequence-number
// tie-breaking: events scheduled for the same simulated instant execute in
// the order they were scheduled. Determinism is load-bearing — identical
// seeds must give bit-identical results, including when independent
// simulations run on different threads of the bench harness — so the
// kernel holds no global state and draws no entropy of its own.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"
#include "telemetry/telemetry.h"

namespace flex::ssd {

class EventQueue {
 public:
  /// The callback receives the simulated time the event fires at.
  using Callback = std::function<void(SimTime)>;

  /// Schedules `callback` at `when`. Events at the same `when` fire in
  /// scheduling order (sequence numbers never tie).
  void schedule(SimTime when, Callback callback);

  /// Pops and runs the earliest event; returns false when none is pending.
  bool run_next();

  /// Drains the queue, including events scheduled by running events.
  void run_all();

  /// Discards every pending event without firing it — power loss. The
  /// clock (`now()`) and the fired/sequence counters are preserved so a
  /// post-crash mount continues on the same timeline.
  /// Returns the number of events dropped.
  std::size_t drop_pending();

  /// Time of the most recently fired event.
  SimTime now() const { return now_; }
  std::size_t pending() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  /// Total events fired since construction.
  std::uint64_t fired() const { return fired_; }

  /// Binds the kernel's counters into `telemetry` (see telemetry.h for
  /// the null-sink contract); nullptr detaches.
  void attach_telemetry(telemetry::Telemetry* telemetry);

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback callback;
  };
  // std::priority_queue is a max-heap: "greater" means "fires later".
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  SimTime now_ = 0;
  telemetry::MetricsRegistry::Counter* scheduled_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* fired_metric_ = nullptr;
};

}  // namespace flex::ssd
