// Deterministic discrete-event kernel for the SSD simulator.
//
// Two pending-event lanes over a slab of fixed-size POD event records:
//  * a sorted FIFO lane for the common monotone case — the simulator
//    pre-schedules every trace arrival in nondecreasing time order, so
//    those events need no heap at all, just an append and a head cursor;
//  * an indexed 4-ary min-heap for everything scheduled out of order
//    (chip completions land before already-queued arrivals). The heap
//    only ever holds the in-flight dynamic events (tens), not the whole
//    trace (hundreds of thousands), which keeps sift depth tiny.
// An event is appended to the FIFO lane iff its (when, seq) key is >= the
// lane's last entry (seq is monotone, so `when >= back.when` suffices);
// run_next() fires the smaller of the two lane heads. Determinism is
// load-bearing — identical seeds must give bit-identical results,
// including when independent simulations run on different threads of the
// bench harness — so the kernel holds no global state and draws no entropy
// of its own.
//
// Ordering contract (the tie-break rule): every schedule() call stamps the
// event with a 64-bit ordinal (`seq`) taken from a monotonically increasing
// counter that never repeats and never resets (not even across power loss —
// see drop_pending()). Events are fired in lexicographic (when, seq) order,
// so events scheduled for the same simulated instant fire in exactly the
// order they were scheduled. The ordinal is part of the heap entry, not a
// fallback comparator detail: any future heap implementation must preserve
// (when, seq) as the total order or byte-identical replay breaks.
//
// Memory contract: callbacks are stored inline in the event record (no
// std::function, no per-event heap allocation). The slab and heap grow to
// the high-water mark of pending events and are reused thereafter, so the
// steady state allocates nothing. Callables must be trivially copyable and
// at most kInlineStorage bytes — in practice small capturing lambdas like
// `[this, chip]`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "common/units.h"
#include "telemetry/telemetry.h"

namespace flex::ssd {

class EventQueue {
 public:
  /// Max inline callable size; sized for `this` plus two words of capture.
  static constexpr std::size_t kInlineStorage = 24;

  /// Handle for cancel(). `gen` guards against slot reuse: a handle goes
  /// stale the moment its event fires, is cancelled, or is dropped.
  struct EventId {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  /// Schedules `fn` at `when`. Events at the same `when` fire in
  /// scheduling order (ordinals never tie). The callable is copied into
  /// the event record; it receives the simulated time the event fires at.
  template <class Fn>
  EventId schedule(SimTime when, Fn fn) {
    static_assert(std::is_trivially_copyable_v<Fn>,
                  "event callables are memcpy'd into a POD slab record");
    static_assert(sizeof(Fn) <= kInlineStorage,
                  "callable capture exceeds inline event storage");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    const std::uint32_t slot = acquire_slot();
    Record& record = slab_[slot];
    record.invoke = [](const void* storage, SimTime now) {
      // The blob is a byte-copy of a trivially copyable Fn; run_next()
      // copies it to a stack buffer before the call, so re-entrant
      // schedule() calls cannot clobber it mid-invoke.
      (*std::launder(reinterpret_cast<const Fn*>(storage)))(now);
    };
    std::memcpy(record.storage, &fn, sizeof(Fn));
    const EventId id{slot, record.gen};
    push_queued(slot, when);
    return id;
  }

  /// Removes a pending event without firing it. Returns false when the
  /// handle is stale (already fired, cancelled, or dropped). The event's
  /// ordinal is consumed either way; cancelling never renumbers survivors.
  bool cancel(EventId id);

  /// Pops and runs the earliest event; returns false when none is pending.
  bool run_next();

  /// Drains the queue, including events scheduled by running events.
  void run_all();

  /// Discards every pending event without firing it — power loss. The
  /// clock (`now()`) and the fired/ordinal counters are preserved so a
  /// post-crash mount continues on the same timeline.
  /// Returns the number of events dropped.
  std::size_t drop_pending();

  /// Time of the most recently fired event.
  SimTime now() const { return now_; }
  std::size_t pending() const { return heap_.size() + fifo_live_; }
  bool empty() const { return pending() == 0; }
  /// Total events fired since construction.
  std::uint64_t fired() const { return fired_; }
  /// Slab high-water mark: number of event records ever allocated. Stops
  /// growing once the pending-event peak is reached (slots are recycled).
  std::size_t slab_slots() const { return slab_.size(); }

  /// Binds the kernel's counters into `telemetry` (see telemetry.h for
  /// the null-sink contract); nullptr detaches.
  void attach_telemetry(telemetry::Telemetry* telemetry);

 private:
  /// Marks a slot as not currently pending in either lane.
  static constexpr std::uint32_t kNotQueued = 0xffffffffu;
  /// Tag bit in Record::heap_pos: set = index into the FIFO lane, clear =
  /// index into the heap lane.
  static constexpr std::uint32_t kFifoTag = 0x80000000u;

  /// Slab record. POD by construction: the callable is a trivially
  /// copyable capture blob plus a type-erasing invoke thunk.
  struct Record {
    void (*invoke)(const void* storage, SimTime now) = nullptr;
    alignas(std::max_align_t) unsigned char storage[kInlineStorage];
    std::uint32_t gen = 0;
    /// Pending position: kNotQueued, heap index, or kFifoTag | fifo index.
    std::uint32_t heap_pos = kNotQueued;
  };

  /// Lane entries carry the full (when, seq) sort key so compares stay
  /// inside the contiguous lane arrays instead of chasing into the slab.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void push_queued(std::uint32_t slot, SimTime when);
  void heap_remove(std::size_t pos);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);

  std::vector<Record> slab_;
  std::vector<std::uint32_t> free_slots_;  ///< LIFO recycle stack
  std::vector<HeapEntry> heap_;            ///< 4-ary min-heap on (when, seq)
  /// Sorted FIFO lane: entries appended in nondecreasing (when, seq),
  /// consumed from fifo_head_. Cancelled entries become tombstones
  /// (slot == kNotQueued) and are skipped at the head. The vector is
  /// recycled (cleared, not shrunk) once fully consumed.
  std::vector<HeapEntry> fifo_;
  std::size_t fifo_head_ = 0;
  std::size_t fifo_live_ = 0;  ///< non-tombstone entries in fifo_
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  SimTime now_ = 0;
  telemetry::MetricsRegistry::Counter* scheduled_metric_ = nullptr;
  telemetry::MetricsRegistry::Counter* fired_metric_ = nullptr;
};

}  // namespace flex::ssd
