#include "ssd/event_queue.h"

#include <algorithm>

#include "common/assert.h"

namespace flex::ssd {

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  FLEX_ASSERT(slab_.size() < kNotQueued);
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Record& record = slab_[slot];
  record.invoke = nullptr;
  record.heap_pos = kNotQueued;
  ++record.gen;  // stale handles to this slot now fail cancel()
  free_slots_.push_back(slot);
}

void EventQueue::push_queued(std::uint32_t slot, SimTime when) {
  const std::uint64_t seq = next_seq_++;
  // Monotone schedules (trace arrivals, end-of-trace completions) take the
  // FIFO lane: seq is monotone, so `when >= back.when` keeps the lane
  // sorted by (when, seq). Everything else goes through the heap.
  if (fifo_.empty() || when >= fifo_.back().when) {
    FLEX_ASSERT(fifo_.size() < kFifoTag);
    fifo_.push_back(HeapEntry{when, seq, slot});
    slab_[slot].heap_pos =
        kFifoTag | static_cast<std::uint32_t>(fifo_.size() - 1);
    ++fifo_live_;
  } else {
    heap_.push_back(HeapEntry{when, seq, slot});
    slab_[slot].heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
  }
  if (scheduled_metric_) ++scheduled_metric_->value;
}

bool EventQueue::cancel(EventId id) {
  if (id.slot >= slab_.size()) return false;
  Record& record = slab_[id.slot];
  if (record.gen != id.gen || record.heap_pos == kNotQueued) return false;
  if (record.heap_pos & kFifoTag) {
    // FIFO entries tombstone in place (the lane must stay sorted);
    // run_next() skips tombstones at the head.
    HeapEntry& entry = fifo_[record.heap_pos & ~kFifoTag];
    FLEX_ASSERT(entry.slot == id.slot);
    entry.slot = kNotQueued;
    --fifo_live_;
  } else {
    heap_remove(record.heap_pos);
  }
  release_slot(id.slot);
  return true;
}

bool EventQueue::run_next() {
  // Tombstoned (cancelled) FIFO entries are dead; skip them so the head
  // compare below always sees a live candidate.
  while (fifo_head_ < fifo_.size() && fifo_[fifo_head_].slot == kNotQueued) {
    ++fifo_head_;
  }
  const bool have_fifo = fifo_head_ < fifo_.size();
  if (!have_fifo && fifo_head_ != 0) {
    // Lane fully consumed: recycle the storage, keep the capacity.
    fifo_.clear();
    fifo_head_ = 0;
  }
  if (!have_fifo && heap_.empty()) return false;
  HeapEntry top;
  if (have_fifo && (heap_.empty() || before(fifo_[fifo_head_], heap_[0]))) {
    top = fifo_[fifo_head_];
    ++fifo_head_;
    --fifo_live_;
  } else {
    top = heap_[0];
    heap_remove(0);
  }
  Record& record = slab_[top.slot];
  // Copy the callable out of the slab before releasing the slot: the
  // callback may re-enter schedule() and reuse this very record.
  auto* const invoke = record.invoke;
  alignas(std::max_align_t) unsigned char storage[kInlineStorage];
  std::memcpy(storage, record.storage, kInlineStorage);
  release_slot(top.slot);
  now_ = top.when;
  ++fired_;
  if (fired_metric_) ++fired_metric_->value;
  invoke(storage, top.when);
  return true;
}

void EventQueue::run_all() {
  while (run_next()) {
  }
}

std::size_t EventQueue::drop_pending() {
  const std::size_t dropped = heap_.size() + fifo_live_;
  // Release in heap order, then FIFO order (deterministic), so the
  // post-crash free stack — and therefore slot reuse — replays identically
  // run-to-run.
  for (const HeapEntry& entry : heap_) release_slot(entry.slot);
  heap_.clear();
  for (std::size_t i = fifo_head_; i < fifo_.size(); ++i) {
    if (fifo_[i].slot != kNotQueued) release_slot(fifo_[i].slot);
  }
  fifo_.clear();
  fifo_head_ = 0;
  fifo_live_ = 0;
  return dropped;
}

void EventQueue::heap_remove(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  heap_[pos] = heap_[last];
  slab_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
  heap_.pop_back();
  // The displaced last element may violate order in exactly one direction.
  if (pos > 0 && before(heap_[pos], heap_[(pos - 1) / 4])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
}

void EventQueue::sift_up(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!before(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slab_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = entry;
  slab_[entry.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void EventQueue::sift_down(std::size_t pos) {
  const std::size_t size = heap_.size();
  const HeapEntry entry = heap_[pos];
  while (true) {
    const std::size_t first_child = pos * 4 + 1;
    if (first_child >= size) break;
    const std::size_t last_child = std::min(first_child + 4, size);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], entry)) break;
    heap_[pos] = heap_[best];
    slab_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  slab_[entry.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void EventQueue::attach_telemetry(telemetry::Telemetry* telemetry) {
  if (!telemetry) {
    scheduled_metric_ = nullptr;
    fired_metric_ = nullptr;
    return;
  }
  scheduled_metric_ = &telemetry->metrics.counter("event_queue.scheduled");
  fired_metric_ = &telemetry->metrics.counter("event_queue.fired");
}

}  // namespace flex::ssd
