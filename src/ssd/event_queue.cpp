#include "ssd/event_queue.h"

#include <utility>

namespace flex::ssd {

void EventQueue::schedule(SimTime when, Callback callback) {
  heap_.push(Event{when, next_seq_++, std::move(callback)});
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  // std::priority_queue::top() is const; the callback must be moved out
  // before pop() so re-entrant schedule() calls from inside it are safe.
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = event.when;
  ++fired_;
  event.callback(event.when);
  return true;
}

void EventQueue::run_all() {
  while (run_next()) {
  }
}

}  // namespace flex::ssd
