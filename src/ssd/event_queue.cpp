#include "ssd/event_queue.h"

#include <utility>

namespace flex::ssd {

void EventQueue::schedule(SimTime when, Callback callback) {
  heap_.push(Event{when, next_seq_++, std::move(callback)});
  if (scheduled_metric_) ++scheduled_metric_->value;
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  // std::priority_queue::top() is const; the callback must be moved out
  // before pop() so re-entrant schedule() calls from inside it are safe.
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = event.when;
  ++fired_;
  if (fired_metric_) ++fired_metric_->value;
  event.callback(event.when);
  return true;
}

void EventQueue::run_all() {
  while (run_next()) {
  }
}

std::size_t EventQueue::drop_pending() {
  const std::size_t dropped = heap_.size();
  heap_ = {};
  return dropped;
}

void EventQueue::attach_telemetry(telemetry::Telemetry* telemetry) {
  if (!telemetry) {
    scheduled_metric_ = nullptr;
    fired_metric_ = nullptr;
    return;
  }
  scheduled_metric_ = &telemetry->metrics.counter("event_queue.scheduled");
  fired_metric_ = &telemetry->metrics.counter("event_queue.fired");
}

}  // namespace flex::ssd
