// Standard MLC Gray mapping (paper §2.1): bit pairs 11, 10, 00, 01 map to
// V_th levels 0, 1, 2, 3, so any single-level distortion flips exactly one
// bit. The LSB belongs to the lower page, the MSB to the upper page.
#pragma once

#include <cstdint>

namespace flex::nand {

struct BitPair {
  std::uint8_t lsb = 0;  ///< lower-page bit
  std::uint8_t msb = 0;  ///< upper-page bit

  bool operator==(const BitPair&) const = default;
};

/// Level -> bits. `level` must be in [0, 3].
BitPair mlc_gray_decode(int level);

/// Bits -> level.
int mlc_gray_encode(BitPair bits);

/// Hamming distance between the bit pairs of two levels (used by tests to
/// prove the Gray property: adjacent levels differ in exactly one bit).
int mlc_bit_distance(int level_a, int level_b);

}  // namespace flex::nand
