// A wordline x bitline grid of floating-gate cells with programming-order-
// aware cell-to-cell interference (paper Eq. 2).
//
// Programming follows the even/odd bitline discipline of Fig. 1(a): within
// each wordline, even bitlines are programmed before odd ones, and
// wordlines are programmed in order. When an aggressor cell's V_th rises by
// dVp, every neighbour that was already finalised receives gamma * dVp,
// with gamma chosen per direction (bitline gamma_x, wordline gamma_y,
// diagonal gamma_xy). Cells that are programmed later re-verify and absorb
// earlier coupling, so they take no shift — which is exactly why victims
// only ever see aggressors that come after them in program order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "nand/level_config.h"

namespace flex::nand {

/// Capacitive coupling ratios; defaults are the paper's values from [17].
struct CouplingRatios {
  double gamma_x = 0.07;   ///< adjacent bitline, same wordline
  double gamma_y = 0.09;   ///< adjacent wordline, same bitline
  double gamma_xy = 0.005; ///< diagonal
  /// Fraction of an aggressor's total V_th swing that couples *after* the
  /// victim's final program-verify. Real two-step MLC programming absorbs
  /// the bulk of the interference during the victim's own later ISPP
  /// verifies (Dong et al. [18] model the last-step shift only); modelling
  /// the full 0 -> target swing would overstate C2C several-fold. The
  /// default is calibrated so the baseline cell's C2C BER stays below the
  /// hard-decision cap at 0 days, as the paper's Table 5 requires.
  double effective_delta_fraction = 0.65;
};

class CellArray {
 public:
  CellArray(int wordlines, int bitlines);

  int wordlines() const { return wordlines_; }
  int bitlines() const { return bitlines_; }
  int cells() const { return wordlines_ * bitlines_; }

  /// Erases the array and programs every cell to `targets[w * bitlines + b]`
  /// (target levels valid for `config`), applying C2C interference in
  /// even/odd program order. Erased cells (target 0) are finalised from the
  /// start and accumulate interference from every later aggressor.
  void program(const LevelConfig& config, std::span<const int> targets,
               const CouplingRatios& coupling, Rng& rng);

  /// Current V_th including all applied noise.
  Volt vth(int w, int b) const;
  /// V_th right after the cell's own programming, before any interference —
  /// the `x` that enters the retention model (Eq. 3).
  Volt programmed_vth(int w, int b) const;
  /// Per-cell erased-state sample; the retention model's x0.
  Volt erased_vth(int w, int b) const;
  int target_level(int w, int b) const;

  /// Applies an additive V_th shift (used by the retention model; negative
  /// values model charge loss).
  void shift_vth(int w, int b, Volt delta);

 private:
  std::size_t index(int w, int b) const;

  int wordlines_;
  int bitlines_;
  std::vector<Volt> vth_;
  std::vector<Volt> programmed_vth_;
  std::vector<Volt> erased_vth_;
  std::vector<int> targets_;
};

}  // namespace flex::nand
