// V_th level configurations for MLC NAND cells.
//
// A LevelConfig captures everything the reliability models need about how a
// cell's threshold-voltage window is partitioned: the erased-state
// distribution, the program-verify voltage and ISPP step of each programmed
// level, and the read reference voltages separating the levels.
//
// Two families are used in the paper:
//  * the normal state: 4 levels, verify set close to the lower read
//    reference (Fig. 4(a)) — our reconstructed baseline;
//  * the reduced state: 3 levels with NUNMA verify/read voltages (Table 3).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace flex::nand {

class LevelConfig {
 public:
  /// `read_refs[i]` separates level i from level i+1 (size = levels-1);
  /// `verifies[i]` is the program-verify voltage of level i+1 (same size).
  /// `vpp` is the ISPP step: a programmed V_th lands uniformly in
  /// [verify, verify + vpp]. The erased level 0 is N(erased_mean,
  /// erased_sigma^2).
  LevelConfig(std::string name, std::vector<Volt> read_refs,
              std::vector<Volt> verifies, Volt vpp, Volt erased_mean = 1.1,
              Volt erased_sigma = 0.35);

  /// The reconstructed normal-state MLC baseline: 4 levels, read references
  /// {2.25, 2.95, 3.65}, verify voltages {2.30, 3.00, 3.70} (offset 0.05,
  /// "close to the lower read reference"; the exact offset is the one free
  /// parameter of the reconstruction, calibrated against the paper's
  /// Table 4/5 — see DESIGN.md §5), V_pp = 0.15 as in Table 3.
  static LevelConfig baseline_mlc();

  const std::string& name() const { return name_; }
  int levels() const { return static_cast<int>(read_refs_.size()) + 1; }
  Volt read_ref(int boundary) const;   ///< boundary in [0, levels-2]
  Volt verify(int level) const;        ///< level in [1, levels-1]
  Volt vpp() const { return vpp_; }
  Volt erased_mean() const { return erased_mean_; }
  Volt erased_sigma() const { return erased_sigma_; }

  /// Nominal (mid-distribution) V_th of a level, for margin reporting.
  Volt nominal(int level) const;

  /// Draws a freshly-programmed V_th for `level`.
  Volt sample_vth(int level, Rng& rng) const;

  /// Level decision against the read references.
  int read_level(Volt vth) const;

  /// Retention noise margin of a programmed level: verify - lower read ref
  /// (the paper's Fig. 4 definition, before the ISPP placement).
  Volt retention_margin(int level) const;

  /// C2C noise margin: upper read ref - (verify + vpp); +inf for the top
  /// level, which has no upper reference.
  Volt c2c_margin(int level) const;

 private:
  std::string name_;
  std::vector<Volt> read_refs_;
  std::vector<Volt> verifies_;
  Volt vpp_;
  Volt erased_mean_;
  Volt erased_sigma_;
};

}  // namespace flex::nand
