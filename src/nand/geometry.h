// Chip geometry and operation timing (paper Table 6), plus address helpers.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace flex::nand {

/// Specification of the simulated MLC NAND part. Defaults reproduce the
/// paper's Table 6; the SSD benches scale `blocks_per_chip` / chip count to
/// keep run times tractable (documented in EXPERIMENTS.md).
struct NandSpec {
  std::uint32_t page_size_bytes = 16 * 1024;    // 16 KB
  std::uint32_t pages_per_block = 64;           // 1 MB block / 16 KB page
  std::uint32_t blocks_per_chip = 4096;         // Table 6 block number
  std::uint32_t chips = 64;                     // 64 x 4 GB = 256 GB raw

  Duration program_latency = 1000 * kMicrosecond;
  Duration read_latency = 90 * kMicrosecond;
  Duration erase_latency = 3 * kMillisecond;

  /// ONFI-style bus transfer time for one full page (used for the soft-read
  /// extra-data transfer penalty); 16 KB at 400 MB/s.
  Duration page_transfer_latency = 40 * kMicrosecond;

  std::uint64_t pages_per_chip() const {
    return static_cast<std::uint64_t>(blocks_per_chip) * pages_per_block;
  }
  std::uint64_t total_pages() const { return pages_per_chip() * chips; }
  std::uint64_t total_bytes() const {
    return total_pages() * page_size_bytes;
  }
};

/// Physical page address decomposed from a flat page index.
struct PageAddress {
  std::uint32_t chip = 0;
  std::uint32_t block = 0;   // block within chip
  std::uint32_t page = 0;    // page within block

  bool operator==(const PageAddress&) const = default;
};

PageAddress decompose(const NandSpec& spec, std::uint64_t flat_page);
std::uint64_t flatten(const NandSpec& spec, const PageAddress& addr);

}  // namespace flex::nand
