#include "nand/gray_code.h"

#include "common/assert.h"

namespace flex::nand {
namespace {

// (lsb, msb) per level: 11, 10, 00, 01.
constexpr BitPair kMap[4] = {
    {.lsb = 1, .msb = 1},
    {.lsb = 1, .msb = 0},
    {.lsb = 0, .msb = 0},
    {.lsb = 0, .msb = 1},
};

}  // namespace

BitPair mlc_gray_decode(int level) {
  FLEX_EXPECTS(level >= 0 && level < 4);
  return kMap[level];
}

int mlc_gray_encode(BitPair bits) {
  for (int level = 0; level < 4; ++level) {
    if (kMap[level] == bits) return level;
  }
  FLEX_ASSERT(false && "unreachable: all four bit pairs are mapped");
  return -1;
}

int mlc_bit_distance(int level_a, int level_b) {
  const BitPair a = mlc_gray_decode(level_a);
  const BitPair b = mlc_gray_decode(level_b);
  return (a.lsb != b.lsb ? 1 : 0) + (a.msb != b.msb ? 1 : 0);
}

}  // namespace flex::nand
