#include "nand/cell_array.h"

#include "common/assert.h"

namespace flex::nand {

CellArray::CellArray(int wordlines, int bitlines)
    : wordlines_(wordlines), bitlines_(bitlines) {
  FLEX_EXPECTS(wordlines >= 1);
  FLEX_EXPECTS(bitlines >= 2);
  const auto n = static_cast<std::size_t>(cells());
  vth_.assign(n, 0.0);
  programmed_vth_.assign(n, 0.0);
  erased_vth_.assign(n, 0.0);
  targets_.assign(n, 0);
}

std::size_t CellArray::index(int w, int b) const {
  FLEX_EXPECTS(w >= 0 && w < wordlines_);
  FLEX_EXPECTS(b >= 0 && b < bitlines_);
  return static_cast<std::size_t>(w) * static_cast<std::size_t>(bitlines_) +
         static_cast<std::size_t>(b);
}

void CellArray::program(const LevelConfig& config,
                        std::span<const int> targets,
                        const CouplingRatios& coupling, Rng& rng) {
  FLEX_EXPECTS(static_cast<int>(targets.size()) == cells());
  const auto n = static_cast<std::size_t>(cells());

  // Program-order index per cell; erased cells are finalised at order -1.
  std::vector<std::int32_t> order(n, -1);
  std::int32_t next_order = 0;
  for (int w = 0; w < wordlines_; ++w) {
    for (const int parity : {0, 1}) {
      for (int b = parity; b < bitlines_; b += 2) {
        const std::size_t i = index(w, b);
        targets_[i] = targets[i];
        FLEX_EXPECTS(targets_[i] >= 0 && targets_[i] < config.levels());
        if (targets_[i] > 0) order[i] = next_order++;
      }
    }
  }

  // Erase: every cell starts from its own erased-state sample.
  for (std::size_t i = 0; i < n; ++i) {
    erased_vth_[i] = rng.normal(config.erased_mean(), config.erased_sigma());
    vth_[i] = erased_vth_[i];
    programmed_vth_[i] = erased_vth_[i];
  }

  // Program in order, pushing coupling onto already-finalised neighbours.
  for (int w = 0; w < wordlines_; ++w) {
    for (const int parity : {0, 1}) {
      for (int b = parity; b < bitlines_; b += 2) {
        const std::size_t i = index(w, b);
        if (targets_[i] == 0) continue;
        const Volt fresh = config.sample_vth(targets_[i], rng);
        const Volt delta_vp = fresh - vth_[i];
        vth_[i] = fresh;
        programmed_vth_[i] = fresh;
        if (delta_vp <= 0.0) continue;
        for (int dw = -1; dw <= 1; ++dw) {
          for (int db = -1; db <= 1; ++db) {
            if (dw == 0 && db == 0) continue;
            const int nw = w + dw;
            const int nb = b + db;
            if (nw < 0 || nw >= wordlines_ || nb < 0 || nb >= bitlines_) {
              continue;
            }
            const std::size_t j = index(nw, nb);
            if (order[j] >= order[i]) continue;  // not finalised yet
            const double gamma = (dw == 0)   ? coupling.gamma_x
                                 : (db == 0) ? coupling.gamma_y
                                             : coupling.gamma_xy;
            vth_[j] += gamma * coupling.effective_delta_fraction * delta_vp;
          }
        }
      }
    }
  }
}

Volt CellArray::vth(int w, int b) const { return vth_[index(w, b)]; }

Volt CellArray::programmed_vth(int w, int b) const {
  return programmed_vth_[index(w, b)];
}

Volt CellArray::erased_vth(int w, int b) const {
  return erased_vth_[index(w, b)];
}

int CellArray::target_level(int w, int b) const {
  return targets_[index(w, b)];
}

void CellArray::shift_vth(int w, int b, Volt delta) {
  vth_[index(w, b)] += delta;
}

}  // namespace flex::nand
