#include "nand/geometry.h"

#include "common/assert.h"

namespace flex::nand {

PageAddress decompose(const NandSpec& spec, std::uint64_t flat_page) {
  FLEX_EXPECTS(flat_page < spec.total_pages());
  PageAddress addr;
  addr.page = static_cast<std::uint32_t>(flat_page % spec.pages_per_block);
  const std::uint64_t block_flat = flat_page / spec.pages_per_block;
  addr.block = static_cast<std::uint32_t>(block_flat % spec.blocks_per_chip);
  addr.chip = static_cast<std::uint32_t>(block_flat / spec.blocks_per_chip);
  return addr;
}

std::uint64_t flatten(const NandSpec& spec, const PageAddress& addr) {
  FLEX_EXPECTS(addr.chip < spec.chips);
  FLEX_EXPECTS(addr.block < spec.blocks_per_chip);
  FLEX_EXPECTS(addr.page < spec.pages_per_block);
  return (static_cast<std::uint64_t>(addr.chip) * spec.blocks_per_chip +
          addr.block) *
             spec.pages_per_block +
         addr.page;
}

}  // namespace flex::nand
