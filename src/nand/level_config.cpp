#include "nand/level_config.h"

#include <limits>

#include "common/assert.h"

namespace flex::nand {

LevelConfig::LevelConfig(std::string name, std::vector<Volt> read_refs,
                         std::vector<Volt> verifies, Volt vpp,
                         Volt erased_mean, Volt erased_sigma)
    : name_(std::move(name)),
      read_refs_(std::move(read_refs)),
      verifies_(std::move(verifies)),
      vpp_(vpp),
      erased_mean_(erased_mean),
      erased_sigma_(erased_sigma) {
  FLEX_EXPECTS(!read_refs_.empty());
  FLEX_EXPECTS(read_refs_.size() == verifies_.size());
  FLEX_EXPECTS(vpp_ > 0.0);
  FLEX_EXPECTS(erased_sigma_ > 0.0);
  for (std::size_t i = 0; i < read_refs_.size(); ++i) {
    // Each verify must sit at or above its lower read reference, and the
    // boundaries must be strictly increasing.
    FLEX_EXPECTS(verifies_[i] >= read_refs_[i]);
    if (i > 0) {
      FLEX_EXPECTS(read_refs_[i] > read_refs_[i - 1]);
      FLEX_EXPECTS(verifies_[i] > verifies_[i - 1]);
    }
  }
}

LevelConfig LevelConfig::baseline_mlc() {
  return LevelConfig("baseline", {2.25, 2.95, 3.65}, {2.30, 3.00, 3.70},
                     0.15);
}

Volt LevelConfig::read_ref(int boundary) const {
  FLEX_EXPECTS(boundary >= 0 && boundary < levels() - 1);
  return read_refs_[static_cast<std::size_t>(boundary)];
}

Volt LevelConfig::verify(int level) const {
  FLEX_EXPECTS(level >= 1 && level < levels());
  return verifies_[static_cast<std::size_t>(level - 1)];
}

Volt LevelConfig::nominal(int level) const {
  FLEX_EXPECTS(level >= 0 && level < levels());
  if (level == 0) return erased_mean_;
  return verify(level) + vpp_ / 2.0;
}

Volt LevelConfig::sample_vth(int level, Rng& rng) const {
  FLEX_EXPECTS(level >= 0 && level < levels());
  if (level == 0) return rng.normal(erased_mean_, erased_sigma_);
  const Volt v = verify(level);
  return rng.uniform(v, v + vpp_);
}

int LevelConfig::read_level(Volt vth) const {
  int level = 0;
  for (const Volt ref : read_refs_) {
    if (vth >= ref) ++level;
  }
  return level;
}

Volt LevelConfig::retention_margin(int level) const {
  FLEX_EXPECTS(level >= 1 && level < levels());
  return verify(level) - read_ref(level - 1);
}

Volt LevelConfig::c2c_margin(int level) const {
  FLEX_EXPECTS(level >= 0 && level < levels());
  if (level == levels() - 1) return std::numeric_limits<Volt>::infinity();
  const Volt top =
      level == 0 ? erased_mean_ : verify(level) + vpp_;
  return read_ref(level) - top;
}

}  // namespace flex::nand
