#include "workload/arrival.h"

#include <cmath>
#include <numbers>
#include <string>

#include "common/assert.h"

namespace flex::workload {

Status ArrivalConfig::Validate() const {
  if (!(base_iops > 0.0)) {
    return Status::InvalidArgument("arrivals.base_iops must be > 0, got " +
                                   std::to_string(base_iops));
  }
  if (burst_rate_multiplier < 1.0) {
    return Status::InvalidArgument(
        "arrivals.burst_rate_multiplier must be >= 1, got " +
        std::to_string(burst_rate_multiplier));
  }
  if (burst_on_fraction < 0.0 || burst_on_fraction >= 1.0) {
    return Status::InvalidArgument(
        "arrivals.burst_on_fraction must be in [0, 1), got " +
        std::to_string(burst_on_fraction));
  }
  if (burst_rate_multiplier > 1.0 && burst_on_fraction == 0.0) {
    return Status::InvalidArgument(
        "arrivals.burst_rate_multiplier > 1 never fires with "
        "burst_on_fraction == 0; set the on fraction or drop the "
        "multiplier");
  }
  if (burst_on_fraction > 0.0 && !(burst_mean_on_s > 0.0)) {
    return Status::InvalidArgument(
        "arrivals.burst_mean_on_s must be > 0 when bursts are on, got " +
        std::to_string(burst_mean_on_s));
  }
  if (diurnal_amplitude < 0.0 || diurnal_amplitude > 1.0) {
    return Status::InvalidArgument(
        "arrivals.diurnal_amplitude must be in [0, 1], got " +
        std::to_string(diurnal_amplitude));
  }
  if (diurnal_amplitude > 0.0 && !(diurnal_period_s > 0.0)) {
    return Status::InvalidArgument(
        "arrivals.diurnal_period_s must be > 0 when the diurnal curve is "
        "on, got " +
        std::to_string(diurnal_period_s));
  }
  return Status::Ok();
}

double ArrivalConfig::peak_rate() const {
  double peak = base_iops;
  if (has_bursts()) peak *= burst_rate_multiplier;
  if (has_diurnal()) peak *= 1.0 + diurnal_amplitude;
  return peak;
}

double ArrivalConfig::mean_rate() const {
  double rate = base_iops;
  if (has_bursts()) {
    rate *= 1.0 + burst_on_fraction * (burst_rate_multiplier - 1.0);
  }
  return rate;
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig& config,
                               std::uint64_t seed)
    : config_(config), rng_(seed) {
  FLEX_EXPECTS(config_.Validate().ok());
  if (config_.has_bursts()) {
    // Stationary start: on with the long-run probability, then a full
    // sojourn (memorylessness makes the residual sojourn a full one).
    burst_on_ = rng_.chance(config_.burst_on_fraction);
    const double mean_s = burst_on_ ? config_.burst_mean_on_s
                                    : config_.burst_mean_on_s *
                                          (1.0 - config_.burst_on_fraction) /
                                          config_.burst_on_fraction;
    state_until_s_ = -mean_s * std::log(1.0 - rng_.uniform());
  }
}

double ArrivalProcess::rate_at(double t_s) const {
  double rate = config_.base_iops;
  if (config_.has_bursts() && burst_on_) {
    rate *= config_.burst_rate_multiplier;
  }
  if (config_.has_diurnal()) {
    rate *= 1.0 + config_.diurnal_amplitude *
                      std::sin(2.0 * std::numbers::pi * t_s /
                               config_.diurnal_period_s);
  }
  return rate;
}

void ArrivalProcess::advance_burst_state(double t_s) {
  while (state_until_s_ <= t_s) {
    burst_on_ = !burst_on_;
    const double mean_s = burst_on_ ? config_.burst_mean_on_s
                                    : config_.burst_mean_on_s *
                                          (1.0 - config_.burst_on_fraction) /
                                          config_.burst_on_fraction;
    state_until_s_ += -mean_s * std::log(1.0 - rng_.uniform());
  }
}

SimTime ArrivalProcess::next() {
  const bool modulated = config_.has_bursts() || config_.has_diurnal();
  const double peak = config_.peak_rate();
  for (;;) {
    clock_s_ += -std::log(1.0 - rng_.uniform()) / peak;
    if (!modulated) break;  // exact Exp(base_iops), one uniform per arrival
    if (config_.has_bursts()) advance_burst_state(clock_s_);
    const double rate = rate_at(clock_s_);
    if (rng_.chance(rate / peak)) break;
  }
  return static_cast<SimTime>(clock_s_ * 1e9);
}

}  // namespace flex::workload
