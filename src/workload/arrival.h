// Open-loop arrival-time processes for the synthetic host workload engine.
//
// Three composable rate shapes, all driven by one Rng stream:
//   * plain Poisson at `base_iops` — the degenerate (and default) case,
//     whose interarrivals are exactly Exponential(base_iops) so the
//     chi-square goodness-of-fit tests hold with no modulation artifacts;
//   * MMPP on/off bursts (a 2-state Markov-modulated Poisson process):
//     exponentially-distributed sojourns in an "on" state where the rate is
//     multiplied by `burst_rate_multiplier`, tuned by the long-run on
//     fraction and the mean on-sojourn length;
//   * a diurnal sinusoid multiplying the whole process, for day/night load
//     curves over multi-hour simulations.
//
// Time-varying rates are sampled exactly with Lewis–Shedler thinning:
// candidate arrivals are drawn at the peak rate and accepted with
// probability rate(t)/peak, which is unbiased for any bounded rate
// function. When neither modulation is enabled the thinning loop
// short-circuits (no acceptance draw), so the plain-Poisson RNG stream is
// exactly one uniform per arrival.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"

namespace flex::workload {

struct ArrivalConfig {
  /// Rate of the unmodulated process (arrivals/sec of simulated time).
  double base_iops = 1000.0;
  /// MMPP on-state rate multiplier; 1 disables bursts.
  double burst_rate_multiplier = 1.0;
  /// Long-run fraction of time spent in the on state; 0 disables bursts.
  double burst_on_fraction = 0.0;
  /// Mean sojourn of one on-burst, seconds. The off-sojourn mean follows
  /// from the on fraction: mean_off = mean_on * (1 - f) / f.
  double burst_mean_on_s = 0.1;
  /// Sinusoidal modulation depth in [0, 1]: rate(t) scales by
  /// 1 + A * sin(2π t / period). 0 disables the diurnal curve.
  double diurnal_amplitude = 0.0;
  double diurnal_period_s = 86'400.0;

  Status Validate() const;

  bool has_bursts() const {
    return burst_rate_multiplier > 1.0 && burst_on_fraction > 0.0;
  }
  bool has_diurnal() const { return diurnal_amplitude > 0.0; }
  /// Peak instantaneous rate — the thinning envelope.
  double peak_rate() const;
  /// Long-run mean rate (the diurnal sinusoid averages out; bursts do not).
  double mean_rate() const;
};

class ArrivalProcess {
 public:
  /// `config` must satisfy Validate() (asserted).
  ArrivalProcess(const ArrivalConfig& config, std::uint64_t seed);

  /// Next arrival timestamp, ns since process start; non-decreasing.
  SimTime next();

 private:
  /// Instantaneous rate at `t_s`, given the current MMPP state.
  double rate_at(double t_s) const;
  /// Advances the on/off chain so `state_until_s_` > t_s.
  void advance_burst_state(double t_s);

  ArrivalConfig config_;
  Rng rng_;
  double clock_s_ = 0.0;
  bool burst_on_ = false;
  double state_until_s_ = 0.0;
};

}  // namespace flex::workload
