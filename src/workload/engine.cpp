#include "workload/engine.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <string>

#include "common/assert.h"

namespace flex::workload {

namespace {

// Scatters popularity ranks across the tenant's footprint with a fixed
// multiplicative permutation (same idiom as trace/workloads.cpp): `mult`
// must be coprime with the footprint so the map is a bijection.
std::uint64_t permute(std::uint64_t rank, std::uint64_t mult,
                      std::uint64_t footprint) {
  return (rank * mult) % footprint;
}

std::uint64_t coprime_multiplier(std::uint64_t footprint,
                                 std::uint64_t candidate) {
  while (std::gcd(candidate, footprint) != 1) ++candidate;
  return candidate;
}

}  // namespace

Status EngineConfig::Validate() const {
  if (Status s = arrivals.Validate(); !s.ok()) return s;
  if (tenants.empty()) {
    return Status::InvalidArgument("engine.tenants must not be empty");
  }
  if (tenants.size() > 65'535) {
    return Status::InvalidArgument(
        "engine.tenants exceeds the 16-bit tenant index, got " +
        std::to_string(tenants.size()));
  }
  if (tenant_select_theta < 0.0) {
    return Status::InvalidArgument(
        "engine.tenant_select_theta must be >= 0, got " +
        std::to_string(tenant_select_theta));
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantSpec& t = tenants[i];
    const std::string who = "engine.tenants[" + std::to_string(i) + "].";
    if (tenant_select_theta == 0.0 && !(t.arrival_weight > 0.0)) {
      return Status::InvalidArgument(who + "arrival_weight must be > 0");
    }
    if (t.read_fraction < 0.0 || t.read_fraction > 1.0) {
      return Status::InvalidArgument(who +
                                     "read_fraction must be in [0, 1]");
    }
    if (t.zipf_theta < 0.0) {
      return Status::InvalidArgument(who + "zipf_theta must be >= 0");
    }
    if (t.max_request_pages < 1) {
      return Status::InvalidArgument(who + "max_request_pages must be >= 1");
    }
    if (t.mean_request_pages < 1.0) {
      return Status::InvalidArgument(who +
                                     "mean_request_pages must be >= 1");
    }
    if (t.footprint_pages < t.max_request_pages) {
      return Status::InvalidArgument(
          who + "footprint_pages must cover max_request_pages");
    }
    if (!(t.qos_weight > 0.0)) {
      return Status::InvalidArgument(who + "qos_weight must be > 0");
    }
  }
  return Status::Ok();
}

WorkloadEngine::WorkloadEngine(const EngineConfig& config)
    : config_(config),
      arrivals_(config.arrivals, config.seed ^ 0xA11C0DEULL),
      rng_(config.seed) {
  FLEX_EXPECTS(config_.Validate().ok());
  tenants_.reserve(config_.tenants.size());
  double total_weight = 0.0;
  for (const TenantSpec& spec : config_.tenants) {
    tenants_.push_back(TenantState{
        .zipf = ZipfSampler(spec.footprint_pages, spec.zipf_theta),
        .mult = coprime_multiplier(spec.footprint_pages, 2'654'435'761ULL),
        .geo_p = 1.0 / spec.mean_request_pages,
    });
    total_weight += spec.arrival_weight;
    cumulative_weight_.push_back(total_weight);
  }
  for (double& w : cumulative_weight_) w /= total_weight;
  if (config_.tenant_select_theta > 0.0 && config_.tenants.size() > 1) {
    tenant_zipf_.emplace(config_.tenants.size(),
                         config_.tenant_select_theta);
  }
}

std::uint32_t WorkloadEngine::pick_tenant() {
  if (tenants_.size() == 1) return 0;
  if (tenant_zipf_) {
    return static_cast<std::uint32_t>(tenant_zipf_->sample(rng_));
  }
  const double u = rng_.uniform();
  const auto it = std::upper_bound(cumulative_weight_.begin(),
                                   cumulative_weight_.end(), u);
  const auto idx = static_cast<std::uint32_t>(
      std::min<std::ptrdiff_t>(it - cumulative_weight_.begin(),
                               static_cast<std::ptrdiff_t>(
                                   cumulative_weight_.size() - 1)));
  return idx;
}

std::optional<trace::Request> WorkloadEngine::next() {
  if (exhausted_) return std::nullopt;
  if (config_.max_requests != 0 && generated_ >= config_.max_requests) {
    exhausted_ = true;
    return std::nullopt;
  }
  const SimTime arrival = arrivals_.next();
  if (config_.horizon != 0 && arrival >= config_.horizon) {
    exhausted_ = true;
    return std::nullopt;
  }

  const std::uint32_t tenant = pick_tenant();
  const TenantSpec& spec = config_.tenants[tenant];
  TenantState& state = tenants_[tenant];

  trace::Request req;
  req.arrival = arrival;
  req.is_write = !rng_.chance(spec.read_fraction);
  std::uint32_t pages = 1;
  while (pages < spec.max_request_pages && !rng_.chance(state.geo_p)) {
    ++pages;
  }
  req.pages = pages;
  req.lpn = spec.footprint_offset +
            permute(state.zipf.sample(rng_), state.mult,
                    spec.footprint_pages);
  // Clamp runs that would spill past the tenant's footprint slice.
  if (req.lpn + req.pages > spec.footprint_offset + spec.footprint_pages) {
    req.lpn = spec.footprint_offset + spec.footprint_pages - req.pages;
  }
  req.tenant = static_cast<std::uint16_t>(tenant);
  req.priority = spec.priority;
  req.requester = spec.requester;
  ++generated_;
  return req;
}

std::vector<trace::Request> WorkloadEngine::materialize(std::uint64_t n) {
  std::vector<trace::Request> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::optional<trace::Request> req = next();
    if (!req) break;
    out.push_back(*req);
  }
  return out;
}

std::vector<TenantSpec> zipf_tenant_population(std::uint32_t n, double theta,
                                               std::uint64_t footprint_pages) {
  FLEX_EXPECTS(n >= 1);
  FLEX_EXPECTS(footprint_pages >= n);
  std::vector<TenantSpec> tenants(n);
  const std::uint64_t slice = footprint_pages / n;
  double norm = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    norm += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    TenantSpec& t = tenants[i];
    t.name = "tenant-" + std::to_string(i);
    t.arrival_weight =
        1.0 / std::pow(static_cast<double>(i + 1), theta) / norm;
    t.footprint_pages = slice;
    t.footprint_offset = static_cast<std::uint64_t>(i) * slice;
  }
  return tenants;
}

}  // namespace flex::workload
