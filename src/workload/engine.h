// Open-loop multi-tenant synthetic host engine.
//
// Generates a request stream directly into the simulator's DES kernel (via
// trace::RequestSource) instead of materialising a trace vector first:
// arrivals come from workload::ArrivalProcess (Poisson / MMPP bursts /
// diurnal curves), each arrival is attributed to a tenant (fixed weights or
// a Zipf-distributed tenant popularity), and the tenant's spec drives the
// read/write mix, request length, and Zipf address skew inside the
// tenant's private footprint slice. Requests carry the tenant index and a
// priority so the QoS chip scheduler can queue per tenant.
//
// Determinism: one Rng seeded from EngineConfig::seed drives everything
// except arrival times (which have their own forked stream inside
// ArrivalProcess), so the same config + seed reproduces the identical
// request stream on any thread count or platform.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/zipf.h"
#include "trace/trace.h"
#include "workload/arrival.h"

namespace flex::workload {

struct TenantSpec {
  std::string name;
  /// Share of arrivals attributed to this tenant (ignored when the engine
  /// selects tenants by Zipf rank; see EngineConfig::tenant_select_theta).
  double arrival_weight = 1.0;
  /// Fair-share weight for the QoS scheduler (carried through to the bench
  /// config; the engine itself does not use it).
  double qos_weight = 1.0;
  double read_fraction = 0.7;
  /// Address skew inside the tenant's footprint.
  double zipf_theta = 0.9;
  std::uint64_t footprint_pages = 65'536;
  /// First LPN of the tenant's footprint slice.
  std::uint64_t footprint_offset = 0;
  double mean_request_pages = 2.0;
  std::uint32_t max_request_pages = 32;
  /// Deadline class: higher priority tightens the scheduler deadline.
  std::uint8_t priority = 0;
  /// Host port this tenant submits through in an array (src/host): pinning
  /// tenants to requesters models per-port uplink contention. Ignored by
  /// the single-drive simulator.
  std::uint8_t requester = 0;
};

struct EngineConfig {
  ArrivalConfig arrivals;
  std::vector<TenantSpec> tenants;
  /// > 0: tenant of each arrival is a Zipf(theta) draw over tenant ranks
  /// (tenant 0 hottest) — the "many small tenants" population shape.
  /// 0: tenants are picked by normalised arrival_weight.
  double tenant_select_theta = 0.0;
  /// Stop after this many requests; 0 = unbounded (caller limits).
  std::uint64_t max_requests = 0;
  /// Stop at this simulated time; 0 = unbounded.
  SimTime horizon = 0;
  std::uint64_t seed = 0x5EED;

  Status Validate() const;
};

class WorkloadEngine final : public trace::RequestSource {
 public:
  /// `config` must satisfy Validate() (asserted).
  explicit WorkloadEngine(const EngineConfig& config);

  std::optional<trace::Request> next() override;

  /// Requests generated so far.
  std::uint64_t generated() const { return generated_; }

  /// Drains up to `n` requests into a vector (statistical tests and
  /// closed-loop replay); stops early if the stream ends.
  std::vector<trace::Request> materialize(std::uint64_t n);

 private:
  struct TenantState {
    ZipfSampler zipf;
    std::uint64_t mult;  ///< coprime scatter multiplier for the footprint
    double geo_p;        ///< geometric request-length parameter
  };

  std::uint32_t pick_tenant();

  EngineConfig config_;
  ArrivalProcess arrivals_;
  Rng rng_;
  std::vector<TenantState> tenants_;
  std::vector<double> cumulative_weight_;
  std::optional<ZipfSampler> tenant_zipf_;
  std::uint64_t generated_ = 0;
  bool exhausted_ = false;
};

/// Slices `footprint_pages` into `n` equal disjoint tenant regions whose
/// arrival shares follow Zipf(theta) (tenant 0 hottest). A convenience
/// builder for benches and tests; tweak the returned specs freely.
std::vector<TenantSpec> zipf_tenant_population(std::uint32_t n, double theta,
                                               std::uint64_t footprint_pages);

}  // namespace flex::workload
