// CRC-64/XZ (ECMA-182 polynomial, reflected), slice-by-8.
//
// The end-to-end integrity layer seals every programmed page with a
// CRC of its (synthetic) payload bytes; this is the checksum. The
// variant is CRC-64/XZ: reflected ECMA-182 polynomial
// 0xC96C5795D7870F42, init and xorout all-ones, check value
// crc64("123456789") == 0x995DC9BBDF1939FA. Slice-by-8 processes eight
// input bytes per table round; the tables are built once at static
// init from the bitwise definition, and `crc64_selftest()` re-derives
// a vector bitwise at runtime so a miscompiled table can never
// silently seal pages.
//
// The API chains: `crc64(b, n)` one-shot, or feed pieces through the
// `crc` parameter (`crc64(p2, n2, crc64(p1, n1))`) — internally the
// running state is kept pre-inverted so chaining needs no finalize
// step by the caller.
#pragma once

#include <cstddef>
#include <cstdint>

namespace flex {

/// CRC-64/XZ of `len` bytes at `data`, continuing from `crc`
/// (0 = fresh). Chaining is exact: crc64(ab) == crc64(b, crc64(a)).
std::uint64_t crc64(const void* data, std::size_t len,
                    std::uint64_t crc = 0);

/// True iff the slice-by-8 tables reproduce the bitwise reference on
/// the standard check vector and a few structured ones.
bool crc64_selftest();

}  // namespace flex
