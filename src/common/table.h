// Minimal fixed-width ASCII table printer for the benchmark harnesses, so
// every bench emits the paper's tables/figures in a uniform, diffable form.
#pragma once

#include <string>
#include <vector>

namespace flex {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column auto-sizing; includes a header separator row.
  std::string to_string() const;

  /// Convenience: formats a double with `digits` significant digits.
  static std::string num(double value, int digits = 3);
  /// Convenience: percentage with sign, e.g. "+15.2%".
  static std::string percent(double fraction, int digits = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flex
