// Streaming statistics and histograms used by the BER engine, the SSD
// response-time accounting, and the benchmark harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace flex {

/// Numerically stable (Welford) accumulator for mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< population variance; 0 for < 2 samples
  double stddev() const;
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples land in
/// saturated edge bins so no sample is ever silently dropped. Bins are
/// linear by default; `log_spaced` builds geometrically growing bins
/// (constant *relative* resolution) — the right shape for latency
/// distributions, where a linear grid either wastes its bins on the bulk
/// or collapses the long tail into the saturated edge bin and biases
/// p99/p999.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  /// Geometric bins: edge(i) = lo * (hi/lo)^(i/bins). Requires lo > 0;
  /// samples below lo saturate into bin 0.
  static Histogram log_spaced(double lo, double hi, std::size_t bins);

  void add(double x);
  /// Bin-wise sum of another histogram of identical shape.
  void merge(const Histogram& other);
  /// Same spacing (linear/log), range and bin count?
  bool same_shape(const Histogram& other) const;
  /// Same shape and identical bin counts.
  bool operator==(const Histogram& other) const;

  bool log_bins() const { return log_; }
  double low() const { return lo_; }
  double high() const { return hi_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// Quantile in [0,1], interpolated linearly within the containing bin;
  /// returns lo when empty.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  bool log_ = false;
  double log_lo_ = 0.0;     ///< ln(lo), log spacing only
  double log_width_ = 0.0;  ///< (ln(hi) - ln(lo)) / bins, log spacing only
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Ratio counter used for bit-error-rate estimation: `events / trials` with
/// a Wilson interval so benches can report Monte-Carlo confidence.
class RateEstimator {
 public:
  void add(bool event) { add_many(event ? 1 : 0, 1); }
  void add_many(std::uint64_t events, std::uint64_t trials);

  std::uint64_t events() const { return events_; }
  std::uint64_t trials() const { return trials_; }
  double rate() const;
  /// Half-width of the 95% Wilson score interval.
  double margin95() const;

 private:
  std::uint64_t events_ = 0;
  std::uint64_t trials_ = 0;
};

}  // namespace flex
