// Streaming statistics and histograms used by the BER engine, the SSD
// response-time accounting, and the benchmark harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace flex {

/// Numerically stable (Welford) accumulator for mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< population variance; 0 for < 2 samples
  double stddev() const;
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples land in
/// saturated edge bins so no sample is ever silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::uint64_t total() const { return total_; }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// Linear-interpolated quantile in [0,1]; returns lo when empty.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Ratio counter used for bit-error-rate estimation: `events / trials` with
/// a Wilson interval so benches can report Monte-Carlo confidence.
class RateEstimator {
 public:
  void add(bool event) { add_many(event ? 1 : 0, 1); }
  void add_many(std::uint64_t events, std::uint64_t trials);

  std::uint64_t events() const { return events_; }
  std::uint64_t trials() const { return trials_; }
  double rate() const;
  /// Half-width of the 95% Wilson score interval.
  double margin95() const;

 private:
  std::uint64_t events_ = 0;
  std::uint64_t trials_ = 0;
};

}  // namespace flex
