#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.h"

namespace flex {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FLEX_EXPECTS(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  FLEX_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c]
          << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
    }
    out << '\n';
  };
  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string TablePrinter::percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace flex
