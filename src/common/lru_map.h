// Intrusive doubly-linked LRU over a flat slot array.
//
// Replaces the std::list + std::unordered_map<key, list::iterator> pattern
// on simulator hot paths (write-buffer recency, the FlexLevel ReducedCell
// pool): one node allocation per *slot* instead of per *operation*, O(1)
// touch with no iterator indirection, and every structure lives in two
// contiguous vectors. Slots are recycled through a free stack, so the
// steady state allocates nothing once the high-water mark is reached.
//
// Determinism: recency order is an explicit doubly-linked list threaded
// through the slot array, so iteration (for_each_oldest_first) depends only
// on the operation history — never on hash layout or slot numbering.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/flat_hash_map.h"

namespace flex {

template <class Value>
class LruMap {
 public:
  LruMap() = default;
  explicit LruMap(std::size_t capacity_hint) : index_(capacity_hint) {
    nodes_.reserve(capacity_hint);
  }

  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }
  bool contains(std::uint64_t key) const { return index_.contains(key); }

  /// Value of `key`, or nullptr; does not change recency.
  Value* find(std::uint64_t key) {
    const std::uint32_t* slot = index_.find(key);
    return slot ? &nodes_[*slot].value : nullptr;
  }
  const Value* find(std::uint64_t key) const {
    return const_cast<LruMap*>(this)->find(key);
  }

  /// Moves `key` to the most-recent end; returns false when absent.
  bool touch(std::uint64_t key) {
    const std::uint32_t* slot = index_.find(key);
    if (!slot) return false;
    if (head_ != *slot) {
      unlink(*slot);
      link_front(*slot);
    }
    return true;
  }

  /// Inserts `key` (must be absent) as most recent.
  Value& push_front(std::uint64_t key, Value value) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      FLEX_ASSERT(nodes_.size() < kNil);
      nodes_.emplace_back();
      slot = static_cast<std::uint32_t>(nodes_.size() - 1);
    }
    Node& node = nodes_[slot];
    node.key = key;
    node.value = std::move(value);
    link_front(slot);
    const bool inserted = index_.insert(key, slot).second;
    FLEX_ASSERT(inserted && "LruMap::push_front: key already present");
    return node.value;
  }

  bool erase(std::uint64_t key) {
    const std::uint32_t* slot = index_.find(key);
    if (!slot) return false;
    const std::uint32_t s = *slot;
    unlink(s);
    free_.push_back(s);
    index_.erase(key);
    return true;
  }

  /// Least-recently-used key; undefined when empty.
  std::uint64_t back_key() const {
    FLEX_EXPECTS(tail_ != kNil);
    return nodes_[tail_].key;
  }

  /// Evicts the least-recently-used entry; its key is returned.
  std::uint64_t pop_back() {
    const std::uint64_t key = back_key();
    erase(key);
    return key;
  }

  /// Visits every entry from least to most recent: fn(key, Value&).
  template <class Fn>
  void for_each_oldest_first(Fn&& fn) {
    for (std::uint32_t slot = tail_; slot != kNil; slot = nodes_[slot].prev) {
      fn(nodes_[slot].key, nodes_[slot].value);
    }
  }

  void clear() {
    nodes_.clear();
    free_.clear();
    head_ = kNil;
    tail_ = kNil;
    index_.clear();
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    std::uint64_t key = 0;
    Value value{};
    std::uint32_t prev = kNil;  ///< toward the most-recent end
    std::uint32_t next = kNil;  ///< toward the least-recent end
  };

  void link_front(std::uint32_t slot) {
    Node& node = nodes_[slot];
    node.prev = kNil;
    node.next = head_;
    if (head_ != kNil) nodes_[head_].prev = slot;
    head_ = slot;
    if (tail_ == kNil) tail_ = slot;
  }

  void unlink(std::uint32_t slot) {
    Node& node = nodes_[slot];
    if (node.prev != kNil) nodes_[node.prev].next = node.next;
    if (node.next != kNil) nodes_[node.next].prev = node.prev;
    if (head_ == slot) head_ = node.next;
    if (tail_ == slot) tail_ = node.prev;
    node.prev = kNil;
    node.next = kNil;
  }

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;  ///< recycled slots (LIFO)
  std::uint32_t head_ = kNil;        ///< most recent
  std::uint32_t tail_ = kNil;        ///< least recent
  FlatHashMap<std::uint32_t> index_;  ///< key -> slot
};

}  // namespace flex
