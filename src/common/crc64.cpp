#include "common/crc64.h"

#include <array>

namespace flex {
namespace {

constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ULL;  // ECMA-182, reflected

struct Tables {
  std::array<std::array<std::uint64_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint64_t crc = b;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][b] = crc;
    }
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint64_t crc = t[0][b];
      for (std::size_t s = 1; s < 8; ++s) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[s][b] = crc;
      }
    }
  }
};

constexpr Tables kTables{};

/// Bitwise reference implementation (selftest oracle only).
std::uint64_t crc64_bitwise(const void* data, std::size_t len,
                            std::uint64_t crc) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= p[i];
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
  }
  return ~crc;
}

}  // namespace

std::uint64_t crc64(const void* data, std::size_t len, std::uint64_t crc) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = kTables.t;
  crc = ~crc;
  while (len >= 8) {
    // Little-endian-independent load: fold each byte explicitly.
    crc ^= static_cast<std::uint64_t>(p[0]) |
           static_cast<std::uint64_t>(p[1]) << 8 |
           static_cast<std::uint64_t>(p[2]) << 16 |
           static_cast<std::uint64_t>(p[3]) << 24 |
           static_cast<std::uint64_t>(p[4]) << 32 |
           static_cast<std::uint64_t>(p[5]) << 40 |
           static_cast<std::uint64_t>(p[6]) << 48 |
           static_cast<std::uint64_t>(p[7]) << 56;
    crc = t[7][crc & 0xFF] ^ t[6][(crc >> 8) & 0xFF] ^
          t[5][(crc >> 16) & 0xFF] ^ t[4][(crc >> 24) & 0xFF] ^
          t[3][(crc >> 32) & 0xFF] ^ t[2][(crc >> 40) & 0xFF] ^
          t[1][(crc >> 48) & 0xFF] ^ t[0][crc >> 56];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

bool crc64_selftest() {
  static const unsigned char kCheck[] = {'1', '2', '3', '4', '5',
                                         '6', '7', '8', '9'};
  if (crc64(kCheck, sizeof(kCheck)) != 0x995DC9BBDF1939FAULL) return false;
  unsigned char buf[61];
  for (std::size_t i = 0; i < sizeof(buf); ++i) {
    buf[i] = static_cast<unsigned char>(i * 37 + 11);
  }
  // Slice-by-8 vs bitwise, across split points that exercise the
  // head/tail remainder paths and chaining.
  const std::uint64_t want = crc64_bitwise(buf, sizeof(buf), 0);
  if (crc64(buf, sizeof(buf)) != want) return false;
  for (std::size_t cut : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                          std::size_t{23}, std::size_t{60}}) {
    if (crc64(buf + cut, sizeof(buf) - cut, crc64(buf, cut)) != want) {
      return false;
    }
  }
  return crc64(nullptr, 0) == 0;
}

}  // namespace flex
