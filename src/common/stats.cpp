#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"

namespace flex {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return count_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double RunningStats::max() const {
  return count_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  FLEX_EXPECTS(hi > lo);
  FLEX_EXPECTS(bins > 0);
}

Histogram Histogram::log_spaced(double lo, double hi, std::size_t bins) {
  FLEX_EXPECTS(lo > 0.0);
  Histogram h(lo, hi, bins);
  h.log_ = true;
  h.log_lo_ = std::log(lo);
  h.log_width_ = (std::log(hi) - h.log_lo_) / static_cast<double>(bins);
  return h;
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else if (log_) {
    idx = static_cast<std::size_t>((std::log(x) - log_lo_) / log_width_);
    idx = std::min(idx, counts_.size() - 1);
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

bool Histogram::same_shape(const Histogram& other) const {
  return lo_ == other.lo_ && hi_ == other.hi_ && log_ == other.log_ &&
         counts_.size() == other.counts_.size();
}

bool Histogram::operator==(const Histogram& other) const {
  return same_shape(other) && total_ == other.total_ &&
         counts_ == other.counts_;
}

void Histogram::merge(const Histogram& other) {
  FLEX_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double Histogram::bin_low(std::size_t i) const {
  if (!log_) return lo_ + width_ * static_cast<double>(i);
  // Pin the outer edges exactly; exp(log(lo)) can be off by an ulp.
  if (i == 0) return lo_;
  return std::exp(log_lo_ + log_width_ * static_cast<double>(i));
}

double Histogram::bin_high(std::size_t i) const {
  if (!log_) return lo_ + width_ * static_cast<double>(i + 1);
  if (i + 1 == counts_.size()) return hi_;
  return std::exp(log_lo_ + log_width_ * static_cast<double>(i + 1));
}

double Histogram::quantile(double q) const {
  FLEX_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (target - cumulative) / static_cast<double>(counts_[i]);
      return bin_low(i) + frac * (bin_high(i) - bin_low(i));
    }
    cumulative = next;
  }
  return hi_;
}

void RateEstimator::add_many(std::uint64_t events, std::uint64_t trials) {
  FLEX_EXPECTS(events <= trials);
  events_ += events;
  trials_ += trials;
}

double RateEstimator::rate() const {
  return trials_ == 0
             ? 0.0
             : static_cast<double>(events_) / static_cast<double>(trials_);
}

double RateEstimator::margin95() const {
  if (trials_ == 0) return 0.0;
  const double z = 1.96;
  const double n = static_cast<double>(trials_);
  const double p = rate();
  return z * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) /
         (1.0 + z * z / n);
}

}  // namespace flex
