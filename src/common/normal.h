// Standard-normal CDF/quantile helpers shared by the LDPC channel model
// (BER -> noise sigma) and the reliability engine (analytic BER checks).
#pragma once

namespace flex {

/// Phi(x): standard normal CDF.
double normal_cdf(double x);

/// Q(x) = 1 - Phi(x), computed via erfc for far-tail accuracy (needed for
/// UBER-scale probabilities around 1e-15).
double q_function(double x);

/// Phi^-1(p) for p in (0,1). Acklam's rational approximation refined with
/// one Halley step; accurate to ~1e-15 over the full open interval.
double normal_quantile(double p);

}  // namespace flex
