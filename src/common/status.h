// Recoverable-error reporting for the public API surface.
//
// The library distinguishes two failure classes. Broken internal contracts
// are programming errors and keep aborting via common/assert.h — callers
// cannot recover from a corrupted FTL invariant. Invalid *inputs* (a
// malformed SsdConfig, an out-of-range fault rate) are the caller's to
// handle, so the entry points that accept them return flex::Status /
// flex::StatusOr<T> with a message naming the offending field instead of
// tripping a deep assert three layers down. Modeled on absl::Status but
// self-contained: header-only, no dependency beyond the standard library.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/assert.h"

namespace flex {

enum class StatusCode {
  kOk,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  /// Default is success, so `Status s; ... return s;` composes naturally.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status InvalidArgument(std::string message) {
    return {StatusCode::kInvalidArgument, std::move(message)};
  }
  static Status FailedPrecondition(std::string message) {
    return {StatusCode::kFailedPrecondition, std::move(message)};
  }
  static Status OutOfRange(std::string message) {
    return {StatusCode::kOutOfRange, std::move(message)};
  }
  static Status Internal(std::string message) {
    return {StatusCode::kInternal, std::move(message)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "INVALID_ARGUMENT: over_provisioning must be in (0, 1), got 1.3"
  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

  bool operator==(const Status&) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or the Status explaining why there is none. Accessing value()
/// on a non-ok StatusOr is a contract violation (aborts), matching the
/// library-wide stance that unchecked access is a programming error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a (non-ok) Status, so `return Status::InvalidArgument(
  /// ...)` works in a StatusOr-returning function.
  StatusOr(Status status) : status_(std::move(status)) {
    FLEX_EXPECTS(!status_.ok() && "ok StatusOr must carry a value");
  }
  /// Implicit from a value, so `return value;` works.
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FLEX_EXPECTS(ok() && "StatusOr::value() on error status");
    return *value_;
  }
  T& value() & {
    FLEX_EXPECTS(ok() && "StatusOr::value() on error status");
    return *value_;
  }
  T&& value() && {
    FLEX_EXPECTS(ok() && "StatusOr::value() on error status");
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace flex
