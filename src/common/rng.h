// Deterministic pseudo-random number generation for simulation.
//
// All stochastic components of the library draw from flex::Rng so that a
// single seed reproduces an entire experiment. The generator is
// xoshiro256++ (Blackman & Vigna): fast, 256-bit state, passes BigCrush,
// and — unlike std::mt19937 — has an identical, documented output sequence
// on every platform, which keeps the regression tests byte-stable.
#pragma once

#include <cstdint>
#include <limits>

namespace flex {

/// Deterministic random source. Copyable; copies continue the sequence
/// independently, which makes it cheap to fork per-component streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64, which maps any
  /// 64-bit seed (including 0) to a well-distributed nonzero state.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface so <random> distributions work too.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Forks an independently-seeded child stream; used to give each
  /// simulated component its own reproducible sequence.
  Rng fork();

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace flex
