// Precondition / postcondition / invariant checking helpers.
//
// Follows the Core Guidelines I.6/I.8 spirit (Expects/Ensures) without
// depending on the GSL. Violations are programming errors, so they abort
// with a diagnostic rather than throwing: callers are not expected to
// recover from a broken contract.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace flex::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violated: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace flex::detail

#define FLEX_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                           \
          : ::flex::detail::contract_failure("precondition", #cond,        \
                                             __FILE__, __LINE__))

#define FLEX_ENSURES(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                           \
          : ::flex::detail::contract_failure("postcondition", #cond,       \
                                             __FILE__, __LINE__))

#define FLEX_ASSERT(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::flex::detail::contract_failure("invariant", #cond, __FILE__, \
                                             __LINE__))
