#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/assert.h"

namespace flex {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0,1) with full mantissa resolution.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  FLEX_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  FLEX_EXPECTS(n > 0);
  // Lemire's method: multiply-shift with rejection of the biased zone.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  FLEX_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) {
  FLEX_EXPECTS(sigma >= 0.0);
  return mean + sigma * normal();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace flex
