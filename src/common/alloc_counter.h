// Opt-in allocation counting for steady-state "allocations per event"
// measurements (bench/micro_kernel.cc).
//
// The counters are plain process-wide atomics; they only move when the
// binary opts into counting by expanding FLEX_DEFINE_COUNTING_ALLOCATOR()
// at namespace scope in exactly one translation unit. That TU's operator
// new/delete replace the global ones for the whole binary (ODR-sanctioned
// replacement), so *every* allocation is observed — including ones from
// inlined library code. Binaries that never expand the macro pay nothing:
// the counters exist but stay zero and `counting_enabled()` reports false.
//
// Deliberately NOT enabled for the test or simulator targets: replacing
// operator new changes allocator behaviour enough to perturb malloc
// tuning, and the simulator's correctness contract is byte-identical
// output, not allocation counts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>  // std::malloc / std::free for the macro expansion
#include <new>      // std::bad_alloc for the macro expansion

namespace flex::common::alloc_counter {

inline std::atomic<std::uint64_t>& news() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

inline std::atomic<std::uint64_t>& bytes() {
  static std::atomic<std::uint64_t> total{0};
  return total;
}

inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

/// True when the counting operator new is linked into this binary.
inline bool counting_enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

/// Total operator new / new[] calls observed so far.
inline std::uint64_t allocation_count() {
  return news().load(std::memory_order_relaxed);
}

/// Total bytes requested from operator new / new[] so far.
inline std::uint64_t allocation_bytes() {
  return bytes().load(std::memory_order_relaxed);
}

}  // namespace flex::common::alloc_counter

/// Expands to global operator new/delete replacements that bump the
/// counters above. Use at namespace scope in ONE translation unit of a
/// binary that wants allocation counting (see header comment).
#define FLEX_DEFINE_COUNTING_ALLOCATOR()                                     \
  namespace flex::common::alloc_counter::detail {                            \
  inline void* counted_alloc(std::size_t size) {                             \
    ::flex::common::alloc_counter::enabled_flag().store(                     \
        true, std::memory_order_relaxed);                                    \
    ::flex::common::alloc_counter::news().fetch_add(                         \
        1, std::memory_order_relaxed);                                       \
    ::flex::common::alloc_counter::bytes().fetch_add(                        \
        size, std::memory_order_relaxed);                                    \
    if (void* ptr = std::malloc(size ? size : 1)) return ptr;                \
    throw std::bad_alloc{};                                                  \
  }                                                                          \
  }                                                                          \
  void* operator new(std::size_t size) {                                     \
    return ::flex::common::alloc_counter::detail::counted_alloc(size);       \
  }                                                                          \
  void* operator new[](std::size_t size) {                                   \
    return ::flex::common::alloc_counter::detail::counted_alloc(size);       \
  }                                                                          \
  void operator delete(void* ptr) noexcept { std::free(ptr); }               \
  void operator delete[](void* ptr) noexcept { std::free(ptr); }             \
  void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }  \
  void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
