// Zipf-distributed integer sampling for workload skew modelling.
//
// Block-trace studies consistently show power-law access popularity; the
// synthetic workload generators use this sampler to concentrate reads on a
// hot set, which is what makes AccessEval's hot-data identification
// meaningful.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace flex {

/// Samples ranks in [0, n) with P(k) proportional to 1 / (k+1)^theta.
///
/// Uses the rejection-inversion method of Hörmann & Derflinger, which is
/// O(1) per sample and needs no O(n) table, so footprints of millions of
/// pages cost nothing to set up.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `theta` >= 0 (0 degenerates to uniform).
  ZipfSampler(std::uint64_t n, double theta);

  std::uint64_t sample(Rng& rng) const;

  std::uint64_t size() const { return n_; }
  double theta() const { return theta_; }

 private:
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double theta_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

}  // namespace flex
