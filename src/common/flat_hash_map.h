// Open-addressing hash map over flat arrays, for simulator hot paths.
//
// std::unordered_map costs one heap node per element and a pointer chase
// per probe; on the per-read lookup paths (BER cache, LRU indices) that
// is the dominant cache-miss source. FlatHashMap stores slots contiguously
// with linear probing over a power-of-two table, erases via backward
// shifting (no tombstones, so probe chains never rot), and grows by
// rehashing in slot order.
//
// Determinism contract: raw slot order depends on capacity history, so it
// is never exposed for iteration. Every element instead carries the
// 64-bit *insertion ordinal* assigned when its key was (re-)inserted, and
// `ordered_snapshot()` / `for_each_ordered()` iterate in ordinal order —
// a canonical order that is independent of rehash timing and hash-seed
// layout. Code that needs to iterate a map deterministically must use
// those, never the slot table.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace flex {

/// SplitMix64 finalizer: a full-avalanche mix for integer keys. Identity
/// hashing would alias badly with the structured keys used on hot paths
/// (packed (pe << 16) | bucket, page numbers), which share low bits.
struct SplitMix64Hash {
  std::uint64_t operator()(std::uint64_t x) const {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
};

template <class Value, class Hash = SplitMix64Hash>
class FlatHashMap {
 public:
  using Key = std::uint64_t;

  struct Entry {
    Key key;
    Value value;
    std::uint64_t ordinal;  ///< insertion order, survives rehash
  };

  FlatHashMap() = default;
  explicit FlatHashMap(std::size_t capacity_hint) { reserve(capacity_hint); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slot count of the backing table (power of two, or 0 before first use).
  std::size_t bucket_count() const { return slots_.size(); }

  void clear() {
    std::fill(full_.begin(), full_.end(), std::uint8_t{0});
    size_ = 0;
    next_ordinal_ = 0;
  }

  /// Grows the table so `n` elements fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t want = min_capacity_;
    while (want * 3 < n * 4) want *= 2;  // keep load factor <= 0.75
    if (want > slots_.size()) rehash(want);
  }

  Value* find(Key key) {
    if (size_ == 0) return nullptr;
    const std::size_t i = find_index(key);
    return i == npos ? nullptr : &slots_[i].value;
  }
  const Value* find(Key key) const {
    return const_cast<FlatHashMap*>(this)->find(key);
  }
  bool contains(Key key) const { return find(key) != nullptr; }

  /// Inserts `value` under `key` if absent. Returns {slot value pointer,
  /// inserted?}; the pointer stays valid until the next insert/erase.
  std::pair<Value*, bool> insert(Key key, Value value) {
    if ((size_ + 1) * 4 > slots_.size() * 3) {
      rehash(std::max(min_capacity_, slots_.size() * 2));
    }
    std::size_t i = hasher_(key) & mask_;
    while (full_[i]) {
      if (slots_[i].key == key) return {&slots_[i].value, false};
      i = (i + 1) & mask_;
    }
    slots_[i] = Entry{key, std::move(value), next_ordinal_++};
    full_[i] = 1;
    ++size_;
    return {&slots_[i].value, true};
  }

  /// Insert-or-overwrite; a pre-existing key keeps its original ordinal.
  Value& assign(Key key, Value value) {
    auto [slot, inserted] = insert(key, Value{});
    *slot = std::move(value);
    return *slot;
  }

  /// Erases `key` via backward shifting; returns false if absent.
  bool erase(Key key) {
    if (size_ == 0) return false;
    std::size_t i = find_index(key);
    if (i == npos) return false;
    // Backward-shift deletion: walk the probe chain after the hole and
    // pull back any element whose home slot precedes the hole (cyclically),
    // so lookups never need tombstones.
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask_;
    while (full_[j]) {
      const std::size_t home = hasher_(slots_[j].key) & mask_;
      // `j - home` is the element's current probe distance; it may move
      // into `hole` iff hole lies within that distance of its home.
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    full_[hole] = 0;
    --size_;
    return true;
  }

  /// Elements sorted by insertion ordinal — the canonical deterministic
  /// iteration order (independent of capacity history / slot layout).
  std::vector<Entry> ordered_snapshot() const {
    std::vector<Entry> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (full_[i]) out.push_back(slots_[i]);
    }
    std::sort(out.begin(), out.end(),
              [](const Entry& a, const Entry& b) { return a.ordinal < b.ordinal; });
    return out;
  }

  template <class Fn>
  void for_each_ordered(Fn&& fn) const {
    for (const Entry& e : ordered_snapshot()) fn(e.key, e.value);
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr std::size_t min_capacity_ = 16;

  std::size_t find_index(Key key) const {
    std::size_t i = hasher_(key) & mask_;
    while (full_[i]) {
      if (slots_[i].key == key) return i;
      i = (i + 1) & mask_;
    }
    return npos;
  }

  void rehash(std::size_t new_capacity) {
    FLEX_ASSERT((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Entry> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_full = std::move(full_);
    slots_.assign(new_capacity, Entry{});
    full_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_full[i]) continue;
      std::size_t j = hasher_(old_slots[i].key) & mask_;
      while (full_[j]) j = (j + 1) & mask_;
      slots_[j] = std::move(old_slots[i]);
      full_[j] = 1;
    }
  }

  std::vector<Entry> slots_;
  std::vector<std::uint8_t> full_;  ///< 1 = occupied (separate for scan locality)
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint64_t next_ordinal_ = 0;
  [[no_unique_address]] Hash hasher_{};
};

}  // namespace flex
