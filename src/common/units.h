// Simulation units.
//
// Time is kept as integral nanoseconds (SimTime) everywhere: the SSD
// simulator adds many small latencies and floating-point time would drift.
// Storage-time for retention modelling, by contrast, spans hours-to-months
// and enters only through ln(1 + t/t0), so it is carried as double hours.
#pragma once

#include <cstdint>

namespace flex {

/// Simulated wall-clock time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// Durations, also in nanoseconds.
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1'000;
constexpr Duration kMillisecond = 1'000'000;
constexpr Duration kSecond = 1'000'000'000;

constexpr double to_micros(Duration d) { return static_cast<double>(d) / 1e3; }
constexpr double to_millis(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e9; }

/// Retention (data-age) time in hours; t0 in the paper's Eq. 3 is one hour.
using Hours = double;

constexpr Hours kDay = 24.0;
constexpr Hours kWeek = 7.0 * kDay;
constexpr Hours kMonth = 30.0 * kDay;

/// Threshold voltages are plain volts; the models operate on sub-100 mV
/// margins so double precision is ample.
using Volt = double;

}  // namespace flex
