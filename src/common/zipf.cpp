#include "common/zipf.h"

#include <cmath>

#include "common/assert.h"

namespace flex {

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  FLEX_EXPECTS(n >= 1);
  FLEX_EXPECTS(theta >= 0.0);
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

// h(x) = x^-theta, with the theta == 1 singular case handled via exp/log
// so the same code path covers all exponents.
double ZipfSampler::h(double x) const { return std::exp(-theta_ * std::log(x)); }

// Integral of h: x^(1-theta)/(1-theta), or log(x) when theta == 1.
double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  if (theta_ == 1.0) return log_x;
  // expm1 keeps precision when theta is close to 1.
  return std::expm1((1.0 - theta_) * log_x) / (1.0 - theta_);
}

double ZipfSampler::h_integral_inverse(double x) const {
  if (theta_ == 1.0) return std::exp(x);
  double t = x * (1.0 - theta_);
  if (t < -1.0) t = -1.0;  // numeric guard near the distribution head
  return std::exp(std::log1p(t) / (1.0 - theta_));
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  if (n_ == 1) return 0;
  if (theta_ == 0.0) return rng.below(n_);
  while (true) {
    const double u =
        h_integral_n_ + rng.uniform() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k - 1;  // external interface is 0-based rank
    }
  }
}

}  // namespace flex
