// Block-level I/O trace records and CSV (de)serialisation.
//
// Format (one request per line): `timestamp_us,op,lpn,pages` with op R or W
// — the same information the MSR-Cambridge / UMass traces carry after
// sector-to-page alignment.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"

namespace flex::trace {

struct Request {
  SimTime arrival = 0;        ///< ns since trace start
  bool is_write = false;
  std::uint64_t lpn = 0;      ///< first logical page
  std::uint32_t pages = 1;    ///< request length in pages
  std::uint16_t tenant = 0;   ///< QoS tenant index (0 = default tenant)
  std::uint8_t priority = 0;  ///< 0 = normal; higher tightens deadlines
  /// Host port originating the request in an array (src/host): requests
  /// from different requesters contend on different uplinks into the
  /// switch. Single-drive runs and CSV traces leave it 0.
  std::uint8_t requester = 0;

  bool operator==(const Request&) const = default;
};

/// Pull-based request stream: the open-loop workload engine implements this
/// so the simulator can draw arrivals one at a time instead of replaying a
/// pre-materialised vector. `next()` returns requests in non-decreasing
/// arrival order and std::nullopt when the stream is exhausted.
class RequestSource {
 public:
  virtual ~RequestSource() = default;
  virtual std::optional<Request> next() = 0;
};

/// Summary statistics of a trace (used by tests and the workload report).
struct TraceSummary {
  std::uint64_t requests = 0;
  std::uint64_t reads = 0;
  std::uint64_t read_pages = 0;
  std::uint64_t write_pages = 0;
  std::uint64_t max_lpn = 0;
  double read_fraction() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(reads) /
                               static_cast<double>(requests);
  }
};

TraceSummary summarize(const std::vector<Request>& trace);

void write_csv(std::ostream& out, const std::vector<Request>& trace);
/// Throws std::runtime_error on malformed lines.
std::vector<Request> read_csv(std::istream& in);

}  // namespace flex::trace
