// Synthetic stand-ins for the paper's seven benchmark traces.
//
// The real traces (UMass Financial2, MSR-Cambridge web/prj, PC workloads)
// are not redistributable, so each workload is generated from published
// characteristics: read/write mix, footprint, popularity skew (Zipf),
// request size and arrival rate. What matters for FlexLevel is exactly
// this tuple — AccessEval feeds on read skew, the GC penalty feeds on
// write volume — so the generators exercise the same mechanisms.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trace/trace.h"

namespace flex::trace {

struct WorkloadParams {
  std::string name;
  double read_fraction = 0.7;      ///< request mix
  double zipf_theta = 0.9;         ///< popularity skew of accesses
  std::uint64_t footprint_pages = 200'000;
  double mean_request_pages = 1.5; ///< geometric request length
  std::uint32_t max_request_pages = 64;
  double iops = 2'000.0;           ///< exponential inter-arrivals
  std::uint64_t requests = 200'000;
  /// Reads and writes draw from independently permuted Zipf ranks so the
  /// read-hot set only partially overlaps the write-hot set (fraction of
  /// shared hot pages).
  double read_write_overlap = 0.5;
  /// Probability that a request continues sequentially after the previous
  /// one of the same kind (block traces show pronounced sequential runs).
  double sequential_fraction = 0.1;
};

/// The seven paper workloads, in Fig. 6/7 order.
enum class Workload { kFin2, kWeb1, kWeb2, kPrj1, kPrj2, kWin1, kWin2 };

constexpr std::array<Workload, 7> kAllWorkloads = {
    Workload::kFin2, Workload::kWeb1, Workload::kWeb2, Workload::kPrj1,
    Workload::kPrj2, Workload::kWin1, Workload::kWin2};

/// Parameters chosen per workload family: OLTP (fin-2) is skewed,
/// read-mostly, small-request; web-1/2 are almost pure reads; prj-1/2 carry
/// the project-server write load; win-1/2 are mixed PC workloads.
WorkloadParams workload_params(Workload workload);

std::string workload_name(Workload workload);

/// Generates the request stream. Deterministic in (params, seed).
std::vector<Request> generate(const WorkloadParams& params,
                              std::uint64_t seed);

}  // namespace flex::trace
