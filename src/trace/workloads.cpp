#include "trace/workloads.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.h"
#include "common/zipf.h"

namespace flex::trace {

WorkloadParams workload_params(Workload workload) {
  WorkloadParams p;
  switch (workload) {
    case Workload::kFin2:
      // UMass Financial2: OLTP, read-dominant, tiny requests, heavy skew.
      p = {.name = "fin-2",
           .read_fraction = 0.82,
           .zipf_theta = 1.10,
           .footprint_pages = 260'000,
           .mean_request_pages = 1.2,
           .max_request_pages = 16,
           .iops = 4'000.0,
           .requests = 600'000,
           .read_write_overlap = 0.25,
           .sequential_fraction = 0.05};
      break;
    case Workload::kWeb1:
      // Search-engine web server: nearly pure random reads.
      p = {.name = "web-1",
           .read_fraction = 0.99,
           .zipf_theta = 0.90,
           .footprint_pages = 240'000,
           .mean_request_pages = 2.0,
           .max_request_pages = 32,
           .iops = 3'000.0,
           .requests = 500'000,
           .read_write_overlap = 0.2,
           .sequential_fraction = 0.10};
      break;
    case Workload::kWeb2:
      p = {.name = "web-2",
           .read_fraction = 0.96,
           .zipf_theta = 0.80,
           .footprint_pages = 260'000,
           .mean_request_pages = 2.5,
           .max_request_pages = 32,
           .iops = 2'500.0,
           .requests = 500'000,
           .read_write_overlap = 0.2,
           .sequential_fraction = 0.15};
      break;
    case Workload::kPrj1:
      // MSR project server: the write-heavy member of the pair.
      p = {.name = "prj-1",
           .read_fraction = 0.42,
           .zipf_theta = 0.70,
           .footprint_pages = 260'000,
           .mean_request_pages = 3.0,
           .max_request_pages = 64,
           .iops = 800.0,
           .requests = 500'000,
           .read_write_overlap = 0.2,
           .sequential_fraction = 0.25};
      break;
    case Workload::kPrj2:
      p = {.name = "prj-2",
           .read_fraction = 0.70,
           .zipf_theta = 0.85,
           .footprint_pages = 260'000,
           .mean_request_pages = 2.5,
           .max_request_pages = 64,
           .iops = 1'500.0,
           .requests = 500'000,
           .read_write_overlap = 0.2,
           .sequential_fraction = 0.20};
      break;
    case Workload::kWin1:
      // Desktop PC: mixed, moderately skewed, bursty small I/O.
      p = {.name = "win-1",
           .read_fraction = 0.60,
           .zipf_theta = 0.95,
           .footprint_pages = 200'000,
           .mean_request_pages = 1.8,
           .max_request_pages = 32,
           .iops = 1'200.0,
           .requests = 500'000,
           .read_write_overlap = 0.2,
           .sequential_fraction = 0.15};
      break;
    case Workload::kWin2:
      p = {.name = "win-2",
           .read_fraction = 0.75,
           .zipf_theta = 0.85,
           .footprint_pages = 220'000,
           .mean_request_pages = 2.0,
           .max_request_pages = 32,
           .iops = 1'600.0,
           .requests = 500'000,
           .read_write_overlap = 0.2,
           .sequential_fraction = 0.15};
      break;
  }
  return p;
}

std::string workload_name(Workload workload) {
  return workload_params(workload).name;
}

namespace {

// Maps popularity ranks onto logical pages with a fixed multiplicative
// permutation so the hot set is scattered across the address space; `mult`
// must be coprime with the footprint.
std::uint64_t permute(std::uint64_t rank, std::uint64_t mult,
                      std::uint64_t offset, std::uint64_t footprint) {
  return (rank * mult + offset) % footprint;
}

std::uint64_t coprime_multiplier(std::uint64_t footprint,
                                 std::uint64_t candidate) {
  while (std::gcd(candidate, footprint) != 1) ++candidate;
  return candidate;
}

}  // namespace

std::vector<Request> generate(const WorkloadParams& params,
                              std::uint64_t seed) {
  FLEX_EXPECTS(params.footprint_pages >= 1024);
  FLEX_EXPECTS(params.read_fraction >= 0.0 && params.read_fraction <= 1.0);
  FLEX_EXPECTS(params.mean_request_pages >= 1.0);
  FLEX_EXPECTS(params.iops > 0.0);

  Rng rng(seed);
  // The footprint splits into a read region and a write-exclusive region:
  // block-trace studies show read and write working sets overlap only
  // partially, and data that is never rewritten is exactly the data whose
  // retention age keeps growing. `read_write_overlap` is the fraction of
  // writes that target the read region.
  const std::uint64_t read_span =
      std::max<std::uint64_t>(params.footprint_pages * 7 / 10, 1024);
  const std::uint64_t write_span = params.footprint_pages - read_span;
  const ZipfSampler read_zipf(read_span, params.zipf_theta);
  const ZipfSampler write_zipf(std::max<std::uint64_t>(write_span, 1),
                               params.zipf_theta);
  const std::uint64_t read_mult =
      coprime_multiplier(read_span, 2'654'435'761ULL);
  const std::uint64_t write_mult = coprime_multiplier(
      std::max<std::uint64_t>(write_span, 1), 40'503'551ULL);

  std::vector<Request> out;
  out.reserve(params.requests);
  double clock_ns = 0.0;
  const double mean_gap_ns = 1e9 / params.iops;
  const double geo_p = 1.0 / params.mean_request_pages;
  std::uint64_t last_read_end = 0;
  std::uint64_t last_write_end = 0;

  for (std::uint64_t i = 0; i < params.requests; ++i) {
    // Poisson arrivals.
    clock_ns += -mean_gap_ns * std::log(1.0 - rng.uniform());
    Request req;
    req.arrival = static_cast<SimTime>(clock_ns);
    req.is_write = !rng.chance(params.read_fraction);

    // Geometric request length.
    std::uint32_t pages = 1;
    while (pages < params.max_request_pages && !rng.chance(geo_p)) ++pages;
    req.pages = pages;

    std::uint64_t& last_end = req.is_write ? last_write_end : last_read_end;
    if (i > 0 && rng.chance(params.sequential_fraction)) {
      req.lpn = last_end % params.footprint_pages;
    } else if (!req.is_write ||
               (write_span == 0 || rng.chance(params.read_write_overlap))) {
      req.lpn = permute(read_zipf.sample(rng), read_mult, 0, read_span);
    } else {
      req.lpn =
          read_span + permute(write_zipf.sample(rng), write_mult, 0,
                              write_span);
    }
    // Clamp runs that would spill past the footprint.
    if (req.lpn + req.pages > params.footprint_pages) {
      req.lpn = params.footprint_pages - req.pages;
    }
    last_end = req.lpn + req.pages;
    out.push_back(req);
  }
  return out;
}

}  // namespace flex::trace
