#include "trace/trace.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <ostream>
#include <istream>
#include <stdexcept>
#include <string>

namespace flex::trace {

TraceSummary summarize(const std::vector<Request>& trace) {
  TraceSummary s;
  for (const auto& req : trace) {
    ++s.requests;
    if (req.is_write) {
      s.write_pages += req.pages;
    } else {
      ++s.reads;
      s.read_pages += req.pages;
    }
    if (req.pages > 0) {
      s.max_lpn = std::max(s.max_lpn, req.lpn + req.pages - 1);
    }
  }
  return s;
}

void write_csv(std::ostream& out, const std::vector<Request>& trace) {
  for (const auto& req : trace) {
    out << req.arrival / kMicrosecond << ',' << (req.is_write ? 'W' : 'R')
        << ',' << req.lpn << ',' << req.pages << '\n';
  }
}

namespace {

std::uint64_t parse_u64(std::string_view field, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::runtime_error(std::string("trace: bad ") + what + " field: " +
                             std::string(field));
  }
  return value;
}

}  // namespace

std::vector<Request> read_csv(std::istream& in) {
  std::vector<Request> trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::string_view view(line);
    std::array<std::string_view, 4> fields;
    for (int i = 0; i < 4; ++i) {
      const std::size_t comma = view.find(',');
      if ((comma == std::string_view::npos) != (i == 3)) {
        throw std::runtime_error("trace: expected 4 comma-separated fields: " +
                                 line);
      }
      fields[static_cast<std::size_t>(i)] = view.substr(0, comma);
      if (comma != std::string_view::npos) view.remove_prefix(comma + 1);
    }
    Request req;
    req.arrival = static_cast<SimTime>(parse_u64(fields[0], "timestamp")) *
                  kMicrosecond;
    if (fields[1] == "W" || fields[1] == "w") {
      req.is_write = true;
    } else if (fields[1] == "R" || fields[1] == "r") {
      req.is_write = false;
    } else {
      throw std::runtime_error("trace: bad op field: " + line);
    }
    req.lpn = parse_u64(fields[2], "lpn");
    req.pages = static_cast<std::uint32_t>(parse_u64(fields[3], "pages"));
    if (req.pages == 0) {
      throw std::runtime_error("trace: zero-length request: " + line);
    }
    trace.push_back(req);
  }
  return trace;
}

}  // namespace flex::trace
