#include "ftl/write_buffer.h"

#include "common/assert.h"

namespace flex::ftl {

WriteBuffer::WriteBuffer(std::uint64_t capacity_pages,
                         std::uint64_t flush_batch)
    : capacity_(capacity_pages),
      flush_batch_(flush_batch),
      lru_(capacity_pages + 1) {
  FLEX_EXPECTS(capacity_pages >= 1);
  FLEX_EXPECTS(flush_batch >= 1 && flush_batch <= capacity_pages);
}

const std::vector<std::uint64_t>& WriteBuffer::insert(std::uint64_t lpn,
                                                      bool dirty) {
  insert_scratch_.clear();
  if (bool* entry = lru_.find(lpn)) {
    // Overwrite in place: refresh recency, nothing to flush.
    lru_.touch(lpn);
    if (*entry != dirty) {
      dirty_count_ += dirty ? 1 : -1;
      *entry = dirty;
    }
    return insert_scratch_;
  }
  lru_.push_front(lpn, dirty);
  if (dirty) ++dirty_count_;
  if (lru_.size() > capacity_) {
    std::uint64_t evicted = 0;
    while (!lru_.empty() && evicted < flush_batch_) {
      const std::uint64_t victim = lru_.back_key();
      if (*lru_.find(victim)) {
        --dirty_count_;
        insert_scratch_.push_back(victim);
      }
      lru_.pop_back();
      ++evicted;
    }
  }
  FLEX_ENSURES(lru_.size() <= capacity_);
  return insert_scratch_;
}

const std::vector<std::uint64_t>& WriteBuffer::write(std::uint64_t lpn) {
  return insert(lpn, /*dirty=*/true);
}

const std::vector<std::uint64_t>& WriteBuffer::insert_clean(
    std::uint64_t lpn) {
  return insert(lpn, /*dirty=*/false);
}

const std::vector<std::uint64_t>& WriteBuffer::flush_barrier() {
  flush_scratch_.clear();
  // Oldest first, matching the overflow eviction order.
  lru_.for_each_oldest_first([this](std::uint64_t lpn, bool& dirty) {
    if (dirty) {
      dirty = false;
      flush_scratch_.push_back(lpn);
    }
  });
  dirty_count_ = 0;
  return flush_scratch_;
}

const std::vector<std::uint64_t>& WriteBuffer::drain() {
  flush_scratch_.clear();
  // Oldest first, matching the overflow eviction order.
  lru_.for_each_oldest_first([this](std::uint64_t lpn, bool& dirty) {
    if (dirty) flush_scratch_.push_back(lpn);
  });
  lru_.clear();
  dirty_count_ = 0;
  return flush_scratch_;
}

std::uint64_t WriteBuffer::power_loss() {
  const std::uint64_t lost = dirty_count_;
  lru_.clear();
  dirty_count_ = 0;
  return lost;
}

}  // namespace flex::ftl
