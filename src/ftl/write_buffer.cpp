#include "ftl/write_buffer.h"

#include "common/assert.h"

namespace flex::ftl {

WriteBuffer::WriteBuffer(std::uint64_t capacity_pages,
                         std::uint64_t flush_batch)
    : capacity_(capacity_pages), flush_batch_(flush_batch) {
  FLEX_EXPECTS(capacity_pages >= 1);
  FLEX_EXPECTS(flush_batch >= 1 && flush_batch <= capacity_pages);
}

std::vector<std::uint64_t> WriteBuffer::insert(std::uint64_t lpn,
                                               bool dirty) {
  if (const auto it = map_.find(lpn); it != map_.end()) {
    // Overwrite in place: refresh recency, nothing to flush.
    order_.splice(order_.begin(), order_, it->second.pos);
    if (it->second.dirty != dirty) {
      dirty_count_ += dirty ? 1 : -1;
      it->second.dirty = dirty;
    }
    return {};
  }
  order_.push_front(lpn);
  map_[lpn] = Entry{order_.begin(), dirty};
  if (dirty) ++dirty_count_;
  std::vector<std::uint64_t> flush;
  if (map_.size() > capacity_) {
    flush.reserve(flush_batch_);
    std::uint64_t evicted = 0;
    while (!order_.empty() && evicted < flush_batch_) {
      const std::uint64_t victim = order_.back();
      order_.pop_back();
      const auto victim_it = map_.find(victim);
      if (victim_it->second.dirty) {
        --dirty_count_;
        flush.push_back(victim);
      }
      map_.erase(victim_it);
      ++evicted;
    }
  }
  FLEX_ENSURES(map_.size() <= capacity_);
  return flush;
}

std::vector<std::uint64_t> WriteBuffer::write(std::uint64_t lpn) {
  return insert(lpn, /*dirty=*/true);
}

std::vector<std::uint64_t> WriteBuffer::insert_clean(std::uint64_t lpn) {
  return insert(lpn, /*dirty=*/false);
}

std::vector<std::uint64_t> WriteBuffer::flush_barrier() {
  std::vector<std::uint64_t> flush;
  flush.reserve(dirty_count_);
  // Oldest first, matching the overflow eviction order.
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    auto& entry = map_.find(*it)->second;
    if (entry.dirty) {
      entry.dirty = false;
      flush.push_back(*it);
    }
  }
  dirty_count_ = 0;
  return flush;
}

std::vector<std::uint64_t> WriteBuffer::drain() {
  std::vector<std::uint64_t> flush;
  flush.reserve(dirty_count_);
  // Oldest first, matching the overflow eviction order.
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    if (map_.find(*it)->second.dirty) flush.push_back(*it);
  }
  order_.clear();
  map_.clear();
  dirty_count_ = 0;
  return flush;
}

std::uint64_t WriteBuffer::power_loss() {
  const std::uint64_t lost = dirty_count_;
  order_.clear();
  map_.clear();
  dirty_count_ = 0;
  return lost;
}

}  // namespace flex::ftl
