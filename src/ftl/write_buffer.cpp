#include "ftl/write_buffer.h"

#include "common/assert.h"

namespace flex::ftl {

WriteBuffer::WriteBuffer(std::uint64_t capacity_pages,
                         std::uint64_t flush_batch)
    : capacity_(capacity_pages), flush_batch_(flush_batch) {
  FLEX_EXPECTS(capacity_pages >= 1);
  FLEX_EXPECTS(flush_batch >= 1 && flush_batch <= capacity_pages);
}

std::vector<std::uint64_t> WriteBuffer::write(std::uint64_t lpn) {
  if (const auto it = map_.find(lpn); it != map_.end()) {
    // Overwrite in place: refresh recency, nothing to flush.
    order_.splice(order_.begin(), order_, it->second);
    return {};
  }
  order_.push_front(lpn);
  map_[lpn] = order_.begin();
  std::vector<std::uint64_t> flush;
  if (map_.size() > capacity_) {
    flush.reserve(flush_batch_);
    while (!order_.empty() && flush.size() < flush_batch_) {
      const std::uint64_t victim = order_.back();
      order_.pop_back();
      map_.erase(victim);
      flush.push_back(victim);
    }
  }
  FLEX_ENSURES(map_.size() <= capacity_);
  return flush;
}

std::vector<std::uint64_t> WriteBuffer::drain() {
  std::vector<std::uint64_t> flush;
  flush.reserve(map_.size());
  // Oldest first, matching the overflow eviction order.
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    flush.push_back(*it);
  }
  order_.clear();
  map_.clear();
  return flush;
}

}  // namespace flex::ftl
