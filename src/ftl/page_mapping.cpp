#include "ftl/page_mapping.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/assert.h"

namespace flex::ftl {

namespace {

/// splitmix64 finalizer — derives the nonzero transient-flip delta a
/// silent corruption XORs into the delivered CRC (any nonzero value
/// models "some bits differ"; deriving it from the read identity keeps
/// distinct corruptions distinct).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

PageMappingFtl::PageMappingFtl(FtlConfig config)
    : config_(config),
      payload_(config.integrity_seed, config.integrity_payload_words) {
  FLEX_EXPECTS(config_.over_provisioning > 0.0 &&
               config_.over_provisioning < 1.0);
  FLEX_EXPECTS(config_.reduced_capacity_factor > 0.0 &&
               config_.reduced_capacity_factor <= 1.0);
  FLEX_EXPECTS(config_.gc_low_watermark >= 2);

  const std::uint64_t total_blocks =
      static_cast<std::uint64_t>(config_.spec.chips) *
      config_.spec.blocks_per_chip;
  FLEX_EXPECTS(total_blocks > config_.gc_low_watermark * 4);
  blocks_.resize(total_blocks);
  for (auto& block : blocks_) {
    block.erase_count = config_.initial_pe_cycles;
  }
  pages_.assign(config_.spec.total_pages(), PageMeta{});
  if ((config_.spec.pages_per_block & (config_.spec.pages_per_block - 1)) ==
      0) {
    page_shift_ = 0;
    while ((1u << page_shift_) < config_.spec.pages_per_block) ++page_shift_;
  }
  std::size_t ring_capacity = 1;
  while (ring_capacity < total_blocks + 1) ring_capacity *= 2;
  free_ring_.assign(ring_capacity, 0);
  free_mask_ = ring_capacity - 1;
  for (std::uint64_t i = 0; i < total_blocks; ++i) {
    free_push(static_cast<std::uint32_t>(i));
  }

  logical_pages_ = static_cast<std::uint64_t>(
      std::floor(static_cast<double>(config_.spec.total_pages()) *
                 (1.0 - config_.over_provisioning)));
  map_.assign(logical_pages_, kInvalid);
  gc_buckets_.resize(config_.spec.pages_per_block + 1);
  gc_bucket_pos_.assign(total_blocks, 0);
  // The medium: factory-fresh OOB areas and summary pages carrying the
  // pre-aged erase counts.
  oob_.assign(config_.spec.total_pages(), OobRecord{});
  summaries_.assign(total_blocks,
                    BlockSummary{.erase_count = config_.initial_pe_cycles});
  if (config_.integrity) {
    FLEX_EXPECTS(config_.integrity_payload_words >= 1);
    seals_.assign(config_.spec.total_pages(), SealRecord{});
  }
  version_.assign(logical_pages_, 0);
}

void PageMappingFtl::clear_block_pages(std::uint32_t block_id) {
  const std::uint64_t base = make_ppn(block_id, 0);
  for (std::uint32_t p = 0; p < config_.spec.pages_per_block; ++p) {
    pages_[base + p].lpn = kInvalid;
  }
}

void PageMappingFtl::candidate_insert(std::uint32_t block_id) {
  FLEX_ASSERT(!blocks_[block_id].retired);
  auto& bucket = gc_buckets_[blocks_[block_id].valid_count];
  gc_bucket_pos_[block_id] = static_cast<std::uint32_t>(bucket.size());
  bucket.push_back(block_id);
}

void PageMappingFtl::candidate_remove(std::uint32_t block_id,
                                      std::uint32_t old_valid) {
  auto& bucket = gc_buckets_[old_valid];
  const std::uint32_t pos = gc_bucket_pos_[block_id];
  FLEX_ASSERT(pos < bucket.size() && bucket[pos] == block_id);
  bucket[pos] = bucket.back();
  gc_bucket_pos_[bucket[pos]] = pos;
  bucket.pop_back();
}

std::uint32_t PageMappingFtl::usable_pages(const BlockMeta& block) const {
  if (block.mode == PageMode::kNormal) return config_.spec.pages_per_block;
  return static_cast<std::uint32_t>(
      std::floor(config_.spec.pages_per_block *
                 config_.reduced_capacity_factor));
}

std::optional<PageInfo> PageMappingFtl::lookup(std::uint64_t lpn) const {
  FLEX_EXPECTS(lpn < logical_pages_);
  const std::uint64_t ppn = map_[lpn];
  if (ppn == kInvalid) return std::nullopt;
  const BlockMeta& block = blocks_[block_of(ppn)];
  FLEX_ASSERT(pages_[ppn].lpn == lpn);
  return PageInfo{.ppn = ppn,
                  .mode = block.mode,
                  .write_time = pages_[ppn].write_time,
                  .pe_cycles = block.erase_count,
                  .block_reads = block.read_count};
}

void PageMappingFtl::record_read(std::uint64_t ppn) {
  ++blocks_[block_of(ppn)].read_count;
}

std::uint64_t PageMappingFtl::block_read_count(std::uint64_t ppn) const {
  return blocks_[block_of(ppn)].read_count;
}

void PageMappingFtl::invalidate(std::uint64_t lpn) {
  const std::uint64_t ppn = map_[lpn];
  if (ppn == kInvalid) return;
  const std::uint32_t block_id = block_of(ppn);
  BlockMeta& block = blocks_[block_id];
  FLEX_ASSERT(pages_[ppn].lpn == lpn);
  pages_[ppn].lpn = kInvalid;
  FLEX_ASSERT(block.valid_count > 0);
  const bool closed = !block.open && block.next_page > 0;
  if (closed) {
    // Fused candidate_remove + candidate_insert for the adjacent-bucket
    // move (valid -> valid-1): same swap-remove-then-push-back sequence,
    // one gc_bucket_pos_ round-trip instead of two.
    auto& old_bucket = gc_buckets_[block.valid_count];
    const std::uint32_t pos = gc_bucket_pos_[block_id];
    FLEX_ASSERT(pos < old_bucket.size() && old_bucket[pos] == block_id);
    old_bucket[pos] = old_bucket.back();
    gc_bucket_pos_[old_bucket[pos]] = pos;
    old_bucket.pop_back();
    auto& new_bucket = gc_buckets_[block.valid_count - 1];
    gc_bucket_pos_[block_id] = static_cast<std::uint32_t>(new_bucket.size());
    new_bucket.push_back(block_id);
  }
  --block.valid_count;
  map_[lpn] = kInvalid;
}

std::uint32_t PageMappingFtl::allocate_block(PageMode mode) {
  for (;;) {
    FLEX_ASSERT(free_count_ > 0 && "FTL out of free blocks: GC failed");
    const std::uint32_t id = free_pop();
    BlockMeta& block = blocks_[id];
    FLEX_ASSERT(!block.retired);
    FLEX_ASSERT(block.valid_count == 0 && block.next_page == 0);
    if (injector_ && injector_->grown_defect(id, block.erase_count)) {
      ++stats_.grown_defects;
      if (telemetry_) ++metrics_.grown_defects->value;
      mark_retired(id);
      continue;
    }
    block.mode = mode;
    block.open = true;
    return id;
  }
}

std::uint64_t PageMappingFtl::append(std::uint64_t lpn, PageMode mode,
                                     SimTime now, std::uint64_t* programs,
                                     bool relocation) {
  const auto mode_index = static_cast<std::size_t>(mode);
  for (;;) {
    std::uint32_t frontier = frontier_[mode_index];
    if (frontier == kNoBlock ||
        blocks_[frontier].next_page >= usable_pages(blocks_[frontier])) {
      if (frontier != kNoBlock) {
        blocks_[frontier].open = false;
        candidate_insert(frontier);
      }
      frontier = allocate_block(mode);
      frontier_[mode_index] = frontier;
    }
    BlockMeta& block = blocks_[frontier];
    const std::uint32_t page_id = block.next_page++;
    // A failed attempt still costs the chip a program op and burns the
    // page slot, so the attempt is counted before the fault check.
    ++stats_.nand_writes;
    if (telemetry_) ++metrics_.nand_writes->value;
    ++*programs;
    if (injector_ && injector_->program_fails(make_ppn(frontier, page_id),
                                              block.erase_count)) {
      ++stats_.program_fails;
      if (telemetry_) ++metrics_.program_fails->value;
      retire_failed_frontier(frontier, now, programs);
      continue;  // re-drive the write on the fresh frontier
    }
    const std::uint64_t ppn = make_ppn(frontier, page_id);
    pages_[ppn] = PageMeta{.lpn = lpn, .write_time = now};
    ++block.valid_count;
    map_[lpn] = ppn;
    // The OOB record lands in the same page program as the data — atomic
    // with it, which is what makes last-epoch-wins recovery sound.
    oob_[ppn] = OobRecord{.lpn = lpn,
                          .epoch = ++epoch_,
                          .version = version_[lpn],
                          .write_time = now,
                          .mode = block.mode,
                          .programmed = true};
    if (config_.integrity) {
      // Seal the payload (claim == truth on a healthy program), then let
      // the silent-data fault kinds break it. Identity: a page slot is
      // programmed once per erase generation, so (ppn, erase_count) is
      // unique — the same discipline as program_fails.
      SealRecord seal{.seal_lpn = lpn,
                      .seal_version = version_[lpn],
                      .seal_crc = payload_.crc(lpn, version_[lpn]),
                      .payload_lpn = lpn,
                      .payload_version = version_[lpn],
                      .sealed = true};
      if (injector_ != nullptr &&
          injector_->misdirected_write(ppn, block.erase_count)) {
        // Data and seal went to some other page; this slot reports
        // success but stays unsealed garbage.
        seal = SealRecord{};
        ++stats_.misdirected_writes;
        if (telemetry_) ++metrics_.misdirected_writes->value;
      } else if (relocation && version_[lpn] > 0 && injector_ != nullptr &&
                 injector_->torn_relocation(ppn, block.erase_count)) {
        // Relocation DMA raced a host overwrite: the previous generation's
        // bytes land under the fresh seal.
        seal.payload_version = version_[lpn] - 1;
        ++stats_.torn_relocations;
        if (telemetry_) ++metrics_.torn_relocations->value;
      }
      seals_[ppn] = seal;
    }
    return ppn;
  }
}

void PageMappingFtl::retire_failed_frontier(std::uint32_t block_id,
                                            SimTime now,
                                            std::uint64_t* programs) {
  BlockMeta& block = blocks_[block_id];
  FLEX_ASSERT(block.open && !block.retired);
  // Drop the frontier first: the relocations below must land elsewhere
  // (append will allocate a fresh block, re-checking for grown defects).
  if (frontier_[static_cast<std::size_t>(block.mode)] == block_id) {
    frontier_[static_cast<std::size_t>(block.mode)] = kNoBlock;
  }
  std::uint64_t moves = 0;
  relocate_valid_pages(block_id, now, &moves, programs);
  stats_.retire_page_moves += moves;
  clear_block_pages(block_id);
  block.next_page = 0;
  block.open = false;
  block.read_count = 0;
  mark_retired(block_id);
  if (telemetry_) metrics_.retire_page_moves->value += moves;
}

void PageMappingFtl::mark_retired(std::uint32_t block_id) {
  BlockMeta& block = blocks_[block_id];
  FLEX_ASSERT(!block.retired && block.valid_count == 0);
  block.retired = true;
  // Retirement is persisted in the summary page at once — a bad block
  // that came back from the dead after a crash would corrupt data. Its
  // OOB records are deliberately left in place: Mount skips retired
  // blocks when rebuilding the map (their live data was relocated, so a
  // newer-epoch copy exists) but still scans them for the epoch maximum.
  summaries_[block_id].retired = true;
  ++retired_count_;
  ++stats_.retired_blocks;
  if (telemetry_) ++metrics_.retired_blocks->value;
}

std::optional<std::uint32_t> PageMappingFtl::pick_gc_victim() const {
  // Greedy: the closed block with the fewest valid pages. Within a bucket,
  // the least-worn block is preferred, which doubles as wear leveling.
  for (const auto& bucket : gc_buckets_) {
    if (bucket.empty()) continue;
    // Bounded wear-leveling tiebreak: inspecting a handful of candidates
    // keeps victim selection O(1) while still steering GC toward less-worn
    // blocks. Fully-valid blocks (possible for reduced blocks, whose
    // usable slot count is lower) yield no space and are skipped.
    std::optional<std::uint32_t> best;
    const std::size_t scan = std::min<std::size_t>(bucket.size(), 32);
    for (std::size_t i = 0; i < scan; ++i) {
      const std::uint32_t id = bucket[i];
      if (blocks_[id].valid_count >= usable_pages(blocks_[id])) continue;
      if (!best || blocks_[id].erase_count < blocks_[*best].erase_count) {
        best = id;
      }
    }
    if (best) return best;
  }
  return std::nullopt;
}

std::optional<std::uint32_t> PageMappingFtl::pick_wear_leveling_victim()
    const {
  // Least-worn closed block, whatever its valid count: its cold data is
  // what pins the wear imbalance. Linear scan, amortised by the interval.
  std::optional<std::uint32_t> best;
  for (std::uint32_t id = 0; id < blocks_.size(); ++id) {
    const BlockMeta& block = blocks_[id];
    if (block.open || block.retired || block.next_page == 0) continue;
    if (!best || block.erase_count < blocks_[*best].erase_count) best = id;
  }
  return best;
}

void PageMappingFtl::relocate_valid_pages(std::uint32_t block_id, SimTime now,
                                          std::uint64_t* page_moves,
                                          std::uint64_t* programs) {
  BlockMeta& victim = blocks_[block_id];
  const std::uint64_t base = make_ppn(block_id, 0);
  for (std::uint32_t p = 0; p < victim.next_page; ++p) {
    const std::uint64_t lpn = pages_[base + p].lpn;
    if (lpn == kInvalid) continue;
    // Relocation reprograms the data into fresh cells, so its retention
    // clock restarts at `now`; only the logical identity is preserved.
    pages_[base + p].lpn = kInvalid;
    --victim.valid_count;
    map_[lpn] = kInvalid;
    append(lpn, victim.mode, now, programs, /*relocation=*/true);
    ++*page_moves;
  }
  FLEX_ASSERT(victim.valid_count == 0);
}

void PageMappingFtl::reclaim_block(std::uint32_t block_id, SimTime now,
                                   std::uint64_t* page_moves,
                                   std::uint64_t* programs) {
  BlockMeta& victim = blocks_[block_id];
  FLEX_ASSERT(!victim.retired);
  // Mark as open so relocation's invalidate path skips bucket updates.
  victim.open = true;
  relocate_valid_pages(block_id, now, page_moves, programs);
  clear_block_pages(block_id);
  victim.next_page = 0;
  victim.open = false;
  ++victim.erase_count;
  // Erase renews the cells: the accumulated pass-voltage stress is gone.
  victim.read_count = 0;
  ++stats_.nand_erases;
  if (telemetry_) ++metrics_.nand_erases->value;
  // The summary page records the erase attempt either way (wear is real
  // even when the erase fails), so erase counts survive power loss.
  summaries_[block_id].erase_count = victim.erase_count;
  if (injector_ && injector_->erase_fails(block_id, victim.erase_count)) {
    // The erase failed: the block never returns to the free list, so the
    // GC loop (free count unchanged) simply reclaims another victim.
    ++stats_.erase_fails;
    if (telemetry_) ++metrics_.erase_fails->value;
    mark_retired(block_id);
    return;
  }
  // A successful erase wipes the block's OOB records with the data.
  const std::uint64_t base = make_ppn(block_id, 0);
  for (std::uint32_t p = 0; p < config_.spec.pages_per_block; ++p) {
    oob_[base + p] = OobRecord{};
  }
  if (config_.integrity) {
    for (std::uint32_t p = 0; p < config_.spec.pages_per_block; ++p) {
      seals_[base + p] = SealRecord{};
    }
  }
  free_push(block_id);
}

void PageMappingFtl::maybe_garbage_collect(SimTime now,
                                           std::uint64_t* programs,
                                           std::uint64_t* erases) {
  while (free_count_ < config_.gc_low_watermark) {
    std::optional<std::uint32_t> victim_id;
    if (config_.static_wl_interval > 0 &&
        stats_.gc_runs % config_.static_wl_interval ==
            config_.static_wl_interval - 1) {
      victim_id = pick_wear_leveling_victim();
    }
    if (!victim_id) victim_id = pick_gc_victim();
    FLEX_ASSERT(victim_id.has_value() &&
                "no GC victim: drive is over-committed");
    candidate_remove(*victim_id, blocks_[*victim_id].valid_count);
    ++stats_.gc_runs;
    std::uint64_t moves = 0;
    reclaim_block(*victim_id, now, &moves, programs);
    stats_.gc_page_moves += moves;
    ++*erases;
    if (telemetry_) {
      ++metrics_.gc_runs->value;
      metrics_.gc_page_moves->value += moves;
      if (telemetry::SpanRecorder* tracer = telemetry_->tracer()) {
        tracer->record({.name = "gc",
                        .cat = "ftl",
                        .pid = telemetry_->pid,
                        .tid = telemetry::kFtlTrack,
                        .start = now,
                        .arg0_key = "pages_moved",
                        .arg0 = static_cast<double>(moves)});
      }
    }
  }
}

std::optional<RefreshResult> PageMappingFtl::refresh_block(std::uint64_t ppn,
                                                           SimTime now) {
  const std::uint32_t block_id = block_of(ppn);
  if (blocks_[block_id].open || blocks_[block_id].retired ||
      blocks_[block_id].next_page == 0) {
    return std::nullopt;
  }
  RefreshResult result;
  // Top up free blocks first so the relocations below cannot exhaust the
  // frontier. GC may reclaim (and thereby renew, its read count cleared)
  // the target block itself or reopen it as a frontier; the refresh is
  // then moot (the GC side work stays accounted in stats_).
  maybe_garbage_collect(now, &result.page_programs, &result.erases);
  BlockMeta& block = blocks_[block_id];
  if (block.open || block.retired || block.next_page == 0) {
    return std::nullopt;
  }
  candidate_remove(block_id, block.valid_count);
  ++stats_.refresh_runs;
  std::uint64_t moves = 0;
  reclaim_block(block_id, now, &moves, &result.page_programs);
  stats_.refresh_page_moves += moves;
  if (telemetry_) {
    ++metrics_.refresh_runs->value;
    metrics_.refresh_page_moves->value += moves;
  }
  result.pages_moved = moves;
  ++result.erases;
  return result;
}

WriteResult PageMappingFtl::write(std::uint64_t lpn, PageMode mode,
                                  SimTime now) {
  FLEX_EXPECTS(lpn < logical_pages_);
  WriteResult result;
  result.page_programs = 0;
  ++stats_.host_writes;
  if (telemetry_) ++metrics_.host_writes->value;
  // A host write is a new generation of the data; migrations and GC
  // relocations move a generation without bumping it.
  ++version_[lpn];
  invalidate(lpn);
  maybe_garbage_collect(now, &result.page_programs, &result.erases);
  result.ppn = append(lpn, mode, now, &result.page_programs);
  result.mode = mode;
  return result;
}

WriteResult PageMappingFtl::migrate(std::uint64_t lpn, PageMode mode,
                                    SimTime now) {
  FLEX_EXPECTS(lpn < logical_pages_);
  FLEX_EXPECTS(map_[lpn] != kInvalid);
  WriteResult result;
  result.page_programs = 0;
  ++stats_.mode_migrations;
  if (telemetry_) ++metrics_.mode_migrations->value;
  invalidate(lpn);
  maybe_garbage_collect(now, &result.page_programs, &result.erases);
  // A migration moves the existing generation between modes — a
  // relocation program, exposed to the torn-relocation fault like GC.
  result.ppn = append(lpn, mode, now, &result.page_programs,
                      /*relocation=*/true);
  result.mode = mode;
  return result;
}

WriteResult PageMappingFtl::repair(std::uint64_t lpn, SimTime now) {
  FLEX_EXPECTS(config_.integrity);
  FLEX_EXPECTS(lpn < logical_pages_);
  FLEX_EXPECTS(map_[lpn] != kInvalid);
  const PageMode mode = blocks_[block_of(map_[lpn])].mode;
  WriteResult result;
  result.page_programs = 0;
  ++stats_.repair_writes;
  if (telemetry_) ++metrics_.repair_writes->value;
  invalidate(lpn);
  maybe_garbage_collect(now, &result.page_programs, &result.erases);
  // Fresh current-generation data from the controller buffer (the array
  // regenerated it from a healthy replica): not a relocation, so the
  // torn fault cannot strike — though the program can still misdirect,
  // which is why read-repair scrubs until the copy verifies.
  result.ppn = append(lpn, mode, now, &result.page_programs);
  result.mode = mode;
  return result;
}

SealVerdict PageMappingFtl::verify_page(std::uint64_t lpn, std::uint64_t ppn,
                                        std::uint64_t block_reads) const {
  FLEX_EXPECTS(config_.integrity);
  FLEX_ASSERT(map_[lpn] == ppn);
  const SealRecord& seal = seals_[ppn];
  SealVerdict verdict;
  if (!seal.sealed) {
    // Expected a sealed page, found none (misdirected write): whatever
    // bytes are here, they are not ours and carry no matching seal.
    verdict.flagged = true;
    verdict.persistent = true;
    verdict.delivered_bad = true;
    return verdict;
  }
  const std::uint64_t expect_version = version_[lpn];
  // The CRC of the bytes the read actually delivers: computed from the
  // stored payload's identity (the generator stands in for the page
  // body), XOR-perturbed when this read's transient post-ECC flip fires.
  std::uint64_t actual_crc =
      payload_.crc(seal.payload_lpn, seal.payload_version);
  const bool transient_flip =
      injector_ != nullptr && injector_->silent_corruption(ppn, block_reads);
  if (transient_flip) {
    actual_crc ^= mix(ppn ^ (block_reads << 20)) | 1;
  }
  // Cross-checks: delivered bytes vs the seal's CRC claim, and the
  // seal's identity claim vs what the FTL/ledger expects of this read.
  const bool crc_ok = actual_crc == seal.seal_crc;
  const bool identity_ok =
      seal.seal_lpn == lpn && seal.seal_version == expect_version;
  verdict.flagged = !crc_ok || !identity_ok;
  verdict.delivered_bad = transient_flip || seal.payload_lpn != lpn ||
                          seal.payload_version != expect_version;
  // Persistent iff the medium itself is wrong: re-delivering the same
  // cells without the transient flip would still fail the cross-check.
  verdict.persistent =
      !identity_ok ||
      payload_.crc(seal.payload_lpn, seal.payload_version) != seal.seal_crc;
  return verdict;
}

DataAudit PageMappingFtl::audit_data(std::uint64_t lpn,
                                     std::uint64_t version) const {
  FLEX_EXPECTS(config_.integrity);
  FLEX_EXPECTS(lpn < logical_pages_ && map_[lpn] != kInvalid);
  const SealRecord& seal = seals_[map_[lpn]];
  DataAudit audit;
  audit.seal_ok =
      seal.sealed && seal.seal_lpn == lpn && seal.seal_version == version &&
      seal.seal_crc == payload_.crc(seal.payload_lpn, seal.payload_version);
  audit.payload_ok = seal.sealed && seal.payload_lpn == lpn &&
                     seal.payload_version == version;
  return audit;
}

MountReport PageMappingFtl::Mount(const MountOptions& options) {
  MountReport report;
  // Power loss wiped the volatile structures; mounting a live FTL discards
  // them the same way, which is what makes Mount idempotent.
  map_.assign(logical_pages_, kInvalid);
  version_.assign(logical_pages_, 0);
  free_head_ = 0;
  free_count_ = 0;
  frontier_[0] = kNoBlock;
  frontier_[1] = kNoBlock;
  for (auto& bucket : gc_buckets_) bucket.clear();
  std::fill(gc_bucket_pos_.begin(), gc_bucket_pos_.end(), 0);
  retired_count_ = 0;
  epoch_ = 0;

  // Per-block durable state first: summaries hold the erase counts and
  // the bad-block ledger.
  for (std::uint32_t id = 0; id < blocks_.size(); ++id) {
    BlockMeta& block = blocks_[id];
    block.erase_count = summaries_[id].erase_count;
    block.retired = summaries_[id].retired;
    block.mode = PageMode::kNormal;
    block.next_page = 0;
    block.valid_count = 0;
    block.open = false;
    block.read_count = 0;
    if (block.retired) ++retired_count_;
  }
  for (PageMeta& page : pages_) page.lpn = kInvalid;

  // OOB scan, last-epoch-wins. Programmed records form a prefix of every
  // block (a failed program retires the block before any further program
  // there), so the scan stops at the first unprogrammed slot. Retired
  // blocks contribute to the epoch maximum only — their live data was
  // relocated before retirement (a newer copy exists elsewhere) or sits
  // behind a failed erase and cannot be trusted — but skipping their
  // epochs could make post-mount epochs regress below pre-crash ones.
  std::vector<std::uint64_t> win_epoch(logical_pages_, 0);
  std::vector<std::uint64_t> win_ppn(logical_pages_, kInvalid);
  std::uint64_t live_records = 0;
  for (std::uint32_t id = 0; id < blocks_.size(); ++id) {
    BlockMeta& block = blocks_[id];
    const std::uint64_t base = make_ppn(id, 0);
    for (std::uint32_t p = 0; p < config_.spec.pages_per_block; ++p) {
      const OobRecord& oob = oob_[base + p];
      if (!oob.programmed) break;
      ++report.pages_scanned;
      epoch_ = std::max(epoch_, oob.epoch);
      if (block.retired) continue;
      block.next_page = p + 1;
      block.mode = oob.mode;
      FLEX_ASSERT(oob.lpn < logical_pages_);
      if (oob.epoch > win_epoch[oob.lpn]) {
        win_epoch[oob.lpn] = oob.epoch;
        win_ppn[oob.lpn] = base + p;
      }
      ++live_records;
    }
  }

  // Install the winners (ascending lpn: reduced_lpns comes out sorted).
  for (std::uint64_t lpn = 0; lpn < logical_pages_; ++lpn) {
    const std::uint64_t ppn = win_ppn[lpn];
    if (ppn == kInvalid) continue;
    const OobRecord& oob = oob_[ppn];
    map_[lpn] = ppn;
    version_[lpn] = oob.version;
    BlockMeta& block = blocks_[block_of(ppn)];
    pages_[ppn] = PageMeta{.lpn = lpn, .write_time = oob.write_time};
    ++block.valid_count;
    ++report.mappings_recovered;
    if (oob.mode == PageMode::kReduced) report.reduced_lpns.push_back(lpn);
  }
  report.stale_records = live_records - report.mappings_recovered;

  // Classify the in-service blocks. Ascending block id keeps the rebuilt
  // free list deterministic across repeated mounts (the pre-crash FIFO
  // order was volatile). Former write frontiers come back as closed data
  // blocks; append() opens fresh frontiers on demand.
  for (std::uint32_t id = 0; id < blocks_.size(); ++id) {
    BlockMeta& block = blocks_[id];
    if (block.retired) continue;
    if (block.next_page == 0) {
      free_push(id);
      ++report.free_blocks;
    } else {
      block.read_count = options.reseed_read_count;
      candidate_insert(id);
      ++report.data_blocks;
    }
  }
  report.retired_blocks = retired_count_;

  // Statistics restart from the recovered ledger: post-mount stats
  // describe this boot, except retired_blocks, which is durable state the
  // metrics snapshot must keep covering (the harness's ledger invariant).
  stats_ = FtlStats{};
  stats_.retired_blocks = retired_count_;
  stats_.mounts = 1;
  stats_.mount_pages_scanned = report.pages_scanned;
  stats_.mount_mappings_recovered = report.mappings_recovered;
  stats_.mount_stale_records = report.stale_records;
  if (telemetry_) {
    ++metrics_.mounts->value;
    metrics_.mount_pages_scanned->value += report.pages_scanned;
    metrics_.mount_mappings_recovered->value += report.mappings_recovered;
    metrics_.mount_stale_records->value += report.stale_records;
  }
  return report;
}

Status PageMappingFtl::check_consistency() const {
  const auto fail = [](std::string message) {
    return Status::Internal(std::move(message));
  };
  for (std::uint64_t lpn = 0; lpn < logical_pages_; ++lpn) {
    const std::uint64_t ppn = map_[lpn];
    if (ppn == kInvalid) continue;
    const std::uint32_t block_id = block_of(ppn);
    const BlockMeta& block = blocks_[block_id];
    if (block.retired) {
      return fail("lpn " + std::to_string(lpn) + " maps into retired block " +
                  std::to_string(block_id));
    }
    const auto page_id =
        static_cast<std::uint32_t>(ppn % config_.spec.pages_per_block);
    if (page_id >= block.next_page) {
      return fail("lpn " + std::to_string(lpn) +
                  " maps past the write pointer of block " +
                  std::to_string(block_id));
    }
    if (pages_[ppn].lpn != lpn) {
      return fail("lpn " + std::to_string(lpn) +
                  " maps to a page that does not map back (ppn " +
                  std::to_string(ppn) + ")");
    }
  }
  std::uint64_t mapped_pages = 0;
  std::uint32_t retired_seen = 0;
  for (std::uint32_t id = 0; id < blocks_.size(); ++id) {
    const BlockMeta& block = blocks_[id];
    if (block.retired) ++retired_seen;
    std::uint32_t valid_seen = 0;
    for (std::uint32_t p = 0; p < config_.spec.pages_per_block; ++p) {
      const std::uint64_t lpn = pages_[make_ppn(id, p)].lpn;
      if (lpn == kInvalid) continue;
      ++valid_seen;
      ++mapped_pages;
      if (lpn >= logical_pages_ || map_[lpn] != make_ppn(id, p)) {
        return fail("valid page in block " + std::to_string(id) +
                    " is not the mapped copy of lpn " + std::to_string(lpn));
      }
    }
    if (valid_seen != block.valid_count) {
      return fail("block " + std::to_string(id) + " valid_count " +
                  std::to_string(block.valid_count) + " but " +
                  std::to_string(valid_seen) + " valid pages");
    }
  }
  if (retired_seen != retired_count_) {
    return fail("retired ledger disagrees with block flags");
  }
  for (std::uint32_t i = 0; i < free_count_; ++i) {
    const std::uint32_t id = free_ring_[(free_head_ + i) & free_mask_];
    const BlockMeta& block = blocks_[id];
    if (block.retired || block.next_page != 0 || block.valid_count != 0) {
      return fail("free-listed block " + std::to_string(id) +
                  " is not an empty in-service block");
    }
  }
  std::uint64_t mapped_lpns = 0;
  for (std::uint64_t lpn = 0; lpn < logical_pages_; ++lpn) {
    if (map_[lpn] != kInvalid) ++mapped_lpns;
  }
  if (mapped_lpns != mapped_pages) {
    return fail("mapped lpn count disagrees with valid page count");
  }
  return Status::Ok();
}

std::vector<std::uint64_t> PageMappingFtl::double_mapped_lpns() const {
  // A double mapping is two valid physical copies claiming the same lpn —
  // the map_ table cannot show it (one entry per lpn), so count claims
  // from the physical side.
  std::vector<std::uint8_t> claims(logical_pages_, 0);
  std::vector<std::uint64_t> doubled;
  for (std::uint32_t id = 0; id < blocks_.size(); ++id) {
    const BlockMeta& block = blocks_[id];
    if (block.retired) continue;
    for (std::uint32_t p = 0; p < block.next_page; ++p) {
      const std::uint64_t lpn = pages_[make_ppn(id, p)].lpn;
      if (lpn == kInvalid) continue;
      FLEX_ASSERT(lpn < logical_pages_);
      if (++claims[lpn] == 2) doubled.push_back(lpn);
    }
  }
  std::sort(doubled.begin(), doubled.end());
  return doubled;
}

std::vector<std::uint32_t> PageMappingFtl::retired_block_ids() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(retired_count_);
  for (std::uint32_t id = 0; id < blocks_.size(); ++id) {
    if (blocks_[id].retired) ids.push_back(id);
  }
  return ids;
}

void PageMappingFtl::attach_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (!telemetry_) {
    metrics_ = Metrics{};
    return;
  }
  telemetry::MetricsRegistry& registry = telemetry_->metrics;
  metrics_.host_writes = &registry.counter("ftl.host_writes");
  metrics_.nand_writes = &registry.counter("ftl.nand_writes");
  metrics_.nand_erases = &registry.counter("ftl.nand_erases");
  metrics_.gc_runs = &registry.counter("ftl.gc_runs");
  metrics_.gc_page_moves = &registry.counter("ftl.gc_page_moves");
  metrics_.mode_migrations = &registry.counter("ftl.mode_migrations");
  metrics_.refresh_runs = &registry.counter("ftl.refresh_runs");
  metrics_.refresh_page_moves = &registry.counter("ftl.refresh_page_moves");
  metrics_.program_fails = &registry.counter("ftl.program_fails");
  metrics_.erase_fails = &registry.counter("ftl.erase_fails");
  metrics_.grown_defects = &registry.counter("ftl.grown_defects");
  metrics_.retired_blocks = &registry.counter("ftl.retired_blocks");
  metrics_.retire_page_moves = &registry.counter("ftl.retire_page_moves");
  metrics_.mounts = &registry.counter("ftl.mounts");
  metrics_.mount_pages_scanned = &registry.counter("ftl.mount_pages_scanned");
  metrics_.mount_mappings_recovered =
      &registry.counter("ftl.mount_mappings_recovered");
  metrics_.mount_stale_records =
      &registry.counter("ftl.mount_stale_records");
  metrics_.misdirected_writes = &registry.counter("ftl.misdirected_writes");
  metrics_.torn_relocations = &registry.counter("ftl.torn_relocations");
  metrics_.repair_writes = &registry.counter("ftl.repair_writes");
}

void PageMappingFtl::attach_fault_injector(
    const faults::FaultInjector* injector) {
  injector_ = injector;
}

std::uint32_t PageMappingFtl::min_erase_count() const {
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  for (const auto& block : blocks_) best = std::min(best, block.erase_count);
  return best;
}

std::uint32_t PageMappingFtl::max_erase_count() const {
  std::uint32_t best = 0;
  for (const auto& block : blocks_) best = std::max(best, block.erase_count);
  return best;
}

double PageMappingFtl::mean_erase_count() const {
  double sum = 0.0;
  for (const auto& block : blocks_) sum += block.erase_count;
  return sum / static_cast<double>(blocks_.size());
}

std::uint32_t PageMappingFtl::reduced_blocks() const {
  std::uint32_t count = 0;
  for (const auto& block : blocks_) {
    if (block.mode == PageMode::kReduced && block.next_page > 0) ++count;
  }
  return count;
}

}  // namespace flex::ftl
