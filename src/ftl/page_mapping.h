// Page-level-mapping flash translation layer with greedy garbage
// collection, erase-count-aware victim selection, and dual write frontiers
// (normal-state and reduced-state blocks).
//
// This is the FlashSim-equivalent substrate the paper modifies: AccessEval
// asks it to place data in reduced-state blocks, which hold only 3/4 of the
// logical pages of a normal block (ReduceCode's 3-bits-per-2-cells
// density), shrinking the effective over-provisioning — the mechanism
// behind LevelAdjust-only's GC penalty in Fig. 6(a).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "faults/fault_injector.h"
#include "ftl/payload.h"
#include "nand/geometry.h"
#include "telemetry/telemetry.h"

namespace flex::ftl {

/// Storage state of a physical block / page.
enum class PageMode : std::uint8_t { kNormal, kReduced };

struct FtlConfig {
  nand::NandSpec spec;
  /// Fraction of raw capacity reserved as over-provisioning (paper: 27%).
  double over_provisioning = 0.27;
  /// GC starts when the free-block count drops to this level.
  std::uint32_t gc_low_watermark = 8;
  /// Logical pages a reduced-state block can hold, as a fraction of
  /// pages_per_block (ReduceCode: 3 bits per 2 cells = 0.75).
  double reduced_capacity_factor = 0.75;
  /// P/E cycles already on every block at simulation start (pre-aging).
  std::uint32_t initial_pe_cycles = 0;
  /// Static wear leveling: every this-many GC victims, the least-worn
  /// closed block is reclaimed instead of the greedy choice, so blocks
  /// pinned by cold data still circulate. 0 disables.
  std::uint32_t static_wl_interval = 64;
  /// End-to-end integrity: carry a per-page payload identity + CRC64 seal
  /// alongside the OOB record of every program (derived by the simulator
  /// from SsdConfig::integrity — set there, not here). Off keeps the seal
  /// medium empty and every write path byte-identical.
  bool integrity = false;
  /// PayloadModel seed (the simulator passes its run seed).
  std::uint64_t integrity_seed = 0;
  /// 8-byte payload words per page (the modeled page body).
  std::uint32_t integrity_payload_words = 8;
};

struct FtlStats {
  std::uint64_t host_writes = 0;   ///< logical page writes accepted
  std::uint64_t nand_writes = 0;   ///< physical page programs (incl. GC)
  std::uint64_t nand_erases = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_page_moves = 0;
  std::uint64_t mode_migrations = 0;  ///< explicit normal<->reduced rewrites
  std::uint64_t refresh_runs = 0;        ///< read-disturb block refreshes
  std::uint64_t refresh_page_moves = 0;  ///< valid pages relocated by them
  // Fault handling (all zero unless a FaultInjector is attached).
  std::uint64_t program_fails = 0;  ///< program-status failures absorbed
  std::uint64_t erase_fails = 0;    ///< erase failures absorbed
  std::uint64_t grown_defects = 0;  ///< blocks found defective at allocation
  std::uint64_t retired_blocks = 0;     ///< blocks taken out of service
  std::uint64_t retire_page_moves = 0;  ///< valid pages rescued off them
  // Power-on recovery (all zero until Mount() runs; Mount resets every
  // other counter of this struct, so post-mount stats describe one boot).
  std::uint64_t mounts = 0;
  std::uint64_t mount_pages_scanned = 0;       ///< OOB records read
  std::uint64_t mount_mappings_recovered = 0;  ///< L2P entries rebuilt
  std::uint64_t mount_stale_records = 0;       ///< lost last-epoch-wins
  // End-to-end integrity (all zero unless integrity + an injector are on).
  std::uint64_t misdirected_writes = 0;  ///< programs whose seal went astray
  std::uint64_t torn_relocations = 0;    ///< stale payload under fresh seal
  std::uint64_t repair_writes = 0;       ///< read-repair rewrites (repair())

  bool operator==(const FtlStats&) const = default;

  double write_amplification() const {
    return host_writes == 0
               ? 1.0
               : static_cast<double>(nand_writes) /
                     static_cast<double>(host_writes);
  }
};

/// Result of placing one logical page.
struct WriteResult {
  std::uint64_t ppn = 0;
  PageMode mode = PageMode::kNormal;
  /// Physical page programs this operation caused (1 + GC relocations).
  std::uint64_t page_programs = 1;
  std::uint64_t erases = 0;
};

/// What a read needs to know to model its latency/reliability.
struct PageInfo {
  std::uint64_t ppn = 0;
  PageMode mode = PageMode::kNormal;
  SimTime write_time = 0;
  std::uint32_t pe_cycles = 0;  ///< erase count of the containing block
  /// Reads of the containing block since its last erase — the disturb
  /// stress every page of the block has accumulated.
  std::uint64_t block_reads = 0;
};

/// Result of refreshing one block: its valid pages relocated to fresh
/// cells and the block erased. `page_programs`/`erases` include any GC the
/// relocations triggered (for latency/endurance accounting, like
/// WriteResult).
struct RefreshResult {
  std::uint64_t pages_moved = 0;
  std::uint64_t page_programs = 0;
  std::uint64_t erases = 0;
};

/// Knobs for power-on recovery (Mount()).
struct MountOptions {
  /// Per-block read-disturb count assigned to every recovered data block.
  /// The true counters are volatile RAM and die with power; re-seeding
  /// them *at the refresh threshold* makes every survivor block scrub on
  /// its first post-mount read — conservative in the only safe direction,
  /// since disturb stress accumulated before the crash cannot be measured
  /// but may be arbitrarily close to the uncorrectable cliff. 0 restarts
  /// the counters optimistically (pre-PR behaviour of a fresh FTL).
  std::uint64_t reseed_read_count = 0;
};

/// What power-on recovery found on the medium.
struct MountReport {
  std::uint64_t pages_scanned = 0;         ///< programmed OOB records read
  std::uint64_t mappings_recovered = 0;    ///< live L2P entries installed
  std::uint64_t stale_records = 0;         ///< superseded copies skipped
  std::uint32_t free_blocks = 0;           ///< erased blocks re-listed
  std::uint32_t data_blocks = 0;           ///< blocks holding data
  std::uint32_t retired_blocks = 0;        ///< bad-block ledger size
  /// LPNs whose winning copy is stored in reduced state, ascending — the
  /// durable ReducedCell pool membership AccessEval re-registers from.
  std::vector<std::uint64_t> reduced_lpns;
};

/// Outcome of read-back seal verification (integrity on).
struct SealVerdict {
  /// The verification cross-check raised an integrity mismatch.
  bool flagged = false;
  /// The mismatch is in the cells themselves (misdirected write, torn
  /// relocation): a deepest-sensing re-read of the same page cannot cure
  /// it — only a replica or a repair rewrite can. False for a transient
  /// post-ECC flip, which a re-read does cure.
  bool persistent = false;
  /// The delivered bytes were not the expected generation's. A read with
  /// `delivered_bad && !flagged` is an undetected corruption — possible
  /// only through a genuine CRC64 collision, and what the bench's
  /// zero-undetected verdict counts.
  bool delivered_bad = false;
};

/// Medium-level data audit of one LPN (crash harness): is the durable
/// copy's seal self-consistent, and is its payload really the expected
/// generation? No transient fault is rolled — this inspects the medium,
/// not one read of it.
struct DataAudit {
  /// Seal present, claims (lpn, version), and its CRC matches the bytes
  /// actually stored. When false, any verifying read flags the page.
  bool seal_ok = false;
  /// The stored payload is generation (lpn, version).
  bool payload_ok = false;
};

class PageMappingFtl {
 public:
  explicit PageMappingFtl(FtlConfig config);

  std::uint64_t logical_pages() const { return logical_pages_; }
  std::uint64_t physical_blocks() const { return blocks_.size(); }

  /// Looks up a logical page; nullopt if never written.
  std::optional<PageInfo> lookup(std::uint64_t lpn) const;

  /// Writes (or overwrites) a logical page into a block of `mode`,
  /// garbage-collecting first if free space is low.
  WriteResult write(std::uint64_t lpn, PageMode mode, SimTime now);

  /// Rewrites an existing page into the other mode, preserving its original
  /// write time (migration moves old data, it does not refresh its age
  /// relative to the retention clock — the program operation does reset the
  /// cell charge, so the stored age restarts; we model the restart).
  WriteResult migrate(std::uint64_t lpn, PageMode mode, SimTime now);

  /// Records one read of the page at `ppn`: every read stresses the whole
  /// containing block with the pass-through voltage, so the counter lives
  /// per block and is cleared by erase (GC, refresh).
  void record_read(std::uint64_t ppn);

  /// Reads accumulated by the block containing `ppn` since its last erase.
  std::uint64_t block_read_count(std::uint64_t ppn) const;

  /// Read-back verification of one NAND read of `lpn`'s mapped copy at
  /// `ppn` (integrity on): recomputes the CRC of the bytes the page
  /// actually delivers (its true payload identity, plus a transient
  /// post-ECC flip when the injector's silent-corruption roll fires at
  /// this (ppn, block_reads) identity) and cross-checks it against the
  /// seal's claim and the FTL's expected (lpn, version).
  SealVerdict verify_page(std::uint64_t lpn, std::uint64_t ppn,
                          std::uint64_t block_reads) const;

  /// Medium-level audit of `lpn`'s durable copy against the expected
  /// write generation `version` (see DataAudit). Requires a mapped lpn.
  DataAudit audit_data(std::uint64_t lpn, std::uint64_t version) const;

  /// Read-repair rewrite: re-programs `lpn` with a fresh copy of its
  /// *current* generation (payload and seal regenerated; the version is
  /// not bumped — this is not a host write). The array layer calls it to
  /// reconverge a mirror after replica failover found this drive's copy
  /// persistently corrupt.
  WriteResult repair(std::uint64_t lpn, SimTime now);

  /// Relocates every valid page of the block containing `ppn` into fresh
  /// cells (same storage mode; retention and disturb clocks restart) and
  /// erases the block. Returns nullopt without side effects when the block
  /// is an open write frontier — refreshing the append target is
  /// meaningless, and frontier data is freshly programmed anyway.
  std::optional<RefreshResult> refresh_block(std::uint64_t ppn, SimTime now);

  const FtlStats& stats() const { return stats_; }

  /// Binds the FTL's write/GC/refresh counters into `telemetry` and
  /// enables GC trace spans (see telemetry.h for the null-sink contract);
  /// nullptr detaches.
  void attach_telemetry(telemetry::Telemetry* telemetry);

  /// Attaches the fault source (nullptr detaches — the default, and the
  /// zero-overhead path). With an injector attached the FTL absorbs its
  /// faults: a program-status failure re-drives the write to a fresh
  /// frontier page and retires the block (its valid pages relocated
  /// first — an acknowledged write is never lost); a failed or
  /// defect-flagged erase/allocation retires the block outright. Retired
  /// blocks leave service permanently: never a frontier, never a GC,
  /// wear-leveling or refresh victim — the drive keeps running on shrunken
  /// over-provisioning instead of asserting.
  void attach_fault_injector(const faults::FaultInjector* injector);

  /// Blocks currently retired (bad-block table size).
  std::uint32_t retired_block_count() const { return retired_count_; }
  /// Is the block containing `ppn` retired?
  bool block_retired(std::uint64_t ppn) const {
    return blocks_[block_of(ppn)].retired;
  }

  /// Power-on recovery: discards every volatile structure (L2P map, free
  /// list, frontiers, GC buckets, read counters, statistics) and rebuilds
  /// them from the durable medium — per-page OOB records and per-block
  /// summary pages. Mapping conflicts resolve last-epoch-wins: every
  /// program stamps a monotonic global epoch into its OOB record, so the
  /// newest surviving copy of each LPN is unambiguous even when a crash
  /// interrupts a GC/migration relocation train and leaves two copies.
  /// Idempotent: mounting twice (with equal options) yields byte-identical
  /// state — the free list is rebuilt in ascending block order and the
  /// statistics restart from the recovered ledger.
  MountReport Mount(const MountOptions& options = {});

  /// Full-structure invariant sweep (post-mount verification): every
  /// mapped LPN points at a valid page that maps back, valid counts match,
  /// free-listed blocks are empty and in service, ledger counts agree.
  /// Returns the first violation as an Internal status.
  Status check_consistency() const;

  /// LPNs with more than one valid physical copy (must be empty; the
  /// invariant the crash harness checks after every mount).
  std::vector<std::uint64_t> double_mapped_lpns() const;

  /// The raw L2P table (lpn -> ppn, kInvalidPpn when unmapped) for
  /// byte-identity comparisons across mounts.
  const std::vector<std::uint64_t>& l2p_dump() const { return map_; }
  static constexpr std::uint64_t kInvalidPpn = ~0ULL;

  /// Host-write generation of `lpn` (bumped per write(), preserved by
  /// migrations/relocations, recovered from OOB by Mount). The durability
  /// ledger compares this against the version it acknowledged as durable.
  std::uint64_t data_version(std::uint64_t lpn) const {
    FLEX_EXPECTS(lpn < logical_pages_);
    return version_[lpn];
  }

  /// Global program ordinal (the epoch the next program will exceed).
  std::uint64_t write_epoch() const { return epoch_; }

  /// Retired block ids, ascending (the bad-block ledger).
  std::vector<std::uint32_t> retired_block_ids() const;

  std::uint32_t free_blocks() const { return free_count_; }
  std::uint32_t min_erase_count() const;
  std::uint32_t max_erase_count() const;
  double mean_erase_count() const;
  /// Blocks currently holding reduced-state data.
  std::uint32_t reduced_blocks() const;

 private:
  // Per-page metadata lives in one global ppn-indexed flat array (pages_)
  // rather than per-block vectors: the write and invalidate hot paths
  // touch exactly one cache line per page instead of chasing
  // block -> pages-vector -> element.
  struct BlockMeta {
    PageMode mode = PageMode::kNormal;
    bool open = false;             ///< is a write frontier
    bool retired = false;          ///< out of service (bad block)
    std::uint32_t erase_count = 0;
    std::uint32_t next_page = 0;   ///< write pointer within the block
    std::uint32_t valid_count = 0;
    std::uint64_t read_count = 0;  ///< reads since last erase (disturb)
  };

  /// The durable per-page spare area, programmed atomically with the data
  /// (real NAND writes data + OOB in one page program). Survives power
  /// loss; only a successful erase clears it. Everything Mount() needs to
  /// rebuild the L2P map is here.
  struct OobRecord {
    std::uint64_t lpn = kInvalid;
    std::uint64_t epoch = 0;    ///< global program ordinal (1-based)
    std::uint64_t version = 0;  ///< host-write generation of the lpn
    SimTime write_time = 0;
    PageMode mode = PageMode::kNormal;
    bool programmed = false;
  };

  /// The durable per-page integrity record (integrity on), written in the
  /// same page program as the data and OOB record. The *claim* fields are
  /// the seal the controller computed for the data it intended to write;
  /// the *payload* fields are the identity of the bytes the page actually
  /// holds (the generator regenerates any page from its identity, so this
  /// pair stands in for the full page body). A healthy program has
  /// claim == payload; the silent-data fault kinds break exactly that:
  /// a misdirected write leaves the slot unsealed (data and seal landed
  /// on some other page while success was reported here), and a torn
  /// relocation stores the *previous* generation's bytes under the fresh
  /// seal. The per-page OOB mapping record is deliberately untouched by
  /// both — controller metadata updates travel a separate journaled path,
  /// so mapping-integrity invariants stay intact while the data rots.
  struct SealRecord {
    std::uint64_t seal_lpn = kInvalid;     ///< claim: logical page
    std::uint64_t seal_version = 0;        ///< claim: write generation
    std::uint64_t seal_crc = 0;            ///< claim: CRC64 of that payload
    std::uint64_t payload_lpn = kInvalid;  ///< truth: stored payload's lpn
    std::uint64_t payload_version = 0;     ///< truth: stored generation
    bool sealed = false;                   ///< a seal landed here at all
  };

  /// The durable per-block summary page, rewritten on erase / retirement
  /// (controllers keep erase counts and the bad-block table on the medium;
  /// losing either would reset wear leveling or resurrect bad blocks).
  struct BlockSummary {
    std::uint32_t erase_count = 0;
    bool retired = false;
  };

  static constexpr std::uint64_t kInvalid = ~0ULL;

  std::uint32_t usable_pages(const BlockMeta& block) const;
  std::uint64_t make_ppn(std::uint32_t block, std::uint32_t page) const {
    if (page_shift_ != kNoShift) {
      return (static_cast<std::uint64_t>(block) << page_shift_) | page;
    }
    return static_cast<std::uint64_t>(block) * config_.spec.pages_per_block +
           page;
  }
  std::uint32_t block_of(std::uint64_t ppn) const {
    const auto block_id = static_cast<std::uint32_t>(
        page_shift_ != kNoShift ? ppn >> page_shift_
                                : ppn / config_.spec.pages_per_block);
    FLEX_EXPECTS(block_id < blocks_.size());
    return block_id;
  }
  /// Relocates `block`'s valid pages, erases it, and returns it to the
  /// free list (shared tail of GC and refresh) — unless the erase fails,
  /// in which case the block is retired instead. The caller must have
  /// removed it from the GC candidate buckets.
  void reclaim_block(std::uint32_t block_id, SimTime now,
                     std::uint64_t* page_moves, std::uint64_t* programs);
  /// Moves every valid page of `block_id` to fresh frontier space (shared
  /// by reclaim and retirement).
  void relocate_valid_pages(std::uint32_t block_id, SimTime now,
                            std::uint64_t* page_moves,
                            std::uint64_t* programs);
  void invalidate(std::uint64_t lpn);
  std::uint32_t allocate_block(PageMode mode);
  /// Takes `block_id` (an open frontier that just failed a program) out of
  /// service: relocates its valid pages to fresh frontier space, clears it
  /// and marks it retired. Counts relocation programs into `programs`.
  void retire_failed_frontier(std::uint32_t block_id, SimTime now,
                              std::uint64_t* programs);
  /// Marks an already-empty block retired (erase-fail / grown-defect tail).
  void mark_retired(std::uint32_t block_id);
  /// Resets the block's slice of pages_ to invalid (erase/retire tail).
  void clear_block_pages(std::uint32_t block_id);
  /// Appends to the frontier of `mode`; assumes space exists.
  /// `relocation` marks programs that move an existing generation (GC,
  /// wear leveling, refresh, migration) — the only programs the torn-
  /// relocation fault can strike; host writes and repairs carry fresh
  /// data straight from the host/controller buffer.
  std::uint64_t append(std::uint64_t lpn, PageMode mode, SimTime now,
                       std::uint64_t* programs, bool relocation = false);
  void maybe_garbage_collect(SimTime now, std::uint64_t* programs,
                             std::uint64_t* erases);
  std::optional<std::uint32_t> pick_gc_victim() const;
  std::optional<std::uint32_t> pick_wear_leveling_victim() const;
  // GC-candidate bookkeeping: closed blocks bucketed by valid_count so the
  // greedy victim lookup is O(1) instead of O(blocks).
  void candidate_insert(std::uint32_t block_id);
  void candidate_remove(std::uint32_t block_id, std::uint32_t old_valid);

  /// Per-page metadata, one 16-byte record per ppn so a lookup touches a
  /// single cache line. `lpn == kInvalid` means the page holds no valid
  /// data and `write_time` is garbage.
  struct PageMeta {
    std::uint64_t lpn = kInvalid;
    SimTime write_time = 0;
  };

  FtlConfig config_;
  std::uint64_t logical_pages_;
  std::vector<BlockMeta> blocks_;
  std::vector<std::uint64_t> map_;   // lpn -> ppn (kInvalid when unmapped)
  std::vector<PageMeta> pages_;      // by ppn (flat across all blocks)
  /// log2(pages_per_block) when it is a power of two (the common
  /// geometry), else kNoShift: block_of()/make_ppn() then fall back to
  /// divide/multiply. Purely a strength reduction — same results.
  static constexpr std::uint32_t kNoShift = 0xffffffffu;
  std::uint32_t page_shift_ = kNoShift;
  // Free-block FIFO as a ring over a flat power-of-two vector (FIFO so
  // every free block circulates; a LIFO stack would recycle the same few
  // blocks and defeat wear leveling). Size is free_count_.
  std::vector<std::uint32_t> free_ring_;
  std::size_t free_mask_ = 0;
  std::size_t free_head_ = 0;
  void free_push(std::uint32_t id) {
    free_ring_[(free_head_ + free_count_) & free_mask_] = id;
    ++free_count_;
  }
  std::uint32_t free_pop() {
    const std::uint32_t id = free_ring_[free_head_];
    free_head_ = (free_head_ + 1) & free_mask_;
    --free_count_;
    return id;
  }
  std::uint32_t free_count_ = 0;
  // Current frontier per mode; kNoBlock when none is open.
  static constexpr std::uint32_t kNoBlock = ~0U;
  std::uint32_t frontier_[2] = {kNoBlock, kNoBlock};
  std::vector<std::vector<std::uint32_t>> gc_buckets_;  // by valid_count
  std::vector<std::uint32_t> gc_bucket_pos_;  // block -> index in its bucket
  FtlStats stats_;
  const faults::FaultInjector* injector_ = nullptr;
  std::uint32_t retired_count_ = 0;
  // Durable state (the simulated medium): per-page OOB records, per-block
  // summaries, and — implicit in the OOB epochs — the program ordinal.
  // Power loss must not touch these; everything else above is volatile.
  std::vector<OobRecord> oob_;          // by ppn
  std::vector<BlockSummary> summaries_;  // by block id
  /// Per-page seal medium (by ppn; empty unless config_.integrity).
  /// Durable like oob_: programmed with the page, wiped by erase,
  /// untouched by Mount().
  std::vector<SealRecord> seals_;
  /// The synthetic-payload generator behind the seals (fixed identity ->
  /// bytes function; see ftl/payload.h).
  PayloadModel payload_;
  std::uint64_t epoch_ = 0;
  // Volatile, rebuilt by Mount() from the winning OOB records.
  std::vector<std::uint64_t> version_;  // by lpn

  /// Bound metric handles mirroring FtlStats (null when detached).
  struct Metrics {
    telemetry::MetricsRegistry::Counter* host_writes = nullptr;
    telemetry::MetricsRegistry::Counter* nand_writes = nullptr;
    telemetry::MetricsRegistry::Counter* nand_erases = nullptr;
    telemetry::MetricsRegistry::Counter* gc_runs = nullptr;
    telemetry::MetricsRegistry::Counter* gc_page_moves = nullptr;
    telemetry::MetricsRegistry::Counter* mode_migrations = nullptr;
    telemetry::MetricsRegistry::Counter* refresh_runs = nullptr;
    telemetry::MetricsRegistry::Counter* refresh_page_moves = nullptr;
    telemetry::MetricsRegistry::Counter* program_fails = nullptr;
    telemetry::MetricsRegistry::Counter* erase_fails = nullptr;
    telemetry::MetricsRegistry::Counter* grown_defects = nullptr;
    telemetry::MetricsRegistry::Counter* retired_blocks = nullptr;
    telemetry::MetricsRegistry::Counter* retire_page_moves = nullptr;
    telemetry::MetricsRegistry::Counter* mounts = nullptr;
    telemetry::MetricsRegistry::Counter* mount_pages_scanned = nullptr;
    telemetry::MetricsRegistry::Counter* mount_mappings_recovered = nullptr;
    telemetry::MetricsRegistry::Counter* mount_stale_records = nullptr;
    telemetry::MetricsRegistry::Counter* misdirected_writes = nullptr;
    telemetry::MetricsRegistry::Counter* torn_relocations = nullptr;
    telemetry::MetricsRegistry::Counter* repair_writes = nullptr;
  };
  telemetry::Telemetry* telemetry_ = nullptr;
  Metrics metrics_;
};

}  // namespace flex::ftl
