// Deterministic synthetic page payloads for the end-to-end integrity
// layer.
//
// Carrying real page buffers through the simulator would cost
// page_size bytes per physical page for data whose only purpose is to
// be checksummed. Instead, every payload is a pure function of
// (model seed, lpn, version): a splitmix64-seeded word stream,
// serialized little-endian. A page's bytes are then fully determined
// by its logical identity, so the FTL stores only which identity a
// physical page *actually* holds (O(1) per page) while the CRC64 seal
// covers the exact bytes the generator would produce — byte-checkable
// without byte-storage. The crash harness and the array's read-repair
// regenerate expected bytes the same way and compare checksums.
#pragma once

#include <cstdint>
#include <vector>

#include "common/crc64.h"

namespace flex::ftl {

class PayloadModel {
 public:
  /// `words` 8-byte words of payload per page (the modeled page body).
  PayloadModel(std::uint64_t seed, std::uint32_t words)
      : seed_(seed), words_(words) {}

  std::uint32_t words() const { return words_; }

  /// The payload bytes of generation `version` of `lpn`, little-endian
  /// serialized (what a real host would have written).
  std::vector<std::uint8_t> generate(std::uint64_t lpn,
                                     std::uint64_t version) const;

  /// CRC64 of generate(lpn, version), computed incrementally without
  /// materializing the page — the hot-path form the read-back
  /// verification uses.
  std::uint64_t crc(std::uint64_t lpn, std::uint64_t version) const;

 private:
  std::uint64_t seed_;
  std::uint32_t words_;
};

}  // namespace flex::ftl
