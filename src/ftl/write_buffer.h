// Write-back DRAM write buffer (the paper's modification to FlashSim:
// "We modified the simulator by adding a write-back write buffer").
//
// Host writes land in the buffer and complete immediately; dirty pages are
// flushed to the FTL when the buffer fills (batch eviction of the
// least-recently-written pages). Reads must consult the buffer first.
//
// Durability semantics: a buffered write is *acknowledged* but not
// *durable* — only a page the FTL has programmed survives power loss.
// Entries therefore carry a dirty bit. `write()` inserts dirty,
// `insert_clean()` inserts already-programmed data (the FUA path keeps the
// page cached for reads), `flush_barrier()` hands every dirty page to the
// caller for programming and downgrades them to clean in place, and
// `power_loss()` models the DRAM vanishing: dirty contents are simply
// gone.
//
// Recency lives in an intrusive LRU over a flat slot array (common/
// lru_map.h); the flush lists returned by reference are reused scratch
// vectors, so the steady state allocates nothing. A returned reference is
// valid until the next call on the same buffer — copy it to keep it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/lru_map.h"

namespace flex::ftl {

class WriteBuffer {
 public:
  /// `capacity_pages` >= 1; `flush_batch` pages are evicted per overflow
  /// (batching amortises the program cost the way real controllers do).
  WriteBuffer(std::uint64_t capacity_pages, std::uint64_t flush_batch);

  /// Buffers a host write (dirty). Returns the dirty LPNs that must be
  /// flushed to NAND now (empty unless the buffer overflowed; clean
  /// victims are dropped without a program).
  const std::vector<std::uint64_t>& write(std::uint64_t lpn);

  /// Caches a page whose data is already on NAND (clean) — the FUA write
  /// path programs first, then caches for subsequent reads. Returns dirty
  /// LPNs evicted by the insertion, as `write()` does.
  const std::vector<std::uint64_t>& insert_clean(std::uint64_t lpn);

  /// True when the page's newest data lives in the buffer.
  bool contains(std::uint64_t lpn) const { return lru_.contains(lpn); }

  /// True when the buffered copy is newer than NAND (unprogrammed).
  bool dirty(std::uint64_t lpn) const {
    const bool* entry = lru_.find(lpn);
    return entry && *entry;
  }

  /// Flush barrier: every dirty page, oldest first, for the caller to
  /// program now. The entries stay cached, downgraded to clean — a
  /// barrier makes data durable, it does not evict it.
  const std::vector<std::uint64_t>& flush_barrier();

  /// Drains every dirty page, oldest first, and empties the buffer
  /// (simulation end).
  const std::vector<std::uint64_t>& drain();

  /// Power loss: DRAM contents vanish. Returns the number of dirty
  /// (acknowledged but never programmed) pages that were lost.
  std::uint64_t power_loss();

  std::uint64_t size() const { return lru_.size(); }
  std::uint64_t dirty_pages() const { return dirty_count_; }
  std::uint64_t capacity() const { return capacity_; }

 private:
  /// Inserts or refreshes `lpn` with the given dirty bit and evicts past
  /// capacity; shared body of write() / insert_clean().
  const std::vector<std::uint64_t>& insert(std::uint64_t lpn, bool dirty);

  std::uint64_t capacity_;
  std::uint64_t flush_batch_;
  std::uint64_t dirty_count_ = 0;
  // LRU by write order: most recently written at front. Value = dirty bit.
  LruMap<bool> lru_;
  // Reused result storage. Separate scratch for the insert path and the
  // barrier/drain path: a caller may iterate an insert's eviction list
  // while issuing a barrier-triggering operation on another code path.
  std::vector<std::uint64_t> insert_scratch_;
  std::vector<std::uint64_t> flush_scratch_;
};

}  // namespace flex::ftl
