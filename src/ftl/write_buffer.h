// Write-back DRAM write buffer (the paper's modification to FlashSim:
// "We modified the simulator by adding a write-back write buffer").
//
// Host writes land in the buffer and complete immediately; dirty pages are
// flushed to the FTL when the buffer fills (batch eviction of the
// least-recently-written pages). Reads must consult the buffer first.
//
// Durability semantics: a buffered write is *acknowledged* but not
// *durable* — only a page the FTL has programmed survives power loss.
// Entries therefore carry a dirty bit. `write()` inserts dirty,
// `insert_clean()` inserts already-programmed data (the FUA path keeps the
// page cached for reads), `flush_barrier()` hands every dirty page to the
// caller for programming and downgrades them to clean in place, and
// `power_loss()` models the DRAM vanishing: dirty contents are simply
// gone.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace flex::ftl {

class WriteBuffer {
 public:
  /// `capacity_pages` >= 1; `flush_batch` pages are evicted per overflow
  /// (batching amortises the program cost the way real controllers do).
  WriteBuffer(std::uint64_t capacity_pages, std::uint64_t flush_batch);

  /// Buffers a host write (dirty). Returns the dirty LPNs that must be
  /// flushed to NAND now (empty unless the buffer overflowed; clean
  /// victims are dropped without a program).
  std::vector<std::uint64_t> write(std::uint64_t lpn);

  /// Caches a page whose data is already on NAND (clean) — the FUA write
  /// path programs first, then caches for subsequent reads. Returns dirty
  /// LPNs evicted by the insertion, as `write()` does.
  std::vector<std::uint64_t> insert_clean(std::uint64_t lpn);

  /// True when the page's newest data lives in the buffer.
  bool contains(std::uint64_t lpn) const { return map_.contains(lpn); }

  /// True when the buffered copy is newer than NAND (unprogrammed).
  bool dirty(std::uint64_t lpn) const {
    const auto it = map_.find(lpn);
    return it != map_.end() && it->second.dirty;
  }

  /// Flush barrier: every dirty page, oldest first, for the caller to
  /// program now. The entries stay cached, downgraded to clean — a
  /// barrier makes data durable, it does not evict it.
  std::vector<std::uint64_t> flush_barrier();

  /// Drains every dirty page, oldest first, and empties the buffer
  /// (simulation end).
  std::vector<std::uint64_t> drain();

  /// Power loss: DRAM contents vanish. Returns the number of dirty
  /// (acknowledged but never programmed) pages that were lost.
  std::uint64_t power_loss();

  std::uint64_t size() const { return map_.size(); }
  std::uint64_t dirty_pages() const { return dirty_count_; }
  std::uint64_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::list<std::uint64_t>::iterator pos;
    bool dirty;
  };

  /// Inserts or refreshes `lpn` with the given dirty bit and evicts past
  /// capacity; shared body of write() / insert_clean().
  std::vector<std::uint64_t> insert(std::uint64_t lpn, bool dirty);

  std::uint64_t capacity_;
  std::uint64_t flush_batch_;
  std::uint64_t dirty_count_ = 0;
  // LRU by write order: most recently written at front.
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, Entry> map_;
};

}  // namespace flex::ftl
