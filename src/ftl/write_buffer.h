// Write-back DRAM write buffer (the paper's modification to FlashSim:
// "We modified the simulator by adding a write-back write buffer").
//
// Host writes land in the buffer and complete immediately; dirty pages are
// flushed to the FTL when the buffer fills (batch eviction of the
// least-recently-written pages). Reads must consult the buffer first.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace flex::ftl {

class WriteBuffer {
 public:
  /// `capacity_pages` >= 1; `flush_batch` pages are evicted per overflow
  /// (batching amortises the program cost the way real controllers do).
  WriteBuffer(std::uint64_t capacity_pages, std::uint64_t flush_batch);

  /// Buffers a host write. Returns the LPNs that must be flushed to NAND
  /// now (empty unless the buffer overflowed).
  std::vector<std::uint64_t> write(std::uint64_t lpn);

  /// True when the page's newest data lives in the buffer.
  bool contains(std::uint64_t lpn) const { return map_.contains(lpn); }

  /// Drains every dirty page (simulation end / flush barrier).
  std::vector<std::uint64_t> drain();

  std::uint64_t size() const { return map_.size(); }
  std::uint64_t capacity() const { return capacity_; }

 private:
  std::uint64_t capacity_;
  std::uint64_t flush_batch_;
  // LRU by write order: most recently written at front.
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
};

}  // namespace flex::ftl
