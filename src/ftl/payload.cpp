#include "ftl/payload.h"

namespace flex::ftl {
namespace {

/// splitmix64 finalizer (same primitive as faults::FaultInjector).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t word_at(std::uint64_t seed, std::uint64_t lpn,
                      std::uint64_t version, std::uint32_t index) {
  std::uint64_t h = mix(seed ^ mix(lpn));
  h = mix(h ^ version);
  return mix(h ^ index);
}

}  // namespace

std::vector<std::uint8_t> PayloadModel::generate(std::uint64_t lpn,
                                                 std::uint64_t version) const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(static_cast<std::size_t>(words_) * 8);
  for (std::uint32_t w = 0; w < words_; ++w) {
    const std::uint64_t word = word_at(seed_, lpn, version, w);
    for (int b = 0; b < 8; ++b) {
      bytes.push_back(static_cast<std::uint8_t>(word >> (8 * b)));
    }
  }
  return bytes;
}

std::uint64_t PayloadModel::crc(std::uint64_t lpn,
                                std::uint64_t version) const {
  std::uint64_t running = 0;
  for (std::uint32_t w = 0; w < words_; ++w) {
    std::uint8_t chunk[8];
    const std::uint64_t word = word_at(seed_, lpn, version, w);
    for (int b = 0; b < 8; ++b) {
      chunk[b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
    running = crc64(chunk, sizeof(chunk), running);
  }
  return running;
}

}  // namespace flex::ftl
