#include "gf/poly.h"

#include <algorithm>

#include "common/assert.h"

namespace flex::gf {

Poly::Poly(std::vector<Field::Element> coeffs) : coeffs_(std::move(coeffs)) {
  trim();
}

Poly Poly::monomial(Field::Element c, std::size_t k) {
  if (c == 0) return Poly{};
  std::vector<Field::Element> v(k + 1, 0);
  v[k] = c;
  return Poly(std::move(v));
}

Field::Element Poly::coeff(std::size_t i) const {
  return i < coeffs_.size() ? coeffs_[i] : 0;
}

void Poly::trim() {
  while (!coeffs_.empty() && coeffs_.back() == 0) coeffs_.pop_back();
}

Poly Poly::add(const Poly& a, const Poly& b) {
  std::vector<Field::Element> out(std::max(a.coeffs_.size(), b.coeffs_.size()),
                                  0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = Field::add(a.coeff(i), b.coeff(i));
  }
  return Poly(std::move(out));
}

Poly Poly::mul(const Field& f, const Poly& a, const Poly& b) {
  if (a.is_zero() || b.is_zero()) return Poly{};
  std::vector<Field::Element> out(a.coeffs_.size() + b.coeffs_.size() - 1, 0);
  for (std::size_t i = 0; i < a.coeffs_.size(); ++i) {
    if (a.coeffs_[i] == 0) continue;
    for (std::size_t j = 0; j < b.coeffs_.size(); ++j) {
      out[i + j] = Field::add(out[i + j], f.mul(a.coeffs_[i], b.coeffs_[j]));
    }
  }
  return Poly(std::move(out));
}

Poly Poly::scale(const Field& f, const Poly& a, Field::Element c) {
  if (c == 0) return Poly{};
  std::vector<Field::Element> out(a.coeffs_);
  for (auto& x : out) x = f.mul(x, c);
  return Poly(std::move(out));
}

Poly Poly::mod(const Field& f, const Poly& a, const Poly& b) {
  FLEX_EXPECTS(!b.is_zero());
  std::vector<Field::Element> rem(a.coeffs_);
  const auto db = static_cast<std::size_t>(b.degree());
  const Field::Element lead_inv = f.inverse(b.coeffs_.back());
  while (rem.size() > db) {
    const Field::Element factor = f.mul(rem.back(), lead_inv);
    if (factor != 0) {
      const std::size_t shift = rem.size() - 1 - db;
      for (std::size_t i = 0; i <= db; ++i) {
        rem[shift + i] =
            Field::add(rem[shift + i], f.mul(factor, b.coeffs_[i]));
      }
    }
    rem.pop_back();
    while (!rem.empty() && rem.back() == 0) rem.pop_back();
  }
  return Poly(std::move(rem));
}

Poly Poly::truncate(const Poly& a, std::size_t k) {
  std::vector<Field::Element> out(
      a.coeffs_.begin(),
      a.coeffs_.begin() +
          static_cast<std::ptrdiff_t>(std::min(a.coeffs_.size(), k)));
  return Poly(std::move(out));
}

Field::Element Poly::eval(const Field& f, Field::Element x) const {
  Field::Element acc = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = Field::add(f.mul(acc, x), coeffs_[i]);
  }
  return acc;
}

Poly Poly::derivative() const {
  if (coeffs_.size() <= 1) return Poly{};
  std::vector<Field::Element> out(coeffs_.size() - 1, 0);
  // d/dx sum c_i x^i = sum (i mod 2) c_i x^(i-1) over GF(2^m).
  for (std::size_t i = 1; i < coeffs_.size(); i += 2) {
    out[i - 1] = coeffs_[i];
  }
  return Poly(std::move(out));
}

}  // namespace flex::gf
