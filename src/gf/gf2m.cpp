#include "gf/gf2m.h"

#include "common/assert.h"

namespace flex::gf {
namespace {

// Standard primitive polynomials (Lin & Costello, Appendix A), indexed by m.
// Bit i set means the x^i term is present.
constexpr std::uint32_t kPrimitivePoly[17] = {
    0,      0,      0x7,    0xB,     0x13,   0x25,    0x43,   0x89,  0x11D,
    0x211,  0x409,  0x805,  0x1053,  0x201B, 0x4443,  0x8003, 0x1100B,
};

}  // namespace

Field::Field(int m) : m_(m) {
  FLEX_EXPECTS(m >= 2 && m <= 16);
  size_ = 1u << m;
  prim_poly_ = kPrimitivePoly[m];
  exp_.assign(2 * order(), 0);
  log_.assign(size_, 0);
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < order(); ++i) {
    exp_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & size_) x ^= prim_poly_;
  }
  FLEX_ENSURES(x == 1);  // alpha really is primitive: full cycle length
  // Duplicate the exp table so mul can skip the modular reduction.
  for (std::uint32_t i = 0; i < order(); ++i) exp_[order() + i] = exp_[i];
}

Field::Element Field::mul(Element a, Element b) const {
  if (a == 0 || b == 0) return 0;
  return exp_[log_[a] + log_[b]];
}

Field::Element Field::inverse(Element a) const {
  FLEX_EXPECTS(a != 0);
  return exp_[order() - log_[a]];
}

Field::Element Field::div(Element a, Element b) const {
  FLEX_EXPECTS(b != 0);
  if (a == 0) return 0;
  return exp_[(log_[a] + order() - log_[b]) % order()];
}

Field::Element Field::pow(Element a, std::int64_t k) const {
  if (a == 0) {
    FLEX_EXPECTS(k >= 0);
    return k == 0 ? 1 : 0;
  }
  const auto ord = static_cast<std::int64_t>(order());
  std::int64_t e = (static_cast<std::int64_t>(log_[a]) * (k % ord)) % ord;
  if (e < 0) e += ord;
  return exp_[static_cast<std::uint32_t>(e)];
}

Field::Element Field::alpha_pow(std::int64_t k) const {
  const auto ord = static_cast<std::int64_t>(order());
  std::int64_t e = k % ord;
  if (e < 0) e += ord;
  return exp_[static_cast<std::uint32_t>(e)];
}

std::uint32_t Field::log(Element a) const {
  FLEX_EXPECTS(a != 0);
  return log_[a];
}

}  // namespace flex::gf
