// Polynomials over GF(2^m), used by the BCH encoder (generator polynomial)
// and decoder (syndrome/locator/evaluator polynomials).
#pragma once

#include <cstdint>
#include <vector>

#include "gf/gf2m.h"

namespace flex::gf {

/// Dense polynomial; coefficient i multiplies x^i. The zero polynomial is
/// the empty coefficient vector and has degree -1. Invariant: the leading
/// coefficient (if any) is nonzero.
class Poly {
 public:
  Poly() = default;
  explicit Poly(std::vector<Field::Element> coeffs);

  /// The monomial c * x^k.
  static Poly monomial(Field::Element c, std::size_t k);
  static Poly one() { return monomial(1, 0); }

  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  bool is_zero() const { return coeffs_.empty(); }
  /// Coefficient of x^i (0 beyond the stored degree).
  Field::Element coeff(std::size_t i) const;
  const std::vector<Field::Element>& coeffs() const { return coeffs_; }

  static Poly add(const Poly& a, const Poly& b);
  static Poly mul(const Field& f, const Poly& a, const Poly& b);
  static Poly scale(const Field& f, const Poly& a, Field::Element c);
  /// Remainder of a mod b; requires b nonzero.
  static Poly mod(const Field& f, const Poly& a, const Poly& b);
  /// Truncate to coefficients below x^k (i.e. a mod x^k).
  static Poly truncate(const Poly& a, std::size_t k);

  /// Horner evaluation at x.
  Field::Element eval(const Field& f, Field::Element x) const;

  /// Formal derivative: in characteristic 2 the even-power terms vanish.
  Poly derivative() const;

  bool operator==(const Poly& other) const = default;

 private:
  void trim();
  std::vector<Field::Element> coeffs_;
};

}  // namespace flex::gf
