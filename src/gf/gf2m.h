// Finite field GF(2^m) arithmetic via log/antilog tables.
//
// Substrate for the BCH codec (the hard-decision ECC the paper's
// introduction contrasts LDPC against). Elements are represented as their
// polynomial-basis bit patterns in [0, 2^m).
#pragma once

#include <cstdint>
#include <vector>

namespace flex::gf {

/// A GF(2^m) field, 2 <= m <= 16, built over a standard primitive
/// polynomial. Construction is O(2^m); all operations are O(1).
class Field {
 public:
  using Element = std::uint32_t;

  explicit Field(int m);

  int m() const { return m_; }
  /// Field size 2^m.
  std::uint32_t size() const { return size_; }
  /// Multiplicative group order 2^m - 1.
  std::uint32_t order() const { return size_ - 1; }
  /// The primitive polynomial used, as a bit pattern including the x^m term.
  std::uint32_t primitive_poly() const { return prim_poly_; }

  static Element add(Element a, Element b) { return a ^ b; }

  Element mul(Element a, Element b) const;
  /// Multiplicative inverse; requires a != 0.
  Element inverse(Element a) const;
  Element div(Element a, Element b) const;
  /// a^k for any integer k (negative exponents use the inverse); 0^0 == 1.
  Element pow(Element a, std::int64_t k) const;
  /// alpha^k where alpha is the primitive element.
  Element alpha_pow(std::int64_t k) const;
  /// Discrete log base alpha; requires a != 0.
  std::uint32_t log(Element a) const;

 private:
  int m_;
  std::uint32_t size_;
  std::uint32_t prim_poly_;
  std::vector<Element> exp_;        // exp_[i] = alpha^i, doubled to skip mod
  std::vector<std::uint32_t> log_;  // log_[a] = i with alpha^i == a
};

}  // namespace flex::gf
