#include "reliability/read_channel.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "common/assert.h"
#include "common/rng.h"
#include "ldpc/channel.h"
#include "ldpc/decoder.h"
#include "ldpc/encoder.h"
#include "ldpc/qc_code.h"

namespace flex::reliability {
namespace {

double quantized_mi(double raw_ber, int extra_levels,
                    ldpc::QuantizerKind kind) {
  return ldpc::SensingChannel(raw_ber, extra_levels, kind)
      .mutual_information();
}

/// MI-calibrated ladder caps: each seed cap encodes "rate-8/9 decodes at
/// UBER <= 1e-15 when the uniform-quantized channel carries this much
/// mutual information". The MI quantizer reaches the same MI at a higher
/// raw BER, so the calibrated cap is the BER where the MI-quantized
/// channel's MI equals the seed step's — found by bisection (MI is
/// strictly decreasing in BER). The hard step has a single immovable
/// boundary, so its cap is unchanged; the max() guard makes the
/// caps-dominate-uniform property structural rather than numerical.
SensingRequirement mi_calibrated_ladder() {
  const SensingRequirement uniform;
  std::array<SensingRequirement::Step, 5> steps = uniform.steps();
  for (auto& step : steps) {
    if (step.extra_levels == 0) continue;
    const double target =
        quantized_mi(step.max_raw_ber, step.extra_levels,
                     ldpc::QuantizerKind::kUniform);
    double lo = step.max_raw_ber;
    double hi = 0.45;
    if (quantized_mi(hi, step.extra_levels, ldpc::QuantizerKind::kMiOptimized) <
        target) {
      for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double mi = quantized_mi(mid, step.extra_levels,
                                       ldpc::QuantizerKind::kMiOptimized);
        (mi >= target ? lo : hi) = mid;
      }
    } else {
      lo = hi;
    }
    step.max_raw_ber = std::max(step.max_raw_ber, lo);
  }
  // The calibrated caps must stay a valid (strictly increasing) ladder;
  // with per-step gains this holds by construction, but clamp defensively
  // so a degenerate bisection can never produce an inverted ladder.
  for (std::size_t i = 1; i < steps.size(); ++i) {
    steps[i].max_raw_ber =
        std::max(steps[i].max_raw_ber,
                 steps[i - 1].max_raw_ber * (1.0 + 1e-9));
  }
  return SensingRequirement(steps);
}

ldpc::QuantizerKind to_ldpc(ChannelQuantizer q) {
  return q == ChannelQuantizer::kMiOptimized
             ? ldpc::QuantizerKind::kMiOptimized
             : ldpc::QuantizerKind::kUniform;
}

/// Measured mean min-sum iterations per ladder step: decode
/// `trials` random codewords of the paper's rate-8/9 code through the
/// step's quantized channel at the step's cap BER — the worst input the
/// step is provisioned for (failed decodes count at max_iterations, which
/// is what a controller pays before escalating). Deterministic (fixed
/// seeds, fixed trial counts) and cached process-wide: the measurement is
/// a pure function of its key, so every run and thread sees identical
/// numbers.
std::vector<double> measure_step_iterations(const SensingRequirement& ladder,
                                            ChannelQuantizer quantizer,
                                            int trials, std::uint64_t seed) {
  const std::uint64_t key =
      (seed << 8) ^ (static_cast<std::uint64_t>(trials) << 1) ^
      static_cast<std::uint64_t>(quantizer == ChannelQuantizer::kMiOptimized);
  static std::mutex mutex;
  static std::map<std::uint64_t, std::vector<double>>* cache =
      new std::map<std::uint64_t, std::vector<double>>();
  std::lock_guard<std::mutex> lock(mutex);
  if (const auto it = cache->find(key); it != cache->end()) {
    return it->second;
  }
  static const ldpc::QcLdpcCode* code =
      new ldpc::QcLdpcCode(ldpc::QcLdpcCode::paper_code());
  const ldpc::Encoder encoder(*code);
  const ldpc::Decoder decoder(*code);
  std::vector<double> iterations;
  std::vector<std::uint8_t> message(static_cast<std::size_t>(code->k()));
  std::vector<float> llrs;
  for (const auto& step : ladder.steps()) {
    const ldpc::SensingChannel channel(step.max_raw_ber, step.extra_levels,
                                       to_ldpc(quantizer));
    // One rng stream per step so adding a step never reshuffles others.
    Rng rng(seed ^ (0x9E3779B97F4A7C15ULL *
                    static_cast<std::uint64_t>(step.extra_levels + 1)));
    std::int64_t total = 0;
    for (int t = 0; t < trials; ++t) {
      for (auto& bit : message) {
        bit = static_cast<std::uint8_t>(rng.below(2));
      }
      const auto codeword = encoder.encode(message);
      channel.transmit(codeword, rng, llrs);
      total += decoder.decode(llrs).iterations;
    }
    iterations.push_back(static_cast<double>(total) /
                         static_cast<double>(trials));
  }
  cache->emplace(key, iterations);
  return iterations;
}

}  // namespace

ReadChannel::ReadChannel(const Params& params, const BerModel& normal,
                         const BerModel& reduced)
    : config_(params.config),
      normal_(normal),
      reduced_(reduced),
      ladder_(params.config.enabled &&
                      params.config.quantizer == ChannelQuantizer::kMiOptimized
                  ? mi_calibrated_ladder()
                  : SensingRequirement()),
      pages_per_block_(params.pages_per_block) {
  FLEX_EXPECTS(pages_per_block_ >= 1);
  if (params.disturb_enabled) {
    disturb_[0] = std::make_unique<ReadDisturbModel>(params.disturb, normal_);
    disturb_[1] = std::make_unique<ReadDisturbModel>(params.disturb, reduced_);
  }
  if (config_.enabled && config_.adaptive_thresholds) {
    calibrated_reads_.assign(params.physical_blocks, 0);
  }
  if (config_.enabled &&
      config_.decode_latency == DecodeLatencyMode::kMeasured) {
    step_iterations_ =
        measure_step_iterations(ladder_, config_.quantizer,
                                config_.calibration_trials,
                                config_.calibration_seed);
  }
}

std::uint64_t ReadChannel::residual_reads(std::uint64_t block,
                                          std::uint64_t reads) {
  FLEX_ASSERT(block < calibrated_reads_.size());
  std::uint64_t& calibrated = calibrated_reads_[block];
  if (reads < calibrated) {
    // The FTL's counter moved backwards: the block was erased, taking the
    // accumulated drift (and the compensation for it) with it.
    calibrated = 0;
    ++stats_.resets;
  }
  if (reads - calibrated >= config_.calibrate_interval) {
    calibrated = reads;
    ++stats_.calibrations;
  }
  // Drift from `calibrated` reads is compensated at `tracking_gain`
  // fidelity; the shift model is linear in reads, so the uncompensated
  // residual is an equivalent (smaller) read count.
  const auto compensated = static_cast<std::uint64_t>(
      config_.tracking_gain * static_cast<double>(calibrated));
  return reads - std::min(compensated, reads);
}

ReadChannel::Assessment ReadChannel::assess(bool reduced, std::uint32_t pe,
                                            Hours age, std::uint64_t ppn,
                                            std::uint64_t block_reads) {
  const int mode = reduced ? 1 : 0;
  const bool adaptive = config_.enabled && config_.adaptive_thresholds;
  // ~1.5% age resolution per bucket: far finer than the ladder's BER steps.
  const auto bucket = static_cast<std::uint64_t>(
      age <= 0.0 ? 0 : 1 + std::llround(48.0 * std::log2(1.0 + age)));
  const std::uint64_t key = (static_cast<std::uint64_t>(pe) << 16) | bucket;
  auto& cache = ber_cache_[mode];
  double ber;
  if (const double* hit = cache.find(key)) {
    ber = *hit;
  } else {
    const BerModel& model = reduced ? reduced_ : normal_;
    if (adaptive) {
      // Retention re-centering: references chase the tracked mean V_th
      // loss, so only the (1 - gain) uncompensated drift plus the spread
      // around the mean still eats margin. A pure function of (pe, age)
      // like the static term, so it shares the cache.
      const Volt shift =
          config_.tracking_gain * model.mean_retention_loss(pe, age);
      ber = model.c2c_ber() + model.retention_ber(pe, age, shift);
    } else {
      ber = model.total_ber(static_cast<int>(pe), age);
    }
    if (cache.size() >= kBerCacheMaxEntries) cache.clear();
    cache.insert(key, ber);
  }
  // Disturb is closed-form (no integral), so it is evaluated exactly per
  // read instead of being folded into the cache key. Threshold tracking
  // cancels the compensated part of the shift via the residual read count.
  if (disturb_[mode]) {
    const std::uint64_t stress =
        adaptive ? residual_reads(ppn / pages_per_block_, block_reads)
                 : block_reads;
    ber += disturb_[mode]->ber(stress);
  }
  Assessment out;
  out.required_levels = ladder_.required_levels(ber, &out.correctable);
  return out;
}

std::vector<Duration> ReadChannel::measured_decode_times(
    Duration per_iteration, Duration overhead) const {
  if (step_iterations_.empty()) return {};
  const auto& steps = ladder_.steps();
  const int deepest = steps.back().extra_levels;
  std::vector<Duration> times(static_cast<std::size_t>(deepest) + 1, 0);
  for (int level = 0; level <= deepest; ++level) {
    // Interpolate on the iteration axis between the bracketing ladder
    // steps (level counts between steps only arise for clamped lookups).
    std::size_t hi = 0;
    while (steps[hi].extra_levels < level) ++hi;
    double iters;
    if (steps[hi].extra_levels == level || hi == 0) {
      iters = step_iterations_[hi];
    } else {
      const double span = static_cast<double>(steps[hi].extra_levels -
                                              steps[hi - 1].extra_levels);
      const double frac =
          static_cast<double>(level - steps[hi - 1].extra_levels) / span;
      iters = step_iterations_[hi - 1] +
              frac * (step_iterations_[hi] - step_iterations_[hi - 1]);
    }
    times[static_cast<std::size_t>(level)] =
        overhead + static_cast<Duration>(std::llround(
                       iters * static_cast<double>(per_iteration)));
  }
  return times;
}

}  // namespace flex::reliability
