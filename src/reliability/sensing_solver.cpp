#include "reliability/sensing_solver.h"

#include <cstddef>

#include "common/assert.h"

namespace flex::reliability {

SensingRequirement::SensingRequirement()
    : steps_{{{.extra_levels = 0, .max_raw_ber = 4.0e-3},
              {.extra_levels = 1, .max_raw_ber = 5.5e-3},
              {.extra_levels = 2, .max_raw_ber = 7.2e-3},
              {.extra_levels = 4, .max_raw_ber = 1.3e-2},
              {.extra_levels = 6, .max_raw_ber = 2.2e-2}}} {}

SensingRequirement::SensingRequirement(const std::array<Step, 5>& steps)
    : steps_(steps) {
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    FLEX_EXPECTS(steps_[i].max_raw_ber > 0.0);
    FLEX_EXPECTS(i == 0 || steps_[i].extra_levels > steps_[i - 1].extra_levels);
    FLEX_EXPECTS(i == 0 || steps_[i].max_raw_ber > steps_[i - 1].max_raw_ber);
  }
}

int SensingRequirement::required_levels(double raw_ber,
                                        bool* correctable) const {
  FLEX_EXPECTS(raw_ber >= 0.0);
  for (const auto& step : steps_) {
    if (raw_ber <= step.max_raw_ber) {
      if (correctable != nullptr) *correctable = true;
      return step.extra_levels;
    }
  }
  if (correctable != nullptr) *correctable = false;
  return steps_.back().extra_levels;
}

}  // namespace flex::reliability
