// Raw BER -> required extra LDPC soft-sensing levels (the method of [2] as
// applied in the paper's Table 5).
//
// Soft-decision LDPC tolerates a higher raw BER the more sensing levels it
// is given. Practical controllers step through a fixed level ladder
// (0, 1, 2, 4, 6 here: after the first two single-reference retries, levels
// are added in symmetric pairs around each read reference). Each ladder
// step has a maximum raw BER it can correct at UBER <= 1e-15; the caps
// below are fitted to reproduce the paper's Table 5 exactly and are
// cross-validated against this library's real min-sum decoder by
// bench/micro_ldpc (the measured correction capability grows with the
// level count in the same order).
#pragma once

#include <array>

namespace flex::reliability {

class SensingRequirement {
 public:
  struct Step {
    int extra_levels;
    double max_raw_ber;
  };

  /// The default ladder used throughout the paper reproduction.
  SensingRequirement();

  /// A ladder with custom BER caps over the same level counts — how the
  /// ReadChannel installs MI-calibrated caps (read_channel.cpp). Steps
  /// must be strictly increasing in both extra_levels and max_raw_ber.
  explicit SensingRequirement(const std::array<Step, 5>& steps);

  /// Extra sensing levels needed to correct `raw_ber`; returns the top step
  /// when even it is insufficient *and* sets `*correctable = false`.
  int required_levels(double raw_ber, bool* correctable = nullptr) const;

  /// The BER cap of hard-decision (zero extra level) decoding — the
  /// "BER limit that triggers extra sensing levels" (paper: 4e-3).
  double hard_decision_cap() const { return steps_.front().max_raw_ber; }

  /// Highest BER the deepest soft read corrects.
  double max_correctable() const { return steps_.back().max_raw_ber; }

  const std::array<Step, 5>& steps() const { return steps_; }

 private:
  std::array<Step, 5> steps_;
};

}  // namespace flex::reliability
