#include "reliability/ber_model.h"

#include <cmath>
#include <numbers>

#include "common/assert.h"

namespace flex::reliability {
namespace {

// 8-point Gauss-Hermite quadrature (integral of e^{-t^2} f(t) dt).
constexpr double kGhNodes[8] = {-2.9306374202572440, -1.9816567566958429,
                                -1.1571937124467802, -0.3811869902073221,
                                0.3811869902073221,  1.1571937124467802,
                                1.9816567566958429,  2.9306374202572440};
constexpr double kGhWeights[8] = {1.9960407221136762e-4, 1.7077983007413475e-2,
                                  2.0780232581489188e-1, 6.6114701255824129e-1,
                                  6.6114701255824129e-1, 2.0780232581489188e-1,
                                  1.7077983007413475e-2, 1.9960407221136762e-4};

}  // namespace

BerModel::BerModel(nand::LevelConfig level_config, const BitMapper& mapper,
                   RetentionModel retention, BerEngine::Config c2c_engine,
                   Rng& rng)
    : level_config_(std::move(level_config)), retention_(retention) {
  const int group_cells = mapper.cells_per_group();
  const int group_bits = mapper.bits_per_group();
  FLEX_EXPECTS(group_bits <= 20);
  const int levels = level_config_.levels();

  // One-off Monte-Carlo for the C2C (P/E- and age-independent) component.
  {
    BerEngine engine(c2c_engine);
    const BerReport report = engine.measure(level_config_, mapper,
                                            /*retention=*/nullptr,
                                            /*pe_cycles=*/0, /*age=*/0.0, rng);
    c2c_ber_ = report.c2c.rate();
  }

  // Enumerate every data pattern of one mapper group to derive the level
  // occupancy and the expected bit damage of a one-level retention drop.
  occupancy_.assign(static_cast<std::size_t>(levels), 0.0);
  drop_damage_.assign(static_cast<std::size_t>(levels), 0.0);
  bump_damage_.assign(static_cast<std::size_t>(levels), 0.0);
  std::vector<double> drop_events(static_cast<std::size_t>(levels), 0.0);
  std::vector<double> bump_events(static_cast<std::size_t>(levels), 0.0);
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(group_bits));
  std::vector<std::uint8_t> read_bits(static_cast<std::size_t>(group_bits));
  std::vector<int> group_levels(static_cast<std::size_t>(group_cells));
  std::vector<int> dropped(static_cast<std::size_t>(group_cells));
  const int patterns = 1 << group_bits;
  std::uint64_t cells_total = 0;
  for (int pattern = 0; pattern < patterns; ++pattern) {
    for (int i = 0; i < group_bits; ++i) {
      bits[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((pattern >> i) & 1);
    }
    mapper.to_levels(bits, group_levels);
    for (int c = 0; c < group_cells; ++c) {
      const int level = group_levels[static_cast<std::size_t>(c)];
      FLEX_ASSERT(level >= 0 && level < levels);
      occupancy_[static_cast<std::size_t>(level)] += 1.0;
      ++cells_total;
      auto bit_diff_after = [&](const std::vector<int>& shifted) {
        mapper.to_bits(shifted, read_bits);
        int diff = 0;
        for (int i = 0; i < group_bits; ++i) {
          if (read_bits[static_cast<std::size_t>(i)] !=
              bits[static_cast<std::size_t>(i)]) {
            ++diff;
          }
        }
        return diff;
      };
      if (level > 0) {
        dropped.assign(group_levels.begin(), group_levels.end());
        --dropped[static_cast<std::size_t>(c)];
        drop_damage_[static_cast<std::size_t>(level)] +=
            bit_diff_after(dropped);
        drop_events[static_cast<std::size_t>(level)] += 1.0;
      }
      if (level < levels - 1) {
        dropped.assign(group_levels.begin(), group_levels.end());
        ++dropped[static_cast<std::size_t>(c)];
        bump_damage_[static_cast<std::size_t>(level)] +=
            bit_diff_after(dropped);
        bump_events[static_cast<std::size_t>(level)] += 1.0;
      }
    }
  }
  // Average bit flips per event, expressed per stored bit of the group,
  // times cells-per-group so per-cell terms sum into a per-bit BER.
  for (int l = 0; l < levels; ++l) {
    occupancy_[static_cast<std::size_t>(l)] /=
        static_cast<double>(cells_total);
    if (drop_events[static_cast<std::size_t>(l)] > 0.0) {
      drop_damage_[static_cast<std::size_t>(l)] =
          drop_damage_[static_cast<std::size_t>(l)] /
          drop_events[static_cast<std::size_t>(l)] *
          static_cast<double>(group_cells) / static_cast<double>(group_bits);
    }
    if (bump_events[static_cast<std::size_t>(l)] > 0.0) {
      bump_damage_[static_cast<std::size_t>(l)] =
          bump_damage_[static_cast<std::size_t>(l)] /
          bump_events[static_cast<std::size_t>(l)] *
          static_cast<double>(group_cells) / static_cast<double>(group_bits);
    }
  }
}

double BerModel::retention_ber(int pe_cycles, Hours age,
                               Volt ref_shift) const {
  if (pe_cycles <= 0 || age <= 0.0) return 0.0;
  const int levels = level_config_.levels();
  const Volt vpp = level_config_.vpp();
  const double x0_mean = level_config_.erased_mean();
  const double x0_sigma = level_config_.erased_sigma();
  constexpr int kIsppPoints = 16;

  double ber = 0.0;
  for (int l = 1; l < levels; ++l) {
    const Volt verify = level_config_.verify(l);
    const Volt lower_ref = level_config_.read_ref(l - 1);
    double p_drop = 0.0;
    for (int i = 0; i < kIsppPoints; ++i) {
      // Midpoint rule over the uniform ISPP placement.
      const Volt x = verify + vpp * (i + 0.5) / kIsppPoints;
      const Volt margin = x - lower_ref + ref_shift;
      double p_x0 = 0.0;
      for (int g = 0; g < 8; ++g) {
        const Volt x0 =
            x0_mean + std::numbers::sqrt2 * x0_sigma * kGhNodes[g];
        p_x0 += kGhWeights[g] *
                retention_.loss_exceeds(margin, x, x0, pe_cycles, age);
      }
      p_drop += p_x0 / std::sqrt(std::numbers::pi);
    }
    p_drop /= kIsppPoints;
    ber += occupancy_[static_cast<std::size_t>(l)] * p_drop *
           drop_damage_[static_cast<std::size_t>(l)];
  }
  return ber;
}

double BerModel::mean_retention_loss(int pe_cycles, Hours age) const {
  if (pe_cycles <= 0 || age <= 0.0) return 0.0;
  const int levels = level_config_.levels();
  const Volt vpp = level_config_.vpp();
  const double x0_mean = level_config_.erased_mean();
  const double x0_sigma = level_config_.erased_sigma();
  constexpr int kIsppPoints = 16;

  // Same ISPP x Gauss-Hermite quadrature as retention_ber, but over the
  // Eq. 3 loss *mean* instead of the margin-exceedance tail, weighted by
  // the programmed-level occupancy (the erased state holds no charge to
  // lose and sits below every reference the estimator re-centers).
  double loss = 0.0;
  double weight = 0.0;
  for (int l = 1; l < levels; ++l) {
    const Volt verify = level_config_.verify(l);
    double level_loss = 0.0;
    for (int i = 0; i < kIsppPoints; ++i) {
      const Volt x = verify + vpp * (i + 0.5) / kIsppPoints;
      double mu_x0 = 0.0;
      for (int g = 0; g < 8; ++g) {
        const Volt x0 =
            x0_mean + std::numbers::sqrt2 * x0_sigma * kGhNodes[g];
        mu_x0 += kGhWeights[g] * retention_.mu(x, x0, pe_cycles, age);
      }
      level_loss += mu_x0 / std::sqrt(std::numbers::pi);
    }
    level_loss /= kIsppPoints;
    loss += occupancy_[static_cast<std::size_t>(l)] * level_loss;
    weight += occupancy_[static_cast<std::size_t>(l)];
  }
  return weight > 0.0 ? loss / weight : 0.0;
}

}  // namespace flex::reliability
