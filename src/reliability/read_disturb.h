// Read-disturb error model (after Cai et al., "Read Disturb Errors in MLC
// NAND Flash Memory", DSN 2015 — PAPERS.md).
//
// Reading one page applies the pass-through voltage V_pass to every other
// wordline of the block, weakly programming their cells: V_th shifts
// *upward*, approximately linearly in the accumulated read count. The
// model converts a block's read count into the extra raw BER its pages
// see, per programmed level:
//   * the erased state is hit hardest (its low V_th tunnels most under
//     V_pass; Cai et al. attribute the dominant share of disturb errors to
//     ER-state cells) — modelled by an amplification factor on the shift;
//   * a programmed level fails when the shift pushes its ISPP placement
//     across its *upper* read reference, i.e. disturb consumes exactly the
//     C2C noise margin. NUNMA's raised verify voltages have already spent
//     part of that margin, so reduced-state pages accumulate disturb
//     errors faster than a uniform-margin reduced cell would — the
//     LevelAdjust/disturb interaction the refresh policy must provision
//     for;
//   * wordlines adjacent to the most-read page see boosted stress
//     (V_pass overshoot), folded in as a worst-case amplification — BER
//     sizing must provision for the worst wordline of the block.
//
// The term is additive on top of BerModel::total_ber (C2C + retention):
// the three mechanisms stress disjoint margins, and the simulator feeds
// the sum to the sensing-requirement ladder.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "nand/level_config.h"
#include "reliability/ber_model.h"

namespace flex::reliability {

class ReadDisturbModel {
 public:
  struct Params {
    /// Upward V_th shift of a programmed cell per pass-voltage stress
    /// event (= one read of any other page in its block). Linear-in-reads
    /// per Cai et al.; the magnitude is an accelerated-stress setting so
    /// the simulator's (scaled-down) traces reach the disturb regime —
    /// real parts sit near 1e-7 V/read.
    Volt vth_shift_per_read = 4.0e-6;
    /// Extra shift multiplier for erased (level-0) cells: their low V_th
    /// sees the full V_pass overdrive and tunnels fastest.
    double erased_amplification = 4.0;
    /// Worst-case multiplier for the wordlines adjacent to the read page.
    double neighbor_amplification = 1.5;
  };

  /// Derives the level geometry, occupancy, and per-level bump damage from
  /// the (mode-matched) BerModel, so disturb and retention share one data
  /// layout.
  ReadDisturbModel(Params params, const BerModel& ber);

  /// Worst-case upward V_th shift of a programmed cell after
  /// `block_reads` reads of the containing block.
  Volt vth_shift(std::uint64_t block_reads) const;

  /// Additional raw BER of a page in a block read `block_reads` times
  /// since it was programmed/erased. Zero at zero reads (the C2C
  /// Monte-Carlo already covers the undisturbed tails), monotone in reads.
  double ber(std::uint64_t block_reads) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
  nand::LevelConfig level_config_;
  std::vector<double> occupancy_;
  std::vector<double> bump_damage_;
  /// Undisturbed erased-tail crossing probability, subtracted so ber(0)=0.
  double erased_tail_at_rest_ = 0.0;
};

}  // namespace flex::reliability
