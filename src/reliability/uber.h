// Uncorrectable bit error rate (paper Eq. 1).
//
//   uber(k) = (1 - sum_{i=0..k} C(m,i) p^i (1-p)^(m-i)) / n
//
// for a rate-n/m ECC correcting k bit errors over an m-bit codeword with
// per-bit raw error probability p. Evaluated in log space: the interesting
// regime is 1e-15, far below what naive summation can resolve.
#pragma once

namespace flex::reliability {

/// P(X > k) for X ~ Binomial(m, p): the probability that a codeword holds
/// more errors than the code corrects. Stable down to ~1e-300.
double binomial_tail_above(int k, int m, double p);

/// Paper Eq. 1. `n_info` and `m_total` are the code's information and
/// codeword lengths in bits.
double uber(int correctable, int n_info, int m_total, double raw_ber);

/// Smallest k with uber(k) <= target; -1 if even k = m doesn't reach it
/// (cannot happen for target > 0 but guards misuse).
int required_correction(double target_uber, int n_info, int m_total,
                        double raw_ber);

/// Largest raw BER p such that uber(k) <= target, found by bisection —
/// the "BER cap" a code with correction strength k can tolerate.
double max_raw_ber(double target_uber, int correctable, int n_info,
                   int m_total);

}  // namespace flex::reliability
