#include "reliability/retention.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/normal.h"

namespace flex::reliability {

RetentionModel::RetentionModel(Params params) : params_(params) {
  FLEX_EXPECTS(params_.ks > 0.0);
  FLEX_EXPECTS(params_.kd > 0.0);
  FLEX_EXPECTS(params_.km > 0.0);
  FLEX_EXPECTS(params_.t0 > 0.0);
  FLEX_EXPECTS(params_.mu_scale > 0.0);
  FLEX_EXPECTS(params_.sigma_scale > 0.0);
}

double RetentionModel::stress(Volt x, Volt x0) const {
  // A cell holding no extra charge (x <= x0) has nothing to lose.
  return params_.ks * std::max(x - x0, 0.0);
}

double RetentionModel::mu(Volt x, Volt x0, int pe_cycles, Hours t) const {
  FLEX_EXPECTS(pe_cycles >= 0);
  FLEX_EXPECTS(t >= 0.0);
  const double time_factor = std::log1p(t / params_.t0);
  return params_.mu_scale * stress(x, x0) * params_.kd *
         std::pow(static_cast<double>(pe_cycles), 0.4) * time_factor;
}

double RetentionModel::sigma(Volt x, Volt x0, int pe_cycles, Hours t) const {
  FLEX_EXPECTS(pe_cycles >= 0);
  FLEX_EXPECTS(t >= 0.0);
  const double time_factor = std::log1p(t / params_.t0);
  const double variance = stress(x, x0) * params_.km *
                          std::pow(static_cast<double>(pe_cycles), 0.5) *
                          time_factor;
  return params_.sigma_scale * std::sqrt(std::max(variance, 0.0));
}

double RetentionModel::sample_loss(Volt x, Volt x0, int pe_cycles, Hours t,
                                   Rng& rng) const {
  const double loss =
      rng.normal(mu(x, x0, pe_cycles, t), sigma(x, x0, pe_cycles, t));
  // Charge loss is physically one-directional; the Gaussian is the paper's
  // approximation of its spread, so clip the (rare) negative tail.
  return std::max(loss, 0.0);
}

double RetentionModel::loss_exceeds(Volt margin, Volt x, Volt x0,
                                    int pe_cycles, Hours t) const {
  const double s = sigma(x, x0, pe_cycles, t);
  if (s <= 0.0) return margin < mu(x, x0, pe_cycles, t) ? 1.0 : 0.0;
  return q_function((margin - mu(x, x0, pe_cycles, t)) / s);
}

}  // namespace flex::reliability
