// Monte-Carlo bit-error-rate engine.
//
// Programs cell arrays with random data under a given level configuration,
// applies C2C interference (via CellArray) and optionally retention loss,
// reads the cells back, and counts bit errors through a pluggable
// level->bit mapping (Gray code for normal-state cells, ReduceCode for
// reduced-state cells — the latter is injected by the flexlevel layer to
// keep this substrate independent of the core technique).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "nand/cell_array.h"
#include "nand/level_config.h"
#include "reliability/retention.h"

namespace flex::reliability {

/// Maps a fixed-size group of cell levels to bits. Implementations must be
/// stateless value mappers.
class BitMapper {
 public:
  virtual ~BitMapper() = default;
  virtual int cells_per_group() const = 0;
  virtual int bits_per_group() const = 0;
  /// `levels.size() == cells_per_group()`, `bits.size() == bits_per_group()`.
  virtual void to_bits(std::span<const int> levels,
                       std::span<std::uint8_t> bits) const = 0;
  /// Inverse of to_bits (used to pick programmable random data).
  virtual void to_levels(std::span<const std::uint8_t> bits,
                         std::span<int> levels) const = 0;
};

/// Normal-state mapper: one 4-level cell -> 2 bits via the standard Gray
/// code of §2.1.
class GrayMapper final : public BitMapper {
 public:
  int cells_per_group() const override { return 1; }
  int bits_per_group() const override { return 2; }
  void to_bits(std::span<const int> levels,
               std::span<std::uint8_t> bits) const override;
  void to_levels(std::span<const std::uint8_t> bits,
                 std::span<int> levels) const override;
};

/// Error accounting from one or more measurement runs.
struct BerReport {
  RateEstimator total;      ///< bit errors / stored bits
  RateEstimator c2c;        ///< bit errors from upward level shifts
  RateEstimator retention;  ///< bit errors from downward level shifts
  /// Cell-level (not bit-level) error counts indexed by *stored* level —
  /// reproduces the paper's "78% of retention errors at level 2" analysis.
  std::vector<std::uint64_t> cell_errors_by_level;
  std::uint64_t cells_observed = 0;
};

class BerEngine {
 public:
  struct Config {
    int wordlines = 64;
    int bitlines = 256;
    int rounds = 4;  ///< independent array programmings to aggregate
    nand::CouplingRatios coupling;
  };

  explicit BerEngine(Config config);

  /// Measures BER for `level_config` with data mapped through `mapper`.
  /// When `retention` is non-null the loss model is applied with the given
  /// age; pass nullptr to measure the post-programming (C2C-only) BER.
  BerReport measure(const nand::LevelConfig& level_config,
                    const BitMapper& mapper, const RetentionModel* retention,
                    int pe_cycles, Hours age, Rng& rng) const;

 private:
  Config config_;
};

}  // namespace flex::reliability
