// ReadChannel: the one seam between the NAND channel model and the LDPC
// decoder.
//
// The seed simulator wired BerModel + ReadDisturbModel + SensingRequirement
// + a BER cache together inline; ReadChannel unifies them behind a single
// facade and closes the channel<->decoder loop with three (independently
// switchable, all off by default) features:
//
//  * adaptive per-block read thresholds ("Adaptive Read Thresholds for
//    NAND Flash", PAPERS.md): a per-block estimator tracks the V_th drift
//    the disturb and retention models already compute — upward from
//    pass-voltage stress, downward from charge loss — and re-centers the
//    read references against it. Compensated drift stops eating the
//    sensing margin, so the effective raw BER (and with it the required
//    ladder depth) drops versus the static-reference model;
//  * MI-optimized sensing placement (ldpc/channel): soft-sensing offsets
//    placed to maximize the quantized channel's mutual information keep
//    more soft information per strobe, raising each ladder step's BER cap.
//    The caps are re-calibrated by equating quantized MI — the
//    density-evolution decodability proxy — against the seed ladder's
//    uniform-quantizer caps;
//  * decoder-measured latency: mean min-sum iteration counts, measured by
//    running the real QC-LDPC decoder at each ladder step's cap BER
//    (bench/micro_ldpc methodology, deterministic seeds), drive the
//    decode-latency table instead of the fixed decode_base/decode_per_level
//    constants.
//
// With every feature off, assess() reproduces the seed's
// required_levels_cached arithmetic byte-for-byte — same cache keying, same
// bounded flush-on-full eviction, same disturb composition — which is what
// keeps the pinned fig6a goldens unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_hash_map.h"
#include "common/units.h"
#include "reliability/ber_model.h"
#include "reliability/read_disturb.h"
#include "reliability/sensing_solver.h"

namespace flex::reliability {

/// Sensing-boundary placement (mirrors ldpc::QuantizerKind without leaking
/// the ldpc dependency into every config consumer).
enum class ChannelQuantizer { kUniform, kMiOptimized };

/// Where decode attempt durations come from.
enum class DecodeLatencyMode {
  /// The seed's fixed decode_base + levels * decode_per_level table.
  kTable,
  /// Measured mean min-sum iterations per ladder step (real decoder runs
  /// at construction, deterministic seeds) converted to durations.
  kMeasured,
};

/// The `SsdConfig::channel` block. Everything defaults off; Validate()
/// (ssd/simulator.cpp) rejects armed-but-disabled footguns.
struct ReadChannelConfig {
  /// Master switch for the closed-loop features below. With it false the
  /// facade is a pure refactor of the seed read path (byte-identical).
  bool enabled = false;
  /// Per-block read-threshold tracking (disturb re-centering via residual
  /// read counts + retention re-centering via the mean-loss estimate).
  bool adaptive_thresholds = false;
  ChannelQuantizer quantizer = ChannelQuantizer::kUniform;
  DecodeLatencyMode decode_latency = DecodeLatencyMode::kTable;
  /// Adaptive thresholds: block reads between per-block re-calibrations.
  /// Between calibrations the uncompensated residual drift accumulates,
  /// so smaller intervals track tighter at more calibration-read cost.
  std::uint64_t calibrate_interval = 256;
  /// Fraction of the estimated reference drift the tracking compensates
  /// (in (0, 1]; real estimators under-correct to stay stable).
  double tracking_gain = 0.9;
  /// Measured decode mode: codewords decoded per ladder step, and the rng
  /// seed of the calibration run.
  int calibration_trials = 4;
  std::uint64_t calibration_seed = 0xCA11B;
};

class ReadChannel {
 public:
  struct Params {
    ReadChannelConfig config;
    /// Mirror of SsdConfig::read_disturb — the channel owns the per-mode
    /// disturb models so every BER producer sits behind one facade.
    bool disturb_enabled = false;
    ReadDisturbModel::Params disturb;
    /// Geometry for the per-block estimator state (ppn -> block index).
    std::uint64_t pages_per_block = 1;
    std::uint64_t physical_blocks = 0;
  };

  struct Assessment {
    int required_levels = 0;
    bool correctable = true;
  };

  /// Estimator observability (gauges since construction, for benches).
  struct Stats {
    std::uint64_t calibrations = 0;
    /// Calibration-state resets from detected block erases (the FTL read
    /// counter moved backwards).
    std::uint64_t resets = 0;
  };

  ReadChannel(const Params& params, const BerModel& normal,
              const BerModel& reduced);

  /// The active sensing ladder: the seed's Table-5 caps under the uniform
  /// quantizer, MI-calibrated caps under kMiOptimized.
  const SensingRequirement& ladder() const { return ladder_; }

  /// Sensing requirement of one read: combined raw BER at this wear/age/
  /// disturb state (re-centered when adaptive thresholds are on) pushed
  /// through the ladder. The wear/age BER integral is far too slow to
  /// evaluate per simulated read, so it is cached by (P/E, age bucket);
  /// the disturb term is cheap and exact, added per read on top.
  Assessment assess(bool reduced, std::uint32_t pe, Hours age,
                    std::uint64_t ppn, std::uint64_t block_reads);

  /// Measured decode durations by extra-level count (0..deepest ladder
  /// level), from the calibration run's mean min-sum iterations:
  /// `overhead + round(iterations * per_iteration)`, with level counts
  /// between ladder steps interpolated on the iteration axis. Empty unless
  /// decode_latency == kMeasured.
  std::vector<Duration> measured_decode_times(Duration per_iteration,
                                              Duration overhead) const;

  /// Mean measured min-sum iterations per ladder step (empty unless
  /// decode_latency == kMeasured); exposed for tests and benches.
  const std::vector<double>& step_iterations() const {
    return step_iterations_;
  }

  const Stats& stats() const { return stats_; }

 private:
  /// Effective disturb-stress read count after threshold tracking: drift
  /// from reads compensated at the last calibration no longer consumes
  /// margin, so only the residual stresses the page. Updates the block's
  /// calibration state (erase detection, re-calibration) as a side effect.
  std::uint64_t residual_reads(std::uint64_t block, std::uint64_t reads);

  ReadChannelConfig config_;
  const BerModel& normal_;
  const BerModel& reduced_;
  /// Per-mode disturb models (normal, reduced); null when disabled.
  std::unique_ptr<ReadDisturbModel> disturb_[2];
  SensingRequirement ladder_;
  // (pe, age-bucket) -> wear/age raw BER; one map per cell mode. Bounded:
  // at kBerCacheMaxEntries the whole map is flushed (a deterministic
  // eviction policy — the cached value is a pure function of the key, so a
  // flush can only cost recomputation, never change a result).
  static constexpr std::size_t kBerCacheMaxEntries = 1u << 15;
  FlatHashMap<double> ber_cache_[2];
  /// Per-block threshold-tracking state: the block read count whose drift
  /// the last calibration compensated (0 = never calibrated).
  std::vector<std::uint64_t> calibrated_reads_;
  std::uint64_t pages_per_block_ = 1;
  std::vector<double> step_iterations_;
  Stats stats_;
};

}  // namespace flex::reliability
