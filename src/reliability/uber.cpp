#include "reliability/uber.h"

#include <cmath>
#include <vector>

#include "common/assert.h"

namespace flex::reliability {

double binomial_tail_above(int k, int m, double p) {
  FLEX_EXPECTS(m > 0);
  FLEX_EXPECTS(p >= 0.0 && p <= 1.0);
  if (k >= m) return 0.0;
  if (k < 0) return 1.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;

  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  auto log_pmf = [&](int i) {
    return std::lgamma(m + 1.0) - std::lgamma(i + 1.0) -
           std::lgamma(m - i + 1.0) + i * log_p + (m - i) * log_q;
  };

  // Sum P(X = i) for i in (k, m] in log space, anchored at the largest term
  // (either the mode or the boundary k+1 when the mode is inside the head).
  const int mode = static_cast<int>((m + 1) * p);
  const int start = k + 1;
  const int peak = std::max(start, std::min(mode, m));
  const double log_peak = log_pmf(peak);
  double sum = 0.0;
  for (int i = start; i <= m; ++i) {
    const double term = std::exp(log_pmf(i) - log_peak);
    sum += term;
    // Beyond the mode the terms decay geometrically; stop once negligible.
    if (i > peak && term < 1e-18 * sum) break;
  }
  const double log_tail = log_peak + std::log(sum);
  return log_tail > 0.0 ? 1.0 : std::exp(log_tail);
}

double uber(int correctable, int n_info, int m_total, double raw_ber) {
  FLEX_EXPECTS(n_info > 0);
  FLEX_EXPECTS(m_total >= n_info);
  return binomial_tail_above(correctable, m_total, raw_ber) /
         static_cast<double>(n_info);
}

int required_correction(double target_uber, int n_info, int m_total,
                        double raw_ber) {
  FLEX_EXPECTS(target_uber > 0.0);
  // Monotone in k: bisect.
  int lo = 0;
  int hi = m_total;
  if (uber(hi, n_info, m_total, raw_ber) > target_uber) return -1;
  if (uber(lo, n_info, m_total, raw_ber) <= target_uber) return 0;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    if (uber(mid, n_info, m_total, raw_ber) <= target_uber) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double max_raw_ber(double target_uber, int correctable, int n_info,
                   int m_total) {
  FLEX_EXPECTS(target_uber > 0.0);
  double lo = 0.0;
  double hi = 0.5;
  if (uber(correctable, n_info, m_total, hi) <= target_uber) return hi;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (uber(correctable, n_info, m_total, mid) <= target_uber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace flex::reliability
