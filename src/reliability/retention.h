// Retention-time charge-loss model (paper Eq. 3).
//
// The V_th decrease of a programmed cell after N P/E cycles and storage
// time t follows N(mu_d, sigma_d^2) with
//   mu_d     = Ks (x - x0) Kd N^0.4 ln(1 + t/t0)
//   sigma_d^2 = Ks (x - x0) Km N^0.5 ln(1 + t/t0)
// where x is the freshly-programmed V_th and x0 the cell's erased-state
// V_th. Constants from the paper (after [18]): Ks = 0.333, Kd = 4e-4,
// Km = 2e-6, t0 = 1 hour.
//
// Calibration: the paper does not give the baseline 4-level V_th placement,
// so the absolute BER depends on our reconstruction. mu_scale/sigma_scale
// multiply mu_d and sigma_d; they are fixed once (see DESIGN.md §5) so the
// *baseline* lands in the paper's Table 4 decade, and are shared by every
// configuration — the baseline/NUNMA ratios remain genuine predictions.
#pragma once

#include "common/rng.h"
#include "common/units.h"

namespace flex::reliability {

class RetentionModel {
 public:
  struct Params {
    double ks = 0.333;
    double kd = 4.0e-4;
    double km = 2.0e-6;
    Hours t0 = 1.0;
    /// Calibrated magnitude scales (DESIGN.md §5): fitted once against the
    /// paper's Table 4 baseline and NUNMA-3 series (together with the
    /// baseline verify offset); every configuration shares them, so the
    /// relative behaviour of the schemes is a model prediction, not a fit.
    double mu_scale = 0.542;
    double sigma_scale = 1.145;
  };

  RetentionModel() : RetentionModel(Params{}) {}
  explicit RetentionModel(Params params);

  /// Mean V_th loss for programmed level x (erased reference x0) after
  /// `pe_cycles` P/E cycles and `t` hours of storage.
  double mu(Volt x, Volt x0, int pe_cycles, Hours t) const;
  /// Standard deviation of the loss.
  double sigma(Volt x, Volt x0, int pe_cycles, Hours t) const;

  /// Draws the (non-negative) V_th loss for one cell; callers subtract it.
  double sample_loss(Volt x, Volt x0, int pe_cycles, Hours t,
                     Rng& rng) const;

  /// Probability that the loss exceeds `margin` (analytic Gaussian tail) —
  /// used for fast per-level error estimates and cross-checks.
  double loss_exceeds(Volt margin, Volt x, Volt x0, int pe_cycles,
                      Hours t) const;

  const Params& params() const { return params_; }

 private:
  double stress(Volt x, Volt x0) const;  ///< Ks * max(x - x0, 0)

  Params params_;
};

}  // namespace flex::reliability
