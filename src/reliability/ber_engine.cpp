#include "reliability/ber_engine.h"

#include <algorithm>

#include "common/assert.h"
#include "nand/gray_code.h"

namespace flex::reliability {

void GrayMapper::to_bits(std::span<const int> levels,
                         std::span<std::uint8_t> bits) const {
  FLEX_EXPECTS(levels.size() == 1 && bits.size() == 2);
  const nand::BitPair pair = nand::mlc_gray_decode(levels[0]);
  bits[0] = pair.lsb;
  bits[1] = pair.msb;
}

void GrayMapper::to_levels(std::span<const std::uint8_t> bits,
                           std::span<int> levels) const {
  FLEX_EXPECTS(levels.size() == 1 && bits.size() == 2);
  levels[0] = nand::mlc_gray_encode({.lsb = bits[0], .msb = bits[1]});
}

BerEngine::BerEngine(Config config) : config_(config) {
  FLEX_EXPECTS(config_.wordlines >= 2);
  FLEX_EXPECTS(config_.bitlines >= 4);
  FLEX_EXPECTS(config_.rounds >= 1);
}

BerReport BerEngine::measure(const nand::LevelConfig& level_config,
                             const BitMapper& mapper,
                             const RetentionModel* retention, int pe_cycles,
                             Hours age, Rng& rng) const {
  const int group_cells = mapper.cells_per_group();
  const int group_bits = mapper.bits_per_group();
  FLEX_EXPECTS(group_cells >= 1);

  BerReport report;
  report.cell_errors_by_level.assign(
      static_cast<std::size_t>(level_config.levels()), 0);

  // Cell coordinates of every mapper group: cells of equal bitline parity
  // within one wordline are paired left-to-right, matching the ReduceCode
  // bitline structure of Fig. 3 (and degenerating to per-cell for Gray).
  std::vector<std::vector<std::pair<int, int>>> groups;
  for (int w = 0; w < config_.wordlines; ++w) {
    for (const int parity : {0, 1}) {
      std::vector<std::pair<int, int>> run;
      for (int b = parity; b < config_.bitlines; b += 2) {
        run.emplace_back(w, b);
        if (static_cast<int>(run.size()) == group_cells) {
          groups.push_back(run);
          run.clear();
        }
      }
      // Cells that do not fill a whole group are left erased (unused).
    }
  }

  std::vector<int> targets(
      static_cast<std::size_t>(config_.wordlines * config_.bitlines), 0);
  std::vector<std::uint8_t> data_bits(static_cast<std::size_t>(group_bits));
  std::vector<int> group_levels(static_cast<std::size_t>(group_cells));
  std::vector<std::uint8_t> read_bits(static_cast<std::size_t>(group_bits));
  std::vector<int> read_levels(static_cast<std::size_t>(group_cells));

  nand::CellArray array(config_.wordlines, config_.bitlines);
  std::vector<std::vector<std::uint8_t>> stored(
      groups.size(), std::vector<std::uint8_t>(
                         static_cast<std::size_t>(group_bits)));

  for (int round = 0; round < config_.rounds; ++round) {
    // Random payload for every group.
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (auto& bit : stored[g]) {
        bit = static_cast<std::uint8_t>(rng.below(2));
      }
      mapper.to_levels(stored[g], group_levels);
      for (int c = 0; c < group_cells; ++c) {
        const auto [w, b] = groups[g][static_cast<std::size_t>(c)];
        targets[static_cast<std::size_t>(w * config_.bitlines + b)] =
            group_levels[static_cast<std::size_t>(c)];
      }
    }

    array.program(level_config, targets, config_.coupling, rng);

    if (retention != nullptr) {
      for (int w = 0; w < config_.wordlines; ++w) {
        for (int b = 0; b < config_.bitlines; ++b) {
          if (array.target_level(w, b) == 0) continue;
          const double loss = retention->sample_loss(
              array.programmed_vth(w, b), array.erased_vth(w, b), pe_cycles,
              age, rng);
          array.shift_vth(w, b, -loss);
        }
      }
    }

    for (std::size_t g = 0; g < groups.size(); ++g) {
      int up_cells = 0;
      int down_cells = 0;
      for (int c = 0; c < group_cells; ++c) {
        const auto [w, b] = groups[g][static_cast<std::size_t>(c)];
        const int stored_level = array.target_level(w, b);
        const int level = level_config.read_level(array.vth(w, b));
        read_levels[static_cast<std::size_t>(c)] = level;
        if (level != stored_level) {
          ++report.cell_errors_by_level[static_cast<std::size_t>(
              stored_level)];
          if (level > stored_level) {
            ++up_cells;
          } else {
            ++down_cells;
          }
        }
        ++report.cells_observed;
      }
      mapper.to_bits(read_levels, read_bits);
      std::uint64_t bit_errors = 0;
      for (int i = 0; i < group_bits; ++i) {
        if (read_bits[static_cast<std::size_t>(i)] !=
            stored[g][static_cast<std::size_t>(i)]) {
          ++bit_errors;
        }
      }
      report.total.add_many(bit_errors, static_cast<std::uint64_t>(group_bits));
      // Attribute bit errors to the noise direction of the failing cells;
      // mixed groups (both directions at once, vanishingly rare) split.
      if (bit_errors > 0) {
        if (up_cells > 0 && down_cells == 0) {
          report.c2c.add_many(bit_errors, bit_errors);
          report.retention.add_many(0, 0);
        } else if (down_cells > 0 && up_cells == 0) {
          report.retention.add_many(bit_errors, bit_errors);
        } else if (up_cells > 0 && down_cells > 0) {
          const std::uint64_t half = bit_errors / 2;
          report.c2c.add_many(half, half);
          report.retention.add_many(bit_errors - half, bit_errors - half);
        }
      }
    }
  }

  // Re-base the direction-specific estimators onto the same denominator as
  // the total so their rates are comparable BERs.
  BerReport out;
  out.cell_errors_by_level = report.cell_errors_by_level;
  out.cells_observed = report.cells_observed;
  out.total = report.total;
  out.c2c.add_many(report.c2c.events(), report.total.trials());
  out.retention.add_many(report.retention.events(), report.total.trials());
  return out;
}

}  // namespace flex::reliability
