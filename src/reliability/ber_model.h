// Fast per-read BER evaluation for the SSD simulator.
//
// The Monte-Carlo BerEngine is exact but far too slow to call on every
// simulated read, so BerModel splits the error rate into
//   * a C2C component — independent of P/E count and age in the paper's
//     Eq. 2 model — measured once by Monte-Carlo at construction, and
//   * a retention component evaluated analytically: for each programmed
//     level, the probability that the Eq. 3 Gaussian loss exceeds the
//     level's margin, integrated over the ISPP placement (uniform over
//     [verify, verify+vpp]) and the erased-reference spread x0
//     (Gauss-Hermite quadrature), weighted by the level occupancy and the
//     expected bit damage of a one-level drop under the bit mapping.
//
// tests/reliability/ber_model_test.cc pins this against the Monte-Carlo
// engine.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "nand/level_config.h"
#include "reliability/ber_engine.h"
#include "reliability/retention.h"

namespace flex::reliability {

class BerModel {
 public:
  /// `mapper` defines the data layout (Gray or ReduceCode); the engine
  /// config sizes the one-off C2C Monte-Carlo run.
  BerModel(nand::LevelConfig level_config, const BitMapper& mapper,
           RetentionModel retention, BerEngine::Config c2c_engine, Rng& rng);

  /// Bit error rate from cell-to-cell interference alone.
  double c2c_ber() const { return c2c_ber_; }

  /// Bit error rate from retention loss after `pe_cycles` and `age`.
  double retention_ber(int pe_cycles, Hours age) const {
    return retention_ber(pe_cycles, age, 0.0);
  }

  /// Retention BER when every lower read reference has been lowered by
  /// `ref_shift` volts to chase the drifting V_th distribution (adaptive
  /// threshold tracking, reliability/read_channel): each level's margin to
  /// its lower reference grows by the shift. `ref_shift = 0` is exactly
  /// the static-reference model.
  double retention_ber(int pe_cycles, Hours age, Volt ref_shift) const;

  /// Occupancy-weighted mean V_th retention loss (volts) over the
  /// programmed levels at this wear/age — the statistic a per-block
  /// threshold estimator tracks to re-center the read references.
  double mean_retention_loss(int pe_cycles, Hours age) const;

  /// Combined raw BER a read at this wear/age sees.
  double total_ber(int pe_cycles, Hours age) const {
    return c2c_ber_ + retention_ber(pe_cycles, age);
  }

  /// Fraction of cells stored at each level under uniform random data.
  const std::vector<double>& level_occupancy() const { return occupancy_; }
  /// Per level l: (average bit flips caused by a one-level drop of a cell
  /// stored at l) * cells_per_group / bits_per_group, so that
  /// retention_ber = sum_l occupancy[l] * P(drop | l) * drop_damage[l].
  const std::vector<double>& drop_damage() const { return drop_damage_; }
  /// Same, for a one-level upward bump (read-disturb's direction): per
  /// level l < levels-1, the per-bit damage of a cell at l crossing its
  /// upper read reference. The top level has no upper reference (zero).
  const std::vector<double>& bump_damage() const { return bump_damage_; }

  const nand::LevelConfig& level_config() const { return level_config_; }

 private:
  nand::LevelConfig level_config_;
  RetentionModel retention_;
  double c2c_ber_ = 0.0;
  std::vector<double> occupancy_;
  std::vector<double> drop_damage_;
  std::vector<double> bump_damage_;
};

}  // namespace flex::reliability
