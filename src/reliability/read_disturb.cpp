#include "reliability/read_disturb.h"

#include <algorithm>

#include "common/assert.h"
#include "common/normal.h"

namespace flex::reliability {

ReadDisturbModel::ReadDisturbModel(Params params, const BerModel& ber)
    : params_(params),
      level_config_(ber.level_config()),
      occupancy_(ber.level_occupancy()),
      bump_damage_(ber.bump_damage()) {
  FLEX_EXPECTS(params_.vth_shift_per_read >= 0.0);
  FLEX_EXPECTS(params_.erased_amplification >= 1.0);
  FLEX_EXPECTS(params_.neighbor_amplification >= 1.0);
  erased_tail_at_rest_ =
      q_function((level_config_.read_ref(0) - level_config_.erased_mean()) /
                 level_config_.erased_sigma());
}

Volt ReadDisturbModel::vth_shift(std::uint64_t block_reads) const {
  return params_.vth_shift_per_read * static_cast<double>(block_reads) *
         params_.neighbor_amplification;
}

double ReadDisturbModel::ber(std::uint64_t block_reads) const {
  if (block_reads == 0) return 0.0;
  const Volt shift = vth_shift(block_reads);
  const int levels = level_config_.levels();

  // Erased level: Gaussian tail pushed toward the first read reference.
  // The undisturbed tail is already part of the C2C Monte-Carlo baseline,
  // so only the disturb-induced increment counts.
  const Volt erased_shift = shift * params_.erased_amplification;
  const double erased_tail = q_function(
      (level_config_.read_ref(0) - level_config_.erased_mean() -
       erased_shift) /
      level_config_.erased_sigma());
  double ber = occupancy_[0] *
               std::max(erased_tail - erased_tail_at_rest_, 0.0) *
               bump_damage_[0];

  // Programmed levels below the top: the ISPP placement is uniform over
  // [verify, verify + vpp]; the fraction pushed past the upper read
  // reference ramps linearly once the shift exceeds the C2C margin
  // (upper_ref - verify - vpp). The top level has no upper reference.
  const Volt vpp = level_config_.vpp();
  for (int l = 1; l < levels - 1; ++l) {
    const Volt c2c_margin =
        level_config_.read_ref(l) - level_config_.verify(l) - vpp;
    const double bumped =
        std::clamp((shift - c2c_margin) / vpp, 0.0, 1.0);
    ber += occupancy_[static_cast<std::size_t>(l)] * bumped *
           bump_damage_[static_cast<std::size_t>(l)];
  }
  return ber;
}

}  // namespace flex::reliability
