// MLC page-read channel: per-bit LLRs derived from the modelled V_th
// densities themselves.
//
// The SensingChannel in ldpc/ is the standard equivalent-BSC/AWGN
// abstraction. This class is the physically grounded alternative: it
// simulates real MLC page reads, where
//   * a *lower-page* (LSB) bit is decided by comparing the cell's V_th
//     against the middle read reference (Gray code 11,10,00,01 flips its
//     LSB only between levels 1 and 2), and
//   * an *upper-page* (MSB) bit against the first and third references,
// and soft sensing adds offset strobes around each involved reference.
// Region LLRs come from Monte-Carlo density estimates of the post-noise
// V_th distribution per stored level (ISPP placement + erased spread +
// Eq. 3 retention loss), so the decoder sees exactly the asymmetric,
// level-dependent channel the device model implies — including effects the
// AWGN abstraction cannot express, such as the upper page being noisier
// than the lower page because level 3 loses charge fastest.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "nand/level_config.h"
#include "reliability/retention.h"

namespace flex::reliability {

class MlcPageChannel {
 public:
  enum class Page { kLower, kUpper };

  struct Config {
    int pe_cycles = 5000;
    Hours age = kWeek;
    /// Soft strobes added around *each* involved read reference
    /// (0 = hard page read).
    int extra_levels = 0;
    /// Voltage distance between adjacent soft strobes.
    Volt soft_step = 0.04;
    /// Monte-Carlo samples per V_th level for the density tables.
    int density_samples = 200'000;
  };

  /// Builds the LLR tables for both pages of `level_config` (a 4-level
  /// MLC configuration) under `retention` at the configured operating
  /// point. Deterministic given `rng`.
  MlcPageChannel(nand::LevelConfig level_config, RetentionModel retention,
                 Config config, Rng& rng);

  /// Stores `bits` on the given page of freshly modelled cells (the other
  /// page's bits are uniform random) and returns the region LLR each read
  /// observes. Positive LLR favours bit 0.
  std::vector<float> transmit(Page page, std::span<const std::uint8_t> bits,
                              Rng& rng) const;

  /// Hard-decision (sign of LLR) error probability of the page, computed
  /// from the density tables.
  double hard_ber(Page page) const;

  /// Quantization boundaries of the page's read (references ± strobes).
  const std::vector<Volt>& boundaries(Page page) const;
  /// Region LLRs, ordered by ascending V_th region.
  const std::vector<float>& llr_table(Page page) const;

 private:
  struct PageTables {
    std::vector<Volt> boundaries;
    std::vector<float> llr;
    // P(region | stored level), row-major [level][region].
    std::vector<double> region_prob;
    double hard_ber = 0.0;
  };

  Volt sample_noisy_vth(int level, Rng& rng) const;
  int region_of(const std::vector<Volt>& boundaries, Volt vth) const;
  PageTables build_tables(Page page, Rng& rng) const;
  const PageTables& tables(Page page) const {
    return page == Page::kLower ? lower_ : upper_;
  }

  nand::LevelConfig level_config_;
  RetentionModel retention_;
  Config config_;
  PageTables lower_;
  PageTables upper_;
};

}  // namespace flex::reliability
