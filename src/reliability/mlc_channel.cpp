#include "reliability/mlc_channel.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "nand/gray_code.h"

namespace flex::reliability {
namespace {

// Bit of `level` on the page (Gray code 11, 10, 00, 01).
int page_bit(MlcPageChannel::Page page, int level) {
  const nand::BitPair bits = nand::mlc_gray_decode(level);
  return page == MlcPageChannel::Page::kLower ? bits.lsb : bits.msb;
}

}  // namespace

MlcPageChannel::MlcPageChannel(nand::LevelConfig level_config,
                               RetentionModel retention, Config config,
                               Rng& rng)
    : level_config_(std::move(level_config)),
      retention_(retention),
      config_(config) {
  FLEX_EXPECTS(level_config_.levels() == 4);
  FLEX_EXPECTS(config_.extra_levels >= 0);
  FLEX_EXPECTS(config_.soft_step > 0.0);
  FLEX_EXPECTS(config_.density_samples >= 1000);
  lower_ = build_tables(Page::kLower, rng);
  upper_ = build_tables(Page::kUpper, rng);
}

Volt MlcPageChannel::sample_noisy_vth(int level, Rng& rng) const {
  if (level == 0) {
    // Erased cells hold no charge: no retention loss.
    return rng.normal(level_config_.erased_mean(),
                      level_config_.erased_sigma());
  }
  const Volt x = level_config_.sample_vth(level, rng);
  const Volt x0 =
      rng.normal(level_config_.erased_mean(), level_config_.erased_sigma());
  return x - retention_.sample_loss(x, x0, config_.pe_cycles, config_.age,
                                    rng);
}

int MlcPageChannel::region_of(const std::vector<Volt>& boundaries,
                              Volt vth) const {
  const auto it =
      std::upper_bound(boundaries.begin(), boundaries.end(), vth);
  return static_cast<int>(it - boundaries.begin());
}

MlcPageChannel::PageTables MlcPageChannel::build_tables(Page page,
                                                        Rng& rng) const {
  PageTables t;
  // Involved references: the LSB flips only across the middle reference;
  // the MSB across the first and third.
  std::vector<Volt> refs;
  if (page == Page::kLower) {
    refs = {level_config_.read_ref(1)};
  } else {
    refs = {level_config_.read_ref(0), level_config_.read_ref(2)};
  }
  for (const Volt ref : refs) {
    t.boundaries.push_back(ref);
    for (int k = 1; k <= config_.extra_levels; ++k) {
      // Strobes alternate above/below the reference: +d, -d, +2d, -2d...
      const int step = (k + 1) / 2;
      t.boundaries.push_back(ref + (k % 2 == 1 ? step : -step) *
                                       config_.soft_step);
    }
  }
  std::sort(t.boundaries.begin(), t.boundaries.end());

  const auto regions = t.boundaries.size() + 1;
  // Density estimation: counts[level][region] over MC draws of the noisy
  // V_th. Laplace smoothing keeps empty regions finite.
  std::vector<double> counts(4 * regions, 1.0);
  for (int level = 0; level < 4; ++level) {
    for (int i = 0; i < config_.density_samples; ++i) {
      const int region = region_of(t.boundaries, sample_noisy_vth(level, rng));
      counts[static_cast<std::size_t>(level) * regions +
             static_cast<std::size_t>(region)] += 1.0;
    }
  }
  const double denom = config_.density_samples + static_cast<double>(regions);
  t.region_prob.assign(4 * regions, 0.0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    t.region_prob[i] = counts[i] / denom;
  }

  // Region LLRs with equiprobable levels (uniform data on both pages):
  // LLR(r) = log P(r | bit 0) / P(r | bit 1).
  t.llr.assign(regions, 0.0f);
  for (std::size_t r = 0; r < regions; ++r) {
    double p0 = 0.0;
    double p1 = 0.0;
    for (int level = 0; level < 4; ++level) {
      const double p = t.region_prob[static_cast<std::size_t>(level) * regions + r];
      (page_bit(page, level) == 0 ? p0 : p1) += 0.25 * p;
    }
    t.llr[r] = static_cast<float>(
        std::clamp(std::log(p0 / p1), -30.0, 30.0));
  }

  // Hard BER: probability the LLR sign disagrees with the stored bit.
  double err = 0.0;
  for (int level = 0; level < 4; ++level) {
    const int bit = page_bit(page, level);
    for (std::size_t r = 0; r < regions; ++r) {
      const bool decides_one = t.llr[r] < 0.0f;
      if (decides_one != (bit == 1)) {
        err += 0.25 *
               t.region_prob[static_cast<std::size_t>(level) * regions + r];
      }
    }
  }
  t.hard_ber = err;
  return t;
}

std::vector<float> MlcPageChannel::transmit(
    Page page, std::span<const std::uint8_t> bits, Rng& rng) const {
  const PageTables& t = tables(page);
  std::vector<float> llrs(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // The other page's bit is independent uniform data.
    const std::uint8_t other = static_cast<std::uint8_t>(rng.below(2));
    nand::BitPair pair;
    if (page == Page::kLower) {
      pair = {.lsb = static_cast<std::uint8_t>(bits[i] & 1), .msb = other};
    } else {
      pair = {.lsb = other, .msb = static_cast<std::uint8_t>(bits[i] & 1)};
    }
    const int level = nand::mlc_gray_encode(pair);
    const int region = region_of(t.boundaries, sample_noisy_vth(level, rng));
    llrs[i] = t.llr[static_cast<std::size_t>(region)];
  }
  return llrs;
}

double MlcPageChannel::hard_ber(Page page) const {
  return tables(page).hard_ber;
}

const std::vector<Volt>& MlcPageChannel::boundaries(Page page) const {
  return tables(page).boundaries;
}

const std::vector<float>& MlcPageChannel::llr_table(Page page) const {
  return tables(page).llr;
}

}  // namespace flex::reliability
