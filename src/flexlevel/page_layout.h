// The ReduceCode bitline structure of Fig. 3: how a reduced-state wordline
// organises its cells into pages.
//
// On a wordline of B bitlines, two neighbouring *even* cells (bitlines
// 4p, 4p+2) or two neighbouring *odd* cells (4p+1, 4p+3) form a ReduceCode
// pair carrying 3 bits. The two LSBs of all even pairs form the *lower
// page*, the two LSBs of all odd pairs the *middle page*, and the MSBs of
// every pair on the wordline the *upper page* — each page holds B/2 bits,
// giving the 1.5 bits/cell density of the reduced state.
//
// Programming follows §4.1's two-step algorithm: the lower or middle page
// programs its pairs' LSBs (V_th 0 -> 0/1); the upper page then programs
// every pair's MSB via the Table 2 transitions (all bitlines selected).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flexlevel/reduce_code.h"

namespace flex::flexlevel {

/// Which of the three reduced-state pages of a wordline.
enum class ReducedPageKind { kLower, kMiddle, kUpper };

class ReducedWordline {
 public:
  /// `bitlines` must be a positive multiple of 4 (even and odd pairs).
  explicit ReducedWordline(int bitlines);

  int bitlines() const { return bitlines_; }
  /// ReduceCode pairs on the wordline (even + odd).
  int pairs() const { return bitlines_ / 2; }
  /// Bits per page (lower, middle and upper all carry pairs() bits...
  /// lower/middle carry 2 bits per pair over half the pairs, upper 1 bit
  /// per pair over all pairs — all equal B/2).
  int page_bits() const { return bitlines_ / 2; }

  /// The two bitlines of pair `p`: pairs 0..B/4-1 are even, the rest odd.
  std::pair<int, int> pair_bitlines(int pair) const;

  /// Step 1 for the even pairs: `bits` holds (LSB1, LSB0) per even pair.
  void program_lower(std::span<const std::uint8_t> bits);
  /// Step 1 for the odd pairs.
  void program_middle(std::span<const std::uint8_t> bits);
  /// Step 2: one MSB per pair (even pairs first, then odd). Requires both
  /// LSB pages to be programmed; selects all bitlines, as in the paper.
  void program_upper(std::span<const std::uint8_t> bits);

  bool lower_programmed() const { return lower_programmed_; }
  bool middle_programmed() const { return middle_programmed_; }
  bool upper_programmed() const { return upper_programmed_; }

  /// Current V_th level of a cell (0..2).
  int cell_level(int bitline) const;
  /// Distortion injection for tests/noise studies.
  void set_cell_level(int bitline, int level);

  /// Reads a page back by decoding every pair through ReduceCode. Valid
  /// once the wordline is fully programmed.
  std::vector<std::uint8_t> read(ReducedPageKind page) const;

 private:
  int pair_of_bitline(int bitline) const;
  void program_lsbs_for(bool even, std::span<const std::uint8_t> bits);
  int decoded_value(int pair) const;

  int bitlines_;
  std::vector<int> levels_;
  bool lower_programmed_ = false;
  bool middle_programmed_ = false;
  bool upper_programmed_ = false;
};

}  // namespace flex::flexlevel
