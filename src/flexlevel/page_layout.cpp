#include "flexlevel/page_layout.h"

#include <algorithm>

#include "common/assert.h"
#include "flexlevel/reduced_program.h"

namespace flex::flexlevel {

ReducedWordline::ReducedWordline(int bitlines) : bitlines_(bitlines) {
  FLEX_EXPECTS(bitlines > 0 && bitlines % 4 == 0);
  levels_.assign(static_cast<std::size_t>(bitlines), 0);
}

std::pair<int, int> ReducedWordline::pair_bitlines(int pair) const {
  FLEX_EXPECTS(pair >= 0 && pair < pairs());
  const int even_pairs = bitlines_ / 4;
  if (pair < even_pairs) {
    return {4 * pair, 4 * pair + 2};
  }
  const int p = pair - even_pairs;
  return {4 * p + 1, 4 * p + 3};
}

int ReducedWordline::pair_of_bitline(int bitline) const {
  FLEX_EXPECTS(bitline >= 0 && bitline < bitlines_);
  const int even_pairs = bitlines_ / 4;
  const int quad = bitline / 4;
  return bitline % 2 == 0 ? quad : even_pairs + quad;
}

void ReducedWordline::program_lsbs_for(bool even,
                                       std::span<const std::uint8_t> bits) {
  FLEX_EXPECTS(static_cast<int>(bits.size()) == page_bits());
  FLEX_EXPECTS(!upper_programmed_);
  const int even_pairs = bitlines_ / 4;
  for (int p = 0; p < even_pairs; ++p) {
    const int pair = even ? p : even_pairs + p;
    const auto [first, second] = pair_bitlines(pair);
    const int lsbs = ((bits[static_cast<std::size_t>(2 * p)] & 1) << 1) |
                     (bits[static_cast<std::size_t>(2 * p + 1)] & 1);
    const PairProgramState state = program_lsbs(lsbs);
    levels_[static_cast<std::size_t>(first)] = state.levels.first;
    levels_[static_cast<std::size_t>(second)] = state.levels.second;
  }
}

void ReducedWordline::program_lower(std::span<const std::uint8_t> bits) {
  FLEX_EXPECTS(!lower_programmed_);
  program_lsbs_for(/*even=*/true, bits);
  lower_programmed_ = true;
}

void ReducedWordline::program_middle(std::span<const std::uint8_t> bits) {
  FLEX_EXPECTS(!middle_programmed_);
  program_lsbs_for(/*even=*/false, bits);
  middle_programmed_ = true;
}

void ReducedWordline::program_upper(std::span<const std::uint8_t> bits) {
  FLEX_EXPECTS(static_cast<int>(bits.size()) == page_bits());
  // The upper page spans every pair, so both LSB pages must be in place
  // ("all bitlines will be selected", §4.1).
  FLEX_EXPECTS(lower_programmed_ && middle_programmed_);
  FLEX_EXPECTS(!upper_programmed_);
  for (int pair = 0; pair < pairs(); ++pair) {
    const auto [first, second] = pair_bitlines(pair);
    PairProgramState state;
    state.levels = {levels_[static_cast<std::size_t>(first)],
                    levels_[static_cast<std::size_t>(second)]};
    state.lsbs_programmed = true;
    state = program_msb(state, bits[static_cast<std::size_t>(pair)] & 1);
    levels_[static_cast<std::size_t>(first)] = state.levels.first;
    levels_[static_cast<std::size_t>(second)] = state.levels.second;
  }
  upper_programmed_ = true;
}

int ReducedWordline::cell_level(int bitline) const {
  FLEX_EXPECTS(bitline >= 0 && bitline < bitlines_);
  return levels_[static_cast<std::size_t>(bitline)];
}

void ReducedWordline::set_cell_level(int bitline, int level) {
  FLEX_EXPECTS(bitline >= 0 && bitline < bitlines_);
  FLEX_EXPECTS(level >= 0 && level <= 2);
  levels_[static_cast<std::size_t>(bitline)] = level;
}

int ReducedWordline::decoded_value(int pair) const {
  const auto [first, second] = pair_bitlines(pair);
  return reduce_decode({.first = levels_[static_cast<std::size_t>(first)],
                        .second = levels_[static_cast<std::size_t>(second)]});
}

std::vector<std::uint8_t> ReducedWordline::read(ReducedPageKind page) const {
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(page_bits()));
  const int even_pairs = bitlines_ / 4;
  switch (page) {
    case ReducedPageKind::kLower:
    case ReducedPageKind::kMiddle: {
      const int base = page == ReducedPageKind::kLower ? 0 : even_pairs;
      for (int p = 0; p < even_pairs; ++p) {
        const int value = decoded_value(base + p);
        bits[static_cast<std::size_t>(2 * p)] =
            static_cast<std::uint8_t>((value >> 1) & 1);
        bits[static_cast<std::size_t>(2 * p + 1)] =
            static_cast<std::uint8_t>(value & 1);
      }
      break;
    }
    case ReducedPageKind::kUpper:
      for (int pair = 0; pair < pairs(); ++pair) {
        bits[static_cast<std::size_t>(pair)] =
            static_cast<std::uint8_t>((decoded_value(pair) >> 2) & 1);
      }
      break;
  }
  return bits;
}

}  // namespace flex::flexlevel
