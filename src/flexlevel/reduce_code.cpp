#include "flexlevel/reduce_code.h"

#include "common/assert.h"

namespace flex::flexlevel {
namespace {

// Table 1, indexed by the 3-bit value.
constexpr CellPairLevels kEncode[8] = {
    {.first = 0, .second = 0},  // 000
    {.first = 0, .second = 1},  // 001
    {.first = 1, .second = 0},  // 010
    {.first = 1, .second = 1},  // 011
    {.first = 2, .second = 2},  // 100
    {.first = 0, .second = 2},  // 101
    {.first = 2, .second = 0},  // 110
    {.first = 2, .second = 1},  // 111
};

}  // namespace

CellPairLevels reduce_encode(int value) {
  FLEX_EXPECTS(value >= 0 && value < 8);
  return kEncode[value];
}

int reduce_decode(CellPairLevels levels) {
  FLEX_EXPECTS(levels.first >= 0 && levels.first <= 2);
  FLEX_EXPECTS(levels.second >= 0 && levels.second <= 2);
  for (int value = 0; value < 8; ++value) {
    if (kEncode[value] == levels) return value;
  }
  // The unused ninth combination (1, 2): attribute it to retention loss on
  // the first cell of a (2, 2) pair (level-2 cells lose charge fastest).
  return 4;
}

}  // namespace flex::flexlevel
