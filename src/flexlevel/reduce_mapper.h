// BitMapper adapter plugging ReduceCode into the reliability BER engine:
// two reduced-state cells carry 3 bits (Fig. 3 pairing of equal-parity
// bitline neighbours).
#pragma once

#include "reliability/ber_engine.h"

namespace flex::flexlevel {

class ReduceCodeMapper final : public reliability::BitMapper {
 public:
  int cells_per_group() const override { return 2; }
  int bits_per_group() const override { return 3; }
  void to_bits(std::span<const int> levels,
               std::span<std::uint8_t> bits) const override;
  void to_levels(std::span<const std::uint8_t> bits,
                 std::span<int> levels) const override;
};

}  // namespace flex::flexlevel
