#include "flexlevel/access_eval.h"

#include <algorithm>

#include "common/assert.h"

namespace flex::flexlevel {

AccessEval::AccessEval(Config config)
    : config_(config), hotness_(config.hotness) {
  FLEX_EXPECTS(config_.freq_levels >= 1);
  FLEX_EXPECTS(config_.sensing_buckets >= 1);
  FLEX_EXPECTS(config_.pool_capacity_pages >= 1);
}

int AccessEval::freq_level(int hotness_count) const {
  FLEX_EXPECTS(hotness_count >= 0);
  // Map [0, filter_count] onto [1, N] proportionally: appearing in half the
  // window filters reaches the top level when N == 2 (Park & Du [13] treat
  // presence in multiple filters as hot).
  const int filters = hotness_.filter_count();
  const int scaled = hotness_count * config_.freq_levels / filters;
  return 1 + std::min(scaled, config_.freq_levels - 1);
}

int AccessEval::sensing_level_bucket(int extra_sensing_levels) const {
  FLEX_EXPECTS(extra_sensing_levels >= 0);
  if (extra_sensing_levels == 0) return 1;
  // Nonzero soft levels spread across the remaining buckets; with M == 2
  // any soft read lands in the top bucket, matching the paper's setup.
  const int bucket = 2 + (extra_sensing_levels - 1) / 2;
  return std::min(bucket, config_.sensing_buckets);
}

AccessDecision AccessEval::on_read(std::uint64_t lpn,
                                   int extra_sensing_levels) {
  const int count = hotness_.record(lpn);
  AccessDecision decision;
  // One lookup does both the membership test and the recency refresh.
  if (pool_.touch(lpn)) return decision;
  const int overhead =
      freq_level(count) * sensing_level_bucket(extra_sensing_levels);
  bool qualifies = overhead > config_.overhead_threshold;
  if (qualifies) {
    // Graduated hysteresis: migrations cost writes (Fig. 7), so admission
    // tightens as the pool fills — half-full pools demand presence in most
    // window filters, and a full pool (where admission also evicts) only
    // churns for data hot in every filter. Without this, a hot set larger
    // than the pool causes continuous migration thrash.
    const int filters = hotness_.filter_count();
    const double fill = static_cast<double>(pool_.size()) /
                        static_cast<double>(config_.pool_capacity_pages);
    if (fill >= 0.95) {
      qualifies = count >= filters;
    } else if (fill >= 0.5) {
      qualifies = count >= filters / 2 + 1;
    }
  }
  if (qualifies) {
    decision.migrate_to_reduced = true;
    decision.evicted = insert(lpn);
  }
  return decision;
}

std::vector<std::uint64_t> AccessEval::shrink_capacity(
    std::uint64_t new_capacity) {
  new_capacity = std::max<std::uint64_t>(new_capacity, 1);
  if (new_capacity < config_.pool_capacity_pages) {
    config_.pool_capacity_pages = new_capacity;
  }
  std::vector<std::uint64_t> evicted;
  while (pool_.size() > config_.pool_capacity_pages) {
    evicted.push_back(pool_.pop_back());
  }
  return evicted;
}

std::vector<std::uint64_t> AccessEval::rebuild_pool(
    const std::vector<std::uint64_t>& lpns) {
  pool_.clear();
  hotness_.reset();
  std::vector<std::uint64_t> overflow;
  for (const std::uint64_t lpn : lpns) {
    if (pool_.size() >= config_.pool_capacity_pages) {
      overflow.push_back(lpn);
      continue;
    }
    // push_front like insert(): the last-registered lpn reads as most
    // recent, and ascending registration keeps rebuilds deterministic.
    pool_.push_front(lpn, 0);
  }
  FLEX_ENSURES(pool_.size() <= config_.pool_capacity_pages);
  return overflow;
}

void AccessEval::on_invalidate(std::uint64_t lpn) { pool_.erase(lpn); }

bool AccessEval::is_reduced(std::uint64_t lpn) const {
  return pool_.contains(lpn);
}

std::optional<std::uint64_t> AccessEval::insert(std::uint64_t lpn) {
  FLEX_EXPECTS(!is_reduced(lpn));
  std::optional<std::uint64_t> evicted;
  if (pool_.size() >= config_.pool_capacity_pages) {
    // Convert the least-recently-read reduced page back to normal state.
    evicted = pool_.pop_back();
  }
  pool_.push_front(lpn, 0);
  FLEX_ENSURES(pool_.size() <= config_.pool_capacity_pages);
  return evicted;
}

}  // namespace flex::flexlevel
