// AccessEval (paper §5): decides which logical pages deserve reduced-state
// storage and bounds how many may hold it at once.
//
// Three components, as in the paper:
//  * the HLO (high-LDPC-overhead) identifier: read-frequency level L_f
//    (from the multi-Bloom hot-read identifier) times soft-sensing bucket
//    L_sensing; a product above the threshold marks the data HLO;
//  * the ReducedCell pool: a bounded LRU set of the pages currently kept in
//    reduced state (the paper caps it at 64 GB of a 256 GB drive);
//  * the controller: on each read, classifies the page and emits the
//    migration/eviction decisions the FTL must carry out.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/lru_map.h"
#include "flexlevel/bloom.h"

namespace flex::flexlevel {

/// What the FTL should do after a read completed.
struct AccessDecision {
  /// Store this page's data in a reduced-state page on its next placement.
  bool migrate_to_reduced = false;
  /// A page the pool evicted to make room; the FTL converts it back to a
  /// normal-state placement.
  std::optional<std::uint64_t> evicted = std::nullopt;
};

class AccessEval {
 public:
  struct Config {
    int freq_levels = 2;      ///< N in the paper (L_f in [1, N])
    int sensing_buckets = 2;  ///< M in the paper (L_sensing in [1, M])
    /// HLO iff L_f * L_sensing > threshold; with N = M = 2 the paper's
    /// intent (hot AND high-sensing) is product > 2.
    int overhead_threshold = 2;
    /// Maximum pages simultaneously held in reduced state (the pool size).
    std::uint64_t pool_capacity_pages = 1024;
    MultiBloomHotness::Config hotness;
  };

  explicit AccessEval(Config config);

  /// Records a completed read of `lpn` that needed `extra_sensing_levels`
  /// soft levels, and returns the controller's decision.
  AccessDecision on_read(std::uint64_t lpn, int extra_sensing_levels);

  /// A page's data was overwritten or trimmed: drop its pool membership
  /// (the new data starts cold in normal state).
  void on_invalidate(std::uint64_t lpn);

  bool is_reduced(std::uint64_t lpn) const;
  std::uint64_t pool_size() const { return pool_.size(); }
  std::uint64_t pool_capacity() const { return config_.pool_capacity_pages; }

  /// Shrinks the pool budget to `new_capacity` pages (floored at 1) and
  /// returns the LRU victims evicted to fit; the caller converts them back
  /// to normal state. Graceful degradation under block retirement: every
  /// retired block costs physical over-provisioning, so the ReducedCell
  /// budget gives it back. Shrink-only — a larger value is ignored
  /// (retirement is permanent).
  std::vector<std::uint64_t> shrink_capacity(std::uint64_t new_capacity);

  /// Power-on recovery: replaces the pool membership with `lpns` (the
  /// reduced-state survivors Mount() found on the medium, ascending) and
  /// forgets the hotness history — LRU order and Bloom filters are
  /// controller DRAM, so recovery is conservative: registration order
  /// stands in for recency and hotness re-learns from zero. LPNs past the
  /// pool budget are returned for the caller to migrate back to normal
  /// state (possible when a crash interrupted a shrink).
  std::vector<std::uint64_t> rebuild_pool(
      const std::vector<std::uint64_t>& lpns);

  /// L_f for a hotness count (exposed for tests).
  int freq_level(int hotness_count) const;
  /// L_sensing for an extra-sensing-level count (exposed for tests).
  int sensing_level_bucket(int extra_sensing_levels) const;

 private:
  std::optional<std::uint64_t> insert(std::uint64_t lpn);

  Config config_;
  MultiBloomHotness hotness_;
  // Pool membership as an intrusive LRU set: most-recently-read at the
  // front. Values are unused (membership only).
  LruMap<std::uint8_t> pool_;
};

}  // namespace flex::flexlevel
