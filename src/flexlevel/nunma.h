// NUNMA (non-uniform noise margin adjustment) configurations — paper
// Table 3 — expressed as reduced-state (3-level) LevelConfigs.
//
// All three share read references {2.65, 3.55} and V_pp = 0.15; they differ
// in how far each program-verify voltage is pushed above its lower read
// reference: higher verify = more retention margin but less C2C margin,
// and NUNMA deliberately gives the fragile level 2 the bigger push.
#pragma once

#include <array>
#include <string>

#include "nand/level_config.h"

namespace flex::flexlevel {

enum class NunmaScheme {
  kBasic,   ///< uniform margins (basic LevelAdjust, pre-NUNMA)
  kNunma1,  ///< verify {2.71, 3.61}
  kNunma2,  ///< verify {2.70, 3.65}
  kNunma3,  ///< verify {2.75, 3.70}  (the configuration AccessEval deploys)
};

/// The reduced-state level configuration for a scheme.
nand::LevelConfig nunma_config(NunmaScheme scheme);

std::string nunma_name(NunmaScheme scheme);

/// All Table 3 schemes in presentation order (without kBasic).
constexpr std::array<NunmaScheme, 3> kNunmaSchemes = {
    NunmaScheme::kNunma1, NunmaScheme::kNunma2, NunmaScheme::kNunma3};

}  // namespace flex::flexlevel
