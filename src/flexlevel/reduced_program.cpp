#include "flexlevel/reduced_program.h"

#include "common/assert.h"

namespace flex::flexlevel {

PairProgramState program_lsbs(int lsbs) {
  FLEX_EXPECTS(lsbs >= 0 && lsbs < 4);
  PairProgramState state;
  // 1st program step: V_th rises to level 1 or stays at level 0 per bit
  // (Table 2, "1st program" rows).
  state.levels.first = (lsbs >> 1) & 1;
  state.levels.second = lsbs & 1;
  state.lsbs_programmed = true;
  return state;
}

CellPairLevels second_step_target(int lsbs, int msb) {
  FLEX_EXPECTS(lsbs >= 0 && lsbs < 4);
  FLEX_EXPECTS(msb == 0 || msb == 1);
  return reduce_encode((msb << 2) | lsbs);
}

PairProgramState program_msb(PairProgramState state, int msb) {
  FLEX_EXPECTS(state.lsbs_programmed);
  FLEX_EXPECTS(!state.msb_programmed);
  FLEX_EXPECTS(msb == 0 || msb == 1);
  if (msb == 1) {
    const int lsbs = (state.levels.first << 1) | state.levels.second;
    const CellPairLevels target = second_step_target(lsbs, 1);
    // Table 2 transitions are monotone: V_th only ever increases (NAND
    // cannot selectively lower a cell without erasing the block).
    FLEX_ASSERT(target.first >= state.levels.first);
    FLEX_ASSERT(target.second >= state.levels.second);
    state.levels = target;
  }
  state.msb_programmed = true;
  return state;
}

PairProgramState program_value(int value) {
  FLEX_EXPECTS(value >= 0 && value < 8);
  PairProgramState state = program_lsbs(reduce_lsbs(value));
  state = program_msb(state, reduce_msb(value));
  FLEX_ENSURES(state.levels == reduce_encode(value));
  return state;
}

}  // namespace flex::flexlevel
