// ReduceCode: the paper's Table 1 mapping between a 3-bit value and the
// V_th levels of two reduced-state (3-level) cells.
//
// Eight of the nine level combinations are used; like Gray code, the
// mapping keeps the bit damage of a single-level distortion low (the paper
// calls it one bit; the lone exception in Table 1 as printed is
// (2,2) <-> (2,1), which differ in two bits — we reproduce the table
// verbatim and the tests pin down the exact distortion profile).
#pragma once

#include <cstdint>

namespace flex::flexlevel {

/// Levels of the two cells of a ReduceCode pair; each in {0, 1, 2}.
struct CellPairLevels {
  int first = 0;   ///< V_th I
  int second = 0;  ///< V_th II

  bool operator==(const CellPairLevels&) const = default;
};

/// Encodes a 3-bit value (0..7, MSB-first per the paper: value = MSB,
/// LSB1, LSB0) into the level pair of Table 1.
CellPairLevels reduce_encode(int value);

/// Decodes a level pair back to the 3-bit value. The unused combination
/// (1, 2) decodes to 4 (levels (2,2)): a single retention drop of the
/// first cell — by far the likeliest single-step distortion reaching
/// (1,2) — restores the right data.
int reduce_decode(CellPairLevels levels);

/// The MSB of the pair's value (drives the two-step program algorithm).
inline int reduce_msb(int value) { return (value >> 2) & 1; }
/// The two LSBs (value of the lower/middle page contribution).
inline int reduce_lsbs(int value) { return value & 3; }

}  // namespace flex::flexlevel
