#include "flexlevel/reduce_mapper.h"

#include <algorithm>

#include "common/assert.h"
#include "flexlevel/reduce_code.h"

namespace flex::flexlevel {

void ReduceCodeMapper::to_bits(std::span<const int> levels,
                               std::span<std::uint8_t> bits) const {
  FLEX_EXPECTS(levels.size() == 2 && bits.size() == 3);
  // Reads can momentarily see out-of-range decisions only if the caller
  // used a config with more levels; clamp defensively to the 3-level grid.
  const CellPairLevels pair{.first = std::clamp(levels[0], 0, 2),
                            .second = std::clamp(levels[1], 0, 2)};
  const int value = reduce_decode(pair);
  bits[0] = static_cast<std::uint8_t>((value >> 2) & 1);
  bits[1] = static_cast<std::uint8_t>((value >> 1) & 1);
  bits[2] = static_cast<std::uint8_t>(value & 1);
}

void ReduceCodeMapper::to_levels(std::span<const std::uint8_t> bits,
                                 std::span<int> levels) const {
  FLEX_EXPECTS(levels.size() == 2 && bits.size() == 3);
  const int value = ((bits[0] & 1) << 2) | ((bits[1] & 1) << 1) | (bits[2] & 1);
  const CellPairLevels pair = reduce_encode(value);
  levels[0] = pair.first;
  levels[1] = pair.second;
}

}  // namespace flex::flexlevel
