// Rotating multi-Bloom-filter hot-data identifier, after Park & Du's
// "Hot and cold data identification for flash memory using multiple bloom
// filters" [13] — the technique the paper cites for finding frequently-read
// data inside AccessEval.
//
// `filter_count` Bloom filters form a sliding window over the read stream:
// each access inserts the key into the current filter, and every
// `window_accesses` accesses the oldest filter is cleared and becomes
// current. A key's hotness is the number of filters that contain it
// (0..filter_count), i.e. a coarse recency-weighted frequency.
#pragma once

#include <cstdint>
#include <vector>

namespace flex::flexlevel {

class BloomFilter {
 public:
  /// `bits` is rounded up to a power of two; `hashes` >= 1.
  BloomFilter(std::size_t bits, int hashes);

  void insert(std::uint64_t key);
  bool contains(std::uint64_t key) const;
  void clear();

  std::size_t bit_count() const { return bits_.size() * 64; }
  int hash_count() const { return hashes_; }

 private:
  std::uint64_t hash(std::uint64_t key, int i) const;

  std::vector<std::uint64_t> bits_;
  std::uint64_t mask_;
  int hashes_;
};

class MultiBloomHotness {
 public:
  struct Config {
    int filter_count = 4;
    std::size_t bits_per_filter = 1 << 16;
    int hashes = 2;
    std::uint64_t window_accesses = 4096;
  };

  MultiBloomHotness() : MultiBloomHotness(Config{}) {}
  explicit MultiBloomHotness(Config config);

  /// Records an access and returns the key's hotness *after* recording,
  /// in [1, filter_count].
  int record(std::uint64_t key);

  /// Hotness without recording, in [0, filter_count].
  int hotness(std::uint64_t key) const;

  /// Forgets every recorded access (power-on recovery: the filters are
  /// controller DRAM and do not survive; hotness re-learns from scratch).
  void reset();

  int filter_count() const { return static_cast<int>(filters_.size()); }

 private:
  Config config_;
  std::vector<BloomFilter> filters_;
  std::size_t current_ = 0;
  std::uint64_t accesses_in_window_ = 0;
};

}  // namespace flex::flexlevel
