#include "flexlevel/bloom.h"

#include <algorithm>
#include <bit>

#include "common/assert.h"

namespace flex::flexlevel {

BloomFilter::BloomFilter(std::size_t bits, int hashes) : hashes_(hashes) {
  FLEX_EXPECTS(bits >= 64);
  FLEX_EXPECTS(hashes >= 1);
  const std::size_t words = std::bit_ceil(bits) / 64;
  bits_.assign(words, 0);
  mask_ = static_cast<std::uint64_t>(words) * 64 - 1;
}

std::uint64_t BloomFilter::hash(std::uint64_t key, int i) const {
  // Double hashing: h1 + i*h2, both derived from a splitmix-style mix.
  std::uint64_t x = key + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  const std::uint64_t h1 = x ^ (x >> 31);
  std::uint64_t y = key ^ 0xC2B2AE3D27D4EB4FULL;
  y = (y ^ (y >> 33)) * 0xFF51AFD7ED558CCDULL;
  const std::uint64_t h2 = (y ^ (y >> 33)) | 1;  // odd stride
  return (h1 + static_cast<std::uint64_t>(i) * h2) & mask_;
}

void BloomFilter::insert(std::uint64_t key) {
  for (int i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = hash(key, i);
    bits_[bit / 64] |= 1ULL << (bit % 64);
  }
}

bool BloomFilter::contains(std::uint64_t key) const {
  for (int i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = hash(key, i);
    if (!(bits_[bit / 64] & (1ULL << (bit % 64)))) return false;
  }
  return true;
}

void BloomFilter::clear() { std::fill(bits_.begin(), bits_.end(), 0); }

MultiBloomHotness::MultiBloomHotness(Config config) : config_(config) {
  FLEX_EXPECTS(config_.filter_count >= 2);
  FLEX_EXPECTS(config_.window_accesses >= 1);
  filters_.reserve(static_cast<std::size_t>(config_.filter_count));
  for (int i = 0; i < config_.filter_count; ++i) {
    filters_.emplace_back(config_.bits_per_filter, config_.hashes);
  }
}

int MultiBloomHotness::record(std::uint64_t key) {
  filters_[current_].insert(key);
  if (++accesses_in_window_ >= config_.window_accesses) {
    accesses_in_window_ = 0;
    current_ = (current_ + 1) % filters_.size();
    filters_[current_].clear();  // the oldest filter becomes current
  }
  return hotness(key);
}

void MultiBloomHotness::reset() {
  for (auto& filter : filters_) filter.clear();
  current_ = 0;
  accesses_in_window_ = 0;
}

int MultiBloomHotness::hotness(std::uint64_t key) const {
  int count = 0;
  for (const auto& filter : filters_) {
    if (filter.contains(key)) ++count;
  }
  return count;
}

}  // namespace flex::flexlevel
