#include "flexlevel/nunma.h"

#include "common/assert.h"

namespace flex::flexlevel {

nand::LevelConfig nunma_config(NunmaScheme scheme) {
  const std::vector<Volt> read_refs = {2.65, 3.55};
  const Volt vpp = 0.15;
  switch (scheme) {
    case NunmaScheme::kBasic:
      // Basic LevelAdjust: verify close to the read reference at both
      // levels (Fig. 4(a) placement), before NUNMA shifts anything.
      return nand::LevelConfig("LevelAdjust-basic", read_refs, {2.70, 3.60},
                               vpp);
    case NunmaScheme::kNunma1:
      return nand::LevelConfig("NUNMA 1", read_refs, {2.71, 3.61}, vpp);
    case NunmaScheme::kNunma2:
      return nand::LevelConfig("NUNMA 2", read_refs, {2.70, 3.65}, vpp);
    case NunmaScheme::kNunma3:
      return nand::LevelConfig("NUNMA 3", read_refs, {2.75, 3.70}, vpp);
  }
  FLEX_ASSERT(false && "unreachable: all schemes handled");
  return nand::LevelConfig("invalid", read_refs, {2.70, 3.60}, vpp);
}

std::string nunma_name(NunmaScheme scheme) {
  return nunma_config(scheme).name();
}

}  // namespace flex::flexlevel
