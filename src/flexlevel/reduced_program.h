// The two-step program algorithm for the ReduceCode bitline structure
// (paper §4.1, Table 2).
//
// Step 1 programs the two LSBs of each pair (the lower page on even
// bitlines, the middle page on odd bitlines): each cell moves from the
// erased level 0 to level 1 iff its LSB is 1. Step 2 programs the MSB of
// every pair on the wordline: MSB 0 freezes the pair; MSB 1 applies the
// Table 2 transition that lands the pair on its Table 1 combination.
#pragma once

#include "flexlevel/reduce_code.h"

namespace flex::flexlevel {

/// State of one cell pair as it moves through the two program steps.
struct PairProgramState {
  CellPairLevels levels;  ///< current V_th levels
  bool lsbs_programmed = false;
  bool msb_programmed = false;
};

/// Step 1: program the two LSBs (values 0..3, bit1 -> first cell, bit0 ->
/// second cell). Requires an erased pair.
PairProgramState program_lsbs(int lsbs);

/// Step 2: program the MSB onto a step-1 pair. Implements Table 2's
/// transitions; MSB = 0 leaves the levels untouched.
PairProgramState program_msb(PairProgramState state, int msb);

/// Convenience: both steps for a 3-bit value; postcondition: the resulting
/// levels equal reduce_encode(value).
PairProgramState program_value(int value);

/// The per-cell level transitions of the second step, for inspection /
/// Table 2 verification: returns the targeted levels given the LSBs.
CellPairLevels second_step_target(int lsbs, int msb);

}  // namespace flex::flexlevel
