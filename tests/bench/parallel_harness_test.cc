// Determinism regression for the bench harness: same seed + same trace
// must give byte-identical SsdResults across two runs, and identical
// results whether the cells run serially or fanned across the thread pool
// (--jobs). This is the contract that makes parallel sweeps trustworthy —
// each cell owns its simulator and shares only the const BerModels.
#include "bench_common.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "trace/workloads.h"

namespace flex::bench {
namespace {

void expect_identical_stats(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sum(), b.sum());
}

/// Byte-identical, not merely close: every statistic, counter, histogram
/// bin and chip counter must match exactly.
void expect_identical(const ssd::SsdResults& a, const ssd::SsdResults& b) {
  expect_identical_stats(a.read_response, b.read_response);
  expect_identical_stats(a.write_response, b.write_response);
  expect_identical_stats(a.all_response, b.all_response);
  ASSERT_EQ(a.read_latency_hist.bins(), b.read_latency_hist.bins());
  EXPECT_EQ(a.read_latency_hist.total(), b.read_latency_hist.total());
  for (std::size_t i = 0; i < a.read_latency_hist.bins(); ++i) {
    EXPECT_EQ(a.read_latency_hist.bin_count(i),
              b.read_latency_hist.bin_count(i));
  }
  EXPECT_EQ(a.ftl.host_writes, b.ftl.host_writes);
  EXPECT_EQ(a.ftl.nand_writes, b.ftl.nand_writes);
  EXPECT_EQ(a.ftl.nand_erases, b.ftl.nand_erases);
  EXPECT_EQ(a.ftl.gc_runs, b.ftl.gc_runs);
  EXPECT_EQ(a.ftl.gc_page_moves, b.ftl.gc_page_moves);
  EXPECT_EQ(a.ftl.mode_migrations, b.ftl.mode_migrations);
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_EQ(a.unmapped_reads, b.unmapped_reads);
  EXPECT_EQ(a.uncorrectable_reads, b.uncorrectable_reads);
  EXPECT_EQ(a.migrations_to_reduced, b.migrations_to_reduced);
  EXPECT_EQ(a.migrations_to_normal, b.migrations_to_normal);
  EXPECT_EQ(a.pool_pages, b.pool_pages);
  EXPECT_EQ(a.sensing_level_reads, b.sensing_level_reads);
  EXPECT_EQ(a.chip_stats, b.chip_stats);
}

// Small, cheap BerModels shared by the direct-simulator tests (the same
// shape the simulator suites use).
class ParallelHarnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(4321);
    const reliability::BerEngine::Config mc{
        .wordlines = 32, .bitlines = 128, .rounds = 2, .coupling = {}};
    static const reliability::GrayMapper gray;
    static const flexlevel::ReduceCodeMapper reduce;
    normal_ = new reliability::BerModel(nand::LevelConfig::baseline_mlc(),
                                        gray, reliability::RetentionModel{},
                                        mc, rng);
    reduced_ = new reliability::BerModel(
        flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
        reliability::RetentionModel{}, mc, rng);
  }
  static void TearDownTestSuite() {
    delete normal_;
    delete reduced_;
    normal_ = nullptr;
    reduced_ = nullptr;
  }

  static ssd::SsdConfig small_config(ssd::Scheme scheme) {
    ssd::SsdConfig cfg;
    cfg.scheme = scheme;
    cfg.ftl.spec.page_size_bytes = 4096;
    cfg.ftl.spec.pages_per_block = 32;
    cfg.ftl.spec.blocks_per_chip = 64;
    cfg.ftl.spec.chips = 4;
    cfg.ftl.initial_pe_cycles = 6000;
    cfg.ftl.gc_low_watermark = 4;
    cfg.min_prefill_age = kDay;
    cfg.max_prefill_age = kMonth;
    cfg.write_buffer_pages = 64;
    cfg.write_buffer_flush_batch = 8;
    cfg.access_eval.pool_capacity_pages = 1024;
    cfg.access_eval.hotness = {.filter_count = 4,
                               .bits_per_filter = 1 << 14,
                               .hashes = 2,
                               .window_accesses = 512};
    return cfg;
  }

  /// One independent small-drive simulation per index, scheme varying
  /// with the index — the per-cell work the bench harness fans out.
  static ssd::SsdResults run_cell(std::size_t index) {
    static const ssd::Scheme schemes[] = {
        ssd::Scheme::kBaseline, ssd::Scheme::kLdpcInSsd,
        ssd::Scheme::kLevelAdjustOnly, ssd::Scheme::kFlexLevel};
    trace::WorkloadParams params;
    params.name = "par";
    params.read_fraction = 0.85;
    params.zipf_theta = 1.0;
    params.footprint_pages = 4000;
    params.mean_request_pages = 1.2;
    params.max_request_pages = 4;
    params.iops = 1500;
    params.requests = 6'000;
    const auto trace = trace::generate(params, /*seed=*/99);
    ssd::SsdSimulator sim(small_config(schemes[index % 4]), *normal_,
                          *reduced_);
    sim.prefill(4000);
    return sim.run(trace);
  }

  static reliability::BerModel* normal_;
  static reliability::BerModel* reduced_;
};

reliability::BerModel* ParallelHarnessTest::normal_ = nullptr;
reliability::BerModel* ParallelHarnessTest::reduced_ = nullptr;

TEST_F(ParallelHarnessTest, SameSeedSameTraceIsByteIdentical) {
  const auto a = run_cell(3);  // FlexLevel: the most stateful scheme
  const auto b = run_cell(3);
  expect_identical(a, b);
}

TEST_F(ParallelHarnessTest, SerialAndJobs8AreIdentical) {
  const auto serial = run_indexed(8, &ParallelHarnessTest::run_cell, 1);
  const auto parallel = run_indexed(8, &ParallelHarnessTest::run_cell, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(ExperimentHarnessParallel, CellsSerialVsJobs8Identical) {
  // The full bench path: scaled drive, prefill, preconditioning, warmup —
  // through run_cells exactly as fig6a/fig6b invoke it.
  ExperimentHarness harness;
  std::vector<CellSpec> cells;
  for (const auto scheme :
       {ssd::Scheme::kBaseline, ssd::Scheme::kLdpcInSsd,
        ssd::Scheme::kLevelAdjustOnly, ssd::Scheme::kFlexLevel}) {
    cells.push_back({.workload = trace::Workload::kWeb1,
                     .scheme = scheme,
                     .pe_cycles = 6000,
                     .requests_override = 3'000});
    cells.push_back({.workload = trace::Workload::kFin2,
                     .scheme = scheme,
                     .pe_cycles = 5000,
                     .requests_override = 3'000});
  }
  const auto serial = run_cells(harness, cells, 1);
  const auto parallel = run_cells(harness, cells, 8);
  ASSERT_EQ(serial.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], parallel[i]);
  }
}

}  // namespace
}  // namespace flex::bench
