// Property tests for the FTL's bad-block management under fault
// injection: no acknowledged write is ever lost, retired blocks leave
// service permanently (never a frontier, GC, wear-leveling, or refresh
// victim), the retirement ledger balances, and identical (seed, workload)
// runs retire identically.
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "faults/fault_injector.h"
#include "ftl/page_mapping.h"

namespace flex::ftl {
namespace {

// Small drive: 4 chips x 64 blocks x 8 pages = 2048 physical pages. Small
// blocks make block-level faults frequent at modest write counts, and the
// 30% over-provisioning (~77 blocks) leaves room for the dozens of
// retirements the noisy rates below produce without exhausting the drive.
FtlConfig tiny_config() {
  FtlConfig cfg;
  cfg.spec.page_size_bytes = 4096;
  cfg.spec.pages_per_block = 8;
  cfg.spec.blocks_per_chip = 64;
  cfg.spec.chips = 4;
  cfg.over_provisioning = 0.30;
  cfg.gc_low_watermark = 3;
  cfg.static_wl_interval = 8;  // small: wear leveling runs often
  return cfg;
}

faults::FaultConfig noisy_faults() {
  faults::FaultConfig cfg;
  cfg.enabled = true;
  // Rates far above field values on purpose: a short run must exercise
  // every fault path several times over, while the expected retirement
  // count stays well inside the over-provisioning margin.
  cfg.program_fail_rate = 2e-4;
  cfg.erase_fail_rate = 2e-3;
  cfg.grown_defect_rate = 2e-3;
  return cfg;
}

/// Random overwrite workload against a shadow map of expected mappings.
struct Churn {
  explicit Churn(std::uint64_t seed) : rng(seed) {}

  void run(PageMappingFtl& ftl, std::uint64_t writes) {
    const std::uint64_t logical = ftl.logical_pages();
    for (std::uint64_t i = 0; i < writes; ++i) {
      const std::uint64_t lpn = rng.below(logical);
      const PageMode mode =
          rng.below(8) == 0 ? PageMode::kReduced : PageMode::kNormal;
      ftl.write(lpn, mode, static_cast<SimTime>(i));
      written[lpn] = static_cast<SimTime>(i);
    }
  }

  Rng rng;
  std::unordered_map<std::uint64_t, SimTime> written;
};

class BadBlockPropertyTest : public ::testing::Test {
 protected:
  BadBlockPropertyTest()
      : injector_(noisy_faults(), 0x5EED), ftl_(tiny_config()) {
    ftl_.attach_fault_injector(&injector_);
  }

  faults::FaultInjector injector_;
  PageMappingFtl ftl_;
};

TEST_F(BadBlockPropertyTest, NoAcknowledgedWriteIsEverLost) {
  Churn churn(42);
  churn.run(ftl_, 20'000);
  // Every fault path must have fired for the property to mean anything.
  const FtlStats& stats = ftl_.stats();
  ASSERT_GT(stats.program_fails, 0u);
  ASSERT_GT(stats.erase_fails, 0u);
  ASSERT_GT(stats.grown_defects, 0u);
  ASSERT_GT(ftl_.retired_block_count(), 0u);
  // Every acknowledged write still maps to a valid page with the written
  // identity, and never inside a retired block.
  for (const auto& [lpn, _] : churn.written) {
    const auto info = ftl_.lookup(lpn);
    ASSERT_TRUE(info.has_value()) << "lpn " << lpn << " lost";
    EXPECT_FALSE(ftl_.block_retired(info->ppn))
        << "lpn " << lpn << " maps into a retired block";
  }
}

TEST_F(BadBlockPropertyTest, RetirementLedgerBalances) {
  Churn churn(43);
  churn.run(ftl_, 20'000);
  const FtlStats& stats = ftl_.stats();
  // Every retirement has exactly one cause, and the live count matches
  // the counter (blocks never return from retirement).
  EXPECT_EQ(stats.retired_blocks,
            stats.program_fails + stats.erase_fails + stats.grown_defects);
  EXPECT_EQ(stats.retired_blocks, ftl_.retired_block_count());
  // Program-fail retirements relocated their valid pages somewhere.
  EXPECT_GT(stats.retire_page_moves, 0u);
}

TEST_F(BadBlockPropertyTest, RefreshNeverTouchesARetiredBlock) {
  Churn churn(44);
  churn.run(ftl_, 10'000);
  ASSERT_GT(ftl_.retired_block_count(), 0u);
  const std::uint32_t pages_per_block = tiny_config().spec.pages_per_block;
  const std::uint64_t refresh_runs_before = ftl_.stats().refresh_runs;
  for (std::uint64_t block = 0; block < ftl_.physical_blocks(); ++block) {
    const std::uint64_t ppn = block * pages_per_block;
    if (!ftl_.block_retired(ppn)) continue;
    // Refreshing a retired block is a no-op request, not a scrub.
    EXPECT_FALSE(ftl_.refresh_block(ppn, 0).has_value());
  }
  EXPECT_EQ(ftl_.stats().refresh_runs, refresh_runs_before);
}

TEST_F(BadBlockPropertyTest, GcAndWearLevelingSkipRetiredBlocks) {
  // candidate_insert asserts !retired and allocate_block asserts the free
  // list never yields a retired block, so simply surviving a long churn —
  // with GC, static wear leveling (interval 8), and all three fault kinds
  // active — is the property. Then confirm service continues: more churn
  // with further faults still loses nothing.
  Churn churn(45);
  churn.run(ftl_, 15'000);
  const std::uint32_t retired_mid = ftl_.retired_block_count();
  ASSERT_GT(retired_mid, 0u);
  churn.run(ftl_, 15'000);
  EXPECT_GE(ftl_.retired_block_count(), retired_mid);
  for (const auto& [lpn, _] : churn.written) {
    ASSERT_TRUE(ftl_.lookup(lpn).has_value());
  }
}

TEST_F(BadBlockPropertyTest, IdenticalRunsRetireIdentically) {
  Churn churn_a(46);
  churn_a.run(ftl_, 12'000);

  faults::FaultInjector injector_b(noisy_faults(), 0x5EED);
  PageMappingFtl ftl_b(tiny_config());
  ftl_b.attach_fault_injector(&injector_b);
  Churn churn_b(46);
  churn_b.run(ftl_b, 12'000);

  const FtlStats& a = ftl_.stats();
  const FtlStats& b = ftl_b.stats();
  EXPECT_EQ(a.nand_writes, b.nand_writes);
  EXPECT_EQ(a.nand_erases, b.nand_erases);
  EXPECT_EQ(a.program_fails, b.program_fails);
  EXPECT_EQ(a.erase_fails, b.erase_fails);
  EXPECT_EQ(a.grown_defects, b.grown_defects);
  EXPECT_EQ(a.retired_blocks, b.retired_blocks);
  EXPECT_EQ(a.retire_page_moves, b.retire_page_moves);
  for (std::uint64_t lpn = 0; lpn < ftl_.logical_pages(); ++lpn) {
    const auto ia = ftl_.lookup(lpn);
    const auto ib = ftl_b.lookup(lpn);
    ASSERT_EQ(ia.has_value(), ib.has_value());
    if (ia) EXPECT_EQ(ia->ppn, ib->ppn);
  }
}

TEST_F(BadBlockPropertyTest, DisabledInjectorChangesNothing) {
  // A null injector (the default) must reproduce the exact placement of a
  // never-attached FTL: fault support costs nothing when off.
  ftl_.attach_fault_injector(nullptr);
  Churn churn_a(47);
  churn_a.run(ftl_, 8'000);

  PageMappingFtl plain(tiny_config());
  Churn churn_b(47);
  churn_b.run(plain, 8'000);

  EXPECT_EQ(ftl_.stats().nand_writes, plain.stats().nand_writes);
  EXPECT_EQ(ftl_.stats().retired_blocks, 0u);
  for (std::uint64_t lpn = 0; lpn < ftl_.logical_pages(); ++lpn) {
    const auto ia = ftl_.lookup(lpn);
    const auto ib = plain.lookup(lpn);
    ASSERT_EQ(ia.has_value(), ib.has_value());
    if (ia) EXPECT_EQ(ia->ppn, ib->ppn);
  }
}

}  // namespace
}  // namespace flex::ftl
