// Differential test: the page-mapping FTL against a trivial reference model
// (an unordered_map) under long random operation sequences, plus the
// accounting identities that must hold whatever GC does.
#include <optional>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ftl/page_mapping.h"

namespace flex::ftl {
namespace {

FtlConfig oracle_config(std::uint32_t wl_interval) {
  FtlConfig cfg;
  cfg.spec.page_size_bytes = 4096;
  cfg.spec.pages_per_block = 16;
  cfg.spec.blocks_per_chip = 32;
  cfg.spec.chips = 2;
  cfg.over_provisioning = 0.3;
  cfg.gc_low_watermark = 3;
  cfg.static_wl_interval = wl_interval;
  return cfg;
}

struct Expected {
  SimTime write_time = 0;
  PageMode mode = PageMode::kNormal;
};

class FtlOracle : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FtlOracle, LongRandomSequenceMatchesReferenceModel) {
  PageMappingFtl ftl(oracle_config(GetParam()));
  Rng rng(GetParam() + 99);
  std::unordered_map<std::uint64_t, Expected> reference;

  const std::uint64_t logical = ftl.logical_pages();
  for (SimTime op = 1; op <= 30'000; ++op) {
    const std::uint64_t lpn = rng.below(logical);
    const double dice = rng.uniform();
    if (dice < 0.70 || !reference.contains(lpn)) {
      // Host write (possibly first touch).
      const PageMode mode =
          rng.chance(0.25) ? PageMode::kReduced : PageMode::kNormal;
      ftl.write(lpn, mode, op);
      reference[lpn] = {.write_time = op, .mode = mode};
    } else if (dice < 0.85) {
      // Migration flips the mode and refreshes the program time.
      const PageMode to = reference[lpn].mode == PageMode::kNormal
                              ? PageMode::kReduced
                              : PageMode::kNormal;
      ftl.migrate(lpn, to, op);
      reference[lpn] = {.write_time = op, .mode = to};
    } else {
      // Read-only check of a random mapped page.
      const auto info = ftl.lookup(lpn);
      ASSERT_TRUE(info.has_value()) << "lpn " << lpn;
      EXPECT_EQ(info->mode, reference[lpn].mode);
      // GC relocation may refresh the program time, never rewind it.
      EXPECT_GE(info->write_time, reference[lpn].write_time);
    }
  }

  // Full sweep at the end: mapping agrees with the reference everywhere.
  for (std::uint64_t lpn = 0; lpn < logical; ++lpn) {
    const auto info = ftl.lookup(lpn);
    const auto it = reference.find(lpn);
    ASSERT_EQ(info.has_value(), it != reference.end()) << "lpn " << lpn;
    if (info.has_value()) {
      EXPECT_EQ(info->mode, it->second.mode) << "lpn " << lpn;
      EXPECT_GE(info->write_time, it->second.write_time) << "lpn " << lpn;
    }
  }

  // Accounting identities.
  const FtlStats& stats = ftl.stats();
  EXPECT_EQ(stats.nand_writes,
            stats.host_writes + stats.mode_migrations + stats.gc_page_moves);
  EXPECT_GE(ftl.free_blocks(), 3u);  // watermark held throughout
}

INSTANTIATE_TEST_SUITE_P(WearLevelingOnAndOff, FtlOracle,
                         ::testing::Values(0u, 16u, 64u));

TEST(FtlAccountingTest, PpnsAreUniqueAmongLiveMappings) {
  PageMappingFtl ftl(oracle_config(16));
  Rng rng(5);
  for (int i = 0; i < 20'000; ++i) {
    ftl.write(rng.below(ftl.logical_pages()), PageMode::kNormal, i);
  }
  std::unordered_map<std::uint64_t, std::uint64_t> ppn_owner;
  for (std::uint64_t lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    const auto info = ftl.lookup(lpn);
    if (!info.has_value()) continue;
    const auto [it, inserted] = ppn_owner.emplace(info->ppn, lpn);
    EXPECT_TRUE(inserted) << "ppn " << info->ppn << " owned by " << it->second
                          << " and " << lpn;
  }
}

}  // namespace
}  // namespace flex::ftl
