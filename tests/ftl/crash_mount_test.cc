// Power-on recovery (PageMappingFtl::Mount): the OOB scan must rebuild
// exactly the durable state — mappings (last epoch wins), per-LPN
// versions, block roles, ReducedCell membership, retirement — and must be
// idempotent, since a drive can lose power during or right after mount.
#include "ftl/page_mapping.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "faults/fault_injector.h"

namespace flex::ftl {
namespace {

// Tiny drive: 2 chips x 16 blocks x 16 pages = 512 physical pages.
FtlConfig tiny_config() {
  FtlConfig cfg;
  cfg.spec.page_size_bytes = 4096;
  cfg.spec.pages_per_block = 16;
  cfg.spec.blocks_per_chip = 16;
  cfg.spec.chips = 2;
  cfg.over_provisioning = 0.25;
  cfg.gc_low_watermark = 3;
  return cfg;
}

TEST(CrashMountTest, MountOfEmptyDriveFindsNothing) {
  PageMappingFtl ftl(tiny_config());
  const MountReport report = ftl.Mount();
  EXPECT_EQ(report.pages_scanned, 0u);
  EXPECT_EQ(report.mappings_recovered, 0u);
  EXPECT_EQ(report.stale_records, 0u);
  EXPECT_EQ(report.free_blocks, 32u);
  EXPECT_EQ(report.data_blocks, 0u);
  EXPECT_EQ(report.retired_blocks, 0u);
  EXPECT_EQ(ftl.free_blocks(), 32u);
  EXPECT_EQ(ftl.stats().mounts, 1u);
  EXPECT_TRUE(ftl.check_consistency().ok());
}

TEST(CrashMountTest, MountRecoversEveryMapping) {
  PageMappingFtl ftl(tiny_config());
  for (std::uint64_t lpn = 0; lpn < 100; ++lpn) {
    ftl.write(lpn, PageMode::kNormal, 1000 + static_cast<SimTime>(lpn));
  }
  const std::vector<std::uint64_t> before = ftl.l2p_dump();
  const MountReport report = ftl.Mount();
  EXPECT_EQ(report.mappings_recovered, 100u);
  EXPECT_EQ(report.stale_records, 0u);
  EXPECT_EQ(ftl.l2p_dump(), before);
  for (std::uint64_t lpn = 0; lpn < 100; ++lpn) {
    const auto info = ftl.lookup(lpn);
    ASSERT_TRUE(info.has_value()) << "lpn " << lpn;
    EXPECT_EQ(info->write_time, 1000 + static_cast<SimTime>(lpn));
    EXPECT_EQ(info->mode, PageMode::kNormal);
    EXPECT_EQ(ftl.data_version(lpn), 1u);
  }
  EXPECT_TRUE(ftl.check_consistency().ok());
  EXPECT_TRUE(ftl.double_mapped_lpns().empty());
}

TEST(CrashMountTest, LastEpochWinsOnOverwrites) {
  PageMappingFtl ftl(tiny_config());
  // Five generations of the same page: four stale OOB records survive on
  // NAND (no GC ran), and recovery must pick the newest by epoch.
  for (int gen = 0; gen < 5; ++gen) {
    ftl.write(7, PageMode::kNormal, 100 + gen);
  }
  const auto live = ftl.lookup(7);
  ASSERT_TRUE(live.has_value());
  const MountReport report = ftl.Mount();
  EXPECT_EQ(report.mappings_recovered, 1u);
  EXPECT_EQ(report.stale_records, 4u);
  const auto recovered = ftl.lookup(7);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->ppn, live->ppn);
  EXPECT_EQ(recovered->write_time, live->write_time);
  EXPECT_EQ(ftl.data_version(7), 5u);
  EXPECT_TRUE(ftl.double_mapped_lpns().empty());
}

TEST(CrashMountTest, MountIsIdempotent) {
  PageMappingFtl ftl(tiny_config());
  Rng rng(42);
  // Enough churn to trigger GC, then mount twice: the second mount reads
  // exactly what the first rebuilt, so every observable must be identical.
  for (int i = 0; i < 3000; ++i) {
    ftl.write(rng.below(200), i % 3 == 0 ? PageMode::kReduced
                                         : PageMode::kNormal,
              i);
  }
  const MountReport first = ftl.Mount();
  const std::vector<std::uint64_t> l2p_first = ftl.l2p_dump();
  const FtlStats stats_first = ftl.stats();
  const MountReport second = ftl.Mount();
  EXPECT_EQ(second.pages_scanned, first.pages_scanned);
  EXPECT_EQ(second.mappings_recovered, first.mappings_recovered);
  EXPECT_EQ(second.stale_records, first.stale_records);
  EXPECT_EQ(second.free_blocks, first.free_blocks);
  EXPECT_EQ(second.data_blocks, first.data_blocks);
  EXPECT_EQ(second.reduced_lpns, first.reduced_lpns);
  EXPECT_EQ(ftl.l2p_dump(), l2p_first);
  EXPECT_EQ(ftl.stats(), stats_first);
  EXPECT_TRUE(ftl.check_consistency().ok());
}

TEST(CrashMountTest, ReportsReducedMembershipAscending) {
  PageMappingFtl ftl(tiny_config());
  ftl.write(30, PageMode::kReduced, 0);
  ftl.write(10, PageMode::kReduced, 0);
  ftl.write(20, PageMode::kNormal, 0);
  const MountReport report = ftl.Mount();
  const std::vector<std::uint64_t> expected = {10, 30};
  EXPECT_EQ(report.reduced_lpns, expected);
  const auto info = ftl.lookup(10);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->mode, PageMode::kReduced);
}

TEST(CrashMountTest, ReseedsReadDisturbConservatively) {
  PageMappingFtl ftl(tiny_config());
  const WriteResult w = ftl.write(3, PageMode::kNormal, 0);
  for (int i = 0; i < 500; ++i) ftl.record_read(w.ppn);
  // Per-block read counts are volatile (DRAM): recovery cannot know the
  // true count, so it re-seeds data blocks at the caller's threshold —
  // pessimistic, never optimistic.
  ftl.Mount({.reseed_read_count = 77});
  const auto info = ftl.lookup(3);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->block_reads, 77u);
}

TEST(CrashMountTest, RetirementSurvivesMount) {
  FtlConfig cfg = tiny_config();
  PageMappingFtl ftl(cfg);
  faults::FaultConfig fault_cfg;
  fault_cfg.enabled = true;
  fault_cfg.program_fail_rate = 0.02;
  fault_cfg.erase_fail_rate = 0.05;
  const faults::FaultInjector injector(fault_cfg, 0xC0FFEE);
  ftl.attach_fault_injector(&injector);
  Rng rng(7);
  for (int i = 0; i < 4000 && ftl.retired_block_count() < 2; ++i) {
    ftl.write(rng.below(200), PageMode::kNormal, i);
  }
  ASSERT_GE(ftl.retired_block_count(), 1u);
  const std::vector<std::uint32_t> before = ftl.retired_block_ids();
  const MountReport report = ftl.Mount();
  EXPECT_EQ(ftl.retired_block_ids(), before);
  EXPECT_EQ(report.retired_blocks, before.size());
  EXPECT_EQ(ftl.stats().retired_blocks, before.size());
  EXPECT_TRUE(ftl.check_consistency().ok());
  EXPECT_TRUE(ftl.double_mapped_lpns().empty());
}

TEST(CrashMountTest, VersionCountsHostWritesNotRelocations) {
  PageMappingFtl ftl(tiny_config());
  ftl.write(5, PageMode::kNormal, 1);
  ftl.write(5, PageMode::kNormal, 2);
  EXPECT_EQ(ftl.data_version(5), 2u);
  // Migration moves the same data: the durable version must not change,
  // or the harness would flag relocated-but-intact data as lost.
  ftl.migrate(5, PageMode::kReduced, 3);
  EXPECT_EQ(ftl.data_version(5), 2u);
  ftl.Mount();
  EXPECT_EQ(ftl.data_version(5), 2u);
  const auto info = ftl.lookup(5);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->mode, PageMode::kReduced);
}

TEST(CrashMountTest, ConsistencyCheckPassesAfterHeavyChurn) {
  PageMappingFtl ftl(tiny_config());
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    ftl.write(rng.below(300), PageMode::kNormal, i);
  }
  EXPECT_TRUE(ftl.check_consistency().ok());
  EXPECT_TRUE(ftl.double_mapped_lpns().empty());
  ftl.Mount();
  EXPECT_TRUE(ftl.check_consistency().ok());
  EXPECT_TRUE(ftl.double_mapped_lpns().empty());
}

}  // namespace
}  // namespace flex::ftl
