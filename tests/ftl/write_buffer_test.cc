#include "ftl/write_buffer.h"

#include <gtest/gtest.h>

namespace flex::ftl {
namespace {

TEST(WriteBufferTest, AbsorbsUntilFull) {
  WriteBuffer buf(4, 2);
  for (std::uint64_t lpn = 0; lpn < 4; ++lpn) {
    EXPECT_TRUE(buf.write(lpn).empty());
    EXPECT_TRUE(buf.contains(lpn));
  }
  EXPECT_EQ(buf.size(), 4u);
}

TEST(WriteBufferTest, OverflowFlushesOldestBatch) {
  WriteBuffer buf(4, 2);
  for (std::uint64_t lpn = 0; lpn < 4; ++lpn) buf.write(lpn);
  const auto flushed = buf.write(99);
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0], 0u);  // oldest first
  EXPECT_EQ(flushed[1], 1u);
  EXPECT_FALSE(buf.contains(0));
  EXPECT_FALSE(buf.contains(1));
  EXPECT_TRUE(buf.contains(99));
  EXPECT_EQ(buf.size(), 3u);
}

TEST(WriteBufferTest, OverwriteRefreshesRecency) {
  WriteBuffer buf(3, 1);
  buf.write(1);
  buf.write(2);
  buf.write(3);
  EXPECT_TRUE(buf.write(1).empty());  // rewrite in place, no flush
  const auto flushed = buf.write(4);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0], 2u);  // 1 was refreshed; 2 is now the oldest
}

TEST(WriteBufferTest, DrainReturnsEverythingOldestFirst) {
  WriteBuffer buf(8, 2);
  buf.write(10);
  buf.write(20);
  buf.write(30);
  const auto drained = buf.drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0], 10u);
  EXPECT_EQ(drained[2], 30u);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_FALSE(buf.contains(10));
}

TEST(WriteBufferTest, SizeNeverExceedsCapacity) {
  WriteBuffer buf(16, 4);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    buf.write(i % 37);
    EXPECT_LE(buf.size(), 16u);
  }
}

TEST(WriteBufferDeathTest, FlushBatchBounded) {
  EXPECT_DEATH(WriteBuffer(4, 5), "precondition");
  EXPECT_DEATH(WriteBuffer(0, 1), "precondition");
}

}  // namespace
}  // namespace flex::ftl
