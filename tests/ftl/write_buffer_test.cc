#include "ftl/write_buffer.h"

#include <gtest/gtest.h>

namespace flex::ftl {
namespace {

TEST(WriteBufferTest, AbsorbsUntilFull) {
  WriteBuffer buf(4, 2);
  for (std::uint64_t lpn = 0; lpn < 4; ++lpn) {
    EXPECT_TRUE(buf.write(lpn).empty());
    EXPECT_TRUE(buf.contains(lpn));
  }
  EXPECT_EQ(buf.size(), 4u);
}

TEST(WriteBufferTest, OverflowFlushesOldestBatch) {
  WriteBuffer buf(4, 2);
  for (std::uint64_t lpn = 0; lpn < 4; ++lpn) buf.write(lpn);
  const auto flushed = buf.write(99);
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0], 0u);  // oldest first
  EXPECT_EQ(flushed[1], 1u);
  EXPECT_FALSE(buf.contains(0));
  EXPECT_FALSE(buf.contains(1));
  EXPECT_TRUE(buf.contains(99));
  EXPECT_EQ(buf.size(), 3u);
}

TEST(WriteBufferTest, OverwriteRefreshesRecency) {
  WriteBuffer buf(3, 1);
  buf.write(1);
  buf.write(2);
  buf.write(3);
  EXPECT_TRUE(buf.write(1).empty());  // rewrite in place, no flush
  const auto flushed = buf.write(4);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0], 2u);  // 1 was refreshed; 2 is now the oldest
}

TEST(WriteBufferTest, DrainReturnsEverythingOldestFirst) {
  WriteBuffer buf(8, 2);
  buf.write(10);
  buf.write(20);
  buf.write(30);
  const auto drained = buf.drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0], 10u);
  EXPECT_EQ(drained[2], 30u);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_FALSE(buf.contains(10));
}

TEST(WriteBufferTest, SizeNeverExceedsCapacity) {
  WriteBuffer buf(16, 4);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    buf.write(i % 37);
    EXPECT_LE(buf.size(), 16u);
  }
}

TEST(WriteBufferTest, WritesAreDirtyUntilFlushed) {
  WriteBuffer buf(4, 2);
  buf.write(7);
  EXPECT_TRUE(buf.dirty(7));
  EXPECT_EQ(buf.dirty_pages(), 1u);
  EXPECT_FALSE(buf.dirty(8));  // absent pages are not dirty
}

TEST(WriteBufferTest, InsertCleanCachesWithoutDirtying) {
  WriteBuffer buf(4, 2);
  EXPECT_TRUE(buf.insert_clean(7).empty());
  EXPECT_TRUE(buf.contains(7));
  EXPECT_FALSE(buf.dirty(7));
  EXPECT_EQ(buf.dirty_pages(), 0u);
  // A host write to a clean cached page makes it dirty again.
  buf.write(7);
  EXPECT_TRUE(buf.dirty(7));
  EXPECT_EQ(buf.dirty_pages(), 1u);
}

TEST(WriteBufferTest, CleanVictimsEvictWithoutFlush) {
  // Eviction must not re-program clean pages: their data is already on
  // NAND, so only dirty victims come back from write().
  WriteBuffer buf(4, 2);
  buf.insert_clean(0);
  buf.insert_clean(1);
  buf.write(2);
  buf.write(3);
  const auto flushed = buf.write(4);  // evicts {0, 1}, both clean
  EXPECT_TRUE(flushed.empty());
  EXPECT_FALSE(buf.contains(0));
  EXPECT_FALSE(buf.contains(1));
  EXPECT_TRUE(buf.contains(2));
}

TEST(WriteBufferTest, FlushBarrierDrainsDirtyOldestFirstAndKeepsEntries) {
  WriteBuffer buf(8, 2);
  buf.write(10);
  buf.insert_clean(20);
  buf.write(30);
  const auto flushed = buf.flush_barrier();
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0], 10u);  // oldest dirty first
  EXPECT_EQ(flushed[1], 30u);
  // A barrier makes data durable; it does not evict the cache.
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.dirty_pages(), 0u);
  EXPECT_FALSE(buf.dirty(10));
  EXPECT_TRUE(buf.flush_barrier().empty());  // idempotent when clean
}

TEST(WriteBufferTest, PowerLossReportsDirtyLossAndEmptiesBuffer) {
  WriteBuffer buf(8, 2);
  buf.write(1);
  buf.write(2);
  buf.insert_clean(3);
  EXPECT_EQ(buf.power_loss(), 2u);  // only dirty pages were lost data
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dirty_pages(), 0u);
  EXPECT_FALSE(buf.contains(1));
  EXPECT_FALSE(buf.contains(3));
}

TEST(WriteBufferTest, DrainReturnsOnlyDirtyPages) {
  WriteBuffer buf(8, 2);
  buf.insert_clean(1);
  buf.write(2);
  const auto drained = buf.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], 2u);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(WriteBufferDeathTest, FlushBatchBounded) {
  EXPECT_DEATH(WriteBuffer(4, 5), "precondition");
  EXPECT_DEATH(WriteBuffer(0, 1), "precondition");
}

}  // namespace
}  // namespace flex::ftl
