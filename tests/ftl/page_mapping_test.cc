#include "ftl/page_mapping.h"

#include <unordered_map>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace flex::ftl {
namespace {

// Tiny drive: 2 chips x 16 blocks x 16 pages = 512 physical pages.
FtlConfig tiny_config() {
  FtlConfig cfg;
  cfg.spec.page_size_bytes = 4096;
  cfg.spec.pages_per_block = 16;
  cfg.spec.blocks_per_chip = 16;
  cfg.spec.chips = 2;
  cfg.over_provisioning = 0.25;
  cfg.gc_low_watermark = 3;
  return cfg;
}

TEST(PageMappingTest, CapacityAccounting) {
  const PageMappingFtl ftl(tiny_config());
  EXPECT_EQ(ftl.physical_blocks(), 32u);
  EXPECT_EQ(ftl.logical_pages(), 384u);  // 512 * 0.75
  EXPECT_EQ(ftl.free_blocks(), 32u);
}

TEST(PageMappingTest, LookupUnwrittenIsEmpty) {
  const PageMappingFtl ftl(tiny_config());
  EXPECT_FALSE(ftl.lookup(0).has_value());
  EXPECT_FALSE(ftl.lookup(383).has_value());
}

TEST(PageMappingTest, WriteThenLookup) {
  PageMappingFtl ftl(tiny_config());
  const WriteResult w = ftl.write(7, PageMode::kNormal, 1234);
  const auto info = ftl.lookup(7);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->ppn, w.ppn);
  EXPECT_EQ(info->mode, PageMode::kNormal);
  EXPECT_EQ(info->write_time, 1234);
}

TEST(PageMappingTest, OverwriteRemaps) {
  PageMappingFtl ftl(tiny_config());
  const WriteResult first = ftl.write(7, PageMode::kNormal, 1);
  const WriteResult second = ftl.write(7, PageMode::kNormal, 2);
  EXPECT_NE(first.ppn, second.ppn);
  const auto info = ftl.lookup(7);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->ppn, second.ppn);
  EXPECT_EQ(info->write_time, 2);
}

TEST(PageMappingTest, ReducedBlocksHoldFewerPages) {
  PageMappingFtl ftl(tiny_config());
  // 16 pages/block * 0.75 = 12 usable slots in a reduced block: writing 13
  // reduced pages must span two blocks.
  std::uint64_t first_block_ppn = 0;
  for (std::uint64_t lpn = 0; lpn < 13; ++lpn) {
    const WriteResult w = ftl.write(lpn, PageMode::kReduced, 0);
    if (lpn == 0) first_block_ppn = w.ppn / 16;
    if (lpn < 12) {
      EXPECT_EQ(w.ppn / 16, first_block_ppn) << "lpn " << lpn;
    } else {
      EXPECT_NE(w.ppn / 16, first_block_ppn);
    }
  }
  EXPECT_EQ(ftl.reduced_blocks(), 2u);
}

TEST(PageMappingTest, MigrateSwitchesMode) {
  PageMappingFtl ftl(tiny_config());
  ftl.write(5, PageMode::kNormal, 10);
  const WriteResult moved = ftl.migrate(5, PageMode::kReduced, 20);
  EXPECT_EQ(moved.mode, PageMode::kReduced);
  const auto info = ftl.lookup(5);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->mode, PageMode::kReduced);
  EXPECT_EQ(info->write_time, 20);
  EXPECT_EQ(ftl.stats().mode_migrations, 1u);
}

TEST(PageMappingTest, GcReclaimsInvalidatedSpace) {
  PageMappingFtl ftl(tiny_config());
  Rng rng(1);
  // Hammer a small working set: far more writes than physical pages fit,
  // which is only possible if GC keeps reclaiming.
  for (int i = 0; i < 5'000; ++i) {
    ftl.write(rng.below(100), PageMode::kNormal, i);
  }
  EXPECT_GT(ftl.stats().nand_erases, 0u);
  EXPECT_GT(ftl.stats().gc_runs, 0u);
  EXPECT_GE(ftl.free_blocks(), 3u);  // watermark held
}

TEST(PageMappingTest, GcPreservesAllLiveData) {
  PageMappingFtl ftl(tiny_config());
  Rng rng(2);
  std::unordered_map<std::uint64_t, SimTime> expected;
  for (int i = 0; i < 8'000; ++i) {
    const std::uint64_t lpn = rng.below(ftl.logical_pages());
    ftl.write(lpn, rng.chance(0.2) ? PageMode::kReduced : PageMode::kNormal,
              i);
    expected[lpn] = i;
  }
  // Every logical page written must still resolve; unwritten ones must not.
  for (std::uint64_t lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    const auto info = ftl.lookup(lpn);
    EXPECT_EQ(info.has_value(), expected.contains(lpn)) << "lpn " << lpn;
  }
}

TEST(PageMappingTest, WriteAmplificationAboveOneUnderChurn) {
  PageMappingFtl ftl(tiny_config());
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    ftl.write(rng.below(ftl.logical_pages()), PageMode::kNormal, i);
  }
  EXPECT_GT(ftl.stats().write_amplification(), 1.0);
  EXPECT_EQ(ftl.stats().nand_writes,
            ftl.stats().host_writes + ftl.stats().gc_page_moves);
}

TEST(PageMappingTest, ReducedModeCausesMoreGc) {
  // Reduced blocks waste a quarter of their slots, so the same workload
  // must erase more often — the over-provisioning-loss effect behind
  // LevelAdjust-only's Fig. 6(a) penalty.
  const auto churn = [](PageMode mode) {
    PageMappingFtl ftl(tiny_config());
    Rng rng(4);
    for (int i = 0; i < 10'000; ++i) {
      ftl.write(rng.below(300), mode, i);
    }
    return ftl.stats().nand_erases;
  };
  EXPECT_GT(churn(PageMode::kReduced), churn(PageMode::kNormal));
}

TEST(PageMappingTest, WearStaysRoughlyLevelled) {
  FtlConfig cfg = tiny_config();
  cfg.static_wl_interval = 16;
  PageMappingFtl ftl(cfg);
  Rng rng(5);
  // Skewed workload: a cold half that greedy GC alone would never touch.
  for (int i = 0; i < 30'000; ++i) {
    ftl.write(rng.below(ftl.logical_pages() / 2), PageMode::kNormal, i);
  }
  ASSERT_GT(ftl.max_erase_count(), 0u);
  // Static wear leveling circulates even the cold blocks.
  EXPECT_GT(ftl.min_erase_count(), 0u);
  EXPECT_GT(ftl.mean_erase_count(), 0.0);
}

TEST(PageMappingTest, StaticWlDisabledLeavesColdBlocksAlone) {
  FtlConfig cfg = tiny_config();
  cfg.static_wl_interval = 0;
  PageMappingFtl ftl(cfg);
  Rng rng(6);
  // Fill everything once, then churn only a hot quarter: the cold blocks
  // stay full-valid and are never reclaimed without static WL.
  for (std::uint64_t lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    ftl.write(lpn, PageMode::kNormal, 0);
  }
  for (int i = 0; i < 20'000; ++i) {
    ftl.write(rng.below(ftl.logical_pages() / 4), PageMode::kNormal, i);
  }
  EXPECT_EQ(ftl.min_erase_count(), 0u);
}

TEST(PageMappingTest, InitialPeCyclesApplied) {
  FtlConfig cfg = tiny_config();
  cfg.initial_pe_cycles = 6000;
  PageMappingFtl ftl(cfg);
  ftl.write(0, PageMode::kNormal, 0);
  const auto info = ftl.lookup(0);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->pe_cycles, 6000u);
  EXPECT_EQ(ftl.min_erase_count(), 6000u);
}

TEST(PageMappingDeathTest, MigrateRequiresMappedPage) {
  PageMappingFtl ftl(tiny_config());
  EXPECT_DEATH((void)ftl.migrate(3, PageMode::kReduced, 0), "precondition");
}

TEST(PageMappingDeathTest, LpnRangeChecked) {
  PageMappingFtl ftl(tiny_config());
  EXPECT_DEATH((void)ftl.write(ftl.logical_pages(), PageMode::kNormal, 0),
               "precondition");
}

}  // namespace
}  // namespace flex::ftl
