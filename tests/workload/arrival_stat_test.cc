// Statistical and determinism tests for the open-loop arrival processes.
//
// The distributional tests run chi-square goodness-of-fit checks at fixed
// seeds (deterministic — see chi_square.h for what the thresholds mean)
// plus coarse moment checks for the modulated shapes, where exact GOF
// would need the modulation's inverse CDF.
#include "workload/arrival.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "chi_square.h"

namespace flex::workload {
namespace {

using testing::chi_square_critical_999;
using testing::chi_square_stat;

std::vector<SimTime> draw(const ArrivalConfig& config, std::uint64_t seed,
                          int n) {
  ArrivalProcess process(config, seed);
  std::vector<SimTime> times;
  times.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) times.push_back(process.next());
  return times;
}

TEST(ArrivalStatTest, PoissonInterarrivalsPassChiSquareGof) {
  ArrivalConfig config;
  config.base_iops = 2000.0;
  const auto times = draw(config, /*seed=*/0x9015501, 100'000);

  // Probability-integral transform: u = 1 - exp(-lambda dt) is Uniform(0,1)
  // iff the interarrivals are Exponential(lambda); bin into 20 equal-
  // probability cells.
  constexpr int kBins = 20;
  std::vector<std::uint64_t> observed(kBins, 0);
  SimTime prev = 0;
  for (const SimTime t : times) {
    const double dt_s = static_cast<double>(t - prev) / 1e9;
    prev = t;
    const double u = 1.0 - std::exp(-config.base_iops * dt_s);
    const int bin =
        std::min(kBins - 1, static_cast<int>(u * kBins));
    ++observed[static_cast<std::size_t>(bin)];
  }
  const std::vector<double> expected(kBins, times.size() / double{kBins});
  EXPECT_LT(chi_square_stat(observed, expected),
            chi_square_critical_999(kBins - 1));

  // And the first moment: mean interarrival = 1 / lambda within 1%.
  const double mean_s =
      static_cast<double>(times.back()) / 1e9 / times.size();
  EXPECT_NEAR(mean_s, 1.0 / config.base_iops, 0.01 / config.base_iops);
}

TEST(ArrivalStatTest, MmppLongRunRateMatchesMeanRate) {
  ArrivalConfig config;
  config.base_iops = 1000.0;
  config.burst_rate_multiplier = 8.0;
  config.burst_on_fraction = 0.2;
  config.burst_mean_on_s = 0.05;
  // mean = base * (1 + f*(m-1)) = 2.4k; peak = 8k.
  EXPECT_DOUBLE_EQ(config.mean_rate(), 2400.0);
  EXPECT_DOUBLE_EQ(config.peak_rate(), 8000.0);

  const auto times = draw(config, /*seed=*/0x4a12, 200'000);
  const double elapsed_s = static_cast<double>(times.back()) / 1e9;
  const double empirical = times.size() / elapsed_s;
  EXPECT_NEAR(empirical, config.mean_rate(), 0.05 * config.mean_rate());
}

TEST(ArrivalStatTest, MmppBurstsRaiseIndexOfDispersion) {
  // Windowed arrival counts: Poisson has variance/mean ~ 1; on/off bursts
  // with window >~ sojourn length push it well above.
  auto dispersion = [](const std::vector<SimTime>& times, double window_s) {
    std::vector<std::uint64_t> counts;
    std::uint64_t in_window = 0;
    double window_end = window_s;
    for (const SimTime t : times) {
      const double t_s = static_cast<double>(t) / 1e9;
      while (t_s >= window_end) {
        counts.push_back(in_window);
        in_window = 0;
        window_end += window_s;
      }
      ++in_window;
    }
    double mean = 0.0;
    for (const std::uint64_t c : counts) mean += static_cast<double>(c);
    mean /= static_cast<double>(counts.size());
    double var = 0.0;
    for (const std::uint64_t c : counts) {
      const double d = static_cast<double>(c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(counts.size() - 1);
    return var / mean;
  };

  ArrivalConfig poisson;
  poisson.base_iops = 2000.0;
  ArrivalConfig bursty = poisson;
  bursty.burst_rate_multiplier = 10.0;
  bursty.burst_on_fraction = 0.1;
  bursty.burst_mean_on_s = 0.05;

  const double d_poisson =
      dispersion(draw(poisson, /*seed=*/7, 100'000), 0.1);
  const double d_bursty = dispersion(draw(bursty, /*seed=*/7, 100'000), 0.1);
  EXPECT_NEAR(d_poisson, 1.0, 0.25);
  EXPECT_GT(d_bursty, 3.0);
}

TEST(ArrivalStatTest, DiurnalCurveShapesArrivalCounts) {
  ArrivalConfig config;
  config.base_iops = 2000.0;
  config.diurnal_amplitude = 0.9;
  config.diurnal_period_s = 10.0;
  const auto times = draw(config, /*seed=*/0xD1A1, 50'000);

  // rate(t) = base * (1 + A sin(2 pi t / T)): the first half-period
  // averages 1 + 2A/pi, the second 1 - 2A/pi — a ratio of ~3.7 at A=0.9.
  // Fold over *complete* periods only (a stream truncated mid-period
  // would overweight whichever half it ends in) and compare the counts.
  const double last_s = static_cast<double>(times.back()) / 1e9;
  const double cutoff_s =
      std::floor(last_s / config.diurnal_period_s) * config.diurnal_period_s;
  std::uint64_t first_half = 0;
  std::uint64_t second_half = 0;
  for (const SimTime t : times) {
    const double t_s = static_cast<double>(t) / 1e9;
    if (t_s >= cutoff_s) break;
    const double phase = std::fmod(t_s, config.diurnal_period_s);
    (phase < config.diurnal_period_s / 2 ? first_half : second_half)++;
  }
  ASSERT_GT(second_half, 0u);
  const double ratio =
      static_cast<double>(first_half) / static_cast<double>(second_half);
  const double expected = (1.0 + 2.0 * 0.9 / std::numbers::pi) /
                          (1.0 - 2.0 * 0.9 / std::numbers::pi);
  EXPECT_NEAR(ratio, expected, 0.5);
}

TEST(ArrivalStatTest, TimestampsAreNonDecreasing) {
  ArrivalConfig config;
  config.base_iops = 5000.0;
  config.burst_rate_multiplier = 6.0;
  config.burst_on_fraction = 0.3;
  config.burst_mean_on_s = 0.01;
  config.diurnal_amplitude = 0.5;
  config.diurnal_period_s = 1.0;
  ArrivalProcess process(config, /*seed=*/11);
  SimTime prev = 0;
  for (int i = 0; i < 50'000; ++i) {
    const SimTime t = process.next();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(ArrivalStatTest, SameSeedReproducesSameStream) {
  ArrivalConfig config;
  config.base_iops = 3000.0;
  config.burst_rate_multiplier = 4.0;
  config.burst_on_fraction = 0.25;
  config.burst_mean_on_s = 0.02;
  EXPECT_EQ(draw(config, /*seed=*/42, 10'000), draw(config, /*seed=*/42, 10'000));
  EXPECT_NE(draw(config, /*seed=*/42, 10'000), draw(config, /*seed=*/43, 10'000));
}

TEST(ArrivalStatTest, ValidateRejectsBadConfigs) {
  ArrivalConfig ok;
  EXPECT_TRUE(ok.Validate().ok());

  ArrivalConfig bad = ok;
  bad.base_iops = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = ok;
  bad.burst_rate_multiplier = 0.5;
  EXPECT_FALSE(bad.Validate().ok());

  bad = ok;  // multiplier armed but on-fraction zero: a silent no-op
  bad.burst_rate_multiplier = 4.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = ok;
  bad.burst_rate_multiplier = 4.0;
  bad.burst_on_fraction = 1.0;  // must be < 1
  EXPECT_FALSE(bad.Validate().ok());

  bad = ok;
  bad.burst_rate_multiplier = 4.0;
  bad.burst_on_fraction = 0.2;
  bad.burst_mean_on_s = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = ok;
  bad.diurnal_amplitude = 1.5;
  EXPECT_FALSE(bad.Validate().ok());

  bad = ok;
  bad.diurnal_amplitude = 0.5;
  bad.diurnal_period_s = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
}

}  // namespace
}  // namespace flex::workload
