// Chi-square goodness-of-fit helper for the workload statistical tests.
//
// The tests run at fixed seeds, so they are deterministic — the critical
// values below are only about choosing seeds honestly: a distributional
// regression (wrong sampler, biased thinning, an extra RNG draw shifting
// the stream) moves the statistic by orders of magnitude, while the
// 99.9th-percentile thresholds leave room for ordinary sampling noise.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace flex::workload::testing {

/// Pearson's chi-square statistic for observed counts against expected
/// counts (same length; every expected count must be positive).
inline double chi_square_stat(const std::vector<std::uint64_t>& observed,
                              const std::vector<double>& expected) {
  FLEX_EXPECTS(observed.size() == expected.size());
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    FLEX_EXPECTS(expected[i] > 0.0);
    const double diff = static_cast<double>(observed[i]) - expected[i];
    stat += diff * diff / expected[i];
  }
  return stat;
}

/// 99.9th-percentile critical values of the chi-square distribution for
/// the degrees of freedom the tests use (standard tables).
inline double chi_square_critical_999(int df) {
  switch (df) {
    case 3:
      return 16.266;
    case 7:
      return 24.322;
    case 9:
      return 27.877;
    case 15:
      return 37.697;
    case 19:
      return 43.820;
    default:
      FLEX_EXPECTS(false && "add the critical value for this df");
      return 0.0;
  }
}

}  // namespace flex::workload::testing
