// Multi-tenant workload-engine tests: Zipf tenant-rank goodness of fit,
// footprint containment, per-tenant mix fidelity, seed determinism and
// config validation. Statistical checks run at fixed seeds (see
// chi_square.h).
#include "workload/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "trace/trace.h"
#include "chi_square.h"

namespace flex::workload {
namespace {

using testing::chi_square_critical_999;
using testing::chi_square_stat;

EngineConfig four_tenant_config() {
  EngineConfig config;
  config.tenants = zipf_tenant_population(4, 0.9, /*footprint_pages=*/1 << 18);
  config.seed = 0xE46;
  return config;
}

TEST(WorkloadEngineTest, ZipfTenantRanksPassChiSquareGof) {
  EngineConfig config;
  config.tenants = zipf_tenant_population(8, 0.0, /*footprint_pages=*/1 << 19);
  config.tenant_select_theta = 0.9;  // rank-Zipf selection, tenant 0 hottest
  config.seed = 0x21BF;
  WorkloadEngine engine(config);
  const auto requests = engine.materialize(200'000);
  ASSERT_EQ(requests.size(), 200'000u);

  std::vector<std::uint64_t> observed(8, 0);
  for (const trace::Request& r : requests) {
    ASSERT_LT(r.tenant, 8);
    ++observed[r.tenant];
  }
  // Expected multinomial: p_r proportional to (r+1)^-theta.
  std::vector<double> expected(8);
  double norm = 0.0;
  for (int r = 0; r < 8; ++r) norm += std::pow(r + 1, -0.9);
  for (int r = 0; r < 8; ++r) {
    expected[static_cast<std::size_t>(r)] =
        requests.size() * std::pow(r + 1, -0.9) / norm;
  }
  EXPECT_LT(chi_square_stat(observed, expected), chi_square_critical_999(7));
}

TEST(WorkloadEngineTest, WeightedTenantSelectionMatchesWeights) {
  EngineConfig config = four_tenant_config();
  const double weights[] = {4.0, 2.0, 1.0, 1.0};
  for (int i = 0; i < 4; ++i) {
    config.tenants[static_cast<std::size_t>(i)].arrival_weight = weights[i];
  }
  WorkloadEngine engine(config);
  const auto requests = engine.materialize(100'000);

  std::vector<std::uint64_t> observed(4, 0);
  for (const trace::Request& r : requests) ++observed[r.tenant];
  std::vector<double> expected(4);
  for (int i = 0; i < 4; ++i) {
    expected[static_cast<std::size_t>(i)] =
        requests.size() * weights[i] / 8.0;
  }
  EXPECT_LT(chi_square_stat(observed, expected), chi_square_critical_999(3));
}

TEST(WorkloadEngineTest, RequestsStayInsideTenantFootprints) {
  EngineConfig config = four_tenant_config();
  config.tenants[2].priority = 3;
  WorkloadEngine engine(config);
  const auto requests = engine.materialize(50'000);
  for (const trace::Request& r : requests) {
    ASSERT_LT(r.tenant, config.tenants.size());
    const TenantSpec& spec = config.tenants[r.tenant];
    EXPECT_GE(r.lpn, spec.footprint_offset);
    EXPECT_LE(r.lpn + r.pages, spec.footprint_offset + spec.footprint_pages);
    EXPECT_GE(r.pages, 1u);
    EXPECT_LE(r.pages, spec.max_request_pages);
    EXPECT_EQ(r.priority, spec.priority);
  }
}

TEST(WorkloadEngineTest, PerTenantReadFractionMatchesSpec) {
  EngineConfig config = four_tenant_config();
  config.tenants[0].read_fraction = 0.9;
  config.tenants[1].read_fraction = 0.5;
  config.tenants[2].read_fraction = 0.0;
  config.tenants[3].read_fraction = 1.0;
  WorkloadEngine engine(config);
  const auto requests = engine.materialize(120'000);

  std::vector<std::uint64_t> total(4, 0);
  std::vector<std::uint64_t> reads(4, 0);
  for (const trace::Request& r : requests) {
    ++total[r.tenant];
    if (!r.is_write) ++reads[r.tenant];
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_GT(total[static_cast<std::size_t>(i)], 1000u);
    const double fraction =
        static_cast<double>(reads[static_cast<std::size_t>(i)]) /
        static_cast<double>(total[static_cast<std::size_t>(i)]);
    EXPECT_NEAR(fraction, config.tenants[static_cast<std::size_t>(i)].read_fraction, 0.02);
  }
}

TEST(WorkloadEngineTest, AddressSkewConcentratesOnHotPages) {
  // Zipf(1.1) inside one tenant: the most popular 1% of the footprint
  // should draw a large share of accesses — and the permutation must
  // scatter them (the hottest pages are not simply the lowest LPNs).
  EngineConfig config;
  TenantSpec tenant;
  tenant.footprint_pages = 100'000;
  tenant.zipf_theta = 1.1;
  tenant.mean_request_pages = 1.0;
  tenant.max_request_pages = 1;
  config.tenants = {tenant};
  config.seed = 0x5EED;
  WorkloadEngine engine(config);
  const auto requests = engine.materialize(100'000);

  std::vector<std::uint32_t> hits(100'000, 0);
  for (const trace::Request& r : requests) ++hits[r.lpn];
  std::vector<std::uint32_t> sorted = hits;
  std::sort(sorted.rbegin(), sorted.rend());
  std::uint64_t top1 = 0;
  for (std::size_t i = 0; i < 1000; ++i) top1 += sorted[i];
  EXPECT_GT(top1, requests.size() / 2);  // top 1% of pages, >50% of mass
  // Scatter: the single hottest page is not LPN 0..9 with overwhelming
  // likelihood under the coprime permutation (rank 0 maps elsewhere).
  std::uint64_t low_lpn_mass = 0;
  for (std::size_t i = 0; i < 10; ++i) low_lpn_mass += hits[i];
  EXPECT_LT(low_lpn_mass, top1 / 2);
}

TEST(WorkloadEngineTest, SameSeedSameStreamAcrossInstances) {
  const EngineConfig config = four_tenant_config();
  WorkloadEngine a(config);
  WorkloadEngine b(config);
  EXPECT_EQ(a.materialize(20'000), b.materialize(20'000));

  EngineConfig other = config;
  other.seed = config.seed + 1;
  WorkloadEngine c(other);
  EXPECT_NE(a.materialize(20'000), c.materialize(20'000));
}

TEST(WorkloadEngineTest, MaxRequestsExhaustsStream) {
  EngineConfig config = four_tenant_config();
  config.max_requests = 100;
  WorkloadEngine engine(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(engine.next().has_value());
  }
  EXPECT_FALSE(engine.next().has_value());
  EXPECT_FALSE(engine.next().has_value());  // stays exhausted
  EXPECT_EQ(engine.generated(), 100u);
}

TEST(WorkloadEngineTest, HorizonBoundsArrivalTimes) {
  EngineConfig config = four_tenant_config();
  config.horizon = 100 * kMillisecond;
  WorkloadEngine engine(config);
  std::uint64_t count = 0;
  while (const auto request = engine.next()) {
    EXPECT_LE(request->arrival, config.horizon);
    ++count;
  }
  EXPECT_GT(count, 0u);
  EXPECT_FALSE(engine.next().has_value());
}

TEST(WorkloadEngineTest, ZipfPopulationSlicesAreDisjointAndRanked) {
  const auto tenants = zipf_tenant_population(4, 0.9, /*footprint_pages=*/4096);
  ASSERT_EQ(tenants.size(), 4u);
  std::uint64_t cursor = 0;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    EXPECT_EQ(tenants[i].footprint_offset, cursor);
    EXPECT_EQ(tenants[i].footprint_pages, 1024u);
    cursor += tenants[i].footprint_pages;
    if (i > 0) {
      EXPECT_LT(tenants[i].arrival_weight, tenants[i - 1].arrival_weight);
    }
  }
}

TEST(WorkloadEngineTest, ValidateRejectsBadConfigs) {
  EXPECT_TRUE(four_tenant_config().Validate().ok());

  EngineConfig bad;
  EXPECT_FALSE(bad.Validate().ok());  // no tenants

  bad = four_tenant_config();
  bad.tenants[1].arrival_weight = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = four_tenant_config();
  bad.tenants[0].read_fraction = 1.5;
  EXPECT_FALSE(bad.Validate().ok());

  bad = four_tenant_config();
  bad.tenants[0].footprint_pages = 8;
  bad.tenants[0].max_request_pages = 16;
  EXPECT_FALSE(bad.Validate().ok());

  bad = four_tenant_config();
  bad.tenants[0].qos_weight = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = four_tenant_config();
  bad.arrivals.base_iops = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
}

}  // namespace
}  // namespace flex::workload
