#include "flexlevel/reduce_code.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace flex::flexlevel {
namespace {

int bit_distance(int a, int b) {
  const int x = a ^ b;
  return ((x >> 2) & 1) + ((x >> 1) & 1) + (x & 1);
}

TEST(ReduceCodeTest, Table1Verbatim) {
  // The exact mapping of the paper's Table 1.
  EXPECT_EQ(reduce_encode(0b000), (CellPairLevels{0, 0}));
  EXPECT_EQ(reduce_encode(0b001), (CellPairLevels{0, 1}));
  EXPECT_EQ(reduce_encode(0b010), (CellPairLevels{1, 0}));
  EXPECT_EQ(reduce_encode(0b011), (CellPairLevels{1, 1}));
  EXPECT_EQ(reduce_encode(0b100), (CellPairLevels{2, 2}));
  EXPECT_EQ(reduce_encode(0b101), (CellPairLevels{0, 2}));
  EXPECT_EQ(reduce_encode(0b110), (CellPairLevels{2, 0}));
  EXPECT_EQ(reduce_encode(0b111), (CellPairLevels{2, 1}));
}

TEST(ReduceCodeTest, RoundTripAllValues) {
  for (int value = 0; value < 8; ++value) {
    EXPECT_EQ(reduce_decode(reduce_encode(value)), value);
  }
}

TEST(ReduceCodeTest, MappingIsInjective) {
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_FALSE(reduce_encode(a) == reduce_encode(b))
          << a << " vs " << b;
    }
  }
}

TEST(ReduceCodeTest, PaperExampleDistortion) {
  // Paper §4.1: value 101 = (0, 2); if the 2nd cell drops from level 2 to
  // level 1, the pair reads (0, 1) = 001 — a single-bit error.
  const CellPairLevels stored = reduce_encode(0b101);
  const CellPairLevels distorted{stored.first, stored.second - 1};
  EXPECT_EQ(reduce_decode(distorted), 0b001);
  EXPECT_EQ(bit_distance(0b101, 0b001), 1);
}

TEST(ReduceCodeTest, SingleDistortionDamageProfile) {
  // Enumerate every single-level distortion of every codeword. Table 1 as
  // printed is *almost* distance-1: (2,2) <-> (2,1) (values 100 and 111)
  // differ in two bits, and the distortion (1,1) -> (1,2) lands on the
  // unused combination, which decodes to 100 (3 bits from 011). Pin the
  // exact profile so regressions are loud.
  int transitions = 0;
  int total_bit_errors = 0;
  int worst = 0;
  for (int value = 0; value < 8; ++value) {
    const CellPairLevels levels = reduce_encode(value);
    const int deltas[4][2] = {{-1, 0}, {1, 0}, {0, -1}, {0, 1}};
    for (const auto& d : deltas) {
      const CellPairLevels moved{levels.first + d[0], levels.second + d[1]};
      if (moved.first < 0 || moved.first > 2 || moved.second < 0 ||
          moved.second > 2) {
        continue;
      }
      const int decoded = reduce_decode(moved);
      const int errs = bit_distance(value, decoded);
      ++transitions;
      total_bit_errors += errs;
      worst = std::max(worst, errs);
    }
  }
  EXPECT_EQ(worst, 3);  // (1,1) -> unused (1,2) -> decodes to 100
  EXPECT_EQ(transitions, 21);
  EXPECT_EQ(total_bit_errors, 24);
  // "Bit errors are effectively minimized": ~1.14 bits per distortion.
  EXPECT_LE(static_cast<double>(total_bit_errors) / transitions, 1.2);
}

TEST(ReduceCodeTest, UnusedCombinationDecodesToRetentionNeighbor) {
  // (1, 2) is the unused ninth combination; it is decoded as a level-2
  // retention drop of (2, 2) = value 100.
  EXPECT_EQ(reduce_decode({1, 2}), 0b100);
}

TEST(ReduceCodeTest, MsbLsbSplit) {
  for (int value = 0; value < 8; ++value) {
    EXPECT_EQ((reduce_msb(value) << 2) | reduce_lsbs(value), value);
  }
  EXPECT_EQ(reduce_msb(0b101), 1);
  EXPECT_EQ(reduce_lsbs(0b101), 0b01);
}

TEST(ReduceCodeTest, MsbZeroMapsLsbsDirectlyToLevels) {
  // Table 2's first program step: with MSB 0 the cells sit at their LSBs.
  for (int lsbs = 0; lsbs < 4; ++lsbs) {
    const CellPairLevels levels = reduce_encode(lsbs);
    EXPECT_EQ(levels.first, (lsbs >> 1) & 1);
    EXPECT_EQ(levels.second, lsbs & 1);
  }
}

TEST(ReduceCodeDeathTest, RejectsBadInputs) {
  EXPECT_DEATH((void)reduce_encode(8), "precondition");
  EXPECT_DEATH((void)reduce_encode(-1), "precondition");
  EXPECT_DEATH((void)reduce_decode({3, 0}), "precondition");
}

}  // namespace
}  // namespace flex::flexlevel
