#include "flexlevel/page_layout.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace flex::flexlevel {
namespace {

std::vector<std::uint8_t> random_bits(int n, Rng& rng) {
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(n));
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
  return bits;
}

TEST(PageLayoutTest, GeometryOfFigure3) {
  const ReducedWordline wl(16);
  EXPECT_EQ(wl.pairs(), 8);
  EXPECT_EQ(wl.page_bits(), 8);
  // Even pairs bind neighbouring even bitlines...
  EXPECT_EQ(wl.pair_bitlines(0), (std::pair<int, int>{0, 2}));
  EXPECT_EQ(wl.pair_bitlines(1), (std::pair<int, int>{4, 6}));
  EXPECT_EQ(wl.pair_bitlines(3), (std::pair<int, int>{12, 14}));
  // ...and odd pairs neighbouring odd bitlines.
  EXPECT_EQ(wl.pair_bitlines(4), (std::pair<int, int>{1, 3}));
  EXPECT_EQ(wl.pair_bitlines(7), (std::pair<int, int>{13, 15}));
}

TEST(PageLayoutTest, EveryBitlineBelongsToExactlyOnePair) {
  const ReducedWordline wl(32);
  std::vector<int> seen(32, 0);
  for (int p = 0; p < wl.pairs(); ++p) {
    const auto [a, b] = wl.pair_bitlines(p);
    ++seen[static_cast<std::size_t>(a)];
    ++seen[static_cast<std::size_t>(b)];
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(PageLayoutTest, FullProgramReadRoundTrip) {
  Rng rng(1);
  ReducedWordline wl(64);
  const auto lower = random_bits(wl.page_bits(), rng);
  const auto middle = random_bits(wl.page_bits(), rng);
  const auto upper = random_bits(wl.page_bits(), rng);
  wl.program_lower(lower);
  wl.program_middle(middle);
  wl.program_upper(upper);
  EXPECT_EQ(wl.read(ReducedPageKind::kLower), lower);
  EXPECT_EQ(wl.read(ReducedPageKind::kMiddle), middle);
  EXPECT_EQ(wl.read(ReducedPageKind::kUpper), upper);
}

TEST(PageLayoutTest, LowerMiddleOrderIsFree) {
  // §4.1: step 1 programs the lower *or* the middle page — either first.
  Rng rng(2);
  ReducedWordline wl(16);
  const auto lower = random_bits(wl.page_bits(), rng);
  const auto middle = random_bits(wl.page_bits(), rng);
  wl.program_middle(middle);
  wl.program_lower(lower);
  wl.program_upper(random_bits(wl.page_bits(), rng));
  EXPECT_EQ(wl.read(ReducedPageKind::kLower), lower);
  EXPECT_EQ(wl.read(ReducedPageKind::kMiddle), middle);
}

TEST(PageLayoutTest, LevelsMatchTable1AfterProgramming) {
  Rng rng(3);
  ReducedWordline wl(32);
  const auto lower = random_bits(wl.page_bits(), rng);
  const auto middle = random_bits(wl.page_bits(), rng);
  const auto upper = random_bits(wl.page_bits(), rng);
  wl.program_lower(lower);
  wl.program_middle(middle);
  wl.program_upper(upper);
  for (int p = 0; p < wl.pairs(); ++p) {
    const auto [first, second] = wl.pair_bitlines(p);
    const bool even = p < wl.pairs() / 2;
    const auto& lsb_page = even ? lower : middle;
    const int local = even ? p : p - wl.pairs() / 2;
    const int value =
        ((upper[static_cast<std::size_t>(p)] & 1) << 2) |
        ((lsb_page[static_cast<std::size_t>(2 * local)] & 1) << 1) |
        (lsb_page[static_cast<std::size_t>(2 * local + 1)] & 1);
    const CellPairLevels expected = reduce_encode(value);
    EXPECT_EQ(wl.cell_level(first), expected.first) << "pair " << p;
    EXPECT_EQ(wl.cell_level(second), expected.second) << "pair " << p;
  }
}

TEST(PageLayoutTest, UpperMsbZeroLeavesLsbLevels) {
  ReducedWordline wl(8);
  wl.program_lower({std::vector<std::uint8_t>{1, 0, 0, 1}});
  wl.program_middle({std::vector<std::uint8_t>{1, 1, 0, 0}});
  const int before[8] = {wl.cell_level(0), wl.cell_level(1), wl.cell_level(2),
                         wl.cell_level(3), wl.cell_level(4), wl.cell_level(5),
                         wl.cell_level(6), wl.cell_level(7)};
  wl.program_upper({std::vector<std::uint8_t>{0, 0, 0, 0}});
  for (int b = 0; b < 8; ++b) {
    EXPECT_EQ(wl.cell_level(b), before[b]) << "bitline " << b;
  }
}

TEST(PageLayoutTest, SingleCellDistortionDamagesOnePageGroupOnly) {
  Rng rng(4);
  ReducedWordline wl(32);
  const auto lower = random_bits(wl.page_bits(), rng);
  const auto middle = random_bits(wl.page_bits(), rng);
  const auto upper = random_bits(wl.page_bits(), rng);
  wl.program_lower(lower);
  wl.program_middle(middle);
  wl.program_upper(upper);
  // Distort one even cell downward: the middle page (odd pairs) must be
  // untouched.
  const int victim = 4;  // even bitline
  if (wl.cell_level(victim) > 0) {
    wl.set_cell_level(victim, wl.cell_level(victim) - 1);
  } else {
    wl.set_cell_level(victim, 1);
  }
  EXPECT_EQ(wl.read(ReducedPageKind::kMiddle), middle);
}

TEST(PageLayoutDeathTest, EnforcesProgramOrder) {
  ReducedWordline wl(8);
  const std::vector<std::uint8_t> bits(4, 0);
  EXPECT_DEATH(wl.program_upper(bits), "precondition");
  wl.program_lower(bits);
  EXPECT_DEATH(wl.program_lower(bits), "precondition");
  EXPECT_DEATH(wl.program_upper(bits), "precondition");  // middle missing
}

TEST(PageLayoutDeathTest, BitlineCountMustBeMultipleOfFour) {
  EXPECT_DEATH(ReducedWordline(6), "precondition");
  EXPECT_DEATH(ReducedWordline(0), "precondition");
}

}  // namespace
}  // namespace flex::flexlevel
