#include "flexlevel/access_eval.h"

#include <gtest/gtest.h>

namespace flex::flexlevel {
namespace {

AccessEval::Config small_config(std::uint64_t pool_pages = 8) {
  AccessEval::Config cfg;
  cfg.pool_capacity_pages = pool_pages;
  cfg.hotness = {.filter_count = 4,
                 .bits_per_filter = 1 << 12,
                 .hashes = 2,
                 .window_accesses = 16};
  return cfg;
}

// Reads `lpn` enough times (spread over hotness windows) to reach the top
// frequency level.
void make_hot(AccessEval& eval, std::uint64_t lpn, int extra_levels) {
  for (int i = 0; i < 100; ++i) {
    eval.on_read(lpn, extra_levels);
    eval.on_read(900'000 + static_cast<std::uint64_t>(i), 0);  // filler
  }
}

TEST(AccessEvalTest, SensingBuckets) {
  const AccessEval eval(small_config());
  EXPECT_EQ(eval.sensing_level_bucket(0), 1);
  EXPECT_EQ(eval.sensing_level_bucket(1), 2);
  EXPECT_EQ(eval.sensing_level_bucket(6), 2);  // M = 2 caps the bucket
}

TEST(AccessEvalTest, FreqLevels) {
  const AccessEval eval(small_config());  // 4 filters, N = 2
  EXPECT_EQ(eval.freq_level(0), 1);
  EXPECT_EQ(eval.freq_level(1), 1);
  EXPECT_EQ(eval.freq_level(2), 2);  // half the filters = hot
  EXPECT_EQ(eval.freq_level(4), 2);
}

TEST(AccessEvalTest, ColdDataIsNotMigrated) {
  AccessEval eval(small_config());
  // A single hard-decision read: L_f = 1, L_sensing = 1, product 1 <= 2.
  const AccessDecision d = eval.on_read(5, 0);
  EXPECT_FALSE(d.migrate_to_reduced);
  EXPECT_FALSE(d.evicted.has_value());
  EXPECT_FALSE(eval.is_reduced(5));
}

TEST(AccessEvalTest, HotSoftReadDataIsMigrated) {
  AccessEval eval(small_config());
  make_hot(eval, 5, /*extra_levels=*/2);
  EXPECT_TRUE(eval.is_reduced(5));
  EXPECT_GE(eval.pool_size(), 1u);
}

TEST(AccessEvalTest, HotHardReadDataStaysNormal) {
  // High read frequency alone is not HLO: with 0 extra sensing levels the
  // product L_f * L_sensing = 2 does not exceed the threshold.
  AccessEval eval(small_config());
  make_hot(eval, 5, /*extra_levels=*/0);
  EXPECT_FALSE(eval.is_reduced(5));
}

TEST(AccessEvalTest, ColdSoftReadDataStaysNormal) {
  AccessEval eval(small_config());
  const AccessDecision d = eval.on_read(5, 6);  // first read, deep soft
  EXPECT_FALSE(d.migrate_to_reduced);
}

TEST(AccessEvalTest, PoolNeverExceedsCapacity) {
  AccessEval eval(small_config(4));
  for (std::uint64_t lpn = 0; lpn < 20; ++lpn) {
    make_hot(eval, lpn, 4);
    EXPECT_LE(eval.pool_size(), 4u);
  }
  EXPECT_EQ(eval.pool_size(), 4u);
}

TEST(AccessEvalTest, EvictionIsLeastRecentlyRead) {
  AccessEval eval(small_config(2));
  make_hot(eval, 1, 4);
  make_hot(eval, 2, 4);
  ASSERT_TRUE(eval.is_reduced(1));
  ASSERT_TRUE(eval.is_reduced(2));
  // Touch 1 so 2 becomes the LRU, then admit 3.
  eval.on_read(1, 4);
  make_hot(eval, 3, 4);
  EXPECT_TRUE(eval.is_reduced(3));
  EXPECT_TRUE(eval.is_reduced(1));
  EXPECT_FALSE(eval.is_reduced(2));  // evicted
}

TEST(AccessEvalTest, EvictionIsReportedToCaller) {
  AccessEval eval(small_config(1));
  make_hot(eval, 1, 4);
  ASSERT_TRUE(eval.is_reduced(1));
  // Hotting up a second page must evict page 1 and say so.
  bool saw_eviction = false;
  for (int i = 0; i < 100 && !saw_eviction; ++i) {
    const AccessDecision d = eval.on_read(2, 4);
    if (d.evicted.has_value()) {
      EXPECT_EQ(*d.evicted, 1u);
      saw_eviction = true;
    }
    eval.on_read(900'000 + static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_TRUE(saw_eviction);
  EXPECT_FALSE(eval.is_reduced(1));
}

TEST(AccessEvalTest, FullPoolOnlyChurnsForMaximallyHotData) {
  AccessEval eval(small_config(2));
  make_hot(eval, 1, 4);
  make_hot(eval, 2, 4);
  ASSERT_EQ(eval.pool_size(), 2u);
  // A page at half-hotness (enough to qualify into a non-full pool) must
  // not displace members once the pool is full.
  AccessDecision d = eval.on_read(3, 4);
  d = eval.on_read(3, 4);  // hotness likely 1-2 here: below filter_count
  EXPECT_FALSE(d.migrate_to_reduced);
  EXPECT_TRUE(eval.is_reduced(1));
  EXPECT_TRUE(eval.is_reduced(2));
}

TEST(AccessEvalTest, InvalidateRemovesFromPool) {
  AccessEval eval(small_config());
  make_hot(eval, 7, 4);
  ASSERT_TRUE(eval.is_reduced(7));
  eval.on_invalidate(7);
  EXPECT_FALSE(eval.is_reduced(7));
  eval.on_invalidate(7);  // idempotent
}

TEST(AccessEvalTest, ShrinkCapacityEvictsLruTail) {
  AccessEval eval(small_config(4));
  make_hot(eval, 1, 4);
  make_hot(eval, 2, 4);
  make_hot(eval, 3, 4);
  ASSERT_EQ(eval.pool_size(), 3u);
  eval.on_read(1, 0);  // 1 becomes most recent: eviction order is 2, 3, 1
  const auto evicted = eval.shrink_capacity(1);
  EXPECT_EQ(eval.pool_capacity(), 1u);
  EXPECT_EQ(eval.pool_size(), 1u);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_TRUE(eval.is_reduced(1));
  EXPECT_FALSE(eval.is_reduced(2));
  EXPECT_FALSE(eval.is_reduced(3));
}

TEST(AccessEvalTest, ShrinkCapacityIsMonotoneAndFloored) {
  AccessEval eval(small_config(8));
  // Growing back is ignored: retirement is permanent, so is the shrink.
  EXPECT_TRUE(eval.shrink_capacity(3).empty());
  EXPECT_EQ(eval.pool_capacity(), 3u);
  EXPECT_TRUE(eval.shrink_capacity(100).empty());
  EXPECT_EQ(eval.pool_capacity(), 3u);
  // A penalty larger than the budget floors at one page, not zero.
  EXPECT_TRUE(eval.shrink_capacity(0).empty());
  EXPECT_EQ(eval.pool_capacity(), 1u);
}

TEST(AccessEvalTest, ReducedPageReadsDoNotReMigrate) {
  AccessEval eval(small_config());
  make_hot(eval, 7, 4);
  ASSERT_TRUE(eval.is_reduced(7));
  const AccessDecision d = eval.on_read(7, 0);
  EXPECT_FALSE(d.migrate_to_reduced);
  EXPECT_FALSE(d.evicted.has_value());
}

}  // namespace
}  // namespace flex::flexlevel
