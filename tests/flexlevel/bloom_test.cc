#include "flexlevel/bloom.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace flex::flexlevel {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1 << 14, 3);
  Rng rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.next());
  for (const auto k : keys) filter.insert(k);
  for (const auto k : keys) EXPECT_TRUE(filter.contains(k));
}

TEST(BloomFilterTest, FalsePositiveRateBounded) {
  BloomFilter filter(1 << 14, 2);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) filter.insert(rng.next());
  int false_positives = 0;
  const int probes = 20'000;
  for (int i = 0; i < probes; ++i) {
    if (filter.contains(rng.next() | (1ULL << 63))) ++false_positives;
  }
  // n/m = 1000/16384, k=2 -> theoretical fp ~ (1-e^{-2n/m})^2 ~ 1.3%.
  EXPECT_LT(static_cast<double>(false_positives) / probes, 0.05);
}

TEST(BloomFilterTest, ClearEmpties) {
  BloomFilter filter(1 << 10, 2);
  filter.insert(42);
  ASSERT_TRUE(filter.contains(42));
  filter.clear();
  EXPECT_FALSE(filter.contains(42));
}

TEST(BloomFilterTest, RoundsBitsUpToPowerOfTwo) {
  BloomFilter filter(100, 1);
  EXPECT_EQ(filter.bit_count(), 128u);
}

TEST(MultiBloomTest, HotnessGrowsWithRepeatedReads) {
  MultiBloomHotness hot({.filter_count = 4,
                         .bits_per_filter = 1 << 12,
                         .hashes = 2,
                         .window_accesses = 100});
  // One access registers in the current filter only.
  EXPECT_EQ(hot.record(7), 1);
  EXPECT_EQ(hot.hotness(7), 1);
  // Accesses spread over several windows accumulate filter hits; the
  // filter that rotated most recently may not have seen the key yet, so
  // steady-state hotness is filter_count or filter_count - 1.
  for (int i = 0; i < 400; ++i) {
    hot.record(7);
    hot.record(static_cast<std::uint64_t>(1000 + i));  // window filler
  }
  EXPECT_GE(hot.hotness(7), 3);
}

TEST(MultiBloomTest, ColdKeysStayCold) {
  MultiBloomHotness hot({.filter_count = 4,
                         .bits_per_filter = 1 << 14,
                         .hashes = 2,
                         .window_accesses = 50});
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) hot.record(rng.below(100));
  // A key never accessed should (almost surely) show hotness 0.
  EXPECT_LE(hot.hotness(999'999'999ULL), 1);
}

TEST(MultiBloomTest, RotationAgesOutOldKeys) {
  MultiBloomHotness hot({.filter_count = 3,
                         .bits_per_filter = 1 << 12,
                         .hashes = 2,
                         .window_accesses = 10});
  hot.record(42);
  EXPECT_GE(hot.hotness(42), 1);
  // Three full window rotations without touching 42 clear every filter that
  // contained it.
  for (int i = 0; i < 35; ++i) hot.record(static_cast<std::uint64_t>(100 + i));
  EXPECT_EQ(hot.hotness(42), 0);
}

TEST(MultiBloomTest, HotnessNeverExceedsFilterCount) {
  MultiBloomHotness hot({.filter_count = 2,
                         .bits_per_filter = 1 << 12,
                         .hashes = 2,
                         .window_accesses = 5});
  for (int i = 0; i < 200; ++i) hot.record(1);
  EXPECT_LE(hot.hotness(1), 2);
}

}  // namespace
}  // namespace flex::flexlevel
