#include "flexlevel/reduced_program.h"

#include <gtest/gtest.h>

namespace flex::flexlevel {
namespace {

TEST(ReducedProgramTest, FirstStepMapsLsbsToLevels01) {
  // Table 2, "1st program" rows: cells rise to level 1 iff their bit is 1.
  EXPECT_EQ(program_lsbs(0b00).levels, (CellPairLevels{0, 0}));
  EXPECT_EQ(program_lsbs(0b01).levels, (CellPairLevels{0, 1}));
  EXPECT_EQ(program_lsbs(0b10).levels, (CellPairLevels{1, 0}));
  EXPECT_EQ(program_lsbs(0b11).levels, (CellPairLevels{1, 1}));
}

TEST(ReducedProgramTest, MsbZeroFreezesLevels) {
  for (int lsbs = 0; lsbs < 4; ++lsbs) {
    const PairProgramState s1 = program_lsbs(lsbs);
    const PairProgramState s2 = program_msb(s1, 0);
    EXPECT_EQ(s2.levels, s1.levels) << "lsbs=" << lsbs;
    EXPECT_TRUE(s2.msb_programmed);
  }
}

TEST(ReducedProgramTest, MsbOneAppliesTable2Transitions) {
  // Table 2, "2nd program" rows.
  EXPECT_EQ(program_msb(program_lsbs(0b00), 1).levels,
            (CellPairLevels{2, 2}));
  EXPECT_EQ(program_msb(program_lsbs(0b01), 1).levels,
            (CellPairLevels{0, 2}));
  EXPECT_EQ(program_msb(program_lsbs(0b10), 1).levels,
            (CellPairLevels{2, 0}));
  EXPECT_EQ(program_msb(program_lsbs(0b11), 1).levels,
            (CellPairLevels{2, 1}));
}

TEST(ReducedProgramTest, TransitionsNeverLowerVth) {
  // NAND constraint: programming can only raise V_th.
  for (int lsbs = 0; lsbs < 4; ++lsbs) {
    for (int msb = 0; msb < 2; ++msb) {
      const PairProgramState s1 = program_lsbs(lsbs);
      const PairProgramState s2 = program_msb(s1, msb);
      EXPECT_GE(s2.levels.first, s1.levels.first);
      EXPECT_GE(s2.levels.second, s1.levels.second);
    }
  }
}

TEST(ReducedProgramTest, TwoStepsLandOnTable1) {
  for (int value = 0; value < 8; ++value) {
    const PairProgramState s = program_value(value);
    EXPECT_EQ(s.levels, reduce_encode(value)) << "value=" << value;
    EXPECT_TRUE(s.lsbs_programmed);
    EXPECT_TRUE(s.msb_programmed);
  }
}

TEST(ReducedProgramTest, SecondStepTargetMatchesEncoding) {
  for (int lsbs = 0; lsbs < 4; ++lsbs) {
    for (int msb = 0; msb < 2; ++msb) {
      EXPECT_EQ(second_step_target(lsbs, msb),
                reduce_encode((msb << 2) | lsbs));
    }
  }
}

TEST(ReducedProgramDeathTest, EnforcesStepOrder) {
  PairProgramState blank;
  EXPECT_DEATH((void)program_msb(blank, 1), "precondition");
  const PairProgramState done = program_value(5);
  EXPECT_DEATH((void)program_msb(done, 1), "precondition");
  EXPECT_DEATH((void)program_lsbs(4), "precondition");
}

}  // namespace
}  // namespace flex::flexlevel
