#include "flexlevel/reduce_mapper.h"

#include <gtest/gtest.h>

#include "flexlevel/reduce_code.h"

namespace flex::flexlevel {
namespace {

TEST(ReduceMapperTest, GroupShape) {
  const ReduceCodeMapper mapper;
  EXPECT_EQ(mapper.cells_per_group(), 2);
  EXPECT_EQ(mapper.bits_per_group(), 3);
}

TEST(ReduceMapperTest, RoundTripAllPatterns) {
  const ReduceCodeMapper mapper;
  for (int value = 0; value < 8; ++value) {
    const std::uint8_t bits_in[3] = {
        static_cast<std::uint8_t>((value >> 2) & 1),
        static_cast<std::uint8_t>((value >> 1) & 1),
        static_cast<std::uint8_t>(value & 1)};
    int levels[2];
    mapper.to_levels(bits_in, levels);
    const CellPairLevels expected = reduce_encode(value);
    EXPECT_EQ(levels[0], expected.first);
    EXPECT_EQ(levels[1], expected.second);
    std::uint8_t bits_out[3];
    mapper.to_bits(std::span<const int>(levels, 2), bits_out);
    EXPECT_EQ(bits_out[0], bits_in[0]);
    EXPECT_EQ(bits_out[1], bits_in[1]);
    EXPECT_EQ(bits_out[2], bits_in[2]);
  }
}

TEST(ReduceMapperTest, DecodesUnusedCombination) {
  const ReduceCodeMapper mapper;
  const int levels[2] = {1, 2};
  std::uint8_t bits[3];
  mapper.to_bits(levels, bits);
  EXPECT_EQ(bits[0], 1);  // value 100
  EXPECT_EQ(bits[1], 0);
  EXPECT_EQ(bits[2], 0);
}

TEST(ReduceMapperTest, ClampsOutOfRangeReadLevels) {
  const ReduceCodeMapper mapper;
  const int levels[2] = {-1, 7};
  std::uint8_t bits[3];
  mapper.to_bits(levels, bits);  // must not crash; clamps to {0, 2}
  EXPECT_EQ(((bits[0] << 2) | (bits[1] << 1) | bits[2]), 0b101);
}

TEST(ReduceMapperDeathTest, SpanSizesChecked) {
  const ReduceCodeMapper mapper;
  int levels[1] = {0};
  std::uint8_t bits[3] = {};
  EXPECT_DEATH(mapper.to_bits(std::span<const int>(levels, 1), bits),
               "precondition");
}

}  // namespace
}  // namespace flex::flexlevel
