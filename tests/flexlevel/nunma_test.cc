#include "flexlevel/nunma.h"

#include <gtest/gtest.h>

namespace flex::flexlevel {
namespace {

TEST(NunmaTest, Table3Voltages) {
  const auto n1 = nunma_config(NunmaScheme::kNunma1);
  EXPECT_DOUBLE_EQ(n1.read_ref(0), 2.65);
  EXPECT_DOUBLE_EQ(n1.read_ref(1), 3.55);
  EXPECT_DOUBLE_EQ(n1.verify(1), 2.71);
  EXPECT_DOUBLE_EQ(n1.verify(2), 3.61);
  EXPECT_DOUBLE_EQ(n1.vpp(), 0.15);

  const auto n2 = nunma_config(NunmaScheme::kNunma2);
  EXPECT_DOUBLE_EQ(n2.verify(1), 2.70);
  EXPECT_DOUBLE_EQ(n2.verify(2), 3.65);

  const auto n3 = nunma_config(NunmaScheme::kNunma3);
  EXPECT_DOUBLE_EQ(n3.verify(1), 2.75);
  EXPECT_DOUBLE_EQ(n3.verify(2), 3.70);
}

TEST(NunmaTest, AllReducedConfigsHaveThreeLevels) {
  for (const auto scheme : kNunmaSchemes) {
    EXPECT_EQ(nunma_config(scheme).levels(), 3);
  }
  EXPECT_EQ(nunma_config(NunmaScheme::kBasic).levels(), 3);
}

TEST(NunmaTest, NonUniformMarginsFavourLevel2) {
  // The whole point of NUNMA: the fragile top level gets the bigger
  // retention margin.
  for (const auto scheme :
       {NunmaScheme::kNunma2, NunmaScheme::kNunma3}) {
    const auto cfg = nunma_config(scheme);
    EXPECT_GT(cfg.retention_margin(2), cfg.retention_margin(1))
        << nunma_name(scheme);
  }
}

TEST(NunmaTest, RetentionMarginOrderingAcrossSchemes) {
  // Higher verify voltage = more retention margin: NUNMA3 > NUNMA2 > NUNMA1
  // at level 2.
  const double m1 = nunma_config(NunmaScheme::kNunma1).retention_margin(2);
  const double m2 = nunma_config(NunmaScheme::kNunma2).retention_margin(2);
  const double m3 = nunma_config(NunmaScheme::kNunma3).retention_margin(2);
  EXPECT_LT(m1, m2);
  EXPECT_LT(m2, m3);
}

TEST(NunmaTest, C2cMarginTradeoff) {
  // ...and symmetrically less C2C headroom below the next reference.
  const auto n1 = nunma_config(NunmaScheme::kNunma1);
  const auto n3 = nunma_config(NunmaScheme::kNunma3);
  EXPECT_GT(n1.c2c_margin(1), n3.c2c_margin(1));
}

TEST(NunmaTest, TopMarginsBeatBaselineRetention) {
  // Every NUNMA config gives its fragile top level more retention margin
  // than the baseline cell's 50 mV.
  const auto baseline = nand::LevelConfig::baseline_mlc();
  const double base_margin = baseline.retention_margin(baseline.levels() - 1);
  for (const auto scheme : kNunmaSchemes) {
    const auto cfg = nunma_config(scheme);
    EXPECT_GT(cfg.retention_margin(2), base_margin) << nunma_name(scheme);
  }
}

TEST(NunmaTest, NamesAreDistinct) {
  EXPECT_NE(nunma_name(NunmaScheme::kNunma1), nunma_name(NunmaScheme::kNunma2));
  EXPECT_EQ(nunma_name(NunmaScheme::kNunma3), "NUNMA 3");
}

}  // namespace
}  // namespace flex::flexlevel
