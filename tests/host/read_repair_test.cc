// RAID-10 replica failover + read-repair: a persistent integrity
// mismatch on one mirror is served from its sibling and written back
// clean, and a bounded scrub drives the array to convergence — every
// replica of every page verifies again (byte-equal mirrors in host
// terms). Companion to the drive-level integrity property tests.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "host/array.h"
#include "nand/level_config.h"
#include "ssd/simulator.h"
#include "trace/trace.h"

namespace flex::host {
namespace {

constexpr Duration kGap = 250'000;  // ns between scripted arrivals

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

class ReadRepairTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1234);
    const reliability::BerEngine::Config mc{.wordlines = 32,
                                            .bitlines = 128,
                                            .rounds = 2,
                                            .coupling = {}};
    static const reliability::GrayMapper gray;
    static const flexlevel::ReduceCodeMapper reduce;
    normal_ = new reliability::BerModel(nand::LevelConfig::baseline_mlc(),
                                        gray, reliability::RetentionModel{},
                                        mc, rng);
    reduced_ = new reliability::BerModel(
        flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
        reliability::RetentionModel{}, mc, rng);
  }
  static void TearDownTestSuite() {
    delete normal_;
    delete reduced_;
    normal_ = nullptr;
    reduced_ = nullptr;
  }

  /// 4-drive RAID-10 of small drives (4 chips x 64 blocks x 32 pages)
  /// with the zero-cost host profile; integrity on, optionally with the
  /// persistent corruption kinds armed (silent flips stay off here —
  /// they cure locally and never involve the mirror).
  static ArrayConfig raid10(double corruption_rate) {
    ArrayConfig cfg;
    cfg.drives = 4;
    cfg.replication_factor = 2;
    cfg.stripe_pages = 16;
    cfg.queue_pair.doorbell_latency = 0;
    cfg.queue_pair.completion_latency = 0;
    const LinkSpec free_link{.latency = 0, .gb_per_s = 0.0};
    cfg.interconnect.requester_link = free_link;
    cfg.interconnect.switch_fabric = free_link;
    cfg.interconnect.drive_link = free_link;

    ssd::SsdConfig& drive = cfg.drive;
    drive.scheme = ssd::Scheme::kLdpcInSsd;
    drive.ftl.spec.page_size_bytes = 4096;
    drive.ftl.spec.pages_per_block = 32;
    drive.ftl.spec.blocks_per_chip = 64;
    drive.ftl.spec.chips = 4;
    drive.ftl.over_provisioning = 0.27;
    drive.ftl.gc_low_watermark = 4;
    drive.ftl.initial_pe_cycles = 6000;
    drive.min_prefill_age = kDay;
    drive.max_prefill_age = kMonth;
    drive.write_buffer_pages = 64;
    drive.write_buffer_flush_batch = 8;
    drive.access_eval.pool_capacity_pages = 1024;
    drive.access_eval.hotness = {.filter_count = 4,
                                 .bits_per_filter = 1 << 14,
                                 .hashes = 2,
                                 .window_accesses = 512};
    drive.integrity.enabled = true;
    if (corruption_rate > 0.0) {
      drive.faults.enabled = true;
      drive.faults.misdirected_write_rate = corruption_rate;
      drive.faults.torn_relocation_rate = corruption_rate * 10;
    }
    return cfg;
  }

  static std::unique_ptr<ArraySimulator> build(const ArrayConfig& cfg) {
    auto array = ArraySimulator::Builder(*normal_, *reduced_)
                     .config(cfg)
                     .Build();
    EXPECT_TRUE(array.ok()) << array.status().message();
    return std::move(array).value();
  }

  /// Deterministic open-loop mix over [0, footprint): mostly reads so
  /// failover/repair opportunities dominate, enough writes for GC churn.
  static std::vector<trace::Request> mixed_trace(std::uint64_t requests,
                                                 std::uint64_t footprint,
                                                 SimTime base) {
    std::vector<trace::Request> trace;
    trace.reserve(requests);
    for (std::uint64_t i = 0; i < requests; ++i) {
      const std::uint64_t h = mix64(i ^ 0x1E67'D1C0ULL);
      trace.push_back({.arrival = base + static_cast<SimTime>(i * kGap),
                       .is_write = (h % 10) == 0,
                       .lpn = mix64(h) % footprint,
                       .pages = 1});
    }
    return trace;
  }

  /// One scrub pass: every footprint page read twice back-to-back, so
  /// round-robin replica steering serves both mirrors.
  static std::vector<trace::Request> scrub_trace(std::uint64_t footprint,
                                                 SimTime base) {
    std::vector<trace::Request> scrub;
    scrub.reserve(footprint * 2);
    for (std::uint64_t hpn = 0; hpn < footprint; ++hpn) {
      for (std::uint64_t copy = 0; copy < 2; ++copy) {
        scrub.push_back(
            {.arrival = base + static_cast<SimTime>((hpn * 2 + copy) * kGap),
             .is_write = false,
             .lpn = hpn,
             .pages = 1});
      }
    }
    return scrub;
  }

  /// Host pages of [0, footprint) with a replica failing the medium
  /// audit. Zero means the mirrors are byte-equal in host terms: each
  /// copy verifies as its drive's current acknowledged generation, and
  /// both mirrors consumed the identical host write stream. (Drive-local
  /// version counters legitimately differ — preconditioning overwrites
  /// come from per-drive RNG streams — so they are not compared.)
  static std::uint64_t corrupt_pages(const ArraySimulator& array,
                                     std::uint64_t footprint) {
    const VolumeMapper& volume = array.volume();
    std::uint64_t corrupt = 0;
    for (std::uint64_t hpn = 0; hpn < footprint; ++hpn) {
      const auto loc = volume.locate(hpn);
      for (std::uint32_t r = 0; r < volume.replicas(); ++r) {
        if (!array.drive(volume.drive_of(loc.group, r))
                 .page_verifies(loc.dlpn)) {
          ++corrupt;
          break;
        }
      }
    }
    return corrupt;
  }

  static reliability::BerModel* normal_;
  static reliability::BerModel* reduced_;
};

reliability::BerModel* ReadRepairTest::normal_ = nullptr;
reliability::BerModel* ReadRepairTest::reduced_ = nullptr;

TEST_F(ReadRepairTest, FaultFreeArrayNeverFailsOver) {
  auto array = build(raid10(0.0));
  const std::uint64_t footprint = 4000;
  array->prefill(footprint);
  array->run_segment(mixed_trace(10'000, footprint, 0));
  const ArrayResults& r = array->results();
  EXPECT_EQ(r.integrity_failovers, 0u);
  EXPECT_EQ(r.read_repairs, 0u);
  for (const auto& d : r.drive) {
    EXPECT_GT(d.integrity_verified_reads, 0u);
    EXPECT_EQ(d.integrity_mismatch_reads, 0u);
    EXPECT_EQ(d.integrity_undetected_reads, 0u);
  }
  EXPECT_EQ(corrupt_pages(*array, footprint), 0u);
}

TEST_F(ReadRepairTest, CorruptReplicaIsRepairedFromItsMirror) {
  // Targeted convergence: pick one host page with a persistently
  // corrupt replica, read it twice (round-robin hits both mirrors —
  // one read lands on the corrupt copy, flags it, fails over, and
  // writes the clean data back), then re-audit that page.
  auto array = build(raid10(2e-3));
  const std::uint64_t footprint = 4000;
  array->prefill(footprint);
  array->run_segment(mixed_trace(10'000, footprint, 0));

  const VolumeMapper& volume = array->volume();
  SimTime base = static_cast<SimTime>(10'000 * kGap) + 1'000'000'000'000LL;
  std::uint64_t repaired_pages = 0;
  for (std::uint64_t hpn = 0; hpn < footprint && repaired_pages < 4; ++hpn) {
    const auto loc = volume.locate(hpn);
    bool corrupt = false;
    for (std::uint32_t r = 0; r < volume.replicas(); ++r) {
      if (!array->drive(volume.drive_of(loc.group, r))
               .page_verifies(loc.dlpn)) {
        corrupt = true;
      }
    }
    if (!corrupt) continue;
    const std::uint64_t repairs_before = array->results().read_repairs;
    // A repair program can itself misdirect; the pair of reads is
    // retried a few times until the page audits clean on both mirrors.
    for (int pass = 0; pass < 5; ++pass) {
      std::vector<trace::Request> reads;
      for (std::uint64_t copy = 0; copy < 2; ++copy) {
        reads.push_back({.arrival = base + static_cast<SimTime>(copy * kGap),
                         .is_write = false,
                         .lpn = hpn,
                         .pages = 1});
      }
      base += 1'000'000'000LL;
      array->run_segment(reads);
      bool clean = true;
      for (std::uint32_t r = 0; r < volume.replicas(); ++r) {
        const auto& drive = array->drive(volume.drive_of(loc.group, r));
        if (!drive.page_verifies(loc.dlpn)) clean = false;
      }
      if (clean) break;
    }
    for (std::uint32_t r = 0; r < volume.replicas(); ++r) {
      EXPECT_TRUE(array->drive(volume.drive_of(loc.group, r))
                      .page_verifies(loc.dlpn))
          << "hpn " << hpn << " replica " << r;
    }
    EXPECT_GT(array->results().read_repairs, repairs_before)
        << "hpn " << hpn;
    ++repaired_pages;
  }
  ASSERT_GT(repaired_pages, 0u);  // the run must have corrupted something
}

TEST_F(ReadRepairTest, ScrubConvergesToByteEqualMirrors) {
  // The bench's convergence loop, in miniature: after a faulty run,
  // bounded scrub passes (each page read twice) repair every corrupt
  // replica from its sibling until the whole footprint audits clean.
  auto array = build(raid10(2e-3));
  const std::uint64_t footprint = 4000;
  array->prefill(footprint);
  array->run_segment(mixed_trace(15'000, footprint, 0));

  ASSERT_GT(corrupt_pages(*array, footprint), 0u);
  SimTime base = static_cast<SimTime>(15'000 * kGap);
  for (std::uint32_t pass = 0; pass < 5; ++pass) {
    if (corrupt_pages(*array, footprint) == 0) break;
    base += 1'000'000'000'000LL;  // 1000 s of slack between passes
    array->run_segment(scrub_trace(footprint, base));
    base += static_cast<SimTime>(footprint * 2 * kGap);
  }
  EXPECT_EQ(corrupt_pages(*array, footprint), 0u);

  const ArrayResults& r = array->results();
  EXPECT_GT(r.integrity_failovers, 0u);
  EXPECT_GT(r.read_repairs, 0u);
  std::uint64_t undetected = 0;
  for (const auto& d : r.drive) undetected += d.integrity_undetected_reads;
  EXPECT_EQ(undetected, 0u);
}

}  // namespace
}  // namespace flex::host
