#include "host/queue_pair.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "ssd/event_queue.h"

namespace flex::host {
namespace {

/// Transport with fixed per-direction delays and a capture log.
class FakeTransport : public QueuePairSet::Transport {
 public:
  Duration command_delay = 0;
  Duration completion_delay = 0;

  SimTime deliver_command(const HostCommand&, SimTime now) override {
    return now + command_delay;
  }
  SimTime deliver_completion(const HostCommand&, SimTime now) override {
    return now + completion_delay;
  }
};

/// Dispatcher with a fixed service time, recording dispatch and
/// completion order by request_slot.
class FakeDispatcher : public QueuePairSet::Dispatcher {
 public:
  Duration service = 0;

  Duration dispatch(const HostCommand& cmd, SimTime) override {
    dispatched.push_back(cmd.request_slot);
    return service;
  }
  void complete(const HostCommand& cmd,
                const CommandTiming& timing) override {
    completed.push_back(cmd.request_slot);
    timings.push_back(timing);
  }

  std::vector<std::uint64_t> dispatched;
  std::vector<std::uint64_t> completed;
  std::vector<CommandTiming> timings;
};

HostCommand cmd(std::uint64_t id, std::uint32_t qp = 0) {
  HostCommand c;
  c.request_slot = id;
  c.qp = qp;
  c.submit_bytes = 64;
  c.complete_bytes = 64;
  return c;
}

TEST(QueuePairTest, ZeroLatencyRunsInlineAtSubmit) {
  ssd::EventQueue kernel;
  FakeTransport transport;
  FakeDispatcher dispatcher;
  QueuePairConfig config;
  config.doorbell_latency = 0;
  config.completion_latency = 0;
  QueuePairSet qps(config, kernel, transport, dispatcher);

  qps.submit(cmd(7), 0);
  // With every stage at zero cost the whole lifecycle completed inside
  // submit(): nothing was ever scheduled on the kernel.
  EXPECT_EQ(kernel.pending(), 0u);
  ASSERT_EQ(dispatcher.completed.size(), 1u);
  EXPECT_EQ(dispatcher.completed[0], 7u);
  EXPECT_EQ(qps.outstanding(), 0u);
}

TEST(QueuePairTest, SqDepthBoundsInFlightCommands) {
  ssd::EventQueue kernel;
  FakeTransport transport;
  FakeDispatcher dispatcher;
  dispatcher.service = 100;
  QueuePairConfig config;
  config.sq_depth = 2;
  config.doorbell_latency = 0;
  config.completion_latency = 0;
  QueuePairSet qps(config, kernel, transport, dispatcher);

  for (std::uint64_t i = 0; i < 5; ++i) qps.submit(cmd(i), 0);
  EXPECT_EQ(qps.stats().backlogged, 3u);
  EXPECT_EQ(qps.stats().sq_high_water, 2u);
  EXPECT_EQ(qps.stats().backlog_high_water, 3u);
  kernel.run_all();
  // The backlog drained in submission order as SQ slots freed.
  EXPECT_EQ(dispatcher.completed,
            (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(qps.outstanding(), 0u);
}

TEST(QueuePairTest, CqDepthStallsCompletions) {
  ssd::EventQueue kernel;
  FakeTransport transport;
  FakeDispatcher dispatcher;
  dispatcher.service = 10;
  QueuePairConfig config;
  config.sq_depth = 8;
  config.cq_depth = 1;
  config.doorbell_latency = 0;
  config.completion_latency = 50;  // slow host consumption
  QueuePairSet qps(config, kernel, transport, dispatcher);

  for (std::uint64_t i = 0; i < 4; ++i) qps.submit(cmd(i), 0);
  kernel.run_all();
  // All four finished service at t=10 but only one CQ slot exists; the
  // other three stalled until the host consumed each predecessor.
  EXPECT_EQ(qps.stats().cq_stalls, 3u);
  EXPECT_EQ(dispatcher.completed, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(dispatcher.timings.back().done, 10 + 4 * 50);
}

TEST(QueuePairTest, RoundRobinAlternatesAcrossQueuePairs) {
  ssd::EventQueue kernel;
  FakeTransport transport;
  FakeDispatcher dispatcher;
  QueuePairConfig config;
  config.queue_pairs = 2;
  config.doorbell_latency = 5;  // serialise fetches so arbitration matters
  config.completion_latency = 0;
  QueuePairSet qps(config, kernel, transport, dispatcher);

  // Three commands on QP0, three on QP1, all doorbell'd at t=0.
  for (std::uint64_t i = 0; i < 3; ++i) qps.submit(cmd(i, 0), 0);
  for (std::uint64_t i = 10; i < 13; ++i) qps.submit(cmd(i, 1), 0);
  kernel.run_all();
  EXPECT_EQ(dispatcher.dispatched,
            (std::vector<std::uint64_t>{0, 10, 1, 11, 2, 12}));
}

TEST(QueuePairTest, WeightedArbitrationServesInWeightProportion) {
  ssd::EventQueue kernel;
  FakeTransport transport;
  FakeDispatcher dispatcher;
  QueuePairConfig config;
  config.queue_pairs = 2;
  config.arbitration = Arbitration::kWeighted;
  config.qp_weights = {3.0, 1.0};
  config.doorbell_latency = 5;
  config.completion_latency = 0;
  QueuePairSet qps(config, kernel, transport, dispatcher);

  for (std::uint64_t i = 0; i < 8; ++i) qps.submit(cmd(i, 0), 0);
  for (std::uint64_t i = 100; i < 108; ++i) qps.submit(cmd(i, 1), 0);
  kernel.run_all();
  // Smooth WRR at 3:1 interleaves the first 8 fetches as 6 from QP0 and
  // 2 from QP1 — weight proportion, not starvation.
  std::uint32_t qp0 = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    if (dispatcher.dispatched[i] < 100) ++qp0;
  }
  EXPECT_EQ(qp0, 6u);
  ASSERT_EQ(dispatcher.dispatched.size(), 16u);
}

TEST(QueuePairTest, CompletionsConsumeInServiceOrderPerQueuePair) {
  ssd::EventQueue kernel;
  FakeTransport transport;
  FakeDispatcher dispatcher;
  QueuePairConfig config;
  config.doorbell_latency = 0;
  config.completion_latency = 7;
  QueuePairSet qps(config, kernel, transport, dispatcher);

  // Distinct service times; the host still consumes CQEs serially in
  // completion order, 7 ns apart.
  FakeDispatcher* d = &dispatcher;
  d->service = 30;
  qps.submit(cmd(0), 0);
  d->service = 10;
  qps.submit(cmd(1), 0);
  d->service = 20;
  qps.submit(cmd(2), 0);
  kernel.run_all();
  EXPECT_EQ(dispatcher.completed, (std::vector<std::uint64_t>{1, 2, 0}));
  EXPECT_EQ(dispatcher.timings[0].done, 10 + 7);
  EXPECT_EQ(dispatcher.timings[1].done, 20 + 7);
  EXPECT_EQ(dispatcher.timings[2].done, 30 + 7);
}

TEST(QueuePairTest, TimingStagesAreMonotone) {
  ssd::EventQueue kernel;
  FakeTransport transport;
  transport.command_delay = 3;
  transport.completion_delay = 4;
  FakeDispatcher dispatcher;
  dispatcher.service = 25;
  QueuePairConfig config;
  config.doorbell_latency = 2;
  config.completion_latency = 6;
  QueuePairSet qps(config, kernel, transport, dispatcher);

  qps.submit(cmd(0), 100);
  kernel.run_all();
  ASSERT_EQ(dispatcher.timings.size(), 1u);
  const CommandTiming& t = dispatcher.timings[0];
  EXPECT_EQ(t.submitted, 100);
  EXPECT_EQ(t.doorbell, 103);
  EXPECT_EQ(t.fetched, 105);
  EXPECT_EQ(t.service_end, 130);
  EXPECT_EQ(t.done, 130 + 4 + 6);
}

}  // namespace
}  // namespace flex::host
