#include "host/volume.h"

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace flex::host {
namespace {

VolumeMapper make(std::uint32_t drives, std::uint32_t replicas,
                  std::uint64_t stripe, std::uint64_t drive_pages) {
  return VolumeMapper({.drives = drives,
                       .replication_factor = replicas,
                       .stripe_pages = stripe,
                       .drive_pages = drive_pages});
}

TEST(VolumeMapperTest, CapacityIsGroupsTimesDrivePages) {
  EXPECT_EQ(make(1, 1, 64, 1000).logical_pages(), 1000u);
  EXPECT_EQ(make(8, 1, 64, 1000).logical_pages(), 8000u);
  EXPECT_EQ(make(8, 2, 64, 1000).logical_pages(), 4000u);
  EXPECT_EQ(make(8, 8, 64, 1000).logical_pages(), 1000u);
}

TEST(VolumeMapperTest, LocateIsABijection) {
  // Every host LPN maps to a distinct (group, dlpn) in range, and
  // host_lpn() inverts locate() — exhaustively, on several shapes
  // including stripes that don't divide the drive capacity.
  const struct {
    std::uint32_t drives, replicas;
    std::uint64_t stripe, drive_pages;
  } shapes[] = {
      {1, 1, 64, 500},  {4, 1, 8, 96},  {4, 2, 8, 96},
      {6, 3, 5, 100},   {8, 1, 7, 63},  {3, 1, 1, 50},
  };
  for (const auto& s : shapes) {
    const VolumeMapper vol =
        make(s.drives, s.replicas, s.stripe, s.drive_pages);
    std::set<std::pair<std::uint32_t, std::uint64_t>> seen;
    for (std::uint64_t h = 0; h < vol.logical_pages(); ++h) {
      const VolumeMapper::Location loc = vol.locate(h);
      ASSERT_LT(loc.group, vol.groups());
      ASSERT_LT(loc.dlpn, s.drive_pages);
      ASSERT_TRUE(seen.insert({loc.group, loc.dlpn}).second)
          << "host lpn " << h << " collides";
      ASSERT_EQ(vol.host_lpn(loc), h);
    }
    EXPECT_EQ(seen.size(), vol.logical_pages());
  }
}

TEST(VolumeMapperTest, SplitCoversEveryPageExactlyOnce) {
  const VolumeMapper vol = make(4, 1, 8, 96);
  std::vector<VolumeMapper::Extent> extents;
  for (const std::uint64_t lpn : {0ull, 5ull, 7ull, 31ull, 380ull}) {
    for (const std::uint32_t pages : {1u, 3u, 8u, 17u, 64u}) {
      vol.split(lpn, pages, extents);
      std::uint32_t covered = 0;
      std::uint64_t h = lpn;
      for (const VolumeMapper::Extent& e : extents) {
        ASSERT_GE(e.pages, 1u);
        for (std::uint32_t i = 0; i < e.pages; ++i) {
          const std::uint64_t expect = (h + i) % vol.logical_pages();
          ASSERT_EQ(vol.locate(expect),
                    (VolumeMapper::Location{e.group, e.dlpn + i}))
              << "lpn " << lpn << " pages " << pages << " offset " << covered;
        }
        h += e.pages;
        covered += e.pages;
      }
      ASSERT_EQ(covered, pages) << "lpn " << lpn;
    }
  }
}

TEST(VolumeMapperTest, SplitWrapsModuloLogicalPages) {
  // Same folding the single-drive simulator applies to out-of-range LPNs.
  const VolumeMapper vol = make(2, 1, 8, 40);
  std::vector<VolumeMapper::Extent> extents;
  vol.split(vol.logical_pages() - 2, 4, extents);
  std::uint32_t covered = 0;
  for (const auto& e : extents) covered += e.pages;
  EXPECT_EQ(covered, 4u);
  // The run restarts at host LPN 0 after the wrap.
  EXPECT_EQ(extents.back().dlpn + extents.back().pages - 1,
            vol.locate(1).dlpn);
}

TEST(VolumeMapperTest, SingleGroupSplitsToOneExtent) {
  // With one group the stripe boundaries are invisible: any in-range run
  // is a single contiguous extent on drive 0's address space.
  const VolumeMapper vol = make(2, 2, 8, 96);
  std::vector<VolumeMapper::Extent> extents;
  vol.split(3, 40, extents);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].group, 0u);
  EXPECT_EQ(extents[0].dlpn, 3u);
  EXPECT_EQ(extents[0].pages, 40u);
}

TEST(VolumeMapperTest, PrefillPagesMatchesBruteForce) {
  const struct {
    std::uint32_t drives, replicas;
    std::uint64_t stripe, drive_pages;
  } shapes[] = {{4, 1, 8, 96}, {6, 2, 5, 100}, {3, 1, 7, 63}};
  for (const auto& s : shapes) {
    const VolumeMapper vol =
        make(s.drives, s.replicas, s.stripe, s.drive_pages);
    for (const std::uint64_t host_pages : std::vector<std::uint64_t>{
             0, 1, 7, 40, vol.logical_pages() / 2, vol.logical_pages()}) {
      // Brute force: which dlpns does a sequential host fill touch on
      // each group? The claim is they are exactly [0, prefill_pages).
      std::map<std::uint32_t, std::set<std::uint64_t>> touched;
      for (std::uint64_t h = 0; h < host_pages; ++h) {
        const auto loc = vol.locate(h);
        touched[loc.group].insert(loc.dlpn);
      }
      std::uint64_t total = 0;
      for (std::uint32_t g = 0; g < vol.groups(); ++g) {
        const std::uint64_t n = vol.prefill_pages(g, host_pages);
        total += n;
        const auto& set = touched[g];
        ASSERT_EQ(set.size(), n) << "group " << g;
        if (!set.empty()) {
          EXPECT_EQ(*set.begin(), 0u);
          EXPECT_EQ(*set.rbegin(), n - 1);
        }
      }
      EXPECT_EQ(total, host_pages);
    }
  }
}

}  // namespace
}  // namespace flex::host
