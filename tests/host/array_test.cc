#include "host/array.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "ssd/simulator.h"
#include "trace/workloads.h"

namespace flex::host {
namespace {

// Shared BerModels (expensive to construct) for all array tests.
class ArrayTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1234);
    const reliability::BerEngine::Config mc{.wordlines = 32,
                                            .bitlines = 128,
                                            .rounds = 2,
                                            .coupling = {}};
    static const reliability::GrayMapper gray;
    static const flexlevel::ReduceCodeMapper reduce;
    normal_ = new reliability::BerModel(nand::LevelConfig::baseline_mlc(),
                                        gray, reliability::RetentionModel{},
                                        mc, rng);
    reduced_ = new reliability::BerModel(
        flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
        reliability::RetentionModel{}, mc, rng);
  }
  static void TearDownTestSuite() {
    delete normal_;
    delete reduced_;
    normal_ = nullptr;
    reduced_ = nullptr;
  }

  // Same small drive as the simulator tests: 4 chips x 64 blocks x 32
  // pages, ~5980 logical pages.
  static ssd::SsdConfig small_drive(ssd::Scheme scheme) {
    ssd::SsdConfig cfg;
    cfg.scheme = scheme;
    cfg.ftl.spec.page_size_bytes = 4096;
    cfg.ftl.spec.pages_per_block = 32;
    cfg.ftl.spec.blocks_per_chip = 64;
    cfg.ftl.spec.chips = 4;
    cfg.ftl.over_provisioning = 0.27;
    cfg.ftl.gc_low_watermark = 4;
    cfg.ftl.initial_pe_cycles = 6000;
    cfg.min_prefill_age = kDay;
    cfg.max_prefill_age = kMonth;
    cfg.write_buffer_pages = 64;
    cfg.write_buffer_flush_batch = 8;
    cfg.access_eval.pool_capacity_pages = 1024;
    cfg.access_eval.hotness = {.filter_count = 4,
                               .bits_per_filter = 1 << 14,
                               .hashes = 2,
                               .window_accesses = 512};
    return cfg;
  }

  /// Host layer with every cost at zero: all queue-pair stages run inline
  /// at arrival, reproducing the bare simulator's timeline.
  static ArrayConfig zero_cost_array(ssd::Scheme scheme) {
    ArrayConfig cfg;
    cfg.drive = small_drive(scheme);
    cfg.queue_pair.doorbell_latency = 0;
    cfg.queue_pair.completion_latency = 0;
    const LinkSpec free_link{.latency = 0, .gb_per_s = 0.0};
    cfg.interconnect.requester_link = free_link;
    cfg.interconnect.switch_fabric = free_link;
    cfg.interconnect.drive_link = free_link;
    return cfg;
  }

  static std::vector<trace::Request> small_trace(double read_fraction,
                                                 std::uint64_t seed,
                                                 std::uint64_t footprint =
                                                     4000) {
    trace::WorkloadParams params;
    params.name = "test";
    params.read_fraction = read_fraction;
    params.zipf_theta = 1.0;
    params.footprint_pages = footprint;
    params.mean_request_pages = 1.2;
    params.max_request_pages = 4;
    params.iops = 1500;
    params.requests = 20'000;
    return trace::generate(params, seed);
  }

  static std::unique_ptr<ArraySimulator> build(const ArrayConfig& cfg) {
    auto array = ArraySimulator::Builder(*normal_, *reduced_)
                     .config(cfg)
                     .Build();
    EXPECT_TRUE(array.ok()) << array.status().message();
    return std::move(array).value();
  }

  static reliability::BerModel* normal_;
  static reliability::BerModel* reduced_;
};

reliability::BerModel* ArrayTest::normal_ = nullptr;
reliability::BerModel* ArrayTest::reduced_ = nullptr;

void expect_stats_identical(const RunningStats& a, const RunningStats& b,
                            const char* what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.sum(), b.sum());
  if (a.count() > 0) {
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
  }
}

TEST_F(ArrayTest, SingleDriveArrayIsIdenticalToBareSimulator) {
  // The tentpole determinism claim: a 1-drive array with the zero-cost
  // host profile reproduces the bare SsdSimulator bit for bit — same
  // responses, same FTL mutations, same chip occupancy history.
  const auto trace = small_trace(0.7, 42);

  ssd::SsdSimulator bare(small_drive(ssd::Scheme::kFlexLevel), *normal_,
                         *reduced_);
  bare.prefill(4000);
  const ssd::SsdResults& expect = bare.run(trace);

  auto array = build(zero_cost_array(ssd::Scheme::kFlexLevel));
  array->prefill(4000);
  array->run_segment(trace);
  const ArrayResults& got = array->results();

  const ssd::SsdResults& drive = got.drive[0];
  expect_stats_identical(drive.read_response, expect.read_response,
                         "drive.read");
  expect_stats_identical(drive.write_response, expect.write_response,
                         "drive.write");
  expect_stats_identical(drive.all_response, expect.all_response,
                         "drive.all");
  EXPECT_EQ(drive.read_breakdown, expect.read_breakdown);
  EXPECT_EQ(drive.ftl.host_writes, expect.ftl.host_writes);
  EXPECT_EQ(drive.ftl.nand_writes, expect.ftl.nand_writes);
  EXPECT_EQ(drive.ftl.nand_erases, expect.ftl.nand_erases);
  EXPECT_EQ(drive.ftl.gc_runs, expect.ftl.gc_runs);
  EXPECT_EQ(drive.buffer_hits, expect.buffer_hits);
  EXPECT_EQ(drive.unmapped_reads, expect.unmapped_reads);
  EXPECT_EQ(drive.migrations_to_reduced, expect.migrations_to_reduced);
  EXPECT_EQ(drive.migrations_to_normal, expect.migrations_to_normal);
  EXPECT_EQ(drive.pool_pages, expect.pool_pages);
  EXPECT_EQ(drive.sensing_level_reads, expect.sensing_level_reads);
  ASSERT_EQ(drive.chip_stats.size(), expect.chip_stats.size());
  for (std::size_t c = 0; c < drive.chip_stats.size(); ++c) {
    EXPECT_EQ(drive.chip_stats[c], expect.chip_stats[c]) << "chip " << c;
  }
  // And the host-level view adds exactly zero latency on top.
  expect_stats_identical(got.read_response, expect.read_response,
                         "host.read");
  expect_stats_identical(got.write_response, expect.write_response,
                         "host.write");
}

TEST_F(ArrayTest, ReplicasServeTheSameDataVersion) {
  // Every host write fans out to all replicas, so whichever copy a read
  // is steered to holds the same data generation: per-LPN FTL versions
  // agree across the group at all times (GC/migrations move data without
  // bumping versions).
  ArrayConfig cfg = zero_cost_array(ssd::Scheme::kLdpcInSsd);
  cfg.drives = 2;
  cfg.replication_factor = 2;
  cfg.replica_policy = ReplicaPolicy::kShortestQueue;
  auto array = build(cfg);
  array->prefill(4000);
  array->run_segment(small_trace(0.5, 9));

  const auto& a = array->drive(0).ftl();
  const auto& b = array->drive(1).ftl();
  ASSERT_EQ(a.logical_pages(), b.logical_pages());
  for (std::uint64_t lpn = 0; lpn < a.logical_pages(); ++lpn) {
    ASSERT_EQ(a.data_version(lpn), b.data_version(lpn)) << "lpn " << lpn;
  }
  EXPECT_EQ(a.stats().host_writes, b.stats().host_writes);
}

TEST_F(ArrayTest, ReplicaPoliciesSpreadReadsAcrossCopies) {
  for (const ReplicaPolicy policy :
       {ReplicaPolicy::kRoundRobin, ReplicaPolicy::kShortestQueue,
        ReplicaPolicy::kDisturbAware}) {
    ArrayConfig cfg = zero_cost_array(ssd::Scheme::kLdpcInSsd);
    cfg.drives = 2;
    cfg.replication_factor = 2;
    cfg.replica_policy = policy;
    auto array = build(cfg);
    array->prefill(4000);
    array->run_segment(small_trace(0.9, 5));
    const ArrayResults& results = array->results();
    EXPECT_GT(results.replica_reads[0], 0u) << static_cast<int>(policy);
    EXPECT_GT(results.replica_reads[1], 0u) << static_cast<int>(policy);
    EXPECT_GT(results.drive[0].read_response.count(), 0u);
    EXPECT_GT(results.drive[1].read_response.count(), 0u);
  }
}

TEST_F(ArrayTest, StripingDistributesLoadAcrossDrives) {
  // RAID-0 over 4 drives with real (non-zero) host costs: every drive
  // serves work, every request completes, and per-drive footprints stay
  // inside per-drive capacity.
  ArrayConfig cfg;
  cfg.drive = small_drive(ssd::Scheme::kLdpcInSsd);
  cfg.drives = 4;
  cfg.stripe_pages = 16;
  const auto trace = small_trace(0.7, 21, /*footprint=*/16'000);
  auto array = build(cfg);
  EXPECT_EQ(array->logical_pages(),
            4 * array->drive(0).ftl().logical_pages());
  array->prefill(16'000);
  array->run_segment(trace);
  const ArrayResults& results = array->results();
  EXPECT_EQ(results.all_response.count(), trace.size());
  for (std::uint32_t d = 0; d < 4; ++d) {
    EXPECT_GT(results.drive[d].read_response.count(), 0u) << "drive " << d;
    EXPECT_GT(results.qp[d].submitted, 0u) << "drive " << d;
    EXPECT_GT(results.drive_link[d].transfers, 0u) << "drive " << d;
  }
  EXPECT_GT(results.switch_fabric.transfers, 0u);
  // Host costs are real now: end-to-end response exceeds drive-local.
  EXPECT_GT(results.read_response.mean(),
            results.drive[0].read_response.mean());
  EXPECT_GT(results.read_breakdown.submit + results.read_breakdown.queue +
                results.read_breakdown.completion,
            0);
}

TEST_F(ArrayTest, GlobalAccessEvalFeedsSiblingReplicas) {
  ArrayConfig cfg = zero_cost_array(ssd::Scheme::kFlexLevel);
  cfg.drives = 2;
  cfg.replication_factor = 2;
  cfg.replica_policy = ReplicaPolicy::kRoundRobin;

  cfg.access_eval_scope = AccessEvalScope::kPerDrive;
  auto per_drive = build(cfg);
  per_drive->prefill(4000);
  per_drive->run_segment(small_trace(0.9, 33));
  EXPECT_EQ(per_drive->results().observe_feeds, 0u);

  cfg.access_eval_scope = AccessEvalScope::kGlobal;
  auto global = build(cfg);
  global->prefill(4000);
  global->run_segment(small_trace(0.9, 33));
  EXPECT_GT(global->results().observe_feeds, 0u);
}

TEST_F(ArrayTest, TenantStatsPartitionTheWorkload) {
  ArrayConfig cfg = zero_cost_array(ssd::Scheme::kLdpcInSsd);
  cfg.drives = 2;
  cfg.stripe_pages = 16;
  cfg.tenants = 2;
  auto trace = small_trace(0.8, 14, /*footprint=*/8000);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].tenant = static_cast<std::uint16_t>(i % 2);
  }
  auto array = build(cfg);
  array->prefill(8000);
  array->run_segment(trace);
  const ArrayResults& results = array->results();
  ASSERT_EQ(results.tenant.size(), 2u);
  EXPECT_GT(results.tenant[0].read_response.count(), 0u);
  EXPECT_GT(results.tenant[1].read_response.count(), 0u);
  EXPECT_EQ(results.tenant[0].read_response.count() +
                results.tenant[1].read_response.count(),
            results.read_response.count());
}

TEST_F(ArrayTest, ValidateRejectsInconsistentConfigs) {
  const auto status_of = [&](const ArrayConfig& cfg) {
    return cfg.Validate();
  };
  ArrayConfig base = zero_cost_array(ssd::Scheme::kLdpcInSsd);
  EXPECT_TRUE(status_of(base).ok());

  ArrayConfig cfg = base;
  cfg.drives = 2;
  cfg.replication_factor = 3;
  EXPECT_FALSE(status_of(cfg).ok());  // more copies than drives

  cfg = base;
  cfg.drives = 6;
  cfg.replication_factor = 4;
  EXPECT_FALSE(status_of(cfg).ok());  // groups don't divide evenly

  cfg = base;
  cfg.queue_pair.qp_weights = {2.0, 1.0};
  cfg.queue_pair.queue_pairs = 2;
  EXPECT_FALSE(status_of(cfg).ok());  // weights armed, arbitration RR

  cfg.queue_pair.arbitration = Arbitration::kWeighted;
  EXPECT_TRUE(status_of(cfg).ok());

  cfg = base;
  cfg.replica_policy = ReplicaPolicy::kShortestQueue;
  EXPECT_FALSE(status_of(cfg).ok());  // steering with a single copy

  cfg = base;
  cfg.access_eval_scope = AccessEvalScope::kGlobal;
  cfg.drives = 2;
  cfg.replication_factor = 2;
  EXPECT_FALSE(status_of(cfg).ok());  // global scope needs kFlexLevel

  cfg.drive.scheme = ssd::Scheme::kFlexLevel;
  EXPECT_TRUE(status_of(cfg).ok());

  cfg = base;
  cfg.drive.qos.enabled = true;
  cfg.drive.qos.tenants = 1;
  EXPECT_FALSE(status_of(cfg).ok());  // drive-level QoS double-queues

  cfg = base;
  cfg.drives = 2;
  cfg.drive_overrides.assign(2, base.drive);
  EXPECT_TRUE(status_of(cfg).ok());
  cfg.drive_overrides[1].ftl.spec.blocks_per_chip += 1;
  EXPECT_FALSE(status_of(cfg).ok());  // geometry mismatch under striping

  cfg = base;
  cfg.drive_overrides.assign(3, base.drive);
  EXPECT_FALSE(status_of(cfg).ok());  // override count != drives
}

TEST_F(ArrayTest, ResetMeasurementsScopesTheWindow) {
  ArrayConfig cfg = zero_cost_array(ssd::Scheme::kLdpcInSsd);
  cfg.drives = 2;
  cfg.stripe_pages = 16;
  const auto trace = small_trace(0.7, 3, /*footprint=*/8000);
  const auto split =
      trace.begin() + static_cast<std::ptrdiff_t>(trace.size() / 2);
  auto array = build(cfg);
  array->prefill(8000);
  array->run_segment({trace.begin(), split});
  array->reset_measurements();
  array->run_segment({split, trace.end()});
  const ArrayResults& results = array->results();
  EXPECT_EQ(results.all_response.count(),
            static_cast<std::uint64_t>(trace.end() - split));
  // Stripe-straddling requests fan into one command per touched drive,
  // so per-drive counts sum to at least the request count.
  EXPECT_GE(results.drive[0].all_response.count() +
                results.drive[1].all_response.count(),
            results.all_response.count());
  EXPECT_GT(results.window, 0);
}

}  // namespace
}  // namespace flex::host
