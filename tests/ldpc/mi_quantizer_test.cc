#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ldpc/channel.h"
#include "ldpc/decoder.h"
#include "ldpc/encoder.h"
#include "ldpc/qc_code.h"

namespace flex::ldpc {
namespace {

TEST(MiQuantizerTest, BoundariesDeterministicSortedAnchored) {
  for (const int levels : {1, 2, 4, 6}) {
    const auto a = mi_sensing_boundaries(1.3e-2, levels);
    const auto b = mi_sensing_boundaries(1.3e-2, levels);
    EXPECT_EQ(a, b) << levels;  // table lookup: bitwise-stable
    ASSERT_EQ(a.size(), static_cast<std::size_t>(levels) + 1);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    // The hard reference never moves: the threshold estimator owns it.
    EXPECT_TRUE(std::find(a.begin(), a.end(), 0.0) != a.end());
  }
}

TEST(MiQuantizerTest, SameBucketSharesPlacement) {
  // Within one of the 16-per-decade BER buckets the table returns the one
  // placement optimized for the bucket's representative BER.
  const auto a = mi_sensing_boundaries(1.00e-2, 4);
  const auto b = mi_sensing_boundaries(1.02e-2, 4);
  EXPECT_EQ(a, b);
}

TEST(MiQuantizerTest, RaisesMutualInformation) {
  // The whole premise: at the same sensing budget the MI-optimized
  // placement never loses to uniform tiling, and strictly beats it in the
  // soft regimes the ladder actually exercises.
  for (const double ber : {4.0e-3, 1.3e-2, 5.0e-2, 1.2e-1}) {
    for (const int levels : {1, 2, 4, 6}) {
      const double uniform =
          SensingChannel(ber, levels, QuantizerKind::kUniform)
              .mutual_information();
      const double mi =
          SensingChannel(ber, levels, QuantizerKind::kMiOptimized)
              .mutual_information();
      EXPECT_GE(mi, uniform - 1e-12) << ber << "/" << levels;
    }
  }
  EXPECT_GT(SensingChannel(5.0e-2, 4, QuantizerKind::kMiOptimized)
                .mutual_information(),
            SensingChannel(5.0e-2, 4, QuantizerKind::kUniform)
                .mutual_information());
}

TEST(MiQuantizerTest, HardChannelUnchanged) {
  // Zero extra levels has a single immovable boundary: both quantizers are
  // the same binary symmetric channel.
  const SensingChannel uniform(1.0e-2, 0, QuantizerKind::kUniform);
  const SensingChannel mi(1.0e-2, 0, QuantizerKind::kMiOptimized);
  EXPECT_EQ(uniform.region_llrs(), mi.region_llrs());
}

TEST(MiQuantizerTest, PooledTransmitMatchesAllocating) {
  const SensingChannel channel(2.0e-2, 4, QuantizerKind::kMiOptimized);
  std::vector<std::uint8_t> bits(513);
  Rng data_rng(11);
  for (auto& bit : bits) bit = static_cast<std::uint8_t>(data_rng.below(2));
  Rng rng_a(42);
  Rng rng_b(42);
  const std::vector<float> allocated = channel.transmit(bits, rng_a);
  // Pre-dirty the pooled vector: the overload must fully overwrite it.
  std::vector<float> pooled(7, -1.0f);
  channel.transmit(bits, rng_b, pooled);
  EXPECT_EQ(allocated, pooled);
}

TEST(MiQuantizerTest, MiBeatsUniformThroughRealDecoder) {
  // End-to-end: at a raw BER past the uniform quantizer's comfort zone the
  // MI placement converts the extra soft information into decoder success.
  // Fixed seeds and trial counts make the comparison exact and stable.
  const QcLdpcCode code = QcLdpcCode::test_code();
  const Encoder encoder(code);
  const Decoder decoder(code);
  const double ber = 7.0e-2;
  const int levels = 4;
  const int trials = 24;
  int successes[2] = {0, 0};
  std::int64_t iterations[2] = {0, 0};
  for (const QuantizerKind kind :
       {QuantizerKind::kUniform, QuantizerKind::kMiOptimized}) {
    const SensingChannel channel(ber, levels, kind);
    const int idx = kind == QuantizerKind::kMiOptimized ? 1 : 0;
    Rng rng(20260807);  // same noise realizations for both quantizers
    std::vector<std::uint8_t> message(static_cast<std::size_t>(code.k()));
    std::vector<float> llrs;
    for (int t = 0; t < trials; ++t) {
      for (auto& bit : message) {
        bit = static_cast<std::uint8_t>(rng.below(2));
      }
      const auto codeword = encoder.encode(message);
      channel.transmit(codeword, rng, llrs);
      const auto result = decoder.decode(llrs);
      successes[idx] += result.success ? 1 : 0;
      iterations[idx] += result.iterations;
    }
  }
  EXPECT_GE(successes[1], successes[0]);
  // Not vacuous: the MI quantizer must actually win on at least one axis.
  EXPECT_TRUE(successes[1] > successes[0] || iterations[1] < iterations[0])
      << "mi: " << successes[1] << "/" << iterations[1]
      << " uniform: " << successes[0] << "/" << iterations[0];
}

}  // namespace
}  // namespace flex::ldpc
