// Property tests on the sensing channel: the LLRs it hands the decoder must
// be *statistically honest* — the empirical log-likelihood ratio of each
// region, measured over millions of transmissions, has to match the value
// the channel assigned. A dishonest channel silently corrupts every
// decoder experiment built on it.
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ldpc/channel.h"

namespace flex::ldpc {
namespace {

class ChannelHonesty
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(ChannelHonesty, AssignedLlrMatchesEmpiricalLogRatio) {
  const auto [ber, levels] = GetParam();
  const SensingChannel channel(ber, levels);
  Rng rng(42);

  // Count region occupancy conditioned on the transmitted bit.
  const auto regions = static_cast<std::size_t>(channel.regions());
  std::vector<double> count0(regions, 1.0);  // +1 smoothing
  std::vector<double> count1(regions, 1.0);
  const int n = 400'000;
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = static_cast<std::uint8_t>(i & 1);
  }
  const auto llrs = channel.transmit(bits, rng);
  // Recover each observation's region from its (unique) LLR value.
  std::map<float, std::size_t> region_of_llr;
  for (std::size_t r = 0; r < regions; ++r) {
    region_of_llr[channel.region_llrs()[r]] = r;
  }
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const std::size_t r = region_of_llr.at(llrs[i]);
    (bits[i] ? count1 : count0)[r] += 1.0;
  }

  for (std::size_t r = 0; r < regions; ++r) {
    const double p0 = count0[r] / (n / 2.0);
    const double p1 = count1[r] / (n / 2.0);
    if (count0[r] + count1[r] < 500.0) continue;  // too rare to judge
    const double empirical = std::log(p0 / p1);
    const double assigned = channel.region_llrs()[r];
    // Saturated regions are clamped to +-30 by design; otherwise the
    // assigned LLR must match the data within sampling noise.
    if (std::abs(assigned) >= 29.9) continue;
    EXPECT_NEAR(empirical, assigned, 0.35 + 0.1 * std::abs(assigned))
        << "region " << r << " ber=" << ber << " levels=" << levels;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BerLevelGrid, ChannelHonesty,
    ::testing::Values(std::make_tuple(4e-3, 0), std::make_tuple(4e-3, 2),
                      std::make_tuple(1e-2, 1), std::make_tuple(1e-2, 4),
                      std::make_tuple(2e-2, 6), std::make_tuple(5e-2, 6)));

class ChannelShape : public ::testing::TestWithParam<int> {};

TEST_P(ChannelShape, MoreLevelsNeverLoseInformation) {
  // Mutual-information proxy: expected |LLR| grows (weakly) with levels.
  const double ber = 1.2e-2;
  Rng rng(7);
  auto mean_reliability = [&](int levels) {
    const SensingChannel channel(ber, levels);
    std::vector<std::uint8_t> bits(100'000, 0);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
    const auto llrs = channel.transmit(bits, rng);
    double sum = 0.0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      // Signed reliability: positive when pointing at the true bit.
      sum += (bits[i] ? -llrs[i] : llrs[i]);
    }
    return sum / static_cast<double>(bits.size());
  };
  const int levels = GetParam();
  // Each ladder step must carry at least as much signed evidence as hard
  // sensing at the same raw BER (within sampling tolerance).
  EXPECT_GE(mean_reliability(levels), mean_reliability(0) * 0.95)
      << "levels=" << levels;
}

INSTANTIATE_TEST_SUITE_P(Ladder, ChannelShape, ::testing::Values(1, 2, 4, 6));

TEST(ChannelBoundaryTest, BoundariesSortedAndContainHardReference) {
  for (const int levels : {0, 1, 2, 3, 4, 5, 6}) {
    const SensingChannel channel(8e-3, levels);
    // region_of(0 - eps) != region_of(0 + eps): the hard reference always
    // survives as a quantization boundary.
    EXPECT_NE(channel.region_of(-1e-12), channel.region_of(1e-12))
        << "levels=" << levels;
  }
}

}  // namespace
}  // namespace flex::ldpc
