#include <gtest/gtest.h>

#include "common/rng.h"
#include "ldpc/channel.h"
#include "ldpc/decoder.h"
#include "ldpc/encoder.h"
#include "ldpc/qc_code.h"

namespace flex::ldpc {
namespace {

std::vector<std::uint8_t> random_bits(int n, Rng& rng) {
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(n));
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
  return bits;
}

double success_rate(const QcLdpcCode& code, const Decoder& decoder,
                    double ber, int levels, int trials, Rng& rng) {
  const Encoder encoder(code);
  const SensingChannel channel(ber, levels);
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    const auto cw = encoder.encode(random_bits(code.k(), rng));
    const auto llrs = channel.transmit(cw, rng);
    const auto result = decoder.decode(llrs);
    if (result.success && result.bits == cw) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

TEST(SumProductTest, DecodesCleanInput) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const Decoder decoder(code, {.max_iterations = 30,
                               .normalization = 0.75f,
                               .algorithm = Decoder::Algorithm::kSumProduct});
  const Encoder encoder(code);
  Rng rng(1);
  const auto cw = encoder.encode(random_bits(code.k(), rng));
  std::vector<float> llrs(static_cast<std::size_t>(code.n()));
  for (int i = 0; i < code.n(); ++i) {
    llrs[static_cast<std::size_t>(i)] =
        cw[static_cast<std::size_t>(i)] ? -6.0f : 6.0f;
  }
  const auto result = decoder.decode(llrs);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.bits, cw);
}

TEST(SumProductTest, CorrectsModerateNoise) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const Decoder decoder(code, {.max_iterations = 30,
                               .normalization = 0.75f,
                               .algorithm = Decoder::Algorithm::kSumProduct});
  Rng rng(2);
  EXPECT_GE(success_rate(code, decoder, 3e-3, 2, 40, rng), 0.95);
}

TEST(SumProductTest, AtLeastAsStrongAsMinSumNearThreshold) {
  // Belief propagation upper-bounds min-sum; verify on the paper code in
  // the regime where min-sum starts failing.
  const QcLdpcCode code = QcLdpcCode::paper_code();
  const Decoder min_sum(code);
  const Decoder sum_product(
      code, {.max_iterations = 30,
             .normalization = 0.75f,
             .algorithm = Decoder::Algorithm::kSumProduct});
  Rng rng_a(3);
  Rng rng_b(3);  // identical channel draws for both decoders
  const double ber = 1.9e-2;
  const double ms = success_rate(code, min_sum, ber, 6, 10, rng_a);
  const double sp = success_rate(code, sum_product, ber, 6, 10, rng_b);
  EXPECT_GE(sp + 1e-9, ms);
}

TEST(SumProductTest, AgreesWithMinSumWellBelowThreshold) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const Decoder min_sum(code);
  const Decoder sum_product(
      code, {.max_iterations = 30,
             .normalization = 0.75f,
             .algorithm = Decoder::Algorithm::kSumProduct});
  Rng rng_a(4);
  Rng rng_b(4);
  EXPECT_DOUBLE_EQ(success_rate(code, min_sum, 1e-3, 2, 25, rng_a), 1.0);
  EXPECT_DOUBLE_EQ(success_rate(code, sum_product, 1e-3, 2, 25, rng_b), 1.0);
}

TEST(SumProductTest, HonestFailureReporting) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const Decoder decoder(code, {.max_iterations = 4,
                               .normalization = 0.75f,
                               .algorithm = Decoder::Algorithm::kSumProduct});
  Rng rng(5);
  std::vector<float> llrs(static_cast<std::size_t>(code.n()));
  for (auto& l : llrs) l = static_cast<float>(rng.uniform(-0.5, 0.5));
  const auto result = decoder.decode(llrs);
  if (result.success) {
    EXPECT_TRUE(code.check(result.bits));
  } else {
    EXPECT_EQ(result.iterations, 4);
  }
}

}  // namespace
}  // namespace flex::ldpc
