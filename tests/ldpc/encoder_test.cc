#include "ldpc/encoder.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ldpc/qc_code.h"

namespace flex::ldpc {
namespace {

std::vector<std::uint8_t> random_bits(int n, Rng& rng) {
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(n));
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
  return bits;
}

TEST(EncoderTest, AllZeroMessage) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const Encoder encoder(code);
  const std::vector<std::uint8_t> zero(static_cast<std::size_t>(code.k()), 0);
  const auto cw = encoder.encode(zero);
  EXPECT_TRUE(std::all_of(cw.begin(), cw.end(),
                          [](std::uint8_t b) { return b == 0; }));
}

TEST(EncoderTest, SystematicAndValid) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const Encoder encoder(code);
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto message = random_bits(code.k(), rng);
    const auto cw = encoder.encode(message);
    ASSERT_EQ(static_cast<int>(cw.size()), code.n());
    EXPECT_TRUE(std::equal(message.begin(), message.end(), cw.begin()));
    EXPECT_TRUE(code.check(cw));  // also FLEX_ENSURES'd inside
  }
}

TEST(EncoderTest, PaperCodeEncodes) {
  const QcLdpcCode code = QcLdpcCode::paper_code();
  const Encoder encoder(code);
  Rng rng(2);
  const auto message = random_bits(code.k(), rng);
  const auto cw = encoder.encode(message);
  EXPECT_TRUE(code.check(cw));
}

TEST(EncoderTest, LinearityOverGf2) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const Encoder encoder(code);
  Rng rng(3);
  const auto m1 = random_bits(code.k(), rng);
  const auto m2 = random_bits(code.k(), rng);
  std::vector<std::uint8_t> m_sum(static_cast<std::size_t>(code.k()));
  for (int i = 0; i < code.k(); ++i) {
    m_sum[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
        m1[static_cast<std::size_t>(i)] ^ m2[static_cast<std::size_t>(i)]);
  }
  const auto c1 = encoder.encode(m1);
  const auto c2 = encoder.encode(m2);
  const auto c_sum = encoder.encode(m_sum);
  for (int i = 0; i < code.n(); ++i) {
    EXPECT_EQ(c_sum[static_cast<std::size_t>(i)],
              c1[static_cast<std::size_t>(i)] ^
                  c2[static_cast<std::size_t>(i)])
        << "bit " << i;
  }
}

TEST(EncoderDeathTest, WrongMessageSize) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const Encoder encoder(code);
  const std::vector<std::uint8_t> bad(static_cast<std::size_t>(code.k() - 1),
                                      0);
  EXPECT_DEATH((void)encoder.encode(bad), "precondition");
}

}  // namespace
}  // namespace flex::ldpc
