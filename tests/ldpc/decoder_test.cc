#include "ldpc/decoder.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ldpc/channel.h"
#include "ldpc/encoder.h"
#include "ldpc/qc_code.h"

namespace flex::ldpc {
namespace {

std::vector<std::uint8_t> random_bits(int n, Rng& rng) {
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(n));
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
  return bits;
}

// Fraction of codewords decoded back to the transmitted word.
double decode_success_rate(const QcLdpcCode& code, double raw_ber,
                           int extra_levels, int trials, Rng& rng) {
  const Encoder encoder(code);
  const Decoder decoder(code);
  const SensingChannel channel(raw_ber, extra_levels);
  int success = 0;
  for (int t = 0; t < trials; ++t) {
    const auto message = random_bits(code.k(), rng);
    const auto cw = encoder.encode(message);
    const auto llrs = channel.transmit(cw, rng);
    const DecodeResult result = decoder.decode(llrs);
    if (result.success && result.bits == cw) ++success;
  }
  return static_cast<double>(success) / trials;
}

TEST(DecoderTest, NoiselessInputConvergesImmediately) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const Encoder encoder(code);
  const Decoder decoder(code);
  Rng rng(1);
  const auto cw = encoder.encode(random_bits(code.k(), rng));
  std::vector<float> llrs(static_cast<std::size_t>(code.n()));
  for (int i = 0; i < code.n(); ++i) {
    llrs[static_cast<std::size_t>(i)] =
        cw[static_cast<std::size_t>(i)] ? -8.0f : 8.0f;
  }
  const DecodeResult result = decoder.decode(llrs);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(result.bits, cw);
}

TEST(DecoderTest, CorrectsFewFlippedBits) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const Encoder encoder(code);
  const Decoder decoder(code);
  Rng rng(2);
  const auto cw = encoder.encode(random_bits(code.k(), rng));
  std::vector<float> llrs(static_cast<std::size_t>(code.n()));
  for (int i = 0; i < code.n(); ++i) {
    llrs[static_cast<std::size_t>(i)] =
        cw[static_cast<std::size_t>(i)] ? -4.0f : 4.0f;
  }
  // Flip 4 random bit beliefs.
  for (int e = 0; e < 4; ++e) {
    const auto pos = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(code.n())));
    llrs[pos] = -llrs[pos];
  }
  const DecodeResult result = decoder.decode(llrs);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.bits, cw);
  EXPECT_GT(result.iterations, 0);
}

TEST(DecoderTest, HardDecisionCorrectsLowBer) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  Rng rng(3);
  EXPECT_GE(decode_success_rate(code, 2e-3, 0, 40, rng), 0.975);
}

TEST(DecoderTest, SoftBeatsHardAtHighBer) {
  // The central claim behind Table 5: at a raw BER where hard decoding
  // collapses, soft sensing levels restore decodability.
  const QcLdpcCode code = QcLdpcCode::paper_code();
  Rng rng(4);
  // 1.3e-2 sits past the hard-decision collapse of this code (~1e-2) but
  // comfortably inside the 6-level soft region (~1.8e-2).
  const double ber = 1.3e-2;
  const double hard = decode_success_rate(code, ber, 0, 12, rng);
  const double soft = decode_success_rate(code, ber, 6, 12, rng);
  EXPECT_LT(hard, 0.5) << "hard decoding unexpectedly strong";
  EXPECT_GE(soft, 0.9) << "soft decoding unexpectedly weak";
}

TEST(DecoderTest, CorrectionCapabilityGrowsWithLevels) {
  // Monotonicity along the sensing ladder at a mid-range BER.
  const QcLdpcCode code = QcLdpcCode::paper_code();
  Rng rng(5);
  const double ber = 7.5e-3;
  const double l0 = decode_success_rate(code, ber, 0, 10, rng);
  const double l6 = decode_success_rate(code, ber, 6, 10, rng);
  EXPECT_LE(l0, l6 + 1e-9);
  EXPECT_GE(l6, 0.9);
}

TEST(DecoderTest, ReportsFailureHonestly) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const Decoder decoder(code, {.max_iterations = 5, .normalization = 0.75f});
  Rng rng(6);
  // Garbage input: success must be false (no silent wrong answers).
  std::vector<float> llrs(static_cast<std::size_t>(code.n()));
  for (auto& l : llrs) l = static_cast<float>(rng.uniform(-1.0, 1.0));
  const DecodeResult result = decoder.decode(llrs);
  if (!result.success) {
    EXPECT_EQ(result.iterations, 5);
  }
  // (If it "converged", it converged to *some* codeword — verify that.)
  if (result.success) {
    EXPECT_TRUE(code.check(result.bits));
  }
}

TEST(DecoderTest, IterationCountGrowsWithNoise) {
  const QcLdpcCode code = QcLdpcCode::paper_code();
  const Encoder encoder(code);
  const Decoder decoder(code);
  Rng rng(7);
  auto mean_iters = [&](double ber) {
    const SensingChannel channel(ber, 6);
    double total = 0;
    const int trials = 6;
    for (int t = 0; t < trials; ++t) {
      const auto cw = encoder.encode(random_bits(code.k(), rng));
      const auto llrs = channel.transmit(cw, rng);
      total += decoder.decode(llrs).iterations;
    }
    return total / trials;
  };
  EXPECT_LT(mean_iters(1e-3), mean_iters(1.2e-2));
}

}  // namespace
}  // namespace flex::ldpc
