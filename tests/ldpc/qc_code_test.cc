#include "ldpc/qc_code.h"

#include <gtest/gtest.h>

namespace flex::ldpc {
namespace {

TEST(QcCodeTest, TestCodeDimensions) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  EXPECT_EQ(code.n(), 384);
  EXPECT_EQ(code.k(), 256);
  EXPECT_EQ(code.m(), 128);
  EXPECT_NEAR(code.rate(), 2.0 / 3.0, 1e-12);
}

TEST(QcCodeTest, PaperCodeIsRate89Over4KB) {
  const QcLdpcCode code = QcLdpcCode::paper_code();
  EXPECT_EQ(code.k(), 4 * 1024 * 8);  // one 4 KB block
  EXPECT_EQ(code.n(), 36864);
  EXPECT_NEAR(code.rate(), 8.0 / 9.0, 1e-12);
}

TEST(QcCodeTest, NoResidualFourCycles) {
  EXPECT_EQ(QcLdpcCode::test_code().residual_four_cycles(), 0);
  EXPECT_EQ(QcLdpcCode::paper_code().residual_four_cycles(), 0);
}

TEST(QcCodeTest, RowAdjacencyCoversAllChecks) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const auto& rows = code.row_adjacency();
  ASSERT_EQ(static_cast<int>(rows.size()), code.m());
  for (const auto& row : rows) {
    EXPECT_GE(row.size(), 2u);  // every check touches at least two bits
    for (const auto col : row) {
      EXPECT_GE(col, 0);
      EXPECT_LT(col, code.n());
    }
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
    EXPECT_EQ(std::adjacent_find(row.begin(), row.end()), row.end());
  }
}

TEST(QcCodeTest, InfoColumnWeightAsConfigured) {
  const QcLdpcCode code(4, 12, 16, 3, /*seed=*/99);
  std::vector<int> column_weight(static_cast<std::size_t>(code.n()), 0);
  for (const auto& row : code.row_adjacency()) {
    for (const auto col : row) ++column_weight[static_cast<std::size_t>(col)];
  }
  for (int c = 0; c < code.k(); ++c) {
    EXPECT_EQ(column_weight[static_cast<std::size_t>(c)], 3) << "col " << c;
  }
}

TEST(QcCodeTest, ZeroWordIsCodeword) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const std::vector<std::uint8_t> zero(static_cast<std::size_t>(code.n()), 0);
  EXPECT_TRUE(code.check(zero));
}

TEST(QcCodeTest, RandomWordAlmostNeverCodeword) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  std::vector<std::uint8_t> word(static_cast<std::size_t>(code.n()), 0);
  word[3] = 1;  // single one violates the checks covering column 3
  EXPECT_FALSE(code.check(word));
}

TEST(QcCodeTest, DifferentSeedsDifferentCodes) {
  const QcLdpcCode a(4, 12, 16, 3, 1);
  const QcLdpcCode b(4, 12, 16, 3, 2);
  bool any_difference = false;
  for (int r = 0; r < 4 && !any_difference; ++r) {
    for (int c = 0; c < 8 && !any_difference; ++c) {
      if (a.shift_at(r, c) != b.shift_at(r, c)) any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(QcCodeTest, SameSeedReproducible) {
  const QcLdpcCode a(4, 12, 16, 3, 7);
  const QcLdpcCode b(4, 12, 16, 3, 7);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 12; ++c) {
      EXPECT_EQ(a.shift_at(r, c), b.shift_at(r, c));
    }
  }
}

TEST(QcCodeTest, ParityPartIsDualDiagonal) {
  const QcLdpcCode code = QcLdpcCode::test_code();
  const int kb = code.cols_base() - code.rows_base();
  for (int j = 1; j < code.rows_base(); ++j) {
    EXPECT_EQ(code.shift_at(j - 1, kb + j), 0);
    EXPECT_EQ(code.shift_at(j, kb + j), 0);
  }
  // First parity column: entries at rows {0, mid, last}.
  EXPECT_GE(code.shift_at(0, kb), 0);
  EXPECT_EQ(code.shift_at(code.rows_base() / 2, kb), 0);
  EXPECT_GE(code.shift_at(code.rows_base() - 1, kb), 0);
}

}  // namespace
}  // namespace flex::ldpc
