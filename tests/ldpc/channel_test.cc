#include "ldpc/channel.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace flex::ldpc {
namespace {

TEST(ChannelTest, RegionCountFollowsLevels) {
  for (int levels : {0, 1, 2, 4, 6}) {
    const SensingChannel ch(1e-2, levels);
    EXPECT_EQ(ch.regions(), levels + 2) << "levels=" << levels;
    EXPECT_EQ(static_cast<int>(ch.region_llrs().size()), levels + 2);
  }
}

TEST(ChannelTest, SigmaMatchesRawBer) {
  for (const double p : {1e-3, 4e-3, 1e-2, 5e-2}) {
    const SensingChannel ch(p, 0);
    // p = Q(1/sigma) must invert exactly.
    Rng rng(7);
    int errors = 0;
    const int n = 2'000'000;
    for (int i = 0; i < n; ++i) {
      if (rng.normal(1.0, ch.sigma()) < 0.0) ++errors;
    }
    EXPECT_NEAR(static_cast<double>(errors) / n, p, 5.0 * std::sqrt(p / n))
        << "p=" << p;
  }
}

TEST(ChannelTest, LlrsAreMonotoneAndSymmetric) {
  const SensingChannel ch(1e-2, 4);
  const auto& llrs = ch.region_llrs();
  EXPECT_TRUE(std::is_sorted(llrs.begin(), llrs.end()));
  // Symmetric boundaries around 0 give antisymmetric LLRs.
  const std::size_t n = llrs.size();
  for (std::size_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(llrs[i], -llrs[n - 1 - i], 1e-4) << "region " << i;
  }
}

TEST(ChannelTest, HardChannelLlrIsBscLlr) {
  const double p = 1e-2;
  const SensingChannel ch(p, 0);
  ASSERT_EQ(ch.regions(), 2);
  const double expected = std::log((1.0 - p) / p);
  EXPECT_NEAR(ch.region_llrs()[1], expected, 1e-6);
  EXPECT_NEAR(ch.region_llrs()[0], -expected, 1e-6);
}

TEST(ChannelTest, RegionOfRespectsBoundaries) {
  const SensingChannel ch(1e-2, 2);  // boundaries at -T, 0, +T
  EXPECT_EQ(ch.region_of(-100.0), 0);
  EXPECT_EQ(ch.region_of(100.0), ch.regions() - 1);
  EXPECT_EQ(ch.region_of(-1e-9), ch.regions() / 2 - 1);
  EXPECT_EQ(ch.region_of(1e-9), ch.regions() / 2);
}

TEST(ChannelTest, TransmitPreservesHardErrorRate) {
  const double p = 2e-2;
  const SensingChannel ch(p, 6);
  Rng rng(11);
  std::vector<std::uint8_t> bits(200'000);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
  const auto llrs = ch.transmit(bits, rng);
  int errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool decided_one = llrs[i] < 0.0f;
    if (decided_one != (bits[i] == 1)) ++errors;
  }
  // The middle boundary is still at 0, so the sign of the region LLR is the
  // hard decision.
  EXPECT_NEAR(static_cast<double>(errors) / bits.size(), p, 2e-3);
}

TEST(ChannelTest, MoreLevelsGiveFinerLlrs) {
  const SensingChannel hard(1e-2, 0);
  const SensingChannel soft(1e-2, 6);
  // Soft channel must expose low-confidence regions (|LLR| below the hard
  // channel's single magnitude).
  const float hard_mag = std::abs(hard.region_llrs()[0]);
  int low_confidence = 0;
  for (const float llr : soft.region_llrs()) {
    if (std::abs(llr) < hard_mag) ++low_confidence;
  }
  EXPECT_GE(low_confidence, 2);
}

TEST(ChannelDeathTest, RejectsDegenerateBer) {
  EXPECT_DEATH(SensingChannel(0.0, 0), "precondition");
  EXPECT_DEATH(SensingChannel(0.5, 0), "precondition");
  EXPECT_DEATH(SensingChannel(1e-3, -1), "precondition");
}

}  // namespace
}  // namespace flex::ldpc
