#include "nand/level_config.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace flex::nand {
namespace {

TEST(LevelConfigTest, BaselineIsFourLevels) {
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  EXPECT_EQ(cfg.levels(), 4);
  EXPECT_DOUBLE_EQ(cfg.read_ref(0), 2.25);
  EXPECT_DOUBLE_EQ(cfg.read_ref(1), 2.95);
  EXPECT_DOUBLE_EQ(cfg.read_ref(2), 3.65);
  EXPECT_DOUBLE_EQ(cfg.verify(1), 2.30);
  EXPECT_DOUBLE_EQ(cfg.verify(3), 3.70);
  EXPECT_DOUBLE_EQ(cfg.vpp(), 0.15);
}

TEST(LevelConfigTest, BaselineVerifyCloseToReadRef) {
  // Fig. 4(a): the normal-state verify sits 50 mV above its reference
  // (the calibrated reconstruction, DESIGN.md §5).
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  for (int l = 1; l < cfg.levels(); ++l) {
    EXPECT_NEAR(cfg.retention_margin(l), 0.05, 1e-12) << "level " << l;
  }
}

TEST(LevelConfigTest, ReadLevelThresholds) {
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  EXPECT_EQ(cfg.read_level(0.0), 0);
  EXPECT_EQ(cfg.read_level(2.24), 0);
  EXPECT_EQ(cfg.read_level(2.25), 1);
  EXPECT_EQ(cfg.read_level(2.94), 1);
  EXPECT_EQ(cfg.read_level(3.00), 2);
  EXPECT_EQ(cfg.read_level(3.65), 3);
  EXPECT_EQ(cfg.read_level(10.0), 3);
}

TEST(LevelConfigTest, SampleVthWithinIsppBand) {
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  Rng rng(1);
  for (int l = 1; l < cfg.levels(); ++l) {
    for (int i = 0; i < 2'000; ++i) {
      const Volt v = cfg.sample_vth(l, rng);
      EXPECT_GE(v, cfg.verify(l));
      EXPECT_LT(v, cfg.verify(l) + cfg.vpp());
      EXPECT_EQ(cfg.read_level(v), l);  // fresh programming reads back clean
    }
  }
}

TEST(LevelConfigTest, ErasedDistributionMoments) {
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  Rng rng(2);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const Volt v = cfg.sample_vth(0, rng);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.1, 0.01);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 0.35, 0.01);
}

TEST(LevelConfigTest, C2cMarginGeometry) {
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  // Level 1 tops out at 2.30 + 0.15; next reference is 2.95.
  EXPECT_NEAR(cfg.c2c_margin(1), 2.95 - 2.45, 1e-12);
  // Erased level: from the nominal erased mean to the first reference.
  EXPECT_NEAR(cfg.c2c_margin(0), 2.25 - 1.1, 1e-12);
  EXPECT_TRUE(std::isinf(cfg.c2c_margin(cfg.levels() - 1)));
}

TEST(LevelConfigTest, NominalOrdering) {
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  for (int l = 0; l + 1 < cfg.levels(); ++l) {
    EXPECT_LT(cfg.nominal(l), cfg.nominal(l + 1));
  }
}

TEST(LevelConfigDeathTest, RejectsVerifyBelowReference) {
  EXPECT_DEATH(LevelConfig("bad", {2.0}, {1.9}, 0.1), "precondition");
}

TEST(LevelConfigDeathTest, RejectsUnsortedReferences) {
  EXPECT_DEATH(LevelConfig("bad", {2.0, 1.5}, {2.1, 1.6}, 0.1),
               "precondition");
}

}  // namespace
}  // namespace flex::nand
