#include "nand/cell_array.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nand/level_config.h"

namespace flex::nand {
namespace {

std::vector<int> uniform_targets(int cells, int level) {
  return std::vector<int>(static_cast<std::size_t>(cells), level);
}

TEST(CellArrayTest, NoCouplingNoShift) {
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  CellArray array(4, 8);
  Rng rng(1);
  const CouplingRatios none{.gamma_x = 0.0, .gamma_y = 0.0, .gamma_xy = 0.0};
  const auto targets = uniform_targets(array.cells(), 2);
  array.program(cfg, targets, none, rng);
  for (int w = 0; w < array.wordlines(); ++w) {
    for (int b = 0; b < array.bitlines(); ++b) {
      EXPECT_DOUBLE_EQ(array.vth(w, b), array.programmed_vth(w, b));
      EXPECT_EQ(array.target_level(w, b), 2);
    }
  }
}

TEST(CellArrayTest, CouplingOnlyRaisesVth) {
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  CellArray array(8, 32);
  Rng rng(2);
  std::vector<int> targets(static_cast<std::size_t>(array.cells()));
  for (auto& t : targets) t = static_cast<int>(rng.below(4));
  array.program(cfg, targets, CouplingRatios{}, rng);
  for (int w = 0; w < array.wordlines(); ++w) {
    for (int b = 0; b < array.bitlines(); ++b) {
      EXPECT_GE(array.vth(w, b), array.programmed_vth(w, b) - 1e-12);
    }
  }
}

TEST(CellArrayTest, ErasedCellsCollectInterference) {
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  CellArray array(3, 6);
  Rng rng(3);
  // Center cell erased, all neighbours programmed to the top level.
  std::vector<int> targets(static_cast<std::size_t>(array.cells()), 3);
  targets[static_cast<std::size_t>(1 * 6 + 3)] = 0;
  array.program(cfg, targets, CouplingRatios{}, rng);
  // The erased victim has 8 programmed neighbours; expected shift is
  // substantial (> gamma_xy * smallest delta).
  EXPECT_GT(array.vth(1, 3), array.programmed_vth(1, 3) + 0.05);
}

TEST(CellArrayTest, LastProgrammedCellSeesNoInterference) {
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  CellArray array(2, 4);
  Rng rng(4);
  // All cells programmed; the final cell in program order is the last odd
  // bitline of the last wordline.
  const auto targets = uniform_targets(array.cells(), 3);
  array.program(cfg, targets, CouplingRatios{}, rng);
  EXPECT_DOUBLE_EQ(array.vth(1, 3), array.programmed_vth(1, 3));
}

TEST(CellArrayTest, EvenCellsSufferMoreThanOddOnSameWordline) {
  // Even bitlines are programmed before odd ones, so even cells receive
  // x-direction interference from both odd neighbours while odd cells get
  // none from the same wordline — the classic even/odd asymmetry.
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  CellArray array(1, 64);  // single wordline isolates the x direction
  Rng rng(5);
  double even_shift = 0.0;
  double odd_shift = 0.0;
  int even_count = 0;
  int odd_count = 0;
  for (int round = 0; round < 50; ++round) {
    const auto targets = uniform_targets(array.cells(), 3);
    array.program(cfg, targets, CouplingRatios{}, rng);
    for (int b = 1; b < 63; ++b) {
      const double shift = array.vth(0, b) - array.programmed_vth(0, b);
      if (b % 2 == 0) {
        even_shift += shift;
        ++even_count;
      } else {
        odd_shift += shift;
        ++odd_count;
      }
    }
  }
  EXPECT_GT(even_shift / even_count, odd_shift / odd_count + 0.01);
  EXPECT_NEAR(odd_shift / odd_count, 0.0, 1e-9);
}

TEST(CellArrayTest, InterferenceScalesWithGamma) {
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  Rng rng_a(6);
  Rng rng_b(6);  // same seed: identical programming randomness
  CellArray weak(4, 16);
  CellArray strong(4, 16);
  const auto targets = uniform_targets(weak.cells(), 3);
  weak.program(cfg, targets,
               {.gamma_x = 0.01, .gamma_y = 0.01, .gamma_xy = 0.001}, rng_a);
  strong.program(cfg, targets,
                 {.gamma_x = 0.10, .gamma_y = 0.10, .gamma_xy = 0.01}, rng_b);
  double weak_total = 0.0;
  double strong_total = 0.0;
  for (int w = 0; w < 4; ++w) {
    for (int b = 0; b < 16; ++b) {
      weak_total += weak.vth(w, b) - weak.programmed_vth(w, b);
      strong_total += strong.vth(w, b) - strong.programmed_vth(w, b);
    }
  }
  EXPECT_NEAR(strong_total / weak_total, 10.0, 0.5);
}

TEST(CellArrayTest, ShiftVthApplies) {
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  CellArray array(2, 4);
  Rng rng(7);
  array.program(cfg, uniform_targets(array.cells(), 1), CouplingRatios{},
                rng);
  const Volt before = array.vth(0, 0);
  array.shift_vth(0, 0, -0.2);
  EXPECT_DOUBLE_EQ(array.vth(0, 0), before - 0.2);
}

TEST(CellArrayDeathTest, TargetSizeChecked) {
  CellArray array(2, 4);
  Rng rng(8);
  const LevelConfig cfg = LevelConfig::baseline_mlc();
  const std::vector<int> wrong(3, 0);
  EXPECT_DEATH(array.program(cfg, wrong, CouplingRatios{}, rng),
               "precondition");
}

}  // namespace
}  // namespace flex::nand
