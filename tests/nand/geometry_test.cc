#include "nand/geometry.h"

#include <gtest/gtest.h>

namespace flex::nand {
namespace {

TEST(GeometryTest, Table6Defaults) {
  const NandSpec spec;
  EXPECT_EQ(spec.page_size_bytes, 16u * 1024);
  EXPECT_EQ(spec.pages_per_block * spec.page_size_bytes, 1024u * 1024);
  EXPECT_EQ(spec.blocks_per_chip, 4096u);
  EXPECT_EQ(spec.program_latency, 1000 * kMicrosecond);
  EXPECT_EQ(spec.read_latency, 90 * kMicrosecond);
  EXPECT_EQ(spec.erase_latency, 3 * kMillisecond);
  // 64 chips x 4096 blocks x 1 MB = 256 GB raw.
  EXPECT_EQ(spec.total_bytes(), 256ULL << 30);
}

class FlattenRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlattenRoundTrip, DecomposeThenFlatten) {
  const NandSpec spec;
  const std::uint64_t flat = GetParam();
  const PageAddress addr = decompose(spec, flat);
  EXPECT_EQ(flatten(spec, addr), flat);
  EXPECT_LT(addr.chip, spec.chips);
  EXPECT_LT(addr.block, spec.blocks_per_chip);
  EXPECT_LT(addr.page, spec.pages_per_block);
}

// Total pages: 64 chips x 4096 blocks x 64 pages = 16'777'216.
INSTANTIATE_TEST_SUITE_P(Corners, FlattenRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 63ULL, 64ULL,
                                           262'143ULL, 262'144ULL,
                                           16'777'215ULL));

TEST(GeometryTest, SequentialPagesShareBlocks) {
  const NandSpec spec;
  const PageAddress a = decompose(spec, 100);
  const PageAddress b = decompose(spec, 101);
  EXPECT_EQ(a.chip, b.chip);
  EXPECT_EQ(a.block, b.block);
  EXPECT_EQ(a.page + 1, b.page);
}

TEST(GeometryDeathTest, OutOfRangeFlat) {
  const NandSpec spec;
  EXPECT_DEATH((void)decompose(spec, spec.total_pages()), "precondition");
}

TEST(GeometryDeathTest, OutOfRangeAddress) {
  const NandSpec spec;
  EXPECT_DEATH((void)flatten(spec, {.chip = spec.chips, .block = 0, .page = 0}),
               "precondition");
}

}  // namespace
}  // namespace flex::nand
