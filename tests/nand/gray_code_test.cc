#include "nand/gray_code.h"

#include <gtest/gtest.h>

namespace flex::nand {
namespace {

TEST(GrayCodeTest, PaperMapping) {
  // Paper §2.1: 11, 10, 00, 01 -> levels 0, 1, 2, 3.
  EXPECT_EQ(mlc_gray_decode(0), (BitPair{.lsb = 1, .msb = 1}));
  EXPECT_EQ(mlc_gray_decode(1), (BitPair{.lsb = 1, .msb = 0}));
  EXPECT_EQ(mlc_gray_decode(2), (BitPair{.lsb = 0, .msb = 0}));
  EXPECT_EQ(mlc_gray_decode(3), (BitPair{.lsb = 0, .msb = 1}));
}

TEST(GrayCodeTest, RoundTrip) {
  for (int level = 0; level < 4; ++level) {
    EXPECT_EQ(mlc_gray_encode(mlc_gray_decode(level)), level);
  }
}

TEST(GrayCodeTest, AdjacentLevelsDifferInOneBit) {
  for (int level = 0; level < 3; ++level) {
    EXPECT_EQ(mlc_bit_distance(level, level + 1), 1)
        << "levels " << level << " and " << level + 1;
  }
}

TEST(GrayCodeTest, DistanceIsSymmetricAndZeroOnDiagonal) {
  for (int a = 0; a < 4; ++a) {
    EXPECT_EQ(mlc_bit_distance(a, a), 0);
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(mlc_bit_distance(a, b), mlc_bit_distance(b, a));
    }
  }
}

TEST(GrayCodeDeathTest, RejectsOutOfRangeLevel) {
  EXPECT_DEATH(mlc_gray_decode(4), "precondition");
  EXPECT_DEATH(mlc_gray_decode(-1), "precondition");
}

}  // namespace
}  // namespace flex::nand
