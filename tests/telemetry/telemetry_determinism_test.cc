// Determinism of telemetry under the thread-pool harness: the metrics
// snapshots of fig6a's 28 (workload, scheme) cells at 20k requests must be
// byte-identical whether the sweep runs with --jobs 1 or --jobs 8. Each
// cell owns its simulator and Telemetry context, and the harness folds
// results in index order, so the artifact files cannot depend on the job
// count — the contract the CI metrics upload relies on.
#include "bench_common.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "trace/workloads.h"

namespace flex::bench {
namespace {

std::vector<CellSpec> fig6a_cells(std::uint64_t requests) {
  const std::vector<ssd::Scheme> schemes = {
      ssd::Scheme::kBaseline, ssd::Scheme::kLdpcInSsd,
      ssd::Scheme::kLevelAdjustOnly, ssd::Scheme::kFlexLevel};
  std::vector<CellSpec> cells;
  for (const auto workload : trace::kAllWorkloads) {
    for (const auto scheme : schemes) {
      cells.push_back(
          {.workload = workload,
           .scheme = scheme,
           .pe_cycles = 6000,
           .requests_override = requests,
           .collect_metrics = true,
           .telemetry_pid = static_cast<std::int32_t>(cells.size() + 1)});
    }
  }
  return cells;
}

TEST(TelemetryDeterminismTest, Fig6aSnapshotsIdenticalAcrossJobs1And8) {
  ExperimentHarness harness;
  const auto cells = fig6a_cells(20'000);
  const auto serial = run_cells(harness, cells, 1);
  const auto parallel = run_cells(harness, cells, 8);
  ASSERT_EQ(serial.size(), cells.size());
  ASSERT_EQ(parallel.size(), cells.size());
  telemetry::MetricsSnapshot merged_serial;
  telemetry::MetricsSnapshot merged_parallel;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE(cell_label(cells[i]));
    ASSERT_FALSE(serial[i].metrics.empty());
    EXPECT_EQ(serial[i].metrics, parallel[i].metrics);
    // Byte-identical serialization, not merely equal values.
    EXPECT_EQ(serial[i].metrics.to_jsonl(), parallel[i].metrics.to_jsonl());
    merged_serial.merge(serial[i].metrics);
    merged_parallel.merge(parallel[i].metrics);
  }
  // The "_merged" line set written by --metrics-out is the index-order
  // fold of the per-cell snapshots — also job-count independent.
  EXPECT_EQ(merged_serial.to_jsonl(), merged_parallel.to_jsonl());
}

}  // namespace
}  // namespace flex::bench
