// Unit tests for the telemetry subsystem: registry handle stability,
// deterministic snapshots and merges, exporter escaping/ordering, and the
// observation-only contract on a small end-to-end simulation.
#include "telemetry/telemetry.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "ssd/simulator.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "trace/workloads.h"

namespace flex::telemetry {
namespace {

constexpr HistogramSpec kSpec{.lo = 1.0, .hi = 1000.0, .bins = 3,
                              .log_spaced = true};

TEST(FormatDoubleTest, RoundTripsExactly) {
  for (const double v : {0.0, 1.0, 0.1, -2.5, 1e-9, 3.141592653589793,
                         6.02214076e23, 1.0 / 3.0}) {
    const std::string s = format_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  // Shortest representation, not 17 noise digits.
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(2.0), "2");
}

TEST(MetricsRegistryTest, HandlesAreStableAcrossInsertions) {
  MetricsRegistry reg;
  auto& a = reg.counter("a");
  ++a.value;
  // Insert many more entries: map nodes never move, so the old reference
  // must stay valid (the bind-once contract instrumentation relies on).
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  ++a.value;
  EXPECT_EQ(&reg.counter("a"), &a);
  EXPECT_EQ(reg.snapshot().counters.at("a"), 2u);
  EXPECT_EQ(reg.snapshot().counters.size(), 101u);
}

TEST(MetricsRegistryTest, ZeroPreservesKeysAndHandles) {
  MetricsRegistry reg;
  auto& c = reg.counter("events");
  auto& g = reg.gauge("level");
  Histogram& h = reg.histogram("lat", kSpec);
  c.value = 7;
  g.value = 2.5;
  h.add(3.0);
  reg.zero();
  MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("events"), 0u);
  EXPECT_EQ(snap.gauges.at("level"), 0.0);
  EXPECT_EQ(snap.histograms.at("lat").total, 0u);
  // The old handles still feed the registry after zero().
  ++c.value;
  g.value = 1.0;
  h.add(50.0);
  snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("events"), 1u);
  EXPECT_EQ(snap.gauges.at("level"), 1.0);
  EXPECT_EQ(snap.histograms.at("lat").counts[1], 1u);
}

MetricsSnapshot make_snapshot(std::uint64_t count, double gauge,
                              double sample) {
  MetricsRegistry reg;
  reg.counter("n").value = count;
  reg.gauge("x").value = gauge;
  reg.histogram("h", kSpec).add(sample);
  return reg.snapshot();
}

TEST(MetricsSnapshotTest, MergeIsAssociative) {
  // Dyadic-rational gauge values add exactly in binary floating point, so
  // associativity can be asserted bit-exactly.
  const auto a = make_snapshot(1, 0.5, 2.0);
  const auto b = make_snapshot(10, 0.25, 30.0);
  const auto c = make_snapshot(100, 2.75, 999.0);
  auto left = a;  // (a + b) + c
  left.merge(b);
  left.merge(c);
  auto bc = b;  // a + (b + c)
  bc.merge(c);
  auto right = a;
  right.merge(bc);
  EXPECT_EQ(left, right);
  EXPECT_EQ(left.to_jsonl(), right.to_jsonl());
  EXPECT_EQ(left.counters.at("n"), 111u);
  EXPECT_EQ(left.gauges.at("x"), 3.5);
  EXPECT_EQ(left.histograms.at("h").total, 3u);
}

TEST(MetricsSnapshotTest, MergeWithEmptyIsIdentity) {
  const auto a = make_snapshot(5, 0.5, 20.0);
  auto merged = a;
  merged.merge(MetricsSnapshot{});
  EXPECT_EQ(merged, a);
  MetricsSnapshot empty;
  empty.merge(a);
  EXPECT_EQ(empty, a);
}

TEST(MetricsSnapshotTest, MergeAddsHistogramsBinWise) {
  auto a = make_snapshot(0, 0.0, 2.0);    // bin 0
  const auto b = make_snapshot(0, 0.0, 30.0);  // bin 1
  a.merge(b);
  const auto& h = a.histograms.at("h");
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{1, 1, 0}));
  EXPECT_EQ(h.total, 2u);
}

TEST(MetricsSnapshotTest, JsonlIsByteExactAndSorted) {
  MetricsRegistry reg;
  reg.counter("z.second").value = 2;
  reg.counter("a.first").value = 1;
  reg.gauge("g").value = 0.5;
  reg.histogram("h", {.lo = 1.0, .hi = 4.0, .bins = 2, .log_spaced = true})
      .add(3.0);
  // Counters then gauges then histograms, each alphabetical; numbers in
  // shortest round-trip form.
  EXPECT_EQ(reg.snapshot().to_jsonl(),
            "{\"type\":\"counter\",\"name\":\"a.first\",\"value\":1}\n"
            "{\"type\":\"counter\",\"name\":\"z.second\",\"value\":2}\n"
            "{\"type\":\"gauge\",\"name\":\"g\",\"value\":0.5}\n"
            "{\"type\":\"histogram\",\"name\":\"h\",\"lo\":1,\"hi\":4,"
            "\"log\":true,\"total\":1,\"counts\":[0,1]}\n");
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(json_escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  // Non-ASCII bytes pass through unmodified (UTF-8 stays UTF-8).
  EXPECT_EQ(json_escape("µs"), "µs");
}

TEST(ChromeTraceTest, OrdersEventsAndFormatsMicros) {
  SpanRecorder rec;
  // Recorded out of start order; the exporter must sort by start, stably.
  rec.record({.name = "late", .cat = "c", .pid = 1, .tid = 0,
              .start = 2 * kMicrosecond, .dur = 1500});
  rec.record({.name = "parent", .cat = "c", .pid = 1, .tid = kHostTrack,
              .start = 1 * kMicrosecond, .dur = 3 * kMicrosecond});
  rec.record({.name = "child", .cat = "c", .pid = 1, .tid = kHostTrack,
              .start = 1 * kMicrosecond, .dur = 1 * kMicrosecond,
              .arg0_key = "lpn", .arg0 = 42.0});
  rec.record({.name = "mark", .cat = "c", .pid = 1, .tid = kFtlTrack,
              .start = 500, .dur = 0});
  std::ostringstream out;
  write_chrome_trace(out, rec.spans());
  const std::string json = out.str();

  // Metadata first: derived thread names for every (pid, tid) present.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"chip 0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"host\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"ftl\"}"), std::string::npos);

  // Events sorted by ts; same-instant spans keep recording order.
  const auto mark = json.find("\"name\":\"mark\"");
  const auto parent = json.find("\"name\":\"parent\"");
  const auto child = json.find("\"name\":\"child\"");
  const auto late = json.find("\"name\":\"late\"");
  ASSERT_NE(mark, std::string::npos);
  EXPECT_LT(mark, parent);
  EXPECT_LT(parent, child);
  EXPECT_LT(child, late);

  // Microsecond timestamps at ns resolution; instants carry "s":"t".
  EXPECT_NE(json.find("\"ts\":0.500,\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2.000,\"dur\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"lpn\":42}"), std::string::npos);
}

TEST(TelemetryContextTest, TracerGatesSpanRecording) {
  Telemetry t;
  EXPECT_EQ(t.tracer(), nullptr);
  t.trace = true;
  ASSERT_NE(t.tracer(), nullptr);
  t.tracer()->record({.name = "x"});
  EXPECT_EQ(t.spans.size(), 1u);
}

// End-to-end on a small drive: attaching telemetry must not perturb the
// simulation, the metrics must agree with SsdResults' own counters, and
// the per-request latency breakdown must sum to the read-response total.
class TelemetrySimulationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1234);
    const reliability::BerEngine::Config mc{
        .wordlines = 32, .bitlines = 128, .rounds = 2, .coupling = {}};
    static const reliability::GrayMapper gray;
    static const flexlevel::ReduceCodeMapper reduce;
    normal_ = new reliability::BerModel(nand::LevelConfig::baseline_mlc(),
                                        gray, reliability::RetentionModel{},
                                        mc, rng);
    reduced_ = new reliability::BerModel(
        flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
        reliability::RetentionModel{}, mc, rng);
  }
  static void TearDownTestSuite() {
    delete normal_;
    delete reduced_;
    normal_ = nullptr;
    reduced_ = nullptr;
  }

  static ssd::SsdConfig small_config(ssd::Scheme scheme) {
    ssd::SsdConfig cfg;
    cfg.scheme = scheme;
    cfg.ftl.spec.page_size_bytes = 4096;
    cfg.ftl.spec.pages_per_block = 32;
    cfg.ftl.spec.blocks_per_chip = 64;
    cfg.ftl.spec.chips = 4;
    cfg.ftl.initial_pe_cycles = 6000;
    cfg.ftl.gc_low_watermark = 4;
    cfg.min_prefill_age = kDay;
    cfg.max_prefill_age = kMonth;
    cfg.write_buffer_pages = 64;
    cfg.write_buffer_flush_batch = 8;
    cfg.access_eval.pool_capacity_pages = 1024;
    cfg.access_eval.hotness = {.filter_count = 4,
                               .bits_per_filter = 1 << 14,
                               .hashes = 2,
                               .window_accesses = 512};
    return cfg;
  }

  static std::vector<trace::Request> small_trace() {
    trace::WorkloadParams params;
    params.name = "telemetry";
    params.read_fraction = 0.7;
    params.zipf_theta = 1.0;
    params.footprint_pages = 4000;
    params.mean_request_pages = 1.2;
    params.max_request_pages = 4;
    params.iops = 1500;
    params.requests = 8'000;
    return trace::generate(params, /*seed=*/777);
  }

  static ssd::SsdResults run_scheme(ssd::Scheme scheme,
                                    Telemetry* telemetry) {
    ssd::SsdSimulator sim(small_config(scheme), *normal_, *reduced_);
    sim.prefill(4000);
    sim.attach_telemetry(telemetry);
    return sim.run(small_trace());
  }

  static reliability::BerModel* normal_;
  static reliability::BerModel* reduced_;
};

reliability::BerModel* TelemetrySimulationTest::normal_ = nullptr;
reliability::BerModel* TelemetrySimulationTest::reduced_ = nullptr;

TEST_F(TelemetrySimulationTest, AttachingIsObservationOnly) {
  const auto plain = run_scheme(ssd::Scheme::kFlexLevel, nullptr);
  Telemetry telemetry;
  telemetry.trace = true;
  const auto traced = run_scheme(ssd::Scheme::kFlexLevel, &telemetry);
  // Bit-identical simulation either way.
  EXPECT_EQ(plain.read_response.count(), traced.read_response.count());
  EXPECT_EQ(plain.read_response.mean(), traced.read_response.mean());
  EXPECT_EQ(plain.all_response.sum(), traced.all_response.sum());
  EXPECT_EQ(plain.read_breakdown, traced.read_breakdown);
  EXPECT_EQ(plain.migrations_to_reduced, traced.migrations_to_reduced);
  // The plain run carries no telemetry payload.
  EXPECT_TRUE(plain.metrics.empty());
  EXPECT_TRUE(plain.spans.empty());
  EXPECT_FALSE(traced.metrics.empty());
  EXPECT_FALSE(traced.spans.empty());
}

TEST_F(TelemetrySimulationTest, MetricsAgreeWithResultsCounters) {
  Telemetry telemetry;
  const auto r = run_scheme(ssd::Scheme::kFlexLevel, &telemetry);
  EXPECT_EQ(r.metrics.counters.at("ssd.reads"), r.read_response.count());
  EXPECT_EQ(r.metrics.counters.at("ssd.writes"), r.write_response.count());
  EXPECT_EQ(r.metrics.counters.at("ssd.requests"), r.all_response.count());
  EXPECT_EQ(r.metrics.counters.at("ssd.buffer_hits"), r.buffer_hits);
  EXPECT_EQ(r.metrics.counters.at("ftl.host_writes"), r.ftl.host_writes);
  EXPECT_EQ(r.metrics.counters.at("ftl.gc_runs"), r.ftl.gc_runs);
  EXPECT_EQ(r.metrics.counters.at("policy.migrations_to_reduced"),
            r.migrations_to_reduced);
  EXPECT_EQ(r.metrics.histograms.at("ssd.read_latency_us").total,
            r.read_response.count());
}

TEST_F(TelemetrySimulationTest, BreakdownSumsToReadResponseTotal) {
  for (const auto scheme :
       {ssd::Scheme::kBaseline, ssd::Scheme::kLdpcInSsd,
        ssd::Scheme::kLevelAdjustOnly, ssd::Scheme::kFlexLevel}) {
    SCOPED_TRACE(ssd::scheme_name(scheme));
    const auto r = run_scheme(scheme, nullptr);
    ASSERT_GT(r.read_response.count(), 0u);
    // The breakdown components are integer ns summed per request; their
    // total must reproduce the read-response sum to within double
    // rounding of the seconds conversion (criterion: 1e-9 relative).
    const double total_s = to_seconds(r.read_breakdown.total());
    EXPECT_NEAR(total_s / r.read_response.sum(), 1.0, 1e-9);
    // Every component participates somewhere in the mix.
    EXPECT_GT(r.read_breakdown.sensing, 0);
    EXPECT_GT(r.read_breakdown.transfer, 0);
    EXPECT_GT(r.read_breakdown.decode, 0);
  }
}

TEST_F(TelemetrySimulationTest, SpansNestWithinTracks) {
  Telemetry telemetry;
  telemetry.trace = true;
  telemetry.pid = 7;
  run_scheme(ssd::Scheme::kLdpcInSsd, &telemetry);
  ASSERT_FALSE(telemetry.spans.spans().empty());
  for (const Span& span : telemetry.spans.spans()) {
    EXPECT_EQ(span.pid, 7);
    EXPECT_GE(span.start, 0);
    EXPECT_GE(span.dur, 0);
  }
  // The exported JSON keeps ts non-decreasing (the CI validator's core
  // invariant), checked here without a JSON parser via the raw spans.
  std::ostringstream out;
  write_chrome_trace(out, telemetry.spans.spans());
  EXPECT_NE(out.str().find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace flex::telemetry
