#include "reliability/mlc_channel.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ldpc/decoder.h"
#include "ldpc/encoder.h"
#include "ldpc/qc_code.h"
#include "nand/level_config.h"

namespace flex::reliability {
namespace {

MlcPageChannel make_channel(int pe, Hours age, int extra_levels, Rng& rng,
                            int samples = 60'000) {
  MlcPageChannel::Config cfg;
  cfg.pe_cycles = pe;
  cfg.age = age;
  cfg.extra_levels = extra_levels;
  cfg.density_samples = samples;
  return MlcPageChannel(nand::LevelConfig::baseline_mlc(), RetentionModel{},
                        cfg, rng);
}

TEST(MlcChannelTest, BoundaryLayout) {
  Rng rng(1);
  const MlcPageChannel hard = make_channel(4000, kWeek, 0, rng);
  // LSB reads strobe only the middle reference; MSB reads the outer two.
  ASSERT_EQ(hard.boundaries(MlcPageChannel::Page::kLower).size(), 1u);
  EXPECT_DOUBLE_EQ(hard.boundaries(MlcPageChannel::Page::kLower)[0], 2.95);
  ASSERT_EQ(hard.boundaries(MlcPageChannel::Page::kUpper).size(), 2u);
  EXPECT_DOUBLE_EQ(hard.boundaries(MlcPageChannel::Page::kUpper)[0], 2.25);
  EXPECT_DOUBLE_EQ(hard.boundaries(MlcPageChannel::Page::kUpper)[1], 3.65);

  const MlcPageChannel soft = make_channel(4000, kWeek, 2, rng);
  EXPECT_EQ(soft.boundaries(MlcPageChannel::Page::kLower).size(), 3u);
  EXPECT_EQ(soft.boundaries(MlcPageChannel::Page::kUpper).size(), 6u);
}

TEST(MlcChannelTest, FreshCellsAreNearlyNoiseless) {
  Rng rng(2);
  const MlcPageChannel ch = make_channel(1000, 0.0, 0, rng);
  EXPECT_LT(ch.hard_ber(MlcPageChannel::Page::kLower), 2e-4);
  // The upper page still sees the erased tail across the first reference.
  EXPECT_LT(ch.hard_ber(MlcPageChannel::Page::kUpper), 2e-3);
}

TEST(MlcChannelTest, BerGrowsWithWearAndAge) {
  Rng rng(3);
  const double young =
      make_channel(3000, kDay, 0, rng).hard_ber(MlcPageChannel::Page::kUpper);
  const double old =
      make_channel(6000, kMonth, 0, rng).hard_ber(MlcPageChannel::Page::kUpper);
  EXPECT_GT(old, young);
}

TEST(MlcChannelTest, UpperPageIsNoisierThanLower) {
  // Level 3 loses charge fastest and its drop flips the MSB (01 -> 00 has
  // equal LSBs), so the upper page dominates the retention BER — a device
  // asymmetry the equivalent-AWGN abstraction cannot express.
  Rng rng(4);
  const MlcPageChannel ch = make_channel(6000, kMonth, 0, rng, 120'000);
  EXPECT_GT(ch.hard_ber(MlcPageChannel::Page::kUpper),
            ch.hard_ber(MlcPageChannel::Page::kLower));
}

TEST(MlcChannelTest, LlrSignsTrackRegions) {
  Rng rng(5);
  const MlcPageChannel ch = make_channel(5000, kWeek, 2, rng);
  // Lower page: low-V_th regions (levels 0/1, LSB 1) must carry negative
  // LLR; high regions positive.
  const auto& llr = ch.llr_table(MlcPageChannel::Page::kLower);
  EXPECT_LT(llr.front(), 0.0f);
  EXPECT_GT(llr.back(), 0.0f);
}

TEST(MlcChannelTest, TransmitMatchesTableHardBer) {
  Rng rng(6);
  const MlcPageChannel ch = make_channel(6000, kWeek, 0, rng, 120'000);
  std::vector<std::uint8_t> bits(120'000);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
  const auto llrs = ch.transmit(MlcPageChannel::Page::kUpper, bits, rng);
  int errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if ((llrs[i] < 0.0f) != (bits[i] == 1)) ++errors;
  }
  const double empirical = static_cast<double>(errors) / bits.size();
  const double table = ch.hard_ber(MlcPageChannel::Page::kUpper);
  EXPECT_NEAR(empirical, table, 0.25 * table + 5e-4);
}

TEST(MlcChannelTest, SoftStrobesImproveDecodability) {
  // The full device-to-decoder path: LDPC codewords stored on aged upper
  // pages. At P/E 6000 / 1 month the hard page read fails; adding soft
  // strobes around the references restores decoding — Table 5's mechanism
  // demonstrated end to end on the physical channel.
  Rng rng(7);
  const ldpc::QcLdpcCode code = ldpc::QcLdpcCode::paper_code();
  const ldpc::Encoder encoder(code);
  const ldpc::Decoder decoder(code);

  auto success = [&](int extra_levels, int trials) {
    const MlcPageChannel ch =
        make_channel(6000, kMonth, extra_levels, rng, 120'000);
    int ok = 0;
    for (int t = 0; t < trials; ++t) {
      std::vector<std::uint8_t> message(static_cast<std::size_t>(code.k()));
      for (auto& b : message) b = static_cast<std::uint8_t>(rng.below(2));
      const auto cw = encoder.encode(message);
      const auto llrs = ch.transmit(MlcPageChannel::Page::kUpper, cw, rng);
      const auto result = decoder.decode(llrs);
      if (result.success && result.bits == cw) ++ok;
    }
    return static_cast<double>(ok) / trials;
  };

  EXPECT_LE(success(0, 6), 0.5);
  EXPECT_GE(success(6, 6), 0.9);
}

}  // namespace
}  // namespace flex::reliability
