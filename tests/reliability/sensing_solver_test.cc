#include "reliability/sensing_solver.h"

#include <gtest/gtest.h>

namespace flex::reliability {
namespace {

TEST(SensingSolverTest, LadderShape) {
  const SensingRequirement req;
  ASSERT_EQ(req.steps().size(), 5u);
  // Levels escalate 0, 1, 2, 4, 6 with strictly growing BER caps.
  int prev_levels = -1;
  double prev_cap = 0.0;
  for (const auto& step : req.steps()) {
    EXPECT_GT(step.extra_levels, prev_levels);
    EXPECT_GT(step.max_raw_ber, prev_cap);
    prev_levels = step.extra_levels;
    prev_cap = step.max_raw_ber;
  }
  EXPECT_EQ(req.steps().back().extra_levels, 6);
}

TEST(SensingSolverTest, HardDecisionCapIsPaperLimit) {
  // Paper §6.1: the BER limit that triggers extra sensing levels is 4e-3.
  const SensingRequirement req;
  EXPECT_DOUBLE_EQ(req.hard_decision_cap(), 4e-3);
}

TEST(SensingSolverTest, ReproducesPaperTable5FromTable4) {
  // Feed the paper's Table 4 baseline BERs; expect exactly its Table 5.
  const SensingRequirement req;
  struct Case {
    double ber;
    int expected_levels;
  };
  // Rows: P/E 3000..6000 x {1 day, 2 days, 1 week, 1 month}. (The paper's
  // "0 day" column is pre-retention and trivially 0.)
  const Case cases[] = {
      {0.00146, 0},  {0.00169, 0},  {0.00260, 0}, {0.00459, 1},   // 3000
      {0.00229, 0},  {0.00284, 0},  {0.00456, 1}, {0.00778, 4},   // 4000
      {0.00359, 0},  {0.00457, 1},  {0.00699, 2}, {0.0120, 4},    // 5000
      {0.00484, 1},  {0.00613, 2},  {0.00961, 4}, {0.0161, 6},    // 6000
  };
  for (const auto& c : cases) {
    bool ok = false;
    EXPECT_EQ(req.required_levels(c.ber, &ok), c.expected_levels)
        << "ber=" << c.ber;
    EXPECT_TRUE(ok);
  }
}

TEST(SensingSolverTest, NunmaThreeStaysHardDecision) {
  // Paper: NUNMA 3 keeps BER below 4e-3 through P/E 6000 / 1 month
  // (Table 4 worst case 0.00151), so reduced-state reads need 0 levels.
  const SensingRequirement req;
  for (const double ber : {0.000623, 0.000973, 0.00151}) {
    EXPECT_EQ(req.required_levels(ber), 0);
  }
}

TEST(SensingSolverTest, UncorrectableFlag) {
  const SensingRequirement req;
  bool ok = true;
  EXPECT_EQ(req.required_levels(0.05, &ok), 6);
  EXPECT_FALSE(ok);
  EXPECT_DOUBLE_EQ(req.max_correctable(), 2.2e-2);
}

TEST(SensingSolverTest, ZeroBerNeedsNothing) {
  const SensingRequirement req;
  bool ok = false;
  EXPECT_EQ(req.required_levels(0.0, &ok), 0);
  EXPECT_TRUE(ok);
}

TEST(SensingSolverTest, MonotoneInBer) {
  const SensingRequirement req;
  int prev = 0;
  for (double ber = 1e-4; ber < 3e-2; ber *= 1.3) {
    const int levels = req.required_levels(ber);
    EXPECT_GE(levels, prev);
    prev = levels;
  }
}

}  // namespace
}  // namespace flex::reliability
