#include "reliability/read_channel.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "reliability/ber_model.h"

namespace flex::reliability {
namespace {

BerEngine::Config small_mc() {
  return {.wordlines = 32, .bitlines = 128, .rounds = 2,
          .coupling = nand::CouplingRatios{}};
}

/// Models shared by every fixture: the heavy Monte-Carlo construction runs
/// once for the whole test binary.
struct Models {
  Rng rng{7};
  GrayMapper gray;
  flexlevel::ReduceCodeMapper reduce;
  BerModel normal{nand::LevelConfig::baseline_mlc(), gray, RetentionModel{},
                  small_mc(), rng};
  BerModel reduced{flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3),
                   reduce, RetentionModel{}, small_mc(), rng};
};

Models& models() {
  static Models* m = new Models();
  return *m;
}

ReadChannel::Params params(ReadChannelConfig config, bool disturb = false) {
  ReadChannel::Params p;
  p.config = config;
  p.disturb_enabled = disturb;
  // Accelerated stress so moderate read counts reach the disturb regime.
  p.disturb.vth_shift_per_read = 2.0e-4;
  p.pages_per_block = 64;
  p.physical_blocks = 32;
  return p;
}

TEST(ReadChannelTest, OffModeMatchesSeedArithmetic) {
  // With every feature off the facade must reproduce the seed read path's
  // exact arithmetic: cached total_ber plus the per-read disturb term,
  // pushed through the Table-5 ladder.
  auto& m = models();
  ReadChannel channel(params({}, /*disturb=*/true), m.normal, m.reduced);
  const ReadDisturbModel disturb_normal(params({}, true).disturb, m.normal);
  const ReadDisturbModel disturb_reduced(params({}, true).disturb, m.reduced);
  const SensingRequirement ladder;
  for (const bool reduced : {false, true}) {
    for (const std::uint32_t pe : {0u, 3000u, 9000u}) {
      for (const Hours age : {0.0, 10.0, 4000.0}) {
        for (const std::uint64_t reads : {0ull, 5000ull}) {
          const BerModel& model = reduced ? m.reduced : m.normal;
          double ber = model.total_ber(static_cast<int>(pe), age);
          ber += (reduced ? disturb_reduced : disturb_normal).ber(reads);
          bool expect_ok = true;
          const int expect = ladder.required_levels(ber, &expect_ok);
          const auto got = channel.assess(reduced, pe, age, /*ppn=*/17, reads);
          EXPECT_EQ(got.required_levels, expect)
              << reduced << "/" << pe << "/" << age << "/" << reads;
          EXPECT_EQ(got.correctable, expect_ok);
        }
      }
    }
  }
  EXPECT_EQ(channel.stats().calibrations, 0u);
  EXPECT_EQ(channel.ladder().steps()[0].max_raw_ber,
            SensingRequirement().steps()[0].max_raw_ber);
}

TEST(ReadChannelTest, AdaptiveNeverNeedsDeeperSensing) {
  // Threshold tracking can only return margin: across wear, age and
  // disturb the re-centered references require at most the static ladder
  // depth.
  auto& m = models();
  ReadChannelConfig adaptive;
  adaptive.enabled = true;
  adaptive.adaptive_thresholds = true;
  ReadChannel tracked(params(adaptive, true), m.normal, m.reduced);
  ReadChannel static_ref(params({}, true), m.normal, m.reduced);
  for (const std::uint32_t pe : {1000u, 6000u, 12000u}) {
    for (const Hours age : {0.0, 500.0, 4000.0}) {
      for (const std::uint64_t reads : {0ull, 2000ull, 20000ull}) {
        const auto a = tracked.assess(false, pe, age, /*ppn=*/0, reads);
        const auto s = static_ref.assess(false, pe, age, /*ppn=*/0, reads);
        EXPECT_LE(a.required_levels, s.required_levels)
            << pe << "/" << age << "/" << reads;
      }
    }
  }
}

TEST(ReadChannelTest, EstimatorConvergesUnderDriftingDisturb) {
  // A block accumulating reads drifts upward; the estimator re-calibrates
  // every calibrate_interval reads, so the required depth stays pinned at
  // the fresh-block level where the untracked channel escalates.
  auto& m = models();
  ReadChannelConfig adaptive;
  adaptive.enabled = true;
  adaptive.adaptive_thresholds = true;
  adaptive.calibrate_interval = 256;
  adaptive.tracking_gain = 1.0;
  ReadChannel tracked(params(adaptive, true), m.normal, m.reduced);
  ReadChannel static_ref(params({}, true), m.normal, m.reduced);
  const std::uint32_t pe = 3000;
  const Hours age = 100.0;
  const int fresh =
      static_ref.assess(false, pe, age, 0, 0).required_levels;
  int tracked_worst = 0;
  int static_worst = 0;
  for (std::uint64_t reads = 0; reads <= 60000; reads += 500) {
    tracked_worst = std::max(
        tracked_worst, tracked.assess(false, pe, age, 0, reads).required_levels);
    static_worst = std::max(
        static_worst,
        static_ref.assess(false, pe, age, 0, reads).required_levels);
  }
  // The residual drift between calibrations is at most calibrate_interval
  // reads' worth — the fresh requirement plus at most one ladder step.
  EXPECT_LE(tracked_worst, fresh + 1);
  EXPECT_GT(static_worst, tracked_worst);
  EXPECT_GT(tracked.stats().calibrations, 0u);
}

TEST(ReadChannelTest, EraseResetsCalibrationState) {
  auto& m = models();
  ReadChannelConfig adaptive;
  adaptive.enabled = true;
  adaptive.adaptive_thresholds = true;
  adaptive.calibrate_interval = 100;
  ReadChannel channel(params(adaptive, true), m.normal, m.reduced);
  channel.assess(false, 3000, 100.0, /*ppn=*/0, /*block_reads=*/5000);
  EXPECT_GT(channel.stats().calibrations, 0u);
  EXPECT_EQ(channel.stats().resets, 0u);
  // The FTL read counter moving backwards means the block was erased: the
  // stale calibration must not keep compensating vanished drift.
  const auto fresh = channel.assess(false, 3000, 100.0, 0, 10);
  EXPECT_EQ(channel.stats().resets, 1u);
  ReadChannel control(params(adaptive, true), m.normal, m.reduced);
  const auto expect = control.assess(false, 3000, 100.0, 0, 10);
  EXPECT_EQ(fresh.required_levels, expect.required_levels);
}

TEST(ReadChannelTest, MiLadderCapsDominateUniform) {
  // The MI quantizer keeps more soft information per strobe, so every
  // soft step tolerates at least the uniform-quantizer cap; the hard step
  // has one immovable boundary and stays put.
  auto& m = models();
  ReadChannelConfig mi;
  mi.enabled = true;
  mi.quantizer = ChannelQuantizer::kMiOptimized;
  ReadChannel channel(params(mi), m.normal, m.reduced);
  const SensingRequirement uniform;
  const auto& calibrated = channel.ladder().steps();
  ASSERT_EQ(calibrated.size(), uniform.steps().size());
  EXPECT_DOUBLE_EQ(calibrated[0].max_raw_ber, uniform.steps()[0].max_raw_ber);
  for (std::size_t i = 1; i < calibrated.size(); ++i) {
    EXPECT_GE(calibrated[i].max_raw_ber, uniform.steps()[i].max_raw_ber) << i;
    EXPECT_EQ(calibrated[i].extra_levels, uniform.steps()[i].extra_levels);
  }
  // At least one soft step must strictly improve or the calibration is
  // vacuous.
  EXPECT_GT(calibrated[4].max_raw_ber, uniform.steps()[4].max_raw_ber);
}

TEST(ReadChannelTest, MeasuredDecodeTimesAreDeterministic) {
  auto& m = models();
  ReadChannelConfig measured;
  measured.enabled = true;
  measured.decode_latency = DecodeLatencyMode::kMeasured;
  measured.calibration_trials = 2;
  ReadChannel a(params(measured), m.normal, m.reduced);
  ReadChannel b(params(measured), m.normal, m.reduced);
  ASSERT_EQ(a.step_iterations().size(), a.ladder().steps().size());
  EXPECT_EQ(a.step_iterations(), b.step_iterations());
  const Duration per_iteration = 3 * kMicrosecond;
  const Duration overhead = 4 * kMicrosecond;
  const auto times = a.measured_decode_times(per_iteration, overhead);
  const int deepest = a.ladder().steps().back().extra_levels;
  ASSERT_EQ(times.size(), static_cast<std::size_t>(deepest) + 1);
  for (const Duration t : times) {
    // Every attempt runs at least one min-sum iteration.
    EXPECT_GE(t, overhead + per_iteration);
  }
  EXPECT_EQ(times, b.measured_decode_times(per_iteration, overhead));
}

TEST(ReadChannelTest, MeanRetentionLossPhysical) {
  auto& m = models();
  EXPECT_DOUBLE_EQ(m.normal.mean_retention_loss(3000, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.normal.mean_retention_loss(0, 100.0), 0.0);
  double prev = 0.0;
  for (const Hours age : {1.0, 10.0, 100.0, 1000.0}) {
    const double loss = m.normal.mean_retention_loss(6000, age);
    EXPECT_GT(loss, prev);  // charge loss grows with retention age
    prev = loss;
  }
  // Re-centering by the mean loss must shrink the retention BER: the
  // shifted references sit where the drifted distribution actually is.
  const double shifted = m.normal.retention_ber(
      6000, 1000.0, m.normal.mean_retention_loss(6000, 1000.0));
  EXPECT_LT(shifted, m.normal.retention_ber(6000, 1000.0));
}

}  // namespace
}  // namespace flex::reliability
