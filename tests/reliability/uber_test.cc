#include "reliability/uber.h"

#include <cmath>

#include <gtest/gtest.h>

namespace flex::reliability {
namespace {

// Exact tail for tiny m by direct summation.
double exact_tail(int k, int m, double p) {
  double tail = 0.0;
  for (int i = k + 1; i <= m; ++i) {
    double c = 1.0;
    for (int j = 0; j < i; ++j) c = c * (m - j) / (j + 1);
    tail += c * std::pow(p, i) * std::pow(1.0 - p, m - i);
  }
  return tail;
}

TEST(UberTest, TailMatchesExactSmallCases) {
  for (const int m : {5, 10, 20}) {
    for (const double p : {0.01, 0.1, 0.3}) {
      for (int k = 0; k < m; ++k) {
        EXPECT_NEAR(binomial_tail_above(k, m, p), exact_tail(k, m, p),
                    1e-12 + 1e-9 * exact_tail(k, m, p))
            << "m=" << m << " p=" << p << " k=" << k;
      }
    }
  }
}

TEST(UberTest, TailEdgeCases) {
  EXPECT_DOUBLE_EQ(binomial_tail_above(10, 10, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(binomial_tail_above(-1, 10, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_tail_above(5, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_tail_above(5, 10, 1.0), 1.0);
}

TEST(UberTest, TailIsMonotoneInK) {
  const int m = 36864;
  const double p = 5e-3;
  double prev = 1.0;
  for (int k = 100; k <= 400; k += 50) {
    const double tail = binomial_tail_above(k, m, p);
    EXPECT_LE(tail, prev);
    prev = tail;
  }
}

TEST(UberTest, TailReachesUberScaleWithoutUnderflow) {
  // Around the paper's operating point the tail must be resolvable at
  // 1e-15 and far below.
  const double tail = binomial_tail_above(400, 36864, 5e-3);
  EXPECT_GT(tail, 0.0);
  EXPECT_LT(tail, 1e-20);
}

TEST(UberTest, UberFormula) {
  // uber = tail / n with n the information length (paper Eq. 1).
  const double tail = binomial_tail_above(50, 1000, 0.02);
  EXPECT_NEAR(uber(50, 800, 1000, 0.02), tail / 800.0, 1e-18);
}

TEST(UberTest, RequiredCorrectionInverts) {
  const int n = 32768;
  const int m = 36864;
  const double p = 4e-3;
  const int k = required_correction(1e-15, n, m, p);
  ASSERT_GT(k, 0);
  EXPECT_LE(uber(k, n, m, p), 1e-15);
  EXPECT_GT(uber(k - 1, n, m, p), 1e-15);
}

TEST(UberTest, MaxRawBerInverts) {
  const int n = 32768;
  const int m = 36864;
  const int k = 300;
  const double cap = max_raw_ber(1e-15, k, n, m);
  EXPECT_GT(cap, 0.0);
  EXPECT_LE(uber(k, n, m, cap), 1e-15);
  EXPECT_GT(uber(k, n, m, cap * 1.05), 1e-15);
}

TEST(UberTest, StrongerCodeToleratesMoreBer) {
  const int n = 32768;
  const int m = 36864;
  EXPECT_LT(max_raw_ber(1e-15, 200, n, m), max_raw_ber(1e-15, 400, n, m));
}

}  // namespace
}  // namespace flex::reliability
