#include "reliability/retention.h"

#include <cmath>

#include <gtest/gtest.h>

#include <numbers>

#include "common/normal.h"
#include "common/rng.h"

namespace flex::reliability {
namespace {

RetentionModel::Params unit_scales() {
  RetentionModel::Params p;
  p.mu_scale = 1.0;
  p.sigma_scale = 1.0;
  return p;
}

TEST(RetentionTest, MuMatchesHandComputation) {
  const RetentionModel model(unit_scales());
  // Paper Eq. 3 with Ks=0.333, Kd=4e-4 at x=3.7, x0=1.1, N=6000, t=720h:
  const double expected =
      0.333 * (3.7 - 1.1) * 4e-4 * std::pow(6000.0, 0.4) * std::log1p(720.0);
  EXPECT_NEAR(model.mu(3.7, 1.1, 6000, 720.0), expected, 1e-12);
}

TEST(RetentionTest, SigmaMatchesHandComputation) {
  const RetentionModel model(unit_scales());
  const double variance =
      0.333 * (3.7 - 1.1) * 2e-6 * std::pow(6000.0, 0.5) * std::log1p(720.0);
  EXPECT_NEAR(model.sigma(3.7, 1.1, 6000, 720.0), std::sqrt(variance), 1e-12);
}

TEST(RetentionTest, MonotoneInPeCycles) {
  const RetentionModel model;
  double prev = 0.0;
  for (const int pe : {1000, 2000, 4000, 8000}) {
    const double mu = model.mu(3.5, 1.1, pe, 24.0);
    EXPECT_GT(mu, prev);
    prev = mu;
  }
}

TEST(RetentionTest, MonotoneInStorageTime) {
  const RetentionModel model;
  double prev = 0.0;
  for (const double t : {1.0, 24.0, 168.0, 720.0}) {
    const double mu = model.mu(3.5, 1.1, 5000, t);
    EXPECT_GT(mu, prev);
    prev = mu;
  }
}

TEST(RetentionTest, HigherLevelsLoseMore) {
  // The NUNMA motivation: (x - x0) grows with the stored level, so level 2
  // of a reduced cell outpaces level 1.
  const RetentionModel model;
  EXPECT_GT(model.mu(3.7, 1.1, 5000, 168.0), model.mu(2.8, 1.1, 5000, 168.0));
}

TEST(RetentionTest, NoChargeNoLoss) {
  const RetentionModel model;
  EXPECT_DOUBLE_EQ(model.mu(1.0, 1.1, 5000, 168.0), 0.0);
  EXPECT_DOUBLE_EQ(model.sigma(1.0, 1.1, 5000, 168.0), 0.0);
}

TEST(RetentionTest, ZeroTimeZeroLoss) {
  const RetentionModel model;
  EXPECT_DOUBLE_EQ(model.mu(3.7, 1.1, 5000, 0.0), 0.0);
}

TEST(RetentionTest, SampleLossIsNonNegativeAndCentered) {
  const RetentionModel model;
  Rng rng(1);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double loss = model.sample_loss(3.7, 1.1, 6000, 720.0, rng);
    EXPECT_GE(loss, 0.0);
    sum += loss;
  }
  // The loss is max(N(mu, sigma), 0); its mean is the rectified-Gaussian
  // mean mu * Phi(mu/sigma) + sigma * phi(mu/sigma).
  const double mu = model.mu(3.7, 1.1, 6000, 720.0);
  const double sigma = model.sigma(3.7, 1.1, 6000, 720.0);
  const double z = mu / sigma;
  const double expected = mu * normal_cdf(z) +
                          sigma * std::exp(-z * z / 2.0) /
                              std::sqrt(2.0 * std::numbers::pi);
  EXPECT_NEAR(sum / n, expected, 0.03 * expected);
}

TEST(RetentionTest, LossExceedsIsGaussianTail) {
  const RetentionModel model;
  const double mu = model.mu(3.7, 1.1, 6000, 720.0);
  const double sigma = model.sigma(3.7, 1.1, 6000, 720.0);
  EXPECT_NEAR(model.loss_exceeds(mu, 3.7, 1.1, 6000, 720.0), 0.5, 1e-9);
  EXPECT_NEAR(model.loss_exceeds(mu + 2.0 * sigma, 3.7, 1.1, 6000, 720.0),
              0.02275, 1e-4);
}

TEST(RetentionTest, CalibratedDefaults) {
  // DESIGN.md §5: one global calibration shared by every configuration.
  const RetentionModel model;
  EXPECT_NEAR(model.params().mu_scale, 0.542, 1e-12);
  EXPECT_NEAR(model.params().sigma_scale, 1.145, 1e-12);
}

TEST(RetentionTest, ScalesApply) {
  RetentionModel::Params sp = unit_scales();
  sp.mu_scale = 2.0;
  sp.sigma_scale = 3.0;
  const RetentionModel scaled(sp);
  const RetentionModel plain(unit_scales());
  EXPECT_NEAR(scaled.mu(3.7, 1.1, 5000, 100.0),
              2.0 * plain.mu(3.7, 1.1, 5000, 100.0), 1e-12);
  EXPECT_NEAR(scaled.sigma(3.7, 1.1, 5000, 100.0),
              3.0 * plain.sigma(3.7, 1.1, 5000, 100.0), 1e-12);
}

}  // namespace
}  // namespace flex::reliability
