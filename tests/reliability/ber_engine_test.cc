#include "reliability/ber_engine.h"

#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nand/level_config.h"

namespace flex::reliability {
namespace {

nand::CouplingRatios no_coupling() {
  return {.gamma_x = 0.0, .gamma_y = 0.0, .gamma_xy = 0.0};
}

TEST(GrayMapperTest, RoundTripAllPatterns) {
  const GrayMapper mapper;
  EXPECT_EQ(mapper.cells_per_group(), 1);
  EXPECT_EQ(mapper.bits_per_group(), 2);
  for (int lsb = 0; lsb < 2; ++lsb) {
    for (int msb = 0; msb < 2; ++msb) {
      const std::uint8_t bits_in[2] = {static_cast<std::uint8_t>(lsb),
                                       static_cast<std::uint8_t>(msb)};
      int level = -1;
      mapper.to_levels(bits_in, std::span<int>(&level, 1));
      ASSERT_GE(level, 0);
      ASSERT_LT(level, 4);
      std::uint8_t bits_out[2];
      mapper.to_bits(std::span<const int>(&level, 1), bits_out);
      EXPECT_EQ(bits_out[0], bits_in[0]);
      EXPECT_EQ(bits_out[1], bits_in[1]);
    }
  }
}

TEST(BerEngineTest, NoNoiseNoErrors) {
  BerEngine engine({.wordlines = 16, .bitlines = 32, .rounds = 2,
                    .coupling = no_coupling()});
  const GrayMapper mapper;
  Rng rng(1);
  const BerReport report =
      engine.measure(nand::LevelConfig::baseline_mlc(), mapper,
                     /*retention=*/nullptr, 0, 0.0, rng);
  EXPECT_EQ(report.total.events(), 0u);
  EXPECT_GT(report.total.trials(), 0u);
}

TEST(BerEngineTest, CouplingCausesUpwardErrorsOnly) {
  BerEngine engine({.wordlines = 32, .bitlines = 64, .rounds = 4,
                    .coupling = {.gamma_x = 0.25, .gamma_y = 0.25,
                                 .gamma_xy = 0.05}});
  const GrayMapper mapper;
  Rng rng(2);
  const BerReport report =
      engine.measure(nand::LevelConfig::baseline_mlc(), mapper, nullptr, 0,
                     0.0, rng);
  EXPECT_GT(report.c2c.events(), 0u);
  EXPECT_EQ(report.retention.events(), 0u);
  EXPECT_EQ(report.total.events(), report.c2c.events());
}

TEST(BerEngineTest, RetentionCausesDownwardErrors) {
  BerEngine engine({.wordlines = 32, .bitlines = 64, .rounds = 4,
                    .coupling = no_coupling()});
  const GrayMapper mapper;
  const RetentionModel retention;
  Rng rng(3);
  const BerReport report = engine.measure(nand::LevelConfig::baseline_mlc(),
                                          mapper, &retention, 6000,
                                          kMonth, rng);
  EXPECT_GT(report.retention.events(), 0u);
  // Upward errors without coupling can only come from the intrinsic
  // erased-distribution tail above the first read reference (~5e-4 of
  // erased cells); retention errors must dominate by orders of magnitude.
  EXPECT_GT(report.retention.events(), 50 * report.c2c.events());
}

TEST(BerEngineTest, RetentionBerGrowsWithAge) {
  BerEngine engine({.wordlines = 32, .bitlines = 128, .rounds = 8,
                    .coupling = no_coupling()});
  const GrayMapper mapper;
  const RetentionModel retention;
  Rng rng(4);
  const nand::LevelConfig cfg = nand::LevelConfig::baseline_mlc();
  const double day =
      engine.measure(cfg, mapper, &retention, 6000, kDay, rng).total.rate();
  const double month =
      engine.measure(cfg, mapper, &retention, 6000, kMonth, rng).total.rate();
  EXPECT_GT(month, day);
}

TEST(BerEngineTest, ErrorsConcentrateAtHighLevels) {
  // The NUNMA motivation (§4.2): retention errors cluster at the top level.
  BerEngine engine({.wordlines = 32, .bitlines = 128, .rounds = 8,
                    .coupling = no_coupling()});
  const GrayMapper mapper;
  const RetentionModel retention;
  Rng rng(5);
  const BerReport report = engine.measure(nand::LevelConfig::baseline_mlc(),
                                          mapper, &retention, 6000, kMonth,
                                          rng);
  ASSERT_EQ(report.cell_errors_by_level.size(), 4u);
  const std::uint64_t total = std::accumulate(
      report.cell_errors_by_level.begin(), report.cell_errors_by_level.end(),
      std::uint64_t{0});
  ASSERT_GT(total, 100u);
  EXPECT_GT(report.cell_errors_by_level[3], report.cell_errors_by_level[1]);
  // Erased cells cannot lose charge; their only errors are the (rare)
  // intrinsic upward tail crossings.
  EXPECT_LT(report.cell_errors_by_level[0],
            report.cell_errors_by_level[3] / 10);
}

TEST(BerEngineTest, RatesShareDenominator) {
  BerEngine engine({.wordlines = 16, .bitlines = 64, .rounds = 2,
                    .coupling = {.gamma_x = 0.15, .gamma_y = 0.15,
                                 .gamma_xy = 0.01}});
  const GrayMapper mapper;
  const RetentionModel retention;
  Rng rng(6);
  const BerReport report = engine.measure(nand::LevelConfig::baseline_mlc(),
                                          mapper, &retention, 6000, kMonth,
                                          rng);
  EXPECT_EQ(report.c2c.trials(), report.total.trials());
  EXPECT_EQ(report.retention.trials(), report.total.trials());
  EXPECT_NEAR(report.c2c.rate() + report.retention.rate(),
              report.total.rate(), 1e-12);
}

}  // namespace
}  // namespace flex::reliability
