// Unit tests for the read-disturb error model (Cai et al., DSN'15 —
// see reliability/read_disturb.h).
#include "reliability/read_disturb.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "reliability/ber_model.h"

namespace flex::reliability {
namespace {

class ReadDisturbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(99);
    const BerEngine::Config mc{
        .wordlines = 32, .bitlines = 128, .rounds = 2, .coupling = {}};
    static const GrayMapper gray;
    static const flexlevel::ReduceCodeMapper reduce;
    normal_ = new BerModel(nand::LevelConfig::baseline_mlc(), gray,
                           RetentionModel{}, mc, rng);
    // Same 3-level geometry and mapper, differing only in verify placement:
    // isolates NUNMA's margin trade from occupancy/damage effects.
    basic_reduced_ =
        new BerModel(flexlevel::nunma_config(flexlevel::NunmaScheme::kBasic),
                     reduce, RetentionModel{}, mc, rng);
    nunma_reduced_ = new BerModel(
        flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
        RetentionModel{}, mc, rng);
  }
  static void TearDownTestSuite() {
    delete normal_;
    delete basic_reduced_;
    delete nunma_reduced_;
    normal_ = basic_reduced_ = nunma_reduced_ = nullptr;
  }

  static BerModel* normal_;
  static BerModel* basic_reduced_;
  static BerModel* nunma_reduced_;
};

BerModel* ReadDisturbTest::normal_ = nullptr;
BerModel* ReadDisturbTest::basic_reduced_ = nullptr;
BerModel* ReadDisturbTest::nunma_reduced_ = nullptr;

TEST_F(ReadDisturbTest, FreshBlockHasNoDisturbTerm) {
  const ReadDisturbModel model({}, *normal_);
  EXPECT_EQ(model.ber(0), 0.0);
}

TEST_F(ReadDisturbTest, ShiftIsLinearInReads) {
  const ReadDisturbModel model({}, *normal_);
  const Volt one = model.vth_shift(1);
  EXPECT_GT(one, 0.0);
  EXPECT_DOUBLE_EQ(model.vth_shift(1000), 1000.0 * one);
}

TEST_F(ReadDisturbTest, NeighborAmplificationScalesShift) {
  ReadDisturbModel::Params flat;
  flat.neighbor_amplification = 1.0;
  ReadDisturbModel::Params boosted = flat;
  boosted.neighbor_amplification = 2.0;
  const ReadDisturbModel a(flat, *normal_);
  const ReadDisturbModel b(boosted, *normal_);
  EXPECT_DOUBLE_EQ(b.vth_shift(500), 2.0 * a.vth_shift(500));
}

TEST_F(ReadDisturbTest, BerIsMonotoneInReads) {
  const ReadDisturbModel model({}, *normal_);
  double prev = 0.0;
  for (const std::uint64_t reads :
       {100ULL, 1'000ULL, 10'000ULL, 100'000ULL, 1'000'000ULL}) {
    const double ber = model.ber(reads);
    EXPECT_GE(ber, prev) << reads;
    prev = ber;
  }
  EXPECT_GT(prev, 0.0);
}

TEST_F(ReadDisturbTest, ErasedStateDominatesEarly) {
  // Cai et al.: ER-state cells contribute the dominant share of disturb
  // errors. At stress levels well below any programmed level's C2C margin,
  // removing the erased amplification collapses the BER.
  ReadDisturbModel::Params amplified;  // default erased_amplification = 4
  ReadDisturbModel::Params flat;
  flat.erased_amplification = 1.0;
  const ReadDisturbModel hot(amplified, *normal_);
  const ReadDisturbModel cold(flat, *normal_);
  const std::uint64_t reads = 20'000;  // shift ~0.12 V << 0.50 V margin
  EXPECT_GT(hot.ber(reads), 10.0 * cold.ber(reads));
}

TEST_F(ReadDisturbTest, NunmaMarginIsPreSpent) {
  // NUNMA 3 raises the verify voltages for retention margin, pre-spending
  // C2C margin (0.65 V vs basic LevelAdjust's 0.70 V at level 1). At a
  // shift between the two margins, only the NUNMA cell's programmed level
  // crosses its upper read reference — same geometry otherwise, so the
  // difference is exactly the LevelAdjust/disturb interaction.
  ReadDisturbModel::Params params;
  params.erased_amplification = 1.0;  // keep the shared erased term small
  params.neighbor_amplification = 1.0;
  const ReadDisturbModel basic(params, *basic_reduced_);
  const ReadDisturbModel nunma(params, *nunma_reduced_);
  const auto reads_for = [&](Volt shift) {
    return static_cast<std::uint64_t>(shift / params.vth_shift_per_read);
  };
  // Below both margins: identical (erased term only).
  EXPECT_DOUBLE_EQ(nunma.ber(reads_for(0.60)), basic.ber(reads_for(0.60)));
  // Between the margins: NUNMA pays, basic does not yet.
  EXPECT_GT(nunma.ber(reads_for(0.675)), basic.ber(reads_for(0.675)));
}

TEST_F(ReadDisturbTest, SaturatesAtFullLevelLoss) {
  // Once the shift exceeds margin + vpp for every non-top level and the
  // erased tail is fully across, the BER stops growing (all vulnerable
  // cells have bumped).
  const ReadDisturbModel model({}, *normal_);
  EXPECT_DOUBLE_EQ(model.ber(100'000'000), model.ber(200'000'000));
}

}  // namespace
}  // namespace flex::reliability
