#include "reliability/ber_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"

namespace flex::reliability {
namespace {

BerEngine::Config small_mc() {
  return {.wordlines = 32, .bitlines = 128, .rounds = 2,
          .coupling = nand::CouplingRatios{}};
}

TEST(BerModelTest, GrayOccupancyAndDamage) {
  Rng rng(1);
  const GrayMapper mapper;
  const BerModel model(nand::LevelConfig::baseline_mlc(), mapper,
                       RetentionModel{}, small_mc(), rng);
  ASSERT_EQ(model.level_occupancy().size(), 4u);
  for (const double occ : model.level_occupancy()) {
    EXPECT_NEAR(occ, 0.25, 1e-12);  // uniform data
  }
  // Gray code: a one-level drop flips exactly one of two bits, and the
  // mapper has 1 cell / 2 bits -> damage 0.5 at every programmed level.
  for (int l = 1; l < 4; ++l) {
    EXPECT_NEAR(model.drop_damage()[static_cast<std::size_t>(l)], 0.5, 1e-12);
  }
}

TEST(BerModelTest, ReduceCodeOccupancy) {
  Rng rng(2);
  const flexlevel::ReduceCodeMapper mapper;
  const BerModel model(flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3),
                       mapper, RetentionModel{}, small_mc(), rng);
  ASSERT_EQ(model.level_occupancy().size(), 3u);
  // Table 1: over the 8 patterns x 2 cells, levels appear 6/16, 5/16, 5/16.
  EXPECT_NEAR(model.level_occupancy()[0], 6.0 / 16.0, 1e-12);
  EXPECT_NEAR(model.level_occupancy()[1], 5.0 / 16.0, 1e-12);
  EXPECT_NEAR(model.level_occupancy()[2], 5.0 / 16.0, 1e-12);
}

TEST(BerModelTest, RetentionBerZeroWhenFresh) {
  Rng rng(3);
  const GrayMapper mapper;
  const BerModel model(nand::LevelConfig::baseline_mlc(), mapper,
                       RetentionModel{}, small_mc(), rng);
  EXPECT_DOUBLE_EQ(model.retention_ber(6000, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.retention_ber(0, 100.0), 0.0);
}

TEST(BerModelTest, RetentionBerMonotone) {
  Rng rng(4);
  const GrayMapper mapper;
  const BerModel model(nand::LevelConfig::baseline_mlc(), mapper,
                       RetentionModel{}, small_mc(), rng);
  double prev = 0.0;
  for (const double age : {kDay, 2 * kDay, kWeek, kMonth}) {
    const double ber = model.retention_ber(5000, age);
    EXPECT_GT(ber, prev);
    prev = ber;
  }
  EXPECT_GT(model.retention_ber(6000, kWeek), model.retention_ber(3000, kWeek));
}

TEST(BerModelTest, AnalyticMatchesMonteCarlo) {
  // The analytic integral must track the full Monte-Carlo engine within
  // sampling error; this is what licenses its use inside the SSD simulator.
  Rng rng(5);
  const GrayMapper mapper;
  const nand::LevelConfig cfg = nand::LevelConfig::baseline_mlc();
  const RetentionModel retention;
  const BerModel model(cfg, mapper, retention, small_mc(), rng);

  BerEngine engine({.wordlines = 64, .bitlines = 256, .rounds = 16,
                    .coupling = {.gamma_x = 0.0, .gamma_y = 0.0,
                                 .gamma_xy = 0.0}});
  for (const auto& [pe, age] : {std::pair{6000, kMonth},
                                std::pair{5000, kWeek}}) {
    const double analytic = model.retention_ber(pe, age);
    const BerReport mc =
        engine.measure(cfg, mapper, &retention, pe, age, rng);
    EXPECT_NEAR(analytic, mc.total.rate(),
                3.0 * mc.total.margin95() + 0.1 * analytic)
        << "pe=" << pe << " age=" << age;
  }
}

TEST(BerModelTest, C2cComponentPositiveWithCoupling) {
  Rng rng(6);
  const GrayMapper mapper;
  const BerModel model(nand::LevelConfig::baseline_mlc(), mapper,
                       RetentionModel{}, small_mc(), rng);
  EXPECT_GT(model.c2c_ber(), 0.0);
  EXPECT_NEAR(model.total_ber(5000, kWeek),
              model.c2c_ber() + model.retention_ber(5000, kWeek), 1e-15);
}

TEST(BerModelTest, ReducedStateBeatsBaseline) {
  // The core device-level claim: the NUNMA 3 reduced cell has lower total
  // BER than the baseline MLC cell at every operating point in Table 4.
  Rng rng(7);
  const GrayMapper gray;
  const flexlevel::ReduceCodeMapper reduce;
  const RetentionModel retention;
  const BerModel baseline(nand::LevelConfig::baseline_mlc(), gray, retention,
                          small_mc(), rng);
  const BerModel nunma3(
      flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
      retention, small_mc(), rng);
  for (const int pe : {2000, 4000, 6000}) {
    for (const double age : {kDay, kWeek, kMonth}) {
      EXPECT_LT(nunma3.total_ber(pe, age), baseline.total_ber(pe, age))
          << "pe=" << pe << " age=" << age;
    }
  }
}

}  // namespace
}  // namespace flex::reliability
