#include "common/flat_hash_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace flex {
namespace {

TEST(FlatHashMapTest, InsertFindErase) {
  FlatHashMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(42u), nullptr);

  auto [slot, inserted] = map.insert(42, 7);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*slot, 7);
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 7);

  EXPECT_TRUE(map.erase(42));
  EXPECT_FALSE(map.erase(42));
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(FlatHashMapTest, DuplicateInsertKeepsOriginalValue) {
  FlatHashMap<int> map;
  map.insert(5, 1);
  auto [slot, inserted] = map.insert(5, 2);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*slot, 1);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, AssignOverwritesAndKeepsOrdinal) {
  FlatHashMap<int> map;
  map.insert(1, 10);
  map.insert(2, 20);
  map.assign(1, 11);  // overwrite must not move key 1 behind key 2
  std::vector<std::uint64_t> keys;
  map.for_each_ordered(
      [&](std::uint64_t key, const int&) { keys.push_back(key); });
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], 1u);
  EXPECT_EQ(keys[1], 2u);
  EXPECT_EQ(*map.find(1), 11);
}

TEST(FlatHashMapTest, GrowthPreservesEveryEntry) {
  FlatHashMap<std::uint64_t> map;  // grows through several rehashes
  constexpr std::uint64_t kN = 10000;
  for (std::uint64_t k = 0; k < kN; ++k) map.insert(k * 2654435761u, k);
  EXPECT_EQ(map.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    const std::uint64_t* value = map.find(k * 2654435761u);
    ASSERT_NE(value, nullptr) << k;
    EXPECT_EQ(*value, k);
  }
}

TEST(FlatHashMapTest, EraseKeepsSurvivorsFindable) {
  // Dense keys exercise the backward-shift deletion's cluster repair.
  FlatHashMap<std::uint64_t> map;
  constexpr std::uint64_t kN = 4096;
  for (std::uint64_t k = 0; k < kN; ++k) map.insert(k, k);
  for (std::uint64_t k = 0; k < kN; k += 2) EXPECT_TRUE(map.erase(k));
  EXPECT_EQ(map.size(), kN / 2);
  for (std::uint64_t k = 0; k < kN; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(map.find(k), nullptr) << k;
    } else {
      ASSERT_NE(map.find(k), nullptr) << k;
      EXPECT_EQ(*map.find(k), k);
    }
  }
}

TEST(FlatHashMapTest, OrderedIterationFollowsInsertionOrder) {
  FlatHashMap<int> map;
  const std::vector<std::uint64_t> order = {9, 1, 7, 1000003, 4};
  for (std::size_t i = 0; i < order.size(); ++i) {
    map.insert(order[i], static_cast<int>(i));
  }
  std::vector<std::uint64_t> seen;
  map.for_each_ordered(
      [&](std::uint64_t key, const int&) { seen.push_back(key); });
  EXPECT_EQ(seen, order);
}

TEST(FlatHashMapTest, ReinsertedKeyMovesToEndOfOrder) {
  FlatHashMap<int> map;
  map.insert(1, 0);
  map.insert(2, 0);
  map.erase(1);
  map.insert(1, 0);  // fresh ordinal: now younger than 2
  std::vector<std::uint64_t> seen;
  map.for_each_ordered(
      [&](std::uint64_t key, const int&) { seen.push_back(key); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 2u);
  EXPECT_EQ(seen[1], 1u);
}

TEST(FlatHashMapTest, IterationOrderIndependentOfCapacityHistory) {
  // The canonical order must not depend on slot layout: a map grown
  // incrementally and a map pre-reserved past its final size see the
  // same inserts land in different buckets, yet snapshot identically.
  FlatHashMap<int> grown;
  FlatHashMap<int> reserved(1 << 14);
  for (std::uint64_t k = 0; k < 3000; ++k) {
    grown.insert(k * 7919, static_cast<int>(k));
    reserved.insert(k * 7919, static_cast<int>(k));
  }
  const auto a = grown.ordered_snapshot();
  const auto b = reserved.ordered_snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].ordinal, b[i].ordinal);
  }
}

TEST(FlatHashMapTest, ClearResetsSizeAndOrdinals) {
  FlatHashMap<int> map;
  for (std::uint64_t k = 0; k < 100; ++k) map.insert(k, 0);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(5), nullptr);
  map.insert(50, 1);
  map.insert(10, 2);
  const auto snapshot = map.ordered_snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].key, 50u);   // post-clear ordinals restart at 0
  EXPECT_EQ(snapshot[0].ordinal, 0u);
  EXPECT_EQ(snapshot[1].key, 10u);
}

}  // namespace
}  // namespace flex
