#include "common/lru_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace flex {
namespace {

std::vector<std::uint64_t> oldest_first(LruMap<int>& map) {
  std::vector<std::uint64_t> keys;
  map.for_each_oldest_first(
      [&](std::uint64_t key, int&) { keys.push_back(key); });
  return keys;
}

TEST(LruMapTest, PushFrontMakesKeyNewest) {
  LruMap<int> map;
  map.push_front(1, 10);
  map.push_front(2, 20);
  map.push_front(3, 30);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.back_key(), 1u);  // oldest
  EXPECT_EQ(oldest_first(map), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(LruMapTest, TouchMovesToFront) {
  LruMap<int> map;
  map.push_front(1, 0);
  map.push_front(2, 0);
  map.push_front(3, 0);
  EXPECT_TRUE(map.touch(1));
  EXPECT_EQ(map.back_key(), 2u);
  EXPECT_EQ(oldest_first(map), (std::vector<std::uint64_t>{2, 3, 1}));
  EXPECT_FALSE(map.touch(99));  // absent key: no effect, reports miss
  EXPECT_EQ(map.size(), 3u);
}

TEST(LruMapTest, PopBackEvictsInLruOrder) {
  LruMap<int> map;
  map.push_front(1, 0);
  map.push_front(2, 0);
  map.push_front(3, 0);
  map.touch(1);
  EXPECT_EQ(map.pop_back(), 2u);
  EXPECT_EQ(map.pop_back(), 3u);
  EXPECT_EQ(map.pop_back(), 1u);
  EXPECT_TRUE(map.empty());
}

TEST(LruMapTest, FindGivesMutableValueWithoutRecencyChange) {
  LruMap<int> map;
  map.push_front(1, 10);
  map.push_front(2, 20);
  int* value = map.find(1);
  ASSERT_NE(value, nullptr);
  *value = 11;
  EXPECT_EQ(*map.find(1), 11);
  EXPECT_EQ(map.back_key(), 1u);  // find() alone must not touch
  EXPECT_EQ(map.find(99), nullptr);
}

TEST(LruMapTest, EraseUnlinksAndRecyclesSlot) {
  LruMap<int> map;
  map.push_front(1, 0);
  map.push_front(2, 0);
  map.push_front(3, 0);
  EXPECT_TRUE(map.erase(2));
  EXPECT_FALSE(map.erase(2));
  EXPECT_FALSE(map.contains(2));
  EXPECT_EQ(oldest_first(map), (std::vector<std::uint64_t>{1, 3}));
  map.push_front(4, 0);  // reuses the freed slot
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(oldest_first(map), (std::vector<std::uint64_t>{1, 3, 4}));
}

TEST(LruMapTest, ForEachOldestFirstAllowsValueMutation) {
  // The write buffer's flush_barrier pattern: walk oldest-first,
  // downgrade every dirty entry in place.
  LruMap<int> map;
  map.push_front(1, 1);
  map.push_front(2, 1);
  map.for_each_oldest_first([](std::uint64_t, int& dirty) { dirty = 0; });
  EXPECT_EQ(*map.find(1), 0);
  EXPECT_EQ(*map.find(2), 0);
}

TEST(LruMapTest, ClearEmptiesAndAllowsReuse) {
  LruMap<int> map;
  for (std::uint64_t k = 0; k < 100; ++k) map.push_front(k, 0);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(5));
  map.push_front(7, 1);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.back_key(), 7u);
}

TEST(LruMapTest, ChurnKeepsOrderConsistent) {
  LruMap<int> map;
  // Bounded-cache churn: push, evict at capacity 4, deterministic order.
  std::vector<std::uint64_t> evicted;
  for (std::uint64_t k = 0; k < 16; ++k) {
    if (map.size() == 4) evicted.push_back(map.pop_back());
    map.push_front(k, 0);
  }
  EXPECT_EQ(evicted.size(), 12u);
  for (std::size_t i = 0; i < evicted.size(); ++i) {
    EXPECT_EQ(evicted[i], i);  // FIFO here since nothing is touched
  }
  EXPECT_EQ(oldest_first(map), (std::vector<std::uint64_t>{12, 13, 14, 15}));
}

}  // namespace
}  // namespace flex
