// flex::Status / flex::StatusOr: the recoverable-error vocabulary of the
// public API surface (SsdConfig::Validate, SsdSimulator::Builder).
#include "common/status.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace flex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.to_string(), "OK");
  EXPECT_EQ(status, Status::Ok());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad field");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad field");
  EXPECT_EQ(status.to_string(), "INVALID_ARGUMENT: bad field");

  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OutOfRange("a"), Status::OutOfRange("a"));
  EXPECT_NE(Status::OutOfRange("a"), Status::OutOfRange("b"));
  EXPECT_NE(Status::OutOfRange("a"), Status::InvalidArgument("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.status(), Status::Ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  const StatusOr<int> result = Status::OutOfRange("rate must be in [0, 1]");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(result.status().message(), "rate must be in [0, 1]");
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(**result, 7);
  const std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ArrowForwardsToValue) {
  StatusOr<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  const StatusOr<int> result = Status::Internal("boom");
  EXPECT_DEATH((void)result.value(), "");
}

TEST(StatusOrDeathTest, OkStatusWithoutValueAborts) {
  EXPECT_DEATH(StatusOr<int>{Status::Ok()}, "");
}

}  // namespace
}  // namespace flex
