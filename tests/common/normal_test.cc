#include "common/normal.h"

#include <cmath>

#include <gtest/gtest.h>

namespace flex {
namespace {

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-9);
}

TEST(NormalTest, QIsComplementOfCdf) {
  for (const double x : {-3.0, -1.0, 0.0, 0.5, 2.0, 4.0}) {
    EXPECT_NEAR(q_function(x) + normal_cdf(x), 1.0, 1e-12);
  }
}

TEST(NormalTest, QFarTail) {
  // Q(8) ~ 6.22e-16: must not underflow to zero via 1 - cdf.
  EXPECT_NEAR(q_function(8.0) / 6.22096057427178e-16, 1.0, 1e-6);
  EXPECT_GT(q_function(10.0), 0.0);
}

TEST(NormalTest, QuantileRoundTrip) {
  for (const double p :
       {1e-12, 1e-6, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0 - 1e-6}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12 + p * 1e-9)
        << "p=" << p;
  }
}

TEST(NormalTest, QuantileSymmetry) {
  for (const double p : {0.001, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9);
  }
}

TEST(NormalTest, QuantileMedian) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
}

TEST(NormalDeathTest, QuantileRejectsOutOfRange) {
  EXPECT_DEATH(normal_quantile(0.0), "precondition");
  EXPECT_DEATH(normal_quantile(1.0), "precondition");
}

}  // namespace
}  // namespace flex
