// CRC-64/XZ: the payload-seal checksum. The standard check vector pins
// the polynomial/reflection/xor conventions; the chaining and
// slice-vs-bitwise properties pin the implementation's internal
// consistency (the incremental payload CRC in ftl/payload.cpp leans on
// chaining being exact).
#include "common/crc64.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace flex {
namespace {

TEST(Crc64Test, StandardCheckVector) {
  // CRC-64/XZ ("123456789") — the catalogue check value.
  EXPECT_EQ(crc64("123456789", 9), 0x995DC9BBDF1939FAULL);
}

TEST(Crc64Test, EmptyInputIsZero) {
  EXPECT_EQ(crc64(nullptr, 0), 0ULL);
  EXPECT_EQ(crc64("x", 0), 0ULL);
}

TEST(Crc64Test, ChainingMatchesOneShot) {
  std::vector<std::uint8_t> data(257);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const std::uint64_t whole = crc64(data.data(), data.size());
  for (const std::size_t cut : {std::size_t{1}, std::size_t{8},
                                std::size_t{13}, std::size_t{64},
                                std::size_t{256}}) {
    const std::uint64_t head = crc64(data.data(), cut);
    EXPECT_EQ(crc64(data.data() + cut, data.size() - cut, head), whole)
        << "cut at " << cut;
  }
}

TEST(Crc64Test, SensitiveToEveryBit) {
  std::uint8_t data[32] = {};
  const std::uint64_t clean = crc64(data, sizeof data);
  for (std::size_t byte = 0; byte < sizeof data; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc64(data, sizeof data), clean)
          << "flip at byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

TEST(Crc64Test, DistinctInputsDistinctCrcs) {
  // Not a collision-resistance proof, just a smoke check that the table
  // construction didn't degenerate (e.g. all-zero rows).
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    seen.push_back(crc64(&i, sizeof i));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Crc64Test, SelfTestPasses) { EXPECT_TRUE(crc64_selftest()); }

}  // namespace
}  // namespace flex
