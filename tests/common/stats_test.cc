#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace flex {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStatsTest, MatchesNaiveComputation) {
  RunningStats s;
  const std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 7.5, -1.25};
  double sum = 0.0;
  for (const double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.min(), -2.0);
  EXPECT_EQ(s.max(), 7.5);
  EXPECT_DOUBLE_EQ(s.sum(), sum);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStatsTest, NumericallyStableOnLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(HistogramTest, BinningAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);    // bin 0
  h.add(9.999);  // bin 9
  h.add(5.0);    // bin 5
  h.add(-1.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 9
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_high(5), 6.0);
}

TEST(HistogramTest, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(2);
  for (int i = 0; i < 100'000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.02);
}

TEST(HistogramTest, QuantileEmpty) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(HistogramTest, LogSpacedBinEdgesAreGeometric) {
  // Three decades, one bin per decade: edges land on powers of ten.
  const Histogram h = Histogram::log_spaced(1e-3, 1.0, 3);
  EXPECT_TRUE(h.log_bins());
  EXPECT_DOUBLE_EQ(h.bin_low(0), 1e-3);
  EXPECT_NEAR(h.bin_high(0), 1e-2, 1e-12);
  EXPECT_NEAR(h.bin_low(1), 1e-2, 1e-12);
  EXPECT_NEAR(h.bin_high(1), 1e-1, 1e-13);
  // Outer edges are pinned exactly, not via exp(log(...)).
  EXPECT_DOUBLE_EQ(h.bin_high(2), 1.0);
}

TEST(HistogramTest, LogSpacedBinning) {
  Histogram h = Histogram::log_spaced(1.0, 1000.0, 3);
  h.add(2.0);     // bin 0: [1, 10)
  h.add(50.0);    // bin 1: [10, 100)
  h.add(999.0);   // bin 2: [100, 1000)
  h.add(0.5);     // below lo: saturates into bin 0
  h.add(5000.0);  // above hi: saturates into bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 2u);
}

TEST(HistogramTest, LogSpacedQuantileOfLogUniformData) {
  // Log-uniform samples over [1 us, 1 s]: a log-spaced histogram holds
  // constant relative resolution, so quantiles across 6 decades all
  // resolve — the failure mode of a linear grid (every sub-tail sample
  // in bin 0) would be off by orders of magnitude.
  Histogram h = Histogram::log_spaced(1e-6, 1.0, 480);
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 100'000; ++i) {
    xs.push_back(std::exp(rng.uniform(std::log(1e-6), std::log(1.0))));
    h.add(xs.back());
  }
  std::sort(xs.begin(), xs.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = xs[static_cast<std::size_t>(q * xs.size())];
    EXPECT_NEAR(h.quantile(q) / exact, 1.0, 0.05) << "q=" << q;
  }
}

TEST(HistogramTest, MergeAddsBinWise) {
  Histogram a = Histogram::log_spaced(1.0, 100.0, 10);
  Histogram b = Histogram::log_spaced(1.0, 100.0, 10);
  a.add(2.0);
  a.add(30.0);
  b.add(30.0);
  b.add(99.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  Histogram whole = Histogram::log_spaced(1.0, 100.0, 10);
  for (const double x : {2.0, 30.0, 30.0, 99.0}) whole.add(x);
  EXPECT_TRUE(a == whole);
}

TEST(HistogramTest, SameShapeDistinguishesSpacing) {
  const Histogram linear(1.0, 100.0, 10);
  const Histogram log = Histogram::log_spaced(1.0, 100.0, 10);
  EXPECT_FALSE(linear.same_shape(log));
  EXPECT_TRUE(log.same_shape(Histogram::log_spaced(1.0, 100.0, 10)));
}

TEST(RateEstimatorTest, BasicRate) {
  RateEstimator r;
  r.add_many(3, 10);
  EXPECT_DOUBLE_EQ(r.rate(), 0.3);
  r.add(true);
  r.add(false);
  EXPECT_EQ(r.events(), 4u);
  EXPECT_EQ(r.trials(), 12u);
}

TEST(RateEstimatorTest, EmptyRateIsZero) {
  RateEstimator r;
  EXPECT_DOUBLE_EQ(r.rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.margin95(), 0.0);
}

TEST(RateEstimatorTest, MarginShrinksWithSamples) {
  RateEstimator small;
  small.add_many(10, 100);
  RateEstimator large;
  large.add_many(10'000, 100'000);
  EXPECT_GT(small.margin95(), large.margin95());
  // ~1.96 * sqrt(p q / n) for the large-sample case.
  EXPECT_NEAR(large.margin95(), 1.96 * std::sqrt(0.1 * 0.9 / 100'000), 1e-4);
}

}  // namespace
}  // namespace flex
