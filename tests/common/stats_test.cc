#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace flex {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStatsTest, MatchesNaiveComputation) {
  RunningStats s;
  const std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 7.5, -1.25};
  double sum = 0.0;
  for (const double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.min(), -2.0);
  EXPECT_EQ(s.max(), 7.5);
  EXPECT_DOUBLE_EQ(s.sum(), sum);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStatsTest, NumericallyStableOnLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(HistogramTest, BinningAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);    // bin 0
  h.add(9.999);  // bin 9
  h.add(5.0);    // bin 5
  h.add(-1.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 9
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_high(5), 6.0);
}

TEST(HistogramTest, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(2);
  for (int i = 0; i < 100'000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.02);
}

TEST(HistogramTest, QuantileEmpty) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(RateEstimatorTest, BasicRate) {
  RateEstimator r;
  r.add_many(3, 10);
  EXPECT_DOUBLE_EQ(r.rate(), 0.3);
  r.add(true);
  r.add(false);
  EXPECT_EQ(r.events(), 4u);
  EXPECT_EQ(r.trials(), 12u);
}

TEST(RateEstimatorTest, EmptyRateIsZero) {
  RateEstimator r;
  EXPECT_DOUBLE_EQ(r.rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.margin95(), 0.0);
}

TEST(RateEstimatorTest, MarginShrinksWithSamples) {
  RateEstimator small;
  small.add_many(10, 100);
  RateEstimator large;
  large.add_many(10'000, 100'000);
  EXPECT_GT(small.margin95(), large.margin95());
  // ~1.96 * sqrt(p q / n) for the large-sample case.
  EXPECT_NEAR(large.margin95(), 1.96 * std::sqrt(0.1 * 0.9 / 100'000), 1e-4);
}

}  // namespace
}  // namespace flex
