#include "common/zipf.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace flex {
namespace {

TEST(ZipfTest, SamplesStayInRange) {
  Rng rng(1);
  const ZipfSampler zipf(1000, 0.99);
  for (int i = 0; i < 50'000; ++i) {
    EXPECT_LT(zipf.sample(rng), 1000u);
  }
}

TEST(ZipfTest, SingleElement) {
  Rng rng(2);
  const ZipfSampler zipf(1, 1.2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(3);
  const ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c, n / 10, 600);
}

TEST(ZipfTest, HeadIsHeavierThanTail) {
  Rng rng(4);
  const ZipfSampler zipf(100'000, 0.99);
  int head = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (zipf.sample(rng) < 1000) ++head;  // top 1% of ranks
  }
  // For theta ~1, the top 1% of ranks draws roughly half the mass.
  EXPECT_GT(head, n / 4);
}

TEST(ZipfTest, EmpiricalRatioMatchesLaw) {
  Rng rng(5);
  const double theta = 1.0;
  const ZipfSampler zipf(1'000'000, theta);
  std::uint64_t rank0 = 0;
  std::uint64_t rank1 = 0;
  const int n = 2'000'000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t s = zipf.sample(rng);
    if (s == 0) ++rank0;
    if (s == 1) ++rank1;
  }
  ASSERT_GT(rank1, 100u);
  // P(0)/P(1) should be (2/1)^theta = 2.
  EXPECT_NEAR(static_cast<double>(rank0) / rank1, 2.0, 0.25);
}

TEST(ZipfTest, HigherThetaMoreSkew) {
  Rng rng(6);
  const ZipfSampler mild(10'000, 0.5);
  const ZipfSampler steep(10'000, 1.3);
  auto head_mass = [&](const ZipfSampler& z) {
    int head = 0;
    for (int i = 0; i < 50'000; ++i) {
      if (z.sample(rng) < 100) ++head;
    }
    return head;
  };
  EXPECT_LT(head_mass(mild), head_mass(steep));
}

TEST(ZipfTest, ThetaExactlyOneWorks) {
  Rng rng(7);
  const ZipfSampler zipf(5000, 1.0);
  std::uint64_t max_seen = 0;
  for (int i = 0; i < 20'000; ++i) {
    max_seen = std::max(max_seen, zipf.sample(rng));
  }
  EXPECT_LT(max_seen, 5000u);
  EXPECT_GT(max_seen, 100u);  // tail is reachable
}

}  // namespace
}  // namespace flex
