#include "common/rng.h"

#include <algorithm>
#include <array>
#include <vector>

#include <gtest/gtest.h>

namespace flex {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next()) << "diverged at step " << i;
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  std::uint64_t acc = 0;
  for (int i = 0; i < 16; ++i) acc |= rng.next();
  EXPECT_NE(acc, 0u);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndVariance) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (const std::uint64_t n : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1'000; ++i) {
      EXPECT_LT(rng.below(n), n);
    }
  }
}

TEST(RngTest, BelowIsApproximatelyUniform) {
  Rng rng(5);
  std::array<int, 10> counts{};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, 600);  // ~6 sigma of binomial
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, NormalScaled) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.03);
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(RngTest, ChanceRate) {
  Rng rng(23);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.fork();
  // The child must not replay the parent's future outputs.
  std::vector<std::uint64_t> parent_seq(50);
  std::vector<std::uint64_t> child_seq(50);
  for (auto& v : parent_seq) v = parent.next();
  for (auto& v : child_seq) v = child.next();
  EXPECT_NE(parent_seq, child_seq);
}

TEST(RngTest, WorksWithStdDistributions) {
  Rng rng(31);
  // UniformRandomBitGenerator contract.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  std::uint64_t v = rng();
  (void)v;
}

}  // namespace
}  // namespace flex
