#include "common/table.h"

#include <gtest/gtest.h>

namespace flex {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "1000"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos) << out;
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos) << out;
  EXPECT_NE(out.find("| b     | 1000  |"), std::string::npos) << out;
}

TEST(TableTest, SeparatorPresent) {
  TablePrinter t({"x"});
  t.add_row({"y"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("|---|"), std::string::npos) << out;
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(0.000638), "0.000638");
  EXPECT_EQ(TablePrinter::num(1234.5678, 5), "1234.6");
  EXPECT_EQ(TablePrinter::num(0.0, 3), "0");
}

TEST(TableTest, PercentFormatting) {
  EXPECT_EQ(TablePrinter::percent(0.152), "+15.2%");
  EXPECT_EQ(TablePrinter::percent(-0.06), "-6.0%");
}

TEST(TableDeathTest, RowArityChecked) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only one"}), "precondition");
}

}  // namespace
}  // namespace flex
