#include "gf/gf2m.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace flex::gf {
namespace {

class FieldAxioms : public ::testing::TestWithParam<int> {};

TEST_P(FieldAxioms, MultiplicationClosedAndCommutative) {
  const Field f(GetParam());
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<Field::Element>(rng.below(f.size()));
    const auto b = static_cast<Field::Element>(rng.below(f.size()));
    const auto ab = f.mul(a, b);
    EXPECT_LT(ab, f.size());
    EXPECT_EQ(ab, f.mul(b, a));
  }
}

TEST_P(FieldAxioms, MultiplicativeIdentityAndZero) {
  const Field f(GetParam());
  for (Field::Element a = 0; a < std::min<std::uint32_t>(f.size(), 256); ++a) {
    EXPECT_EQ(f.mul(a, 1), a);
    EXPECT_EQ(f.mul(a, 0), 0u);
  }
}

TEST_P(FieldAxioms, InverseIsExact) {
  const Field f(GetParam());
  for (Field::Element a = 1; a < std::min<std::uint32_t>(f.size(), 512); ++a) {
    EXPECT_EQ(f.mul(a, f.inverse(a)), 1u) << "a=" << a;
  }
}

TEST_P(FieldAxioms, Distributivity) {
  const Field f(GetParam());
  Rng rng(GetParam() * 7 + 1);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<Field::Element>(rng.below(f.size()));
    const auto b = static_cast<Field::Element>(rng.below(f.size()));
    const auto c = static_cast<Field::Element>(rng.below(f.size()));
    EXPECT_EQ(f.mul(a, Field::add(b, c)),
              Field::add(f.mul(a, b), f.mul(a, c)));
  }
}

TEST_P(FieldAxioms, AlphaGeneratesWholeGroup) {
  const Field f(GetParam());
  // alpha^order == 1 and no smaller positive power is 1 is implied by the
  // constructor's full-cycle check; spot-check the group structure.
  EXPECT_EQ(f.alpha_pow(0), 1u);
  EXPECT_EQ(f.alpha_pow(f.order()), 1u);
  EXPECT_EQ(f.alpha_pow(-1), f.inverse(f.alpha_pow(1)));
}

TEST_P(FieldAxioms, LogExpRoundTrip) {
  const Field f(GetParam());
  for (Field::Element a = 1; a < std::min<std::uint32_t>(f.size(), 512); ++a) {
    EXPECT_EQ(f.alpha_pow(f.log(a)), a);
  }
}

TEST_P(FieldAxioms, PowMatchesRepeatedMultiplication) {
  const Field f(GetParam());
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a =
        static_cast<Field::Element>(1 + rng.below(f.size() - 1));
    Field::Element acc = 1;
    for (int k = 0; k <= 12; ++k) {
      EXPECT_EQ(f.pow(a, k), acc);
      acc = f.mul(acc, a);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFieldSizes, FieldAxioms,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12, 13, 14));

TEST(FieldTest, FrobeniusSquaringIsLinear) {
  const Field f(8);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<Field::Element>(rng.below(f.size()));
    const auto b = static_cast<Field::Element>(rng.below(f.size()));
    // (a + b)^2 == a^2 + b^2 in characteristic 2.
    EXPECT_EQ(f.pow(Field::add(a, b), 2),
              Field::add(f.pow(a, 2), f.pow(b, 2)));
  }
}

TEST(FieldTest, PowZeroBase) {
  const Field f(4);
  EXPECT_EQ(f.pow(0, 0), 1u);
  EXPECT_EQ(f.pow(0, 5), 0u);
}

TEST(FieldTest, DivMatchesMulInverse) {
  const Field f(6);
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const auto a = static_cast<Field::Element>(rng.below(f.size()));
    const auto b =
        static_cast<Field::Element>(1 + rng.below(f.size() - 1));
    EXPECT_EQ(f.div(a, b), f.mul(a, f.inverse(b)));
  }
}

}  // namespace
}  // namespace flex::gf
