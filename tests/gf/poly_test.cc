#include "gf/poly.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gf/gf2m.h"

namespace flex::gf {
namespace {

Poly random_poly(const Field& f, Rng& rng, int max_degree) {
  std::vector<Field::Element> coeffs(
      static_cast<std::size_t>(rng.below(max_degree + 1) + 1));
  for (auto& c : coeffs) c = static_cast<Field::Element>(rng.below(f.size()));
  return Poly(std::move(coeffs));
}

TEST(PolyTest, ZeroPolynomial) {
  Poly p;
  EXPECT_TRUE(p.is_zero());
  EXPECT_EQ(p.degree(), -1);
  EXPECT_EQ(p.coeff(0), 0u);
  EXPECT_EQ(p.coeff(99), 0u);
}

TEST(PolyTest, TrimsLeadingZeros) {
  Poly p({1, 2, 0, 0});
  EXPECT_EQ(p.degree(), 1);
}

TEST(PolyTest, AdditionIsXor) {
  Poly a({1, 2, 3});
  Poly b({3, 2, 3});
  const Poly sum = Poly::add(a, b);
  EXPECT_EQ(sum.degree(), 0);
  EXPECT_EQ(sum.coeff(0), 2u);
}

TEST(PolyTest, AddIsOwnInverse) {
  const Field f(5);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Poly a = random_poly(f, rng, 10);
    EXPECT_TRUE(Poly::add(a, a).is_zero());
  }
}

TEST(PolyTest, MulDegreeAndEval) {
  const Field f(6);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const Poly a = random_poly(f, rng, 8);
    const Poly b = random_poly(f, rng, 8);
    const Poly ab = Poly::mul(f, a, b);
    if (!a.is_zero() && !b.is_zero()) {
      EXPECT_EQ(ab.degree(), a.degree() + b.degree());
    }
    // Evaluation is a ring homomorphism.
    const auto x = static_cast<Field::Element>(rng.below(f.size()));
    EXPECT_EQ(ab.eval(f, x), f.mul(a.eval(f, x), b.eval(f, x)));
  }
}

TEST(PolyTest, ModIsRemainder) {
  const Field f(6);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Poly a = random_poly(f, rng, 16);
    Poly b = random_poly(f, rng, 6);
    if (b.is_zero()) b = Poly::one();
    const Poly r = Poly::mod(f, a, b);
    EXPECT_LT(r.degree(), std::max(b.degree(), 0));
    // a - r must be divisible by b: check via evaluation at roots is hard,
    // so verify mod(a + r, b) == 0 instead (a ≡ r, so a + r ≡ 0).
    EXPECT_TRUE(Poly::mod(f, Poly::add(a, r), b).is_zero());
  }
}

TEST(PolyTest, MulThenModRecoversZero) {
  const Field f(8);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const Poly a = random_poly(f, rng, 8);
    Poly b = random_poly(f, rng, 5);
    if (b.is_zero()) b = Poly::one();
    EXPECT_TRUE(Poly::mod(f, Poly::mul(f, a, b), b).is_zero());
  }
}

TEST(PolyTest, ScaleMatchesMonomialMul) {
  const Field f(5);
  Rng rng(5);
  const Poly a = random_poly(f, rng, 7);
  const auto c = static_cast<Field::Element>(1 + rng.below(f.size() - 1));
  EXPECT_EQ(Poly::scale(f, a, c), Poly::mul(f, a, Poly::monomial(c, 0)));
}

TEST(PolyTest, DerivativeKillsEvenPowers) {
  // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2 over GF(2^m).
  Poly p({7, 5, 3, 9});
  const Poly d = p.derivative();
  EXPECT_EQ(d.degree(), 2);
  EXPECT_EQ(d.coeff(0), 5u);
  EXPECT_EQ(d.coeff(1), 0u);
  EXPECT_EQ(d.coeff(2), 9u);
}

TEST(PolyTest, TruncateKeepsLowCoefficients) {
  Poly p({1, 2, 3, 4});
  const Poly t = Poly::truncate(p, 2);
  EXPECT_EQ(t.degree(), 1);
  EXPECT_EQ(t.coeff(0), 1u);
  EXPECT_EQ(t.coeff(1), 2u);
}

TEST(PolyTest, EvalHorner) {
  const Field f(4);
  // p(x) = 1 + x + x^2 at x = alpha: compare against explicit powers.
  Poly p({1, 1, 1});
  const Field::Element alpha = f.alpha_pow(1);
  const Field::Element expected =
      Field::add(Field::add(1, alpha), f.mul(alpha, alpha));
  EXPECT_EQ(p.eval(f, alpha), expected);
}

}  // namespace
}  // namespace flex::gf
