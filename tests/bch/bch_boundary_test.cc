// Boundary and burst behaviour of the BCH codec: errors at the message /
// parity seam, in the shortened region's neighbourhood, and in contiguous
// bursts (a BCH code corrects t errors wherever they sit — unlike
// interleaved RS setups there is no burst advantage or penalty).
#include <gtest/gtest.h>

#include "bch/bch.h"
#include "common/rng.h"

namespace flex::bch {
namespace {

std::vector<std::uint8_t> random_message(const BchCode& code, Rng& rng) {
  std::vector<std::uint8_t> m(static_cast<std::size_t>(code.k()));
  for (auto& bit : m) bit = static_cast<std::uint8_t>(rng.below(2));
  return m;
}

class BurstPosition : public ::testing::TestWithParam<int> {};

TEST_P(BurstPosition, ContiguousBurstOfTCorrects) {
  const BchCode code(8, 5);  // n=255, t=5
  Rng rng(GetParam());
  const auto clean = code.encode(random_message(code, rng));
  auto noisy = clean;
  const int start = GetParam();
  for (int i = 0; i < code.t(); ++i) {
    noisy[static_cast<std::size_t>((start + i) % code.n())] ^= 1;
  }
  const auto result = code.decode(noisy);
  ASSERT_TRUE(result.success) << "burst at " << start;
  EXPECT_EQ(result.corrected_bits, code.t());
  EXPECT_EQ(noisy, clean);
}

// Bursts spanning the message/parity seam (k=215) and the word edges.
INSTANTIATE_TEST_SUITE_P(SeamAndEdges, BurstPosition,
                         ::testing::Values(0, 100, 213, 214, 215, 250, 252));

TEST(BchBoundaryTest, SingleErrorAtEveryTenthPosition) {
  const BchCode code(7, 2);  // n=127
  Rng rng(1);
  const auto clean = code.encode(random_message(code, rng));
  for (int pos = 0; pos < code.n(); pos += 10) {
    auto noisy = clean;
    noisy[static_cast<std::size_t>(pos)] ^= 1;
    const auto result = code.decode(noisy);
    ASSERT_TRUE(result.success) << "position " << pos;
    EXPECT_EQ(result.corrected_bits, 1);
    EXPECT_EQ(noisy, clean);
  }
}

TEST(BchBoundaryTest, AllZeroAndAllOneMessages) {
  const BchCode code(6, 3);
  const std::vector<std::uint8_t> zeros(static_cast<std::size_t>(code.k()), 0);
  const std::vector<std::uint8_t> ones(static_cast<std::size_t>(code.k()), 1);
  for (const auto& message : {zeros, ones}) {
    auto word = code.encode(message);
    Rng rng(2);
    for (int e = 0; e < code.t(); ++e) {
      word[static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(code.n())))] ^= 1;
    }
    EXPECT_TRUE(code.decode(word).success);
    EXPECT_TRUE(
        std::equal(message.begin(), message.end(), word.begin()));
  }
}

TEST(BchBoundaryTest, TEqualsOneCode) {
  // The degenerate single-error-correcting (Hamming-equivalent) case.
  const BchCode code(5, 1);  // n=31, k=26
  EXPECT_EQ(code.parity_bits(), 5);
  Rng rng(3);
  const auto clean = code.encode(random_message(code, rng));
  for (int pos = 0; pos < code.n(); ++pos) {
    auto noisy = clean;
    noisy[static_cast<std::size_t>(pos)] ^= 1;
    const auto result = code.decode(noisy);
    ASSERT_TRUE(result.success) << pos;
    EXPECT_EQ(noisy, clean);
  }
}

TEST(BchBoundaryTest, HeavilyShortenedCode) {
  // Heavily shortened n=511 code: the flash-controller-style metadata
  // configuration with a 36-bit payload.
  const BchCode code(9, 4, /*shorten=*/475 - 64 + 28);  // k = 511-36-439 = 36
  ASSERT_GT(code.k(), 0);
  Rng rng(4);
  const auto clean = code.encode(random_message(code, rng));
  auto noisy = clean;
  for (int e = 0; e < code.t(); ++e) {
    noisy[static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(code.n())))] ^= 1;
  }
  EXPECT_TRUE(code.decode(noisy).success);
  EXPECT_EQ(noisy, clean);
}

TEST(BchBoundaryDeathTest, OverShorteningRejected) {
  // Shortening beyond k leaves no message bits.
  EXPECT_DEATH(BchCode(5, 3, 31), "precondition");
}

}  // namespace
}  // namespace flex::bch
