#include "bch/bch.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace flex::bch {
namespace {

std::vector<std::uint8_t> random_message(int k, Rng& rng) {
  std::vector<std::uint8_t> m(static_cast<std::size_t>(k));
  for (auto& bit : m) bit = static_cast<std::uint8_t>(rng.below(2));
  return m;
}

// Flips `count` distinct random positions.
void inject_errors(std::vector<std::uint8_t>& word, int count, Rng& rng) {
  std::vector<int> positions(word.size());
  std::iota(positions.begin(), positions.end(), 0);
  for (int i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.range(i, static_cast<std::int64_t>(positions.size()) - 1));
    std::swap(positions[static_cast<std::size_t>(i)], positions[j]);
    word[static_cast<std::size_t>(positions[static_cast<std::size_t>(i)])] ^=
        1;
  }
}

TEST(BchTest, CodeDimensions) {
  const BchCode code(8, 4);  // n = 255
  EXPECT_EQ(code.n(), 255);
  // Each of the 4 cyclotomic cosets has <= 8 elements: k = 255 - 32 = 223
  // for the classic (255, 223) t=4 code.
  EXPECT_EQ(code.k(), 223);
  EXPECT_EQ(code.t(), 4);
}

TEST(BchTest, EncodeProducesCodeword) {
  const BchCode code(7, 3);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto m = random_message(code.k(), rng);
    const auto c = code.encode(m);
    EXPECT_EQ(static_cast<int>(c.size()), code.n());
    EXPECT_TRUE(code.is_codeword(c));
    // Systematic: message occupies the first k positions.
    EXPECT_TRUE(std::equal(m.begin(), m.end(), c.begin()));
  }
}

TEST(BchTest, CleanWordDecodesWithZeroCorrections) {
  const BchCode code(7, 3);
  Rng rng(2);
  auto c = code.encode(random_message(code.k(), rng));
  const DecodeResult result = code.decode(c);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.corrected_bits, 0);
}

class BchCorrection : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BchCorrection, CorrectsUpToTErrors) {
  const auto [m, t] = GetParam();
  const BchCode code(m, t);
  Rng rng(static_cast<std::uint64_t>(m * 100 + t));
  for (int errors = 0; errors <= t; ++errors) {
    for (int trial = 0; trial < 5; ++trial) {
      const auto message = random_message(code.k(), rng);
      const auto clean = code.encode(message);
      auto noisy = clean;
      inject_errors(noisy, errors, rng);
      const DecodeResult result = code.decode(noisy);
      ASSERT_TRUE(result.success) << "m=" << m << " t=" << t
                                  << " errors=" << errors;
      EXPECT_EQ(result.corrected_bits, errors);
      EXPECT_EQ(noisy, clean);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BchCorrection,
    ::testing::Values(std::make_tuple(5, 2), std::make_tuple(6, 3),
                      std::make_tuple(7, 2), std::make_tuple(7, 5),
                      std::make_tuple(8, 4), std::make_tuple(9, 6),
                      std::make_tuple(10, 8)));

TEST(BchTest, DetectsBeyondTMostOfTheTime) {
  const BchCode code(8, 3);
  Rng rng(5);
  int failures_flagged = 0;
  int miscorrections = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    const auto message = random_message(code.k(), rng);
    const auto clean = code.encode(message);
    auto noisy = clean;
    inject_errors(noisy, code.t() + 2, rng);  // 5 errors, t = 3
    const DecodeResult result = code.decode(noisy);
    if (!result.success) {
      ++failures_flagged;
      EXPECT_NE(noisy, clean);  // word left untouched (still corrupted)
    } else if (noisy != clean) {
      ++miscorrections;  // decoded to a *different* codeword: possible
    }
  }
  // With 2t+1 = 7 minimum distance, 5 errors usually land outside every
  // decoding sphere; require that detection dominates.
  EXPECT_GT(failures_flagged, trials / 2);
  EXPECT_LT(miscorrections, trials / 2);
}

TEST(BchTest, ShortenedCodeRoundTrip) {
  const BchCode code(9, 5, /*shorten=*/200);
  EXPECT_EQ(code.n(), 511 - 200);
  Rng rng(6);
  for (int errors = 0; errors <= code.t(); ++errors) {
    const auto message = random_message(code.k(), rng);
    const auto clean = code.encode(message);
    auto noisy = clean;
    inject_errors(noisy, errors, rng);
    const DecodeResult result = code.decode(noisy);
    ASSERT_TRUE(result.success) << "errors=" << errors;
    EXPECT_EQ(noisy, clean);
  }
}

TEST(BchTest, GeneratorDividesXnMinusOne) {
  // g(x) | x^n - 1 is equivalent to: every codeword cyclic shift is a
  // codeword. Check one shift on a random codeword.
  const BchCode code(6, 2);
  Rng rng(7);
  const auto c = code.encode(random_message(code.k(), rng));
  // Rebuild the polynomial-ordered bit vector, rotate, and re-check.
  // Layout: c[0..k-1] at positions p..n-1, c[k..n-1] at positions 0..p-1.
  const int n = code.n();
  const int k = code.k();
  const int p = code.parity_bits();
  std::vector<std::uint8_t> poly_bits(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int pos = i < k ? p + i : i - k;
    poly_bits[static_cast<std::size_t>(pos)] =
        c[static_cast<std::size_t>(i)];
  }
  std::rotate(poly_bits.begin(), poly_bits.end() - 1, poly_bits.end());
  std::vector<std::uint8_t> rotated(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int pos = i < k ? p + i : i - k;
    rotated[static_cast<std::size_t>(i)] =
        poly_bits[static_cast<std::size_t>(pos)];
  }
  EXPECT_TRUE(code.is_codeword(rotated));
}

TEST(BchTest, RateReportedConsistently) {
  const BchCode code(8, 4);
  EXPECT_NEAR(code.rate(), 223.0 / 255.0, 1e-12);
}

}  // namespace
}  // namespace flex::bch
