#include "trace/trace.h"

#include <sstream>

#include <gtest/gtest.h>

namespace flex::trace {
namespace {

TEST(TraceTest, CsvRoundTrip) {
  const std::vector<Request> original = {
      {.arrival = 0, .is_write = false, .lpn = 100, .pages = 4},
      {.arrival = 1500 * kMicrosecond, .is_write = true, .lpn = 7, .pages = 1},
      {.arrival = 2 * kSecond, .is_write = false, .lpn = 0, .pages = 64},
  };
  std::stringstream buffer;
  write_csv(buffer, original);
  const std::vector<Request> parsed = read_csv(buffer);
  EXPECT_EQ(parsed, original);
}

TEST(TraceTest, SkipsCommentsAndBlankLines) {
  std::stringstream in("# header\n\n10,R,5,1\n");
  const auto parsed = read_csv(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].lpn, 5u);
  EXPECT_EQ(parsed[0].arrival, 10 * kMicrosecond);
}

TEST(TraceTest, LowercaseOpsAccepted) {
  std::stringstream in("1,w,2,3\n");
  const auto parsed = read_csv(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0].is_write);
}

TEST(TraceTest, MalformedLinesThrow) {
  for (const char* bad : {"1,R,5\n", "x,R,5,1\n", "1,Q,5,1\n", "1,R,5,0\n",
                          "1,R,five,1\n", "1,R,5,1,extra\n"}) {
    std::stringstream in(bad);
    EXPECT_THROW((void)read_csv(in), std::runtime_error) << bad;
  }
}

TEST(TraceTest, SummarizeCounts) {
  const std::vector<Request> trace = {
      {.arrival = 0, .is_write = false, .lpn = 10, .pages = 4},
      {.arrival = 1, .is_write = true, .lpn = 100, .pages = 2},
      {.arrival = 2, .is_write = false, .lpn = 5, .pages = 1},
  };
  const TraceSummary s = summarize(trace);
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.read_pages, 5u);
  EXPECT_EQ(s.write_pages, 2u);
  EXPECT_EQ(s.max_lpn, 101u);
  EXPECT_NEAR(s.read_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(TraceTest, SummarizeEmpty) {
  const TraceSummary s = summarize({});
  EXPECT_EQ(s.requests, 0u);
  EXPECT_DOUBLE_EQ(s.read_fraction(), 0.0);
}

}  // namespace
}  // namespace flex::trace
