// The read/write region partition of the workload generator: reads live in
// the first 70% of the footprint; only `read_write_overlap` of writes
// enter it. This is what keeps the read-hot set's retention age growing —
// the population FlexLevel feeds on.
#include <gtest/gtest.h>

#include "trace/workloads.h"

namespace flex::trace {
namespace {

WorkloadParams test_params(double overlap, double read_fraction) {
  WorkloadParams p;
  p.name = "regions";
  p.read_fraction = read_fraction;
  p.zipf_theta = 0.9;
  p.footprint_pages = 100'000;
  p.mean_request_pages = 1.0;
  p.max_request_pages = 1;
  p.iops = 1000;
  p.requests = 60'000;
  p.read_write_overlap = overlap;
  p.sequential_fraction = 0.0;  // isolate the region logic
  return p;
}

TEST(WorkloadRegionsTest, ReadsStayInReadRegion) {
  const auto params = test_params(0.5, 0.7);
  const std::uint64_t read_span = params.footprint_pages * 7 / 10;
  for (const auto& req : generate(params, 1)) {
    if (!req.is_write) {
      EXPECT_LT(req.lpn, read_span);
    }
  }
}

TEST(WorkloadRegionsTest, OverlapControlsWritesInReadRegion) {
  const std::uint64_t read_span = 70'000;
  auto fraction_in_read_region = [&](double overlap) {
    const auto trace = generate(test_params(overlap, 0.3), 2);
    std::uint64_t writes = 0;
    std::uint64_t in_region = 0;
    for (const auto& req : trace) {
      if (req.is_write) {
        ++writes;
        if (req.lpn < read_span) ++in_region;
      }
    }
    return static_cast<double>(in_region) / static_cast<double>(writes);
  };
  EXPECT_NEAR(fraction_in_read_region(0.2), 0.2, 0.02);
  EXPECT_NEAR(fraction_in_read_region(0.8), 0.8, 0.02);
}

TEST(WorkloadRegionsTest, ZeroOverlapSeparatesWorkingSets) {
  const auto trace = generate(test_params(0.0, 0.5), 3);
  const std::uint64_t read_span = 70'000;
  for (const auto& req : trace) {
    if (req.is_write) {
      EXPECT_GE(req.lpn, read_span);
    } else {
      EXPECT_LT(req.lpn, read_span);
    }
  }
}

TEST(WorkloadRegionsTest, FullOverlapWritesShareReadDistribution) {
  const auto trace = generate(test_params(1.0, 0.5), 4);
  const std::uint64_t read_span = 70'000;
  for (const auto& req : trace) {
    EXPECT_LT(req.lpn, read_span);
  }
}

TEST(WorkloadRegionsTest, SequentialRunsMayCrossRegions) {
  // With sequentiality on, continuation requests follow the previous one
  // of their kind; nothing may escape the footprint.
  auto params = test_params(0.5, 0.6);
  params.sequential_fraction = 0.5;
  params.mean_request_pages = 4.0;
  params.max_request_pages = 16;
  for (const auto& req : generate(params, 5)) {
    EXPECT_LE(req.lpn + req.pages, params.footprint_pages);
  }
}

}  // namespace
}  // namespace flex::trace
