#include "trace/workloads.h"

#include <unordered_map>

#include <gtest/gtest.h>

namespace flex::trace {
namespace {

class WorkloadSweep : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadSweep, MatchesDeclaredReadFraction) {
  const WorkloadParams params = workload_params(GetParam());
  const auto trace = generate(params, 1);
  const TraceSummary s = summarize(trace);
  EXPECT_EQ(s.requests, params.requests);
  EXPECT_NEAR(s.read_fraction(), params.read_fraction, 0.01) << params.name;
}

TEST_P(WorkloadSweep, StaysWithinFootprint) {
  const WorkloadParams params = workload_params(GetParam());
  const auto trace = generate(params, 2);
  for (const auto& req : trace) {
    EXPECT_LE(req.lpn + req.pages, params.footprint_pages);
    EXPECT_GE(req.pages, 1u);
    EXPECT_LE(req.pages, params.max_request_pages);
  }
}

TEST_P(WorkloadSweep, ArrivalsAreMonotone) {
  const WorkloadParams params = workload_params(GetParam());
  const auto trace = generate(params, 3);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
  }
}

TEST_P(WorkloadSweep, Deterministic) {
  const WorkloadParams params = workload_params(GetParam());
  EXPECT_EQ(generate(params, 7), generate(params, 7));
  EXPECT_NE(generate(params, 7), generate(params, 8));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSweep,
                         ::testing::ValuesIn(kAllWorkloads));

TEST(WorkloadsTest, NamesMatchPaper) {
  EXPECT_EQ(workload_name(Workload::kFin2), "fin-2");
  EXPECT_EQ(workload_name(Workload::kWeb1), "web-1");
  EXPECT_EQ(workload_name(Workload::kPrj2), "prj-2");
  EXPECT_EQ(workload_name(Workload::kWin2), "win-2");
}

TEST(WorkloadsTest, ReadsAreSkewed) {
  const WorkloadParams params = workload_params(Workload::kFin2);
  const auto trace = generate(params, 4);
  std::unordered_map<std::uint64_t, int> read_counts;
  std::uint64_t reads = 0;
  for (const auto& req : trace) {
    if (!req.is_write) {
      ++read_counts[req.lpn];
      ++reads;
    }
  }
  // Hot set: pages covering the top of the popularity distribution should
  // absorb a large share of reads. Count reads landing on the 1% most-read
  // pages.
  std::vector<int> counts;
  counts.reserve(read_counts.size());
  for (const auto& [lpn, count] : read_counts) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  std::uint64_t hot_reads = 0;
  const std::size_t hot_pages = std::max<std::size_t>(counts.size() / 100, 1);
  for (std::size_t i = 0; i < hot_pages; ++i) {
    hot_reads += static_cast<std::uint64_t>(counts[i]);
  }
  EXPECT_GT(static_cast<double>(hot_reads) / reads, 0.2);
}

TEST(WorkloadsTest, WebIsReadHeavierThanPrj) {
  const auto web = summarize(generate(workload_params(Workload::kWeb1), 5));
  const auto prj = summarize(generate(workload_params(Workload::kPrj1), 5));
  EXPECT_GT(web.read_fraction(), prj.read_fraction());
}

TEST(WorkloadsTest, SequentialRunsExist) {
  const auto params = workload_params(Workload::kPrj1);
  const auto trace = generate(params, 6);
  int sequential = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].lpn == trace[i - 1].lpn + trace[i - 1].pages) ++sequential;
  }
  EXPECT_GT(sequential, static_cast<int>(trace.size() / 50));
}

}  // namespace
}  // namespace flex::trace
