// FaultInjector: deterministic, stateless fault decisions. The whole
// subsystem hangs on the determinism contract — identical (seed, kind,
// identity) tuples give identical answers whatever the call order — so
// that is what these tests pin.
#include "faults/fault_injector.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace flex::faults {
namespace {

FaultConfig all_rates(double rate) {
  FaultConfig config;
  config.enabled = true;
  config.program_fail_rate = rate;
  config.erase_fail_rate = rate;
  config.grown_defect_rate = rate;
  config.read_retry_rescue = rate;
  return config;
}

TEST(FaultInjectorTest, ZeroRatesNeverFire) {
  const FaultInjector injector(all_rates(0.0), 0x5EED);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    EXPECT_FALSE(injector.program_fails(i, static_cast<std::uint32_t>(i)));
    EXPECT_FALSE(injector.erase_fails(static_cast<std::uint32_t>(i), 7));
    EXPECT_FALSE(injector.grown_defect(static_cast<std::uint32_t>(i), 7));
    EXPECT_FALSE(injector.read_retry_rescues(i, i));
  }
}

TEST(FaultInjectorTest, UnitRatesAlwaysFire) {
  const FaultInjector injector(all_rates(1.0), 0x5EED);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    EXPECT_TRUE(injector.program_fails(i, static_cast<std::uint32_t>(i)));
    EXPECT_TRUE(injector.erase_fails(static_cast<std::uint32_t>(i), 7));
    EXPECT_TRUE(injector.grown_defect(static_cast<std::uint32_t>(i), 7));
    EXPECT_TRUE(injector.read_retry_rescues(i, i));
  }
}

TEST(FaultInjectorTest, SameIdentitySameAnswer) {
  // Stateless: re-asking (any number of times, in any order) cannot change
  // the answer — the property that makes fault patterns independent of
  // simulation interleaving and of --jobs.
  const FaultInjector a(all_rates(0.5), 1234);
  const FaultInjector b(all_rates(0.5), 1234);
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(a.program_fails(i, 3), b.program_fails(i, 3));
    EXPECT_EQ(a.program_fails(i, 3), a.program_fails(i, 3));
    EXPECT_EQ(a.erase_fails(static_cast<std::uint32_t>(i), 9),
              b.erase_fails(static_cast<std::uint32_t>(i), 9));
    EXPECT_EQ(a.grown_defect(static_cast<std::uint32_t>(i), 9),
              b.grown_defect(static_cast<std::uint32_t>(i), 9));
    EXPECT_EQ(a.read_retry_rescues(i, i + 1), b.read_retry_rescues(i, i + 1));
  }
}

TEST(FaultInjectorTest, SeedChangesThePattern) {
  const FaultInjector a(all_rates(0.5), 1);
  const FaultInjector b(all_rates(0.5), 2);
  int differences = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (a.program_fails(i, 0) != b.program_fails(i, 0)) ++differences;
  }
  // Independent fair-ish coins disagree about half the time.
  EXPECT_GT(differences, 350);
  EXPECT_LT(differences, 650);
}

TEST(FaultInjectorTest, EraseGenerationChangesTheAnswer) {
  // The same page / block must be able to fail in one erase generation and
  // survive the next — the generation is part of the identity.
  const FaultInjector injector(all_rates(0.5), 77);
  int differences = 0;
  for (std::uint64_t ppn = 0; ppn < 1000; ++ppn) {
    if (injector.program_fails(ppn, 1) != injector.program_fails(ppn, 2)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 350);
  EXPECT_LT(differences, 650);
}

TEST(FaultInjectorTest, EmpiricalRateMatchesConfiguredRate) {
  FaultConfig config;
  config.enabled = true;
  config.program_fail_rate = 0.05;
  const FaultInjector injector(config, 0xBEEF);
  const int trials = 20000;
  int fails = 0;
  for (std::uint64_t i = 0; i < trials; ++i) {
    if (injector.program_fails(i, 0)) ++fails;
  }
  const double observed = static_cast<double>(fails) / trials;
  // 3-sigma band for p = 0.05, n = 20000 is roughly +/- 0.0046.
  EXPECT_NEAR(observed, 0.05, 0.008);
}

TEST(FaultInjectorTest, FaultKindsAreIndependentStreams) {
  // Equal (a, b) identities across different fault kinds must not be
  // correlated: the kind is folded into the hash first.
  const FaultInjector injector(all_rates(0.5), 99);
  int agreements = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (injector.program_fails(i, 4) ==
        injector.erase_fails(static_cast<std::uint32_t>(i), 4)) {
      ++agreements;
    }
  }
  EXPECT_GT(agreements, 350);
  EXPECT_LT(agreements, 650);
}

TEST(FaultInjectorTest, CrashDisabledNeverFires) {
  // crash_enabled gates crash_at() independently of the rate: a config
  // carrying an armed rate but crash_enabled=false must stay silent.
  FaultConfig config = all_rates(0.0);
  config.crash_rate = 1.0;  // crash_enabled stays false
  const FaultInjector injector(config, 0x5EED);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    EXPECT_FALSE(injector.crash_at(i));
  }
}

TEST(FaultInjectorTest, CrashUnitRateAlwaysFires) {
  FaultConfig config = all_rates(0.0);
  config.crash_enabled = true;
  config.crash_rate = 1.0;
  const FaultInjector injector(config, 0x5EED);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    EXPECT_TRUE(injector.crash_at(i));
  }
}

TEST(FaultInjectorTest, CrashAtIsDeterministicAndStateless) {
  FaultConfig config = all_rates(0.0);
  config.crash_enabled = true;
  config.crash_rate = 0.01;
  const FaultInjector a(config, 4242);
  const FaultInjector b(config, 4242);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(a.crash_at(i), b.crash_at(i));
    EXPECT_EQ(a.crash_at(i), a.crash_at(i));  // re-asking is free
  }
}

TEST(FaultInjectorTest, CrashSaltSelectsDistinctCrashPoints) {
  // The salt is the sweep axis: different salts move the first firing
  // ordinal, so a harness can walk crash points without touching the
  // seed (which would perturb the workload itself).
  FaultConfig config = all_rates(0.0);
  config.crash_enabled = true;
  config.crash_rate = 0.001;
  auto first_firing = [&](std::uint64_t salt) -> std::uint64_t {
    FaultConfig c = config;
    c.crash_salt = salt;
    const FaultInjector injector(c, 0x5EED);
    for (std::uint64_t i = 0; i < 1'000'000; ++i) {
      if (injector.crash_at(i)) return i;
    }
    return ~0ULL;
  };
  int distinct = 0;
  const std::uint64_t base = first_firing(0);
  for (std::uint64_t salt = 1; salt <= 8; ++salt) {
    if (first_firing(salt) != base) ++distinct;
  }
  EXPECT_GE(distinct, 7);  // ~1/1000 odds of any one collision
}

TEST(FaultInjectorTest, CorruptionKindsAtRateExtremes) {
  FaultConfig config;
  config.enabled = true;
  const FaultInjector never(config, 0x5EED);
  config.silent_corruption_rate = 1.0;
  config.misdirected_write_rate = 1.0;
  config.torn_relocation_rate = 1.0;
  const FaultInjector always(config, 0x5EED);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    EXPECT_FALSE(never.silent_corruption(i, i * 3));
    EXPECT_FALSE(never.misdirected_write(i, static_cast<std::uint32_t>(i)));
    EXPECT_FALSE(never.torn_relocation(i, static_cast<std::uint32_t>(i)));
    EXPECT_TRUE(always.silent_corruption(i, i * 3));
    EXPECT_TRUE(always.misdirected_write(i, static_cast<std::uint32_t>(i)));
    EXPECT_TRUE(always.torn_relocation(i, static_cast<std::uint32_t>(i)));
  }
}

TEST(FaultInjectorTest, CorruptionKindsAreIndependentStreams) {
  // The three corruption kinds hash distinct kind tags, so at the same
  // rate and identity they fire on different (ppn, generation) subsets —
  // and none of them aliases the pre-existing kinds.
  FaultConfig config;
  config.enabled = true;
  config.silent_corruption_rate = 0.5;
  config.misdirected_write_rate = 0.5;
  config.torn_relocation_rate = 0.5;
  config.program_fail_rate = 0.5;
  const FaultInjector injector(config, 99);
  int silent_vs_misdirect = 0;
  int misdirect_vs_torn = 0;
  int misdirect_vs_program = 0;
  for (std::uint64_t ppn = 0; ppn < 1000; ++ppn) {
    const auto gen = static_cast<std::uint32_t>(ppn % 7);
    if (injector.silent_corruption(ppn, gen) !=
        injector.misdirected_write(ppn, gen)) {
      ++silent_vs_misdirect;
    }
    if (injector.misdirected_write(ppn, gen) !=
        injector.torn_relocation(ppn, gen)) {
      ++misdirect_vs_torn;
    }
    if (injector.misdirected_write(ppn, gen) !=
        injector.program_fails(ppn, gen)) {
      ++misdirect_vs_program;
    }
  }
  EXPECT_GT(silent_vs_misdirect, 350);
  EXPECT_GT(misdirect_vs_torn, 350);
  EXPECT_GT(misdirect_vs_program, 350);
}

TEST(FaultInjectorTest, CorruptionDecisionsAreStateless) {
  FaultConfig config;
  config.enabled = true;
  config.silent_corruption_rate = 0.5;
  config.misdirected_write_rate = 0.5;
  config.torn_relocation_rate = 0.5;
  const FaultInjector a(config, 4242);
  const FaultInjector b(config, 4242);
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(a.silent_corruption(i, 11), b.silent_corruption(i, 11));
    EXPECT_EQ(a.misdirected_write(i, 3), b.misdirected_write(i, 3));
    EXPECT_EQ(a.torn_relocation(i, 3), a.torn_relocation(i, 3));
  }
}

TEST(FaultInjectorDeathTest, RejectsOutOfRangeRates) {
  FaultConfig config;
  config.program_fail_rate = 1.5;
  EXPECT_DEATH(FaultInjector(config, 0), "");
  config = FaultConfig{};
  config.read_retry_rescue = -0.1;
  EXPECT_DEATH(FaultInjector(config, 0), "");
  config = FaultConfig{};
  config.silent_corruption_rate = 1.01;
  EXPECT_DEATH(FaultInjector(config, 0), "");
  config = FaultConfig{};
  config.misdirected_write_rate = -0.5;
  EXPECT_DEATH(FaultInjector(config, 0), "");
  config = FaultConfig{};
  config.torn_relocation_rate = 2.0;
  EXPECT_DEATH(FaultInjector(config, 0), "");
}

}  // namespace
}  // namespace flex::faults
