// Regression locks on the headline paper-reproduction numbers (device
// level; the system level is covered by the benches and EXPERIMENTS.md).
// If a model or calibration change moves any of these, the reproduction
// quality changed — on purpose or not — and this test makes it loud.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "reliability/ber_model.h"
#include "reliability/sensing_solver.h"
#include "ssd/lifetime.h"

namespace flex {
namespace {

using flexlevel::NunmaScheme;

class PaperReproduction : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0x9A9E12);
    const reliability::BerEngine::Config mc{
        .wordlines = 64, .bitlines = 256, .rounds = 4, .coupling = {}};
    static const reliability::GrayMapper gray;
    static const flexlevel::ReduceCodeMapper reduce;
    baseline_ = new reliability::BerModel(nand::LevelConfig::baseline_mlc(),
                                          gray, reliability::RetentionModel{},
                                          mc, rng);
    nunma1_ = new reliability::BerModel(
        flexlevel::nunma_config(NunmaScheme::kNunma1), reduce,
        reliability::RetentionModel{}, mc, rng);
    nunma2_ = new reliability::BerModel(
        flexlevel::nunma_config(NunmaScheme::kNunma2), reduce,
        reliability::RetentionModel{}, mc, rng);
    nunma3_ = new reliability::BerModel(
        flexlevel::nunma_config(NunmaScheme::kNunma3), reduce,
        reliability::RetentionModel{}, mc, rng);
  }
  static void TearDownTestSuite() {
    delete baseline_;
    delete nunma1_;
    delete nunma2_;
    delete nunma3_;
    baseline_ = nunma1_ = nunma2_ = nunma3_ = nullptr;
  }

  static constexpr int kPe[5] = {2000, 3000, 4000, 5000, 6000};
  static constexpr double kAges[4] = {kDay, 2 * kDay, kWeek, kMonth};

  static double avg_reduction(const reliability::BerModel& scheme) {
    double sum = 0.0;
    int n = 0;
    for (const int pe : kPe) {
      for (const double age : kAges) {
        const double ours = scheme.retention_ber(pe, age);
        if (ours > 0.0) {
          sum += baseline_->retention_ber(pe, age) / ours;
          ++n;
        }
      }
    }
    return sum / n;
  }

  static reliability::BerModel* baseline_;
  static reliability::BerModel* nunma1_;
  static reliability::BerModel* nunma2_;
  static reliability::BerModel* nunma3_;
};

reliability::BerModel* PaperReproduction::baseline_ = nullptr;
reliability::BerModel* PaperReproduction::nunma1_ = nullptr;
reliability::BerModel* PaperReproduction::nunma2_ = nullptr;
reliability::BerModel* PaperReproduction::nunma3_ = nullptr;

TEST_F(PaperReproduction, Table5MatchesAtLeastSixteenOfTwentyCells) {
  // Paper Table 5, rows P/E 3000..6000, columns 0d/1d/2d/1w/1m.
  const int paper[4][5] = {{0, 0, 0, 0, 1},
                           {0, 0, 0, 1, 4},
                           {0, 0, 1, 2, 4},
                           {0, 1, 2, 4, 6}};
  const double ages[5] = {0.0, kDay, 2 * kDay, kWeek, kMonth};
  const reliability::SensingRequirement ladder;
  int matches = 0;
  int off_by_one = 0;
  const auto step_index = [&](int levels) {
    for (std::size_t i = 0; i < ladder.steps().size(); ++i) {
      if (ladder.steps()[i].extra_levels == levels) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 5; ++c) {
      const int pe = kPe[r + 1];
      const int measured =
          ladder.required_levels(baseline_->total_ber(pe, ages[c]));
      if (measured == paper[r][c]) {
        ++matches;
      } else if (std::abs(step_index(measured) - step_index(paper[r][c])) ==
                 1) {
        ++off_by_one;
      }
    }
  }
  EXPECT_GE(matches, 16) << "Table 5 reproduction regressed";
  // Every miss must be a single ladder step, never a jump.
  EXPECT_EQ(matches + off_by_one, 20);
}

TEST_F(PaperReproduction, Table4ReductionFactors) {
  // Paper: NUNMA 1/2 reduce retention BER ~2x/~5x on average.
  const double r1 = avg_reduction(*nunma1_);
  const double r2 = avg_reduction(*nunma2_);
  const double r3 = avg_reduction(*nunma3_);
  EXPECT_GT(r1, 1.5);
  EXPECT_LT(r1, 3.0);
  EXPECT_GT(r2, 3.5);
  EXPECT_LT(r2, 7.0);
  // Ordering must hold even though NUNMA 3's absolute overshoots the paper
  // (EXPERIMENTS.md discusses why).
  EXPECT_GT(r2, r1);
  EXPECT_GT(r3, r2);
}

TEST_F(PaperReproduction, Nunma3StaysHardDecisionEverywhere) {
  // The property the whole system rests on: reduced-state (NUNMA 3) reads
  // never need soft sensing across the full Table 4 envelope.
  const reliability::SensingRequirement ladder;
  for (const int pe : kPe) {
    for (const double age : kAges) {
      EXPECT_LT(nunma3_->total_ber(pe, age), ladder.hard_decision_cap())
          << "pe=" << pe << " age=" << age;
    }
  }
}

TEST_F(PaperReproduction, BaselineLandsInPaperDecade) {
  // Calibration contract: within 2x of the paper on the Table-5-relevant
  // part of the grid (P/E >= 3000); the low-wear corner, which nothing
  // downstream depends on, may drift up to 5x.
  const double low = baseline_->retention_ber(2000, kDay);       // 6.38e-4
  const double mid = baseline_->retention_ber(5000, kMonth);     // 1.20e-2
  const double high = baseline_->retention_ber(6000, kMonth);    // 1.61e-2
  EXPECT_GT(low, 6.38e-4 / 5.0);
  EXPECT_LT(low, 6.38e-4 * 5.0);
  EXPECT_GT(mid, 1.20e-2 / 2.0);
  EXPECT_LT(mid, 1.20e-2 * 2.0);
  EXPECT_GT(high, 1.61e-2 / 2.0);
  EXPECT_LT(high, 1.61e-2 * 2.0);
}

TEST_F(PaperReproduction, Fig5C2cOrdering) {
  // Reduced-state cells sit far below the baseline for C2C interference;
  // NUNMA 3's raised verify voltages make it the worst of the three
  // (paper: ~1.5x / ~1.2x above NUNMA 1 / 2).
  const double base = baseline_->c2c_ber();
  EXPECT_GT(base, 5.0 * nunma1_->c2c_ber());
  EXPECT_GT(base, 5.0 * nunma3_->c2c_ber());
  EXPECT_GE(nunma3_->c2c_ber(), 0.9 * nunma1_->c2c_ber());
}

TEST_F(PaperReproduction, LifetimeArithmetic) {
  // Paper Fig. 7(c): +13% erases past the P/E-4000 activation point of an
  // 8000-cycle part costs ~6% lifetime.
  EXPECT_NEAR(1.0 - ssd::lifetime_factor(1.13), 0.06, 0.01);
}

}  // namespace
}  // namespace flex
