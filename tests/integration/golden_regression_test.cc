// Golden read-response regression: small deterministic runs per scheme
// with the mean and p99 read response pinned to exact doubles.
//
// The simulator is a deterministic discrete-event system — same config,
// same trace, same binary semantics must give bit-identical statistics.
// These goldens catch silent behavioural drift that property tests miss:
// any intentional change to placement, scheduling, BER evaluation, or
// latency accounting shows up here and must update the constants in the
// same commit, making the drift reviewable. (Values are pure IEEE-double
// arithmetic on a fixed event sequence, not hardware-dependent noise.)
//
// To regenerate after an intentional change:
//   build/tests/integration_test --gtest_filter='*Golden*' also prints the
//   actual values on failure with full precision.
#include <cstdint>
#include <iomanip>
#include <iterator>
#include <utility>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "ssd/simulator.h"
#include "trace/workloads.h"

namespace flex::ssd {
namespace {

class GoldenRegression : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(2718);
    const reliability::BerEngine::Config mc{
        .wordlines = 32, .bitlines = 128, .rounds = 2, .coupling = {}};
    static const reliability::GrayMapper gray;
    static const flexlevel::ReduceCodeMapper reduce;
    normal_ = new reliability::BerModel(nand::LevelConfig::baseline_mlc(),
                                        gray, reliability::RetentionModel{},
                                        mc, rng);
    reduced_ = new reliability::BerModel(
        flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
        reliability::RetentionModel{}, mc, rng);
  }
  static void TearDownTestSuite() {
    delete normal_;
    delete reduced_;
    normal_ = nullptr;
    reduced_ = nullptr;
  }

  static SsdConfig config(Scheme scheme) {
    SsdConfig cfg;
    cfg.scheme = scheme;
    cfg.ftl.spec.page_size_bytes = 4096;
    cfg.ftl.spec.pages_per_block = 32;
    cfg.ftl.spec.blocks_per_chip = 64;
    cfg.ftl.spec.chips = 4;
    cfg.ftl.initial_pe_cycles = 6000;
    cfg.ftl.gc_low_watermark = 4;
    cfg.min_prefill_age = kDay;
    cfg.max_prefill_age = kMonth;
    cfg.write_buffer_pages = 64;
    cfg.write_buffer_flush_batch = 8;
    cfg.access_eval.pool_capacity_pages = 1024;
    cfg.access_eval.hotness = {.filter_count = 4,
                               .bits_per_filter = 1 << 14,
                               .hashes = 2,
                               .window_accesses = 512};
    return cfg;
  }

  static SsdResults run_scheme(SsdConfig cfg,
                               telemetry::Telemetry* telemetry = nullptr) {
    trace::WorkloadParams params;
    params.name = "golden";
    params.read_fraction = 0.85;
    params.zipf_theta = 0.95;
    params.footprint_pages = 4000;
    params.mean_request_pages = 1.4;
    params.max_request_pages = 8;
    params.iops = 1500;
    params.requests = 10'000;
    const auto trace = trace::generate(params, 777);
    SsdSimulator sim(std::move(cfg), *normal_, *reduced_);
    sim.prefill(4000);
    sim.attach_telemetry(telemetry);
    return sim.run(trace);
  }

  static void expect_golden(const SsdResults& results, double mean,
                            double p99) {
    // max_digits10 so a printed value pasted back round-trips exactly.
    EXPECT_DOUBLE_EQ(results.read_response.mean(), mean)
        << std::setprecision(17) << "actual mean "
        << results.read_response.mean();
    EXPECT_DOUBLE_EQ(results.read_latency_hist.quantile(0.99), p99)
        << std::setprecision(17) << "actual p99 "
        << results.read_latency_hist.quantile(0.99);
  }

  static reliability::BerModel* normal_;
  static reliability::BerModel* reduced_;
};

reliability::BerModel* GoldenRegression::normal_ = nullptr;
reliability::BerModel* GoldenRegression::reduced_ = nullptr;

TEST_F(GoldenRegression, Baseline) {
  expect_golden(run_scheme(config(Scheme::kBaseline)),
                /*mean=*/0.00059511423166295064, /*p99=*/0.0024815173388835457);
}

TEST_F(GoldenRegression, LdpcInSsd) {
  expect_golden(run_scheme(config(Scheme::kLdpcInSsd)),
                /*mean=*/0.00032234478699683089, /*p99=*/0.0020694821166842431);
}

TEST_F(GoldenRegression, LevelAdjustOnly) {
  expect_golden(run_scheme(config(Scheme::kLevelAdjustOnly)),
                /*mean=*/0.00018581624539373305, /*p99=*/0.0018824020865489581);
}

TEST_F(GoldenRegression, FlexLevel) {
  expect_golden(run_scheme(config(Scheme::kFlexLevel)),
                /*mean=*/0.00028164889789930771, /*p99=*/0.0020824576629127501);
}

TEST_F(GoldenRegression, LdpcInSsdWithRefresh) {
  // Disturb + refresh enabled: pins the new read path end to end.
  auto cfg = config(Scheme::kLdpcInSsd);
  // Accelerated stress: the hottest blocks of this trace accumulate
  // ~100-170 reads, so the knee must sit inside that range to exercise
  // both the ladder climb and the scrub.
  cfg.read_disturb.enabled = true;
  cfg.read_disturb.model.vth_shift_per_read = 8.0e-4;
  cfg.read_disturb.refresh_threshold = 100;
  expect_golden(run_scheme(std::move(cfg)),
                /*mean=*/0.00033390406454641421, /*p99=*/0.0020880572435739253);
}

TEST_F(GoldenRegression, FaultsDefaultOffIsByteIdentical)  {
  // The fault subsystem must be invisible when disabled: a config carrying
  // armed (nonzero) rates but enabled=false reproduces the FlexLevel
  // goldens exactly. Fault support may not perturb placement, scheduling,
  // or any RNG stream of a clean run.
  auto cfg = config(Scheme::kFlexLevel);
  cfg.faults.program_fail_rate = 0.25;
  cfg.faults.erase_fail_rate = 0.25;
  cfg.faults.grown_defect_rate = 0.25;  // enabled stays false
  const SsdResults results = run_scheme(std::move(cfg));
  expect_golden(results,
                /*mean=*/0.00028164889789930771, /*p99=*/0.0020824576629127501);
  EXPECT_EQ(results.retired_blocks, 0u);
  EXPECT_EQ(results.ftl.program_fails, 0u);
  EXPECT_EQ(results.data_loss_reads, 0u);
}

TEST_F(GoldenRegression, FlexLevelMetricsSnapshot) {
  // Pinned telemetry counters for the FlexLevel golden run: silent
  // instrumentation drift (a counter bumped twice, a site dropped) is
  // caught the same way behavioural drift is. Regenerate like the latency
  // goldens — the failure message prints every actual value.
  telemetry::Telemetry telemetry;
  const SsdResults results =
      run_scheme(config(Scheme::kFlexLevel), &telemetry);
  const std::pair<const char*, std::uint64_t> expected[] = {
      {"chip.commands", 11639},
      {"chip.queued_commands", 2748},
      {"event_queue.fired", 21639},
      {"event_queue.scheduled", 21639},
      {"ftl.erase_fails", 0},
      {"ftl.gc_page_moves", 0},
      {"ftl.gc_runs", 0},
      {"ftl.grown_defects", 0},
      {"ftl.host_writes", 1568},
      {"ftl.misdirected_writes", 0},
      {"ftl.mode_migrations", 533},
      {"ftl.mount_mappings_recovered", 0},
      {"ftl.mount_pages_scanned", 0},
      {"ftl.mount_stale_records", 0},
      {"ftl.mounts", 0},
      {"ftl.nand_erases", 0},
      {"ftl.nand_writes", 2101},
      {"ftl.program_fails", 0},
      {"ftl.refresh_page_moves", 0},
      {"ftl.refresh_runs", 0},
      {"ftl.repair_writes", 0},
      {"ftl.retire_page_moves", 0},
      {"ftl.retired_blocks", 0},
      {"ftl.torn_relocations", 0},
      {"policy.migrations_to_normal", 0},
      {"policy.migrations_to_reduced", 533},
      {"ssd.buffer_hits", 1971},
      {"ssd.crashes", 0},
      {"ssd.integrity_mismatch_reads", 0},
      {"ssd.integrity_verified_reads", 0},
      {"ssd.reads", 8521},
      {"ssd.requests", 10000},
      {"ssd.uncorrectable_reads", 0},
      {"ssd.unmapped_reads", 0},
      {"ssd.writes", 1479},
      {"ssd.writes_acked", 2044},
      {"ssd.writes_durable", 1568},
      {"tenant.0.reads", 8521},
      {"tenant.0.rejected", 0},
      {"tenant.0.writes", 1479},
  };
  ASSERT_EQ(results.metrics.counters.size(), std::size(expected));
  for (const auto& [name, value] : expected) {
    ASSERT_TRUE(results.metrics.counters.contains(name)) << name;
    EXPECT_EQ(results.metrics.counters.at(name), value) << name;
  }
  // The snapshot's own cross-checks against SsdResults.
  EXPECT_EQ(results.metrics.counters.at("ssd.reads"),
            results.read_response.count());
  EXPECT_EQ(results.metrics.counters.at("ftl.gc_runs"), results.ftl.gc_runs);
  EXPECT_EQ(results.metrics.histograms.at("ssd.read_latency_us").total,
            results.read_response.count());
}

}  // namespace
}  // namespace flex::ssd
