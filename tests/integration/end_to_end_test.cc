// Cross-module integration tests: the full data path (bits -> cells ->
// noise -> read -> LDPC) and the full system path (trace -> SSD -> stats).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "ldpc/channel.h"
#include "ldpc/decoder.h"
#include "ldpc/encoder.h"
#include "ldpc/qc_code.h"
#include "nand/level_config.h"
#include "reliability/ber_engine.h"
#include "reliability/ber_model.h"
#include "reliability/sensing_solver.h"
#include "ssd/simulator.h"
#include "trace/workloads.h"

namespace flex {
namespace {

// The paper's device-level pipeline: store an LDPC codeword in simulated
// cells, age them, read back, and decode with the sensing levels the
// solver prescribes for the measured BER.
TEST(EndToEndTest, CodewordSurvivesAgedBaselineCellsWithPrescribedSensing) {
  Rng rng(1);
  const ldpc::QcLdpcCode code = ldpc::QcLdpcCode::paper_code();
  const ldpc::Encoder encoder(code);
  const ldpc::Decoder decoder(code);
  const reliability::SensingRequirement ladder;

  // Measure the baseline cell BER at a stressed operating point.
  const nand::LevelConfig cfg = nand::LevelConfig::baseline_mlc();
  const reliability::GrayMapper mapper;
  const reliability::RetentionModel retention;
  reliability::BerEngine engine(
      {.wordlines = 64, .bitlines = 256, .rounds = 4, .coupling = {}});
  const auto report =
      engine.measure(cfg, mapper, &retention, 5000, kWeek, rng);
  const double ber = report.total.rate();
  ASSERT_GT(ber, 0.0);
  ASSERT_LT(ber, ladder.max_correctable());

  bool correctable = false;
  const int levels = ladder.required_levels(ber, &correctable);
  ASSERT_TRUE(correctable);

  // Transmit codewords through an equivalent channel at that BER with the
  // prescribed sensing depth: decoding must succeed.
  const ldpc::SensingChannel channel(ber, levels);
  int successes = 0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint8_t> message(static_cast<std::size_t>(code.k()));
    for (auto& b : message) b = static_cast<std::uint8_t>(rng.below(2));
    const auto cw = encoder.encode(message);
    const auto llrs = channel.transmit(cw, rng);
    const auto result = decoder.decode(llrs);
    if (result.success && result.bits == cw) ++successes;
  }
  EXPECT_GE(successes, trials - 1);
}

// The reduced-state pipeline: NUNMA 3 cells at the paper's worst operating
// point stay below the hard-decision cap, so hard LDPC suffices.
TEST(EndToEndTest, ReducedCellsDecodeHardAtWorstCase) {
  Rng rng(2);
  const reliability::SensingRequirement ladder;
  const flexlevel::ReduceCodeMapper mapper;
  const reliability::RetentionModel retention;
  reliability::BerEngine engine(
      {.wordlines = 64, .bitlines = 256, .rounds = 4, .coupling = {}});
  const auto report = engine.measure(
      flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), mapper,
      &retention, 6000, kMonth, rng);
  EXPECT_LT(report.total.rate(), ladder.hard_decision_cap());
  EXPECT_EQ(ladder.required_levels(report.total.rate()), 0);
}

// Full system: the four §6.2 schemes ranked on one workload. This is the
// qualitative content of Fig. 6(a) as an invariant.
TEST(EndToEndTest, SchemeOrderingOnWorkload) {
  Rng rng(3);
  const reliability::BerEngine::Config mc{
      .wordlines = 32, .bitlines = 128, .rounds = 2, .coupling = {}};
  const reliability::GrayMapper gray;
  const flexlevel::ReduceCodeMapper reduce;
  const reliability::BerModel normal(nand::LevelConfig::baseline_mlc(), gray,
                                     reliability::RetentionModel{}, mc, rng);
  const reliability::BerModel reduced(
      flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
      reliability::RetentionModel{}, mc, rng);

  // A read-dominated, moderately loaded scenario over old data: the regime
  // where LDPC soft sensing costs the most and FlexLevel's mechanism has
  // something to remove.
  trace::WorkloadParams params = trace::workload_params(trace::Workload::kWeb1);
  params.footprint_pages = 4000;
  params.requests = 30'000;
  params.read_fraction = 0.98;
  params.iops = 1'500.0;
  const auto requests = trace::generate(params, 99);

  auto run_scheme = [&](ssd::Scheme scheme) {
    ssd::SsdConfig cfg;
    cfg.scheme = scheme;
    cfg.ftl.spec.page_size_bytes = 4096;
    cfg.ftl.spec.pages_per_block = 32;
    cfg.ftl.spec.blocks_per_chip = 64;
    cfg.ftl.spec.chips = 4;
    cfg.ftl.initial_pe_cycles = 6000;
    cfg.ftl.gc_low_watermark = 4;
    cfg.min_prefill_age = kDay;
    cfg.max_prefill_age = kMonth;
    cfg.write_buffer_pages = 64;
    cfg.write_buffer_flush_batch = 8;
    cfg.access_eval.pool_capacity_pages = 1000;
    cfg.access_eval.hotness = {.filter_count = 4,
                               .bits_per_filter = 1 << 14,
                               .hashes = 2,
                               .window_accesses = 512};
    ssd::SsdSimulator sim(cfg, normal, reduced);
    sim.prefill(4000);
    // Warm up AccessEval's filters and pool on the first half of the trace
    // (arrivals stay monotone), then measure steady state on the second.
    const auto split =
        requests.begin() + static_cast<std::ptrdiff_t>(requests.size() / 2);
    sim.run({requests.begin(), split});
    sim.reset_measurements();
    return sim.run({split, requests.end()});
  };

  const auto baseline = run_scheme(ssd::Scheme::kBaseline);
  const auto ldpc_in_ssd = run_scheme(ssd::Scheme::kLdpcInSsd);
  const auto flexlevel = run_scheme(ssd::Scheme::kFlexLevel);

  // Fig. 6(a) ordering: FlexLevel < LDPC-in-SSD < baseline on reads.
  EXPECT_LT(ldpc_in_ssd.read_response.mean(), baseline.read_response.mean());
  EXPECT_LT(flexlevel.read_response.mean(), ldpc_in_ssd.read_response.mean());
}

}  // namespace
}  // namespace flex
