// Overload-invariant integration tests for the QoS/open-loop path:
// bounded queue memory under admission control, monotone tail latency in
// arrival rate, the deadline-vs-FIFO acceptance property at high load
// (with the identical-FTL-trajectory control that makes it a fair fight),
// and a GC+refresh storm on an aged faulty drive with zero durability or
// disturb violations. Small scaled drive, fixed seeds, deterministic.
#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "ssd/simulator.h"
#include "workload/engine.h"

namespace flex::ssd {
namespace {

class QosOverloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(2718);
    const reliability::BerEngine::Config mc{
        .wordlines = 32, .bitlines = 128, .rounds = 2, .coupling = {}};
    static const reliability::GrayMapper gray;
    static const flexlevel::ReduceCodeMapper reduce;
    normal_ = new reliability::BerModel(nand::LevelConfig::baseline_mlc(),
                                        gray, reliability::RetentionModel{},
                                        mc, rng);
    reduced_ = new reliability::BerModel(
        flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
        reliability::RetentionModel{}, mc, rng);
  }
  static void TearDownTestSuite() {
    delete normal_;
    delete reduced_;
    normal_ = nullptr;
    reduced_ = nullptr;
  }

  /// The golden-test drive with two QoS tenants enabled.
  static SsdConfig config() {
    SsdConfig cfg;
    cfg.scheme = Scheme::kLdpcInSsd;
    cfg.ftl.spec.page_size_bytes = 4096;
    cfg.ftl.spec.pages_per_block = 32;
    cfg.ftl.spec.blocks_per_chip = 64;
    cfg.ftl.spec.chips = 4;
    cfg.ftl.initial_pe_cycles = 6000;
    cfg.ftl.gc_low_watermark = 4;
    cfg.min_prefill_age = kDay;
    cfg.max_prefill_age = kMonth;
    cfg.write_buffer_pages = 64;
    cfg.write_buffer_flush_batch = 8;
    cfg.access_eval.pool_capacity_pages = 1024;
    cfg.access_eval.hotness = {.filter_count = 4,
                               .bits_per_filter = 1 << 14,
                               .hashes = 2,
                               .window_accesses = 512};
    cfg.qos.enabled = true;
    cfg.qos.tenants = 2;
    return cfg;
  }

  static workload::EngineConfig engine_config(double iops,
                                              std::uint64_t requests) {
    workload::EngineConfig engine;
    engine.arrivals.base_iops = iops;
    engine.tenants =
        workload::zipf_tenant_population(2, 0.9, /*footprint_pages=*/4000);
    engine.max_requests = requests;
    engine.seed = 0x0AD5;
    return engine;
  }

  static SsdResults run_open_loop(SsdConfig cfg,
                                  const workload::EngineConfig& engine) {
    SsdSimulator sim(std::move(cfg), *normal_, *reduced_);
    sim.prefill(4000);
    workload::WorkloadEngine source(engine);
    sim.run_open_loop(source);
    return sim.results();
  }

  static reliability::BerModel* normal_;
  static reliability::BerModel* reduced_;
};

reliability::BerModel* QosOverloadTest::normal_ = nullptr;
reliability::BerModel* QosOverloadTest::reduced_ = nullptr;

TEST_F(QosOverloadTest, AdmissionControlBoundsQueueMemory) {
  SsdConfig cfg = config();
  cfg.qos.admission_max_outstanding = 32;
  const SsdResults r =
      run_open_loop(std::move(cfg), engine_config(/*iops=*/12'000, 15'000));

  // Overload with a 32-request per-tenant cap: rejections must happen,
  // and in-flight request slots stay under tenants * cap.
  EXPECT_GT(r.admission_rejected, 0u);
  EXPECT_LE(r.qos_request_slots_high_water, 2u * 32u);
  ASSERT_EQ(r.tenant.size(), 2u);
  EXPECT_EQ(r.tenant[0].admission_rejected + r.tenant[1].admission_rejected,
            r.admission_rejected);
  // Every generated request is either serviced or rejected.
  EXPECT_EQ(r.all_response.count() + r.admission_rejected, 15'000u);
}

TEST_F(QosOverloadTest, ReadP99MonotoneNonDecreasingInArrivalRate) {
  double previous = 0.0;
  for (const double iops : {600.0, 2'000.0, 6'000.0, 18'000.0}) {
    const SsdResults r =
        run_open_loop(config(), engine_config(iops, 10'000));
    const double p99 = r.read_latency_hist.quantile(0.99);
    EXPECT_GE(p99, previous) << "rate " << iops;
    previous = p99;
  }
}

TEST_F(QosOverloadTest, DeadlineBeatsFifoOnTailLatencyAtHighLoad) {
  // The acceptance property: at >= 80% of saturation the deadline policy
  // must improve the read tail over FIFO. Both arms serve the identical
  // arrival stream...
  SsdConfig fifo_cfg = config();
  fifo_cfg.qos.policy = QosPolicy::kFifo;
  SsdConfig deadline_cfg = config();
  deadline_cfg.qos.policy = QosPolicy::kDeadline;
  const workload::EngineConfig engine = engine_config(/*iops=*/3'000, 15'000);
  const SsdResults fifo = run_open_loop(std::move(fifo_cfg), engine);
  const SsdResults deadline = run_open_loop(std::move(deadline_cfg), engine);

  // ...and must walk the identical FTL state trajectory (mutations are
  // synchronous at arrival, policy-independent), so the comparison
  // isolates dispatch order.
  EXPECT_EQ(fifo.ftl, deadline.ftl);
  EXPECT_EQ(fifo.read_response.count(), deadline.read_response.count());
  EXPECT_EQ(fifo.write_response.count(), deadline.write_response.count());

  EXPECT_LT(deadline.read_latency_hist.quantile(0.99),
            fifo.read_latency_hist.quantile(0.99));
  EXPECT_LT(deadline.read_response.mean(), fifo.read_response.mean());
}

TEST_F(QosOverloadTest, AgedStormHasNoDurabilityOrDisturbViolations) {
  // GC + refresh storm on the aged drive: write-heavy MMPP bursts,
  // accelerated read disturb with a tight scrub threshold, fault
  // injection with a perfect recovery ladder, admission control and
  // write-through back-pressure — the full QoS surface at once.
  SsdConfig cfg = config();
  cfg.qos.admission_max_outstanding = 64;
  cfg.qos.write_admission_dirty_watermark = 48;
  cfg.qos.gc_throttle_queue_depth = 4;
  // Tight threshold: the write-heavy storm's GC constantly relocates and
  // erases (which resets disturb counters), so only an aggressive scrub
  // knee makes refresh trains fire alongside the GC trains.
  cfg.read_disturb.enabled = true;
  cfg.read_disturb.model.vth_shift_per_read = 8.0e-4;
  cfg.read_disturb.refresh_threshold = 25;
  cfg.faults.enabled = true;
  cfg.faults.program_fail_rate = 1e-3;
  cfg.faults.erase_fail_rate = 1e-3;
  cfg.faults.grown_defect_rate = 5e-4;
  cfg.faults.read_retry_rescue = 1.0;
  const std::uint64_t buffer_pages = cfg.write_buffer_pages;

  workload::EngineConfig engine = engine_config(/*iops=*/4'000, 20'000);
  engine.arrivals.burst_rate_multiplier = 6.0;
  engine.arrivals.burst_on_fraction = 0.15;
  engine.arrivals.burst_mean_on_s = 0.02;
  for (auto& tenant : engine.tenants) tenant.read_fraction = 0.4;

  const SsdResults r = run_open_loop(std::move(cfg), engine);

  // Durability: nothing lost, acks never trail durable programs, the
  // buffer never exceeds its capacity.
  EXPECT_EQ(r.data_loss_reads, 0u);
  EXPECT_EQ(r.recovered_reads, r.uncorrectable_reads);
  EXPECT_GE(r.writes_acked, r.writes_durable);
  EXPECT_LE(r.dirty_buffer_pages, buffer_pages);
  // The storm actually stormed: GC ran, scrubs ran, faults fired,
  // admission and throttling engaged.
  EXPECT_GT(r.ftl.gc_runs, 0u);
  EXPECT_GT(r.refresh_blocks, 0u);
  EXPECT_GT(r.ftl.program_fails + r.ftl.erase_fails + r.ftl.grown_defects,
            0u);
  EXPECT_GT(r.background_deferrals, 0u);
  // The read-latency breakdown identity holds exactly in QoS mode:
  // wait + sense + transfer + decode + buffer == total read response.
  EXPECT_NEAR(to_seconds(r.read_breakdown.total()), r.read_response.sum(),
              1e-9 * r.read_response.sum());
}

TEST_F(QosOverloadTest, QosStateTrajectoryMatchesLegacyClosedLoop) {
  // The same request vector replayed closed-loop through the legacy path
  // (QoS off) and the QoS path must mutate the FTL identically: QoS only
  // changes queueing and latency accounting, never drive state.
  workload::WorkloadEngine source(engine_config(/*iops=*/1'500, 8'000));
  const auto requests = source.materialize(8'000);

  SsdConfig legacy_cfg = config();
  legacy_cfg.qos = QosConfig{};  // fully off
  SsdSimulator legacy(std::move(legacy_cfg), *normal_, *reduced_);
  legacy.prefill(4000);
  const SsdResults a = legacy.run(requests);

  SsdSimulator qos(config(), *normal_, *reduced_);
  qos.prefill(4000);
  const SsdResults b = qos.run(requests);

  EXPECT_EQ(a.ftl, b.ftl);
  EXPECT_EQ(a.read_response.count(), b.read_response.count());
  EXPECT_EQ(a.write_response.count(), b.write_response.count());
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_EQ(a.uncorrectable_reads, b.uncorrectable_reads);
}

TEST_F(QosOverloadTest, ValidateRejectsQosFootguns) {
  // QoS knobs armed while disabled: silently inert configs are rejected.
  SsdConfig cfg = config();
  cfg.qos.enabled = false;
  auto built = SsdSimulator::Builder(*normal_, *reduced_)
                   .config(std::move(cfg))
                   .Build();
  EXPECT_FALSE(built.ok());

  // Crash injection and QoS are mutually exclusive (queued command state
  // is not modelled by the crash recovery machinery).
  SsdConfig crash_cfg = config();
  crash_cfg.faults.enabled = true;
  crash_cfg.faults.crash_enabled = true;
  crash_cfg.faults.crash_rate = 1e-6;
  crash_cfg.durability.policy = DurabilityPolicy::kFua;
  auto crash_built = SsdSimulator::Builder(*normal_, *reduced_)
                         .config(std::move(crash_cfg))
                         .Build();
  EXPECT_FALSE(crash_built.ok());
}

}  // namespace
}  // namespace flex::ssd
