#include "ssd/lifetime.h"

#include <gtest/gtest.h>

namespace flex::ssd {
namespace {

TEST(LifetimeTest, NoExtraErasesNoLoss) {
  EXPECT_DOUBLE_EQ(lifetime_factor(1.0), 1.0);
}

TEST(LifetimeTest, PaperOperatingPoint) {
  // Fig. 7: ~13% more erases while active -> ~6% lifetime loss with the
  // 4000/8000 activation point.
  const double factor = lifetime_factor(1.13);
  EXPECT_NEAR(1.0 - factor, 0.058, 0.01);
}

TEST(LifetimeTest, ActivationFractionOneMeansImmune) {
  // If the scheme never activates within the rated life, no loss at all.
  EXPECT_DOUBLE_EQ(lifetime_factor(2.0, {.activation_fraction = 1.0}), 1.0);
}

TEST(LifetimeTest, AlwaysOnIsWorstCase) {
  // Scheme active from cycle 0: lifetime scales as 1/f.
  EXPECT_NEAR(lifetime_factor(1.3, {.activation_fraction = 0.0}), 1.0 / 1.3,
              1e-12);
}

TEST(LifetimeTest, MonotoneInEraseIncrease) {
  double prev = 1.0;
  for (const double f : {1.05, 1.1, 1.2, 1.5, 2.0}) {
    const double factor = lifetime_factor(f);
    EXPECT_LT(factor, prev);
    prev = factor;
  }
}

TEST(LifetimeTest, BoundedBelowByActivationFraction) {
  // Even infinite erase inflation cannot consume the pre-activation phase.
  EXPECT_GT(lifetime_factor(100.0), 0.5);
}

TEST(LifetimeDeathTest, RejectsImpossibleInputs) {
  EXPECT_DEATH(lifetime_factor(0.9), "precondition");
  EXPECT_DEATH(lifetime_factor(1.1, {.activation_fraction = 1.5}),
               "precondition");
}

}  // namespace
}  // namespace flex::ssd
