// Property tests for the QoS chip-scheduling mode: dispatch-order
// invariants (FIFO within tenant+priority, deadline class separation,
// priority tightening), starvation freedom of throttled background work,
// weighted-fair share bounds under overload, and the bounded-queue
// accounting the overload tests lean on. Everything runs on the raw
// ChipScheduler + EventQueue — no simulator, no RNG — so each property
// is exact, not statistical.
#include "ssd/chip_scheduler.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "ssd/event_queue.h"

namespace flex::ssd {
namespace {

/// Records tagged completions in delivery order.
class RecordingSink : public QosSink {
 public:
  struct Record {
    std::uint64_t tag = 0;
    SimTime arrival = 0;
    SimTime start = 0;
    SimTime completion = 0;
  };

  void on_qos_complete(const QosCompletion& done) override {
    records.push_back(
        {done.tag, done.arrival, done.start, done.completion});
  }

  std::vector<std::uint64_t> tags() const {
    std::vector<std::uint64_t> out;
    out.reserve(records.size());
    for (const Record& r : records) out.push_back(r.tag);
    return out;
  }

  std::vector<Record> records;
};

constexpr ChipCommand kRead100us{.channel = 20'000,
                                 .die = 70'000,
                                 .controller = 10'000};

class QosSchedulerTest : public ::testing::Test {
 protected:
  EventQueue events_;
  RecordingSink sink_;
};

TEST_F(QosSchedulerTest, FifoDispatchesInArrivalOrderAcrossTenants) {
  ChipScheduler sched(1, events_);
  sched.enable_qos({.policy = QosPolicy::kFifo}, &sink_);
  // Mixed tenants, priorities and classes, all queued at t=0: strict
  // submission order must survive.
  for (std::uint64_t i = 0; i < 10; ++i) {
    sched.submit_qos(0, 0, kRead100us,
                     i % 2 ? QosClass::kWrite : QosClass::kRead,
                     static_cast<std::uint16_t>(i % 3),
                     static_cast<std::uint8_t>(i % 2), /*tag=*/i);
  }
  events_.run_all();
  std::vector<std::uint64_t> expected(10);
  for (std::uint64_t i = 0; i < 10; ++i) expected[i] = i;
  EXPECT_EQ(sink_.tags(), expected);
}

TEST_F(QosSchedulerTest, DeadlineKeepsFifoWithinTenantAndPriority) {
  ChipScheduler sched(1, events_);
  sched.enable_qos({.policy = QosPolicy::kDeadline}, &sink_);
  // One tenant, one priority, one class: every command carries the same
  // deadline offset, so EDF ties break by sequence — FIFO.
  for (std::uint64_t i = 0; i < 20; ++i) {
    sched.submit_qos(0, 0, kRead100us, QosClass::kRead, /*tenant=*/0,
                     /*priority=*/0, /*tag=*/i);
  }
  events_.run_all();
  std::vector<std::uint64_t> expected(20);
  for (std::uint64_t i = 0; i < 20; ++i) expected[i] = i;
  EXPECT_EQ(sink_.tags(), expected);
}

TEST_F(QosSchedulerTest, DeadlineReadsOvertakeQueuedWrites) {
  ChipScheduler sched(1, events_);
  sched.enable_qos({.policy = QosPolicy::kDeadline}, &sink_);
  // Occupy the chip, then queue writes before reads. The read budget
  // (2 ms) undercuts the write budget (10 ms), so every queued read
  // dispatches ahead of every queued write despite arriving later.
  sched.submit_qos(0, 0, kRead100us, QosClass::kBackground, 0, 0,
                   ChipScheduler::kNoTag);
  for (std::uint64_t i = 0; i < 3; ++i) {
    sched.submit_qos(0, 0, kRead100us, QosClass::kWrite, 0, 0,
                     /*tag=*/100 + i);
  }
  for (std::uint64_t i = 0; i < 3; ++i) {
    sched.submit_qos(0, 0, kRead100us, QosClass::kRead, 0, 0, /*tag=*/i);
  }
  events_.run_all();
  EXPECT_EQ(sink_.tags(),
            (std::vector<std::uint64_t>{0, 1, 2, 100, 101, 102}));
}

TEST_F(QosSchedulerTest, HigherPriorityTightensTheDeadline) {
  ChipScheduler sched(1, events_);
  sched.enable_qos({.policy = QosPolicy::kDeadline}, &sink_);
  sched.submit_qos(0, 0, kRead100us, QosClass::kBackground, 0, 0,
                   ChipScheduler::kNoTag);  // occupy
  // Same class and arrival; priority 1 halves the budget, so it wins.
  sched.submit_qos(0, 0, kRead100us, QosClass::kRead, 0, /*priority=*/0,
                   /*tag=*/0);
  sched.submit_qos(0, 0, kRead100us, QosClass::kRead, 1, /*priority=*/1,
                   /*tag=*/1);
  events_.run_all();
  EXPECT_EQ(sink_.tags(), (std::vector<std::uint64_t>{1, 0}));
}

TEST_F(QosSchedulerTest, ThrottledBackgroundIsDeferredButNotStarved) {
  ChipScheduler sched(1, events_);
  QosSchedulerConfig config;
  config.policy = QosPolicy::kDeadline;
  config.background_deadline = 1 * kMillisecond;
  config.gc_throttle_queue_depth = 1;
  sched.enable_qos(config, &sink_);

  // Background queued at t=0 behind an in-service command, then a host
  // read arrives every 50 µs for 40 ms — service is 100 µs/command, so
  // the host queue never empties (sustained 2x overload) and the
  // throttle keeps vetoing the background entry... until its deadline
  // expires at t=1 ms, after which EDF must dispatch it next: its
  // deadline is a millisecond older than any live read's.
  sched.submit_qos(0, 0, kRead100us, QosClass::kRead, 0, 0,
                   ChipScheduler::kNoTag);
  sched.submit_qos(0, 0, kRead100us, QosClass::kBackground, 0, 0,
                   /*tag=*/999);
  ChipScheduler* scheduler = &sched;
  for (std::uint64_t i = 0; i < 800; ++i) {
    events_.schedule(
        static_cast<SimTime>(i * 50'000),
        [scheduler](SimTime now) {
          scheduler->submit_qos(0, now, kRead100us, QosClass::kRead, 0, 0,
                                ChipScheduler::kNoTag);
        });
  }
  events_.run_all();
  ASSERT_EQ(sink_.records.size(), 1u);
  EXPECT_EQ(sink_.records[0].tag, 999u);
  // Deferred past its naive FIFO slot (~200 µs)...
  EXPECT_GT(sink_.records[0].start, 500 * kMicrosecond);
  // ...but served promptly once expired: bounded delay, not starvation.
  EXPECT_LT(sink_.records[0].completion, 2 * kMillisecond);
  EXPECT_GT(sched.qos_background_deferrals(), 0u);
}

TEST_F(QosSchedulerTest, WeightedFairShareBoundsUnderOverload) {
  ChipScheduler sched(1, events_);
  QosSchedulerConfig config;
  config.policy = QosPolicy::kDeadline;
  config.tenant_weights = {3.0, 1.0};
  config.fair_share_slack = 200 * kMicrosecond;
  sched.enable_qos(config, &sink_);

  // Both tenants flood the chip at t=0 with identical commands — same
  // class, same deadlines, alternating submission. Raw EDF would serve
  // them 1:1; the weighted-fair override must steer service toward the
  // weight-3 tenant at ~3:1.
  for (std::uint64_t i = 0; i < 150; ++i) {
    sched.submit_qos(0, 0, kRead100us, QosClass::kRead, /*tenant=*/0, 0,
                     /*tag=*/i * 2);
    sched.submit_qos(0, 0, kRead100us, QosClass::kRead, /*tenant=*/1, 0,
                     /*tag=*/i * 2 + 1);
  }
  events_.run_all();
  ASSERT_EQ(sink_.records.size(), 300u);
  std::uint64_t heavy = 0;
  for (std::size_t i = 0; i < 100; ++i) {  // first 100 services
    if (sink_.records[i].tag % 2 == 0) ++heavy;
  }
  // Weight 3 of 4 => ~75 of the first 100 services; allow slop for the
  // override's slack hysteresis.
  EXPECT_GE(heavy, 65u);
  EXPECT_LE(heavy, 85u);
  EXPECT_GT(sched.qos_fairness_overrides(), 0u);
}

TEST_F(QosSchedulerTest, EveryCommandCompletesExactlyOnce) {
  // Conservation under everything at once: two chips, three tenants,
  // mixed classes/priorities, throttling and fairness active.
  ChipScheduler sched(2, events_);
  QosSchedulerConfig config;
  config.policy = QosPolicy::kDeadline;
  config.tenant_weights = {2.0, 1.0, 1.0};
  config.gc_throttle_queue_depth = 2;
  sched.enable_qos(config, &sink_);
  std::uint64_t submitted = 0;
  for (std::uint64_t i = 0; i < 120; ++i) {
    const auto klass = static_cast<QosClass>(i % 3);
    sched.submit_qos(i % 2, (i / 6) * 30'000, kRead100us, klass,
                     static_cast<std::uint16_t>(i % 3),
                     static_cast<std::uint8_t>(i % 2), /*tag=*/i);
    ++submitted;
  }
  events_.run_all();
  ASSERT_EQ(sink_.records.size(), submitted);
  std::vector<std::uint64_t> tags = sink_.tags();
  std::sort(tags.begin(), tags.end());
  for (std::uint64_t i = 0; i < submitted; ++i) EXPECT_EQ(tags[i], i);
  // Service never overlaps on a chip and never precedes arrival.
  for (const auto& r : sink_.records) {
    EXPECT_GE(r.start, r.arrival);
    EXPECT_EQ(r.completion, r.start + kRead100us.total());
  }
}

TEST_F(QosSchedulerTest, PendingHighWaterTracksBacklog) {
  ChipScheduler sched(1, events_);
  sched.enable_qos({.policy = QosPolicy::kFifo}, &sink_);
  for (std::uint64_t i = 0; i < 8; ++i) {
    sched.submit_qos(0, 0, kRead100us, QosClass::kRead, 0, 0, /*tag=*/i);
  }
  // One in service, seven queued.
  EXPECT_EQ(sched.qos_pending_high_water(), 7u);
  events_.run_all();
  EXPECT_EQ(sched.qos_pending_high_water(), 7u);  // sticky high water
  sched.reset_stats();
  EXPECT_EQ(sched.qos_pending_high_water(), 0u);  // re-based on empty queue
}

TEST_F(QosSchedulerTest, LegacySubmitUnaffectedByQosMode) {
  // The legacy immediate-reservation path must answer identically with
  // QoS enabled (it serves the prefill/preconditioning phases).
  EventQueue legacy_events;
  ChipScheduler legacy(2, legacy_events);
  ChipScheduler qos(2, events_);
  qos.enable_qos({.policy = QosPolicy::kDeadline}, &sink_);
  for (int i = 0; i < 10; ++i) {
    const auto chip = static_cast<std::size_t>(i % 2);
    const SimTime arrival = i * 40'000;
    EXPECT_EQ(legacy.submit(chip, arrival, kRead100us),
              qos.submit(chip, arrival, kRead100us));
  }
  legacy_events.run_all();
  events_.run_all();
  EXPECT_EQ(legacy.stats(), qos.stats());
}

}  // namespace
}  // namespace flex::ssd
