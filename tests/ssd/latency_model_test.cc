#include "ssd/latency_model.h"

#include <gtest/gtest.h>

namespace flex::ssd {
namespace {

TEST(LatencyModelTest, HardReadAnatomy) {
  const LatencyModel model;
  // 90 us sense + 40 us transfer + 10 us decode.
  EXPECT_EQ(model.read_fixed(0), 140 * kMicrosecond);
}

TEST(LatencyModelTest, FixedGrowsLinearlyWithLevels) {
  const LatencyModel model;
  const Duration base = model.read_fixed(0);
  const Duration per_level = model.extra_sense_per_level +
                             model.extra_transfer_per_level +
                             model.decode_per_level;
  for (int levels = 1; levels <= 6; ++levels) {
    EXPECT_EQ(model.read_fixed(levels), base + levels * per_level);
  }
}

TEST(LatencyModelTest, ProgressiveEqualsFixedWhenHardSucceeds) {
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  EXPECT_EQ(model.read_progressive(0, ladder), model.read_fixed(0));
}

TEST(LatencyModelTest, ProgressivePaysRetryDecodes) {
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  // Needing 1 level: failed hard decode + incremental sense/transfer +
  // second decode at 1 level.
  const Duration expected = model.read_fixed(0) + model.extra_sense_per_level +
                            model.extra_transfer_per_level +
                            model.decode_base + model.decode_per_level;
  EXPECT_EQ(model.read_progressive(1, ladder), expected);
}

TEST(LatencyModelTest, ProgressiveBelowFixedWorstCaseForShallowReads) {
  // The whole point of progressive sensing: cheap reads stay cheap even on
  // a controller provisioned for 6 levels.
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  EXPECT_LT(model.read_progressive(0, ladder), model.read_fixed(6));
  EXPECT_LT(model.read_progressive(2, ladder), model.read_fixed(6));
}

TEST(LatencyModelTest, ProgressiveAboveFixedAtSameDepth) {
  // ...but a deep progressive read pays for its failed attempts.
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  EXPECT_GT(model.read_progressive(6, ladder), model.read_fixed(6));
}

TEST(LatencyModelTest, ProgressiveMonotoneInRequiredLevels) {
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  Duration prev = 0;
  for (const int levels : {0, 1, 2, 4, 6}) {
    const Duration d = model.read_progressive(levels, ladder);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(LatencyModelTest, AttemptsSumToClosedFormCost) {
  // The telemetry decomposition must be exact: summing each attempt's
  // incremental cost reproduces read_progressive_from_cost component by
  // component (all integer ns, so equality is strict).
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  for (const int start : {0, 1, 2, 4, 6}) {
    for (const int required : {0, 1, 2, 4, 6}) {
      const ReadCost closed =
          model.read_progressive_from_cost(start, required, ladder);
      std::vector<ReadAttempt> attempts;
      model.read_progressive_attempts(start, required, ladder, attempts);
      ASSERT_FALSE(attempts.empty()) << start << "/" << required;
      ReadCost sum;
      for (const auto& attempt : attempts) {
        sum.die += attempt.cost.die;
        sum.channel += attempt.cost.channel;
        sum.controller += attempt.cost.controller;
      }
      EXPECT_EQ(sum.die, closed.die) << start << "/" << required;
      EXPECT_EQ(sum.channel, closed.channel) << start << "/" << required;
      EXPECT_EQ(sum.controller, closed.controller) << start << "/" << required;
      // The final attempt decodes at (at least) the required depth.
      EXPECT_GE(attempts.back().levels, required);
    }
  }
}

TEST(LatencyModelTest, Table6Passthroughs) {
  const LatencyModel model;
  EXPECT_EQ(model.program(), 1000 * kMicrosecond);
  EXPECT_EQ(model.erase(), 3 * kMillisecond);
}

}  // namespace
}  // namespace flex::ssd
