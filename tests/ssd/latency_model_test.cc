#include "ssd/latency_model.h"

#include <gtest/gtest.h>

namespace flex::ssd {
namespace {

TEST(LatencyModelTest, HardReadAnatomy) {
  const LatencyModel model;
  // 90 us sense + 40 us transfer + 10 us decode.
  EXPECT_EQ(model.read_fixed(0), 140 * kMicrosecond);
}

TEST(LatencyModelTest, FixedGrowsLinearlyWithLevels) {
  const LatencyModel model;
  const Duration base = model.read_fixed(0);
  const Duration per_level = model.extra_sense_per_level +
                             model.extra_transfer_per_level +
                             model.decode_per_level;
  for (int levels = 1; levels <= 6; ++levels) {
    EXPECT_EQ(model.read_fixed(levels), base + levels * per_level);
  }
}

TEST(LatencyModelTest, PlanEqualsFixedWhenHardSucceeds) {
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  EXPECT_EQ(model.read_latency({.required_levels = 0}, ladder),
            model.read_fixed(0));
}

TEST(LatencyModelTest, PlanPaysRetryDecodes) {
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  // Needing 1 level: failed hard decode + incremental sense/transfer +
  // second decode at 1 level.
  const Duration expected = model.read_fixed(0) + model.extra_sense_per_level +
                            model.extra_transfer_per_level +
                            model.decode_base + model.decode_per_level;
  EXPECT_EQ(model.read_latency({.required_levels = 1}, ladder), expected);
}

TEST(LatencyModelTest, PlanBelowFixedWorstCaseForShallowReads) {
  // The whole point of progressive sensing: cheap reads stay cheap even on
  // a controller provisioned for 6 levels.
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  EXPECT_LT(model.read_latency({.required_levels = 0}, ladder),
            model.read_fixed(6));
  EXPECT_LT(model.read_latency({.required_levels = 2}, ladder),
            model.read_fixed(6));
}

TEST(LatencyModelTest, PlanAboveFixedAtSameDepth) {
  // ...but a deep progressive read pays for its failed attempts.
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  EXPECT_GT(model.read_latency({.required_levels = 6}, ladder),
            model.read_fixed(6));
}

TEST(LatencyModelTest, PlanMonotoneInRequiredLevels) {
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  Duration prev = 0;
  for (const int levels : {0, 1, 2, 4, 6}) {
    const Duration d = model.read_latency({.required_levels = levels}, ladder);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(LatencyModelTest, PlanMatchesPinnedClosedForm) {
  // Pin the ReadPlan walk to hand-computed ladder arithmetic so an API
  // regression cannot silently shift costs. The walk over the Table-5
  // ladder {0,1,2,4,6} starting at `s` and requiring `r` pays: a base
  // sense + transfer once, the incremental per-level sense/transfer of
  // every level up to the first step >= r (a hinted start still senses its
  // levels — it only skips the failed decodes below it), and one decode
  // per visited step.
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  const int steps[] = {0, 1, 2, 4, 6};
  for (const int start : {0, 1, 2, 4, 6}) {
    for (const int required : {0, 1, 2, 4, 6}) {
      ReadCost expected{.die = model.spec.read_latency,
                        .channel = model.spec.page_transfer_latency};
      int prev = 0;
      for (const int level : steps) {
        if (level < start) continue;
        const int delta = level - prev;
        prev = level;
        expected.die += delta * model.extra_sense_per_level;
        expected.channel += delta * model.extra_transfer_per_level;
        expected.controller += model.decode_time(level);
        if (level >= required) break;
      }
      const ReadCost actual = model.read_cost(
          {.start_levels = start, .required_levels = required}, ladder);
      EXPECT_EQ(actual.die, expected.die) << start << "/" << required;
      EXPECT_EQ(actual.channel, expected.channel) << start << "/" << required;
      EXPECT_EQ(actual.controller, expected.controller)
          << start << "/" << required;
    }
  }
}

TEST(LatencyModelTest, AttemptsSumToClosedFormCost) {
  // The telemetry decomposition must be exact: summing each attempt's
  // incremental cost reproduces read_cost component by component (all
  // integer ns, so equality is strict).
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  for (const int start : {0, 1, 2, 4, 6}) {
    for (const int required : {0, 1, 2, 4, 6}) {
      const ReadPlan plan{.start_levels = start, .required_levels = required};
      const ReadCost closed = model.read_cost(plan, ladder);
      std::vector<ReadAttempt> attempts;
      model.read_attempts(plan, ladder, attempts);
      ASSERT_FALSE(attempts.empty()) << start << "/" << required;
      ReadCost sum;
      for (const auto& attempt : attempts) {
        sum.die += attempt.cost.die;
        sum.channel += attempt.cost.channel;
        sum.controller += attempt.cost.controller;
      }
      EXPECT_EQ(sum.die, closed.die) << start << "/" << required;
      EXPECT_EQ(sum.channel, closed.channel) << start << "/" << required;
      EXPECT_EQ(sum.controller, closed.controller) << start << "/" << required;
      // The final attempt decodes at (at least) the required depth.
      EXPECT_GE(attempts.back().levels, required);
    }
  }
}

TEST(LatencyModelTest, MeasuredDecodeReplacesTable) {
  LatencyModel model;
  model.measured_decode = {11 * kMicrosecond, 13 * kMicrosecond,
                           17 * kMicrosecond};
  EXPECT_EQ(model.decode_time(0), 11 * kMicrosecond);
  EXPECT_EQ(model.decode_time(2), 17 * kMicrosecond);
  // Levels past the last entry clamp to it.
  EXPECT_EQ(model.decode_time(6), 17 * kMicrosecond);
  model.measured_decode.clear();
  EXPECT_EQ(model.decode_time(2),
            model.decode_base + 2 * model.decode_per_level);
}

TEST(LatencyModelTest, Table6Passthroughs) {
  const LatencyModel model;
  EXPECT_EQ(model.program(), 1000 * kMicrosecond);
  EXPECT_EQ(model.erase(), 3 * kMillisecond);
}

}  // namespace
}  // namespace flex::ssd
