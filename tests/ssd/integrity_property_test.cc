// End-to-end data integrity at the drive level: the
// NoAcknowledgedWriteEverReturnsWrongData property under all three
// silent-corruption fault kinds, across relocations (GC under a
// write-heavy trace) and crash points (harness data audit), plus the
// cost-when-clean and determinism contracts the bench relies on.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "ssd/crash_harness.h"
#include "ssd/simulator.h"
#include "trace/workloads.h"

namespace flex::ssd {
namespace {

class IntegrityPropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1234);
    const reliability::BerEngine::Config mc{.wordlines = 32,
                                            .bitlines = 128,
                                            .rounds = 2,
                                            .coupling = {}};
    static const reliability::GrayMapper gray;
    static const flexlevel::ReduceCodeMapper reduce;
    normal_ = new reliability::BerModel(nand::LevelConfig::baseline_mlc(),
                                        gray, reliability::RetentionModel{},
                                        mc, rng);
    reduced_ = new reliability::BerModel(
        flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
        reliability::RetentionModel{}, mc, rng);
  }
  static void TearDownTestSuite() {
    delete normal_;
    delete reduced_;
    normal_ = nullptr;
    reduced_ = nullptr;
  }

  // Small drive: 4 chips x 64 blocks x 32 pages = 8192 physical pages.
  static SsdConfig small_config(Scheme scheme) {
    SsdConfig cfg;
    cfg.scheme = scheme;
    cfg.ftl.spec.page_size_bytes = 4096;
    cfg.ftl.spec.pages_per_block = 32;
    cfg.ftl.spec.blocks_per_chip = 64;
    cfg.ftl.spec.chips = 4;
    cfg.ftl.over_provisioning = 0.27;
    cfg.ftl.gc_low_watermark = 4;
    cfg.ftl.initial_pe_cycles = 6000;
    cfg.min_prefill_age = kDay;
    cfg.max_prefill_age = kMonth;
    cfg.write_buffer_pages = 64;
    cfg.write_buffer_flush_batch = 8;
    cfg.access_eval.pool_capacity_pages = 1024;
    cfg.access_eval.hotness = {.filter_count = 4,
                               .bits_per_filter = 1 << 14,
                               .hashes = 2,
                               .window_accesses = 512};
    return cfg;
  }

  /// small_config with the integrity layer on and all three corruption
  /// kinds armed hot. The torn-relocation kind only strikes maintenance
  /// programs (GC, wear leveling, refresh), so its rate is an order of
  /// magnitude above the others — with the write-heavy trace below the
  /// GC page-move stream is large enough that the path reliably fires.
  static SsdConfig corrupting_config(Scheme scheme) {
    SsdConfig cfg = small_config(scheme);
    cfg.integrity.enabled = true;
    cfg.faults.enabled = true;
    cfg.faults.silent_corruption_rate = 5e-3;
    cfg.faults.misdirected_write_rate = 5e-3;
    cfg.faults.torn_relocation_rate = 5e-2;
    return cfg;
  }

  static std::vector<trace::Request> small_trace(double read_fraction,
                                                 std::uint64_t requests,
                                                 std::uint64_t seed) {
    trace::WorkloadParams params;
    params.name = "integrity";
    params.read_fraction = read_fraction;
    params.zipf_theta = 1.0;
    params.footprint_pages = 4000;
    params.mean_request_pages = 1.2;
    params.max_request_pages = 4;
    params.iops = 1500;
    params.requests = requests;
    return trace::generate(params, seed);
  }

  static reliability::BerModel* normal_;
  static reliability::BerModel* reduced_;
};

reliability::BerModel* IntegrityPropertyTest::normal_ = nullptr;
reliability::BerModel* IntegrityPropertyTest::reduced_ = nullptr;

TEST_F(IntegrityPropertyTest, ValidateRejectsCorruptionWithoutIntegrity) {
  // Without seals the corruption kinds would be undetectable by
  // construction — arming them with integrity off must not validate.
  SsdConfig cfg = small_config(Scheme::kLdpcInSsd);
  cfg.faults.enabled = true;
  cfg.faults.silent_corruption_rate = 1e-4;
  const Status status = cfg.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("integrity"), std::string::npos);
  cfg.integrity.enabled = true;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST_F(IntegrityPropertyTest, CleanRunVerifiesEverythingFlagsNothing) {
  SsdConfig cfg = small_config(Scheme::kFlexLevel);
  cfg.integrity.enabled = true;
  SsdSimulator sim(std::move(cfg), *normal_, *reduced_);
  sim.prefill(4000);
  const SsdResults r = sim.run(small_trace(0.7, 15'000, 21));
  EXPECT_GT(r.integrity_verified_reads, 0u);
  EXPECT_EQ(r.integrity_mismatch_reads, 0u);
  EXPECT_EQ(r.integrity_undetected_reads, 0u);
  EXPECT_EQ(r.integrity_recovered_reads, 0u);
  EXPECT_EQ(r.integrity_unrecovered_reads, 0u);
  EXPECT_EQ(sim.ftl().stats().misdirected_writes, 0u);
  EXPECT_EQ(sim.ftl().stats().torn_relocations, 0u);
  EXPECT_EQ(sim.ftl().stats().repair_writes, 0u);
}

TEST_F(IntegrityPropertyTest, IntegrityCostsNoSimulatedTimeWhenClean) {
  // Seals ride the existing OOB path: with no corruption armed, the
  // integrity layer must not perturb a single latency or FTL decision.
  const auto trace = small_trace(0.7, 15'000, 22);
  SsdSimulator off(small_config(Scheme::kFlexLevel), *normal_, *reduced_);
  off.prefill(4000);
  const SsdResults a = off.run(trace);

  SsdConfig cfg = small_config(Scheme::kFlexLevel);
  cfg.integrity.enabled = true;
  SsdSimulator on(std::move(cfg), *normal_, *reduced_);
  on.prefill(4000);
  const SsdResults b = on.run(trace);

  EXPECT_EQ(a.read_response.mean(), b.read_response.mean());
  EXPECT_EQ(a.write_response.mean(), b.write_response.mean());
  EXPECT_EQ(a.ftl.nand_writes, b.ftl.nand_writes);
  EXPECT_EQ(a.ftl.gc_runs, b.ftl.gc_runs);
  EXPECT_EQ(a.writes_acked, b.writes_acked);
}

TEST_F(IntegrityPropertyTest, NoAcknowledgedWriteEverReturnsWrongData) {
  // The headline property. A write-heavy trace keeps GC moving pages
  // (torn relocations), host programs misdirect, and post-ECC reads
  // take transient flips — yet every read that would deliver wrong
  // bytes is flagged by the seal check: zero undetected corruptions.
  for (const Scheme scheme : {Scheme::kLdpcInSsd, Scheme::kFlexLevel}) {
    SsdSimulator sim(corrupting_config(scheme), *normal_, *reduced_);
    sim.prefill(4000);
    const SsdResults r = sim.run(small_trace(0.5, 15'000, 23));
    SCOPED_TRACE(scheme_name(scheme));
    EXPECT_EQ(r.integrity_undetected_reads, 0u);
    EXPECT_GT(r.integrity_verified_reads, 0u);
    EXPECT_GT(r.integrity_mismatch_reads, 0u);
    // Every flagged mismatch is adjudicated by the recovery re-read:
    // transient flips cure, persistent medium faults do not.
    EXPECT_EQ(r.integrity_mismatch_reads,
              r.integrity_recovered_reads + r.integrity_unrecovered_reads);
    EXPECT_GT(r.integrity_recovered_reads, 0u);
    // Both persistent fault kinds actually fired (lifetime counters:
    // prefill programs misdirect too).
    EXPECT_GT(sim.ftl().stats().misdirected_writes, 0u);
    EXPECT_GT(sim.ftl().stats().torn_relocations, 0u);
  }
}

TEST_F(IntegrityPropertyTest, FaultyRunsAreDeterministic) {
  // Stateless fault adjudication: identical configs and traces give
  // identical corruption patterns and identical verdicts.
  const auto trace = small_trace(0.5, 8'000, 24);
  auto run = [&] {
    SsdSimulator sim(corrupting_config(Scheme::kFlexLevel), *normal_,
                     *reduced_);
    sim.prefill(4000);
    return sim.run(trace);
  };
  const SsdResults a = run();
  const SsdResults b = run();
  EXPECT_EQ(a.integrity_verified_reads, b.integrity_verified_reads);
  EXPECT_EQ(a.integrity_mismatch_reads, b.integrity_mismatch_reads);
  EXPECT_EQ(a.integrity_recovered_reads, b.integrity_recovered_reads);
  EXPECT_EQ(a.integrity_unrecovered_reads, b.integrity_unrecovered_reads);
  EXPECT_EQ(a.ftl.misdirected_writes, b.ftl.misdirected_writes);
  EXPECT_EQ(a.ftl.torn_relocations, b.ftl.torn_relocations);
  EXPECT_EQ(a.read_response.mean(), b.read_response.mean());
}

TEST_F(IntegrityPropertyTest, RepairRestoresCorruptPagesToVerifying) {
  // Drive-level read-repair: after a faulty run some mapped pages hold
  // persistent corruption (page_verifies() false). repair_page rewrites
  // each with fresh current-generation payload + seal. A repair program
  // can itself misdirect, hence the bounded convergence loop.
  SsdSimulator sim(corrupting_config(Scheme::kLdpcInSsd), *normal_,
                   *reduced_);
  sim.prefill(4000);
  sim.run(small_trace(0.5, 10'000, 25));

  const std::uint64_t logical = sim.ftl().logical_pages();
  auto corrupt_pages = [&] {
    std::vector<std::uint64_t> bad;
    for (std::uint64_t lpn = 0; lpn < logical; ++lpn) {
      if (!sim.page_verifies(lpn)) bad.push_back(lpn);
    }
    return bad;
  };

  std::vector<std::uint64_t> bad = corrupt_pages();
  ASSERT_GT(bad.size(), 0u);  // the run must actually corrupt something
  SimTime repair_time = 2'000'000'000'000LL;  // well past the trace end
  for (int pass = 0; pass < 8 && !bad.empty(); ++pass) {
    for (const std::uint64_t lpn : bad) sim.repair_page(lpn, repair_time);
    repair_time += 1'000'000'000LL;
    bad = corrupt_pages();
  }
  EXPECT_TRUE(bad.empty()) << bad.size() << " pages still corrupt";
  EXPECT_GT(sim.ftl().stats().repair_writes, 0u);
}

TEST_F(IntegrityPropertyTest, CrashSweepAuditFindsNoUndetectedCorruption) {
  // Crash × corruption: at every crash point the mounted medium is
  // audited entry by entry against the durable-version ledger. Corrupt
  // payloads exist (misdirected prefill/host writes) but every one sits
  // under a seal that fails verification — detected, never silent.
  SsdConfig cfg = corrupting_config(Scheme::kFlexLevel);
  cfg.faults.crash_enabled = true;
  cfg.faults.crash_rate = 1.0 / 4096.0;
  cfg.durability.policy = DurabilityPolicy::kFlushBarrier;
  cfg.durability.flush_barrier_interval = 64;
  const auto trace = small_trace(0.5, 5'000, 26);
  std::uint64_t total_detected = 0;
  for (std::uint64_t salt = 0; salt < 6; ++salt) {
    const CrashVerdict verdict =
        run_crash_point(cfg, trace, salt, 4000, *normal_, *reduced_);
    SCOPED_TRACE("salt " + std::to_string(salt));
    EXPECT_TRUE(verdict.ok()) << verdict.consistency_message;
    EXPECT_GT(verdict.data_checked, 0u);
    EXPECT_EQ(verdict.data_corrupt_undetected, 0u);
    total_detected += verdict.data_corrupt_detected;
  }
  // The audit has teeth: across the sweep it saw real corruption.
  EXPECT_GT(total_detected, 0u);
}

}  // namespace
}  // namespace flex::ssd
