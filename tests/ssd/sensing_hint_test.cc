#include <gtest/gtest.h>

#include "reliability/sensing_solver.h"
#include "ssd/latency_model.h"

namespace flex::ssd {
namespace {

TEST(SensingHintTest, StartAtZeroIsPlainProgressive) {
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  for (const int required : {0, 1, 2, 4, 6}) {
    EXPECT_EQ(model.read_latency({.required_levels = required}, ladder),
              model.read_latency({.start_levels = 0, .required_levels = required}, ladder));
  }
}

TEST(SensingHintTest, ExactHintIsOneAttempt) {
  // Starting exactly where the data needs it: one sense pass over all the
  // levels, one decode — cheaper than any retry chain but dearer than a
  // hard read.
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  for (const int levels : {1, 2, 4, 6}) {
    const Duration hinted = model.read_latency({.start_levels = levels, .required_levels = levels}, ladder);
    EXPECT_EQ(hinted, model.read_fixed(levels)) << levels;
    EXPECT_LT(hinted, model.read_latency({.required_levels = levels}, ladder));
  }
}

TEST(SensingHintTest, StaleHighHintWastesSensingButNotRetries) {
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  // Data needs 0 levels but the hint says 4: one 4-level attempt.
  const Duration over = model.read_latency({.start_levels = 4, .required_levels = 0}, ladder);
  EXPECT_EQ(over, model.read_fixed(4));
  EXPECT_GT(over, model.read_latency({.required_levels = 0}, ladder));
}

TEST(SensingHintTest, StaleLowHintEscalates) {
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  // Hint 1, data needs 4: attempts at 1, 2, 4.
  const Duration d = model.read_latency({.start_levels = 1, .required_levels = 4}, ladder);
  const Duration expected =
      model.spec.read_latency + model.spec.page_transfer_latency +
      4 * (model.extra_sense_per_level + model.extra_transfer_per_level) +
      (model.decode_base + 1 * model.decode_per_level) +
      (model.decode_base + 2 * model.decode_per_level) +
      (model.decode_base + 4 * model.decode_per_level);
  EXPECT_EQ(d, expected);
}

TEST(SensingHintTest, MonotoneInRequirementForFixedStart) {
  const LatencyModel model;
  const reliability::SensingRequirement ladder;
  Duration prev = 0;
  for (const int required : {0, 1, 2, 4, 6}) {
    const Duration d = model.read_latency({.start_levels = 2, .required_levels = required}, ladder);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

}  // namespace
}  // namespace flex::ssd
